// Command peaload drives a live peaserve with N concurrent tenants and
// reports request latency percentiles (p50/p90/p99) plus the server's
// two-tier cache effectiveness: in-memory hits, disk hits, pipeline
// compiles, and the combined hit rate. It is the measurement tool for the
// persistent-artifact story — run it against a fresh store, restart the
// server, run it again: the second report should show pipeline_compiles=0
// and hit_rate near 1.0.
//
// Usage:
//
//	peaload [-url http://host:port] [-tenants N] [-requests N] [-runs N]
//	        [-src prog.mj] [-out report.json]
//	        [-min-hit-rate F] [-min-disk-hits N] [-max-pipeline-compiles N]
//
// The threshold flags turn the report into an assertion: peaload exits
// nonzero when the measured hit rate, disk-hit count, or pipeline-compile
// count misses the bound, which is how CI checks that a warm restart
// actually replays persisted artifacts. -max-pipeline-compiles is -1
// (unchecked) by default since cold runs legitimately compile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pea/internal/bench"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8377", "peaserve base URL")
	tenants := flag.Int("tenants", 8, "concurrent tenant goroutines")
	requests := flag.Int("requests", 4, "requests per tenant")
	runs := flag.Int("runs", 3, "Main.main runs per request")
	srcPath := flag.String("src", "", "tenant MiniJava program (default: built-in workload)")
	out := flag.String("out", "", "write the JSON report to this file (always printed to stdout)")
	minHitRate := flag.Float64("min-hit-rate", 0, "fail if the two-tier cache hit rate is below this")
	minDiskHits := flag.Int64("min-disk-hits", 0, "fail if fewer artifacts were replayed from disk")
	maxPipeline := flag.Int64("max-pipeline-compiles", -1, "fail if more pipeline compiles ran (-1 = unchecked)")
	flag.Parse()

	opts := bench.LoadOptions{URL: *url, Tenants: *tenants, Requests: *requests, Runs: *runs}
	if *srcPath != "" {
		src, err := os.ReadFile(*srcPath)
		if err != nil {
			fatal(err)
		}
		opts.Source = string(src)
	}
	rep, err := bench.RunLoad(opts)
	if err != nil {
		fatal(err)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	failed := false
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "peaload: %d/%d requests failed (first: %s)\n",
			rep.Errors, rep.Requests, rep.FirstError)
		failed = true
	}
	if rep.HitRate < *minHitRate {
		fmt.Fprintf(os.Stderr, "peaload: hit rate %.3f below required %.3f\n", rep.HitRate, *minHitRate)
		failed = true
	}
	if rep.DiskHits < *minDiskHits {
		fmt.Fprintf(os.Stderr, "peaload: disk hits %d below required %d\n", rep.DiskHits, *minDiskHits)
		failed = true
	}
	if *maxPipeline >= 0 && rep.PipelineCompiles > *maxPipeline {
		fmt.Fprintf(os.Stderr, "peaload: %d pipeline compiles exceed allowed %d\n",
			rep.PipelineCompiles, *maxPipeline)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peaload:", err)
	os.Exit(1)
}
