// Command peastat is the offline analyzer for the VM's observability
// streams: structured event logs (peavm -json, peabench event output) and
// flight-recorder dumps (crash-dir flight-*.jsonl files, /debug/pea/flight
// snapshots). It accepts any mix of both formats, merges them, and prints
// compile-latency percentiles, code-cache hit rate, top deoptimization
// reasons, and the per-allocation-site escape attribution table.
//
// Usage:
//
//	peastat [flags] [file ...]            # no files: read stdin
//	peastat run.jsonl flight-Main_main.jsonl
//	peastat -chrome trace.json run.jsonl  # also convert to chrome://tracing
//	peastat -escape-only run.jsonl        # just the Table-1-style table
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pea/internal/obs"
	"pea/internal/stat"
)

func main() {
	chrome := flag.String("chrome", "", "also write a Chrome trace_event JSON file (load in Perfetto) converted from the obs events in the input")
	escapeOnly := flag.Bool("escape-only", false, "print only the escape attribution table")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: peastat [flags] [file ...]\nAnalyzes obs-event JSONL and flight-recorder dumps (stdin when no files).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var readers []io.Reader
	var closers []io.Closer
	if flag.NArg() == 0 {
		readers = append(readers, os.Stdin)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peastat: %v\n", err)
			os.Exit(1)
		}
		readers = append(readers, f)
		closers = append(closers, f)
	}

	rep, err := stat.Analyze(io.MultiReader(readers...))
	for _, c := range closers {
		c.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "peastat: %v\n", err)
		os.Exit(1)
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintf(os.Stderr, "peastat: %v\n", err)
			os.Exit(1)
		}
		tw := obs.NewTraceWriter(f)
		for i := range rep.Events {
			tw.Write(&rep.Events[i])
		}
		err = tw.Close()
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "peastat: writing %s: %v\n", *chrome, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "peastat: wrote %s (%d events)\n", *chrome, len(rep.Events))
	}

	if *escapeOnly {
		fmt.Print(rep.Escape.Table())
		return
	}
	fmt.Print(rep.Text())
}
