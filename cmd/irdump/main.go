// Command irdump shows the compiler IR of the paper's running examples at
// selected pipeline stages, regenerating (in textual form) the paper's
// Figure 2 — the Graal IR of Listing 5 after inlining — and Figure 8 — the
// FrameStates of Listing 8 before and after Partial Escape Analysis.
//
// Usage:
//
//	irdump [-example cachekey|framestate] [-phase built|inlined|pea|final] [-method Class.method]
//	irdump -file prog.mj -method Class.method [-phase ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pea/internal/build"
	"pea/internal/ir"
	"pea/internal/mj"
	"pea/internal/opt"
	"pea/internal/pea"
)

// cachekeySrc is the paper's Listing 1 (and, once inlined, Listing 5); the
// IR after the "inlined" phase corresponds to Figure 2, and after "pea" to
// Listing 6.
const cachekeySrc = `
class Key {
	int idx;
	Key(int idx) { this.idx = idx; }
	boolean equalsKey(Key other) {
		synchronized (this) {
			return other != null && idx == other.idx;
		}
	}
}
class Cache {
	static Key cacheKey;
	static int cacheValue;
}
class Main {
	static int createValue(int idx) { return idx * 31; }
	static int getValue(int idx) {
		Key key = new Key(idx);
		if (key.equalsKey(Cache.cacheKey)) {
			return Cache.cacheValue;
		} else {
			Cache.cacheKey = key;
			Cache.cacheValue = createValue(idx);
			return Cache.cacheValue;
		}
	}
	static void main() { print(getValue(1)); }
}
`

// framestateSrc is the paper's Listing 8: after inlining the constructor,
// the field store carries a two-frame state chain; after PEA the store's
// state references a virtual object descriptor instead of the allocation
// (Figure 8).
const framestateSrc = `
class Integer {
	int value;
	Integer(int value) { this.value = value; }
}
class Main {
	static Integer global;
	static void foo(int x) {
		Integer i = new Integer(x);
		global = null;
		global = i;
	}
	static void main() { foo(7); }
}
`

func main() {
	example := flag.String("example", "cachekey", "built-in example: cachekey (Figure 2) or framestate (Figure 8)")
	file := flag.String("file", "", "MiniJava source file to dump instead of a built-in example")
	method := flag.String("method", "", "method to dump as Class.method (defaults per example)")
	phase := flag.String("phase", "pea", "pipeline stage: built, inlined, pea, or final")
	dotOut := flag.Bool("dot", false, "emit Graphviz DOT instead of text (Figure 2 as a drawing)")
	trace := flag.Bool("trace", false, "log the escape analysis decisions to stderr")
	flag.Parse()

	var src, defaultMethod string
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
		if *method == "" {
			fatal(fmt.Errorf("-file requires -method Class.method"))
		}
	case *example == "cachekey":
		src, defaultMethod = cachekeySrc, "Main.getValue"
	case *example == "framestate":
		src, defaultMethod = framestateSrc, "Main.foo"
	default:
		fatal(fmt.Errorf("unknown example %q", *example))
	}
	if *method == "" {
		*method = defaultMethod
	}

	prog, err := mj.Compile(src, "Main.main")
	if err != nil {
		fatal(err)
	}
	dot := strings.LastIndex(*method, ".")
	if dot <= 0 {
		fatal(fmt.Errorf("bad -method %q", *method))
	}
	cls := prog.ClassByName((*method)[:dot])
	if cls == nil {
		fatal(fmt.Errorf("no class %q", (*method)[:dot]))
	}
	m := cls.MethodByName((*method)[dot+1:])
	if m == nil {
		fatal(fmt.Errorf("no method %q", *method))
	}

	g, err := build.Build(m)
	if err != nil {
		fatal(err)
	}
	stage := func(name string) {
		if *dotOut {
			fmt.Print(ir.DumpDot(g))
			return
		}
		fmt.Printf("=== %s (%s) ===\n%s\n", *method, name, ir.Dump(g))
	}
	if *phase == "built" {
		stage("as built from bytecode")
		return
	}
	pipe := &opt.Pipeline{Phases: []opt.Phase{
		&opt.Inliner{BuildGraph: build.Build, Program: prog},
		opt.Canonicalize{},
		opt.SimplifyCFG{},
		opt.GVN{},
		opt.DCE{},
	}}
	if err := pipe.Run(g); err != nil {
		fatal(err)
	}
	if *phase == "inlined" {
		stage("after inlining and canonicalization — paper Figure 2 / Listing 5")
		return
	}
	conf := pea.Config{}
	if *trace {
		conf.Trace = os.Stderr
	}
	res, err := pea.Run(g, conf)
	if err != nil {
		fatal(err)
	}
	if err := ir.Verify(g); err != nil {
		fatal(fmt.Errorf("PEA produced invalid IR: %w", err))
	}
	if *phase == "pea" {
		stage(fmt.Sprintf("after Partial Escape Analysis — paper Listing 6 / Figure 8 "+
			"(virtualized %d allocs, %d monitors; %d materialization sites)",
			res.VirtualizedAllocs, res.ElidedMonitors, res.MaterializeSites))
		return
	}
	post := opt.Standard()
	if err := post.Run(g); err != nil {
		fatal(err)
	}
	stage("final")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "irdump:", err)
	os.Exit(1)
}
