// Command irdump shows the compiler IR of the paper's running examples at
// selected pipeline stages, regenerating (in textual form) the paper's
// Figure 2 — the Graal IR of Listing 5 after inlining — and Figure 8 — the
// FrameStates of Listing 8 before and after Partial Escape Analysis.
//
// Usage:
//
//	irdump [-example cachekey|framestate] [-phase built|inlined|pea|final] [-method Class.method]
//	irdump -file prog.mj -method Class.method [-phase ...]
//
// Dumping is driven by the obs package's per-phase IR-snapshot hooks: the
// command registers one snapshot consumer on an event sink and the
// pipeline stages publish their IR through it. Besides the four named
// stages, -phase also accepts any optimization phase name (for example
// gvn or dce) to print the IR each time that phase changes the graph.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pea/internal/build"
	"pea/internal/ir"
	"pea/internal/mj"
	"pea/internal/obs"
	"pea/internal/opt"
	"pea/internal/pea"
)

// cachekeySrc is the paper's Listing 1 (and, once inlined, Listing 5); the
// IR after the "inlined" phase corresponds to Figure 2, and after "pea" to
// Listing 6.
const cachekeySrc = `
class Key {
	int idx;
	Key(int idx) { this.idx = idx; }
	boolean equalsKey(Key other) {
		synchronized (this) {
			return other != null && idx == other.idx;
		}
	}
}
class Cache {
	static Key cacheKey;
	static int cacheValue;
}
class Main {
	static int createValue(int idx) { return idx * 31; }
	static int getValue(int idx) {
		Key key = new Key(idx);
		if (key.equalsKey(Cache.cacheKey)) {
			return Cache.cacheValue;
		} else {
			Cache.cacheKey = key;
			Cache.cacheValue = createValue(idx);
			return Cache.cacheValue;
		}
	}
	static void main() { print(getValue(1)); }
}
`

// framestateSrc is the paper's Listing 8: after inlining the constructor,
// the field store carries a two-frame state chain; after PEA the store's
// state references a virtual object descriptor instead of the allocation
// (Figure 8).
const framestateSrc = `
class Integer {
	int value;
	Integer(int value) { this.value = value; }
}
class Main {
	static Integer global;
	static void foo(int x) {
		Integer i = new Integer(x);
		global = null;
		global = i;
	}
	static void main() { foo(7); }
}
`

func main() {
	example := flag.String("example", "cachekey", "built-in example: cachekey (Figure 2) or framestate (Figure 8)")
	file := flag.String("file", "", "MiniJava source file to dump instead of a built-in example")
	method := flag.String("method", "", "method to dump as Class.method (defaults per example)")
	phase := flag.String("phase", "pea", "pipeline stage: built, inlined, pea, final, or any optimization phase name")
	dotOut := flag.Bool("dot", false, "emit Graphviz DOT instead of text (Figure 2 as a drawing)")
	trace := flag.Bool("trace", false, "log the escape analysis decisions to stderr")
	flag.Parse()

	var src, defaultMethod string
	switch {
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
		if *method == "" {
			fatal(fmt.Errorf("-file requires -method Class.method"))
		}
	case *example == "cachekey":
		src, defaultMethod = cachekeySrc, "Main.getValue"
	case *example == "framestate":
		src, defaultMethod = framestateSrc, "Main.foo"
	default:
		fatal(fmt.Errorf("unknown example %q", *example))
	}
	if *method == "" {
		*method = defaultMethod
	}

	prog, err := mj.Compile(src, "Main.main")
	if err != nil {
		fatal(err)
	}
	dot := strings.LastIndex(*method, ".")
	if dot <= 0 {
		fatal(fmt.Errorf("bad -method %q", *method))
	}
	cls := prog.ClassByName((*method)[:dot])
	if cls == nil {
		fatal(fmt.Errorf("no class %q", (*method)[:dot]))
	}
	m := cls.MethodByName((*method)[dot+1:])
	if m == nil {
		fatal(fmt.Errorf("no method %q", *method))
	}

	// All dumping goes through the obs snapshot hooks: the named stages
	// below and every optimization phase publish their IR to the sink,
	// and the single consumer registered here prints whichever snapshots
	// match the selected -phase.
	sink := obs.NewSink()
	shown := false
	sink.OnSnapshot(func(ph, _ string, render func() string) {
		if ph != *phase {
			return
		}
		shown = true
		fmt.Print(render())
	})

	var g *ir.Graph
	snap := func(name, banner string) {
		sink.Snapshot(name, *method, func() string {
			if *dotOut {
				return ir.DumpDot(g)
			}
			return fmt.Sprintf("=== %s (%s) ===\n%s\n", *method, banner, ir.Dump(g))
		})
	}

	g, err = build.BuildWith(m, sink)
	if err != nil {
		fatal(err)
	}
	snap("built", "as built from bytecode")
	if *phase == "built" {
		return
	}
	pipe := &opt.Pipeline{Phases: []opt.Phase{
		&opt.Inliner{BuildGraph: build.Build, Program: prog, Sink: sink},
		opt.Canonicalize{},
		opt.SimplifyCFG{},
		opt.GVN{},
		opt.DCE{},
	}, Sink: sink}
	if err := pipe.Run(g); err != nil {
		fatal(err)
	}
	snap("inlined", "after inlining and canonicalization — paper Figure 2 / Listing 5")
	if *phase == "inlined" {
		return
	}
	conf := pea.Config{Sink: sink}
	if *trace {
		conf.Trace = os.Stderr
	}
	res, err := pea.Run(g, conf)
	if err != nil {
		fatal(err)
	}
	if err := ir.Verify(g); err != nil {
		fatal(fmt.Errorf("PEA produced invalid IR: %w", err))
	}
	snap("pea", fmt.Sprintf("after Partial Escape Analysis — paper Listing 6 / Figure 8 "+
		"(virtualized %d allocs, %d monitors; %d materialization sites)",
		res.VirtualizedAllocs, res.ElidedMonitors, res.MaterializeSites))
	if *phase == "pea" {
		return
	}
	post := opt.Standard()
	post.Sink = sink
	if err := post.Run(g); err != nil {
		fatal(err)
	}
	snap("final", "final")
	if !shown {
		fatal(fmt.Errorf("no snapshot for -phase %q (no such stage, or the phase never changed the IR)", *phase))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "irdump:", err)
	os.Exit(1)
}
