// Command peavm compiles and runs a MiniJava program on the PEA VM: an
// interpreter with a JIT whose escape analysis configuration is selectable
// (none, flow-insensitive, or the paper's Partial Escape Analysis), with
// optional speculative branch pruning and deoptimization.
//
// Usage:
//
//	peavm [-ea off|ea|pea] [-speculate] [-runs N] [-stats] [-seed S] prog.mj
//
// The program must define a static Main.main method. Printed values go to
// stdout, one per line. With -stats the VM reports allocation, monitor,
// compilation and deoptimization counters to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"pea/internal/mj"
	"pea/internal/vm"
)

func main() {
	eaMode := flag.String("ea", "pea", "escape analysis: off, ea (flow-insensitive), or pea")
	speculate := flag.Bool("speculate", false, "enable speculative branch pruning with deoptimization")
	interpret := flag.Bool("interpret", false, "disable the JIT entirely")
	runs := flag.Int("runs", 1, "number of times to run Main.main (later runs execute compiled code)")
	stats := flag.Bool("stats", false, "print VM statistics to stderr")
	seed := flag.Uint64("seed", 1, "PRNG seed for the rand() intrinsic")
	threshold := flag.Int64("threshold", 20, "JIT compile threshold (invocations)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: peavm [flags] prog.mj")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := mj.Compile(string(src), "Main.main")
	if err != nil {
		fatal(err)
	}

	opts := vm.Options{
		Speculate:        *speculate,
		Interpret:        *interpret,
		Seed:             *seed,
		CompileThreshold: *threshold,
	}
	switch *eaMode {
	case "off":
		opts.EA = vm.EAOff
	case "ea":
		opts.EA = vm.EAFlowInsensitive
	case "pea":
		opts.EA = vm.EAPartial
	default:
		fatal(fmt.Errorf("unknown -ea mode %q", *eaMode))
	}

	machine := vm.New(prog, opts)
	for i := 0; i < *runs; i++ {
		if _, err := machine.Run(); err != nil {
			fatal(err)
		}
	}
	for _, v := range machine.Env.Output {
		fmt.Println(v)
	}
	if *stats {
		s := machine.Env.Stats
		fmt.Fprintf(os.Stderr, "allocations:      %d (%d bytes)\n", s.Allocations, s.AllocatedBytes)
		fmt.Fprintf(os.Stderr, "monitor ops:      %d\n", s.MonitorOps)
		fmt.Fprintf(os.Stderr, "field loads/stores: %d/%d\n", s.FieldLoads, s.FieldStores)
		fmt.Fprintf(os.Stderr, "materializations: %d\n", s.Materializations)
		fmt.Fprintf(os.Stderr, "deoptimizations:  %d\n", s.Deopts)
		fmt.Fprintf(os.Stderr, "compiled methods: %d (invalidated %d)\n",
			machine.VMStats.CompiledMethods, machine.VMStats.InvalidatedMethods)
		fmt.Fprintf(os.Stderr, "model cycles:     %d\n", machine.Env.Cycles)
		for m, cerr := range machine.FailedCompilations() {
			fmt.Fprintf(os.Stderr, "compile failure:  %s: %v\n", m.QualifiedName(), cerr)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peavm:", err)
	os.Exit(1)
}
