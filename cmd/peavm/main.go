// Command peavm compiles and runs a MiniJava program on the PEA VM: an
// interpreter with a JIT whose escape analysis configuration is selectable
// (none, flow-insensitive, or the paper's Partial Escape Analysis), with
// optional speculative branch pruning and deoptimization.
//
// Usage:
//
//	peavm [-ea off|ea|pea] [-speculate] [-summaries] [-summaries-report]
//	      [-runs N] [-stats] [-seed S]
//	      [-backend oracle|closure|both]
//	      [-store DIR] [-store-max-bytes N]
//	      [-osr-threshold N] [-jit-async] [-jit-workers N] [-jit-queue-cap N]
//	      [-compile-deadline D] [-max-ir-nodes N] [-crash-dir DIR]
//	      [-check off|basic|strict] [-trace-events out.jsonl] [-metrics]
//	      [-escape-report] [-flight-dump out.jsonl] [-trace-chrome out.json]
//	      [-debug-addr host:port]
//	      prog.mj
//
// -backend selects how compiled methods execute: "closure" (the default)
// runs graphs lowered to closure sequences — a template JIT with real
// wall-clock speedups — while "oracle" runs the tree-walking reference
// executor that also charges the repo's machine-independent cycle model.
// "both" runs the program on two VMs, one per backend, in lockstep and
// cross-checks per-run results and errors, printed output, and (in the
// deterministic synchronous configuration) the guest-visible heap effects:
// allocation, monitor, field, deoptimization and rematerialization
// counters. Any divergence is a lowering bug and exits nonzero. Stats and
// observability flags describe the closure VM in this mode.
//
// With -jit-async hot methods are compiled on background broker workers
// while the interpreter keeps running them (tier-up); the default compiles
// synchronously, which keeps runs deterministic.
//
// With -osr-threshold N a loop that takes N back edges triggers an
// on-stack-replacement compilation: the method is compiled with an
// alternate entry at the loop header and the running interpreter frame is
// transferred into it mid-invocation, so even a single long call tiers up.
//
// The program must define a static Main.main method. Printed values go to
// stdout, one per line. With -stats the VM reports allocation, monitor,
// compilation and deoptimization counters to stderr. With -trace-events
// the full structured event stream of the compiler and VM (phase timings,
// inlining and PEA decisions, deopts, rematerializations) is written as
// JSON lines; with -metrics the compiler metrics registry is printed as a
// table to stderr after the run.
//
// The VM also keeps an always-on flight recorder: a fixed-size in-memory
// ring of recent JIT lifecycle records (compiles, queue depths, OSR,
// deopts, materializations, panics, budget bailouts) that costs zero
// allocations per record. -flight-dump writes its final contents as JSON
// lines ('-' for stderr) for peastat; on a contained compiler panic with
// -crash-dir set, a dump lands next to the crash reproducer automatically.
// -escape-report prints the per-allocation-site escape attribution table
// (the paper's Table 1, per site: virtualized, materialized, remats, lock
// elisions, dominant materialization reason). -trace-chrome converts the
// event stream to Chrome trace_event JSON (load in chrome://tracing or
// Perfetto). -debug-addr serves all of the above live over HTTP
// (/debug/pea/flight, /debug/pea/escape, /debug/pea/metrics,
// /debug/pprof/*) for the duration of the run.
//
// The JIT is fault-contained: a compiler panic is recovered per method
// (the method degrades to interpretation) and, with -crash-dir, captured
// as a minimized JSON reproducer. -compile-deadline and -max-ir-nodes
// bound each compile's wall-clock time and IR size; a budget overrun is a
// transient failure that re-arms the method's hotness trigger with
// exponential backoff, as does a -jit-queue-cap rejection. The PEA_FAULT
// environment variable injects panics or delays at named compile points
// for testing (see internal/broker.FaultFromEnv).
//
// With -check the compiler sanitizer runs between phases: "basic" is the
// structural IR verifier, "strict" additionally proves SSA dominance,
// cross-checks FrameStates against the bytecode verifier's stack shapes,
// and validates virtual-object and OSR metadata. The PEA_CHECK
// environment variable floors the flag, so PEA_CHECK=strict turns any
// invocation strict. The default "off" adds zero compile-time overhead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pea/internal/broker"
	"pea/internal/check"
	"pea/internal/mj"
	"pea/internal/obs"
	"pea/internal/vm"
)

func main() {
	eaMode := flag.String("ea", "pea", "escape analysis: off, ea (flow-insensitive), or pea")
	backendName := flag.String("backend", "closure", "execution backend: oracle (tree-walking cycle model), closure (template JIT), or both (lockstep cross-check)")
	speculate := flag.Bool("speculate", false, "enable speculative branch pruning with deoptimization")
	summaries := flag.Bool("summaries", false, "enable inter-procedural escape summaries: EA/PEA keep provably-unobserved call arguments virtual across non-inlined calls, and the inliner prioritizes sites whose inlining unlocks scalar replacement")
	summariesReport := flag.Bool("summaries-report", false, "print the per-method summary table (param escape lattice, fresh returns, predicates) to stderr after the run; implies -summaries")
	interpret := flag.Bool("interpret", false, "disable the JIT entirely")
	runs := flag.Int("runs", 1, "number of times to run Main.main (later runs execute compiled code)")
	stats := flag.Bool("stats", false, "print VM statistics to stderr")
	seed := flag.Uint64("seed", 1, "PRNG seed for the rand() intrinsic")
	threshold := flag.Int64("threshold", 20, "JIT compile threshold (invocations)")
	osrThreshold := flag.Int64("osr-threshold", 0, "back-edge count triggering on-stack replacement of hot loops (0 = disabled)")
	jitAsync := flag.Bool("jit-async", false, "compile hot methods on background broker workers (tier-up)")
	jitWorkers := flag.Int("jit-workers", 0, "background JIT workers with -jit-async (0 = GOMAXPROCS)")
	jitQueueCap := flag.Int("jit-queue-cap", 0, "bound on the pending JIT compile queue; rejected methods re-arm with backoff (0 = broker default)")
	compileDeadline := flag.Duration("compile-deadline", 0, "per-compile wall-clock budget; overruns degrade the method to the interpreter with backoff (0 = unbounded)")
	maxIRNodes := flag.Int("max-ir-nodes", 0, "per-compile IR node budget checked at phase boundaries (0 = unbounded)")
	crashDir := flag.String("crash-dir", "", "write minimized crash reproducers for contained compiler panics to this directory")
	storeDir := flag.String("store", "", "persistent artifact store directory: compiled graphs are written through and replayed on later runs over the same directory (empty = memory-only cache)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "byte bound on the -store directory; writes over the bound expel oldest-modified artifacts first (0 = unbounded)")
	checkMode := flag.String("check", "off", "compiler sanitizer level: off, basic, or strict (floored by PEA_CHECK)")
	traceEvents := flag.String("trace-events", "", "write structured compiler/VM events as JSON lines to this file ('-' for stderr)")
	traceText := flag.Bool("trace-text", false, "also render events human-readably to stderr")
	metrics := flag.Bool("metrics", false, "print the compiler metrics table to stderr after the run")
	escapeReport := flag.Bool("escape-report", false, "print the per-allocation-site escape attribution table to stderr after the run")
	flightDump := flag.String("flight-dump", "", "write the flight-recorder ring as JSON lines to this file after the run ('-' for stderr)")
	traceChrome := flag.String("trace-chrome", "", "write the event stream as Chrome trace_event JSON to this file (load in chrome://tracing)")
	debugAddr := flag.String("debug-addr", "", "serve live introspection (/debug/pea/*, /debug/pprof/*) on this address during the run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: peavm [flags] prog.mj")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := mj.Compile(string(src), "Main.main")
	if err != nil {
		fatal(err)
	}

	if *summariesReport {
		*summaries = true
	}
	opts := vm.Options{
		Speculate:        *speculate,
		Summaries:        *summaries,
		Interpret:        *interpret,
		Seed:             *seed,
		CompileThreshold: *threshold,
		OSRThreshold:     *osrThreshold,
		Async:            *jitAsync,
		JITWorkers:       *jitWorkers,
		JITQueueCap:      *jitQueueCap,
		CompileDeadline:  *compileDeadline,
		MaxIRNodes:       *maxIRNodes,
		CrashDir:         *crashDir,
	}
	switch *eaMode {
	case "off":
		opts.EA = vm.EAOff
	case "ea":
		opts.EA = vm.EAFlowInsensitive
	case "pea":
		opts.EA = vm.EAPartial
	default:
		fatal(fmt.Errorf("unknown -ea mode %q", *eaMode))
	}
	lvl, err := check.ParseLevel(*checkMode)
	if err != nil {
		fatal(err)
	}
	opts.CheckLevel = lvl
	if *storeDir != "" {
		store, err := broker.NewStore(*storeDir)
		if err != nil {
			fatal(err)
		}
		store.SetMaxBytes(*storeMaxBytes)
		opts.Store = store
	}

	// Observability: events to JSONL/text/chrome-trace, escape attribution,
	// metrics registry.
	var met *obs.Metrics
	var escTable *obs.EscapeTable
	if *traceEvents != "" || *traceText || *metrics ||
		*escapeReport || *traceChrome != "" || *debugAddr != "" {
		var backends []obs.Backend
		if *traceEvents != "" {
			var w io.Writer = os.Stderr
			if *traceEvents != "-" {
				f, err := os.Create(*traceEvents)
				if err != nil {
					fatal(err)
				}
				defer f.Close()
				w = f
			}
			backends = append(backends, obs.NewJSONBackend(w))
		}
		if *traceText {
			backends = append(backends, obs.NewTextBackend(os.Stderr))
		}
		if *escapeReport || *debugAddr != "" {
			escTable = obs.NewEscapeTable()
			backends = append(backends, escTable)
		}
		if *traceChrome != "" {
			f, err := os.Create(*traceChrome)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			tw := obs.NewTraceWriter(f)
			defer tw.Close() // runs before f.Close (LIFO)
			backends = append(backends, tw)
		}
		opts.Sink = obs.NewSink(backends...)
		met = obs.NewMetrics()
		met.PublishExpvar()
		opts.Metrics = met
	}

	// Backend selection. In -backend=both mode the closure VM is primary
	// (it owns stdout, stats and observability); a second VM runs the same
	// program on the oracle backend and every observable effect is compared.
	var shadow *vm.VM
	if *backendName == "both" {
		opts.Backend = vm.BackendClosure
		sopts := opts
		sopts.Backend = vm.BackendOracle
		sopts.Sink = nil
		sopts.Metrics = nil
		sopts.CrashDir = ""
		shadow = vm.New(prog, sopts)
		defer shadow.Close()
	} else {
		b, err := vm.ParseBackend(*backendName)
		if err != nil {
			fatal(err)
		}
		opts.Backend = b
	}

	machine := vm.New(prog, opts)
	defer machine.Close()
	if *debugAddr != "" {
		ln, err := obs.Serve(*debugAddr, machine.Flight(), escTable, met)
		if err != nil {
			fatal(err)
		}
		defer ln.Close()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/pea/flight\n", ln.Addr())
	}
	for i := 0; i < *runs; i++ {
		v, err := machine.Run()
		if shadow != nil {
			ov, oerr := shadow.Run()
			if (err != nil) != (oerr != nil) {
				fatal(fmt.Errorf("backend divergence on run %d: closure error %v, oracle error %v", i, err, oerr))
			}
			if err == nil && !v.Equal(ov) {
				fatal(fmt.Errorf("backend divergence on run %d: closure result %v, oracle result %v", i, v, ov))
			}
		}
		if err != nil {
			fatal(err)
		}
	}
	machine.DrainJIT()
	if shadow != nil {
		shadow.DrainJIT()
		if err := crossCheck(machine, shadow, opts.Async); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "backend cross-check: closure matches oracle")
	}
	for _, v := range machine.Env.Output {
		fmt.Println(v)
	}
	if *stats {
		s := machine.Env.Stats
		fmt.Fprintf(os.Stderr, "allocations:      %d (%d bytes)\n", s.Allocations, s.AllocatedBytes)
		fmt.Fprintf(os.Stderr, "monitor ops:      %d\n", s.MonitorOps)
		fmt.Fprintf(os.Stderr, "field loads/stores: %d/%d\n", s.FieldLoads, s.FieldStores)
		fmt.Fprintf(os.Stderr, "materializations: %d\n", s.Materializations)
		fmt.Fprintf(os.Stderr, "deoptimizations:  %d\n", s.Deopts)
		fmt.Fprintf(os.Stderr, "compiled methods: %d (invalidated %d)\n",
			machine.VMStats.CompiledMethods, machine.VMStats.InvalidatedMethods)
		vs := machine.Stats()
		fmt.Fprintf(os.Stderr, "osr:              requests %d, compiled %d, entries %d\n",
			vs.OSRRequests, vs.OSRCompilations, vs.OSREntries)
		bs := machine.Broker().Stats()
		fmt.Fprintf(os.Stderr, "jit broker:       submitted %d, compiled %d, cache hits %d/%d, disk hits %d, dedup %d, rejected %d, max queue %d, busy %s\n",
			bs.Submitted, bs.Compiled, bs.CacheHits, bs.CacheHits+bs.CacheMisses, bs.DiskHits, bs.Dedup, bs.Rejected, bs.MaxQueue,
			time.Duration(bs.BusyNS).Round(time.Microsecond))
		if st := machine.Broker().Store(); st != nil {
			ss := st.Stats()
			fmt.Fprintf(os.Stderr, "artifact store:   %s: %d artifacts, loads %d hit / %d miss / %d rejected, writes %d (%d failed), expelled %d\n",
				st.Dir(), st.Len(), ss.Hits, ss.Misses, ss.Rejected, ss.Writes, ss.WriteErrors, ss.Expelled)
			if ss.SummaryHits+ss.SummaryMisses+ss.SummaryWrites > 0 {
				fmt.Fprintf(os.Stderr, "summary store:    loads %d hit / %d miss, writes %d\n",
					ss.SummaryHits, ss.SummaryMisses, ss.SummaryWrites)
			}
		}
		for i, ns := range bs.WorkerBusyNS {
			if ns > 0 {
				fmt.Fprintf(os.Stderr, "  jit worker %d:   busy %s\n", i, time.Duration(ns).Round(time.Microsecond))
			}
		}
		if bs.Panics > 0 || vs.TransientFailures > 0 || vs.Rearms > 0 || vs.CrashRepros > 0 {
			fmt.Fprintf(os.Stderr, "jit faults:       panics %d, transient %d, rearms %d, crash repros %d\n",
				bs.Panics, vs.TransientFailures, vs.Rearms, vs.CrashRepros)
		}
		fmt.Fprintf(os.Stderr, "model cycles:     %d\n", machine.Env.Cycles)
		for m, cerr := range machine.FailedCompilations() {
			fmt.Fprintf(os.Stderr, "compile failure:  %s: %v\n", m.QualifiedName(), cerr)
		}
	}
	if *metrics {
		fmt.Fprint(os.Stderr, met.Snapshot().Table())
	}
	if *escapeReport {
		fmt.Fprint(os.Stderr, escTable.Table())
	}
	if *summariesReport {
		if s := machine.Summaries(); s != nil {
			fmt.Fprint(os.Stderr, s.Table())
		}
	}
	if *flightDump != "" {
		if *flightDump == "-" {
			if err := machine.Flight().WriteJSON(os.Stderr); err != nil {
				fatal(err)
			}
		} else if err := machine.Flight().WriteFile(*flightDump); err != nil {
			fatal(err)
		}
	}
}

// crossCheck compares everything the guest program could observe between
// the closure-backend VM and its oracle shadow: printed output always, and
// in the deterministic synchronous configuration also the heap-effect
// counters. With -jit-async the install timing of compiled code varies
// between the two VMs, so calls legitimately split differently between
// interpreter and compiled code and the counters are not comparable.
func crossCheck(closure, oracle *vm.VM, async bool) error {
	co, oo := closure.Env.Output, oracle.Env.Output
	if len(co) != len(oo) {
		return fmt.Errorf("backend divergence: closure printed %d values, oracle %d", len(co), len(oo))
	}
	for i := range co {
		if co[i] != oo[i] {
			return fmt.Errorf("backend divergence: output[%d] is %d under closure, %d under oracle", i, co[i], oo[i])
		}
	}
	if async {
		return nil
	}
	cs, rs := closure.Env.Stats, oracle.Env.Stats
	for _, c := range []struct {
		name     string
		got, ref int64
	}{
		{"allocations", cs.Allocations, rs.Allocations},
		{"allocated bytes", cs.AllocatedBytes, rs.AllocatedBytes},
		{"monitor ops", cs.MonitorOps, rs.MonitorOps},
		{"field loads", cs.FieldLoads, rs.FieldLoads},
		{"field stores", cs.FieldStores, rs.FieldStores},
		{"deoptimizations", cs.Deopts, rs.Deopts},
		{"materializations", cs.Materializations, rs.Materializations},
	} {
		if c.got != c.ref {
			return fmt.Errorf("backend divergence: %s %d under closure, %d under oracle", c.name, c.got, c.ref)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peavm:", err)
	os.Exit(1)
}
