// Command peabench regenerates the paper's evaluation (§6): Table 1 for
// the DaCapo, ScalaDaCapo and SPECjbb2005 workload suites, the lock
// operation observations of §6.1, and the flow-insensitive-EA vs PEA
// comparison of §6.2.
//
// Usage:
//
//	peabench [-suite dacapo|scaladacapo|specjbb|all] [-mode pea|ea]
//	         [-compare] [-backends] [-locks] [-compiler] [-full] [-warmup N]
//	         [-iters N] [-j N] [-jit-async] [-jit-workers N] [-out FILE]
//
// -backends runs the execution-backend experiment: every Table 1 workload
// plus the OSR hot loop measured under the interpreter, the oracle backend
// (tree-walking cycle model), and the closure backend (template JIT), with
// real wall_ns_per_op and allocs_per_op next to the modeled cycles and a
// cross-backend heap-effect differential check.
//
// With -compiler each Table 1 block is followed by a per-benchmark
// compiler-metrics table (virtualized allocations, materialization sites,
// elided locks, deopts, escape-analysis phase time) with a compact JSON
// column for machine consumption.
//
// -j N measures N workloads concurrently (each workload still runs its
// warmup and measured iterations on one goroutine, so per-workload numbers
// are unchanged). -jit-async compiles hot methods on background broker
// workers instead of synchronously on the execution thread. -out writes the
// full result set as JSON, including the compiled-code-cache outcome of the
// run's shared artifact store.
package main

import (
	"flag"
	"fmt"
	"os"

	"pea/internal/bench"
	"pea/internal/vm"
)

func main() {
	suite := flag.String("suite", "all", "suite to run: dacapo, scaladacapo, specjbb, or all")
	mode := flag.String("mode", "pea", "analysis to compare against the no-EA baseline: pea or ea")
	compare := flag.Bool("compare", false, "run the section-6.2 EA vs PEA comparison instead of Table 1")
	osr := flag.Bool("osr", false, "run the on-stack-replacement hot-loop experiment instead of Table 1")
	backends := flag.Bool("backends", false, "run the execution-backend experiment (interp vs oracle vs closure, wall-clock) instead of Table 1")
	ablate := flag.Bool("ablate", false, "run the ablation study over PEA's design choices")
	locks := flag.Bool("locks", false, "also print monitor-operation changes (section 6.1)")
	compiler := flag.Bool("compiler", false, "also print per-benchmark compiler metrics (decision counters, phase times, JSON)")
	full := flag.Bool("full", false, "include the DaCapo rows the paper omits from Table 1")
	warmup := flag.Int("warmup", bench.DefaultRuns.Warmup, "warmup iterations per benchmark")
	iters := flag.Int("iters", bench.DefaultRuns.Iters, "measured iterations per benchmark")
	jobs := flag.Int("j", 1, "number of workloads measured concurrently")
	jitAsync := flag.Bool("jit-async", false, "compile hot methods on background broker workers (tier-up)")
	jitWorkers := flag.Int("jit-workers", 0, "background JIT workers per VM with -jit-async (0 = GOMAXPROCS)")
	out := flag.String("out", "", "write results as JSON to this file")
	flag.Parse()

	rc := bench.RunConfig{
		Warmup:     *warmup,
		Iters:      *iters,
		Jobs:       *jobs,
		Async:      *jitAsync,
		JITWorkers: *jitWorkers,
		Share:      bench.NewShared(),
	}

	if *backends {
		res, err := bench.RunBackendExperiment(rc)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatBackendTable(res))
		if *out != "" {
			data, err := res.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return
	}

	if *osr {
		res, err := bench.RunOSRExperiment(bench.DefaultOSRConfig)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("OSR hot loop (%d iterations in one call, threshold %d, %s):\n",
			res.Config.Iterations, res.Config.Threshold, res.Mode)
		fmt.Printf("  interpreter: %12d cycles, %7d allocations\n", res.Interp.Cycles, res.Interp.Allocations)
		fmt.Printf("  with OSR:    %12d cycles, %7d allocations (requests %d, compiles %d, entries %d)\n",
			res.OSR.Cycles, res.OSR.Allocations, res.OSR.OSRRequests, res.OSR.OSRCompiles, res.OSR.OSREntries)
		fmt.Printf("  speedup:     %.2fx (checksum %d in both modes)\n", res.Speedup, res.Checksum)
		if *out != "" {
			data, err := res.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *out)
		}
		return
	}

	if *ablate {
		rs, err := bench.RunAblation()
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatAblation(rs))
		return
	}

	if *compare {
		cs, err := bench.RunComparison(rc)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatComparison(cs))
		fmt.Println("\npaper section 6.2: DaCapo 0.9% vs 2.2%, ScalaDaCapo 7.4% vs 10.4%, SPECjbb2005 5.4% vs 8.7%")
		if *compiler {
			hits, misses := rc.Share.CacheStats()
			fmt.Printf("\ncode cache: %d hits, %d misses\n", hits, misses)
		}
		return
	}

	var m vm.EAMode
	switch *mode {
	case "pea":
		m = vm.EAPartial
	case "ea":
		m = vm.EAFlowInsensitive
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	suites := []string{*suite}
	if *suite == "all" {
		suites = bench.SuiteNames()
	}
	report := bench.Report{Config: bench.ReportConfig{
		Warmup: *warmup, Iters: *iters, Jobs: *jobs,
		Async: *jitAsync, JITWorkers: *jitWorkers,
	}}
	for _, s := range suites {
		rows, err := bench.RunSuite(s, m, rc)
		if err != nil {
			fatal(err)
		}
		report.Suites = append(report.Suites, bench.NewSuiteResult(s, m.String(), rows))
		title := fmt.Sprintf("Table 1 (%s, without vs with %s)", s, *mode)
		fmt.Print(bench.FormatTable1(title, rows, !*full))
		if *locks {
			fmt.Println()
			fmt.Print(bench.FormatLockTable(rows))
		}
		if *compiler {
			fmt.Println()
			fmt.Print(bench.FormatCompilerTable(
				fmt.Sprintf("Compiler metrics (%s, %s configuration)", s, *mode), rows, !*full))
		}
		fmt.Println()
	}
	hits, misses := rc.Share.CacheStats()
	report.CodeCache = bench.CacheSummary{Hits: hits, Misses: misses}
	if *compiler {
		fmt.Printf("code cache: %d hits, %d misses\n", hits, misses)
	}
	if *out != "" {
		data, err := report.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peabench:", err)
	os.Exit(1)
}
