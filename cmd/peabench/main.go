// Command peabench regenerates the paper's evaluation (§6): Table 1 for
// the DaCapo, ScalaDaCapo and SPECjbb2005 workload suites, the lock
// operation observations of §6.1, and the flow-insensitive-EA vs PEA
// comparison of §6.2.
//
// Usage:
//
//	peabench [-suite dacapo|scaladacapo|specjbb|all] [-mode pea|ea]
//	         [-compare] [-locks] [-compiler] [-full] [-warmup N] [-iters N]
//
// With -compiler each Table 1 block is followed by a per-benchmark
// compiler-metrics table (virtualized allocations, materialization sites,
// elided locks, deopts, escape-analysis phase time) with a compact JSON
// column for machine consumption.
package main

import (
	"flag"
	"fmt"
	"os"

	"pea/internal/bench"
	"pea/internal/vm"
)

func main() {
	suite := flag.String("suite", "all", "suite to run: dacapo, scaladacapo, specjbb, or all")
	mode := flag.String("mode", "pea", "analysis to compare against the no-EA baseline: pea or ea")
	compare := flag.Bool("compare", false, "run the section-6.2 EA vs PEA comparison instead of Table 1")
	ablate := flag.Bool("ablate", false, "run the ablation study over PEA's design choices")
	locks := flag.Bool("locks", false, "also print monitor-operation changes (section 6.1)")
	compiler := flag.Bool("compiler", false, "also print per-benchmark compiler metrics (decision counters, phase times, JSON)")
	full := flag.Bool("full", false, "include the DaCapo rows the paper omits from Table 1")
	warmup := flag.Int("warmup", bench.DefaultRuns.Warmup, "warmup iterations per benchmark")
	iters := flag.Int("iters", bench.DefaultRuns.Iters, "measured iterations per benchmark")
	flag.Parse()

	rc := bench.RunConfig{Warmup: *warmup, Iters: *iters}

	if *ablate {
		rs, err := bench.RunAblation()
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatAblation(rs))
		return
	}

	if *compare {
		cs, err := bench.RunComparison(rc)
		if err != nil {
			fatal(err)
		}
		fmt.Print(bench.FormatComparison(cs))
		fmt.Println("\npaper section 6.2: DaCapo 0.9% vs 2.2%, ScalaDaCapo 7.4% vs 10.4%, SPECjbb2005 5.4% vs 8.7%")
		return
	}

	var m vm.EAMode
	switch *mode {
	case "pea":
		m = vm.EAPartial
	case "ea":
		m = vm.EAFlowInsensitive
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}

	suites := []string{*suite}
	if *suite == "all" {
		suites = bench.SuiteNames()
	}
	for _, s := range suites {
		rows, err := bench.RunSuite(s, m, rc)
		if err != nil {
			fatal(err)
		}
		title := fmt.Sprintf("Table 1 (%s, without vs with %s)", s, *mode)
		fmt.Print(bench.FormatTable1(title, rows, !*full))
		if *locks {
			fmt.Println()
			fmt.Print(bench.FormatLockTable(rows))
		}
		if *compiler {
			fmt.Println()
			fmt.Print(bench.FormatCompilerTable(
				fmt.Sprintf("Compiler metrics (%s, %s configuration)", s, *mode), rows, !*full))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peabench:", err)
	os.Exit(1)
}
