// Command peaserve is the multi-tenant PEA VM server: a long-lived HTTP
// process that accepts MiniJava programs, runs each request in its own VM
// (private profile and code table, per-tenant compile budgets, contained
// compiler panics), and shares one JIT across all tenants — one worker
// pool, one bounded in-memory code cache, and, with -store, one
// content-addressed persistent artifact store. Cache keys are content
// fingerprints of the tenant's linked bytecode, so identical programs
// share compiled artifacts across tenants, across restarts, and across
// peaserve processes pointed at the same store directory: a restarted
// server recompiles (approximately) nothing.
//
// Usage:
//
//	peaserve [-addr host:port] [-store DIR] [-ea off|ea|pea]
//	         [-backend oracle|closure] [-threshold N] [-jit-workers N]
//	         [-cache-entries N] [-compile-deadline D] [-max-ir-nodes N]
//	         [-check off|basic|strict] [-max-source-bytes N] [-max-runs N]
//
// API:
//
//	POST /run     {"source": "<minijava>", "runs": N}
//	              → {"output": [...], "compiled_methods": ..., "pipeline_compiles": ..., ...}
//	GET  /stats   → broker/cache/store counters and the two-tier hit rate
//	GET  /healthz → 200 ok
//
// SIGINT/SIGTERM drains in-flight requests before exiting. Drive it with
// cmd/peaload to measure latency percentiles and cache hit rates.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pea/internal/check"
	"pea/internal/serve"
	"pea/internal/vm"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	storeDir := flag.String("store", "", "persistent artifact store directory (empty = memory-only cache)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "byte bound on the -store directory; writes over the bound expel oldest-modified artifacts first (0 = unbounded)")
	summaries := flag.Bool("summaries", false, "enable inter-procedural escape summaries for tenant compiles (amortized across tenants via the shared broker and store)")
	eaMode := flag.String("ea", "pea", "escape analysis: off, ea (flow-insensitive), or pea")
	backendName := flag.String("backend", "closure", "execution backend: oracle or closure")
	threshold := flag.Int64("threshold", 20, "JIT compile threshold (invocations)")
	jitWorkers := flag.Int("jit-workers", 0, "shared background JIT workers (0 = compile on request goroutines)")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory code cache bound (0 = default)")
	compileDeadline := flag.Duration("compile-deadline", 2*time.Second, "per-tenant compile wall-clock budget (0 = unbounded)")
	maxIRNodes := flag.Int("max-ir-nodes", 200000, "per-tenant compile IR node budget (0 = unbounded)")
	checkMode := flag.String("check", "basic", "sanitizer level for compiles and cache/store loads")
	maxSourceBytes := flag.Int64("max-source-bytes", 1<<20, "request body size bound")
	maxRuns := flag.Int("max-runs", 64, "per-request run count bound")
	flag.Parse()

	opts := serve.Options{
		CompileThreshold: *threshold,
		CompileDeadline:  *compileDeadline,
		MaxIRNodes:       *maxIRNodes,
		Workers:          *jitWorkers,
		CacheEntries:     *cacheEntries,
		StoreDir:         *storeDir,
		StoreMaxBytes:    *storeMaxBytes,
		Summaries:        *summaries,
		MaxSourceBytes:   *maxSourceBytes,
		MaxRuns:          *maxRuns,
	}
	switch *eaMode {
	case "off":
		opts.EA = vm.EAOff
	case "ea":
		opts.EA = vm.EAFlowInsensitive
	case "pea":
		opts.EA = vm.EAPartial
	default:
		fatal(fmt.Errorf("unknown -ea mode %q", *eaMode))
	}
	backend, err := vm.ParseBackend(*backendName)
	if err != nil {
		fatal(err)
	}
	opts.Backend = backend
	lvl, err := check.ParseLevel(*checkMode)
	if err != nil {
		fatal(err)
	}
	opts.CheckLevel = lvl

	srv, err := serve.New(opts)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		<-stop
		fmt.Fprintln(os.Stderr, "peaserve: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "peaserve: shutdown:", err)
		}
		srv.Close()
		close(done)
	}()

	where := "memory-only"
	if *storeDir != "" {
		where = "store " + *storeDir
	}
	fmt.Fprintf(os.Stderr, "peaserve: listening on %s (%s, %s backend, %s)\n",
		*addr, *eaMode, *backendName, where)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-done
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "peaserve:", err)
	os.Exit(1)
}
