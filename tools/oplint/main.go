// Command oplint flags non-exhaustive switch statements over the compiler's
// opcode enums (pea/internal/ir.Op and pea/internal/bc.Op). A switch over an
// opcode type must name every exported constant of the enum — a default
// clause does not excuse missing cases, because defaults are exactly how a
// newly added opcode silently falls through the back end. Sites that are
// intentionally partial (predicates over a subset of ops, disassembler
// fallbacks) opt out with a `// oplint:ignore` comment on or immediately
// above the switch.
//
// The command runs in two modes:
//
//   - as a vet tool: go vet -vettool=$(go env GOPATH)/bin/oplint ./...
//     (it speaks cmd/go's vet config protocol: -V=full, -flags, *.cfg);
//   - standalone: oplint [packages], defaulting to ./..., which drives
//     `go list -export` itself.
//
// OpInvalid (ir.Op's poison zero value) is excluded from the required set:
// it never flows into a live switch.
//
// oplint uses only the standard library so the repository carries no
// analysis-framework dependency.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// targets are the enum types whose switches must be exhaustive, keyed by
// "importpath.TypeName", with constants to exclude from the required set.
var targets = map[string]map[string]bool{
	"pea/internal/ir.Op": {"OpInvalid": true},
	"pea/internal/bc.Op": {},
}

func main() {
	// Protocol flags of cmd/go's vettool interface.
	version := flag.String("V", "", "print version (go vet protocol)")
	printFlags := flag.Bool("flags", false, "print analyzer flags as JSON (go vet protocol)")
	flag.Parse()

	if *version == "full" {
		// The go command hashes this line into its action cache key. The
		// format is rigid: first field must be the binary's name, and for
		// a "devel" version the last field must be a buildID.
		name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
		fmt.Printf("%s version devel comments-go-here buildID=oplint-1/oplint-1\n", name)
		return
	}
	if *printFlags {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

// vetConfig mirrors the JSON cmd/go writes for each vet unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one compilation unit described by a vet config file.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "oplint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "oplint: %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects the facts file to exist even though oplint
	// records no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "oplint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	diags, err := checkFiles(cfg.GoFiles, cfg.Compiler, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "oplint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	return report(diags)
}

// listPackage is the subset of `go list -json` output oplint consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	DepOnly    bool
	Standard   bool
	GoFiles    []string
}

// standalone drives `go list -export` over the patterns and analyzes every
// root (non-dependency) package from source.
func standalone(patterns []string) int {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json", "-export", "-deps"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintln(os.Stderr, "oplint: go list:", err)
		return 1
	}
	exports := make(map[string]string)
	var roots []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintln(os.Stderr, "oplint: go list:", err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}

	code := 0
	for _, p := range roots {
		lookup := func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, p.Dir+string(os.PathSeparator)+f)
		}
		if len(files) == 0 {
			continue
		}
		diags, err := checkFiles(files, "gc", lookup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oplint: %s: %v\n", p.ImportPath, err)
			code = 1
			continue
		}
		if c := report(diags); c != 0 {
			code = c
		}
	}
	return code
}

func report(diags []string) int {
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// checkFiles parses and typechecks one package's files, then runs the
// exhaustiveness check.
func checkFiles(paths []string, compiler string, lookup func(string) (io.ReadCloser, error)) ([]string, error) {
	if compiler == "" {
		compiler = "gc"
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Error:    func(error) {}, // collect the first error via Check's return
	}
	pkgName := files[0].Name.Name
	if _, err := conf.Check(pkgName, fset, files, info); err != nil {
		return nil, err
	}

	var diags []string
	for _, f := range files {
		diags = append(diags, checkFile(fset, f, info)...)
	}
	return diags, nil
}

// checkFile reports non-exhaustive opcode switches in one file.
func checkFile(fset *token.FileSet, f *ast.File, info *types.Info) []string {
	ignored := collectIgnores(fset, f)
	var diags []string
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		named := enumType(info, sw.Tag)
		if named == nil {
			return true
		}
		key := typeKey(named)
		exclude := targets[key]
		if missing := missingCases(sw, info, named, exclude); len(missing) > 0 {
			if ignored.covers(fset, sw) {
				return true
			}
			pos := fset.Position(sw.Pos())
			diags = append(diags, fmt.Sprintf(
				"%s: oplint: switch on %s is missing cases %s (add them or comment the switch with // oplint:ignore)",
				pos, key, strings.Join(missing, ", ")))
		}
		return true
	})
	return diags
}

// enumType returns the named opcode type the switch tag has, or nil.
func enumType(info *types.Info, tag ast.Expr) *types.Named {
	tv, ok := info.Types[tag]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := targets[typeKey(named)]; !ok {
		return nil
	}
	return named
}

func typeKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// missingCases returns the exported enum constants the switch does not
// name, sorted.
func missingCases(sw *ast.SwitchStmt, info *types.Info, named *types.Named, exclude map[string]bool) []string {
	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			var id *ast.Ident
			switch e := e.(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				continue
			}
			if c, ok := info.Uses[id].(*types.Const); ok && types.Identical(c.Type(), named) {
				covered[c.Name()] = true
			}
		}
	}
	var missing []string
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !c.Exported() || exclude[name] || covered[name] {
			continue
		}
		if types.Identical(c.Type(), named) {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return missing
}

// ignoreSpans records where `// oplint:ignore` comments appear.
type ignoreSpans struct {
	lines map[int]bool // line numbers carrying the marker
}

func collectIgnores(fset *token.FileSet, f *ast.File) ignoreSpans {
	s := ignoreSpans{lines: make(map[int]bool)}
	for _, cg := range f.Comments {
		marked := false
		for _, c := range cg.List {
			if strings.Contains(c.Text, "oplint:ignore") {
				marked = true
				break
			}
		}
		if !marked {
			continue
		}
		// A marker anywhere in a comment group marks the whole group, so
		// the explanation may continue across lines.
		for l := fset.Position(cg.Pos()).Line; l <= fset.Position(cg.End()).Line; l++ {
			s.lines[l] = true
		}
	}
	return s
}

// covers reports whether the switch is silenced: a marker on the switch
// line, the line above it, or any line within the switch body (so the
// marker can sit on a default clause).
func (s ignoreSpans) covers(fset *token.FileSet, sw *ast.SwitchStmt) bool {
	start := fset.Position(sw.Pos()).Line
	end := fset.Position(sw.End()).Line
	for l := start - 1; l <= end; l++ {
		if s.lines[l] {
			return true
		}
	}
	return false
}
