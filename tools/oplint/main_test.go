package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = `package fix

type Op uint8

const (
	OpA Op = iota
	OpB
	OpC
	opSentinel // unexported: never required
)

func flagged(o Op) int {
	switch o { // missing OpC, not ignored: must be reported
	case OpA:
		return 1
	case OpB:
		return 2
	default:
		return 0 // a default does not excuse the missing case
	}
}

func silenced(o Op) int {
	// oplint:ignore — partial on purpose; the explanation may run
	// across several lines and still silence the switch below.
	switch o {
	case OpA:
		return 1
	}
	return 0
}

func exhaustive(o Op) int {
	switch o {
	case OpA, OpB:
		return 1
	case OpC:
		return 2
	}
	return 0
}

func tagless(o Op) int {
	switch { // no tag: out of scope
	case o == OpA:
		return 1
	}
	return 0
}
`

func TestCheckFilesOnFixture(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fix.go")
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}

	// The fixture package typechecks under the path "fix"; register its
	// enum for the duration of the test.
	targets["fix.Op"] = map[string]bool{}
	defer delete(targets, "fix.Op")

	diags, err := checkFiles([]string{path}, "gc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly one diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d, "fix.Op") || !strings.Contains(d, "OpC") {
		t.Fatalf("diagnostic should name the enum and the missing constant: %s", d)
	}
	if strings.Contains(d, "OpA") || strings.Contains(d, "opSentinel") {
		t.Fatalf("diagnostic lists covered or unexported constants: %s", d)
	}
	if !strings.Contains(d, "fix.go:13") {
		t.Fatalf("diagnostic should point at the flagged switch: %s", d)
	}
}
