module pea

go 1.24
