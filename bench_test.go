// Package pea's root benchmark harness: one testing.B benchmark per
// artifact of the paper's evaluation. BenchmarkTable1* regenerate the rows
// of Table 1 (wall-clock per benchmark iteration under each configuration,
// with allocation metrics attached via ReportMetric), and
// BenchmarkComparison reproduces §6.2. Run with
//
//	go test -bench=. -benchmem
package pea

import (
	"fmt"
	"runtime"
	"testing"

	"pea/internal/bc"
	"pea/internal/bench"
	"pea/internal/broker"
	"pea/internal/build"
	"pea/internal/mj"
	"pea/internal/opt"
	"pea/internal/pea"
	"pea/internal/vm"
)

// setupWorkload compiles a workload and warms the VM to steady state.
func setupWorkload(b *testing.B, w bench.WorkloadSpec, mode vm.EAMode) (*vm.VM, func()) {
	b.Helper()
	prog, err := mj.Compile(w.Source(), "Main.main")
	if err != nil {
		b.Fatal(err)
	}
	machine := vm.New(prog, vm.Options{EA: mode, CompileThreshold: 10, Seed: 7})
	setup := prog.ClassByName("Store").MethodByName("setup")
	iter := prog.ClassByName("Bench").MethodByName("iteration")
	if _, err := machine.Call(setup, nil); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if _, err := machine.Call(iter, nil); err != nil {
			b.Fatal(err)
		}
	}
	return machine, func() {
		if _, err := machine.Call(iter, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSuite runs every workload of a suite under the given mode, reporting
// simulated cycles and allocations per benchmark iteration.
func benchSuite(b *testing.B, suite string, mode vm.EAMode) {
	for _, w := range bench.BySuite(suite) {
		w := w
		b.Run(fmt.Sprintf("%s/%s", w.Name, mode), func(b *testing.B) {
			machine, iterate := setupWorkload(b, w, mode)
			startCycles := machine.Env.Cycles
			startAllocs := machine.Env.Stats.Allocations
			startBytes := machine.Env.Stats.AllocatedBytes
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				iterate()
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(float64(machine.Env.Cycles-startCycles)/n, "cycles/iter")
			b.ReportMetric(float64(machine.Env.Stats.Allocations-startAllocs)/n, "allocs/iter")
			b.ReportMetric(float64(machine.Env.Stats.AllocatedBytes-startBytes)/n, "heapB/iter")
		})
	}
}

// BenchmarkTable1DaCapo regenerates the DaCapo block of Table 1: run each
// workload without and with Partial Escape Analysis and compare the
// cycles/iter and allocs/iter metrics between the paired sub-benchmarks.
func BenchmarkTable1DaCapo(b *testing.B) {
	benchSuite(b, "dacapo", vm.EAOff)
	benchSuite(b, "dacapo", vm.EAPartial)
}

// BenchmarkTable1Scala regenerates the ScalaDaCapo block of Table 1.
func BenchmarkTable1Scala(b *testing.B) {
	benchSuite(b, "scaladacapo", vm.EAOff)
	benchSuite(b, "scaladacapo", vm.EAPartial)
}

// BenchmarkTable1SpecJBB regenerates the SPECjbb2005 row of Table 1.
func BenchmarkTable1SpecJBB(b *testing.B) {
	benchSuite(b, "specjbb", vm.EAOff)
	benchSuite(b, "specjbb", vm.EAPartial)
}

// BenchmarkComparisonEAvsPEA reproduces §6.2: the flow-insensitive
// baseline vs Partial Escape Analysis on every suite.
func BenchmarkComparisonEAvsPEA(b *testing.B) {
	for _, suite := range bench.SuiteNames() {
		benchSuite(b, suite, vm.EAFlowInsensitive)
		benchSuite(b, suite, vm.EAPartial)
	}
}

// listing1 is the paper's running example (Listings 1-6) used by the
// microbenchmarks below.
const listing1 = `
class Key {
	int idx;
	Key(int idx) { this.idx = idx; }
	boolean equalsKey(Key other) {
		synchronized (this) {
			return other != null && idx == other.idx;
		}
	}
}
class Cache {
	static Key cacheKey;
	static int cacheValue;
}
class Main {
	static int getValue(int idx) {
		Key key = new Key(idx);
		if (key.equalsKey(Cache.cacheKey)) {
			return Cache.cacheValue;
		} else {
			Cache.cacheKey = key;
			Cache.cacheValue = idx * 31;
			return Cache.cacheValue;
		}
	}
	static int run() {
		int s = 0;
		for (int i = 0; i < 400; i++) { s += getValue(i / 16); }
		return s;
	}
	static void main() { print(run()); }
}
`

// BenchmarkListing4CacheKey measures the paper's running example under the
// three JIT configurations (the microbenchmark behind Listings 4-6).
func BenchmarkListing4CacheKey(b *testing.B) {
	for _, mode := range []vm.EAMode{vm.EAOff, vm.EAFlowInsensitive, vm.EAPartial} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			prog, err := mj.Compile(listing1, "Main.main")
			if err != nil {
				b.Fatal(err)
			}
			machine := vm.New(prog, vm.Options{EA: mode, CompileThreshold: 5})
			run := prog.ClassByName("Main").MethodByName("run")
			for i := 0; i < 10; i++ {
				if _, err := machine.Call(run, nil); err != nil {
					b.Fatal(err)
				}
			}
			start := machine.Env.Stats.Allocations
			startCycles := machine.Env.Cycles
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := machine.Call(run, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			n := float64(b.N)
			b.ReportMetric(float64(machine.Env.Stats.Allocations-start)/n, "allocs/iter")
			b.ReportMetric(float64(machine.Env.Cycles-startCycles)/n, "cycles/iter")
		})
	}
}

// BenchmarkPEACompilation measures the analysis itself: building,
// inlining, and running Partial Escape Analysis over the cache-key method
// (the compile-time cost of the paper's technique).
func BenchmarkPEACompilation(b *testing.B) {
	prog, err := mj.Compile(listing1, "Main.main")
	if err != nil {
		b.Fatal(err)
	}
	m := prog.ClassByName("Main").MethodByName("getValue")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := build.Build(m)
		if err != nil {
			b.Fatal(err)
		}
		pipe := &opt.Pipeline{Phases: []opt.Phase{
			&opt.Inliner{BuildGraph: build.Build, Program: prog},
			opt.Canonicalize{}, opt.SimplifyCFG{}, opt.GVN{}, opt.DCE{},
		}}
		if err := pipe.Run(g); err != nil {
			b.Fatal(err)
		}
		if _, err := pea.Run(g, pea.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileParallel measures the compile broker's worker-pool
// speedup: the same batch of full pipeline runs (build → inline → GVN →
// PEA) executed by one background worker vs one per core. Each iteration
// uses a fresh broker with a private cache, so every task runs the real
// pipeline.
func BenchmarkCompileParallel(b *testing.B) {
	// A batch of independent compile tasks drawn from the benchmark
	// workloads; one VM per program provides the pipeline context.
	type task struct {
		machine *vm.VM
		m       *bc.Method
	}
	var tasks []task
	byMethod := make(map[*bc.Method]*vm.VM)
	for _, w := range bench.BySuite("dacapo") {
		prog, err := mj.Compile(w.Source(), "Main.main")
		if err != nil {
			b.Fatal(err)
		}
		machine := vm.New(prog, vm.Options{EA: vm.EAPartial})
		for _, m := range prog.Methods {
			if _, err := machine.Compile(m); err != nil {
				b.Fatalf("%s: compiling %s: %v", w.Name, m.QualifiedName(), err)
			}
			tasks = append(tasks, task{machine, m})
			byMethod[m] = machine
		}
	}
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	if workerCounts[1] <= 1 {
		// Single-core host: still contrast against a multi-worker pool
		// to exercise the queue under contention.
		workerCounts[1] = 4
	}
	for _, workers := range workerCounts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportMetric(float64(len(tasks)), "compiles/op")
			for i := 0; i < b.N; i++ {
				br := broker.New(broker.Options{
					Workers: workers,
					Compile: func(m *bc.Method, k broker.Key) (broker.Artifact, error) {
						g, err := byMethod[m].Compile(m)
						if err != nil {
							return nil, err
						}
						return g, nil
					},
				})
				for _, t := range tasks {
					br.Submit(t.m, 1, broker.Key{MethodFP: uint64(t.m.ID) + 1, Name: t.m.QualifiedName()})
				}
				br.Drain()
				br.Close()
				if st := br.Stats(); st.Compiled != int64(len(tasks)) {
					b.Fatalf("compiled %d of %d tasks (stats %+v)", st.Compiled, len(tasks), st)
				}
			}
		})
	}
}

// BenchmarkInterpreterVsJIT quantifies the tiered-execution gap the warmup
// relies on.
func BenchmarkInterpreterVsJIT(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts vm.Options
	}{
		{"interpreter", vm.Options{Interpret: true}},
		{"jit-pea", vm.Options{EA: vm.EAPartial, CompileThreshold: 3}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			prog, err := mj.Compile(listing1, "Main.main")
			if err != nil {
				b.Fatal(err)
			}
			machine := vm.New(prog, cfg.opts)
			run := prog.ClassByName("Main").MethodByName("run")
			for i := 0; i < 5; i++ {
				if _, err := machine.Call(run, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := machine.Call(run, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
