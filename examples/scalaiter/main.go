// Scalaiter models the Scala-compiled abstraction layers that make the
// ScalaDaCapo suite benefit so much from Partial Escape Analysis (the
// paper's factorie benchmark improves 33%): a fold over a range expressed
// with iterator, closure-like, and boxed-value objects. All of these are
// per-step temporaries; after inlining, PEA scalar-replaces every one of
// them, turning the abstract pipeline into a plain loop.
//
//	go run ./examples/scalaiter
package main

import (
	"fmt"
	"log"

	"pea/internal/mj"
	"pea/internal/rt"
	"pea/internal/vm"
)

const program = `
// What scalac would emit for:  (0 until n).map(_ * 2).filter(_ % 3 != 0).sum
class IntBox {
	int value;
	IntBox(int value) { this.value = value; }
}
class Range {
	int lo;
	int hi;
	Range(int lo, int hi) { this.lo = lo; this.hi = hi; }
	RangeIter iterator() { return new RangeIter(lo, hi); }
}
class RangeIter {
	int cur;
	int hi;
	RangeIter(int cur, int hi) { this.cur = cur; this.hi = hi; }
	boolean hasNext() { return cur < hi; }
	IntBox next() {
		IntBox b = new IntBox(cur);
		cur = cur + 1;
		return b;
	}
}
class MapFn {
	IntBox apply(IntBox x) { return new IntBox(x.value * 2); }
}
class FilterFn {
	boolean apply(IntBox x) { return x.value % 3 != 0; }
}
class Main {
	static int fold(int n) {
		Range r = new Range(0, n);
		RangeIter it = r.iterator();
		MapFn f = new MapFn();
		FilterFn p = new FilterFn();
		int sum = 0;
		while (it.hasNext()) {
			IntBox mapped = f.apply(it.next());
			if (p.apply(mapped)) {
				sum = sum + mapped.value;
			}
		}
		return sum;
	}
	static void main() { print(fold(500)); }
}
`

func run(mode vm.EAMode) *vm.VM {
	prog, err := mj.Compile(program, "Main.main")
	if err != nil {
		log.Fatal(err)
	}
	machine := vm.New(prog, vm.Options{EA: mode, CompileThreshold: 5})
	// Warm up, then reset counters so the numbers show the compiled
	// steady state.
	for i := 0; i < 10; i++ {
		if _, err := machine.Run(); err != nil {
			log.Fatal(err)
		}
	}
	machine.Env.Stats = rt.Stats{}
	machine.Env.Cycles = 0
	for i := 0; i < 10; i++ {
		if _, err := machine.Run(); err != nil {
			log.Fatal(err)
		}
	}
	return machine
}

func main() {
	base := run(vm.EAOff)
	peavm := run(vm.EAPartial)

	b, p := base.Env.Stats, peavm.Env.Stats
	fmt.Println("result:", peavm.Env.Output[0])
	fmt.Printf("%-20s %12s %12s %9s\n", "", "without PEA", "with PEA", "delta")
	pct := func(a, c int64) float64 {
		if a == 0 {
			return 0
		}
		return float64(c-a) / float64(a) * 100
	}
	fmt.Printf("%-20s %12d %12d %+8.1f%%\n", "allocations", b.Allocations, p.Allocations, pct(b.Allocations, p.Allocations))
	fmt.Printf("%-20s %12d %12d %+8.1f%%\n", "allocated bytes", b.AllocatedBytes, p.AllocatedBytes, pct(b.AllocatedBytes, p.AllocatedBytes))
	fmt.Printf("%-20s %12d %12d %+8.1f%%\n", "model cycles", base.Env.Cycles, peavm.Env.Cycles, pct(base.Env.Cycles, peavm.Env.Cycles))
	fmt.Println("\nEvery IntBox, the iterator, the range and both function objects are")
	fmt.Println("per-call or per-step temporaries: after inlining, Partial Escape Analysis")
	fmt.Println("removes essentially all of them — the paper's ScalaDaCapo story in miniature.")
}
