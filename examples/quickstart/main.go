// Quickstart: compile a MiniJava program and run it on the VM with Partial
// Escape Analysis, comparing allocation behaviour against the plain JIT.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pea/internal/mj"
	"pea/internal/rt"
	"pea/internal/vm"
)

const program = `
class Point {
	int x;
	int y;
	Point(int x, int y) { this.x = x; this.y = y; }
	int dist2(Point o) {
		int dx = x - o.x;
		int dy = y - o.y;
		return dx * dx + dy * dy;
	}
}
class Main {
	static int run(int n) {
		int acc = 0;
		for (int i = 0; i < n; i++) {
			// Two temporary points per iteration; they never escape,
			// so Partial Escape Analysis removes both allocations.
			Point a = new Point(i, i + 1);
			Point b = new Point(2 * i, i - 3);
			acc = acc + a.dist2(b);
		}
		return acc;
	}
	static void main() { print(run(1000)); }
}
`

func run(mode vm.EAMode) *vm.VM {
	prog, err := mj.Compile(program, "Main.main")
	if err != nil {
		log.Fatal(err)
	}
	machine := vm.New(prog, vm.Options{EA: mode, CompileThreshold: 5})
	// Warm up: the first runs interpret and profile, then the JIT
	// compiles Main.run with the selected escape analysis.
	for i := 0; i < 10; i++ {
		if _, err := machine.Run(); err != nil {
			log.Fatal(err)
		}
	}
	// Reset counters so the numbers below show the compiled steady state.
	machine.Env.Stats = rt.Stats{}
	machine.Env.Cycles = 0
	for i := 0; i < 10; i++ {
		if _, err := machine.Run(); err != nil {
			log.Fatal(err)
		}
	}
	return machine
}

func main() {
	base := run(vm.EAOff)
	peavm := run(vm.EAPartial)

	fmt.Println("program output (last run):", peavm.Env.Output[len(peavm.Env.Output)-1])
	fmt.Printf("%-22s %15s %15s\n", "", "JIT without EA", "JIT with PEA")
	fmt.Printf("%-22s %15d %15d\n", "allocations", base.Env.Stats.Allocations, peavm.Env.Stats.Allocations)
	fmt.Printf("%-22s %15d %15d\n", "allocated bytes", base.Env.Stats.AllocatedBytes, peavm.Env.Stats.AllocatedBytes)
	fmt.Printf("%-22s %15d %15d\n", "model cycles", base.Env.Cycles, peavm.Env.Cycles)
	if peavm.Env.Stats.Allocations < base.Env.Stats.Allocations {
		fmt.Println("\nPartial Escape Analysis removed the per-iteration Point allocations.")
	}
}
