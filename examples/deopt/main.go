// Deopt demonstrates the interplay of speculation, Partial Escape
// Analysis, and deoptimization (paper §2 and §5.5): the JIT prunes a
// branch the profile says is never taken, which lets PEA virtualize an
// object whose only escape sat in that branch. When the "impossible"
// branch finally executes, compiled code deoptimizes: the interpreter
// frames are rebuilt from the FrameState and the scalar-replaced object is
// materialized from its VirtualObjectState — then the method is
// invalidated and recompiled without the wrong assumption.
//
//	go run ./examples/deopt
package main

import (
	"fmt"
	"log"

	"pea/internal/mj"
	"pea/internal/rt"
	"pea/internal/vm"
)

const program = `
class Request {
	int id;
	int size;
	Request(int id, int size) { this.id = id; this.size = size; }
}
class Audit {
	static Request last;   // oversized requests are retained for auditing
	static int audited;
}
class Main {
	static int handle(int id, int size) {
		Request r = new Request(id, size);
		if (size > 1000000) {
			// During warmup this branch never runs: the JIT prunes it
			// to a deoptimization point, and the Request becomes fully
			// virtual.
			Audit.last = r;
			Audit.audited = Audit.audited + 1;
		}
		return r.id + r.size;
	}
	static void main() { print(handle(1, 2)); }
}
`

func main() {
	prog, err := mj.Compile(program, "Main.main")
	if err != nil {
		log.Fatal(err)
	}
	machine := vm.New(prog, vm.Options{
		EA:               vm.EAPartial,
		Speculate:        true,
		CompileThreshold: 10,
	})
	handle := prog.ClassByName("Main").MethodByName("handle")

	call := func(id, size int64) int64 {
		v, err := machine.Call(handle, []rt.Value{rt.IntValue(id), rt.IntValue(size)})
		if err != nil {
			log.Fatal(err)
		}
		return v.I
	}

	// Warm up with small requests only: the audit branch is never taken.
	for i := int64(0); i < 40; i++ {
		call(i, i*10)
	}
	fmt.Printf("after warmup: %d allocations, %d deopts, %d compiled methods\n",
		machine.Env.Stats.Allocations, machine.Env.Stats.Deopts, machine.VMStats.CompiledMethods)

	before := machine.Env.Stats.Allocations
	for i := int64(0); i < 1000; i++ {
		call(i, 500)
	}
	fmt.Printf("1000 hot calls performed %d allocations (Request is fully virtual)\n",
		machine.Env.Stats.Allocations-before)

	// Now an oversized request arrives: the pruned branch is taken.
	got := call(99, 5_000_000)
	fmt.Printf("\noversized request returned %d\n", got)
	fmt.Printf("deoptimizations: %d, invalidated methods: %d, materializations: %d\n",
		machine.Env.Stats.Deopts, machine.VMStats.InvalidatedMethods, machine.Env.Stats.Materializations)

	audit := machine.Env.GetStatic(prog.ClassByName("Audit").StaticByName("last"))
	if audit.Ref == nil {
		log.Fatal("audit record missing after deopt")
	}
	fmt.Printf("audit record rebuilt from the frame state: Request{id=%d size=%d}\n",
		audit.Ref.Fields[0].I, audit.Ref.Fields[1].I)

	// The method recompiles without speculation; oversized requests now
	// run in compiled code without further deopts.
	for i := int64(0); i < 100; i++ {
		call(i, 5_000_000)
	}
	fmt.Printf("after recompilation: deopts still %d, audited=%d\n",
		machine.Env.Stats.Deopts,
		machine.Env.GetStatic(prog.ClassByName("Audit").StaticByName("audited")).I)
}
