// Cachekey walks through the paper's running example (Listings 1–6): a
// Key object that escapes only on the cache-miss branch. It runs the same
// program under the plain JIT, the flow-insensitive escape analysis
// baseline, and Partial Escape Analysis, showing that only PEA removes the
// hot-path allocation and the synchronization, and prints the optimized IR
// of getValue (the textual equivalent of the paper's Listing 6).
//
//	go run ./examples/cachekey
package main

import (
	"fmt"
	"log"

	"pea/internal/build"
	"pea/internal/ir"
	"pea/internal/mj"
	"pea/internal/opt"
	"pea/internal/pea"
	"pea/internal/rt"
	"pea/internal/vm"
)

// listing1 is the paper's Listing 1 in MiniJava: getValue allocates a Key,
// compares it against the cached key under the key's monitor (the inlined
// synchronized equals of Listing 2), and publishes it only on a miss.
const listing1 = `
class Key {
	int idx;
	Key(int idx) { this.idx = idx; }
	boolean equalsKey(Key other) {
		synchronized (this) {
			return other != null && idx == other.idx;
		}
	}
}
class Cache {
	static Key cacheKey;
	static int cacheValue;
}
class Main {
	static int createValue(int idx) { return idx * 31; }
	static int getValue(int idx) {
		Key key = new Key(idx);
		if (key.equalsKey(Cache.cacheKey)) {
			return Cache.cacheValue;
		} else {
			Cache.cacheKey = key;
			Cache.cacheValue = createValue(idx);
			return Cache.cacheValue;
		}
	}
	static void main() {
		int s = 0;
		for (int i = 0; i < 400; i++) {
			s += getValue(i / 16);   // 16 hits per miss
		}
		print(s);
	}
}
`

func measure(mode vm.EAMode) (*vm.VM, rt.Stats) {
	prog, err := mj.Compile(listing1, "Main.main")
	if err != nil {
		log.Fatal(err)
	}
	machine := vm.New(prog, vm.Options{EA: mode, CompileThreshold: 5})
	for i := 0; i < 10; i++ { // warmup: interpret, then compile
		if _, err := machine.Run(); err != nil {
			log.Fatal(err)
		}
	}
	before := machine.Env.Stats
	for i := 0; i < 5; i++ { // steady state
		if _, err := machine.Run(); err != nil {
			log.Fatal(err)
		}
	}
	return machine, machine.Env.Stats.Sub(before)
}

func main() {
	_, base := measure(vm.EAOff)
	_, eaStats := measure(vm.EAFlowInsensitive)
	_, peaStats := measure(vm.EAPartial)

	fmt.Println("getValue is called 2000 times (400 calls x 5 runs); 25 distinct keys per run miss.")
	fmt.Printf("%-28s %10s %10s %10s\n", "", "no EA", "EA (6.2)", "PEA")
	fmt.Printf("%-28s %10d %10d %10d\n", "Key allocations", base.Allocations, eaStats.Allocations, peaStats.Allocations)
	fmt.Printf("%-28s %10d %10d %10d\n", "allocated bytes", base.AllocatedBytes, eaStats.AllocatedBytes, peaStats.AllocatedBytes)
	fmt.Printf("%-28s %10d %10d %10d\n", "monitor operations", base.MonitorOps, eaStats.MonitorOps, peaStats.MonitorOps)
	fmt.Println()
	fmt.Println("The flow-insensitive baseline cannot touch the Key: it escapes on ONE branch,")
	fmt.Println("so the all-or-nothing analysis gives up. Partial Escape Analysis allocates only")
	fmt.Println("on actual misses and removes the synchronization entirely (paper Listings 4-6).")
	fmt.Println()

	// Show the optimized IR of getValue — the shape of Listing 6.
	prog, err := mj.Compile(listing1, "Main.main")
	if err != nil {
		log.Fatal(err)
	}
	m := prog.ClassByName("Main").MethodByName("getValue")
	g, err := build.Build(m)
	if err != nil {
		log.Fatal(err)
	}
	pipe := &opt.Pipeline{Phases: []opt.Phase{
		&opt.Inliner{BuildGraph: build.Build, Program: prog},
		opt.Canonicalize{}, opt.SimplifyCFG{}, opt.GVN{}, opt.DCE{},
	}}
	if err := pipe.Run(g); err != nil {
		log.Fatal(err)
	}
	res, err := pea.Run(g, pea.Config{})
	if err != nil {
		log.Fatal(err)
	}
	post := opt.Standard()
	if err := post.Run(g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("IR of getValue after PEA (%d alloc virtualized, %d monitors elided, %d materialization sites):\n\n",
		res.VirtualizedAllocs, res.ElidedMonitors, res.MaterializeSites)
	fmt.Println(ir.Dump(g))
}
