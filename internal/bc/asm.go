package bc

import "fmt"

// Assembler builds a Program from class and method declarations. Code is
// emitted through MethodAsm, which supports forward branch labels. Call
// Finish to link and verify the whole program.
//
// Typical use:
//
//	a := bc.NewAssembler()
//	key := a.Class("Key", nil)
//	key.Field("idx", bc.KindInt)
//	m := key.Method("getIdx", nil, bc.KindInt, false)
//	m.Load(0).GetField(key.FieldRef("idx")).ReturnValue()
//	prog, err := a.Finish("Main.main")
type Assembler struct {
	classes []*ClassAsm
	err     error
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler { return &Assembler{} }

// ClassAsm builds one class.
type ClassAsm struct {
	a   *Assembler
	c   *Class
	ms  []*MethodAsm
	sup string // super class name, resolved at Finish
}

// MethodAsm builds one method's code with label support.
type MethodAsm struct {
	ca     *ClassAsm
	m      *Method
	labels map[string]int   // label -> pc
	fixups map[string][]int // label -> pcs of branches to patch
	excs   []excFixup       // exception-table entries awaiting label resolution
	line   int
}

// excFixup is an exception-table entry recorded against labels; finish()
// resolves the labels into pcs.
type excFixup struct {
	start, end, handler string
	class               *Class
}

// Class declares a class. superName is "" for no superclass.
func (a *Assembler) Class(name string, superName string) *ClassAsm {
	ca := &ClassAsm{a: a, c: &Class{Name: name}, sup: superName}
	a.classes = append(a.classes, ca)
	return ca
}

func (a *Assembler) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf(format, args...)
	}
}

// Field declares an instance field and returns it.
func (ca *ClassAsm) Field(name string, kind Kind) *Field {
	f := &Field{Class: ca.c, Name: name, Kind: kind}
	ca.c.Fields = append(ca.c.Fields, f)
	return f
}

// Static declares a static field and returns it.
func (ca *ClassAsm) Static(name string, kind Kind) *Field {
	f := &Field{Class: ca.c, Name: name, Kind: kind, Static: true}
	ca.c.Statics = append(ca.c.Statics, f)
	return f
}

// Name returns the class name being assembled.
func (ca *ClassAsm) Name() string { return ca.c.Name }

// Ref returns the (partially built) class for use as an instruction operand.
// Field offsets and the vtable are only valid after Finish.
func (ca *ClassAsm) Ref() *Class { return ca.c }

// Method declares a method. For instance methods (static=false) local slot 0
// is the receiver and parameters occupy the following slots.
func (ca *ClassAsm) Method(name string, params []Kind, ret Kind, static bool) *MethodAsm {
	m := &Method{
		Class:  ca.c,
		Name:   name,
		Params: append([]Kind(nil), params...),
		Ret:    ret,
		Static: static,
	}
	if !static {
		m.LocalKinds = append(m.LocalKinds, KindRef)
	}
	m.LocalKinds = append(m.LocalKinds, params...)
	ca.c.Methods = append(ca.c.Methods, m)
	ma := &MethodAsm{
		ca:     ca,
		m:      m,
		labels: make(map[string]int),
		fixups: make(map[string][]int),
	}
	ca.ms = append(ca.ms, ma)
	return ma
}

// Ref returns the method under construction for use as a call operand.
func (ma *MethodAsm) Ref() *Method { return ma.m }

// NewLocal reserves a fresh local slot of the given kind and returns its
// index.
func (ma *MethodAsm) NewLocal(k Kind) int {
	s := len(ma.m.LocalKinds)
	ma.m.LocalKinds = append(ma.m.LocalKinds, k)
	return s
}

// SetLine records the source line attached to subsequently emitted
// instructions (0 disables).
func (ma *MethodAsm) SetLine(line int) *MethodAsm { ma.line = line; return ma }

func (ma *MethodAsm) emit(in Instr) *MethodAsm {
	in.Line = ma.line
	ma.m.Code = append(ma.m.Code, in)
	return ma
}

// Label binds the given label name to the next instruction's pc.
func (ma *MethodAsm) Label(name string) *MethodAsm {
	if _, dup := ma.labels[name]; dup {
		ma.ca.a.fail("bc: duplicate label %q in %s", name, ma.m.QualifiedName())
		return ma
	}
	ma.labels[name] = len(ma.m.Code)
	return ma
}

func (ma *MethodAsm) branchTo(op Op, cond Cond, label string) *MethodAsm {
	pc := len(ma.m.Code)
	ma.emit(Instr{Op: op, Cond: cond, A: -1})
	ma.fixups[label] = append(ma.fixups[label], pc)
	return ma
}

// Const pushes an integer constant.
func (ma *MethodAsm) Const(v int64) *MethodAsm { return ma.emit(Instr{Op: OpConst, A: v}) }

// ConstNull pushes null.
func (ma *MethodAsm) ConstNull() *MethodAsm { return ma.emit(Instr{Op: OpConstNull}) }

// Load pushes local slot s.
func (ma *MethodAsm) Load(s int) *MethodAsm { return ma.emit(Instr{Op: OpLoad, A: int64(s)}) }

// Store pops into local slot s.
func (ma *MethodAsm) Store(s int) *MethodAsm { return ma.emit(Instr{Op: OpStore, A: int64(s)}) }

// Pop discards the top of stack.
func (ma *MethodAsm) Pop() *MethodAsm { return ma.emit(Instr{Op: OpPop}) }

// Dup duplicates the top of stack.
func (ma *MethodAsm) Dup() *MethodAsm { return ma.emit(Instr{Op: OpDup}) }

// Swap swaps the top two stack values.
func (ma *MethodAsm) Swap() *MethodAsm { return ma.emit(Instr{Op: OpSwap}) }

// Arith emits an arithmetic op (OpAdd..OpNeg).
func (ma *MethodAsm) Arith(op Op) *MethodAsm { return ma.emit(Instr{Op: op}) }

// Add emits integer addition.
func (ma *MethodAsm) Add() *MethodAsm { return ma.emit(Instr{Op: OpAdd}) }

// Sub emits integer subtraction.
func (ma *MethodAsm) Sub() *MethodAsm { return ma.emit(Instr{Op: OpSub}) }

// Mul emits integer multiplication.
func (ma *MethodAsm) Mul() *MethodAsm { return ma.emit(Instr{Op: OpMul}) }

// Div emits integer division.
func (ma *MethodAsm) Div() *MethodAsm { return ma.emit(Instr{Op: OpDiv}) }

// Rem emits integer remainder.
func (ma *MethodAsm) Rem() *MethodAsm { return ma.emit(Instr{Op: OpRem}) }

// Neg emits integer negation.
func (ma *MethodAsm) Neg() *MethodAsm { return ma.emit(Instr{Op: OpNeg}) }

// Cmp pushes the boolean result of comparing the two top ints.
func (ma *MethodAsm) Cmp(c Cond) *MethodAsm { return ma.emit(Instr{Op: OpCmp, Cond: c}) }

// Goto jumps to the label.
func (ma *MethodAsm) Goto(label string) *MethodAsm { return ma.branchTo(OpGoto, CondEQ, label) }

// IfCmp pops two ints and branches to the label if the condition holds.
func (ma *MethodAsm) IfCmp(c Cond, label string) *MethodAsm { return ma.branchTo(OpIfCmp, c, label) }

// If pops one int and branches if it compares to zero under c.
func (ma *MethodAsm) If(c Cond, label string) *MethodAsm { return ma.branchTo(OpIf, c, label) }

// IfRef pops two refs and branches on identity (CondEQ) or distinctness.
func (ma *MethodAsm) IfRef(c Cond, label string) *MethodAsm { return ma.branchTo(OpIfRef, c, label) }

// IfNull pops a ref and branches if it is null (CondEQ) or non-null (CondNE).
func (ma *MethodAsm) IfNull(c Cond, label string) *MethodAsm { return ma.branchTo(OpIfNull, c, label) }

// New allocates an instance of class c.
func (ma *MethodAsm) New(c *Class) *MethodAsm { return ma.emit(Instr{Op: OpNew, Class: c}) }

// NewArray pops a length and allocates an array of the given element kind.
func (ma *MethodAsm) NewArray(k Kind) *MethodAsm { return ma.emit(Instr{Op: OpNewArray, Kind: k}) }

// GetField pops a receiver and pushes the field value.
func (ma *MethodAsm) GetField(f *Field) *MethodAsm {
	return ma.emit(Instr{Op: OpGetField, Field: f, Class: f.Class})
}

// PutField pops value then receiver and stores the field.
func (ma *MethodAsm) PutField(f *Field) *MethodAsm {
	return ma.emit(Instr{Op: OpPutField, Field: f, Class: f.Class})
}

// GetStatic pushes a static field value.
func (ma *MethodAsm) GetStatic(f *Field) *MethodAsm {
	return ma.emit(Instr{Op: OpGetStatic, Field: f, Class: f.Class})
}

// PutStatic pops a value into a static field.
func (ma *MethodAsm) PutStatic(f *Field) *MethodAsm {
	return ma.emit(Instr{Op: OpPutStatic, Field: f, Class: f.Class})
}

// ArrayLoad pops index and array and pushes the element of the given kind.
func (ma *MethodAsm) ArrayLoad(k Kind) *MethodAsm { return ma.emit(Instr{Op: OpArrayLoad, Kind: k}) }

// ArrayStore pops value, index, array and stores the element.
func (ma *MethodAsm) ArrayStore(k Kind) *MethodAsm { return ma.emit(Instr{Op: OpArrayStore, Kind: k}) }

// ArrayLen pops an array and pushes its length.
func (ma *MethodAsm) ArrayLen() *MethodAsm { return ma.emit(Instr{Op: OpArrayLen}) }

// InstanceOf pops a ref and pushes whether it is an instance of c.
func (ma *MethodAsm) InstanceOf(c *Class) *MethodAsm {
	return ma.emit(Instr{Op: OpInstanceOf, Class: c})
}

// InvokeStatic calls a static method.
func (ma *MethodAsm) InvokeStatic(m *Method) *MethodAsm {
	return ma.emit(Instr{Op: OpInvokeStatic, Method: m})
}

// InvokeDirect calls an instance method without dynamic dispatch.
func (ma *MethodAsm) InvokeDirect(m *Method) *MethodAsm {
	return ma.emit(Instr{Op: OpInvokeDirect, Method: m})
}

// InvokeVirtual calls an instance method with vtable dispatch.
func (ma *MethodAsm) InvokeVirtual(m *Method) *MethodAsm {
	return ma.emit(Instr{Op: OpInvokeVirtual, Method: m})
}

// MonitorEnter pops a ref and acquires its monitor.
func (ma *MethodAsm) MonitorEnter() *MethodAsm { return ma.emit(Instr{Op: OpMonitorEnter}) }

// MonitorExit pops a ref and releases its monitor.
func (ma *MethodAsm) MonitorExit() *MethodAsm { return ma.emit(Instr{Op: OpMonitorExit}) }

// Return returns void.
func (ma *MethodAsm) Return() *MethodAsm { return ma.emit(Instr{Op: OpReturn}) }

// ReturnValue pops and returns the top of stack.
func (ma *MethodAsm) ReturnValue() *MethodAsm { return ma.emit(Instr{Op: OpReturnValue}) }

// Throw pops a ref and raises it as an exception.
func (ma *MethodAsm) Throw() *MethodAsm { return ma.emit(Instr{Op: OpThrow}) }

// Exception declares an exception-table entry: instructions from label
// start (inclusive) to label end (exclusive) are protected, and a matching
// exception raised there transfers control to label handler with the
// operand stack replaced by the exception reference. class nil catches
// everything, including intrinsic traps (which bind null). Entries match
// in declaration order; the first match wins.
func (ma *MethodAsm) Exception(start, end, handler string, class *Class) *MethodAsm {
	ma.excs = append(ma.excs, excFixup{start: start, end: end, handler: handler, class: class})
	return ma
}

// Print pops an int and appends it to the VM output.
func (ma *MethodAsm) Print() *MethodAsm { return ma.emit(Instr{Op: OpPrint}) }

// Rand pushes a deterministic pseudo-random int in [0, mod) (mod > 0), or
// the raw 63-bit value if mod is 0.
func (ma *MethodAsm) Rand(mod int64) *MethodAsm { return ma.emit(Instr{Op: OpRand, A: mod}) }

func (ma *MethodAsm) finish() error {
	for label, pcs := range ma.fixups {
		target, ok := ma.labels[label]
		if !ok {
			return fmt.Errorf("bc: undefined label %q in %s", label, ma.m.QualifiedName())
		}
		for _, pc := range pcs {
			ma.m.Code[pc].A = int64(target)
		}
	}
	for _, e := range ma.excs {
		resolve := func(label string) (int, error) {
			pc, ok := ma.labels[label]
			if !ok {
				return 0, fmt.Errorf("bc: undefined exception label %q in %s", label, ma.m.QualifiedName())
			}
			return pc, nil
		}
		start, err := resolve(e.start)
		if err != nil {
			return err
		}
		end, err := resolve(e.end)
		if err != nil {
			return err
		}
		handler, err := resolve(e.handler)
		if err != nil {
			return err
		}
		if start == end {
			continue // empty protected range: covers nothing
		}
		ma.m.ExceptionTable = append(ma.m.ExceptionTable, ExceptionHandler{
			Start: start, End: end, Handler: handler, Class: e.class,
		})
	}
	return nil
}

// Finish resolves superclasses and labels, links the program, verifies every
// method, and returns the program. mainName is "Class.method" naming a
// static method to use as the entry point; it may be "" when the program is
// only a library of methods (e.g. in compiler unit tests).
func (a *Assembler) Finish(mainName string) (*Program, error) {
	if a.err != nil {
		return nil, a.err
	}
	p := &Program{}
	byName := make(map[string]*Class, len(a.classes))
	for _, ca := range a.classes {
		p.Classes = append(p.Classes, ca.c)
		byName[ca.c.Name] = ca.c
	}
	for _, ca := range a.classes {
		if ca.sup != "" {
			sup, ok := byName[ca.sup]
			if !ok {
				return nil, fmt.Errorf("bc: class %s extends unknown class %s", ca.c.Name, ca.sup)
			}
			ca.c.Super = sup
		}
	}
	for _, ca := range a.classes {
		for _, ma := range ca.ms {
			if err := ma.finish(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.link(); err != nil {
		return nil, err
	}
	if mainName != "" {
		cls, meth, ok := splitQualified(mainName)
		if !ok {
			return nil, fmt.Errorf("bc: entry point %q is not of the form Class.method", mainName)
		}
		c := p.ClassByName(cls)
		if c == nil {
			return nil, fmt.Errorf("bc: entry class %q not found", cls)
		}
		m := c.MethodByName(meth)
		if m == nil {
			return nil, fmt.Errorf("bc: entry method %q not found in %s", meth, cls)
		}
		if !m.Static {
			return nil, fmt.Errorf("bc: entry method %s must be static", mainName)
		}
		p.Main = m
	}
	for _, m := range p.Methods {
		if err := Verify(m); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func splitQualified(s string) (cls, meth string, ok bool) {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[:i], s[i+1:], i > 0 && i < len(s)-1
		}
	}
	return "", "", false
}
