// Package bc defines the bytecode format consumed by the interpreter and the
// compiler front end. It is a JVM-like stack bytecode: classes with instance
// and static fields, static/direct/virtual methods, object and array
// allocation, monitors, and structured control flow via conditional branches.
//
// The format deliberately mirrors the subset of Java bytecode that the CGO'14
// Partial Escape Analysis paper exercises: allocation (new, newarray), field
// traffic (getfield/putfield, getstatic/putstatic), locking (monitorenter/
// monitorexit), calls, and branches. Exceptions are modeled as a single
// Throw terminator that aborts execution (no handlers), which keeps the IR
// free of exception edges without losing Throw as a control sink.
package bc

import "fmt"

// Kind is the type of a bytecode-level value. Booleans are represented as
// Int (0/1), as on the JVM operand stack.
type Kind uint8

const (
	// KindVoid is the return kind of methods that return nothing.
	KindVoid Kind = iota
	// KindInt is a 64-bit signed integer (also carries booleans as 0/1).
	KindInt
	// KindRef is an object or array reference (possibly null).
	KindRef
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindVoid:
		return "void"
	case KindInt:
		return "int"
	case KindRef:
		return "ref"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Cond is a comparison condition used by conditional branches.
type Cond uint8

// Comparison conditions for IfCmp (integer compare) and IfRef (reference
// compare, where only EQ and NE are meaningful).
const (
	CondEQ Cond = iota
	CondNE
	CondLT
	CondLE
	CondGT
	CondGE
)

// String returns the Java-operator spelling of the condition.
func (c Cond) String() string {
	switch c {
	case CondEQ:
		return "=="
	case CondNE:
		return "!="
	case CondLT:
		return "<"
	case CondLE:
		return "<="
	case CondGT:
		return ">"
	case CondGE:
		return ">="
	default:
		return fmt.Sprintf("Cond(%d)", uint8(c))
	}
}

// Negate returns the condition that is true exactly when c is false.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondLE:
		return CondGT
	case CondGT:
		return CondLE
	case CondGE:
		return CondLT
	}
	panic("bc: unknown condition")
}

// EvalInt reports whether the condition holds for the integer pair (a, b).
func (c Cond) EvalInt(a, b int64) bool {
	switch c {
	case CondEQ:
		return a == b
	case CondNE:
		return a != b
	case CondLT:
		return a < b
	case CondLE:
		return a <= b
	case CondGT:
		return a > b
	case CondGE:
		return a >= b
	}
	panic("bc: unknown condition")
}
