package bc

import (
	"encoding/binary"
	"hash"
	"hash/fnv"
)

// Fingerprint returns a stable content hash of the whole linked program:
// every class (name, superclass, field and static layout) and every method
// (signature, local slots, linked bytecode with operands resolved to
// qualified names). Two independent links of the same source produce the
// same fingerprint; any semantic change anywhere in the program changes it.
//
// The hash deliberately covers the entire program rather than a single
// method because a compilation artifact can embed any reachable method body
// (the inliner splices callees into the caller's graph), so per-method
// hashing alone could replay an artifact whose inlined callee has changed.
// Diagnostic-only data (source line numbers) is excluded: shifting a
// comment must not invalidate the artifact store.
//
// The fingerprint is computed once per program (programs are immutable
// after link) and cached.
func (p *Program) Fingerprint() uint64 {
	p.fpOnce.Do(func() { p.fp = p.computeFingerprint() })
	return p.fp
}

// MethodFingerprint returns the content-addressed identity of one method of
// the program: the program fingerprint mixed with the method's qualified
// name and signature. It is stable across process restarts and across
// independent links of the same source, which makes it usable as a
// persistent compiled-code cache key (see internal/broker.Key).
func (p *Program) MethodFingerprint(m *Method) uint64 {
	h := fnv.New64a()
	hashUint64(h, p.Fingerprint())
	hashString(h, m.Class.Name)
	hashString(h, m.Name)
	hashKinds(h, m.Params)
	hashByte(h, byte(m.Ret))
	hashBool(h, m.Static)
	return h.Sum64()
}

func (p *Program) computeFingerprint() uint64 {
	h := fnv.New64a()
	// Classes are in deterministic link order (Class.ID order).
	hashInt(h, len(p.Classes))
	for _, c := range p.Classes {
		hashString(h, c.Name)
		if c.Super != nil {
			hashString(h, c.Super.Name)
		} else {
			hashString(h, "")
		}
		hashInt(h, len(c.Fields))
		for _, f := range c.Fields {
			hashString(h, f.Class.Name)
			hashString(h, f.Name)
			hashByte(h, byte(f.Kind))
		}
		hashInt(h, len(c.Statics))
		for _, f := range c.Statics {
			hashString(h, f.Name)
			hashByte(h, byte(f.Kind))
		}
		hashInt(h, len(c.Methods))
		for _, m := range c.Methods {
			hashMethod(h, m)
		}
	}
	if p.Main != nil {
		hashString(h, p.Main.QualifiedName())
	}
	return h.Sum64()
}

func hashMethod(h hash.Hash64, m *Method) {
	hashString(h, m.Name)
	hashKinds(h, m.Params)
	hashByte(h, byte(m.Ret))
	hashBool(h, m.Static)
	hashKinds(h, m.LocalKinds)
	hashInt(h, len(m.Code))
	for i := range m.Code {
		in := &m.Code[i]
		hashByte(h, byte(in.Op))
		hashUint64(h, uint64(in.A))
		hashByte(h, byte(in.Cond))
		hashByte(h, byte(in.Kind))
		switch {
		case in.Class != nil:
			hashString(h, in.Class.Name)
		case in.Field != nil:
			hashString(h, in.Field.Class.Name)
			hashString(h, in.Field.Name)
			hashBool(h, in.Field.Static)
		case in.Method != nil:
			hashString(h, in.Method.Class.Name)
			hashString(h, in.Method.Name)
		default:
			hashByte(h, 0)
		}
		// Instr.Line is diagnostics only and deliberately excluded.
	}
	hashInt(h, len(m.ExceptionTable))
	for i := range m.ExceptionTable {
		eh := &m.ExceptionTable[i]
		hashInt(h, eh.Start)
		hashInt(h, eh.End)
		hashInt(h, eh.Handler)
		if eh.Class != nil {
			hashString(h, eh.Class.Name)
		} else {
			hashString(h, "")
		}
	}
}

func hashString(h hash.Hash64, s string) {
	hashInt(h, len(s))
	h.Write([]byte(s))
}

func hashKinds(h hash.Hash64, ks []Kind) {
	hashInt(h, len(ks))
	for _, k := range ks {
		hashByte(h, byte(k))
	}
}

func hashInt(h hash.Hash64, v int) { hashUint64(h, uint64(int64(v))) }

func hashUint64(h hash.Hash64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

func hashByte(h hash.Hash64, b byte) { h.Write([]byte{b}) }

func hashBool(h hash.Hash64, v bool) {
	if v {
		hashByte(h, 1)
	} else {
		hashByte(h, 0)
	}
}
