package bc

import (
	"fmt"
	"strings"
)

// Disassemble renders a method's code as text, one instruction per line,
// with pc labels. Intended for debugging and golden tests.
func Disassemble(m *Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  locals=%v maxstack=%d\n", m.Signature(), m.LocalKinds, m.MaxStack)
	targets := make(map[int]bool)
	for i := range m.Code {
		in := &m.Code[i]
		if in.Op.IsBranch() || in.Op == OpGoto {
			targets[in.Target()] = true
		}
	}
	for pc := range m.Code {
		in := &m.Code[pc]
		mark := "  "
		if targets[pc] {
			mark = "> "
		}
		fmt.Fprintf(&b, "%s%4d: %s\n", mark, pc, FormatInstr(in))
	}
	for i := range m.ExceptionTable {
		h := &m.ExceptionTable[i]
		cls := "any"
		if h.Class != nil {
			cls = h.Class.Name
		}
		fmt.Fprintf(&b, "  catch %s [%d,%d) -> %d\n", cls, h.Start, h.End, h.Handler)
	}
	return b.String()
}

// FormatInstr renders one instruction with its operands.
func FormatInstr(in *Instr) string {
	switch in.Op {
	case OpConst, OpLoad, OpStore:
		return fmt.Sprintf("%s %d", in.Op, in.A)
	case OpRand:
		if in.A > 0 {
			return fmt.Sprintf("rand %%%d", in.A)
		}
		return "rand"
	case OpCmp:
		return fmt.Sprintf("cmp %s", in.Cond)
	case OpGoto:
		return fmt.Sprintf("goto @%d", in.A)
	case OpIfCmp, OpIf, OpIfRef, OpIfNull:
		return fmt.Sprintf("%s %s @%d", in.Op, in.Cond, in.A)
	case OpNew, OpInstanceOf:
		return fmt.Sprintf("%s %s", in.Op, in.Class.Name)
	case OpNewArray, OpArrayLoad, OpArrayStore:
		return fmt.Sprintf("%s %s", in.Op, in.Kind)
	case OpGetField, OpPutField, OpGetStatic, OpPutStatic:
		return fmt.Sprintf("%s %s", in.Op, in.Field.QualifiedName())
	case OpInvokeStatic, OpInvokeDirect, OpInvokeVirtual:
		return fmt.Sprintf("%s %s", in.Op, in.Method.Signature())
	default:
		return in.Op.String()
	}
}

// DisassembleProgram renders every method of a program.
func DisassembleProgram(p *Program) string {
	var b strings.Builder
	for _, c := range p.Classes {
		fmt.Fprintf(&b, "class %s", c.Name)
		if c.Super != nil {
			fmt.Fprintf(&b, " extends %s", c.Super.Name)
		}
		b.WriteString("\n")
		for _, m := range c.Methods {
			b.WriteString(Disassemble(m))
			b.WriteString("\n")
		}
	}
	return b.String()
}
