package bc

import (
	"fmt"
	"sort"
	"sync"
)

// Instr is one bytecode instruction. Operand fields are used according to
// the opcode; unused fields are zero.
type Instr struct {
	Op     Op
	A      int64   // constant, local slot, branch target pc, or modulus
	Cond   Cond    // condition for OpCmp/OpIfCmp/OpIf/OpIfRef/OpIfNull
	Kind   Kind    // element kind for OpNewArray/OpArrayLoad/OpArrayStore
	Class  *Class  // class operand for OpNew/OpInstanceOf/statics
	Field  *Field  // field operand
	Method *Method // method operand
	Line   int     // source line for diagnostics (0 if unknown)
}

// Target returns the branch target pc of a branch or goto instruction.
func (in *Instr) Target() int { return int(in.A) }

// Field describes an instance or static field of a class.
type Field struct {
	Class  *Class // declaring class
	Name   string
	Kind   Kind
	Offset int // index into the object's (or class's statics) field array
	Static bool
}

// QualifiedName returns "Class.name".
func (f *Field) QualifiedName() string { return f.Class.Name + "." + f.Name }

// ExceptionHandler is one exception-table entry of a method. Instructions
// in the pc range [Start, End) are protected: when an exception is raised
// there whose class matches Class — nil matches everything, including
// intrinsic traps such as null dereferences — control transfers to pc
// Handler with the operand stack replaced by the single exception
// reference (null for intrinsic traps caught by a catch-all entry).
// Entries are searched in table order; the first match wins, mirroring the
// JVM's exception_table semantics.
type ExceptionHandler struct {
	Start   int
	End     int
	Handler int
	Class   *Class
}

// Covers reports whether the entry protects pc.
func (h *ExceptionHandler) Covers(pc int) bool { return pc >= h.Start && pc < h.End }

// Method is a bytecode method.
type Method struct {
	Class  *Class
	Name   string
	Params []Kind // parameter kinds, excluding the receiver
	Ret    Kind
	Static bool
	// LocalKinds gives the kind of each local variable slot, including
	// the receiver (slot 0 of instance methods) and the parameters.
	// Local slots are statically typed; a slot is never reused across
	// kinds.
	LocalKinds []Kind
	MaxStack   int // computed by Verify
	Code       []Instr
	// ExceptionTable lists the method's protected regions in match order.
	// Empty for methods without handlers.
	ExceptionTable []ExceptionHandler

	// VSlot is the vtable slot for virtual dispatch, -1 for static and
	// direct-only methods.
	VSlot int

	// ID is a dense program-wide index assigned at link time, used by
	// profilers and the JIT policy to key per-method tables.
	ID int
}

// NumArgs returns the number of stack arguments including the receiver.
func (m *Method) NumArgs() int {
	n := len(m.Params)
	if !m.Static {
		n++
	}
	return n
}

// NumLocals returns the number of local variable slots.
func (m *Method) NumLocals() int { return len(m.LocalKinds) }

// QualifiedName returns "Class.name".
func (m *Method) QualifiedName() string { return m.Class.Name + "." + m.Name }

// Signature returns a human-readable signature such as
// "Key.equals(ref) int".
func (m *Method) Signature() string {
	s := m.QualifiedName() + "("
	for i, p := range m.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	s += ")"
	if m.Ret != KindVoid {
		s += " " + m.Ret.String()
	}
	return s
}

// Class is a bytecode class: a named record type with single inheritance,
// instance fields (flattened across the hierarchy), static fields, and
// methods with virtual dispatch via a vtable.
type Class struct {
	Name    string
	Super   *Class
	Fields  []*Field // instance fields including inherited, by Offset
	Statics []*Field // static fields declared by this class, by Offset
	Methods []*Method
	VTable  []*Method // virtual dispatch table, indexed by Method.VSlot

	// ID is a dense program-wide index assigned at link time.
	ID int

	fieldByName  map[string]*Field
	staticByName map[string]*Field
	methodByName map[string]*Method
}

// FieldByName returns the instance field with the given name, or nil.
func (c *Class) FieldByName(name string) *Field { return c.fieldByName[name] }

// StaticByName returns the static field with the given name searching this
// class and its superclasses, or nil.
func (c *Class) StaticByName(name string) *Field {
	for k := c; k != nil; k = k.Super {
		if f := k.staticByName[name]; f != nil {
			return f
		}
	}
	return nil
}

// MethodByName returns the method with the given name searching this class
// and its superclasses, or nil. Methods are identified by name alone (no
// overloading in this bytecode format).
func (c *Class) MethodByName(name string) *Method {
	for k := c; k != nil; k = k.Super {
		if m := k.methodByName[name]; m != nil {
			return m
		}
	}
	return nil
}

// IsSubclassOf reports whether c is k or a subclass of k.
func (c *Class) IsSubclassOf(k *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == k {
			return true
		}
	}
	return false
}

// NumFields returns the number of instance fields (including inherited).
func (c *Class) NumFields() int { return len(c.Fields) }

// InstanceSize returns the heap size in bytes charged for an instance:
// a 16-byte header plus 8 bytes per field, mirroring a 64-bit JVM layout.
func (c *Class) InstanceSize() int64 { return 16 + 8*int64(len(c.Fields)) }

// ArraySize returns the heap size in bytes charged for an array of n
// elements: a 24-byte header plus 8 bytes per element.
func ArraySize(n int64) int64 { return 24 + 8*n }

// Program is a linked set of classes with an entry point.
type Program struct {
	Classes []*Class
	Methods []*Method // all methods, indexed by Method.ID
	Main    *Method   // entry point: a static method

	classByName map[string]*Class

	// Content fingerprint, computed lazily (see fingerprint.go). Programs
	// are immutable after link, so one computation serves forever.
	fpOnce sync.Once
	fp     uint64
}

// ClassByName returns the class with the given name, or nil.
func (p *Program) ClassByName(name string) *Class { return p.classByName[name] }

// NumStatics returns the total number of static field slots across all
// classes; statics are addressed by (Class.ID, Field.Offset).
func (p *Program) NumStatics() int {
	n := 0
	for _, c := range p.Classes {
		n += len(c.Statics)
	}
	return n
}

// link finalizes the program: assigns IDs, builds lookup maps and vtables,
// and flattens inherited fields. Called by the Assembler.
func (p *Program) link() error {
	p.classByName = make(map[string]*Class, len(p.Classes))
	for _, c := range p.Classes {
		if _, dup := p.classByName[c.Name]; dup {
			return fmt.Errorf("bc: duplicate class %q", c.Name)
		}
		p.classByName[c.Name] = c
	}
	// Topologically order classes so supers are processed first.
	ordered := make([]*Class, 0, len(p.Classes))
	state := make(map[*Class]int) // 0 unseen, 1 visiting, 2 done
	var visit func(c *Class) error
	visit = func(c *Class) error {
		switch state[c] {
		case 1:
			return fmt.Errorf("bc: inheritance cycle through %q", c.Name)
		case 2:
			return nil
		}
		state[c] = 1
		if c.Super != nil {
			if err := visit(c.Super); err != nil {
				return err
			}
		}
		state[c] = 2
		ordered = append(ordered, c)
		return nil
	}
	// Keep a deterministic base order.
	sorted := append([]*Class(nil), p.Classes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, c := range sorted {
		if err := visit(c); err != nil {
			return err
		}
	}
	for id, c := range ordered {
		c.ID = id
		if err := c.linkClass(); err != nil {
			return err
		}
	}
	p.Classes = ordered
	p.Methods = p.Methods[:0]
	for _, c := range ordered {
		for _, m := range c.Methods {
			m.ID = len(p.Methods)
			p.Methods = append(p.Methods, m)
		}
	}
	return nil
}

func (c *Class) linkClass() error {
	// Flatten inherited instance fields; the super is already linked.
	var flat []*Field
	if c.Super != nil {
		flat = append(flat, c.Super.Fields...)
	}
	own := c.Fields
	c.fieldByName = make(map[string]*Field)
	for _, f := range flat {
		c.fieldByName[f.Name] = f
	}
	for _, f := range own {
		if f.Class == c { // fields declared here, not yet flattened
			if _, dup := c.fieldByName[f.Name]; dup {
				return fmt.Errorf("bc: class %s redeclares field %s", c.Name, f.Name)
			}
			f.Offset = len(flat)
			flat = append(flat, f)
			c.fieldByName[f.Name] = f
		}
	}
	c.Fields = flat

	c.staticByName = make(map[string]*Field, len(c.Statics))
	for i, f := range c.Statics {
		if _, dup := c.staticByName[f.Name]; dup {
			return fmt.Errorf("bc: class %s redeclares static %s", c.Name, f.Name)
		}
		f.Offset = i
		f.Static = true
		c.staticByName[f.Name] = f
	}

	// Build the vtable: start from the super's, then override/extend.
	c.methodByName = make(map[string]*Method, len(c.Methods))
	if c.Super != nil {
		c.VTable = append([]*Method(nil), c.Super.VTable...)
	}
	for _, m := range c.Methods {
		if _, dup := c.methodByName[m.Name]; dup {
			return fmt.Errorf("bc: class %s redeclares method %s", c.Name, m.Name)
		}
		c.methodByName[m.Name] = m
		m.VSlot = -1
		if m.Static {
			continue
		}
		if c.Super != nil {
			if sm := c.Super.MethodByName(m.Name); sm != nil && sm.VSlot >= 0 {
				if len(sm.Params) != len(m.Params) || sm.Ret != m.Ret {
					return fmt.Errorf("bc: %s overrides %s with a different signature",
						m.QualifiedName(), sm.QualifiedName())
				}
				m.VSlot = sm.VSlot
				c.VTable[m.VSlot] = m
				continue
			}
		}
		m.VSlot = len(c.VTable)
		c.VTable = append(c.VTable, m)
	}
	return nil
}
