package bc

import "fmt"

// Op is a bytecode opcode.
type Op uint8

// Opcodes. The operand stack discipline is noted for each op as
// [pops] -> [pushes], with i meaning an int and r meaning a reference.
const (
	// OpNop does nothing. [] -> []
	OpNop Op = iota
	// OpConst pushes the int constant Instr.A. [] -> [i]
	OpConst
	// OpConstNull pushes the null reference. [] -> [r]
	OpConstNull
	// OpLoad pushes local slot Instr.A. [] -> [v]
	OpLoad
	// OpStore pops into local slot Instr.A. [v] -> []
	OpStore
	// OpPop discards the top of stack. [v] -> []
	OpPop
	// OpDup duplicates the top of stack. [v] -> [v v]
	OpDup
	// OpSwap swaps the two top stack values. [a b] -> [b a]
	OpSwap

	// OpAdd ... OpUShr are integer arithmetic. [i i] -> [i]
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpUShr
	// OpNeg negates the top int. [i] -> [i]
	OpNeg

	// OpCmp pushes 1 if Cond(Instr.Cond) holds for the two popped ints,
	// else 0. [i i] -> [i]
	OpCmp

	// OpGoto jumps unconditionally to pc Instr.A. [] -> []
	OpGoto
	// OpIfCmp pops two ints and jumps to Instr.A if the condition holds.
	// [i i] -> []
	OpIfCmp
	// OpIf pops one int and jumps to Instr.A if it compares to zero under
	// the condition (e.g. CondNE means "jump if non-zero"). [i] -> []
	OpIf
	// OpIfRef pops two references and jumps to Instr.A if they are
	// identical (CondEQ) or distinct (CondNE). [r r] -> []
	OpIfRef
	// OpIfNull pops a reference and jumps to Instr.A if it is null
	// (CondEQ) or non-null (CondNE). [r] -> []
	OpIfNull

	// OpNew allocates an instance of Instr.Class with zeroed fields.
	// [] -> [r]
	OpNew
	// OpNewArray pops a length and allocates an array with element kind
	// Instr.Kind. [i] -> [r]
	OpNewArray
	// OpGetField pops a receiver and pushes field Instr.Field. [r] -> [v]
	OpGetField
	// OpPutField pops a value and a receiver and stores the field.
	// [r v] -> []
	OpPutField
	// OpGetStatic pushes static field Instr.Field of Instr.Class.
	// [] -> [v]
	OpGetStatic
	// OpPutStatic pops a value into a static field. [v] -> []
	OpPutStatic
	// OpArrayLoad pops index and array, pushes the element. [r i] -> [v]
	OpArrayLoad
	// OpArrayStore pops value, index and array, stores the element.
	// [r i v] -> []
	OpArrayStore
	// OpArrayLen pops an array and pushes its length. [r] -> [i]
	OpArrayLen
	// OpInstanceOf pops a reference and pushes 1 if it is a non-null
	// instance of Instr.Class (or a subclass), else 0. [r] -> [i]
	OpInstanceOf

	// OpInvokeStatic calls the static method Instr.Method.
	// [args...] -> [ret?]
	OpInvokeStatic
	// OpInvokeDirect calls Instr.Method on the popped receiver without
	// dynamic dispatch (constructors, effectively-final methods).
	// [r args...] -> [ret?]
	OpInvokeDirect
	// OpInvokeVirtual calls the method with Instr.Method's slot via the
	// receiver's vtable. [r args...] -> [ret?]
	OpInvokeVirtual

	// OpMonitorEnter pops a reference and acquires its monitor. [r] -> []
	OpMonitorEnter
	// OpMonitorExit pops a reference and releases its monitor. [r] -> []
	OpMonitorExit

	// OpReturn returns void from the current method. [] -> []
	OpReturn
	// OpReturnValue pops the return value and returns it. [v] -> []
	OpReturnValue
	// OpThrow pops a reference and raises it as an exception: the nearest
	// enclosing exception-table entry matching the object's class (here or
	// in a caller) receives control; without one, execution aborts with an
	// error. Throwing null raises an intrinsic "null throw" trap. [r] -> []
	OpThrow

	// OpPrint pops an int and appends it to the VM's output log. [i] -> []
	OpPrint
	// OpRand pushes the next value of the VM's deterministic PRNG,
	// reduced modulo Instr.A if Instr.A > 0. [] -> [i]
	OpRand

	opCount
)

var opNames = [...]string{
	OpNop:           "nop",
	OpConst:         "const",
	OpConstNull:     "constnull",
	OpLoad:          "load",
	OpStore:         "store",
	OpPop:           "pop",
	OpDup:           "dup",
	OpSwap:          "swap",
	OpAdd:           "add",
	OpSub:           "sub",
	OpMul:           "mul",
	OpDiv:           "div",
	OpRem:           "rem",
	OpAnd:           "and",
	OpOr:            "or",
	OpXor:           "xor",
	OpShl:           "shl",
	OpShr:           "shr",
	OpUShr:          "ushr",
	OpNeg:           "neg",
	OpCmp:           "cmp",
	OpGoto:          "goto",
	OpIfCmp:         "ifcmp",
	OpIf:            "if",
	OpIfRef:         "ifref",
	OpIfNull:        "ifnull",
	OpNew:           "new",
	OpNewArray:      "newarray",
	OpGetField:      "getfield",
	OpPutField:      "putfield",
	OpGetStatic:     "getstatic",
	OpPutStatic:     "putstatic",
	OpArrayLoad:     "arrayload",
	OpArrayStore:    "arraystore",
	OpArrayLen:      "arraylen",
	OpInstanceOf:    "instanceof",
	OpInvokeStatic:  "invokestatic",
	OpInvokeDirect:  "invokedirect",
	OpInvokeVirtual: "invokevirtual",
	OpMonitorEnter:  "monitorenter",
	OpMonitorExit:   "monitorexit",
	OpReturn:        "return",
	OpReturnValue:   "returnvalue",
	OpThrow:         "throw",
	OpPrint:         "print",
	OpRand:          "rand",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsBranch reports whether the op is a conditional branch.
func (o Op) IsBranch() bool {
	switch o {
	case OpIfCmp, OpIf, OpIfRef, OpIfNull:
		return true
	}
	return false
}

// IsTerminator reports whether the op unconditionally ends a basic block.
func (o Op) IsTerminator() bool {
	switch o {
	case OpGoto, OpReturn, OpReturnValue, OpThrow:
		return true
	}
	return false
}

// IsInvoke reports whether the op is a method call.
func (o Op) IsInvoke() bool {
	switch o {
	case OpInvokeStatic, OpInvokeDirect, OpInvokeVirtual:
		return true
	}
	return false
}

// HasSideEffect reports whether the op has an observable effect beyond its
// stack result (stores, calls, allocation failure aside, monitors, output).
// It mirrors the Graal notion used for FrameState placement: ops with side
// effects cannot be re-executed after deoptimization.
func (o Op) HasSideEffect() bool {
	switch o {
	case OpPutField, OpPutStatic, OpArrayStore,
		OpInvokeStatic, OpInvokeDirect, OpInvokeVirtual,
		OpMonitorEnter, OpMonitorExit, OpPrint, OpRand:
		return true
	}
	return false
}
