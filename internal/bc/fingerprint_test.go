package bc_test

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/mj"
)

const fpSrc = `
class Main {
    static void main() {
        Point p = new Point(3, 4);
        print(p.dist2());
    }
}
class Point {
    int x;
    int y;
    Point(int x, int y) { this.x = x; this.y = y; }
    int dist2() { return this.x * this.x + this.y * this.y; }
}
`

// Two independent links of the same source must fingerprint identically —
// that is the whole point of content addressing: artifacts compiled by one
// process are valid for any other process running the same program.
func TestFingerprintStableAcrossLinks(t *testing.T) {
	p1, err := mj.Compile(fpSrc, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := mj.Compile(fpSrc, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("expected two distinct program instances")
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatalf("program fingerprints differ across links: %x vs %x",
			p1.Fingerprint(), p2.Fingerprint())
	}
	for _, m1 := range p1.Methods {
		m2 := p2.ClassByName(m1.Class.Name).MethodByName(m1.Name)
		if m2 == nil {
			t.Fatalf("method %s missing from relink", m1.QualifiedName())
		}
		if p1.MethodFingerprint(m1) != p2.MethodFingerprint(m2) {
			t.Errorf("method fingerprint of %s differs across links", m1.QualifiedName())
		}
	}
}

// Any semantic change anywhere in the program must change every method's
// fingerprint: artifacts can embed inlined callee bodies, so a stale callee
// must never be replayed into an unchanged caller.
func TestFingerprintSensitiveToContent(t *testing.T) {
	base, err := mj.Compile(fpSrc, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	changed := `
class Main {
    static void main() {
        Point p = new Point(3, 4);
        print(p.dist2());
    }
}
class Point {
    int x;
    int y;
    Point(int x, int y) { this.x = x; this.y = y; }
    int dist2() { return this.x * this.x - this.y * this.y; }
}
`
	alt, err := mj.Compile(changed, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	if base.Fingerprint() == alt.Fingerprint() {
		t.Fatal("program fingerprint unchanged after editing Point.dist2")
	}
	// Main.main's own bytecode is identical in both programs, but its
	// fingerprint must still change: it may have inlined Point.dist2.
	if base.MethodFingerprint(base.Main) == alt.MethodFingerprint(alt.Main) {
		t.Fatal("Main.main fingerprint unchanged after editing a callee")
	}
}

// Distinct methods of one program must not collide.
func TestFingerprintDistinguishesMethods(t *testing.T) {
	p, err := mj.Compile(fpSrc, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]string)
	for _, m := range p.Methods {
		fp := p.MethodFingerprint(m)
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %s vs %s", prev, m.QualifiedName())
		}
		seen[fp] = m.QualifiedName()
	}
}

// Source line numbers are diagnostics, not semantics: shifting code down a
// line must not invalidate the artifact store.
func TestFingerprintIgnoresLines(t *testing.T) {
	p1, err := mj.Compile(fpSrc, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := mj.Compile("\n\n\n"+fpSrc, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatal("fingerprint changed when only source line numbers moved")
	}
}

var _ = bc.Kind(0) // keep the bc import if mj-only paths change
