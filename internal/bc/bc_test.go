package bc

import (
	"strings"
	"testing"
)

// buildKeyProgram assembles the paper's Listing 1 example: a Key class with
// idx/ref fields, a constructor, and an equals method; a Cache class with
// static cacheKey/cacheValue; and a Main.getValue driver.
func buildKeyProgram(t *testing.T) *Program {
	t.Helper()
	a := NewAssembler()

	key := a.Class("Key", "")
	idx := key.Field("idx", KindInt)
	ref := key.Field("ref", KindRef)
	init := key.Method("<init>", []Kind{KindInt, KindRef}, KindVoid, false)
	init.Load(0).Load(1).PutField(idx)
	init.Load(0).Load(2).PutField(ref)
	init.Return()
	eq := key.Method("equals", []Kind{KindRef}, KindInt, false)
	eq.Load(0).MonitorEnter()
	eq.Load(0).GetField(idx).Load(1).GetField(idx).IfCmp(CondNE, "ne")
	eq.Load(0).GetField(ref).Load(1).GetField(ref).IfRef(CondNE, "ne")
	eq.Load(0).MonitorExit().Const(1).ReturnValue()
	eq.Label("ne").Load(0).MonitorExit().Const(0).ReturnValue()

	cache := a.Class("Cache", "")
	ck := cache.Static("cacheKey", KindRef)
	cv := cache.Static("cacheValue", KindInt)

	main := a.Class("Main", "")
	gv := main.Method("getValue", []Kind{KindInt, KindRef}, KindInt, true)
	k := gv.NewLocal(KindRef)
	gv.New(key.Ref()).Dup().Load(0).Load(1).InvokeDirect(init.Ref()).Store(k)
	gv.Load(k).GetStatic(ck).InvokeVirtual(eq.Ref()).If(CondEQ, "miss")
	gv.GetStatic(cv).ReturnValue()
	gv.Label("miss").Const(-1).ReturnValue()

	mm := main.Method("main", nil, KindVoid, true)
	mm.Const(42).ConstNull().InvokeStatic(gv.Ref()).Print().Return()

	p, err := a.Finish("Main.main")
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

func TestAssembleAndLink(t *testing.T) {
	p := buildKeyProgram(t)
	if p.Main == nil || p.Main.QualifiedName() != "Main.main" {
		t.Fatalf("entry point not resolved: %v", p.Main)
	}
	key := p.ClassByName("Key")
	if key == nil {
		t.Fatal("Key class missing")
	}
	if got := key.NumFields(); got != 2 {
		t.Fatalf("Key has %d fields, want 2", got)
	}
	if f := key.FieldByName("idx"); f == nil || f.Offset != 0 {
		t.Fatalf("idx field offset wrong: %+v", f)
	}
	if f := key.FieldByName("ref"); f == nil || f.Offset != 1 {
		t.Fatalf("ref field offset wrong: %+v", f)
	}
	if m := key.MethodByName("equals"); m == nil || m.VSlot < 0 {
		t.Fatalf("equals should have a vtable slot: %+v", m)
	}
	if m := key.MethodByName("<init>"); m == nil || m.MaxStack < 2 {
		t.Fatalf("<init> max stack wrong: %+v", m)
	}
	// Method IDs are dense over the whole program.
	for i, m := range p.Methods {
		if m.ID != i {
			t.Fatalf("method %s has ID %d at index %d", m.QualifiedName(), m.ID, i)
		}
	}
}

func TestInheritanceAndVTables(t *testing.T) {
	a := NewAssembler()
	base := a.Class("Base", "")
	base.Field("x", KindInt)
	bm := base.Method("get", nil, KindInt, false)
	bm.Const(1).ReturnValue()
	sub := a.Class("Sub", "Base")
	sub.Field("y", KindInt)
	sm := sub.Method("get", nil, KindInt, false)
	sm.Const(2).ReturnValue()
	other := sub.Method("other", nil, KindInt, false)
	other.Const(3).ReturnValue()

	p, err := a.Finish("")
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	b, s := p.ClassByName("Base"), p.ClassByName("Sub")
	if !s.IsSubclassOf(b) || s.IsSubclassOf(nil) {
		t.Fatal("IsSubclassOf wrong")
	}
	if b.IsSubclassOf(s) {
		t.Fatal("Base should not be a subclass of Sub")
	}
	if got := s.NumFields(); got != 2 {
		t.Fatalf("Sub has %d flattened fields, want 2", got)
	}
	if f := s.FieldByName("x"); f == nil || f.Offset != 0 {
		t.Fatalf("inherited field x: %+v", f)
	}
	if f := s.FieldByName("y"); f == nil || f.Offset != 1 {
		t.Fatalf("own field y: %+v", f)
	}
	bg, sg := b.MethodByName("get"), s.MethodByName("get")
	if bg.VSlot != sg.VSlot {
		t.Fatalf("override should share a vtable slot: %d vs %d", bg.VSlot, sg.VSlot)
	}
	if s.VTable[sg.VSlot] != sg {
		t.Fatal("Sub's vtable should hold the override")
	}
	if b.VTable[bg.VSlot] != bg {
		t.Fatal("Base's vtable should hold the original")
	}
	if om := s.MethodByName("other"); om.VSlot == sg.VSlot || om.VSlot < 0 {
		t.Fatalf("other should get a fresh slot, got %d", om.VSlot)
	}
}

func TestVerifyRejectsBadCode(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *Assembler)
		want  string
	}{
		{
			name: "stack underflow",
			build: func(a *Assembler) {
				m := a.Class("C", "").Method("m", nil, KindVoid, true)
				m.Pop().Return()
			},
			want: "underflow",
		},
		{
			name: "kind mismatch on add",
			build: func(a *Assembler) {
				m := a.Class("C", "").Method("m", nil, KindVoid, true)
				m.ConstNull().Const(1).Add().Pop().Return()
			},
			want: "expected int",
		},
		{
			name: "inconsistent merge depth",
			build: func(a *Assembler) {
				m := a.Class("C", "").Method("m", []Kind{KindInt}, KindVoid, true)
				m.Load(0).If(CondNE, "deep")
				m.Goto("join")
				m.Label("deep").Const(7)
				m.Label("join").Return()
			},
			// Depending on visit order this is reported either as a depth
			// mismatch or as a return with leftover stack values.
			want: "stack",
		},
		{
			name: "return with wrong kind",
			build: func(a *Assembler) {
				m := a.Class("C", "").Method("m", nil, KindRef, true)
				m.Const(1).ReturnValue()
			},
			want: "expected ref",
		},
		{
			name: "missing terminator",
			build: func(a *Assembler) {
				m := a.Class("C", "").Method("m", nil, KindVoid, true)
				m.Const(1).Pop()
			},
			// Falls off the end: the last pc flows to an out-of-range pc.
			want: "out of range",
		},
		{
			name: "out of range local",
			build: func(a *Assembler) {
				m := a.Class("C", "").Method("m", nil, KindVoid, true)
				m.Load(3).Pop().Return()
			},
			want: "out-of-range slot",
		},
		{
			name: "store kind mismatch",
			build: func(a *Assembler) {
				m := a.Class("C", "").Method("m", nil, KindVoid, true)
				s := m.NewLocal(KindRef)
				m.Const(1).Store(s).Return()
			},
			want: "expected ref",
		},
		{
			name: "nonempty stack at return",
			build: func(a *Assembler) {
				m := a.Class("C", "").Method("m", nil, KindVoid, true)
				m.Const(1).Return()
			},
			want: "values on stack",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAssembler()
			tc.build(a)
			_, err := a.Finish("")
			if err == nil {
				t.Fatal("Finish succeeded, want verification error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestVerifyMaxStack(t *testing.T) {
	a := NewAssembler()
	m := a.Class("C", "").Method("m", nil, KindInt, true)
	m.Const(1).Const(2).Const(3).Add().Add().ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	got := p.ClassByName("C").MethodByName("m").MaxStack
	if got != 3 {
		t.Fatalf("MaxStack = %d, want 3", got)
	}
}

func TestAssemblerErrors(t *testing.T) {
	t.Run("undefined label", func(t *testing.T) {
		a := NewAssembler()
		m := a.Class("C", "").Method("m", nil, KindVoid, true)
		m.Goto("nowhere").Return()
		if _, err := a.Finish(""); err == nil || !strings.Contains(err.Error(), "undefined label") {
			t.Fatalf("want undefined label error, got %v", err)
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		a := NewAssembler()
		m := a.Class("C", "").Method("m", nil, KindVoid, true)
		m.Label("l").Label("l").Return()
		if _, err := a.Finish(""); err == nil || !strings.Contains(err.Error(), "duplicate label") {
			t.Fatalf("want duplicate label error, got %v", err)
		}
	})
	t.Run("unknown super", func(t *testing.T) {
		a := NewAssembler()
		a.Class("C", "Nope").Method("m", nil, KindVoid, true).Return()
		if _, err := a.Finish(""); err == nil || !strings.Contains(err.Error(), "unknown class") {
			t.Fatalf("want unknown class error, got %v", err)
		}
	})
	t.Run("duplicate class", func(t *testing.T) {
		a := NewAssembler()
		a.Class("C", "").Method("m", nil, KindVoid, true).Return()
		a.Class("C", "").Method("m", nil, KindVoid, true).Return()
		if _, err := a.Finish(""); err == nil || !strings.Contains(err.Error(), "duplicate class") {
			t.Fatalf("want duplicate class error, got %v", err)
		}
	})
	t.Run("bad entry point", func(t *testing.T) {
		a := NewAssembler()
		a.Class("C", "").Method("m", nil, KindVoid, false).Return()
		if _, err := a.Finish("C.m"); err == nil || !strings.Contains(err.Error(), "must be static") {
			t.Fatalf("want static entry error, got %v", err)
		}
	})
	t.Run("inheritance cycle", func(t *testing.T) {
		a := NewAssembler()
		a.Class("A", "B")
		a.Class("B", "A")
		if _, err := a.Finish(""); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("want cycle error, got %v", err)
		}
	})
}

func TestCondHelpers(t *testing.T) {
	conds := []Cond{CondEQ, CondNE, CondLT, CondLE, CondGT, CondGE}
	pairs := [][2]int64{{0, 0}, {1, 0}, {0, 1}, {-5, 5}, {7, 7}}
	for _, c := range conds {
		if c.Negate().Negate() != c {
			t.Fatalf("double negation of %s changed it", c)
		}
		for _, p := range pairs {
			if c.EvalInt(p[0], p[1]) == c.Negate().EvalInt(p[0], p[1]) {
				t.Fatalf("%s and its negation agree on %v", c, p)
			}
		}
	}
}

func TestDisassemble(t *testing.T) {
	p := buildKeyProgram(t)
	text := DisassembleProgram(p)
	for _, want := range []string{
		"class Key", "getfield Key.idx", "invokevirtual Key.equals(ref) int",
		"monitorenter", "new Key", "getstatic Cache.cacheKey",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestInstanceSize(t *testing.T) {
	p := buildKeyProgram(t)
	key := p.ClassByName("Key")
	if got := key.InstanceSize(); got != 16+2*8 {
		t.Fatalf("InstanceSize = %d", got)
	}
	if got := ArraySize(10); got != 24+80 {
		t.Fatalf("ArraySize(10) = %d", got)
	}
}

func TestSideEffectClassification(t *testing.T) {
	effectful := []Op{OpPutField, OpPutStatic, OpArrayStore, OpInvokeStatic,
		OpInvokeDirect, OpInvokeVirtual, OpMonitorEnter, OpMonitorExit, OpPrint, OpRand}
	pure := []Op{OpAdd, OpConst, OpLoad, OpStore, OpGetField, OpGetStatic,
		OpArrayLoad, OpNew, OpNewArray, OpCmp, OpInstanceOf}
	for _, op := range effectful {
		if !op.HasSideEffect() {
			t.Errorf("%s should have a side effect", op)
		}
	}
	for _, op := range pure {
		if op.HasSideEffect() {
			t.Errorf("%s should not have a side effect", op)
		}
	}
}
