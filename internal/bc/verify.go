package bc

import "fmt"

// Verify checks the structural integrity of a method's code: branch targets
// in range, consistent operand stack shapes at every pc (kinds must agree on
// all paths, as in the JVM verifier), local slot bounds, operand presence,
// and that all paths end in a terminator. On success it fills in
// Method.MaxStack.
func Verify(m *Method) error {
	if len(m.Code) == 0 {
		return fmt.Errorf("bc: %s has no code", m.QualifiedName())
	}
	if m.NumLocals() < m.NumArgs() {
		return fmt.Errorf("bc: %s declares %d locals but has %d arguments",
			m.QualifiedName(), m.NumLocals(), m.NumArgs())
	}
	for i, k := range m.LocalKinds {
		if k != KindInt && k != KindRef {
			return fmt.Errorf("bc: %s local slot %d has kind %s", m.QualifiedName(), i, k)
		}
	}
	for i := range m.ExceptionTable {
		h := &m.ExceptionTable[i]
		if h.Start < 0 || h.Start >= h.End || h.End > len(m.Code) {
			return fmt.Errorf("bc: %s exception entry %d has range [%d,%d) outside code [0,%d)",
				m.QualifiedName(), i, h.Start, h.End, len(m.Code))
		}
		if h.Handler < 0 || h.Handler >= len(m.Code) {
			return fmt.Errorf("bc: %s exception entry %d has handler pc %d outside code [0,%d)",
				m.QualifiedName(), i, h.Handler, len(m.Code))
		}
	}
	v := &verifier{m: m, shapes: make([][]Kind, len(m.Code)), reached: make([]bool, len(m.Code))}
	if err := v.run(); err != nil {
		return fmt.Errorf("bc: %s: %w", m.QualifiedName(), err)
	}
	m.MaxStack = v.maxStack
	return nil
}

// StackShape returns the operand-stack kinds on entry to pc (bottom first),
// as established by the same dataflow the verifier runs. It is used by OSR
// graph construction to type the stack-slot parameters of an alternate
// entry point. The pc must be reachable from the method entry.
func StackShape(m *Method, pc int) ([]Kind, error) {
	if pc < 0 || pc >= len(m.Code) {
		return nil, fmt.Errorf("bc: %s: pc %d out of range [0,%d)", m.QualifiedName(), pc, len(m.Code))
	}
	v := &verifier{m: m, shapes: make([][]Kind, len(m.Code)), reached: make([]bool, len(m.Code))}
	if err := v.run(); err != nil {
		return nil, fmt.Errorf("bc: %s: %w", m.QualifiedName(), err)
	}
	if !v.reached[pc] {
		return nil, fmt.Errorf("bc: %s: pc %d is unreachable", m.QualifiedName(), pc)
	}
	return append([]Kind(nil), v.shapes[pc]...), nil
}

// StackShapes runs the verifier dataflow once and returns the operand-stack
// kinds on entry to every pc (bottom first) plus a reachability flag per pc.
// Unreached pcs have a nil shape. It is the bulk form of StackShape, used by
// the strict checker to validate every FrameState of a method against the
// bytecode's verifier-computed shapes with a single dataflow run.
func StackShapes(m *Method) (shapes [][]Kind, reached []bool, err error) {
	v := &verifier{m: m, shapes: make([][]Kind, len(m.Code)), reached: make([]bool, len(m.Code))}
	if err := v.run(); err != nil {
		return nil, nil, fmt.Errorf("bc: %s: %w", m.QualifiedName(), err)
	}
	return v.shapes, v.reached, nil
}

type verifier struct {
	m        *Method
	shapes   [][]Kind // stack shape at entry of each reached pc
	reached  []bool   // whether a pc has a recorded entry shape
	visited  []int    // worklist of pcs
	maxStack int
}

func (v *verifier) run() error {
	if err := v.flow(0, []Kind{}); err != nil {
		return err
	}
	for len(v.visited) > 0 {
		pc := v.visited[len(v.visited)-1]
		v.visited = v.visited[:len(v.visited)-1]
		if err := v.step(pc); err != nil {
			return err
		}
	}
	return nil
}

// flow merges a stack shape into the entry of pc and schedules it if the
// shape is new.
func (v *verifier) flow(pc int, shape []Kind) error {
	if pc < 0 || pc >= len(v.m.Code) {
		return fmt.Errorf("branch target %d out of range [0,%d)", pc, len(v.m.Code))
	}
	if len(shape) > v.maxStack {
		v.maxStack = len(shape)
	}
	if v.reached[pc] {
		old := v.shapes[pc]
		if len(old) != len(shape) {
			return fmt.Errorf("pc %d reached with stack depths %d and %d", pc, len(old), len(shape))
		}
		for i := range old {
			if old[i] != shape[i] {
				return fmt.Errorf("pc %d reached with stack kinds %v and %v at slot %d",
					pc, old[i], shape[i], i)
			}
		}
		return nil
	}
	v.reached[pc] = true
	v.shapes[pc] = append([]Kind(nil), shape...)
	v.visited = append(v.visited, pc)
	return nil
}

func (v *verifier) step(pc int) error {
	in := &v.m.Code[pc]
	st := append([]Kind(nil), v.shapes[pc]...)

	// Every reached pc inside a protected range can transfer to the
	// range's handler with the operand stack replaced by the exception
	// reference, so handlers of live ranges get the [ref] entry shape
	// (the JVM verifier's rule).
	for i := range v.m.ExceptionTable {
		if h := &v.m.ExceptionTable[i]; h.Covers(pc) {
			if err := v.flow(h.Handler, []Kind{KindRef}); err != nil {
				return err
			}
		}
	}

	pop := func(want Kind) error {
		if len(st) == 0 {
			return fmt.Errorf("pc %d (%s): stack underflow", pc, in.Op)
		}
		got := st[len(st)-1]
		st = st[:len(st)-1]
		if want != KindVoid && got != want {
			return fmt.Errorf("pc %d (%s): expected %s on stack, got %s", pc, in.Op, want, got)
		}
		return nil
	}
	push := func(k Kind) { st = append(st, k) }

	next := func() error { return v.flow(pc+1, st) }

	switch in.Op {
	case OpNop:
		return next()
	case OpConst:
		push(KindInt)
		return next()
	case OpConstNull:
		push(KindRef)
		return next()
	case OpLoad:
		if in.A < 0 || in.A >= int64(v.m.NumLocals()) {
			return fmt.Errorf("pc %d: load of out-of-range slot %d", pc, in.A)
		}
		push(v.m.LocalKinds[in.A])
		return next()
	case OpStore:
		if in.A < 0 || in.A >= int64(v.m.NumLocals()) {
			return fmt.Errorf("pc %d: store to out-of-range slot %d", pc, in.A)
		}
		if err := pop(v.m.LocalKinds[in.A]); err != nil {
			return err
		}
		return next()
	case OpPop:
		if err := pop(KindVoid); err != nil {
			return err
		}
		return next()
	case OpDup:
		if len(st) == 0 {
			return fmt.Errorf("pc %d: dup on empty stack", pc)
		}
		push(st[len(st)-1])
		return next()
	case OpSwap:
		if len(st) < 2 {
			return fmt.Errorf("pc %d: swap needs two stack values", pc)
		}
		st[len(st)-1], st[len(st)-2] = st[len(st)-2], st[len(st)-1]
		return next()
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpUShr:
		if err := pop(KindInt); err != nil {
			return err
		}
		if err := pop(KindInt); err != nil {
			return err
		}
		push(KindInt)
		return next()
	case OpNeg:
		if err := pop(KindInt); err != nil {
			return err
		}
		push(KindInt)
		return next()
	case OpCmp:
		if err := pop(KindInt); err != nil {
			return err
		}
		if err := pop(KindInt); err != nil {
			return err
		}
		push(KindInt)
		return next()
	case OpGoto:
		return v.flow(in.Target(), st)
	case OpIfCmp:
		if err := pop(KindInt); err != nil {
			return err
		}
		if err := pop(KindInt); err != nil {
			return err
		}
		if err := v.flow(in.Target(), st); err != nil {
			return err
		}
		return next()
	case OpIf:
		if err := pop(KindInt); err != nil {
			return err
		}
		if err := v.flow(in.Target(), st); err != nil {
			return err
		}
		return next()
	case OpIfRef:
		if err := pop(KindRef); err != nil {
			return err
		}
		if err := pop(KindRef); err != nil {
			return err
		}
		if err := v.flow(in.Target(), st); err != nil {
			return err
		}
		return next()
	case OpIfNull:
		if err := pop(KindRef); err != nil {
			return err
		}
		if err := v.flow(in.Target(), st); err != nil {
			return err
		}
		return next()
	case OpNew:
		if in.Class == nil {
			return fmt.Errorf("pc %d: new without class operand", pc)
		}
		push(KindRef)
		return next()
	case OpNewArray:
		if in.Kind != KindInt && in.Kind != KindRef {
			return fmt.Errorf("pc %d: newarray of kind %s", pc, in.Kind)
		}
		if err := pop(KindInt); err != nil {
			return err
		}
		push(KindRef)
		return next()
	case OpGetField:
		if in.Field == nil || in.Field.Static {
			return fmt.Errorf("pc %d: getfield needs an instance field operand", pc)
		}
		if err := pop(KindRef); err != nil {
			return err
		}
		push(in.Field.Kind)
		return next()
	case OpPutField:
		if in.Field == nil || in.Field.Static {
			return fmt.Errorf("pc %d: putfield needs an instance field operand", pc)
		}
		if err := pop(in.Field.Kind); err != nil {
			return err
		}
		if err := pop(KindRef); err != nil {
			return err
		}
		return next()
	case OpGetStatic:
		if in.Field == nil || !in.Field.Static {
			return fmt.Errorf("pc %d: getstatic needs a static field operand", pc)
		}
		push(in.Field.Kind)
		return next()
	case OpPutStatic:
		if in.Field == nil || !in.Field.Static {
			return fmt.Errorf("pc %d: putstatic needs a static field operand", pc)
		}
		if err := pop(in.Field.Kind); err != nil {
			return err
		}
		return next()
	case OpArrayLoad:
		if err := pop(KindInt); err != nil {
			return err
		}
		if err := pop(KindRef); err != nil {
			return err
		}
		push(in.Kind)
		return next()
	case OpArrayStore:
		if err := pop(in.Kind); err != nil {
			return err
		}
		if err := pop(KindInt); err != nil {
			return err
		}
		if err := pop(KindRef); err != nil {
			return err
		}
		return next()
	case OpArrayLen:
		if err := pop(KindRef); err != nil {
			return err
		}
		push(KindInt)
		return next()
	case OpInstanceOf:
		if in.Class == nil {
			return fmt.Errorf("pc %d: instanceof without class operand", pc)
		}
		if err := pop(KindRef); err != nil {
			return err
		}
		push(KindInt)
		return next()
	case OpInvokeStatic, OpInvokeDirect, OpInvokeVirtual:
		callee := in.Method
		if callee == nil {
			return fmt.Errorf("pc %d: invoke without method operand", pc)
		}
		if (in.Op == OpInvokeStatic) != callee.Static {
			return fmt.Errorf("pc %d: %s of %s with mismatched staticness", pc, in.Op, callee.QualifiedName())
		}
		for i := len(callee.Params) - 1; i >= 0; i-- {
			if err := pop(callee.Params[i]); err != nil {
				return err
			}
		}
		if !callee.Static {
			if err := pop(KindRef); err != nil {
				return err
			}
		}
		if callee.Ret != KindVoid {
			push(callee.Ret)
		}
		return next()
	case OpMonitorEnter, OpMonitorExit:
		if err := pop(KindRef); err != nil {
			return err
		}
		return next()
	case OpReturn:
		if v.m.Ret != KindVoid {
			return fmt.Errorf("pc %d: void return from %s method", pc, v.m.Ret)
		}
		if len(st) != 0 {
			return fmt.Errorf("pc %d: return with %d values on stack", pc, len(st))
		}
		return nil
	case OpReturnValue:
		if v.m.Ret == KindVoid {
			return fmt.Errorf("pc %d: value return from void method", pc)
		}
		if err := pop(v.m.Ret); err != nil {
			return err
		}
		if len(st) != 0 {
			return fmt.Errorf("pc %d: return with %d extra values on stack", pc, len(st))
		}
		return nil
	case OpThrow:
		if err := pop(KindRef); err != nil {
			return err
		}
		return nil
	case OpPrint:
		if err := pop(KindInt); err != nil {
			return err
		}
		return next()
	case OpRand:
		if in.A < 0 {
			return fmt.Errorf("pc %d: rand with negative modulus", pc)
		}
		push(KindInt)
		return next()
	default:
		return fmt.Errorf("pc %d: unknown opcode %d", pc, in.Op)
	}
}
