package exec

import (
	"strings"
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/rt"
)

// compileAndRun builds one static method C.m and executes it.
func compileAndRun(t *testing.T, params []bc.Kind, ret bc.Kind,
	body func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field), args ...int64) (rt.Value, *rt.Env, error) {
	t.Helper()
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	v := box.Field("v", bc.KindInt)
	c := a.Class("C", "")
	m := c.Method("m", params, ret, true)
	body(m, box, v)
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(prog.ClassByName("C").MethodByName("m"))
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(prog, 1)
	eng := &Engine{Env: env, MaxSteps: 100_000}
	vals := make([]rt.Value, len(args))
	for i, x := range args {
		vals[i] = rt.IntValue(x)
	}
	got, rerr := eng.Run(g, vals)
	return got, env, rerr
}

func TestExecTraps(t *testing.T) {
	cases := []struct {
		name string
		body func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field)
		want string
	}{
		{"null getfield", func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.ConstNull().GetField(v).ReturnValue()
		}, "null dereference"},
		{"null putfield", func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.ConstNull().Const(1).PutField(v)
			m.Const(0).ReturnValue()
		}, "null dereference"},
		{"division by zero", func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.Const(1).Const(0).Div().ReturnValue()
		}, "division by zero"},
		{"negative array size", func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.Const(-3).NewArray(bc.KindInt).ArrayLen().ReturnValue()
		}, "negative array size"},
		{"bounds", func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.Const(2).NewArray(bc.KindInt).Const(5).ArrayLoad(bc.KindInt).ReturnValue()
		}, "out of range"},
		{"null monitor", func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.ConstNull().MonitorEnter()
			m.Const(0).ReturnValue()
		}, "null dereference in monitorenter"},
		{"unbalanced exit", func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.New(box.Ref()).MonitorExit()
			m.Const(0).ReturnValue()
		}, "monitor exit on unlocked"},
		{"throw", func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.New(box.Ref()).Throw()
		}, "uncaught exception"},
		{"null throw", func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.ConstNull().Throw()
		}, "null throw"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := compileAndRun(t, nil, bc.KindInt, tc.body)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want %q", err, tc.want)
			}
		})
	}
}

func TestExecStepBudget(t *testing.T) {
	// A loop with an empty body must still hit the step budget (the
	// budget is checked at terminators too).
	_, _, err := compileAndRun(t, nil, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v *bc.Field) {
			m.Label("spin").Goto("spin")
		})
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("got %v, want step budget error", err)
	}
}

func TestExecStepBudgetWithBody(t *testing.T) {
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", nil, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	m.Const(0).Store(i)
	m.Label("spin").Load(i).Const(1).Add().Store(i).Goto("spin")
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(prog.ClassByName("C").MethodByName("m"))
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(prog, 1)
	eng := &Engine{Env: env, MaxSteps: 5000}
	_, rerr := eng.Run(g, nil)
	if rerr == nil || !strings.Contains(rerr.Error(), "step budget") {
		t.Fatalf("got %v, want step budget error", rerr)
	}
}

func TestPhiEvaluationIsParallel(t *testing.T) {
	// Swap two values through loop phis: (a, b) -> (b, a) each
	// iteration. Sequential phi assignment would corrupt one of them.
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt, bc.KindInt, bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	tmp := m.NewLocal(bc.KindInt)
	m.Const(0).Store(i)
	m.Label("h").Load(i).Load(2).IfCmp(bc.CondGE, "d")
	m.Load(0).Store(tmp)
	m.Load(1).Store(0)
	m.Load(tmp).Store(1)
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("h")
	m.Label("d").Load(0).Const(1000).Mul().Load(1).Add().ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(prog.ClassByName("C").MethodByName("m"))
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(prog, 1)
	eng := &Engine{Env: env, MaxSteps: 100_000}
	got, rerr := eng.Run(g, []rt.Value{rt.IntValue(3), rt.IntValue(7), rt.IntValue(5)})
	if rerr != nil {
		t.Fatal(rerr)
	}
	// 5 swaps: (3,7) -> (7,3) -> (3,7) -> (7,3) -> (3,7) -> (7,3)
	if got.I != 7000+3 {
		t.Fatalf("got %d, want 7003 (parallel phi copy broken)", got.I)
	}
}

func TestExecVirtualDispatchThroughEngine(t *testing.T) {
	a := bc.NewAssembler()
	base := a.Class("Base", "")
	bget := base.Method("get", nil, bc.KindInt, false)
	bget.Const(1).ReturnValue()
	sub := a.Class("Sub", "Base")
	sub.Method("get", nil, bc.KindInt, false).Const(2).ReturnValue()
	c := a.Class("C", "")
	m := c.Method("m", nil, bc.KindInt, true)
	m.New(sub.Ref()).InvokeVirtual(bget.Ref()).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(prog.ClassByName("C").MethodByName("m"))
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(prog, 1)
	eng := &Engine{Env: env}
	var dispatched string
	eng.Invoke = func(callee *bc.Method, args []rt.Value) (rt.Value, error) {
		dispatched = callee.QualifiedName()
		return rt.IntValue(99), nil
	}
	got, rerr := eng.Run(g, nil)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if dispatched != "Sub.get" {
		t.Fatalf("dispatched to %q, want Sub.get (vtable resolution in exec)", dispatched)
	}
	if got.I != 99 {
		t.Fatalf("got %d", got.I)
	}
}
