package exec

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/rt"
	"pea/internal/testprog"
)

// runInterp executes the entry method in the pure interpreter.
func runInterp(t *testing.T, p testprog.Program, args []int64) (rt.Value, *rt.Env, error) {
	t.Helper()
	env := rt.NewEnv(p.Prog, 42)
	it := interp.New(env)
	it.MaxSteps = 5_000_000
	vals := make([]rt.Value, len(args))
	for i, a := range args {
		vals[i] = rt.IntValue(a)
	}
	v, err := it.Call(p.Entry, vals)
	return v, env, err
}

// buildAll builds IR graphs for every method of the program.
func buildAll(t *testing.T, prog *bc.Program) map[*bc.Method]*ir.Graph {
	t.Helper()
	graphs := make(map[*bc.Method]*ir.Graph, len(prog.Methods))
	for _, m := range prog.Methods {
		g, err := build.Build(m)
		if err != nil {
			t.Fatalf("build %s: %v", m.QualifiedName(), err)
		}
		graphs[m] = g
	}
	return graphs
}

// runExec executes the entry method with every call running through built
// IR graphs.
func runExec(t *testing.T, p testprog.Program, graphs map[*bc.Method]*ir.Graph, args []int64) (rt.Value, *rt.Env, error) {
	t.Helper()
	env := rt.NewEnv(p.Prog, 42)
	eng := &Engine{Env: env, MaxSteps: 5_000_000}
	eng.Invoke = func(callee *bc.Method, vals []rt.Value) (rt.Value, error) {
		g, ok := graphs[callee]
		if !ok {
			t.Fatalf("no graph for %s", callee.QualifiedName())
		}
		return eng.Run(g, vals)
	}
	vals := make([]rt.Value, len(args))
	for i, a := range args {
		vals[i] = rt.IntValue(a)
	}
	v, err := eng.Run(graphs[p.Entry], vals)
	return v, env, err
}

// assertSameBehaviour compares two runs: result, error presence, program
// output, and dynamic statistics that an unoptimized compiler must
// preserve exactly.
func assertSameBehaviour(t *testing.T, name string, args []int64,
	v1 rt.Value, env1 *rt.Env, err1 error,
	v2 rt.Value, env2 *rt.Env, err2 error, compareStats bool) {
	t.Helper()
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s%v: interp err=%v, exec err=%v", name, args, err1, err2)
	}
	if err1 != nil {
		// Traps are canonical: identity is (reason, method, bci) with the
		// method the innermost frame, so every engine must agree exactly.
		t1, ok1 := err1.(*rt.Trap)
		t2, ok2 := err2.(*rt.Trap)
		if ok1 != ok2 {
			t.Fatalf("%s%v: interp err=%v, exec err=%v", name, args, err1, err2)
		}
		if ok1 && (t1.Reason != t2.Reason || t1.Method != t2.Method || t1.PC != t2.PC) {
			t.Fatalf("%s%v: trap identity differs: interp=%v, exec=%v", name, args, t1, t2)
		}
		return
	}
	if !v1.Equal(v2) {
		t.Fatalf("%s%v: interp=%v exec=%v", name, args, v1, v2)
	}
	if len(env1.Output) != len(env2.Output) {
		t.Fatalf("%s%v: output lengths differ: %v vs %v", name, args, env1.Output, env2.Output)
	}
	for i := range env1.Output {
		if env1.Output[i] != env2.Output[i] {
			t.Fatalf("%s%v: output[%d]: %d vs %d", name, args, i, env1.Output[i], env2.Output[i])
		}
	}
	if compareStats {
		s1, s2 := env1.Stats, env2.Stats
		if s1.Allocations != s2.Allocations || s1.AllocatedBytes != s2.AllocatedBytes {
			t.Fatalf("%s%v: alloc stats differ: %+v vs %+v", name, args, s1, s2)
		}
		if s1.MonitorOps != s2.MonitorOps {
			t.Fatalf("%s%v: monitor ops differ: %d vs %d", name, args, s1.MonitorOps, s2.MonitorOps)
		}
		if s1.FieldLoads != s2.FieldLoads || s1.FieldStores != s2.FieldStores {
			t.Fatalf("%s%v: field stats differ: %+v vs %+v", name, args, s1, s2)
		}
	}
}

// TestExecMatchesInterpreter is the core differential test: the IR produced
// by the graph builder, executed by the engine, must be observationally
// identical to the bytecode interpreter on the whole corpus — including
// allocation, monitor and field-access counts, since no optimization ran.
func TestExecMatchesInterpreter(t *testing.T) {
	for _, p := range testprog.Corpus() {
		t.Run(p.Name, func(t *testing.T) {
			graphs := buildAll(t, p.Prog)
			for _, args := range p.ArgSets {
				v1, env1, err1 := runInterp(t, p, args)
				v2, env2, err2 := runExec(t, p, graphs, args)
				assertSameBehaviour(t, p.Name, args, v1, env1, err1, v2, env2, err2, true)
			}
		})
	}
}

// TestGraphsVerify checks that every built graph passes the IR verifier.
func TestGraphsVerify(t *testing.T) {
	for _, p := range testprog.Corpus() {
		for _, m := range p.Prog.Methods {
			g, err := build.Build(m)
			if err != nil {
				t.Fatalf("%s %s: %v", p.Name, m.QualifiedName(), err)
			}
			if err := ir.Verify(g); err != nil {
				t.Fatalf("%s %s: %v", p.Name, m.QualifiedName(), err)
			}
		}
	}
}

// TestDeoptHookInvoked checks that reaching an OpDeopt calls the hook with
// an evaluator over current values.
func TestDeoptHookInvoked(t *testing.T) {
	// Build m(x) = x+1, then replace the return with a deopt.
	a := bc.NewAssembler()
	c := a.Class("C", "")
	ma := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	ma.Load(0).Const(1).Add().Store(0).Load(0).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	m := prog.ClassByName("C").MethodByName("m")
	g, err := build.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	// Find the return block and replace its terminator with a deopt
	// reusing the return's frame state.
	var retBlock *ir.Block
	for _, b := range g.Blocks {
		if b.Term != nil && b.Term.Op == ir.OpReturn {
			retBlock = b
		}
	}
	if retBlock == nil {
		t.Fatal("no return block")
	}
	d := g.NewNode(ir.OpDeopt, bc.KindVoid)
	d.FrameState = retBlock.Term.FrameState
	d.DeoptReason = "test"
	retBlock.Succs = nil
	g.SetTerm(retBlock, d)
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}

	env := rt.NewEnv(prog, 1)
	eng := &Engine{Env: env}
	called := false
	eng.Deopt = func(dg *ir.Graph, dn *ir.Node, eval func(n *ir.Node) (rt.Value, bool)) (rt.Value, error) {
		called = true
		fs := dn.FrameState
		if dg != g {
			t.Fatalf("deopt graph = %p, want %p", dg, g)
		}
		if fs.Method != m {
			t.Fatalf("deopt state method = %v", fs.Method)
		}
		// The expression stack holds x+1 = 42 at the return (local 0
		// is dead there and pruned by liveness).
		if len(fs.Stack) != 1 {
			t.Fatalf("stack = %v", fs.Stack)
		}
		v, ok := eval(fs.Stack[0])
		if !ok {
			t.Fatal("stack slot not evaluated")
		}
		return v, nil
	}
	got, err := eng.Run(g, []rt.Value{rt.IntValue(41)})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("deopt hook not called")
	}
	if got.I != 42 {
		t.Fatalf("deopt result = %d, want 42", got.I)
	}
	if env.Stats.Deopts != 1 {
		t.Fatalf("deopt counter = %d", env.Stats.Deopts)
	}
}

// TestMaterializeNode executes an OpMaterialize directly.
func TestMaterializeNode(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	box.Field("v", bc.KindInt)
	box.Field("w", bc.KindInt)
	c := a.Class("C", "")
	cm := c.Method("m", nil, bc.KindInt, true)
	cm.Const(0).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	bcls := prog.ClassByName("Box")
	m := prog.ClassByName("C").MethodByName("m")
	g := ir.NewGraph(m)
	b0 := g.Entry()
	c1 := g.ConstInt(b0, 11)
	c2 := g.ConstInt(b0, 22)
	mat := g.NewNode(ir.OpMaterialize, bc.KindRef, c1, c2)
	mat.Class = bcls
	mat.AuxLock = 2
	g.Append(b0, mat)
	fld := g.NewNode(ir.OpLoadField, bc.KindInt, mat)
	fld.Field = bcls.FieldByName("w")
	g.Append(b0, fld)
	g.SetTerm(b0, g.NewNode(ir.OpReturn, bc.KindVoid, fld))
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}

	env := rt.NewEnv(prog, 1)
	eng := &Engine{Env: env}
	got, err := eng.Run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 22 {
		t.Fatalf("materialized field = %d, want 22", got.I)
	}
	if env.Stats.Allocations != 1 || env.Stats.Materializations != 1 {
		t.Fatalf("stats: %+v", env.Stats)
	}
	if env.Stats.MonitorOps != 2 {
		t.Fatalf("relock ops = %d, want 2", env.Stats.MonitorOps)
	}
}
