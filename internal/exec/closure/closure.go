// Package closure is the template-JIT execution backend: it compiles each
// scheduled ir.Graph once, at install time, into flat per-block closure
// sequences (threaded code). Every node becomes a small Go func with its
// operands pre-resolved to dense value-slot indices and constants folded
// into captures; block successors are pre-linked, so steady-state dispatch
// is a tight loop over []func(*frame) plus one terminator func per block
// returning the next block index — no map lookups, no switch on n.Op, and
// zero allocations per invocation (value slots live in a pooled frame
// arena).
//
// The backend pays no cost-model overhead: modeled cycles are the oracle
// backend's job (internal/exec). Heap effects (allocations, field and
// monitor counters, materializations, deopts) are mirrored exactly, so the
// differential fuzzer can compare the two backends observation for
// observation.
//
// Traps and invoke errors propagate by panicking with an abort wrapper,
// recovered once per Run — the steady-state loop carries no error returns.
// Deoptimization reuses the engine's shared transfer path: the lowered code
// exposes an eval hook backed by the node→slot map recorded at compile
// time, which the deopt runtime uses to read FrameState inputs out of the
// live frame.
package closure

import (
	"fmt"
	"sync"

	"pea/internal/exec"
	"pea/internal/ir"
	"pea/internal/rt"
)

// Backend lowers scheduled graphs to threaded closure code.
type Backend struct{}

// New returns the closure backend.
func New() exec.Backend { return Backend{} }

// Name identifies the backend in cache keys and flight records.
func (Backend) Name() string { return "closure" }

// Compile lowers g once into a Code artifact. The artifact is immutable and
// safe for concurrent Run calls: per-invocation state lives in pooled
// frames.
func (Backend) Compile(g *ir.Graph) (exec.Code, error) { return compile(g) }

// op executes one lowered node against the frame.
type op func(f *frame)

// term executes a block terminator, performing the successor edge's phi
// parallel copy, and returns the next dense block index (done = -1).
type term func(f *frame) int

const done = -1

// block is one lowered basic block.
type block struct {
	ops  []op
	term term
	// steps is the node count charged against Engine.MaxSteps per entry
	// (nodes + terminator, mirroring the oracle's per-node accounting
	// closely enough for the budget to stay a runaway guard).
	steps int64
}

// Code is a compiled graph: flat per-block closure sequences plus the frame
// layout metadata needed to start, deoptimize from, and pool executions.
type Code struct {
	g      *ir.Graph
	blocks []block
	entry  int

	nSlots int
	nPhi   int // widest phi parallel copy; sizes the frame scratch
	params []paramSlot
	consts []constSlot
	// slot maps value nodes to their frame slot. Used at compile time to
	// resolve operands and at deopt time to serve the eval hook; never
	// touched by steady-state dispatch.
	slot map[*ir.Node]int

	pool sync.Pool
}

type paramSlot struct {
	arg, slot int
}

type constSlot struct {
	slot int
	v    rt.Value
}

// frame is the per-invocation value arena. Frames are pooled per Code:
// constant slots are written once when the frame is built and never
// overwritten, so a reused frame skips constant initialization entirely.
type frame struct {
	slots []rt.Value
	tmp   []rt.Value // phi parallel-copy scratch
	ret   rt.Value
	eng   *exec.Engine
	env   *rt.Env
	code  *Code
	// pending is the in-flight exception: set by a guarded op that
	// trapped (or a covered Throw), tested by the OnException terminator,
	// read by ExceptionObject, re-raised by Unwind. Guarded ops clear it
	// before executing, so a stale value can never misroute a later guard.
	pending *rt.Trap
}

// abort carries a trap or invoke error out of the dispatch loop; Run
// recovers it once per invocation.
type abort struct{ err error }

// Graph returns the scheduled IR this code was lowered from.
func (c *Code) Graph() *ir.Graph { return c.g }

// Run executes the code. Steady state allocates nothing: the frame comes
// from the pool, values move between dense slots, and the only allocations
// happen on program-visible paths (object allocations, invoke argument
// vectors) or error paths (traps, deopts).
func (c *Code) Run(e *exec.Engine, args []rt.Value) (ret rt.Value, err error) {
	f := c.pool.Get().(*frame)
	f.eng, f.env = e, e.Env
	f.pending = nil
	for _, p := range c.params {
		f.slots[p.slot] = args[p.arg]
	}
	defer func() {
		f.eng, f.env = nil, nil
		c.pool.Put(f)
		if r := recover(); r != nil {
			ab, ok := r.(abort)
			if !ok {
				panic(r)
			}
			ret, err = rt.Value{}, ab.err
		}
	}()
	bounded := e.MaxSteps > 0
	bi := c.entry
	for {
		b := &c.blocks[bi]
		if bounded {
			if serr := e.ChargeSteps(b.steps, c.g); serr != nil {
				return rt.Value{}, serr
			}
		}
		for _, o := range b.ops {
			o(f)
		}
		if bi = b.term(f); bi < 0 {
			return f.ret, nil
		}
	}
}

// guarded wraps a lowered op so that a trap it raises is captured into the
// frame's pending register rather than unwinding the run; non-trap aborts
// (step-budget exhaustion, structural errors) still propagate.
func guarded(inner op) op {
	return func(f *frame) {
		f.pending = nil
		defer func() {
			if r := recover(); r != nil {
				ab, ok := r.(abort)
				if !ok {
					panic(r)
				}
				tr, ok := ab.err.(*rt.Trap)
				if !ok {
					panic(r)
				}
				f.pending = tr
			}
		}()
		inner(f)
	}
}

// move copies one phi input slot to the phi's slot along a CFG edge.
type move struct {
	src, dst int32
}

// copyEdge performs the edge's phi parallel copy in two phases through the
// frame scratch, so phis that read other phis of the same block observe
// the pre-copy values (SSA semantics).
func (f *frame) copyEdge(moves []move) {
	tmp := f.tmp
	for i, mv := range moves {
		tmp[i] = f.slots[mv.src]
	}
	for i, mv := range moves {
		f.slots[mv.dst] = tmp[i]
	}
}

// compiler carries the per-compile lowering state.
type compiler struct {
	g      *ir.Graph
	code   *Code
	blkIdx map[*ir.Block]int
}

func compile(g *ir.Graph) (*Code, error) {
	if len(g.Blocks) == 0 {
		return nil, fmt.Errorf("closure: %s has no blocks", g.Method.QualifiedName())
	}
	c := &Code{g: g, slot: make(map[*ir.Node]int)}
	cc := &compiler{g: g, code: c, blkIdx: make(map[*ir.Block]int, len(g.Blocks))}

	// Pass 1: dense block numbering and value-slot assignment. Every
	// placed node except OpVirtualObject (which exists only inside frame
	// states) gets a slot; constants and parameters additionally record
	// their initialization so no per-node op is needed for them at run
	// time.
	for i, b := range g.Blocks {
		cc.blkIdx[b] = i
		if len(b.Phis) > c.nPhi {
			c.nPhi = len(b.Phis)
		}
		for _, phi := range b.Phis {
			cc.assign(phi)
		}
		for _, n := range b.Nodes {
			if n.Op == ir.OpVirtualObject {
				continue
			}
			s := cc.assign(n)
			// oplint:ignore — only params and constants need slot
			// pre-population; every other op is handled by lowerNode.
			switch n.Op {
			case ir.OpParam:
				c.params = append(c.params, paramSlot{arg: int(n.AuxInt), slot: s})
			case ir.OpConst:
				c.consts = append(c.consts, constSlot{slot: s, v: rt.IntValue(n.AuxInt)})
			case ir.OpConstNull:
				c.consts = append(c.consts, constSlot{slot: s, v: rt.Null})
			}
		}
	}
	entry := g.Entry()
	if len(entry.Phis) > 0 {
		return nil, fmt.Errorf("closure: %s entry block has phis", g.Method.QualifiedName())
	}
	c.entry = cc.blkIdx[entry]

	// Pass 2: lower every block to its closure sequence and pre-linked
	// terminator.
	c.blocks = make([]block, len(g.Blocks))
	for i, b := range g.Blocks {
		ops := make([]op, 0, len(b.Nodes))
		for _, n := range b.Nodes {
			o, err := cc.lowerNode(n)
			if err != nil {
				return nil, err
			}
			if o != nil {
				// The node an OnException terminator guards has its trap
				// intercepted and recorded instead of aborting the run;
				// the terminator then routes to the dispatch chain.
				if b.Term != nil && b.Term.Op == ir.OpOnException && b.Term.Inputs[0] == n {
					o = guarded(o)
				}
				ops = append(ops, o)
			}
		}
		if b.Term == nil {
			return nil, fmt.Errorf("closure: %s has no terminator", b)
		}
		t, err := cc.lowerTerm(b, b.Term)
		if err != nil {
			return nil, err
		}
		c.blocks[i] = block{ops: ops, term: t, steps: int64(len(b.Nodes)) + 1}
	}

	c.pool.New = func() any {
		f := &frame{
			slots: make([]rt.Value, c.nSlots),
			tmp:   make([]rt.Value, c.nPhi),
			code:  c,
		}
		for _, cs := range c.consts {
			f.slots[cs.slot] = cs.v
		}
		return f
	}
	return c, nil
}

// assign gives n a dense slot (idempotent) and returns it.
func (cc *compiler) assign(n *ir.Node) int {
	if s, ok := cc.code.slot[n]; ok {
		return s
	}
	s := cc.code.nSlots
	cc.code.slot[n] = s
	cc.code.nSlots++
	return s
}

// slotOf resolves an operand to its slot; a missing slot is a scheduling
// bug surfaced as a compile error rather than a runtime panic.
func (cc *compiler) slotOf(n *ir.Node) (int32, error) {
	s, ok := cc.code.slot[n]
	if !ok {
		return 0, fmt.Errorf("closure: %s: operand %s has no slot (unscheduled?)",
			cc.g.Method.QualifiedName(), n)
	}
	return int32(s), nil
}

// in resolves input i of n.
func (cc *compiler) in(n *ir.Node, i int) (int32, error) { return cc.slotOf(n.Inputs[i]) }

// edge builds the phi parallel-copy move list for the CFG edge from → to.
// A nil phi input is lowered to a runtime abort matching the oracle's
// error, so graphs that never take the broken edge still execute.
func (cc *compiler) edge(from, to *ir.Block) ([]move, error) {
	if len(to.Phis) == 0 {
		return nil, nil
	}
	idx := to.PredIndex(from)
	if idx < 0 {
		return nil, fmt.Errorf("closure: %s is not a predecessor of %s", from, to)
	}
	moves := make([]move, 0, len(to.Phis))
	for _, phi := range to.Phis {
		in := phi.Inputs[idx]
		if in == nil {
			return nil, fmt.Errorf("exec: phi v%d missing input %d", phi.ID, idx)
		}
		src, err := cc.slotOf(in)
		if err != nil {
			return nil, err
		}
		dst, err := cc.slotOf(phi)
		if err != nil {
			return nil, err
		}
		moves = append(moves, move{src: src, dst: dst})
	}
	return moves, nil
}
