package closure_test

import (
	"testing"

	"pea/internal/mj"
	"pea/internal/rt"
	"pea/internal/vm"
)

// arithSrc is a self-contained hot loop whose compiled body performs no
// calls and no heap operations — every node lowers to pure slot arithmetic,
// so its steady-state execution must not allocate at all.
const arithSrc = `
class Main {
	static int hot(int n) {
		int s = 0;
		int i = 0;
		while (i < n) {
			s = s + i * 3 - (s >> 1);
			s = s ^ (i << 2);
			i = i + 1;
		}
		return s % 65536;
	}
	static void main() { print(hot(64)); }
}
`

// pairSrc is the PEA showcase loop (the OSR experiment's workload shape):
// each iteration allocates a Pair that never escapes, so the compiled body
// is scalar-replaced arithmetic plus a call.
const pairSrc = `
class Pair {
	int a;
	int b;
	Pair(int a, int b) { this.a = a; this.b = b; }
	int mix() { return a * 31 + b; }
}
class Main {
	static int hot(int n) {
		int acc = 0;
		int i = 0;
		while (i < n) {
			Pair p = new Pair(i, acc);
			acc = p.mix() % 65536;
			i = i + 1;
		}
		return acc;
	}
	static void main() { print(hot(1000)); }
}
`

// warmHot compiles src, warms Main.hot past the JIT threshold under the
// given backend, and returns the VM with compiled code installed.
func warmHot(t testing.TB, src string, backend vm.Backend) *vm.VM {
	t.Helper()
	prog, err := mj.Compile(src, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	machine := vm.New(prog, vm.Options{
		EA:               vm.EAPartial,
		Backend:          backend,
		CompileThreshold: 3,
		Seed:             7,
	})
	hot := prog.ClassByName("Main").MethodByName("hot")
	for i := 0; i < 8; i++ {
		if _, err := machine.Call(hot, []rt.Value{rt.IntValue(64)}); err != nil {
			t.Fatal(err)
		}
	}
	machine.DrainJIT()
	if machine.CompiledGraph(hot) == nil {
		t.Fatal("Main.hot did not tier up")
	}
	return machine
}

// TestClosureMatchesOracleOnCorpus runs a small corpus under both backends
// and requires identical results and heap effects — the package-level
// sanity check behind the system-wide differential fuzzer in internal/vm.
func TestClosureMatchesOracleOnCorpus(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		n    int64
	}{
		{"arith", arithSrc, 10_000},
		{"pair", pairSrc, 10_000},
	} {
		t.Run(tc.name, func(t *testing.T) {
			type obs struct {
				v      rt.Value
				allocs int64
			}
			run := func(backend vm.Backend) obs {
				machine := warmHot(t, tc.src, backend)
				hot := machine.Prog.ClassByName("Main").MethodByName("hot")
				v, err := machine.Call(hot, []rt.Value{rt.IntValue(tc.n)})
				if err != nil {
					t.Fatal(err)
				}
				return obs{v: v, allocs: machine.Env.Stats.Allocations}
			}
			oracle := run(vm.BackendOracle)
			closure := run(vm.BackendClosure)
			if !closure.v.Equal(oracle.v) {
				t.Fatalf("closure result %v, oracle %v", closure.v, oracle.v)
			}
			if closure.allocs != oracle.allocs {
				t.Fatalf("closure allocated %d, oracle %d", closure.allocs, oracle.allocs)
			}
		})
	}
}

// TestClosureSteadyStateZeroAlloc is the zero-alloc guard for the dispatch
// loop: once a pure-arithmetic method is compiled by the closure backend,
// invoking it must allocate nothing — the frame comes from the pool, values
// move between dense slots, and no per-node or per-block bookkeeping
// escapes to the heap.
func TestClosureSteadyStateZeroAlloc(t *testing.T) {
	machine := warmHot(t, arithSrc, vm.BackendClosure)
	hot := machine.Prog.ClassByName("Main").MethodByName("hot")
	args := []rt.Value{rt.IntValue(512)}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := machine.Call(hot, args); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state closure dispatch allocates %.2f objects per call, want 0", avg)
	}
}

// BenchmarkClosureSteadyState measures one warmed call of the PEA hot loop
// under each executor. The closure backend's wall-clock advantage over the
// oracle (and both compiled backends over the interpreter) is the honest
// version of the repo's modeled-cycle speedups.
func BenchmarkClosureSteadyState(b *testing.B) {
	args := []rt.Value{rt.IntValue(10_000)}
	bench := func(b *testing.B, machine *vm.VM) {
		b.Helper()
		hot := machine.Prog.ClassByName("Main").MethodByName("hot")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := machine.Call(hot, args); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("interp", func(b *testing.B) {
		prog, err := mj.Compile(pairSrc, "Main.main")
		if err != nil {
			b.Fatal(err)
		}
		bench(b, vm.New(prog, vm.Options{Interpret: true, Seed: 7}))
	})
	b.Run("oracle", func(b *testing.B) {
		bench(b, warmHot(b, pairSrc, vm.BackendOracle))
	})
	b.Run("closure", func(b *testing.B) {
		bench(b, warmHot(b, pairSrc, vm.BackendClosure))
	})
}
