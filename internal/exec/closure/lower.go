package closure

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/ir"
	"pea/internal/rt"
)

// trap aborts the invocation with the same trap the oracle raises at this
// node. Only ever called on error paths, so the allocation is fine.
func trap(reason string, m *bc.Method, bci int) {
	panic(abort{rt.NewTrap(reason, m, bci)})
}

// lowerNode lowers one non-terminator node to a closure with operands
// pre-resolved to slot indices and auxiliaries folded into captures. A nil
// op (with nil error) means the node needs no runtime work (constants and
// parameters are frame-initialization, virtual objects are
// deopt-metadata-only).
func (cc *compiler) lowerNode(n *ir.Node) (op, error) {
	m, bci := n.OriginMethod(cc.g.Method), n.BCI
	// oplint:ignore — intentionally partial: lowerNode sees only placed
	// non-terminator ops (phis are lowered into edge copies, terminators
	// by lowerTerm), and the default below rejects anything else at
	// compile time instead of at run time.
	switch n.Op {
	case ir.OpParam, ir.OpConst, ir.OpConstNull, ir.OpVirtualObject:
		return nil, nil

	case ir.OpArith:
		return cc.lowerArith(n)

	case ir.OpNeg:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		d, err := cc.slotOf(n)
		if err != nil {
			return nil, err
		}
		return func(f *frame) { f.slots[d] = rt.IntValue(-f.slots[a].I) }, nil

	case ir.OpCmp:
		a, b, d, err := cc.binDst(n)
		if err != nil {
			return nil, err
		}
		cond := n.Cond
		return func(f *frame) {
			f.slots[d] = rt.BoolValue(cond.EvalInt(f.slots[a].I, f.slots[b].I))
		}, nil

	case ir.OpRefEq:
		a, b, d, err := cc.binDst(n)
		if err != nil {
			return nil, err
		}
		if n.Cond == bc.CondNE {
			return func(f *frame) {
				f.slots[d] = rt.BoolValue(f.slots[a].Ref != f.slots[b].Ref)
			}, nil
		}
		return func(f *frame) {
			f.slots[d] = rt.BoolValue(f.slots[a].Ref == f.slots[b].Ref)
		}, nil

	case ir.OpInstanceOf:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		d, err := cc.slotOf(n)
		if err != nil {
			return nil, err
		}
		cls := n.Class
		return func(f *frame) {
			v := f.slots[a]
			f.slots[d] = rt.BoolValue(v.Ref != nil && !v.Ref.IsArray() && v.Ref.Class.IsSubclassOf(cls))
		}, nil

	case ir.OpNew:
		d, err := cc.slotOf(n)
		if err != nil {
			return nil, err
		}
		cls := n.Class
		return func(f *frame) { f.slots[d] = rt.RefValue(f.env.AllocObject(cls)) }, nil

	case ir.OpNewArray:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		d, err := cc.slotOf(n)
		if err != nil {
			return nil, err
		}
		ek := n.ElemKind
		return func(f *frame) {
			ln := f.slots[a].I
			if ln < 0 {
				trap(fmt.Sprintf("negative array size %d", ln), m, bci)
			}
			f.slots[d] = rt.RefValue(f.env.AllocArray(ek, ln))
		}, nil

	case ir.OpMaterialize:
		return cc.lowerMaterialize(n)

	case ir.OpLoadField:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		d, err := cc.slotOf(n)
		if err != nil {
			return nil, err
		}
		off := n.Field.Offset
		name := n.Field.QualifiedName()
		return func(f *frame) {
			o := f.slots[a]
			if o.Ref == nil {
				trap("null dereference in getfield "+name, m, bci)
			}
			f.env.Stats.FieldLoads++
			f.slots[d] = o.Ref.Fields[off]
		}, nil

	case ir.OpStoreField:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		v, err := cc.in(n, 1)
		if err != nil {
			return nil, err
		}
		off := n.Field.Offset
		name := n.Field.QualifiedName()
		return func(f *frame) {
			o := f.slots[a]
			if o.Ref == nil {
				trap("null dereference in putfield "+name, m, bci)
			}
			f.env.Stats.FieldStores++
			o.Ref.Fields[off] = f.slots[v]
		}, nil

	case ir.OpLoadStatic:
		d, err := cc.slotOf(n)
		if err != nil {
			return nil, err
		}
		fld := n.Field
		return func(f *frame) { f.slots[d] = f.env.GetStatic(fld) }, nil

	case ir.OpStoreStatic:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		fld := n.Field
		return func(f *frame) { f.env.SetStatic(fld, f.slots[a]) }, nil

	case ir.OpLoadIndexed:
		a, i, d, err := cc.binDst(n)
		if err != nil {
			return nil, err
		}
		return func(f *frame) {
			arr := f.slots[a]
			idx := f.slots[i].I
			if arr.Ref == nil {
				trap("null dereference in arrayload", m, bci)
			}
			if idx < 0 || idx >= int64(arr.Ref.Len()) {
				trap(fmt.Sprintf("array index %d out of range [0,%d)", idx, arr.Ref.Len()), m, bci)
			}
			f.slots[d] = arr.Ref.Fields[idx]
		}, nil

	case ir.OpStoreIndexed:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		i, err := cc.in(n, 1)
		if err != nil {
			return nil, err
		}
		v, err := cc.in(n, 2)
		if err != nil {
			return nil, err
		}
		return func(f *frame) {
			arr := f.slots[a]
			idx := f.slots[i].I
			if arr.Ref == nil {
				trap("null dereference in arraystore", m, bci)
			}
			if idx < 0 || idx >= int64(arr.Ref.Len()) {
				trap(fmt.Sprintf("array index %d out of range [0,%d)", idx, arr.Ref.Len()), m, bci)
			}
			arr.Ref.Fields[idx] = f.slots[v]
		}, nil

	case ir.OpArrayLength:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		d, err := cc.slotOf(n)
		if err != nil {
			return nil, err
		}
		return func(f *frame) {
			arr := f.slots[a]
			if arr.Ref == nil {
				trap("null dereference in arraylen", m, bci)
			}
			f.slots[d] = rt.IntValue(int64(arr.Ref.Len()))
		}, nil

	case ir.OpMonitorEnter:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		return func(f *frame) {
			o := f.slots[a]
			if o.Ref == nil {
				trap("null dereference in monitorenter", m, bci)
			}
			f.env.MonitorEnter(o.Ref)
		}, nil

	case ir.OpMonitorExit:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		return func(f *frame) {
			o := f.slots[a]
			if o.Ref == nil {
				trap("null dereference in monitorexit", m, bci)
			}
			if merr := f.env.MonitorExit(o.Ref); merr != nil {
				trap(merr.Error(), m, bci)
			}
		}, nil

	case ir.OpInvoke:
		return cc.lowerInvoke(n)

	case ir.OpPrint:
		a, err := cc.in(n, 0)
		if err != nil {
			return nil, err
		}
		return func(f *frame) { f.env.Print(f.slots[a].I) }, nil

	case ir.OpRand:
		d, err := cc.slotOf(n)
		if err != nil {
			return nil, err
		}
		mod := n.AuxInt
		return func(f *frame) { f.slots[d] = rt.IntValue(f.env.Rand(mod)) }, nil

	case ir.OpExceptionObject:
		d, err := cc.slotOf(n)
		if err != nil {
			return nil, err
		}
		return func(f *frame) {
			if f.pending == nil {
				panic(abort{fmt.Errorf("closure: ExceptionObject with no pending exception")})
			}
			f.slots[d] = rt.HandlerValue(f.pending)
		}, nil

	default:
		return nil, fmt.Errorf("closure: cannot lower %s in %s", n, cc.g.Method.QualifiedName())
	}
}

// binDst resolves the two inputs and the destination slot of a binary node.
func (cc *compiler) binDst(n *ir.Node) (a, b int32, d int32, err error) {
	if a, err = cc.in(n, 0); err != nil {
		return
	}
	if b, err = cc.in(n, 1); err != nil {
		return
	}
	d, err = cc.slotOf(n)
	return
}

// lowerArith specializes each arithmetic opcode into its own closure, with
// the shift masking and division trap semantics of interp.EvalArith baked
// in (the three executors must agree exactly).
func (cc *compiler) lowerArith(n *ir.Node) (op, error) {
	a, b, d, err := cc.binDst(n)
	if err != nil {
		return nil, err
	}
	m, bci := n.OriginMethod(cc.g.Method), n.BCI
	// oplint:ignore — Aux2 on OpArith holds only the arithmetic subset of
	// bc.Op (interp.EvalArith's domain); the default case rejects the rest.
	switch n.Aux2 {
	case bc.OpAdd:
		return func(f *frame) { f.slots[d] = rt.IntValue(f.slots[a].I + f.slots[b].I) }, nil
	case bc.OpSub:
		return func(f *frame) { f.slots[d] = rt.IntValue(f.slots[a].I - f.slots[b].I) }, nil
	case bc.OpMul:
		return func(f *frame) { f.slots[d] = rt.IntValue(f.slots[a].I * f.slots[b].I) }, nil
	case bc.OpDiv:
		return func(f *frame) {
			bv := f.slots[b].I
			if bv == 0 {
				trap("division by zero", m, bci)
			}
			f.slots[d] = rt.IntValue(f.slots[a].I / bv)
		}, nil
	case bc.OpRem:
		return func(f *frame) {
			bv := f.slots[b].I
			if bv == 0 {
				trap("division by zero", m, bci)
			}
			f.slots[d] = rt.IntValue(f.slots[a].I % bv)
		}, nil
	case bc.OpAnd:
		return func(f *frame) { f.slots[d] = rt.IntValue(f.slots[a].I & f.slots[b].I) }, nil
	case bc.OpOr:
		return func(f *frame) { f.slots[d] = rt.IntValue(f.slots[a].I | f.slots[b].I) }, nil
	case bc.OpXor:
		return func(f *frame) { f.slots[d] = rt.IntValue(f.slots[a].I ^ f.slots[b].I) }, nil
	case bc.OpShl:
		return func(f *frame) {
			f.slots[d] = rt.IntValue(f.slots[a].I << uint64(f.slots[b].I&63))
		}, nil
	case bc.OpShr:
		return func(f *frame) {
			f.slots[d] = rt.IntValue(f.slots[a].I >> uint64(f.slots[b].I&63))
		}, nil
	case bc.OpUShr:
		return func(f *frame) {
			f.slots[d] = rt.IntValue(int64(uint64(f.slots[a].I) >> uint64(f.slots[b].I&63)))
		}, nil
	default:
		return nil, fmt.Errorf("closure: %s: not an arithmetic op: %s", cc.g.Method.QualifiedName(), n.Aux2)
	}
}

// lowerMaterialize validates the shape at compile time (field/value count
// mismatches are compile errors here, runtime traps in the oracle — both
// only reachable from malformed IR), leaving a pure fill at run time.
func (cc *compiler) lowerMaterialize(n *ir.Node) (op, error) {
	d, err := cc.slotOf(n)
	if err != nil {
		return nil, err
	}
	srcs := make([]int32, len(n.Inputs))
	for i := range n.Inputs {
		if srcs[i], err = cc.in(n, i); err != nil {
			return nil, err
		}
	}
	locks := n.AuxLock
	if n.Class != nil {
		cls := n.Class
		if len(n.Inputs) != cls.NumFields() {
			return nil, fmt.Errorf("closure: materialize %s with %d values for %d fields",
				cls.Name, len(n.Inputs), cls.NumFields())
		}
		return func(f *frame) {
			obj := f.env.AllocObject(cls)
			for i, s := range srcs {
				obj.Fields[i] = f.slots[s]
			}
			for k := 0; k < locks; k++ {
				f.env.MonitorEnter(obj)
			}
			f.env.Stats.Materializations++
			f.slots[d] = rt.RefValue(obj)
		}, nil
	}
	ek, ln := n.ElemKind, n.AuxInt
	if int64(len(n.Inputs)) != ln {
		return nil, fmt.Errorf("closure: materialize array with %d values for length %d",
			len(n.Inputs), ln)
	}
	return func(f *frame) {
		obj := f.env.AllocArray(ek, ln)
		for i, s := range srcs {
			obj.Fields[i] = f.slots[s]
		}
		for k := 0; k < locks; k++ {
			f.env.MonitorEnter(obj)
		}
		f.env.Stats.Materializations++
		f.slots[d] = rt.RefValue(obj)
	}, nil
}

// lowerInvoke pre-resolves the callee, dispatch kind, and argument slots.
// The argument vector is allocated per call — the callee owns it, exactly
// as in the oracle and the interpreter.
func (cc *compiler) lowerInvoke(n *ir.Node) (op, error) {
	m, bci := n.OriginMethod(cc.g.Method), n.BCI
	argSlots := make([]int32, len(n.Inputs))
	for i := range n.Inputs {
		var err error
		if argSlots[i], err = cc.in(n, i); err != nil {
			return nil, err
		}
	}
	var d int32
	hasDst := n.Kind != bc.KindVoid
	if hasDst {
		var err error
		if d, err = cc.slotOf(n); err != nil {
			return nil, err
		}
	}
	callee := n.Method
	dispatch := n.Aux2
	vslot := callee.VSlot
	return func(f *frame) {
		args := make([]rt.Value, len(argSlots))
		for i, s := range argSlots {
			args[i] = f.slots[s]
		}
		target := callee
		if dispatch != bc.OpInvokeStatic {
			recv := args[0]
			if recv.Ref == nil {
				trap("null receiver calling "+callee.QualifiedName(), m, bci)
			}
			if dispatch == bc.OpInvokeVirtual {
				target = recv.Ref.Class.VTable[vslot]
			}
		}
		if f.eng.Invoke == nil {
			trap("no invoke handler for "+target.QualifiedName(), m, bci)
		}
		r, cerr := f.eng.Invoke(target, args)
		if cerr != nil {
			panic(abort{cerr})
		}
		if hasDst {
			f.slots[d] = r
		}
	}, nil
}

// lowerTerm lowers a block terminator: successor indices are pre-linked and
// each outgoing edge's phi parallel copy is baked into the returned func.
func (cc *compiler) lowerTerm(b *ir.Block, t *ir.Node) (term, error) {
	m, bci := t.OriginMethod(cc.g.Method), t.BCI
	// oplint:ignore — intentionally partial: only terminators reach
	// lowerTerm (value and fixed ops go through lowerNode), and the
	// default rejects the rest at compile time.
	switch t.Op {
	case ir.OpGoto:
		succ := b.Succs[0]
		next := cc.blkIdx[succ]
		moves, err := cc.edge(b, succ)
		if err != nil {
			return nil, err
		}
		if len(moves) == 0 {
			return func(f *frame) int { return next }, nil
		}
		return func(f *frame) int {
			f.copyEdge(moves)
			return next
		}, nil

	case ir.OpIf:
		c, err := cc.in(t, 0)
		if err != nil {
			return nil, err
		}
		tSucc, fSucc := b.Succs[0], b.Succs[1]
		tNext, fNext := cc.blkIdx[tSucc], cc.blkIdx[fSucc]
		tMoves, err := cc.edge(b, tSucc)
		if err != nil {
			return nil, err
		}
		fMoves, err := cc.edge(b, fSucc)
		if err != nil {
			return nil, err
		}
		if len(tMoves) == 0 && len(fMoves) == 0 {
			return func(f *frame) int {
				if f.slots[c].I != 0 {
					return tNext
				}
				return fNext
			}, nil
		}
		return func(f *frame) int {
			if f.slots[c].I != 0 {
				f.copyEdge(tMoves)
				return tNext
			}
			f.copyEdge(fMoves)
			return fNext
		}, nil

	case ir.OpReturn:
		if len(t.Inputs) == 1 {
			v, err := cc.in(t, 0)
			if err != nil {
				return nil, err
			}
			return func(f *frame) int {
				f.ret = f.slots[v]
				return done
			}, nil
		}
		return func(f *frame) int {
			f.ret = rt.Value{}
			return done
		}, nil

	case ir.OpThrow:
		v, err := cc.in(t, 0)
		if err != nil {
			return nil, err
		}
		if len(b.Succs) == 1 {
			// Covered throw: record the exception and enter the dispatch
			// chain directly.
			next := cc.blkIdx[b.Succs[0]]
			return func(f *frame) int {
				x := f.slots[v]
				if x.Ref == nil {
					f.pending = rt.NewTrap("null throw", m, bci)
				} else {
					f.pending = rt.NewThrow(x.Ref, m, bci)
				}
				return next
			}, nil
		}
		return func(f *frame) int {
			x := f.slots[v]
			if x.Ref == nil {
				trap("null throw", m, bci)
			}
			panic(abort{rt.NewThrow(x.Ref, m, bci)})
		}, nil

	case ir.OpOnException:
		nSucc, dSucc := b.Succs[0], b.Succs[1]
		nNext, dNext := cc.blkIdx[nSucc], cc.blkIdx[dSucc]
		nMoves, err := cc.edge(b, nSucc)
		if err != nil {
			return nil, err
		}
		dMoves, err := cc.edge(b, dSucc)
		if err != nil {
			return nil, err
		}
		return func(f *frame) int {
			if f.pending != nil {
				f.copyEdge(dMoves)
				return dNext
			}
			f.copyEdge(nMoves)
			return nNext
		}, nil

	case ir.OpUnwind:
		return func(f *frame) int {
			if f.pending == nil {
				panic(abort{fmt.Errorf("closure: Unwind with no pending exception")})
			}
			panic(abort{f.pending})
		}, nil

	case ir.OpDeopt:
		g, n, code := cc.g, t, cc.code
		return func(f *frame) int {
			v, derr := f.eng.DeoptTransfer(g, n, func(x *ir.Node) (rt.Value, bool) {
				s, ok := code.slot[x]
				if !ok {
					return rt.Value{}, false
				}
				return f.slots[s], true
			})
			if derr != nil {
				panic(abort{derr})
			}
			f.ret = v
			return done
		}, nil

	default:
		return nil, fmt.Errorf("closure: bad terminator %s in %s", t, cc.g.Method.QualifiedName())
	}
}
