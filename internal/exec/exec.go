// Package exec executes compiled IR graphs against the shared runtime
// environment. It plays the role of machine code in the paper's system: the
// JIT "installs" a compilation artifact, and an execution backend runs it,
// performing dynamic dispatch through the VM-provided Invoke hook and
// transferring to the interpreter through the Deopt hook when an OpDeopt
// node is reached (at which point scalar-replaced objects are materialized
// from the FrameState by the deopt runtime).
//
// Two backends implement the Backend interface:
//
//   - the oracle (this package, oracle.go): a tree-walking engine that
//     evaluates the scheduled graph node by node and charges the
//     deterministic cycle cost model. It is slow but simple enough to audit,
//     and serves as the differential-testing oracle for every other backend.
//   - closure (package exec/closure): a template JIT that lowers the graph
//     once, at install time, into flat per-block closure sequences with
//     operands pre-resolved to dense value slots — real wall-clock speed,
//     no cost model.
//
// The Engine carries the per-VM runtime hooks (environment, invoke, deopt,
// step budget) shared by all backends; per-invocation state lives in
// backend-private frames, so one installed Code may run concurrently on any
// number of goroutines.
package exec

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/rt"
)

// Backend lowers scheduled IR graphs into executable artifacts.
type Backend interface {
	// Name identifies the backend ("oracle", "closure"). It participates
	// in compiled-code cache keys, so artifacts lowered by one backend are
	// never replayed into a VM running another.
	Name() string
	// Compile lowers g once, at install time. The returned Code must be
	// immutable and safe for concurrent Run calls.
	Compile(g *ir.Graph) (Code, error)
}

// Code is one installed compilation product.
type Code interface {
	// Graph returns the scheduled IR the code was lowered from, for
	// install-boundary verification, OSR entry checks, and tools.
	Graph() *ir.Graph
	// Run executes the code against the engine's environment and hooks.
	Run(e *Engine, args []rt.Value) (rt.Value, error)
}

// Engine carries the runtime hooks every execution backend needs.
type Engine struct {
	Env *rt.Env

	// Invoke executes a call from compiled code. kind is the dispatch
	// kind (virtual dispatch has already been resolved against the
	// receiver). If nil, calls trap.
	Invoke func(callee *bc.Method, args []rt.Value) (rt.Value, error)

	// Deopt transfers execution to the interpreter at the OpDeopt node n
	// reached inside g. The node carries the FrameState to resume at, the
	// recorded deopt reason, and the DeoptAction that tells the runtime
	// whether the containing code must be invalidated (a failed
	// speculation) or stays valid (a rare-but-legal path). eval maps IR
	// nodes to their current runtime values (materializing virtual
	// objects is the callee's job). The returned value is the result of
	// the whole compiled method. If nil, reaching a deopt traps.
	Deopt func(g *ir.Graph, n *ir.Node, eval func(x *ir.Node) (rt.Value, bool)) (rt.Value, error)

	// Sink, when non-nil, receives a vm_deopt event (with the node's
	// recorded deopt reason) each time compiled code deoptimizes.
	Sink *obs.Sink

	// MaxSteps bounds executed nodes across all Run calls of this engine
	// (0 = unbounded). The oracle charges per node; the closure backend
	// charges per block entered, so the budget stays a runaway guard
	// without per-node bookkeeping on the fast path.
	MaxSteps int64
	steps    int64
}

// ChargeSteps charges n executed nodes against the engine's step budget
// (shared across backends and nested invocations). It returns an error once
// the budget is exhausted; with MaxSteps <= 0 it never fails.
func (e *Engine) ChargeSteps(n int64, g *ir.Graph) error {
	if e.MaxSteps <= 0 {
		return nil
	}
	e.steps += n
	if e.steps > e.MaxSteps {
		return fmt.Errorf("exec: step budget of %d exhausted in %s", e.MaxSteps, g.Method.QualifiedName())
	}
	return nil
}

// DeoptTransfer hands control to the interpreter via the Deopt hook,
// recording the deopt event and runtime stats. Backends call it when
// execution reaches an OpDeopt terminator; cost-model charging (the
// oracle's deopt penalty) stays with the oracle.
func (e *Engine) DeoptTransfer(g *ir.Graph, n *ir.Node, eval func(x *ir.Node) (rt.Value, bool)) (rt.Value, error) {
	if e.Deopt == nil {
		return rt.Value{}, rt.NewTrap("deopt without handler: "+n.DeoptReason, g.Method, n.BCI)
	}
	if e.Sink != nil {
		e.Sink.VMDeopt(g.Method.QualifiedName(), fmt.Sprintf("v%d", n.ID), n.DeoptReason)
	}
	e.Env.Stats.Deopts++
	return e.Deopt(g, n, eval)
}
