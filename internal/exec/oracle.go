package exec

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/cost"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/rt"
)

// Oracle returns the tree-walking cycle-model backend. It evaluates the
// scheduled graph node by node per invocation, charging the deterministic
// cost model (internal/cost is referenced from this backend only), and is
// the differential-testing oracle the faster backends are checked against.
func Oracle() Backend { return oracleBackend{} }

type oracleBackend struct{}

func (oracleBackend) Name() string { return "oracle" }

// Compile is the identity lowering: the oracle executes the scheduled graph
// directly, so the artifact is just the graph.
func (oracleBackend) Compile(g *ir.Graph) (Code, error) { return oracleCode{g}, nil }

type oracleCode struct{ g *ir.Graph }

func (c oracleCode) Graph() *ir.Graph { return c.g }

func (c oracleCode) Run(e *Engine, args []rt.Value) (rt.Value, error) {
	return e.Run(c.g, args)
}

// frame holds the evaluation state of one oracle graph execution.
type frame struct {
	values map[*ir.Node]rt.Value
	args   []rt.Value
	// pending is the in-flight exception while control runs through a
	// dispatch chain: set when a guarded node traps or a covered Throw
	// fires, read by ExceptionObject, re-raised by Unwind.
	pending *rt.Trap
}

func (f *frame) set(n *ir.Node, v rt.Value) { f.values[n] = v }

func (f *frame) get(n *ir.Node) rt.Value {
	v, ok := f.values[n]
	if !ok {
		panic(fmt.Sprintf("exec: use of unevaluated %s", n))
	}
	return v
}

// Run executes g with the given arguments under the tree-walking oracle and
// returns the method result. It is the oracle backend's entry point, kept as
// a public Engine method because tests and tools run graphs directly.
func (e *Engine) Run(g *ir.Graph, args []rt.Value) (rt.Value, error) {
	e.Env.Cycles += g.CodeCycles
	f := &frame{values: make(map[*ir.Node]rt.Value, 64), args: args}
	block := g.Entry()
	var prev *ir.Block
outer:
	for {
		// Evaluate phis first, as a parallel copy based on the edge
		// we arrived through.
		if len(block.Phis) > 0 {
			idx := block.PredIndex(prev)
			if idx < 0 {
				return rt.Value{}, fmt.Errorf("exec: %s entered from non-predecessor", block)
			}
			tmp := make([]rt.Value, len(block.Phis))
			for i, phi := range block.Phis {
				in := phi.Inputs[idx]
				if in == nil {
					return rt.Value{}, fmt.Errorf("exec: phi v%d missing input %d", phi.ID, idx)
				}
				tmp[i] = f.get(in)
			}
			for i, phi := range block.Phis {
				f.set(phi, tmp[i])
			}
		}
		for _, n := range block.Nodes {
			if err := e.ChargeSteps(1, g); err != nil {
				return rt.Value{}, err
			}
			done, ret, err := e.evalNode(g, f, n)
			if err != nil {
				// A trap raised by the node an OnException terminator
				// guards (always the block's last node) transfers to the
				// dispatch chain instead of unwinding; anything else —
				// traps of unguarded nodes, step-budget exhaustion —
				// propagates.
				t := block.Term
				if tr, ok := err.(*rt.Trap); ok && t.Op == ir.OpOnException && t.Inputs[0] == n {
					f.pending = tr
					prev, block = block, block.Succs[1]
					continue outer
				}
				return rt.Value{}, err
			}
			if done {
				return ret, nil
			}
		}
		t := block.Term
		if err := e.ChargeSteps(1, g); err != nil {
			return rt.Value{}, err
		}
		e.Env.Cycles += costOf(t)
		// oplint:ignore — t is a block terminator; value and fixed ops
		// are dispatched by evalNode, and the default rejects anything
		// that is not a terminator.
		switch t.Op {
		case ir.OpGoto:
			prev, block = block, block.Succs[0]
		case ir.OpIf:
			cond := f.get(t.Inputs[0])
			if cond.I != 0 {
				prev, block = block, block.Succs[0]
			} else {
				prev, block = block, block.Succs[1]
			}
		case ir.OpOnException:
			// The guarded node completed without trapping.
			prev, block = block, block.Succs[0]
		case ir.OpReturn:
			if len(t.Inputs) == 1 {
				return f.get(t.Inputs[0]), nil
			}
			return rt.Value{}, nil
		case ir.OpThrow:
			v := f.get(t.Inputs[0])
			var tr *rt.Trap
			if v.Ref == nil {
				tr = rt.NewTrap("null throw", t.OriginMethod(g.Method), t.BCI)
			} else {
				tr = rt.NewThrow(v.Ref, t.OriginMethod(g.Method), t.BCI)
			}
			if len(block.Succs) == 1 { // covered: enter the dispatch chain
				f.pending = tr
				prev, block = block, block.Succs[0]
			} else {
				return rt.Value{}, tr
			}
		case ir.OpUnwind:
			if f.pending == nil {
				return rt.Value{}, fmt.Errorf("exec: Unwind with no pending exception")
			}
			return rt.Value{}, f.pending
		case ir.OpDeopt:
			return e.deopt(g, f, t)
		default:
			return rt.Value{}, fmt.Errorf("exec: bad terminator %s", t)
		}
	}
}

func (e *Engine) trap(g *ir.Graph, n *ir.Node, reason string) error {
	return rt.NewTrap(reason, n.OriginMethod(g.Method), n.BCI)
}

// evalNode executes one non-terminator node. done=true means the whole
// method completed (a deopt path returned through the interpreter).
func (e *Engine) evalNode(g *ir.Graph, f *frame, n *ir.Node) (done bool, ret rt.Value, err error) {
	e.Env.Cycles += costOf(n)
	// oplint:ignore — evalNode sees only non-terminators (phis and
	// terminators are handled in the block loop); the default rejects
	// the rest.
	switch n.Op {
	case ir.OpParam:
		f.set(n, f.args[n.AuxInt])
	case ir.OpConst:
		f.set(n, rt.IntValue(n.AuxInt))
	case ir.OpConstNull:
		f.set(n, rt.Null)
	case ir.OpArith:
		a, b := f.get(n.Inputs[0]).I, f.get(n.Inputs[1]).I
		r, aerr := interp.EvalArith(n.Aux2, a, b)
		if aerr != nil {
			return false, rt.Value{}, e.trap(g, n, aerr.Error())
		}
		f.set(n, rt.IntValue(r))
	case ir.OpNeg:
		f.set(n, rt.IntValue(-f.get(n.Inputs[0]).I))
	case ir.OpCmp:
		a, b := f.get(n.Inputs[0]).I, f.get(n.Inputs[1]).I
		f.set(n, rt.BoolValue(n.Cond.EvalInt(a, b)))
	case ir.OpRefEq:
		a, b := f.get(n.Inputs[0]), f.get(n.Inputs[1])
		eq := a.Ref == b.Ref
		if n.Cond == bc.CondNE {
			eq = !eq
		}
		f.set(n, rt.BoolValue(eq))
	case ir.OpInstanceOf:
		v := f.get(n.Inputs[0])
		ok := v.Ref != nil && !v.Ref.IsArray() && v.Ref.Class.IsSubclassOf(n.Class)
		f.set(n, rt.BoolValue(ok))
	case ir.OpNew:
		e.Env.Cycles += cost.AllocPerField * int64(n.Class.NumFields())
		f.set(n, rt.RefValue(e.Env.AllocObject(n.Class)))
	case ir.OpNewArray:
		ln := f.get(n.Inputs[0]).I
		if ln < 0 {
			return false, rt.Value{}, e.trap(g, n, fmt.Sprintf("negative array size %d", ln))
		}
		e.Env.Cycles += cost.AllocPerField * ln
		f.set(n, rt.RefValue(e.Env.AllocArray(n.ElemKind, ln)))
	case ir.OpMaterialize:
		v, merr := e.materializeNode(f, n)
		if merr != nil {
			return false, rt.Value{}, e.trap(g, n, merr.Error())
		}
		f.set(n, v)
	case ir.OpLoadField:
		obj := f.get(n.Inputs[0])
		if obj.Ref == nil {
			return false, rt.Value{}, e.trap(g, n, "null dereference in getfield "+n.Field.QualifiedName())
		}
		e.Env.Stats.FieldLoads++
		f.set(n, obj.Ref.Fields[n.Field.Offset])
	case ir.OpStoreField:
		obj := f.get(n.Inputs[0])
		if obj.Ref == nil {
			return false, rt.Value{}, e.trap(g, n, "null dereference in putfield "+n.Field.QualifiedName())
		}
		e.Env.Stats.FieldStores++
		obj.Ref.Fields[n.Field.Offset] = f.get(n.Inputs[1])
	case ir.OpLoadStatic:
		f.set(n, e.Env.GetStatic(n.Field))
	case ir.OpStoreStatic:
		e.Env.SetStatic(n.Field, f.get(n.Inputs[0]))
	case ir.OpLoadIndexed:
		arr := f.get(n.Inputs[0])
		idx := f.get(n.Inputs[1]).I
		if arr.Ref == nil {
			return false, rt.Value{}, e.trap(g, n, "null dereference in arrayload")
		}
		if idx < 0 || idx >= int64(arr.Ref.Len()) {
			return false, rt.Value{}, e.trap(g, n,
				fmt.Sprintf("array index %d out of range [0,%d)", idx, arr.Ref.Len()))
		}
		f.set(n, arr.Ref.Fields[idx])
	case ir.OpStoreIndexed:
		arr := f.get(n.Inputs[0])
		idx := f.get(n.Inputs[1]).I
		if arr.Ref == nil {
			return false, rt.Value{}, e.trap(g, n, "null dereference in arraystore")
		}
		if idx < 0 || idx >= int64(arr.Ref.Len()) {
			return false, rt.Value{}, e.trap(g, n,
				fmt.Sprintf("array index %d out of range [0,%d)", idx, arr.Ref.Len()))
		}
		arr.Ref.Fields[idx] = f.get(n.Inputs[2])
	case ir.OpArrayLength:
		arr := f.get(n.Inputs[0])
		if arr.Ref == nil {
			return false, rt.Value{}, e.trap(g, n, "null dereference in arraylen")
		}
		f.set(n, rt.IntValue(int64(arr.Ref.Len())))
	case ir.OpMonitorEnter:
		obj := f.get(n.Inputs[0])
		if obj.Ref == nil {
			return false, rt.Value{}, e.trap(g, n, "null dereference in monitorenter")
		}
		e.Env.MonitorEnter(obj.Ref)
	case ir.OpMonitorExit:
		obj := f.get(n.Inputs[0])
		if obj.Ref == nil {
			return false, rt.Value{}, e.trap(g, n, "null dereference in monitorexit")
		}
		if merr := e.Env.MonitorExit(obj.Ref); merr != nil {
			return false, rt.Value{}, e.trap(g, n, merr.Error())
		}
	case ir.OpInvoke:
		args := make([]rt.Value, len(n.Inputs))
		for i, in := range n.Inputs {
			args[i] = f.get(in)
		}
		callee := n.Method
		if n.Aux2 != bc.OpInvokeStatic {
			recv := args[0]
			if recv.Ref == nil {
				return false, rt.Value{}, e.trap(g, n, "null receiver calling "+callee.QualifiedName())
			}
			if n.Aux2 == bc.OpInvokeVirtual {
				callee = recv.Ref.Class.VTable[callee.VSlot]
			}
		}
		if e.Invoke == nil {
			return false, rt.Value{}, e.trap(g, n, "no invoke handler for "+callee.QualifiedName())
		}
		r, cerr := e.Invoke(callee, args)
		if cerr != nil {
			return false, rt.Value{}, cerr
		}
		if n.Kind != bc.KindVoid {
			f.set(n, r)
		}
	case ir.OpPrint:
		e.Env.Print(f.get(n.Inputs[0]).I)
	case ir.OpRand:
		f.set(n, rt.IntValue(e.Env.Rand(n.AuxInt)))
	case ir.OpVirtualObject:
		// No runtime effect: virtual objects exist only inside frame
		// states and are materialized by the deoptimization runtime.
	case ir.OpExceptionObject:
		if f.pending == nil {
			return false, rt.Value{}, fmt.Errorf("exec: ExceptionObject with no pending exception")
		}
		f.set(n, rt.HandlerValue(f.pending))
	default:
		return false, rt.Value{}, fmt.Errorf("exec: unhandled node %s", n)
	}
	return false, rt.Value{}, nil
}

// materializeNode allocates and initializes an object or array from an
// OpMaterialize node, re-establishing elided locks.
func (e *Engine) materializeNode(f *frame, n *ir.Node) (rt.Value, error) {
	var obj *rt.Object
	if n.Class != nil {
		e.Env.Cycles += cost.AllocPerField * int64(n.Class.NumFields())
		obj = e.Env.AllocObject(n.Class)
		if len(n.Inputs) != n.Class.NumFields() {
			return rt.Value{}, fmt.Errorf("materialize %s with %d values for %d fields",
				n.Class.Name, len(n.Inputs), n.Class.NumFields())
		}
	} else {
		e.Env.Cycles += cost.AllocPerField * n.AuxInt
		obj = e.Env.AllocArray(n.ElemKind, n.AuxInt)
		if int64(len(n.Inputs)) != n.AuxInt {
			return rt.Value{}, fmt.Errorf("materialize array with %d values for length %d",
				len(n.Inputs), n.AuxInt)
		}
	}
	for i, in := range n.Inputs {
		obj.Fields[i] = f.get(in)
	}
	for k := 0; k < n.AuxLock; k++ {
		e.Env.MonitorEnter(obj)
	}
	e.Env.Stats.Materializations++
	return rt.RefValue(obj), nil
}

// deopt hands control to the interpreter via the engine's shared transfer
// path, charging the oracle's modeled deopt penalty on top.
func (e *Engine) deopt(g *ir.Graph, f *frame, n *ir.Node) (rt.Value, error) {
	if e.Deopt != nil {
		e.Env.Cycles += cost.DeoptPenalty
	}
	return e.DeoptTransfer(g, n, func(x *ir.Node) (rt.Value, bool) {
		v, ok := f.values[x]
		return v, ok
	})
}

// costOf maps an IR node to its cycle cost in compiled code.
func costOf(n *ir.Node) int64 {
	switch n.Op {
	case ir.OpParam, ir.OpConst, ir.OpConstNull, ir.OpPhi, ir.OpVirtualObject:
		return 0 // register-allocated; no runtime work
	case ir.OpNeg, ir.OpCmp, ir.OpRefEq:
		return cost.ALU
	case ir.OpArith:
		return cost.OfOp(n.Aux2)
	case ir.OpInstanceOf:
		return cost.TypeCheck
	case ir.OpNew, ir.OpNewArray, ir.OpMaterialize:
		return cost.AllocBase
	case ir.OpLoadField, ir.OpStoreField:
		return cost.FieldAccess
	case ir.OpLoadStatic, ir.OpStoreStatic:
		return cost.StaticAccess
	case ir.OpLoadIndexed, ir.OpStoreIndexed:
		return cost.ArrayAccess
	case ir.OpArrayLength:
		return cost.ALU
	case ir.OpMonitorEnter, ir.OpMonitorExit:
		return cost.Monitor
	case ir.OpInvoke:
		c := int64(cost.CallOverhead)
		if n.Aux2 == bc.OpInvokeVirtual {
			c += cost.VirtualDispatch
		}
		return c
	case ir.OpPrint:
		return cost.Print
	case ir.OpRand:
		return cost.Rand
	case ir.OpIf:
		return cost.Branch
	case ir.OpGoto:
		return 1
	case ir.OpReturn:
		return 2
	case ir.OpThrow, ir.OpDeopt:
		return 0 // charged separately
	case ir.OpOnException, ir.OpExceptionObject, ir.OpUnwind:
		// The non-throwing path through a guard is free — exception
		// tables cost nothing until a trap actually fires.
		return 0
	default:
		return cost.ALU
	}
}
