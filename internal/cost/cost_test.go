package cost

import (
	"testing"

	"pea/internal/bc"
)

func TestRelativeCosts(t *testing.T) {
	// The model's defining relations: allocation >> field access > ALU;
	// monitors cost about a CAS; calls dominate simple arithmetic;
	// interpretation pays a large dispatch multiplier.
	if AllocBase <= Monitor || Monitor <= FieldAccess || FieldAccess <= ALU {
		t.Fatal("cost ordering violated")
	}
	if InterpFactor < 5 {
		t.Fatal("interpreter must be much slower than compiled code")
	}
	if DeoptPenalty < 10*CallOverhead {
		t.Fatal("deoptimization must be expensive")
	}
}

func TestOfOpCoverage(t *testing.T) {
	// Every opcode has a non-negative cost; allocation and monitor ops
	// map to their model constants.
	for op := bc.OpNop; op < bc.OpRand+1; op++ {
		if OfOp(op) < 0 {
			t.Fatalf("negative cost for %s", op)
		}
	}
	if OfOp(bc.OpNew) != AllocBase || OfOp(bc.OpMonitorEnter) != Monitor {
		t.Fatal("alloc/monitor costs not wired")
	}
	if OfOp(bc.OpInvokeVirtual) <= OfOp(bc.OpInvokeStatic) {
		t.Fatal("virtual dispatch must cost more than static calls")
	}
	if OfOp(bc.OpDiv) <= OfOp(bc.OpAdd) {
		t.Fatal("division must cost more than addition")
	}
}
