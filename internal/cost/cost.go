// Package cost defines the deterministic cycle cost model used to report
// simulated run time. The paper measures wall-clock iterations/minute on a
// Xeon E5-2690; we substitute a cycle model in which the *relative* costs of
// allocation, locking, field traffic and plain ALU work mirror a modern JVM:
// an allocation (TLAB bump + zeroing + eventual GC amortization) costs tens
// of ALU ops, a monitor operation costs roughly a CAS, and interpreted code
// pays a dispatch multiplier over compiled code. Reported "iterations per
// minute" are derived from these cycles, so configuration *ratios* — the
// quantity the paper's Table 1 reports — are meaningful even though absolute
// cycles are synthetic.
package cost

import "pea/internal/bc"

// Cycle costs of dynamic operations, in compiled-code cycles.
const (
	// ALU is the cost of a simple arithmetic/compare/move operation.
	ALU = 1
	// Branch is the cost of a conditional branch.
	Branch = 2
	// FieldAccess is the cost of a field load or store (address compute +
	// memory access; assumes cache hit).
	FieldAccess = 3
	// StaticAccess is the cost of a static field load or store.
	StaticAccess = 3
	// ArrayAccess is the cost of an array element access incl. bounds check.
	ArrayAccess = 4
	// AllocBase is the fixed cost of any heap allocation (TLAB bump,
	// header init, and amortized garbage-collection pressure).
	AllocBase = 50
	// AllocPerField is the per-field/per-element zeroing cost.
	AllocPerField = 2
	// Monitor is the cost of a monitor enter or exit (uncontended CAS).
	Monitor = 18
	// CallOverhead is the fixed cost of a non-inlined call (frame setup,
	// dispatch).
	CallOverhead = 25
	// VirtualDispatch is the extra cost of a vtable-dispatched call.
	VirtualDispatch = 6
	// TypeCheck is the cost of a dynamic type check.
	TypeCheck = 4
	// Print is the cost of the output intrinsic.
	Print = 30
	// Rand is the cost of the PRNG intrinsic.
	Rand = 6
	// DeoptPenalty is the fixed cost of a deoptimization (state
	// reconstruction, interpreter transition).
	DeoptPenalty = 500

	// InterpFactor multiplies bytecode costs when running in the
	// interpreter (dispatch loop, operand stack traffic).
	InterpFactor = 12
)

// CyclesPerMinute converts model cycles to the "iterations per minute"
// metric: we pretend one model cycle is one CPU cycle at ~2.9 GHz (the
// paper's E5-2690 clock).
const CyclesPerMinute = 2_900_000_000 * 60

// OfOp returns the compiled-code cost of a bytecode op, excluding
// per-field allocation components (callers add AllocPerField terms).
func OfOp(op bc.Op) int64 {
	switch op {
	case bc.OpNop:
		return 0
	case bc.OpConst, bc.OpConstNull, bc.OpLoad, bc.OpStore, bc.OpPop, bc.OpDup, bc.OpSwap:
		return ALU
	case bc.OpAdd, bc.OpSub, bc.OpAnd, bc.OpOr, bc.OpXor, bc.OpShl, bc.OpShr, bc.OpUShr, bc.OpNeg, bc.OpCmp:
		return ALU
	case bc.OpMul:
		return 3
	case bc.OpDiv, bc.OpRem:
		return 20
	case bc.OpGoto:
		return 1
	case bc.OpIfCmp, bc.OpIf, bc.OpIfRef, bc.OpIfNull:
		return Branch
	case bc.OpNew, bc.OpNewArray:
		return AllocBase
	case bc.OpGetField, bc.OpPutField:
		return FieldAccess
	case bc.OpGetStatic, bc.OpPutStatic:
		return StaticAccess
	case bc.OpArrayLoad, bc.OpArrayStore:
		return ArrayAccess
	case bc.OpArrayLen:
		return ALU
	case bc.OpInstanceOf:
		return TypeCheck
	case bc.OpInvokeStatic, bc.OpInvokeDirect:
		return CallOverhead
	case bc.OpInvokeVirtual:
		return CallOverhead + VirtualDispatch
	case bc.OpMonitorEnter, bc.OpMonitorExit:
		return Monitor
	case bc.OpReturn, bc.OpReturnValue:
		return 2
	case bc.OpThrow:
		return 10
	case bc.OpPrint:
		return Print
	case bc.OpRand:
		return Rand
	default:
		return ALU
	}
}
