package interp

import (
	"strings"
	"testing"
	"testing/quick"

	"pea/internal/bc"
	"pea/internal/rt"
)

// compile assembles a single static method "C.m" with the given body and
// returns the program.
func compile(t *testing.T, params []bc.Kind, ret bc.Kind, body func(m *bc.MethodAsm, ca *bc.ClassAsm)) *bc.Program {
	t.Helper()
	a := bc.NewAssembler()
	ca := a.Class("C", "")
	m := ca.Method("m", params, ret, true)
	body(m, ca)
	p, err := a.Finish("")
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

// run invokes C.m with the given int arguments.
func run(t *testing.T, p *bc.Program, args ...int64) (rt.Value, *rt.Env, error) {
	t.Helper()
	env := rt.NewEnv(p, 1)
	it := New(env)
	it.MaxSteps = 1_000_000
	vals := make([]rt.Value, len(args))
	for i, a := range args {
		vals[i] = rt.IntValue(a)
	}
	v, err := it.Call(p.ClassByName("C").MethodByName("m"), vals)
	return v, env, err
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   bc.Op
		a, b int64
		want int64
	}{
		{bc.OpAdd, 3, 4, 7},
		{bc.OpSub, 3, 4, -1},
		{bc.OpMul, 3, 4, 12},
		{bc.OpDiv, 13, 4, 3},
		{bc.OpDiv, -13, 4, -3},
		{bc.OpRem, 13, 4, 1},
		{bc.OpRem, -13, 4, -1},
		{bc.OpAnd, 0b1100, 0b1010, 0b1000},
		{bc.OpOr, 0b1100, 0b1010, 0b1110},
		{bc.OpXor, 0b1100, 0b1010, 0b0110},
		{bc.OpShl, 1, 4, 16},
		{bc.OpShr, -16, 2, -4},
		{bc.OpUShr, -1, 60, 15},
	}
	for _, tc := range cases {
		p := compile(t, []bc.Kind{bc.KindInt, bc.KindInt}, bc.KindInt,
			func(m *bc.MethodAsm, _ *bc.ClassAsm) {
				m.Load(0).Load(1).Arith(tc.op).ReturnValue()
			})
		got, _, err := run(t, p, tc.a, tc.b)
		if err != nil {
			t.Fatalf("%s(%d,%d): %v", tc.op, tc.a, tc.b, err)
		}
		if got.I != tc.want {
			t.Errorf("%s(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, got.I, tc.want)
		}
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	for _, op := range []bc.Op{bc.OpDiv, bc.OpRem} {
		p := compile(t, []bc.Kind{bc.KindInt}, bc.KindInt,
			func(m *bc.MethodAsm, _ *bc.ClassAsm) {
				m.Load(0).Const(0).Arith(op).ReturnValue()
			})
		_, _, err := run(t, p, 10)
		if err == nil || !strings.Contains(err.Error(), "division by zero") {
			t.Fatalf("%s by zero: got %v, want trap", op, err)
		}
	}
}

func TestLoopSum(t *testing.T) {
	// for (i=0; i<n; i++) s += i; return s
	p := compile(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, _ *bc.ClassAsm) {
			i := m.NewLocal(bc.KindInt)
			s := m.NewLocal(bc.KindInt)
			m.Const(0).Store(i).Const(0).Store(s)
			m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
			m.Load(s).Load(i).Add().Store(s)
			m.Load(i).Const(1).Add().Store(i)
			m.Goto("head")
			m.Label("done").Load(s).ReturnValue()
		})
	got, _, err := run(t, p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 4950 {
		t.Fatalf("sum(100) = %d, want 4950", got.I)
	}
}

func TestFieldsAndAllocationCounters(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	v := box.Field("v", bc.KindInt)
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Load(0).PutField(v)
	m.Load(l).GetField(v).Const(1).Add().ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	got, env, err := run(t, p, 41)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 42 {
		t.Fatalf("got %d, want 42", got.I)
	}
	if env.Stats.Allocations != 1 {
		t.Fatalf("allocations = %d, want 1", env.Stats.Allocations)
	}
	if env.Stats.AllocatedBytes != 16+8 {
		t.Fatalf("bytes = %d, want 24", env.Stats.AllocatedBytes)
	}
	if env.Stats.FieldLoads != 1 || env.Stats.FieldStores != 1 {
		t.Fatalf("field counters = %d/%d, want 1/1", env.Stats.FieldLoads, env.Stats.FieldStores)
	}
}

func TestArrays(t *testing.T) {
	p := compile(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, _ *bc.ClassAsm) {
			arr := m.NewLocal(bc.KindRef)
			i := m.NewLocal(bc.KindInt)
			s := m.NewLocal(bc.KindInt)
			m.Load(0).NewArray(bc.KindInt).Store(arr)
			// arr[i] = i*2
			m.Const(0).Store(i)
			m.Label("fill").Load(i).Load(0).IfCmp(bc.CondGE, "sum")
			m.Load(arr).Load(i).Load(i).Const(2).Mul().ArrayStore(bc.KindInt)
			m.Load(i).Const(1).Add().Store(i)
			m.Goto("fill")
			// s = sum(arr)
			m.Label("sum").Const(0).Store(i).Const(0).Store(s)
			m.Label("head").Load(i).Load(arr).ArrayLen().IfCmp(bc.CondGE, "done")
			m.Load(s).Load(arr).Load(i).ArrayLoad(bc.KindInt).Add().Store(s)
			m.Load(i).Const(1).Add().Store(i)
			m.Goto("head")
			m.Label("done").Load(s).ReturnValue()
		})
	got, env, err := run(t, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 90 {
		t.Fatalf("got %d, want 90", got.I)
	}
	if env.Stats.AllocatedBytes != 24+80 {
		t.Fatalf("bytes = %d, want 104", env.Stats.AllocatedBytes)
	}
}

func TestArrayBoundsTrap(t *testing.T) {
	p := compile(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, _ *bc.ClassAsm) {
			m.Const(3).NewArray(bc.KindInt).Load(0).ArrayLoad(bc.KindInt).ReturnValue()
		})
	for _, idx := range []int64{-1, 3, 100} {
		_, _, err := run(t, p, idx)
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("index %d: got %v, want bounds trap", idx, err)
		}
	}
	if got, _, err := run(t, p, 2); err != nil || got.I != 0 {
		t.Fatalf("in-bounds read: %v %v", got, err)
	}
}

func TestNullDereferenceTraps(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	v := box.Field("v", bc.KindInt)
	c := a.Class("C", "")
	m := c.Method("m", nil, bc.KindInt, true)
	m.ConstNull().GetField(v).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err2 := run(t, p)
	if err2 == nil || !strings.Contains(err2.Error(), "null dereference") {
		t.Fatalf("got %v, want null dereference trap", err2)
	}
}

func TestVirtualDispatch(t *testing.T) {
	a := bc.NewAssembler()
	base := a.Class("Base", "")
	bget := base.Method("get", nil, bc.KindInt, false)
	bget.Const(1).ReturnValue()
	sub := a.Class("Sub", "Base")
	sub.Method("get", nil, bc.KindInt, false).Const(2).ReturnValue()

	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.Load(0).If(bc.CondNE, "mksub")
	m.New(base.Ref()).Store(l).Goto("call")
	m.Label("mksub").New(sub.Ref()).Store(l)
	m.Label("call").Load(l).InvokeVirtual(bget.Ref()).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	if got, _, _ := run(t, p, 0); got.I != 1 {
		t.Fatalf("Base.get via vtable = %d, want 1", got.I)
	}
	if got, _, _ := run(t, p, 1); got.I != 2 {
		t.Fatalf("Sub.get via vtable = %d, want 2", got.I)
	}
}

func TestMonitorsAndCounters(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	c := a.Class("C", "")
	m := c.Method("m", nil, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).MonitorEnter()
	m.Load(l).MonitorEnter() // recursive
	m.Load(l).MonitorExit()
	m.Load(l).MonitorExit()
	m.Const(0).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	_, env, err2 := run(t, p)
	if err2 != nil {
		t.Fatal(err2)
	}
	if env.Stats.MonitorOps != 4 {
		t.Fatalf("monitor ops = %d, want 4", env.Stats.MonitorOps)
	}
}

func TestUnbalancedMonitorExitTraps(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	c := a.Class("C", "")
	m := c.Method("m", nil, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).MonitorExit()
	m.Const(0).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err2 := run(t, p)
	if err2 == nil || !strings.Contains(err2.Error(), "monitor exit on unlocked") {
		t.Fatalf("got %v, want unlock trap", err2)
	}
}

func TestStatics(t *testing.T) {
	a := bc.NewAssembler()
	c := a.Class("C", "")
	g := c.Static("g", bc.KindInt)
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Load(0).PutStatic(g)
	m.GetStatic(g).Const(10).Mul().ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	got, _, err2 := run(t, p, 7)
	if err2 != nil {
		t.Fatal(err2)
	}
	if got.I != 70 {
		t.Fatalf("got %d, want 70", got.I)
	}
}

func TestInstanceOf(t *testing.T) {
	a := bc.NewAssembler()
	base := a.Class("Base", "")
	sub := a.Class("Sub", "Base")
	other := a.Class("Other", "")
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.Load(0).Const(0).IfCmp(bc.CondEQ, "null")
	m.Load(0).Const(1).IfCmp(bc.CondEQ, "sub")
	m.Load(0).Const(2).IfCmp(bc.CondEQ, "other")
	m.New(base.Ref()).Store(l).Goto("test")
	m.Label("null").ConstNull().Store(l).Goto("test")
	m.Label("sub").New(sub.Ref()).Store(l).Goto("test")
	m.Label("other").New(other.Ref()).Store(l).Goto("test")
	m.Label("test").Load(l).InstanceOf(base.Ref()).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{0: 0, 1: 1, 2: 0, 3: 1}
	for arg, exp := range want {
		got, _, err := run(t, p, arg)
		if err != nil {
			t.Fatal(err)
		}
		if got.I != exp {
			t.Fatalf("instanceof case %d = %d, want %d", arg, got.I, exp)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	p := compile(t, nil, bc.KindInt,
		func(m *bc.MethodAsm, _ *bc.ClassAsm) {
			m.Rand(1000).Rand(1000).Add().ReturnValue()
		})
	v1, _, err1 := run(t, p)
	v2, _, err2 := run(t, p)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !v1.Equal(v2) {
		t.Fatalf("same seed produced %v and %v", v1, v2)
	}
	if v1.I < 0 || v1.I >= 2000 {
		t.Fatalf("rand out of range: %d", v1.I)
	}
}

func TestRandRange(t *testing.T) {
	err := quick.Check(func(mod uint16) bool {
		m := int64(mod%997) + 1
		env := rt.NewEnv(&bc.Program{}, uint64(mod)+7)
		for i := 0; i < 50; i++ {
			r := env.Rand(m)
			if r < 0 || r >= m {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrintOutput(t *testing.T) {
	p := compile(t, nil, bc.KindVoid,
		func(m *bc.MethodAsm, _ *bc.ClassAsm) {
			m.Const(1).Print().Const(2).Print().Const(3).Print().Return()
		})
	_, env, err := run(t, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Output) != 3 || env.Output[0] != 1 || env.Output[2] != 3 {
		t.Fatalf("output = %v", env.Output)
	}
}

func TestStepBudget(t *testing.T) {
	p := compile(t, nil, bc.KindVoid,
		func(m *bc.MethodAsm, _ *bc.ClassAsm) {
			m.Label("spin").Goto("spin")
		})
	env := rt.NewEnv(p, 1)
	it := New(env)
	it.MaxSteps = 1000
	_, err := it.Call(p.ClassByName("C").MethodByName("m"), nil)
	if err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("got %v, want step budget error", err)
	}
}

func TestProfileCollection(t *testing.T) {
	a := bc.NewAssembler()
	c := a.Class("C", "")
	callee := c.Method("callee", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	callee.Load(0).Const(1).Add().ReturnValue()
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	m.Const(0).Store(i).Const(0).Store(s)
	m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	m.Load(s).InvokeStatic(callee.Ref()).Store(s)
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("head")
	m.Label("done").Load(s).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(p, 1)
	it := New(env)
	cm := p.ClassByName("C").MethodByName("m")
	cc := p.ClassByName("C").MethodByName("callee")
	if _, err := it.Call(cm, []rt.Value{rt.IntValue(50)}); err != nil {
		t.Fatal(err)
	}
	if got := it.Profile.Invocations(cc); got != 50 {
		t.Fatalf("callee invocations = %d, want 50", got)
	}
	// The loop branch at the head is taken once (exit) and not taken 50
	// times.
	prob, observed := it.Profile.BranchProbability(cm, 6)
	if !observed {
		t.Fatal("loop branch unobserved")
	}
	if prob < 0.01 || prob > 0.05 {
		t.Fatalf("exit branch probability = %f, want ~1/51", prob)
	}
	if tgt := it.Profile.MonomorphicTarget(cm, 8); tgt != cc {
		t.Fatalf("call site target = %v, want callee", tgt)
	}
}

func TestCallHookDiversion(t *testing.T) {
	a := bc.NewAssembler()
	c := a.Class("C", "")
	callee := c.Method("callee", nil, bc.KindInt, true)
	callee.Const(1).ReturnValue()
	m := c.Method("m", nil, bc.KindInt, true)
	m.InvokeStatic(callee.Ref()).ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(p, 1)
	it := New(env)
	it.CallHook = func(mm *bc.Method, args []rt.Value) (rt.Value, bool, error) {
		if mm.Name == "callee" {
			return rt.IntValue(99), true, nil
		}
		return rt.Value{}, false, nil
	}
	got, err := it.Call(p.ClassByName("C").MethodByName("m"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 99 {
		t.Fatalf("hook not used: got %d", got.I)
	}
}

func TestResumeMidMethod(t *testing.T) {
	// Deoptimization resumes a frame at an arbitrary pc with prepared
	// locals/stack. Build: m(x) { return x + 5 } and resume at the Add
	// with [x, 5] already on the stack.
	p := compile(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, _ *bc.ClassAsm) {
			m.Load(0).Const(5).Add().ReturnValue()
		})
	env := rt.NewEnv(p, 1)
	it := New(env)
	m := p.ClassByName("C").MethodByName("m")
	f := &Frame{
		Method: m,
		PC:     2, // the Add
		Locals: []rt.Value{rt.IntValue(37)},
		Stack:  []rt.Value{rt.IntValue(37), rt.IntValue(5)},
	}
	got, err := it.Resume(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 42 {
		t.Fatalf("resumed result = %d, want 42", got.I)
	}
}

func TestCyclesAdvance(t *testing.T) {
	p := compile(t, nil, bc.KindInt,
		func(m *bc.MethodAsm, _ *bc.ClassAsm) {
			m.Const(1).Const(2).Add().ReturnValue()
		})
	_, env, err := run(t, p)
	if err != nil {
		t.Fatal(err)
	}
	if env.Cycles <= 0 {
		t.Fatal("interpreting should consume cycles")
	}
}
