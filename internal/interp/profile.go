package interp

import (
	"pea/internal/bc"
)

// Profile accumulates execution profiles while interpreting: invocation
// counts per method, taken/not-taken counts per branch site, and receiver
// methods observed per virtual call site. The JIT policy uses invocation
// counts to pick compilation candidates; the compiler uses branch
// probabilities for block frequencies and call-site receiver profiles for
// devirtualization and inlining.
type Profile struct {
	methods []methodProfile
}

type methodProfile struct {
	invocations int64
	// branches maps branch pc -> [notTaken, taken] counts.
	branches map[int]*[2]int64
	// callSites maps invoke pc -> callee method -> count.
	callSites map[int]map[*bc.Method]int64
}

// NewProfile creates an empty profile sized for the program.
func NewProfile(p *bc.Program) *Profile {
	return &Profile{methods: make([]methodProfile, len(p.Methods))}
}

func (p *Profile) mp(m *bc.Method) *methodProfile { return &p.methods[m.ID] }

// CountInvocation records one invocation of m.
func (p *Profile) CountInvocation(m *bc.Method) { p.mp(m).invocations++ }

// Invocations returns the recorded invocation count of m.
func (p *Profile) Invocations(m *bc.Method) int64 { return p.mp(m).invocations }

// CountBranch records one execution of the branch at (m, pc).
func (p *Profile) CountBranch(m *bc.Method, pc int, taken bool) {
	mp := p.mp(m)
	if mp.branches == nil {
		mp.branches = make(map[int]*[2]int64)
	}
	c := mp.branches[pc]
	if c == nil {
		c = new([2]int64)
		mp.branches[pc] = c
	}
	if taken {
		c[1]++
	} else {
		c[0]++
	}
}

// BranchProbability returns the observed probability that the branch at
// (m, pc) is taken, and whether any executions were observed. Unobserved
// branches report 0.5.
func (p *Profile) BranchProbability(m *bc.Method, pc int) (prob float64, observed bool) {
	mp := p.mp(m)
	c := mp.branches[pc]
	if c == nil || c[0]+c[1] == 0 {
		return 0.5, false
	}
	return float64(c[1]) / float64(c[0]+c[1]), true
}

// CountCallSite records that the call at (m, pc) dispatched to callee.
func (p *Profile) CountCallSite(m *bc.Method, pc int, callee *bc.Method) {
	mp := p.mp(m)
	if mp.callSites == nil {
		mp.callSites = make(map[int]map[*bc.Method]int64)
	}
	s := mp.callSites[pc]
	if s == nil {
		s = make(map[*bc.Method]int64)
		mp.callSites[pc] = s
	}
	s[callee]++
}

// MonomorphicTarget returns the single callee observed at (m, pc), or nil
// if the site is unobserved or polymorphic.
func (p *Profile) MonomorphicTarget(m *bc.Method, pc int) *bc.Method {
	mp := p.mp(m)
	s := mp.callSites[pc]
	if len(s) != 1 {
		return nil
	}
	for callee := range s {
		return callee
	}
	return nil
}

// HotMethods returns all methods whose invocation count is at least
// threshold, in program order.
func (p *Profile) HotMethods(prog *bc.Program, threshold int64) []*bc.Method {
	var hot []*bc.Method
	for _, m := range prog.Methods {
		if p.Invocations(m) >= threshold {
			hot = append(hot, m)
		}
	}
	return hot
}

// BranchCounts returns the raw (notTaken, taken) execution counts of the
// branch at (m, pc).
func (p *Profile) BranchCounts(m *bc.Method, pc int) (notTaken, taken int64) {
	c := p.mp(m).branches[pc]
	if c == nil {
		return 0, 0
	}
	return c[0], c[1]
}
