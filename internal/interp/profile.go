package interp

import (
	"sort"
	"sync"

	"pea/internal/bc"
)

// Profile accumulates execution profiles while interpreting: invocation
// counts per method, taken/not-taken counts per branch site, and receiver
// methods observed per virtual call site. The JIT policy uses invocation
// counts to pick compilation candidates; the compiler uses branch
// probabilities for block frequencies and call-site receiver profiles for
// devirtualization and inlining.
//
// A Profile is safe for concurrent use: the interpreter mutates it on the
// execution thread while compile-broker workers read it concurrently
// (inlining devirtualization, branch pruning, cache-key fingerprints).
type Profile struct {
	mu      sync.Mutex
	methods []methodProfile
}

type methodProfile struct {
	invocations int64
	// branches maps branch pc -> [notTaken, taken] counts.
	branches map[int]*[2]int64
	// callSites maps invoke pc -> callee method -> count.
	callSites map[int]map[*bc.Method]int64
	// backEdges maps loop-header pc -> number of backward control
	// transfers observed into it. This is the OSR trigger: a single
	// long-running invocation accumulates back-edge counts even though
	// its invocation count never moves.
	backEdges map[int]*int64
}

// NewProfile creates an empty profile sized for the program.
func NewProfile(p *bc.Program) *Profile {
	return &Profile{methods: make([]methodProfile, len(p.Methods))}
}

// mp returns the method's profile slot; the caller must hold p.mu.
func (p *Profile) mp(m *bc.Method) *methodProfile { return &p.methods[m.ID] }

// CountInvocation records one invocation of m.
func (p *Profile) CountInvocation(m *bc.Method) {
	p.mu.Lock()
	p.mp(m).invocations++
	p.mu.Unlock()
}

// Invocations returns the recorded invocation count of m.
func (p *Profile) Invocations(m *bc.Method) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mp(m).invocations
}

// CountBranch records one execution of the branch at (m, pc).
func (p *Profile) CountBranch(m *bc.Method, pc int, taken bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	mp := p.mp(m)
	if mp.branches == nil {
		mp.branches = make(map[int]*[2]int64)
	}
	c := mp.branches[pc]
	if c == nil {
		c = new([2]int64)
		mp.branches[pc] = c
	}
	if taken {
		c[1]++
	} else {
		c[0]++
	}
}

// BranchProbability returns the observed probability that the branch at
// (m, pc) is taken, and whether any executions were observed. Unobserved
// branches report 0.5.
func (p *Profile) BranchProbability(m *bc.Method, pc int) (prob float64, observed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	mp := p.mp(m)
	c := mp.branches[pc]
	if c == nil || c[0]+c[1] == 0 {
		return 0.5, false
	}
	return float64(c[1]) / float64(c[0]+c[1]), true
}

// CountBackEdge records one backward control transfer to the loop header
// at (m, pc) and returns the new count, so the interpreter can compare it
// against the OSR threshold without a second lock acquisition.
func (p *Profile) CountBackEdge(m *bc.Method, pc int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	mp := p.mp(m)
	if mp.backEdges == nil {
		mp.backEdges = make(map[int]*int64)
	}
	c := mp.backEdges[pc]
	if c == nil {
		c = new(int64)
		mp.backEdges[pc] = c
	}
	*c++
	return *c
}

// BackEdges returns the recorded back-edge count of the loop header at
// (m, pc).
func (p *Profile) BackEdges(m *bc.Method, pc int) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.mp(m).backEdges[pc]
	if c == nil {
		return 0
	}
	return *c
}

// CountCallSite records that the call at (m, pc) dispatched to callee.
func (p *Profile) CountCallSite(m *bc.Method, pc int, callee *bc.Method) {
	p.mu.Lock()
	defer p.mu.Unlock()
	mp := p.mp(m)
	if mp.callSites == nil {
		mp.callSites = make(map[int]map[*bc.Method]int64)
	}
	s := mp.callSites[pc]
	if s == nil {
		s = make(map[*bc.Method]int64)
		mp.callSites[pc] = s
	}
	s[callee]++
}

// MonomorphicTarget returns the single callee observed at (m, pc), or nil
// if the site is unobserved or polymorphic.
func (p *Profile) MonomorphicTarget(m *bc.Method, pc int) *bc.Method {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.mp(m).callSites[pc]
	if len(s) != 1 {
		return nil
	}
	for callee := range s {
		return callee
	}
	return nil
}

// HotMethods returns all methods whose invocation count is at least
// threshold, in program order.
func (p *Profile) HotMethods(prog *bc.Program, threshold int64) []*bc.Method {
	var hot []*bc.Method
	for _, m := range prog.Methods {
		if p.Invocations(m) >= threshold {
			hot = append(hot, m)
		}
	}
	return hot
}

// BranchCounts returns the raw (notTaken, taken) execution counts of the
// branch at (m, pc).
func (p *Profile) BranchCounts(m *bc.Method, pc int) (notTaken, taken int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c := p.mp(m).branches[pc]
	if c == nil {
		return 0, 0
	}
	return c[0], c[1]
}

// Fingerprint hashes exactly the profile facts that influence what the
// compiler emits: the monomorphic-target verdict of every observed call
// site (devirtualization and therefore inlining); when speculate is set,
// the pruning verdict of every branch site under the given MinTotal
// threshold (prunable-taken / prunable-not-taken / not prunable); and,
// when osrThreshold > 0, the set of loop headers whose back-edge counts
// have crossed the OSR threshold (the OSR-hotness verdict). Raw counts are
// deliberately excluded — two profiles that would drive the pipeline to
// identical decisions produce identical fingerprints, which is what makes
// the compiled-code cache hit across repeated runs, while any
// decision-relevant divergence changes the hash and forces a fresh
// compile.
func (p *Profile) Fingerprint(speculate bool, minTotal, osrThreshold int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	p.mu.Lock()
	defer p.mu.Unlock()
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	for i := range p.methods {
		mp := &p.methods[i]
		if len(mp.callSites) == 0 && (!speculate || len(mp.branches) == 0) &&
			(osrThreshold <= 0 || len(mp.backEdges) == 0) {
			continue
		}
		mix(uint64(i) + 0x9e3779b97f4a7c15)
		if len(mp.callSites) > 0 {
			pcs := make([]int, 0, len(mp.callSites))
			for pc := range mp.callSites {
				pcs = append(pcs, pc)
			}
			sort.Ints(pcs)
			for _, pc := range pcs {
				mix(uint64(pc)<<1 | 1)
				s := mp.callSites[pc]
				if len(s) == 1 {
					for callee := range s {
						mix(uint64(callee.ID) + 2)
					}
				} else {
					mix(1) // polymorphic (or empty): no devirtualization
				}
			}
		}
		if speculate && len(mp.branches) > 0 {
			pcs := make([]int, 0, len(mp.branches))
			for pc := range mp.branches {
				pcs = append(pcs, pc)
			}
			sort.Ints(pcs)
			for _, pc := range pcs {
				c := mp.branches[pc]
				verdict := uint64(0) // not prunable (mixed or cold)
				if total := c[0] + c[1]; total >= minTotal {
					switch {
					case c[1] == 0:
						verdict = 1 // taken side never executed
					case c[0] == 0:
						verdict = 2 // fall-through side never executed
					}
				}
				if verdict != 0 {
					mix(uint64(pc)<<2 + verdict)
				}
			}
		}
		if osrThreshold > 0 && len(mp.backEdges) > 0 {
			pcs := make([]int, 0, len(mp.backEdges))
			for pc, c := range mp.backEdges {
				if *c >= osrThreshold {
					pcs = append(pcs, pc)
				}
			}
			sort.Ints(pcs)
			for _, pc := range pcs {
				mix(uint64(pc)<<3 + 5)
			}
		}
	}
	return h
}
