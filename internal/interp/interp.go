// Package interp implements the bytecode interpreter. It plays the role of
// the HotSpot interpreter in the paper: it executes any code without
// assumptions, collects the profiles (invocation counts, branch
// frequencies) that drive the JIT policy, and is the target of
// deoptimization — compiled frames are translated into interpreter frames
// (materializing any virtual objects first) and execution resumes here.
package interp

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/cost"
	"pea/internal/rt"
)

// Frame is one interpreter activation.
type Frame struct {
	Method *bc.Method
	PC     int
	Locals []rt.Value
	Stack  []rt.Value // operand stack; top is the last element
}

// NewFrame creates a frame for invoking m with the given arguments
// (receiver first for instance methods).
func NewFrame(m *bc.Method, args []rt.Value) *Frame {
	f := &Frame{Method: m, Locals: make([]rt.Value, m.NumLocals())}
	copy(f.Locals, args)
	for i := len(args); i < len(f.Locals); i++ {
		if m.LocalKinds[i] == bc.KindRef {
			f.Locals[i] = rt.Null
		}
	}
	f.Stack = make([]rt.Value, 0, m.MaxStack)
	return f
}

func (f *Frame) push(v rt.Value) { f.Stack = append(f.Stack, v) }

func (f *Frame) pop() rt.Value {
	v := f.Stack[len(f.Stack)-1]
	f.Stack = f.Stack[:len(f.Stack)-1]
	return v
}

// Interp executes bytecode against an rt.Env.
type Interp struct {
	Env     *rt.Env
	Profile *Profile

	// CallHook, when non-nil, is consulted before each interpreted call;
	// if it returns true the call was executed by other means (e.g. by
	// jumping to compiled code) and the interpreter uses the returned
	// value. This is how the VM mixes interpreted and compiled frames.
	CallHook func(m *bc.Method, args []rt.Value) (rt.Value, bool, error)

	// OSRHook, when non-nil, is consulted after each taken back edge with
	// the frame (whose PC is the loop-header bci just jumped to) and the
	// header's accumulated back-edge count. If it returns entered=true,
	// the rest of the frame was executed by other means (on-stack
	// replacement into compiled code) and ret is the frame's result.
	OSRHook func(f *Frame, count int64) (ret rt.Value, entered bool, err error)

	// MaxSteps bounds the number of executed instructions (0 = no bound);
	// exceeding it returns an error. Guards tests against runaway loops.
	MaxSteps int64

	steps int64
}

// New creates an interpreter over env with a fresh profile.
func New(env *rt.Env) *Interp {
	return &Interp{Env: env, Profile: NewProfile(env.Program)}
}

// Run executes the program's entry point with no arguments.
func (it *Interp) Run() (rt.Value, error) {
	if it.Env.Program.Main == nil {
		return rt.Value{}, fmt.Errorf("interp: program has no entry point")
	}
	return it.Call(it.Env.Program.Main, nil)
}

// Call invokes m with args and runs it to completion in the interpreter
// (nested calls may still be diverted by CallHook).
func (it *Interp) Call(m *bc.Method, args []rt.Value) (rt.Value, error) {
	if len(args) != m.NumArgs() {
		return rt.Value{}, fmt.Errorf("interp: %s called with %d args, want %d",
			m.QualifiedName(), len(args), m.NumArgs())
	}
	if it.Profile != nil {
		it.Profile.CountInvocation(m)
	}
	return it.Resume(NewFrame(m, args))
}

// Resume runs the given frame to completion. It is the entry point used by
// deoptimization: the frame may start at any pc with any consistent
// locals/stack contents.
func (it *Interp) Resume(f *Frame) (rt.Value, error) {
	for {
		done, ret, err := it.step(f)
		if err != nil {
			return rt.Value{}, err
		}
		if done {
			return ret, nil
		}
	}
}

// step executes one instruction of f. It returns done=true with the return
// value when the frame completes.
func (it *Interp) step(f *Frame) (done bool, ret rt.Value, err error) {
	if it.MaxSteps > 0 {
		it.steps++
		if it.steps > it.MaxSteps {
			return false, rt.Value{}, fmt.Errorf("interp: step budget of %d exhausted in %s",
				it.MaxSteps, f.Method.QualifiedName())
		}
	}
	m := f.Method
	pc := f.PC
	in := &m.Code[pc]
	it.Env.Cycles += cost.OfOp(in.Op) * cost.InterpFactor

	// trap raises an intrinsic trap at the current pc: the nearest
	// matching exception-table entry of this frame receives control, or
	// the trap propagates to the caller as an error.
	trap := func(reason string) (bool, rt.Value, error) {
		return it.raise(f, rt.NewTrap(reason, m, pc))
	}

	switch in.Op {
	case bc.OpNop:
	case bc.OpConst:
		f.push(rt.IntValue(in.A))
	case bc.OpConstNull:
		f.push(rt.Null)
	case bc.OpLoad:
		f.push(f.Locals[in.A])
	case bc.OpStore:
		f.Locals[in.A] = f.pop()
	case bc.OpPop:
		f.pop()
	case bc.OpDup:
		f.push(f.Stack[len(f.Stack)-1])
	case bc.OpSwap:
		n := len(f.Stack)
		f.Stack[n-1], f.Stack[n-2] = f.Stack[n-2], f.Stack[n-1]
	case bc.OpAdd, bc.OpSub, bc.OpMul, bc.OpDiv, bc.OpRem,
		bc.OpAnd, bc.OpOr, bc.OpXor, bc.OpShl, bc.OpShr, bc.OpUShr:
		b, a := f.pop().I, f.pop().I
		var r int64
		r, err = EvalArith(in.Op, a, b)
		if err != nil {
			return trap(err.Error())
		}
		f.push(rt.IntValue(r))
	case bc.OpNeg:
		f.push(rt.IntValue(-f.pop().I))
	case bc.OpCmp:
		b, a := f.pop().I, f.pop().I
		f.push(rt.BoolValue(in.Cond.EvalInt(a, b)))
	case bc.OpGoto:
		f.PC = in.Target()
		if f.PC <= pc {
			return it.backEdge(f)
		}
		return false, rt.Value{}, nil
	case bc.OpIfCmp:
		b, a := f.pop().I, f.pop().I
		return it.branch(f, in, in.Cond.EvalInt(a, b))
	case bc.OpIf:
		a := f.pop().I
		return it.branch(f, in, in.Cond.EvalInt(a, 0))
	case bc.OpIfRef:
		b, a := f.pop(), f.pop()
		taken := a.Ref == b.Ref
		if in.Cond == bc.CondNE {
			taken = !taken
		}
		return it.branch(f, in, taken)
	case bc.OpIfNull:
		a := f.pop()
		taken := a.Ref == nil
		if in.Cond == bc.CondNE {
			taken = !taken
		}
		return it.branch(f, in, taken)
	case bc.OpNew:
		it.Env.Cycles += cost.AllocPerField * int64(in.Class.NumFields()) * cost.InterpFactor
		f.push(rt.RefValue(it.Env.AllocObject(in.Class)))
	case bc.OpNewArray:
		n := f.pop().I
		if n < 0 {
			return trap(fmt.Sprintf("negative array size %d", n))
		}
		it.Env.Cycles += cost.AllocPerField * n * cost.InterpFactor
		f.push(rt.RefValue(it.Env.AllocArray(in.Kind, n)))
	case bc.OpGetField:
		obj := f.pop()
		if obj.Ref == nil {
			return trap("null dereference in getfield " + in.Field.QualifiedName())
		}
		it.Env.Stats.FieldLoads++
		f.push(obj.Ref.Fields[in.Field.Offset])
	case bc.OpPutField:
		v := f.pop()
		obj := f.pop()
		if obj.Ref == nil {
			return trap("null dereference in putfield " + in.Field.QualifiedName())
		}
		it.Env.Stats.FieldStores++
		obj.Ref.Fields[in.Field.Offset] = v
	case bc.OpGetStatic:
		f.push(it.Env.GetStatic(in.Field))
	case bc.OpPutStatic:
		it.Env.SetStatic(in.Field, f.pop())
	case bc.OpArrayLoad:
		idx := f.pop().I
		arr := f.pop()
		if arr.Ref == nil {
			return trap("null dereference in arrayload")
		}
		if idx < 0 || idx >= int64(arr.Ref.Len()) {
			return trap(fmt.Sprintf("array index %d out of range [0,%d)", idx, arr.Ref.Len()))
		}
		f.push(arr.Ref.Fields[idx])
	case bc.OpArrayStore:
		v := f.pop()
		idx := f.pop().I
		arr := f.pop()
		if arr.Ref == nil {
			return trap("null dereference in arraystore")
		}
		if idx < 0 || idx >= int64(arr.Ref.Len()) {
			return trap(fmt.Sprintf("array index %d out of range [0,%d)", idx, arr.Ref.Len()))
		}
		arr.Ref.Fields[idx] = v
	case bc.OpArrayLen:
		arr := f.pop()
		if arr.Ref == nil {
			return trap("null dereference in arraylen")
		}
		f.push(rt.IntValue(int64(arr.Ref.Len())))
	case bc.OpInstanceOf:
		obj := f.pop()
		ok := obj.Ref != nil && !obj.Ref.IsArray() && obj.Ref.Class.IsSubclassOf(in.Class)
		f.push(rt.BoolValue(ok))
	case bc.OpInvokeStatic, bc.OpInvokeDirect, bc.OpInvokeVirtual:
		if err := it.invoke(f, in); err != nil {
			// A trap unwinding out of the callee (or the null-receiver
			// trap raised here) can be caught by a handler covering the
			// call site; other errors (step budget, internal faults) are
			// not exceptions and keep propagating.
			if t, ok := err.(*rt.Trap); ok {
				return it.raise(f, t)
			}
			return false, rt.Value{}, err
		}
		return false, rt.Value{}, nil
	case bc.OpMonitorEnter:
		obj := f.pop()
		if obj.Ref == nil {
			return trap("null dereference in monitorenter")
		}
		it.Env.MonitorEnter(obj.Ref)
	case bc.OpMonitorExit:
		obj := f.pop()
		if obj.Ref == nil {
			return trap("null dereference in monitorexit")
		}
		if err := it.Env.MonitorExit(obj.Ref); err != nil {
			return trap(err.Error())
		}
	case bc.OpReturn:
		return true, rt.Value{}, nil
	case bc.OpReturnValue:
		return true, f.pop(), nil
	case bc.OpThrow:
		obj := f.pop()
		if obj.Ref == nil {
			return trap("null throw")
		}
		return it.raise(f, rt.NewThrow(obj.Ref, m, pc))
	case bc.OpPrint:
		it.Env.Print(f.pop().I)
	case bc.OpRand:
		f.push(rt.IntValue(it.Env.Rand(in.A)))
	default:
		return trap(fmt.Sprintf("unknown opcode %d", in.Op))
	}
	f.PC = pc + 1
	return false, rt.Value{}, nil
}

// raise dispatches a trap raised while f.PC addresses the faulting
// instruction: the first matching exception-table entry covering f.PC
// receives control with the operand stack replaced by the exception value
// (the thrown object, or null for intrinsic traps under a catch-all
// entry); without a match the trap propagates to the caller as an error,
// preserving its origin identity.
func (it *Interp) raise(f *Frame, t *rt.Trap) (done bool, ret rt.Value, err error) {
	if h := rt.MatchHandler(f.Method, f.PC, t); h != nil {
		f.Stack = f.Stack[:0]
		f.push(rt.HandlerValue(t))
		f.PC = h.Handler
		return false, rt.Value{}, nil
	}
	return false, rt.Value{}, t
}

func (it *Interp) branch(f *Frame, in *bc.Instr, taken bool) (done bool, ret rt.Value, err error) {
	if it.Profile != nil {
		it.Profile.CountBranch(f.Method, f.PC, taken)
	}
	pc := f.PC
	if taken {
		f.PC = in.Target()
		if f.PC <= pc {
			return it.backEdge(f)
		}
	} else {
		f.PC++
	}
	return false, rt.Value{}, nil
}

// backEdge records a backward control transfer to the loop header at f.PC
// and offers the frame to the OSR hook. entered=true means the whole frame
// completed in compiled code and ret is its result.
func (it *Interp) backEdge(f *Frame) (done bool, ret rt.Value, err error) {
	if it.Profile == nil {
		return false, rt.Value{}, nil
	}
	count := it.Profile.CountBackEdge(f.Method, f.PC)
	if it.OSRHook == nil {
		return false, rt.Value{}, nil
	}
	ret, entered, err := it.OSRHook(f, count)
	if err != nil {
		return false, rt.Value{}, err
	}
	return entered, ret, nil
}

func (it *Interp) invoke(f *Frame, in *bc.Instr) error {
	callee := in.Method
	nargs := callee.NumArgs()
	args := make([]rt.Value, nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = f.pop()
	}
	if in.Op != bc.OpInvokeStatic {
		recv := args[0]
		if recv.Ref == nil {
			return rt.NewTrap("null receiver calling "+callee.QualifiedName(), f.Method, f.PC)
		}
		if in.Op == bc.OpInvokeVirtual {
			callee = recv.Ref.Class.VTable[callee.VSlot]
		}
	}
	if it.Profile != nil {
		it.Profile.CountCallSite(f.Method, f.PC, callee)
	}
	var ret rt.Value
	var err error
	handled := false
	if it.CallHook != nil {
		ret, handled, err = it.CallHook(callee, args)
		if err != nil {
			return err
		}
	}
	if !handled {
		ret, err = it.Call(callee, args)
		if err != nil {
			return err
		}
	}
	if callee.Ret != bc.KindVoid {
		f.push(ret)
	}
	f.PC++
	return nil
}

// EvalArith computes a binary integer arithmetic op, returning an error for
// division by zero. Shared with the compiled-code executor and the
// compiler's constant folder so all three agree exactly.
func EvalArith(op bc.Op, a, b int64) (int64, error) {
	// oplint:ignore — defined only for the binary arithmetic subset;
	// anything else is rejected by the default below.
	switch op {
	case bc.OpAdd:
		return a + b, nil
	case bc.OpSub:
		return a - b, nil
	case bc.OpMul:
		return a * b, nil
	case bc.OpDiv:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a / b, nil
	case bc.OpRem:
		if b == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return a % b, nil
	case bc.OpAnd:
		return a & b, nil
	case bc.OpOr:
		return a | b, nil
	case bc.OpXor:
		return a ^ b, nil
	case bc.OpShl:
		return a << uint64(b&63), nil
	case bc.OpShr:
		return a >> uint64(b&63), nil
	case bc.OpUShr:
		return int64(uint64(a) >> uint64(b&63)), nil
	default:
		return 0, fmt.Errorf("not an arithmetic op: %s", op)
	}
}
