package interp

import (
	"math"
	"testing"

	"pea/internal/bc"
)

// TestEvalArithJVMEdgeCases pins the JVM's integer arithmetic corner cases
// (JLS §15.17): MinInt64/-1 overflows back to MinInt64 without trapping,
// MinInt64%-1 is 0, the remainder takes the dividend's sign, and shift
// distances are masked to their low six bits. Go's evaluation rules
// guarantee each of these, and the compiled executor and the
// canonicalizer's constant folder both funnel through this function — the
// differential test below asserts that explicitly.
func TestEvalArithJVMEdgeCases(t *testing.T) {
	min, max := int64(math.MinInt64), int64(math.MaxInt64)
	cases := []struct {
		name string
		op   bc.Op
		a, b int64
		want int64
	}{
		{"min-div-minus1-overflow", bc.OpDiv, min, -1, min},
		{"min-rem-minus1-zero", bc.OpRem, min, -1, 0},
		{"rem-sign-follows-dividend-neg", bc.OpRem, -7, 3, -1},
		{"rem-sign-follows-dividend-pos", bc.OpRem, 7, -3, 1},
		{"div-trunc-toward-zero-neg", bc.OpDiv, -7, 2, -3},
		{"div-trunc-toward-zero-pos", bc.OpDiv, 7, -2, -3},
		{"shl-masked-64", bc.OpShl, 1, 64, 1},
		{"shl-masked-65", bc.OpShl, 1, 65, 2},
		{"shl-masked-negative-distance", bc.OpShl, 1, -1, min}, // -1&63 = 63
		{"shr-masked-64", bc.OpShr, max, 64, max},
		{"shr-arithmetic-sign-extend", bc.OpShr, -8, 1, -4},
		{"ushr-zero-extend", bc.OpUShr, -1, 1, max},
		{"ushr-masked-64", bc.OpUShr, -1, 64, -1},
		{"add-overflow-wraps", bc.OpAdd, max, 1, min},
		{"sub-overflow-wraps", bc.OpSub, min, 1, max},
		{"mul-overflow-wraps", bc.OpMul, max, 2, -2},
	}
	for _, c := range cases {
		got, err := EvalArith(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: EvalArith(%v, %d, %d) = %d, want %d",
				c.name, c.op, c.a, c.b, got, c.want)
		}
	}
	for _, op := range []bc.Op{bc.OpDiv, bc.OpRem} {
		if _, err := EvalArith(op, 1, 0); err == nil {
			t.Errorf("%v by zero did not error", op)
		}
	}
}
