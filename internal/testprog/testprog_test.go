package testprog_test

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/check"
	"pea/internal/exec"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/opt"
	"pea/internal/pea"
	"pea/internal/rt"
	"pea/internal/testprog"
)

// TestCorpusShape pins the structural contract of the corpus: unique
// names, a static entry with int-only parameters, at least one argument
// vector per program, and every argument vector matching the entry arity.
func TestCorpusShape(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range testprog.Corpus() {
		if seen[p.Name] {
			t.Errorf("duplicate corpus name %q", p.Name)
		}
		seen[p.Name] = true
		if p.Entry == nil || !p.Entry.Static {
			t.Errorf("%s: entry must be a static method", p.Name)
			continue
		}
		for _, k := range p.Entry.Params {
			if k != bc.KindInt {
				t.Errorf("%s: entry parameter of kind %v, want int", p.Name, k)
			}
		}
		if len(p.ArgSets) == 0 {
			t.Errorf("%s: no argument vectors", p.Name)
		}
		for _, args := range p.ArgSets {
			if len(args) < len(p.Entry.Params) {
				t.Errorf("%s: arg vector %v shorter than %d params",
					p.Name, args, len(p.Entry.Params))
			}
		}
	}
}

// TestCorpusVerifies: every method of every corpus program passes the
// bytecode verifier.
func TestCorpusVerifies(t *testing.T) {
	for _, p := range testprog.Corpus() {
		for _, m := range p.Prog.Methods {
			if err := bc.Verify(m); err != nil {
				t.Errorf("%s %s: %v", p.Name, m.QualifiedName(), err)
			}
		}
	}
}

// compileStrict runs the full front end over one method with the strict
// sanitizer at every phase boundary and returns the final graph.
func compileStrict(t *testing.T, prog *bc.Program, m *bc.Method) *ir.Graph {
	t.Helper()
	g, err := build.Build(m)
	if err != nil {
		t.Fatalf("%s: build: %v", m.QualifiedName(), err)
	}
	pipe := &opt.Pipeline{Phases: []opt.Phase{
		&opt.Inliner{BuildGraph: build.Build, Program: prog},
		opt.Canonicalize{}, opt.SimplifyCFG{}, opt.GVN{}, opt.DCE{},
	}, Check: check.Strict}
	if err := pipe.Run(g); err != nil {
		t.Fatalf("%s: opt: %v", m.QualifiedName(), err)
	}
	if _, err := pea.Run(g, pea.Config{Check: check.Strict}); err != nil {
		t.Fatalf("%s: pea: %v", m.QualifiedName(), err)
	}
	if err := check.Graph(g, check.Strict); err != nil {
		t.Fatalf("%s: strict check after pea: %v\n%s", m.QualifiedName(), err, ir.Dump(g))
	}
	return g
}

// TestCorpusCompilesStrict: the whole corpus flows through
// build→inline→canon→GVN→DCE→PEA with zero strict-checker violations, and
// the compiled entry agrees with the interpreter on every argument vector.
func TestCorpusCompilesStrict(t *testing.T) {
	for _, p := range testprog.Corpus() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			graphs := make(map[*bc.Method]*ir.Graph)
			for _, m := range p.Prog.Methods {
				graphs[m] = compileStrict(t, p.Prog, m)
			}
			for _, args := range p.ArgSets {
				vals := make([]rt.Value, len(p.Entry.Params))
				for i := range vals {
					vals[i] = rt.IntValue(args[i])
				}

				envI := rt.NewEnv(p.Prog, 7)
				it := interp.New(envI)
				it.MaxSteps = 2_000_000
				vi, errI := it.Call(p.Entry, vals)

				envE := rt.NewEnv(p.Prog, 7)
				eng := &exec.Engine{Env: envE, MaxSteps: 2_000_000}
				eng.Invoke = func(callee *bc.Method, as []rt.Value) (rt.Value, error) {
					return eng.Run(graphs[callee], as)
				}
				ve, errE := eng.Run(graphs[p.Entry], vals)

				if (errI == nil) != (errE == nil) {
					t.Fatalf("args %v: trap divergence: interp %v, compiled %v", args, errI, errE)
				}
				if errI == nil && !vi.Equal(ve) {
					t.Fatalf("args %v: interp %v, compiled %v", args, vi, ve)
				}
			}
		})
	}
}

// TestGeneratedProgramsStrict sweeps the program generator: every method
// of every generated program verifies and compiles under the strict
// sanitizer.
func TestGeneratedProgramsStrict(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		p := testprog.Generate(seed + 700_000) // distinct from other suites' seed ranges
		for _, m := range p.Prog.Methods {
			if err := bc.Verify(m); err != nil {
				t.Fatalf("seed %d %s: verify: %v", seed, m.QualifiedName(), err)
			}
			compileStrict(t, p.Prog, m)
		}
	}
}
