package testprog

import (
	"fmt"
	"math/rand"

	"pea/internal/bc"
)

// Generate builds a pseudo-random but well-formed bytecode program from a
// seed, for differential fuzzing: every compiler configuration must behave
// exactly like the interpreter on it. The generator covers the operations
// Partial Escape Analysis cares about — allocations whose references flow
// through locals, fields, branches and loops; partial and full escapes
// through statics; balanced synchronized regions; helper calls (inlining
// fodder) — while keeping programs terminating (bounded loops) and
// deterministic (the VM PRNG is seeded by the harness).
func Generate(seed int64) Program {
	r := rand.New(rand.NewSource(seed))
	g := &generator{r: r, asm: bc.NewAssembler()}
	g.build()
	prog, err := g.asm.Finish("")
	if err != nil {
		// Generator bugs surface immediately in the fuzz tests.
		panic(fmt.Sprintf("testprog: generated invalid program (seed %d): %v", seed, err))
	}
	name := fmt.Sprintf("fuzz-%d", seed)
	return Program{
		Name:    name,
		Prog:    prog,
		Entry:   prog.ClassByName("F").MethodByName("entry"),
		ArgSets: [][]int64{{0, 0}, {1, 7}, {13, -5}, {100, 3}},
	}
}

type generator struct {
	r   *rand.Rand
	asm *bc.Assembler

	box  *bc.ClassAsm
	v    *bc.Field // Box.v int
	next *bc.Field // Box.next ref
	sink *bc.Field // static Box sink
	gint *bc.Field // static int acc

	m      *bc.MethodAsm
	helper *bc.MethodAsm // int helper(int)
	take   *bc.MethodAsm // int take(ref, int): escapes its argument
	bulk   *bc.MethodAsm // int bulk(ref, int): too big to inline, never touches ref
	fwd    *bc.MethodAsm // int fwd(ref, int): forwards its ref into bulk

	intLocals []int
	refLocals []int

	labelSeq int
	budget   int
}

func (g *generator) label() string {
	g.labelSeq++
	return fmt.Sprintf("G%d", g.labelSeq)
}

func (g *generator) build() {
	g.box = g.asm.Class("Box", "")
	g.v = g.box.Field("v", bc.KindInt)
	g.next = g.box.Field("next", bc.KindRef)
	g.sink = g.box.Static("sink", bc.KindRef)
	g.gint = g.box.Static("acc", bc.KindInt)

	f := g.asm.Class("F", "")

	// helper(x) = x*3 + 1  — a small leaf the inliner will absorb.
	g.helper = f.Method("helper", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	g.helper.Load(0).Const(3).Mul().Const(1).Add().ReturnValue()

	// take(o, x): stores o into the sink when x is odd, returns o.v + x.
	// A callee that sometimes escapes its argument.
	g.take = f.Method("take", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
	g.take.Load(1).Const(1).Arith(bc.OpAnd).If(bc.CondEQ, "skip")
	g.take.Load(0).PutStatic(g.sink)
	g.take.Label("skip").Load(0).GetField(g.v).Load(1).Add().ReturnValue()

	// bulk(o, x): past the inliner's code bound and never observes o — the
	// allocation a caller passes in stays virtual only through summaries.
	g.bulk = padBulk(f, "bulk")

	// fwd(o, x) = bulk(o, x) + 3 — no-escape derivable only transitively.
	g.fwd = f.Method("fwd", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
	g.fwd.Load(0).Load(1).InvokeStatic(g.bulk.Ref()).Const(3).Add().ReturnValue()

	g.m = f.Method("entry", []bc.Kind{bc.KindInt, bc.KindInt}, bc.KindInt, true)
	g.intLocals = []int{0, 1}
	for i := 0; i < 2+g.r.Intn(3); i++ {
		s := g.m.NewLocal(bc.KindInt)
		g.m.Const(int64(g.r.Intn(20))).Store(s)
		g.intLocals = append(g.intLocals, s)
	}
	for i := 0; i < 2+g.r.Intn(2); i++ {
		s := g.m.NewLocal(bc.KindRef)
		g.newBox()
		g.m.Store(s)
		g.refLocals = append(g.refLocals, s)
	}

	g.budget = 20 + g.r.Intn(25)
	g.stmts(3)

	// Deterministic result: fold the locals, the static accumulator, and
	// every reachable object field into the return value.
	g.m.GetStatic(g.gint)
	for _, s := range g.intLocals {
		g.m.Load(s).Add()
	}
	for _, s := range g.refLocals {
		g.m.Load(s).GetField(g.v).Add()
	}
	g.m.GetStatic(g.sink).IfNull(bc.CondEQ, "nosink")
	g.m.GetStatic(g.sink).GetField(g.v).Add()
	g.m.Label("nosink").ReturnValue()
}

// newBox pushes a fresh Box with a small deterministic field value.
func (g *generator) newBox() {
	g.m.New(g.box.Ref())
	g.m.Dup().Const(int64(g.r.Intn(50))).PutField(g.v)
}

func (g *generator) intLocal() int { return g.intLocals[g.r.Intn(len(g.intLocals))] }
func (g *generator) refLocal() int { return g.refLocals[g.r.Intn(len(g.refLocals))] }

// intExpr pushes an int expression of the given depth.
func (g *generator) intExpr(depth int) {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(4) {
		case 0:
			g.m.Const(int64(g.r.Intn(100) - 20))
		case 1, 2:
			g.m.Load(g.intLocal())
		default:
			g.m.Load(g.refLocal()).GetField(g.v)
		}
		return
	}
	switch g.r.Intn(6) {
	case 0:
		g.intExpr(depth - 1)
		g.intExpr(depth - 1)
		ops := []bc.Op{bc.OpAdd, bc.OpSub, bc.OpMul, bc.OpAnd, bc.OpOr, bc.OpXor}
		g.m.Arith(ops[g.r.Intn(len(ops))])
	case 1:
		// Guarded division: |rhs|+1 is never zero.
		g.intExpr(depth - 1)
		g.intExpr(depth - 1)
		g.m.Const(63).Arith(bc.OpAnd).Const(1).Add()
		if g.r.Intn(2) == 0 {
			g.m.Div()
		} else {
			g.m.Rem()
		}
	case 2:
		g.intExpr(depth - 1)
		g.m.Neg()
	case 3:
		g.intExpr(depth - 1)
		g.m.InvokeStatic(g.helper.Ref())
	case 4:
		g.intExpr(depth - 1)
		g.intExpr(depth - 1)
		conds := []bc.Cond{bc.CondEQ, bc.CondNE, bc.CondLT, bc.CondLE, bc.CondGT, bc.CondGE}
		g.m.Cmp(conds[g.r.Intn(len(conds))])
	default:
		g.m.Rand(int64(g.r.Intn(40) + 2))
	}
}

// stmts emits a random statement sequence within the budget.
func (g *generator) stmts(depth int) {
	n := 1 + g.r.Intn(4)
	for i := 0; i < n && g.budget > 0; i++ {
		g.budget--
		g.stmt(depth)
	}
}

func (g *generator) stmt(depth int) {
	choice := g.r.Intn(16)
	if depth <= 0 && choice >= 9 && choice <= 13 {
		choice = g.r.Intn(9)
	}
	switch choice {
	case 0, 1: // int assignment
		g.intExpr(2)
		g.m.Store(g.intLocal())
	case 2: // fresh object into a ref local
		g.newBox()
		g.m.Store(g.refLocal())
	case 3: // field store through a ref local
		g.m.Load(g.refLocal())
		g.intExpr(1)
		g.m.PutField(g.v)
	case 4: // object-graph edge: a.next = b (possibly a == b -> cycle probe)
		g.m.Load(g.refLocal()).Load(g.refLocal()).PutField(g.next)
	case 5: // copy a ref local (aliasing)
		g.m.Load(g.refLocal()).Store(g.refLocal())
	case 6: // accumulate into the static int
		g.m.GetStatic(g.gint)
		g.intExpr(1)
		g.m.Add().PutStatic(g.gint)
	case 7: // full escape
		g.m.Load(g.refLocal()).PutStatic(g.sink)
	case 8: // call the escaping callee
		g.m.Load(g.refLocal())
		g.intExpr(1)
		g.m.InvokeStatic(g.take.Ref())
		g.m.Store(g.intLocal())
	case 9: // if/else
		elseL, endL := g.label(), g.label()
		g.intExpr(1)
		g.intExpr(1)
		conds := []bc.Cond{bc.CondEQ, bc.CondNE, bc.CondLT, bc.CondGE}
		g.m.IfCmp(conds[g.r.Intn(len(conds))], elseL)
		g.stmts(depth - 1)
		g.m.Goto(endL)
		g.m.Label(elseL)
		if g.r.Intn(2) == 0 {
			g.stmts(depth - 1)
		}
		g.m.Label(endL)
	case 10: // bounded loop (the counter stays private so no nested
		// statement can reset it and break termination)
		i := g.m.NewLocal(bc.KindInt)
		head, done := g.label(), g.label()
		bound := int64(2 + g.r.Intn(6))
		g.m.Const(0).Store(i)
		g.m.Label(head).Load(i).Const(bound).IfCmp(bc.CondGE, done)
		g.stmts(depth - 1)
		g.m.Load(i).Const(1).Add().Store(i)
		g.m.Goto(head)
		g.m.Label(done)
	case 11: // synchronized region on a ref local
		lock := g.m.NewLocal(bc.KindRef)
		g.m.Load(g.refLocal()).Store(lock)
		g.m.Load(lock).MonitorEnter()
		g.stmts(depth - 1)
		g.m.Load(lock).MonitorExit()
	case 12: // partial escape: escape only on a data-dependent branch
		skip := g.label()
		obj := g.m.NewLocal(bc.KindRef)
		g.refLocals = append(g.refLocals, obj)
		g.newBox()
		g.m.Store(obj)
		g.intExpr(1)
		g.m.Const(3).Arith(bc.OpAnd).If(bc.CondNE, skip)
		g.m.Load(obj).PutStatic(g.sink)
		g.m.Label(skip)
	case 13: // try/catch: a data-dependent throw caught in-method. The
		// handler folds the caught object's field into the static
		// accumulator, so a dispatch bug changes the final result.
		ts, te, h, next, skip := g.label(), g.label(), g.label(), g.label(), g.label()
		g.m.Label(ts)
		g.stmts(depth - 1)
		g.intExpr(1)
		g.m.Const(7).Arith(bc.OpAnd).If(bc.CondNE, skip)
		g.newBox()
		g.m.Throw()
		g.m.Label(skip)
		g.m.Label(te)
		g.m.Goto(next)
		exc := g.m.NewLocal(bc.KindRef)
		g.m.Label(h).Store(exc)
		g.m.GetStatic(g.gint).Load(exc).GetField(g.v).Add().PutStatic(g.gint)
		g.m.Label(next)
		g.m.Exception(ts, te, h, g.box.Ref())
	case 14: // call the big non-observing callee (summary-shaped site)
		g.m.Load(g.refLocal())
		g.intExpr(1)
		g.m.InvokeStatic(g.bulk.Ref())
		g.m.Store(g.intLocal())
	case 15: // forward a ref through a small wrapper into the big callee
		g.m.Load(g.refLocal())
		g.intExpr(1)
		g.m.InvokeStatic(g.fwd.Ref())
		g.m.Store(g.intLocal())
	default: // ref-equality driven branch
		endL, eqL := g.label(), g.label()
		g.m.Load(g.refLocal()).Load(g.refLocal()).IfRef(bc.CondEQ, eqL)
		g.m.GetStatic(g.gint).Const(7).Add().PutStatic(g.gint)
		g.m.Goto(endL)
		g.m.Label(eqL)
		g.m.GetStatic(g.gint).Const(13).Arith(bc.OpXor).PutStatic(g.gint)
		g.m.Label(endL)
	}
}
