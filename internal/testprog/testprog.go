// Package testprog provides a corpus of bytecode programs used across the
// compiler's test suites for differential testing: every compiler
// configuration must produce bit-identical results, output and final
// statics to the pure interpreter on every corpus program. The corpus
// deliberately covers the paper's patterns: allocations that never escape,
// allocations that escape on one branch only (partial escape), allocations
// in loops, synchronized regions on non-escaping objects, and object
// graphs with inter-object references.
package testprog

import (
	"fmt"

	"pea/internal/bc"
)

// Program is one corpus entry.
type Program struct {
	Name string
	// Prog is the linked program. Entry is a static method that takes
	// int parameters only.
	Prog  *bc.Program
	Entry *bc.Method
	// ArgSets are interesting argument vectors for the entry method.
	ArgSets [][]int64
}

// mustFinish links the program or panics (corpus construction is static).
func mustFinish(a *bc.Assembler, name string) *bc.Program {
	p, err := a.Finish("")
	if err != nil {
		panic(fmt.Sprintf("testprog %s: %v", name, err))
	}
	return p
}

func entry(p *bc.Program, cls, meth string) *bc.Method {
	m := p.ClassByName(cls).MethodByName(meth)
	if m == nil {
		panic("testprog: missing " + cls + "." + meth)
	}
	return m
}

// Corpus returns the full test corpus. Each call builds fresh programs so
// tests may mutate them freely.
func Corpus() []Program {
	return []Program{
		straightLine(),
		diamond(),
		loopSum(),
		nestedLoops(),
		loopTwoBackEdges(),
		nonEscaping(),
		partialEscape(),
		escapeBothBranches(),
		allocInLoop(),
		escapeFromLoop(),
		syncNonEscaping(),
		syncPartialEscape(),
		cacheKey(),
		linkedList(),
		objectGraph(),
		virtualCalls(),
		recursion(),
		arrays(),
		arrayEscape(),
		refPhi(),
		randomBranches(),
		deepExpression(),
		instanceOfChain(),
		aliasedStores(),
		boxedCounter(),
		refArray(),
		nestedSync(),
		selfReference(),
		partialViaCallee(),
		callBulkNoEscape(),
		callChainForwarding(),
		callRecursiveRef(),
		callGuardedPred(),
		throwInLoop(),
		catchRethrow(),
		catchAllIntrinsic(),
		catchPartialEscape(),
		uncaughtTrap(),
	}
}

// padBulk emits a callee that is too big to inline (past the inliner's
// 80-instruction code bound) and never observes its ref parameter: >90
// instructions of pure arithmetic on the int parameter. The shape
// inter-procedural summaries exist for — without them every caller must
// materialize the argument; with them it stays virtual across the call.
func padBulk(c *bc.ClassAsm, name string) *bc.MethodAsm {
	bulk := c.Method(name, []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
	bulk.Load(1)
	for i := 0; i < 45; i++ {
		bulk.Const(int64(i%7) + 1).Add()
	}
	bulk.ReturnValue()
	return bulk
}

// callBulkNoEscape: the caller's Box flows into a non-inlinable callee that
// never touches it, then is read back. Scalar replacement across the call
// is only possible with callee escape summaries.
func callBulkNoEscape() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	bulk := padBulk(c, "bulk")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Load(0).PutField(v)
	m.Load(l).Load(0).InvokeStatic(bulk.Ref())
	m.Load(l).GetField(v).Add().ReturnValue()
	p := mustFinish(a, "callBulkNoEscape")
	return Program{"callBulkNoEscape", p, entry(p, "P", "run"),
		[][]int64{{0}, {7}, {-3}, {1000}}}
}

// callChainForwarding: the ref argument is forwarded through two small
// wrappers into the big callee; that it never escapes is only derivable
// transitively (the summary fixpoint runs bottom-up over the call graph).
func callChainForwarding() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	bulk := padBulk(c, "bulk")
	inner := c.Method("inner", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
	inner.Load(0).Load(1).InvokeStatic(bulk.Ref()).Const(1).Add().ReturnValue()
	outer := c.Method("outer", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
	outer.Load(0).Load(1).InvokeStatic(inner.Ref()).Const(2).Add().ReturnValue()
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Load(0).PutField(v)
	m.Load(l).Load(0).InvokeStatic(outer.Ref())
	m.Load(l).GetField(v).Add().ReturnValue()
	p := mustFinish(a, "callChainForwarding")
	return Program{"callChainForwarding", p, entry(p, "P", "run"),
		[][]int64{{0}, {5}, {-11}}}
}

// callRecursiveRef: a Box threaded through a recursive callee that reads
// its field. Recursion puts the callee in a call-graph cycle, which the
// summary analysis must treat conservatively; the differential harnesses
// check the conservatism never changes semantics.
func callRecursiveRef() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	rec := c.Method("rec", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
	rec.Load(1).Const(0).IfCmp(bc.CondGT, "more")
	rec.Load(0).GetField(v).ReturnValue()
	rec.Label("more").Load(0).Load(1).Const(1).Sub().InvokeStatic(rec.Ref())
	rec.Const(1).Add().ReturnValue()
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Const(40).PutField(v)
	m.Load(l).Load(0).InvokeStatic(rec.Ref()).ReturnValue()
	p := mustFinish(a, "callRecursiveRef")
	return Program{"callRecursiveRef", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {6}}}
}

// callGuardedPred: the callee escapes its ref argument only under an int
// flag, and is too big to inline; callers passing a constant 0 flag keep
// the argument virtual only through the summary's predicate refinement
// (the SkipFlow-style conditional-escape fact).
func callGuardedPred() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	g := c.Method("guarded", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
	g.Load(1).If(bc.CondEQ, "skip")
	g.Load(0).PutStatic(sink)
	g.Label("skip").Load(1)
	for i := 0; i < 42; i++ {
		g.Const(int64(i%5) + 1).Add()
	}
	g.ReturnValue()
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Load(0).PutField(v)
	m.Load(l).Const(0).InvokeStatic(g.Ref()) // dead guard: never escapes
	m.Load(l).GetField(v).Add().ReturnValue()
	p := mustFinish(a, "callGuardedPred")
	return Program{"callGuardedPred", p, entry(p, "P", "run"),
		[][]int64{{0}, {3}, {77}}}
}

// straightLine: pure arithmetic, no control flow.
func straightLine() Program {
	a := bc.NewAssembler()
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt, bc.KindInt}, bc.KindInt, true)
	m.Load(0).Load(1).Add().Load(0).Mul().Load(1).Sub().Const(7).Add().ReturnValue()
	p := mustFinish(a, "straightLine")
	return Program{"straightLine", p, entry(p, "P", "run"),
		[][]int64{{0, 0}, {3, 4}, {-5, 11}, {1 << 30, 77}}}
}

// diamond: one if/else merging with a phi.
func diamond() Program {
	a := bc.NewAssembler()
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	r := m.NewLocal(bc.KindInt)
	m.Load(0).Const(10).IfCmp(bc.CondLT, "small")
	m.Load(0).Const(2).Mul().Store(r).Goto("join")
	m.Label("small").Load(0).Const(100).Add().Store(r)
	m.Label("join").Load(r).Const(1).Add().ReturnValue()
	p := mustFinish(a, "diamond")
	return Program{"diamond", p, entry(p, "P", "run"),
		[][]int64{{0}, {9}, {10}, {11}, {-3}, {1000}}}
}

// loopSum: single loop accumulating a sum.
func loopSum() Program {
	a := bc.NewAssembler()
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	m.Const(0).Store(i).Const(0).Store(s)
	m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	m.Load(s).Load(i).Add().Store(s)
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("head")
	m.Label("done").Load(s).ReturnValue()
	p := mustFinish(a, "loopSum")
	return Program{"loopSum", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {10}, {100}}}
}

// nestedLoops: two nested loops (multiplication by repeated addition).
func nestedLoops() Program {
	a := bc.NewAssembler()
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt, bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	j := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	m.Const(0).Store(i).Const(0).Store(s)
	m.Label("outer").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	m.Const(0).Store(j)
	m.Label("inner").Load(j).Load(1).IfCmp(bc.CondGE, "iend")
	m.Load(s).Const(1).Add().Store(s)
	m.Load(j).Const(1).Add().Store(j)
	m.Goto("inner")
	m.Label("iend").Load(i).Const(1).Add().Store(i)
	m.Goto("outer")
	m.Label("done").Load(s).ReturnValue()
	p := mustFinish(a, "nestedLoops")
	return Program{"nestedLoops", p, entry(p, "P", "run"),
		[][]int64{{0, 5}, {5, 0}, {3, 4}, {7, 7}}}
}

// loopTwoBackEdges reproduces the paper's Figure 7 shape: a loop with one
// exit and two back edges (a continue-like branch inside the body).
func loopTwoBackEdges() Program {
	a := bc.NewAssembler()
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	m.Const(0).Store(i).Const(0).Store(s)
	m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	m.Load(i).Const(1).Add().Store(i)
	// if (i % 3 == 0) continue;  (first back edge)
	m.Load(i).Const(3).Rem().If(bc.CondEQ, "head")
	m.Load(s).Load(i).Add().Store(s)
	// second back edge
	m.Goto("head")
	m.Label("done").Load(s).ReturnValue()
	p := mustFinish(a, "loopTwoBackEdges")
	return Program{"loopTwoBackEdges", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {2}, {3}, {10}, {31}}}
}

// boxClass declares `class Box { int v; Box next; }` plus a static sink.
func boxClass(a *bc.Assembler) (*bc.ClassAsm, *bc.Field, *bc.Field, *bc.Field) {
	box := a.Class("Box", "")
	v := box.Field("v", bc.KindInt)
	next := box.Field("next", bc.KindRef)
	sink := box.Static("sink", bc.KindRef)
	return box, v, next, sink
}

// nonEscaping: classic full scalar replacement candidate — allocate, write,
// read, discard.
func nonEscaping() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Load(0).PutField(v)
	m.Load(l).GetField(v).Const(3).Mul().ReturnValue()
	p := mustFinish(a, "nonEscaping")
	return Program{"nonEscaping", p, entry(p, "P", "run"),
		[][]int64{{0}, {14}, {-9}}}
}

// partialEscape: the paper's core pattern (Listing 4) — the object escapes
// into a static field on one branch only.
func partialEscape() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Load(0).PutField(v)
	m.Load(0).Const(100).IfCmp(bc.CondLT, "noescape")
	m.Load(l).PutStatic(sink)
	m.Load(l).GetField(v).Const(1).Add().ReturnValue()
	m.Label("noescape").Load(l).GetField(v).Const(2).Mul().ReturnValue()
	p := mustFinish(a, "partialEscape")
	return Program{"partialEscape", p, entry(p, "P", "run"),
		[][]int64{{0}, {99}, {100}, {5000}}}
}

// escapeBothBranches: the object escapes on both paths (PEA must keep it).
func escapeBothBranches() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Load(0).PutField(v)
	m.Load(0).If(bc.CondNE, "other")
	m.Load(l).PutStatic(sink)
	m.Goto("join")
	m.Label("other").Load(l).PutStatic(sink)
	m.Label("join").GetStatic(sink).GetField(v).ReturnValue()
	p := mustFinish(a, "escapeBothBranches")
	return Program{"escapeBothBranches", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {-7}}}
}

// allocInLoop: a fresh non-escaping object per iteration.
func allocInLoop() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	l := m.NewLocal(bc.KindRef)
	m.Const(0).Store(i).Const(0).Store(s)
	m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	m.New(box.Ref()).Store(l)
	m.Load(l).Load(i).PutField(v)
	m.Load(s).Load(l).GetField(v).Add().Store(s)
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("head")
	m.Label("done").Load(s).ReturnValue()
	p := mustFinish(a, "allocInLoop")
	return Program{"allocInLoop", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {25}}}
}

// escapeFromLoop: the object allocated before the loop escapes inside the
// loop on a rare iteration.
func escapeFromLoop() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Const(5).PutField(v)
	m.Const(0).Store(i)
	m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	m.Load(i).Const(17).IfCmp(bc.CondNE, "skip")
	m.Load(l).PutStatic(sink)
	m.Label("skip").Load(i).Const(1).Add().Store(i)
	m.Goto("head")
	m.Label("done").Load(l).GetField(v).Load(0).Add().ReturnValue()
	p := mustFinish(a, "escapeFromLoop")
	return Program{"escapeFromLoop", p, entry(p, "P", "run"),
		[][]int64{{0}, {10}, {17}, {18}, {40}}}
}

// syncNonEscaping: synchronized on a non-escaping object (lock elision).
func syncNonEscaping() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	r := m.NewLocal(bc.KindInt)
	m.New(box.Ref()).Store(l)
	m.Load(l).MonitorEnter()
	m.Load(l).Load(0).PutField(v)
	m.Load(l).GetField(v).Const(2).Mul().Store(r)
	m.Load(l).MonitorExit()
	m.Load(r).ReturnValue()
	p := mustFinish(a, "syncNonEscaping")
	return Program{"syncNonEscaping", p, entry(p, "P", "run"),
		[][]int64{{0}, {21}, {-4}}}
}

// syncPartialEscape: locked object escapes on one branch after the
// synchronized region.
func syncPartialEscape() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	t := m.NewLocal(bc.KindInt)
	m.New(box.Ref()).Store(l)
	m.Load(l).MonitorEnter()
	m.Load(l).Load(0).PutField(v)
	m.Load(l).GetField(v).Store(t)
	m.Load(l).MonitorExit()
	m.Load(t).Const(0).IfCmp(bc.CondGE, "pos")
	m.Load(l).PutStatic(sink)
	m.Load(t).Neg().ReturnValue()
	m.Label("pos").Load(t).ReturnValue()
	p := mustFinish(a, "syncPartialEscape")
	return Program{"syncPartialEscape", p, entry(p, "P", "run"),
		[][]int64{{5}, {0}, {-5}}}
}

// cacheKey is the paper's Listing 1/4 example, hand-inlined as in
// Listing 5: allocate a Key, compare against a static cache under the
// key's monitor, escape the key into the cache on a miss.
func cacheKey() Program {
	a := bc.NewAssembler()
	key := a.Class("Key", "")
	idx := key.Field("idx", bc.KindInt)
	cache := a.Class("Cache", "")
	ck := cache.Static("cacheKey", bc.KindRef)
	cv := cache.Static("cacheValue", bc.KindInt)

	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	k := m.NewLocal(bc.KindRef)
	tmp1 := m.NewLocal(bc.KindRef)
	tmp2 := m.NewLocal(bc.KindInt)
	// Key key = new Key(); key.idx = x;
	m.New(key.Ref()).Store(k)
	m.Load(k).Load(0).PutField(idx)
	// Key tmp1 = cacheKey;
	m.GetStatic(ck).Store(tmp1)
	// synchronized (key) { tmp2 = tmp1 != null && key.idx == tmp1.idx }
	m.Load(k).MonitorEnter()
	m.Load(tmp1).IfNull(bc.CondEQ, "nomatch")
	m.Load(k).GetField(idx).Load(tmp1).GetField(idx).IfCmp(bc.CondNE, "nomatch")
	m.Const(1).Store(tmp2).Goto("sync_end")
	m.Label("nomatch").Const(0).Store(tmp2)
	m.Label("sync_end").Load(k).MonitorExit()
	// if (tmp2) return cacheValue;
	m.Load(tmp2).If(bc.CondEQ, "miss")
	m.GetStatic(cv).ReturnValue()
	// else { cacheKey = key; cacheValue = x*31; return cacheValue; }
	m.Label("miss").Load(k).PutStatic(ck)
	m.Load(0).Const(31).Mul().PutStatic(cv)
	m.GetStatic(cv).ReturnValue()

	drv := c.Method("driver", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := drv.NewLocal(bc.KindInt)
	s := drv.NewLocal(bc.KindInt)
	drv.Const(0).Store(i).Const(0).Store(s)
	drv.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	drv.Load(s).Load(i).Const(4).Div().InvokeStatic(m.Ref()).Add().Store(s)
	drv.Load(i).Const(1).Add().Store(i)
	drv.Goto("head")
	drv.Label("done").Load(s).ReturnValue()

	p := mustFinish(a, "cacheKey")
	return Program{"cacheKey", p, entry(p, "P", "driver"),
		[][]int64{{0}, {1}, {2}, {16}, {50}}}
}

// linkedList: build a list of n nodes (all escape into each other but the
// head is dropped), then sum it.
func linkedList() Program {
	a := bc.NewAssembler()
	box, v, next, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	head := m.NewLocal(bc.KindRef)
	n := m.NewLocal(bc.KindRef)
	i := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	m.ConstNull().Store(head)
	m.Const(0).Store(i)
	m.Label("build").Load(i).Load(0).IfCmp(bc.CondGE, "sum")
	m.New(box.Ref()).Store(n)
	m.Load(n).Load(i).PutField(v)
	m.Load(n).Load(head).PutField(next)
	m.Load(n).Store(head)
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("build")
	m.Label("sum").Const(0).Store(s)
	m.Label("walk").Load(head).IfNull(bc.CondEQ, "done")
	m.Load(s).Load(head).GetField(v).Add().Store(s)
	m.Load(head).GetField(next).Store(head)
	m.Goto("walk")
	m.Label("done").Load(s).ReturnValue()
	p := mustFinish(a, "linkedList")
	return Program{"linkedList", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {12}}}
}

// objectGraph: one virtual object stored into a field of another virtual
// object (paper Figure 4e/4f).
func objectGraph() Program {
	a := bc.NewAssembler()
	box, v, next, sink := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	outer := m.NewLocal(bc.KindRef)
	inner := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(inner)
	m.Load(inner).Load(0).PutField(v)
	m.New(box.Ref()).Store(outer)
	m.Load(outer).Load(inner).PutField(next)
	m.Load(outer).Const(7).PutField(v)
	m.Load(0).Const(0).IfCmp(bc.CondLT, "escape")
	// read through the graph: outer.next.v + outer.v
	m.Load(outer).GetField(next).GetField(v).Load(outer).GetField(v).Add().ReturnValue()
	m.Label("escape").Load(outer).PutStatic(sink)
	m.GetStatic(sink).GetField(next).GetField(v).ReturnValue()
	p := mustFinish(a, "objectGraph")
	return Program{"objectGraph", p, entry(p, "P", "run"),
		[][]int64{{3}, {0}, {-3}}}
}

// virtualCalls: dynamic dispatch over a small class hierarchy.
func virtualCalls() Program {
	a := bc.NewAssembler()
	base := a.Class("Base", "")
	scale := base.Field("scale", bc.KindInt)
	bget := base.Method("get", []bc.Kind{bc.KindInt}, bc.KindInt, false)
	bget.Load(0).GetField(scale).Load(1).Mul().ReturnValue()
	sub := a.Class("Sub", "Base")
	sget := sub.Method("get", []bc.Kind{bc.KindInt}, bc.KindInt, false)
	sget.Load(0).GetField(scale).Load(1).Add().ReturnValue()

	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt, bc.KindInt}, bc.KindInt, true)
	o := m.NewLocal(bc.KindRef)
	m.Load(0).If(bc.CondNE, "mksub")
	m.New(base.Ref()).Store(o).Goto("go")
	m.Label("mksub").New(sub.Ref()).Store(o)
	m.Label("go").Load(o).Const(10).PutField(scale)
	m.Load(o).Load(1).InvokeVirtual(bget.Ref()).ReturnValue()
	p := mustFinish(a, "virtualCalls")
	return Program{"virtualCalls", p, entry(p, "P", "run"),
		[][]int64{{0, 5}, {1, 5}, {0, -2}, {1, -2}}}
}

// recursion: naive fibonacci.
func recursion() Program {
	a := bc.NewAssembler()
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Load(0).Const(2).IfCmp(bc.CondLT, "base")
	m.Load(0).Const(1).Sub().InvokeStatic(m.Ref())
	m.Load(0).Const(2).Sub().InvokeStatic(m.Ref())
	m.Add().ReturnValue()
	m.Label("base").Load(0).ReturnValue()
	p := mustFinish(a, "recursion")
	return Program{"recursion", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {2}, {10}}}
}

// arrays: fill and fold a heap array.
func arrays() Program {
	a := bc.NewAssembler()
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	arr := m.NewLocal(bc.KindRef)
	i := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	m.Load(0).NewArray(bc.KindInt).Store(arr)
	m.Const(0).Store(i)
	m.Label("fill").Load(i).Load(arr).ArrayLen().IfCmp(bc.CondGE, "fold")
	m.Load(arr).Load(i).Load(i).Load(i).Mul().ArrayStore(bc.KindInt)
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("fill")
	m.Label("fold").Const(0).Store(i).Const(0).Store(s)
	m.Label("head").Load(i).Load(arr).ArrayLen().IfCmp(bc.CondGE, "done")
	m.Load(s).Load(arr).Load(i).ArrayLoad(bc.KindInt).Add().Store(s)
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("head")
	m.Label("done").Load(s).ReturnValue()
	p := mustFinish(a, "arrays")
	return Program{"arrays", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {8}}}
}

// arrayEscape: a small constant-length array escapes on one branch.
func arrayEscape() Program {
	a := bc.NewAssembler()
	c := a.Class("P", "")
	arrSink := c.Static("arr", bc.KindRef)
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	arr := m.NewLocal(bc.KindRef)
	m.Const(3).NewArray(bc.KindInt).Store(arr)
	m.Load(arr).Const(0).Load(0).ArrayStore(bc.KindInt)
	m.Load(arr).Const(1).Load(0).Const(2).Mul().ArrayStore(bc.KindInt)
	m.Load(0).Const(50).IfCmp(bc.CondLT, "local")
	m.Load(arr).PutStatic(arrSink)
	m.GetStatic(arrSink).Const(1).ArrayLoad(bc.KindInt).ReturnValue()
	m.Label("local").Load(arr).Const(0).ArrayLoad(bc.KindInt).Load(arr).Const(1).ArrayLoad(bc.KindInt).Add().ReturnValue()
	p := mustFinish(a, "arrayEscape")
	return Program{"arrayEscape", p, entry(p, "P", "run"),
		[][]int64{{1}, {49}, {50}, {120}}}
}

// refPhi: a reference phi of two allocations, read after the merge
// (paper Figure 6c pattern).
func refPhi() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	o := m.NewLocal(bc.KindRef)
	m.Load(0).If(bc.CondNE, "b")
	m.New(box.Ref()).Store(o)
	m.Load(o).Const(10).PutField(v)
	m.Goto("join")
	m.Label("b").New(box.Ref()).Store(o)
	m.Load(o).Const(20).PutField(v)
	m.Label("join").Load(o).GetField(v).Load(0).Add().ReturnValue()
	p := mustFinish(a, "refPhi")
	return Program{"refPhi", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {5}}}
}

// randomBranches: PRNG-driven control flow with allocations; exercises the
// deterministic Rand intrinsic.
func randomBranches() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	o := m.NewLocal(bc.KindRef)
	m.Const(0).Store(i).Const(0).Store(s)
	m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	m.New(box.Ref()).Store(o)
	m.Load(o).Load(i).PutField(v)
	m.Rand(10).Const(8).IfCmp(bc.CondLT, "keep")
	m.Load(o).PutStatic(sink)
	m.Label("keep").Load(s).Load(o).GetField(v).Add().Store(s)
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("head")
	m.Label("done").Load(s).ReturnValue()
	p := mustFinish(a, "randomBranches")
	return Program{"randomBranches", p, entry(p, "P", "run"),
		[][]int64{{0}, {5}, {60}}}
}

// deepExpression: a long pure expression chain (GVN/canonicalization fodder).
func deepExpression() Program {
	a := bc.NewAssembler()
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Load(0).Const(0).Add() // x+0
	m.Const(1).Mul()         // *1
	m.Load(0).Load(0).Sub().Add()
	m.Load(0).Const(2).Mul().Load(0).Load(0).Add().Sub().Add() // + (2x - (x+x))
	m.Const(3).Const(4).Add().Mul()                            // * 7
	m.ReturnValue()
	p := mustFinish(a, "deepExpression")
	return Program{"deepExpression", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {-13}, {999}}}
}

// instanceOfChain: type tests over a hierarchy, incl. on null.
func instanceOfChain() Program {
	a := bc.NewAssembler()
	base := a.Class("Base", "")
	sub := a.Class("Sub", "Base")
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	o := m.NewLocal(bc.KindRef)
	m.Load(0).Const(0).IfCmp(bc.CondEQ, "mknull")
	m.Load(0).Const(1).IfCmp(bc.CondEQ, "mkbase")
	m.New(sub.Ref()).Store(o).Goto("test")
	m.Label("mknull").ConstNull().Store(o).Goto("test")
	m.Label("mkbase").New(base.Ref()).Store(o)
	m.Label("test")
	m.Load(o).InstanceOf(base.Ref()).Const(10).Mul()
	m.Load(o).InstanceOf(sub.Ref()).Add()
	m.ReturnValue()
	p := mustFinish(a, "instanceOfChain")
	return Program{"instanceOfChain", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {2}}}
}

// aliasedStores: two locals aliasing the same virtual object; a store
// through one must be visible through the other.
func aliasedStores() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	x := m.NewLocal(bc.KindRef)
	y := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(x)
	m.Load(x).Store(y)
	m.Load(x).Load(0).PutField(v)
	m.Load(y).GetField(v).Const(5).Add().Store(0)
	m.Load(y).Load(0).PutField(v)
	m.Load(x).GetField(v).ReturnValue()
	p := mustFinish(a, "aliasedStores")
	return Program{"aliasedStores", p, entry(p, "P", "run"),
		[][]int64{{0}, {37}}}
}

// refArray: a constant-length array of references holding virtual objects
// (paper Figure 4e/f generalized to array elements); escapes on one branch.
func refArray() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	arr := m.NewLocal(bc.KindRef)
	o := m.NewLocal(bc.KindRef)
	m.Const(2).NewArray(bc.KindRef).Store(arr)
	m.New(box.Ref()).Store(o)
	m.Load(o).Load(0).PutField(v)
	m.Load(arr).Const(0).Load(o).ArrayStore(bc.KindRef)
	m.Load(arr).Const(1).Load(arr).Const(0).ArrayLoad(bc.KindRef).ArrayStore(bc.KindRef)
	m.Load(0).Const(0).IfCmp(bc.CondLT, "escape")
	// read through the array elements: both alias the same virtual Box
	m.Load(arr).Const(1).ArrayLoad(bc.KindRef).GetField(v)
	m.Load(arr).Const(0).ArrayLoad(bc.KindRef).GetField(v).Add().ReturnValue()
	m.Label("escape").Load(arr).Const(0).ArrayLoad(bc.KindRef).PutStatic(sink)
	m.GetStatic(sink).GetField(v).ReturnValue()
	p := mustFinish(a, "refArray")
	return Program{"refArray", p, entry(p, "P", "run"),
		[][]int64{{5}, {0}, {-5}}}
}

// nestedSync: two nested synchronized regions on two distinct virtual
// objects, one of which escapes afterwards.
func nestedSync() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	x := m.NewLocal(bc.KindRef)
	y := m.NewLocal(bc.KindRef)
	r := m.NewLocal(bc.KindInt)
	m.New(box.Ref()).Store(x)
	m.New(box.Ref()).Store(y)
	m.Load(x).MonitorEnter()
	m.Load(y).MonitorEnter()
	m.Load(x).Load(0).PutField(v)
	m.Load(y).Load(0).Const(2).Mul().PutField(v)
	m.Load(x).GetField(v).Load(y).GetField(v).Add().Store(r)
	m.Load(y).MonitorExit()
	m.Load(x).MonitorExit()
	m.Load(0).Const(50).IfCmp(bc.CondLT, "done")
	m.Load(y).PutStatic(sink)
	m.Label("done").Load(r).ReturnValue()
	p := mustFinish(a, "nestedSync")
	return Program{"nestedSync", p, entry(p, "P", "run"),
		[][]int64{{1}, {49}, {50}, {999}}}
}

// selfReference: x.next = x closes a cycle in the virtual object graph;
// PEA must fall back to a real allocation (cycles are not kept virtual)
// while remaining semantically exact.
func selfReference() Program {
	a := bc.NewAssembler()
	box, v, next, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	x := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(x)
	m.Load(x).Load(0).PutField(v)
	m.Load(x).Load(x).PutField(next)
	// walk the cycle twice: x.next.next.v == x.v
	m.Load(x).GetField(next).GetField(next).GetField(v).ReturnValue()
	p := mustFinish(a, "selfReference")
	return Program{"selfReference", p, entry(p, "P", "run"),
		[][]int64{{0}, {11}, {-4}}}
}

// partialViaCallee: the escape happens inside a (inlinable) callee, so the
// partial-escape pattern only becomes visible after inlining — the
// paper's point about PEA cooperating with the inliner.
func partialViaCallee() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	pub := c.Method("publish", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
	pub.Load(1).Const(10).IfCmp(bc.CondGE, "esc")
	pub.Load(0).GetField(v).ReturnValue()
	pub.Label("esc").Load(0).PutStatic(sink)
	pub.Load(0).GetField(v).Const(1).Add().ReturnValue()
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).Load(0).PutField(v)
	m.Load(l).Load(0).InvokeStatic(pub.Ref()).Const(3).Mul().ReturnValue()
	p := mustFinish(a, "partialViaCallee")
	return Program{"partialViaCallee", p, entry(p, "P", "run"),
		[][]int64{{0}, {9}, {10}, {42}}}
}

// boxedCounter: Scala/Java autoboxing pattern — a counter object threaded
// through a loop, replaced each iteration (the factorie-style workload in
// miniature).
func boxedCounter() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	o := m.NewLocal(bc.KindRef)
	i := m.NewLocal(bc.KindInt)
	m.New(box.Ref()).Store(o)
	m.Load(o).Const(0).PutField(v)
	m.Const(0).Store(i)
	m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	// o = new Box(o.v + i)  — fresh box each iteration
	t := m.NewLocal(bc.KindInt)
	m.Load(o).GetField(v).Load(i).Add().Store(t)
	m.New(box.Ref()).Store(o)
	m.Load(o).Load(t).PutField(v)
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("head")
	m.Label("done").Load(o).GetField(v).ReturnValue()
	p := mustFinish(a, "boxedCounter")
	return Program{"boxedCounter", p, entry(p, "P", "run"),
		[][]int64{{0}, {1}, {30}}}
}

// throwInLoop: a rare data-dependent throw inside a loop, caught by a
// typed handler in the same iteration. The per-iteration Box stays virtual
// on the non-throwing path; the thrown Box materializes only when raised.
func throwInLoop() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	o := m.NewLocal(bc.KindRef)
	e := m.NewLocal(bc.KindRef)
	m.Const(0).Store(i).Const(0).Store(s)
	m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	m.Label("ts")
	m.New(box.Ref()).Store(o)
	m.Load(o).Load(i).PutField(v)
	m.Load(i).Const(5).Rem().Const(3).IfCmp(bc.CondNE, "ok")
	m.New(box.Ref()).Store(e)
	m.Load(e).Load(i).Const(100).Add().PutField(v)
	m.Load(e).Throw()
	m.Label("ok").Load(s).Load(o).GetField(v).Add().Store(s)
	m.Label("te").Goto("next")
	m.Label("h").Store(e)
	m.Load(s).Load(e).GetField(v).Add().Store(s)
	m.Label("next").Load(i).Const(1).Add().Store(i)
	m.Goto("head")
	m.Label("done").Load(s).ReturnValue()
	m.Exception("ts", "te", "h", box.Ref())
	p := mustFinish(a, "throwInLoop")
	return Program{"throwInLoop", p, entry(p, "P", "run"),
		[][]int64{{0}, {3}, {4}, {10}, {23}}}
}

// catchRethrow: an inner handler mutates the caught object and rethrows it
// into an outer handler — the exception object's identity and field state
// must survive the second dispatch.
func catchRethrow() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	e := m.NewLocal(bc.KindRef)
	m.Label("os")
	m.Label("is")
	m.New(box.Ref()).Store(e)
	m.Load(e).Load(0).PutField(v)
	m.Load(e).Throw()
	m.Label("ie")
	m.Label("ih").Store(e)
	m.Load(e).Load(e).GetField(v).Const(1).Add().PutField(v)
	m.Load(e).Throw()
	m.Label("oe")
	m.Label("oh").Store(e)
	m.Load(e).GetField(v).Const(2).Mul().ReturnValue()
	m.Exception("is", "ie", "ih", box.Ref())
	m.Exception("os", "oe", "oh", box.Ref())
	p := mustFinish(a, "catchRethrow")
	return Program{"catchRethrow", p, entry(p, "P", "run"),
		[][]int64{{0}, {7}, {-3}}}
}

// catchAllIntrinsic: a catch-all entry (nil class) observes both a guest
// throw and an intrinsic division trap; the intrinsic case binds null. The
// handler itself allocates — the finally-with-allocation shape.
func catchAllIntrinsic() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	o := m.NewLocal(bc.KindRef)
	e := m.NewLocal(bc.KindRef)
	f := m.NewLocal(bc.KindRef)
	s := m.NewLocal(bc.KindInt)
	m.Label("ts")
	m.New(box.Ref()).Store(o)
	m.Load(o).Load(0).PutField(v)
	m.Load(0).Const(0).IfCmp(bc.CondGE, "pos")
	m.New(box.Ref()).Store(e)
	m.Load(e).Const(7).PutField(v)
	m.Load(e).Throw()
	m.Label("pos").Const(100).Load(0).Div() // intrinsic trap when x == 0
	m.Load(o).GetField(v).Add().Store(s)
	m.Label("te").Goto("done")
	m.Label("h").Store(e)
	m.New(box.Ref()).Store(f)
	m.Load(f).Const(99).PutField(v)
	m.Load(e).IfNull(bc.CondEQ, "intr")
	m.Load(f).GetField(v).Load(e).GetField(v).Add().Store(s)
	m.Goto("done")
	m.Label("intr").Load(f).GetField(v).Neg().Store(s)
	m.Label("done").Load(s).ReturnValue()
	m.Exception("ts", "te", "h", nil)
	p := mustFinish(a, "catchAllIntrinsic")
	return Program{"catchAllIntrinsic", p, entry(p, "P", "run"),
		[][]int64{{5}, {0}, {-3}}}
}

// catchPartialEscape: the paper's partial-escape pattern mapped onto
// exception edges — the per-iteration Box escapes into the sink only on
// the rare handler path, so PEA materializes it on the exceptional edge
// and elides it everywhere else.
func catchPartialEscape() Program {
	a := bc.NewAssembler()
	box, v, _, sink := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	s := m.NewLocal(bc.KindInt)
	o := m.NewLocal(bc.KindRef)
	e := m.NewLocal(bc.KindRef)
	m.Const(0).Store(i).Const(0).Store(s)
	m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
	m.New(box.Ref()).Store(o)
	m.Load(o).Load(i).PutField(v)
	m.Label("ts")
	m.Load(i).Const(7).Rem().Const(6).IfCmp(bc.CondNE, "ok")
	m.New(box.Ref()).Store(e)
	m.Load(e).Load(i).PutField(v)
	m.Load(e).Throw()
	m.Label("ok").Load(s).Load(o).GetField(v).Const(1).Add().Add().Store(s)
	m.Label("te").Goto("next")
	m.Label("h").Store(e)
	m.Load(o).PutStatic(sink)
	m.Load(s).Load(e).GetField(v).Load(o).GetField(v).Add().Add().Store(s)
	m.Label("next").Load(i).Const(1).Add().Store(i)
	m.Goto("head")
	m.Label("done").Load(s).ReturnValue()
	m.Exception("ts", "te", "h", box.Ref())
	p := mustFinish(a, "catchPartialEscape")
	return Program{"catchPartialEscape", p, entry(p, "P", "run"),
		[][]int64{{0}, {5}, {7}, {20}}}
}

// uncaughtTrap: traps that escape the entry method — one ArgSet raises an
// intrinsic division trap, another a guest throw no handler covers. The
// differential harnesses compare the canonical trap identity
// (reason, method, bci) exactly across engines.
func uncaughtTrap() Program {
	a := bc.NewAssembler()
	box, v, _, _ := boxClass(a)
	c := a.Class("P", "")
	m := c.Method("run", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Load(0).Const(0).IfCmp(bc.CondGE, "div")
	m.New(box.Ref()).Dup().Const(9).PutField(v).Throw()
	m.Label("div").Const(100).Load(0).Div().ReturnValue()
	p := mustFinish(a, "uncaughtTrap")
	return Program{"uncaughtTrap", p, entry(p, "P", "run"),
		[][]int64{{4}, {0}, {-1}}}
}
