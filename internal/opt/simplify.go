package opt

import (
	"pea/internal/ir"
)

// SimplifyCFG folds branches on constant conditions, removes unreachable
// blocks, and merges straight-line block chains. It keeps phi inputs
// aligned with predecessor lists throughout.
type SimplifyCFG struct{}

// Name implements Phase.
func (SimplifyCFG) Name() string { return "simplify-cfg" }

// Run implements Phase.
func (SimplifyCFG) Run(g *ir.Graph) (bool, error) {
	changed := false
	for {
		c := foldConstantIfs(g)
		c = g.RemoveDeadBlocks() || c
		c = mergeBlocks(g) || c
		changed = changed || c
		if !c {
			return changed, nil
		}
	}
}

// foldConstantIfs rewrites If nodes with constant conditions into Gotos.
func foldConstantIfs(g *ir.Graph) bool {
	changed := false
	for _, b := range g.Blocks {
		t := b.Term
		if t == nil || t.Op != ir.OpIf || !t.Inputs[0].IsConst() {
			continue
		}
		takenIdx := 1 // false successor
		if t.Inputs[0].AuxInt != 0 {
			takenIdx = 0
		}
		taken := b.Succs[takenIdx]
		dead := b.Succs[1-takenIdx]
		// Remove the dead edge: find which pred slot of `dead`
		// corresponds to this edge. A block can appear several times
		// in preds (If with both arms equal); edges correspond
		// one-to-one, so removing any one matching slot is correct.
		removePredEdge(dead, b)
		gt := g.NewNode(ir.OpGoto, t.Kind)
		gt.BCI = t.BCI
		gt.FrameState = t.FrameState
		gt.Block = b
		b.Term = gt
		b.Succs = []*ir.Block{taken}
		changed = true
	}
	return changed
}

// removePredEdge removes one pred slot of blk matching pred, dropping the
// corresponding phi inputs.
func removePredEdge(blk *ir.Block, pred *ir.Block) {
	for i, p := range blk.Preds {
		if p == pred {
			blk.Preds = append(blk.Preds[:i], blk.Preds[i+1:]...)
			for _, phi := range blk.Phis {
				phi.Inputs = append(phi.Inputs[:i], phi.Inputs[i+1:]...)
			}
			return
		}
	}
}

// mergeBlocks merges b -> s when b ends in a Goto and s has exactly one
// predecessor edge.
func mergeBlocks(g *ir.Graph) bool {
	changed := false
	for _, b := range g.Blocks {
		for {
			if b.Term == nil || b.Term.Op != ir.OpGoto {
				break
			}
			s := b.Succs[0]
			if s == b || len(s.Preds) != 1 {
				break
			}
			// Single-pred phis are trivial: replace with their input.
			for _, phi := range append([]*ir.Node(nil), s.Phis...) {
				g.ReplaceAllUsages(phi, phi.Inputs[0])
			}
			s.Phis = nil
			for _, n := range s.Nodes {
				n.Block = b
				b.Nodes = append(b.Nodes, n)
			}
			s.Term.Block = b
			b.Term = s.Term
			b.Succs = s.Succs
			for _, ss := range s.Succs {
				for i, p := range ss.Preds {
					if p == s {
						ss.Preds[i] = b
					}
				}
			}
			// Unlink s.
			s.Preds = nil
			s.Succs = nil
			s.Nodes = nil
			s.Term = nil
			removeBlock(g, s)
			changed = true
		}
	}
	return changed
}

func removeBlock(g *ir.Graph, blk *ir.Block) {
	for i, b := range g.Blocks {
		if b == blk {
			g.Blocks = append(g.Blocks[:i], g.Blocks[i+1:]...)
			return
		}
	}
}
