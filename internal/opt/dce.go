package opt

import (
	"pea/internal/ir"
)

// DCE removes pure nodes (and phis) with no remaining usages, iterating to
// a fixpoint so chains of dead computations disappear. Non-pure nodes —
// including loads, which can trap on null, and allocations, whose removal
// is escape analysis's job — are never touched.
type DCE struct{}

// Name implements Phase.
func (DCE) Name() string { return "dce" }

// Run implements Phase.
func (DCE) Run(g *ir.Graph) (bool, error) {
	changed := false
	for {
		counts := g.UsageCounts()
		removed := false
		for _, b := range g.Blocks {
			for _, phi := range append([]*ir.Node(nil), b.Phis...) {
				if counts[phi] == 0 || onlySelfUse(phi, counts) {
					g.RemovePhi(phi)
					removed = true
				}
			}
			for _, n := range append([]*ir.Node(nil), b.Nodes...) {
				if n.Pure() && counts[n] == 0 {
					g.RemoveNode(n)
					removed = true
				}
			}
		}
		changed = changed || removed
		if !removed {
			return changed, nil
		}
	}
}

// onlySelfUse reports whether a phi's only usage is itself (a dead loop
// phi).
func onlySelfUse(phi *ir.Node, counts map[*ir.Node]int) bool {
	if counts[phi] == 0 {
		return true
	}
	self := 0
	for _, in := range phi.Inputs {
		if in == phi {
			self++
		}
	}
	return self > 0 && counts[phi] == self
}
