package opt

import (
	"fmt"

	"pea/internal/ir"
	"pea/internal/sched"
)

// GVN performs dominance-based global value numbering over pure nodes: a
// pure node is replaced by an equivalent node computed in a dominating
// block (or earlier in the same block).
type GVN struct{}

// Name implements Phase.
func (GVN) Name() string { return "gvn" }

// Run implements Phase.
func (GVN) Run(g *ir.Graph) (bool, error) {
	g.RemoveDeadBlocks()
	cfg, err := sched.Compute(g)
	if err != nil {
		return false, err
	}
	changed := false
	// Scoped hash table: walk the dominator tree in RPO; since RPO
	// visits dominators before dominated blocks, a global table keyed by
	// value signature holding the *representative list* works if we
	// check dominance before substituting.
	table := make(map[string][]*ir.Node)
	for _, b := range cfg.RPO {
		// Phis are keyed on (block, inputs): identical phis in one
		// block merge.
		for _, phi := range append([]*ir.Node(nil), b.Phis...) {
			key := phiKey(b, phi)
			dup := findDominating(cfg, table[key], phi)
			if dup != nil && dup != phi && dup.Block == b {
				g.ReplaceAllUsages(phi, dup)
				g.RemovePhi(phi)
				changed = true
				continue
			}
			table[key] = append(table[key], phi)
		}
		for _, n := range append([]*ir.Node(nil), b.Nodes...) {
			if !n.Pure() || n.Op == ir.OpPhi || n.Op == ir.OpVirtualObject {
				continue
			}
			key := valueKey(n)
			if dup := findDominating(cfg, table[key], n); dup != nil {
				g.ReplaceAllUsages(n, dup)
				g.RemoveNode(n)
				changed = true
				continue
			}
			table[key] = append(table[key], n)
		}
	}
	return changed, nil
}

// findDominating returns a candidate from list whose block dominates n's
// block (same-block candidates were inserted earlier in program order, so
// they are safe too).
func findDominating(cfg *sched.CFG, list []*ir.Node, n *ir.Node) *ir.Node {
	for _, cand := range list {
		if cand == n {
			continue
		}
		if cand.Block == n.Block || cfg.Dominates(cand.Block, n.Block) {
			return cand
		}
	}
	return nil
}

// valueKey builds a structural hash key for a pure node.
func valueKey(n *ir.Node) string {
	key := fmt.Sprintf("%d|%d|%d|%d|%d", n.Op, n.Kind, n.AuxInt, n.Aux2, n.Cond)
	if n.Class != nil {
		key += "|c" + n.Class.Name
	}
	if n.Field != nil {
		key += "|f" + n.Field.QualifiedName()
	}
	for _, in := range n.Inputs {
		key += fmt.Sprintf("|v%d", in.ID)
	}
	return key
}

func phiKey(b *ir.Block, phi *ir.Node) string {
	key := fmt.Sprintf("phi|b%d|%d", b.ID, phi.Kind)
	for _, in := range phi.Inputs {
		if in == nil {
			key += "|nil"
		} else {
			key += fmt.Sprintf("|v%d", in.ID)
		}
	}
	return key
}
