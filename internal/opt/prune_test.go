package opt

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/rt"
)

// profiledProgram builds m(x) { if (x < 100) return 1; return 2; } and
// interprets it with the given arguments to collect a branch profile.
func profiledProgram(t *testing.T, args ...int64) (*bc.Program, *ir.Graph, *interp.Profile) {
	t.Helper()
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Load(0).Const(100).IfCmp(bc.CondLT, "small")
	m.Const(2).ReturnValue()
	m.Label("small").Const(1).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	meth := prog.ClassByName("C").MethodByName("m")
	env := rt.NewEnv(prog, 1)
	it := interp.New(env)
	for _, x := range args {
		if _, err := it.Call(meth, []rt.Value{rt.IntValue(x)}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := build.Build(meth)
	if err != nil {
		t.Fatal(err)
	}
	return prog, g, it.Profile
}

func TestPrunesNeverTakenBranch(t *testing.T) {
	// Only small arguments: the branch is always taken.
	args := make([]int64, 60)
	_, g, prof := profiledProgram(t, args...)
	pr := &BranchPruner{Profile: prof, MinTotal: 50}
	changed, err := pr.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("nothing pruned")
	}
	if err := ir.Verify(g); err != nil {
		t.Fatalf("%v\n%s", err, ir.Dump(g))
	}
	deopts, returns := 0, 0
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		// oplint:ignore — counts two ops of interest.
		switch n.Op {
		case ir.OpDeopt:
			deopts++
			if n.FrameState == nil {
				t.Fatal("deopt without frame state")
			}
		case ir.OpReturn:
			returns++
		}
	})
	if deopts != 1 || returns != 1 {
		t.Fatalf("deopts=%d returns=%d, want 1/1\n%s", deopts, returns, ir.Dump(g))
	}
}

func TestNoPruningOnBalancedProfile(t *testing.T) {
	args := []int64{}
	for i := 0; i < 30; i++ {
		args = append(args, 5, 500)
	}
	_, g, prof := profiledProgram(t, args...)
	pr := &BranchPruner{Profile: prof, MinTotal: 50}
	changed, err := pr.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatalf("balanced branch pruned:\n%s", ir.Dump(g))
	}
}

func TestNoPruningBelowMinTotal(t *testing.T) {
	_, g, prof := profiledProgram(t, 1, 2, 3)
	pr := &BranchPruner{Profile: prof, MinTotal: 50}
	changed, err := pr.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("pruned on insufficient data")
	}
}

func TestNoPruningWithoutProfile(t *testing.T) {
	_, g, _ := profiledProgram(t, 1)
	pr := &BranchPruner{}
	changed, err := pr.Run(g)
	if err != nil || changed {
		t.Fatalf("changed=%v err=%v", changed, err)
	}
}

func TestMergeBlocksCollapsesChains(t *testing.T) {
	// if (1) { a } else { b } collapses to a single block after constant
	// folding and merging.
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Const(1).If(bc.CondNE, "t")
	m.Load(0).ReturnValue()
	m.Label("t").Load(0).Const(1).Add().ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(prog.ClassByName("C").MethodByName("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 after folding+merging:\n%s", len(g.Blocks), ir.Dump(g))
	}
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyKeepsLoops(t *testing.T) {
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	i := m.NewLocal(bc.KindInt)
	m.Const(0).Store(i)
	m.Label("h").Load(i).Load(0).IfCmp(bc.CondGE, "d")
	m.Load(i).Const(1).Add().Store(i)
	m.Goto("h")
	m.Label("d").Load(i).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(prog.ClassByName("C").MethodByName("m"))
	if err != nil {
		t.Fatal(err)
	}
	before := 0
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpIf {
			before++
		}
	})
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	after := 0
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpIf {
			after++
		}
	})
	if before != 1 || after != 1 {
		t.Fatalf("loop If count changed: %d -> %d", before, after)
	}
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
}

func TestDCEKeepsFrameStateValues(t *testing.T) {
	// A pure value referenced only by a frame state must survive DCE
	// (deoptimization needs it).
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	x := m.NewLocal(bc.KindInt)
	m.Load(0).Const(3).Mul().Store(x)
	m.Const(0).Print() // frame state holds x if live
	m.Load(x).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(prog.ClassByName("C").MethodByName("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	muls := 0
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpArith && n.Aux2 == bc.OpMul {
			muls++
		}
	})
	if muls != 1 {
		t.Fatalf("mul count = %d (DCE must keep the returned value)", muls)
	}
}
