package opt

import (
	"pea/internal/bc"
	"pea/internal/interp"
	"pea/internal/ir"
)

// Canonicalize folds constants, applies algebraic identities, simplifies
// trivial phis, and statically resolves reference equalities and type
// checks where the IR proves them. It matches the role of Graal's
// canonicalizer, with which the paper's PEA cooperates (§5: "equality
// checks on object references... type checks on virtual objects can be
// performed at compile time" rely on this machinery to clean up).
type Canonicalize struct{}

// Name implements Phase.
func (Canonicalize) Name() string { return "canonicalize" }

// Run implements Phase.
func (Canonicalize) Run(g *ir.Graph) (bool, error) {
	changed := false
	for {
		c := runCanonOnce(g)
		changed = changed || c
		if !c {
			return changed, nil
		}
	}
}

func runCanonOnce(g *ir.Graph) bool {
	changed := false
	for _, b := range g.Blocks {
		// Trivial phis: all inputs identical (ignoring self-references).
		for _, phi := range append([]*ir.Node(nil), b.Phis...) {
			if v := trivialPhiValue(phi); v != nil {
				g.ReplaceAllUsages(phi, v)
				g.RemovePhi(phi)
				changed = true
			}
		}
		for _, n := range append([]*ir.Node(nil), b.Nodes...) {
			// A node guarded by an OnException terminator must stay the
			// block's last node; folding it away would orphan the guard.
			// PEA removes provably-safe guards itself.
			if b.Term != nil && b.Term.Op == ir.OpOnException && b.Term.Inputs[0] == n {
				continue
			}
			if v := canonValue(g, b, n); v != nil && v != n {
				g.ReplaceAllUsages(n, v)
				// Division, remainder, and ArrayLength are not Pure()
				// because they can trap — but canonValue only rewrites
				// them when the trap provably cannot happen (non-zero
				// constant divisor; array from a non-null NewArray or
				// Materialize), so the original node is removable;
				// leaving it would refold it forever.
				if n.Pure() || n.Op == ir.OpArith || n.Op == ir.OpArrayLength {
					g.RemoveNode(n)
				}
				changed = true
			}
		}
	}
	return changed
}

// trivialPhiValue returns the unique non-self input of a phi, or nil if the
// phi is not trivial.
func trivialPhiValue(phi *ir.Node) *ir.Node {
	var v *ir.Node
	for _, in := range phi.Inputs {
		if in == phi || in == nil {
			continue
		}
		if v == nil {
			v = in
		} else if v != in {
			return nil
		}
	}
	return v
}

// canonValue returns a simplified replacement for n, or nil.
func canonValue(g *ir.Graph, b *ir.Block, n *ir.Node) *ir.Node {
	mkConst := func(v int64) *ir.Node {
		c := g.NewNode(ir.OpConst, bc.KindInt)
		c.AuxInt = v
		c.BCI = n.BCI
		g.InsertBefore(b, c, n)
		return c
	}
	// oplint:ignore — folding rules exist only for the value ops below;
	// ops without a rule are simply not rewritten.
	switch n.Op {
	case ir.OpArith:
		x, y := n.Inputs[0], n.Inputs[1]
		if x.IsConst() && y.IsConst() {
			if r, err := interp.EvalArith(n.Aux2, x.AuxInt, y.AuxInt); err == nil {
				return mkConst(r)
			}
			return nil // constant div/rem by zero: keep the trap
		}
		// oplint:ignore — algebraic identities for a few operators; the
		// rest fall through to generic handling.
		switch n.Aux2 {
		case bc.OpAdd:
			if x.IsConst() && x.AuxInt == 0 {
				return y
			}
			if y.IsConst() && y.AuxInt == 0 {
				return x
			}
		case bc.OpSub:
			if y.IsConst() && y.AuxInt == 0 {
				return x
			}
			if x == y {
				return mkConst(0)
			}
		case bc.OpMul:
			if x.IsConst() && x.AuxInt == 1 {
				return y
			}
			if y.IsConst() && y.AuxInt == 1 {
				return x
			}
			if x.IsConst() && x.AuxInt == 0 || y.IsConst() && y.AuxInt == 0 {
				return mkConst(0)
			}
		case bc.OpDiv:
			if y.IsConst() && y.AuxInt == 1 {
				return x
			}
		case bc.OpAnd, bc.OpOr:
			if x == y {
				return x
			}
		case bc.OpXor:
			if x == y {
				return mkConst(0)
			}
		case bc.OpShl, bc.OpShr, bc.OpUShr:
			if y.IsConst() && y.AuxInt == 0 {
				return x
			}
		}
	case ir.OpNeg:
		if n.Inputs[0].IsConst() {
			return mkConst(-n.Inputs[0].AuxInt)
		}
	case ir.OpCmp:
		x, y := n.Inputs[0], n.Inputs[1]
		if x.IsConst() && y.IsConst() {
			return mkConst(b2i(n.Cond.EvalInt(x.AuxInt, y.AuxInt)))
		}
		if x == y {
			switch n.Cond {
			case bc.CondEQ, bc.CondLE, bc.CondGE:
				return mkConst(1)
			case bc.CondNE, bc.CondLT, bc.CondGT:
				return mkConst(0)
			}
		}
	case ir.OpRefEq:
		x, y := n.Inputs[0], n.Inputs[1]
		eq := -1 // unknown
		switch {
		case x == y:
			eq = 1
		case x.IsNullConst() && y.IsNullConst():
			eq = 1
		case x.Op == ir.OpNew && y.IsNullConst(),
			y.Op == ir.OpNew && x.IsNullConst(),
			x.Op == ir.OpMaterialize && y.IsNullConst(),
			y.Op == ir.OpMaterialize && x.IsNullConst():
			eq = 0
		case x.Op == ir.OpNew && y.Op == ir.OpNew && x != y:
			eq = 0
		}
		if eq >= 0 {
			want := eq == 1
			if n.Cond == bc.CondNE {
				want = !want
			}
			return mkConst(b2i(want))
		}
	case ir.OpInstanceOf:
		x := n.Inputs[0]
		if x.IsNullConst() {
			return mkConst(0)
		}
		if x.Op == ir.OpNew || (x.Op == ir.OpMaterialize && x.Class != nil) {
			return mkConst(b2i(x.Class.IsSubclassOf(n.Class)))
		}
		if x.Op == ir.OpNewArray || (x.Op == ir.OpMaterialize && x.Class == nil) {
			return mkConst(0)
		}
	case ir.OpArrayLength:
		arr := n.Inputs[0]
		if arr.Op == ir.OpNewArray && arr.Inputs[0].IsConst() && arr.Inputs[0].AuxInt >= 0 {
			return mkConst(arr.Inputs[0].AuxInt)
		}
		if arr.Op == ir.OpMaterialize && arr.Class == nil {
			return mkConst(arr.AuxInt)
		}
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
