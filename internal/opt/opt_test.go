package opt

import (
	"strings"
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/exec"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/rt"
	"pea/internal/testprog"
)

// optimizeAll builds and optimizes graphs for every method of the program
// with the full non-speculative pipeline including inlining.
func optimizeAll(t *testing.T, prog *bc.Program) map[*bc.Method]*ir.Graph {
	t.Helper()
	graphs := make(map[*bc.Method]*ir.Graph, len(prog.Methods))
	for _, m := range prog.Methods {
		g, err := build.Build(m)
		if err != nil {
			t.Fatalf("build %s: %v", m.QualifiedName(), err)
		}
		pipe := &Pipeline{
			Phases: []Phase{
				&Inliner{BuildGraph: build.Build, Program: prog},
				Canonicalize{},
				SimplifyCFG{},
				GVN{},
				DCE{},
			},
			Validate: true,
		}
		if err := pipe.Run(g); err != nil {
			t.Fatalf("optimize %s: %v", m.QualifiedName(), err)
		}
		graphs[m] = g
	}
	return graphs
}

func runOptimized(t *testing.T, p testprog.Program, graphs map[*bc.Method]*ir.Graph, args []int64) (rt.Value, *rt.Env, error) {
	t.Helper()
	env := rt.NewEnv(p.Prog, 42)
	eng := &exec.Engine{Env: env, MaxSteps: 5_000_000}
	eng.Invoke = func(callee *bc.Method, vals []rt.Value) (rt.Value, error) {
		return eng.Run(graphs[callee], vals)
	}
	vals := make([]rt.Value, len(args))
	for i, a := range args {
		vals[i] = rt.IntValue(a)
	}
	v, err := eng.Run(graphs[p.Entry], vals)
	return v, env, err
}

func runReference(t *testing.T, p testprog.Program, args []int64) (rt.Value, *rt.Env, error) {
	t.Helper()
	env := rt.NewEnv(p.Prog, 42)
	it := interp.New(env)
	it.MaxSteps = 5_000_000
	vals := make([]rt.Value, len(args))
	for i, a := range args {
		vals[i] = rt.IntValue(a)
	}
	v, err := it.Call(p.Entry, vals)
	return v, env, err
}

// TestOptimizedMatchesInterpreter: the full pipeline (inlining included)
// must preserve results, output, and — since none of these phases touch
// allocations, monitors or field accesses — the dynamic operation counts.
func TestOptimizedMatchesInterpreter(t *testing.T) {
	for _, p := range testprog.Corpus() {
		t.Run(p.Name, func(t *testing.T) {
			graphs := optimizeAll(t, p.Prog)
			for _, args := range p.ArgSets {
				v1, env1, err1 := runReference(t, p, args)
				v2, env2, err2 := runOptimized(t, p, graphs, args)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%v: interp err=%v, opt err=%v", args, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if !v1.Equal(v2) {
					t.Fatalf("%v: interp=%v opt=%v", args, v1, v2)
				}
				s1, s2 := env1.Stats, env2.Stats
				if s1.Allocations != s2.Allocations || s1.MonitorOps != s2.MonitorOps ||
					s1.FieldLoads != s2.FieldLoads || s1.FieldStores != s2.FieldStores {
					t.Fatalf("%v: stats diverged without EA: %+v vs %+v", args, s1, s2)
				}
			}
		})
	}
}

func buildSingle(t *testing.T, body func(a *bc.Assembler) *bc.MethodAsm) (*bc.Program, *ir.Graph) {
	t.Helper()
	a := bc.NewAssembler()
	ma := body(a)
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(ma.Ref())
	if err != nil {
		t.Fatal(err)
	}
	return prog, g
}

func countOps(g *ir.Graph, op ir.Op) int {
	n := 0
	g.ForEachNode(func(_ *ir.Block, x *ir.Node) {
		if x.Op == op {
			n++
		}
	})
	return n
}

func TestConstantFolding(t *testing.T) {
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		m := a.Class("C", "").Method("m", nil, bc.KindInt, true)
		m.Const(6).Const(7).Mul().Const(2).Add().ReturnValue()
		return m
	})
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, ir.OpArith); got != 0 {
		t.Fatalf("arith nodes left: %d\n%s", got, ir.Dump(g))
	}
	// The return input must be the constant 44.
	ret := g.Blocks[len(g.Blocks)-1].Term
	for _, b := range g.Blocks {
		if b.Term.Op == ir.OpReturn {
			ret = b.Term
		}
	}
	if ret.Inputs[0].Op != ir.OpConst || ret.Inputs[0].AuxInt != 44 {
		t.Fatalf("return input = %s", ret.Inputs[0])
	}
}

func TestAlgebraicIdentities(t *testing.T) {
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		m := a.Class("C", "").Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
		// ((x+0)*1 - 0) + (x-x)
		m.Load(0).Const(0).Add().Const(1).Mul().Const(0).Sub()
		m.Load(0).Load(0).Sub().Add().ReturnValue()
		return m
	})
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, ir.OpArith); got != 0 {
		t.Fatalf("arith not fully simplified (%d left):\n%s", got, ir.Dump(g))
	}
}

func TestConstantIfFolding(t *testing.T) {
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		m := a.Class("C", "").Method("m", nil, bc.KindInt, true)
		m.Const(1).If(bc.CondNE, "yes")
		m.Const(10).ReturnValue()
		m.Label("yes").Const(20).ReturnValue()
		return m
	})
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, ir.OpIf); got != 0 {
		t.Fatalf("If not folded:\n%s", ir.Dump(g))
	}
	if got := countOps(g, ir.OpReturn); got != 1 {
		t.Fatalf("dead branch kept:\n%s", ir.Dump(g))
	}
	var ret *ir.Node
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpReturn {
			ret = n
		}
	})
	if ret.Inputs[0].AuxInt != 20 {
		t.Fatalf("wrong branch survived: %s", ret.Inputs[0])
	}
}

func TestGVNDeduplicates(t *testing.T) {
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		m := a.Class("C", "").Method("m", []bc.Kind{bc.KindInt, bc.KindInt}, bc.KindInt, true)
		// (x+y) * (x+y) computed as two separate adds
		m.Load(0).Load(1).Add()
		m.Load(0).Load(1).Add()
		m.Mul().ReturnValue()
		return m
	})
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	adds := 0
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpArith && n.Aux2 == bc.OpAdd {
			adds++
		}
	})
	if adds != 1 {
		t.Fatalf("GVN left %d adds:\n%s", adds, ir.Dump(g))
	}
}

func TestGVNRespectsDominance(t *testing.T) {
	// x+y computed in both arms of a diamond must NOT merge into one
	// (neither arm dominates the other).
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		m := a.Class("C", "").Method("m", []bc.Kind{bc.KindInt, bc.KindInt}, bc.KindInt, true)
		r := m.NewLocal(bc.KindInt)
		m.Load(0).If(bc.CondNE, "b")
		m.Load(0).Load(1).Add().Store(r).Goto("join")
		m.Label("b").Load(0).Load(1).Add().Store(r)
		m.Label("join").Load(r).ReturnValue()
		return m
	})
	if _, err := (GVN{}).Run(g); err != nil {
		t.Fatal(err)
	}
	adds := 0
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpArith && n.Aux2 == bc.OpAdd {
			adds++
		}
	})
	if adds != 2 {
		t.Fatalf("GVN merged across non-dominating blocks (%d adds):\n%s", adds, ir.Dump(g))
	}
}

func TestInlineStaticCall(t *testing.T) {
	a := bc.NewAssembler()
	c := a.Class("C", "")
	callee := c.Method("inc", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	callee.Load(0).Const(1).Add().ReturnValue()
	caller := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	caller.Load(0).InvokeStatic(callee.Ref()).Const(2).Mul().ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(caller.Ref())
	if err != nil {
		t.Fatal(err)
	}
	in := &Inliner{BuildGraph: build.Build, Program: prog}
	changed, err := in.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("nothing inlined")
	}
	if err := ir.Verify(g); err != nil {
		t.Fatalf("after inline: %v\n%s", err, ir.Dump(g))
	}
	if got := countOps(g, ir.OpInvoke); got != 0 {
		t.Fatalf("invoke survived:\n%s", ir.Dump(g))
	}
	// Inlined code's frame states must chain to the caller.
	found := false
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.FrameState != nil && n.FrameState.Method == callee.Ref() {
			found = true
			if n.FrameState.Outer == nil || n.FrameState.Outer.Method != caller.Ref() {
				t.Fatalf("inlined state not chained: %s", n.FrameState)
			}
		}
	})
	_ = found // inlined pure code may carry no states after cloning

	// Execute: m(20) == 42.
	env := rt.NewEnv(prog, 1)
	eng := &exec.Engine{Env: env}
	got, err := eng.Run(g, []rt.Value{rt.IntValue(20)})
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 42 {
		t.Fatalf("inlined result = %d", got.I)
	}
}

func TestInlineDevirtualizesExactType(t *testing.T) {
	a := bc.NewAssembler()
	base := a.Class("Base", "")
	bget := base.Method("get", nil, bc.KindInt, false)
	bget.Const(1).ReturnValue()
	sub := a.Class("Sub", "Base")
	sub.Method("get", nil, bc.KindInt, false).Const(2).ReturnValue()
	c := a.Class("C", "")
	m := c.Method("m", nil, bc.KindInt, true)
	m.New(sub.Ref()).InvokeVirtual(bget.Ref()).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(m.Ref())
	if err != nil {
		t.Fatal(err)
	}
	in := &Inliner{BuildGraph: build.Build, Program: prog}
	if _, err := in.Run(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, ir.OpInvoke); got != 0 {
		t.Fatalf("virtual call on exact type not inlined:\n%s", ir.Dump(g))
	}
	env := rt.NewEnv(prog, 1)
	eng := &exec.Engine{Env: env}
	got, err := eng.Run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 2 {
		t.Fatalf("devirtualized to wrong target: %d", got.I)
	}
}

func TestCHARefusesPolymorphicSite(t *testing.T) {
	a := bc.NewAssembler()
	base := a.Class("Base", "")
	bget := base.Method("get", nil, bc.KindInt, false)
	bget.Const(1).ReturnValue()
	sub := a.Class("Sub", "Base")
	sub.Method("get", nil, bc.KindInt, false).Const(2).ReturnValue()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindRef}, bc.KindInt, true)
	m.Load(0).InvokeVirtual(bget.Ref()).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(m.Ref())
	if err != nil {
		t.Fatal(err)
	}
	in := &Inliner{BuildGraph: build.Build, Program: prog}
	if _, err := in.Run(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, ir.OpInvoke); got != 1 {
		t.Fatalf("polymorphic site should not inline:\n%s", ir.Dump(g))
	}
}

func TestCHADevirtualizesMonomorphicHierarchy(t *testing.T) {
	a := bc.NewAssembler()
	base := a.Class("Base", "")
	bget := base.Method("get", nil, bc.KindInt, false)
	bget.Const(7).ReturnValue()
	a.Class("Sub", "Base") // no override
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindRef}, bc.KindInt, true)
	m.Load(0).InvokeVirtual(bget.Ref()).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(m.Ref())
	if err != nil {
		t.Fatal(err)
	}
	in := &Inliner{BuildGraph: build.Build, Program: prog}
	if _, err := in.Run(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, ir.OpInvoke); got != 0 {
		t.Fatalf("CHA-monomorphic site not inlined:\n%s", ir.Dump(g))
	}
}

func TestNoRecursiveInlining(t *testing.T) {
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("fib", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Load(0).Const(2).IfCmp(bc.CondLT, "base")
	m.Load(0).Const(1).Sub().InvokeStatic(m.Ref())
	m.Load(0).Const(2).Sub().InvokeStatic(m.Ref())
	m.Add().ReturnValue()
	m.Label("base").Load(0).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(m.Ref())
	if err != nil {
		t.Fatal(err)
	}
	in := &Inliner{BuildGraph: build.Build, Program: prog}
	if _, err := in.Run(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, ir.OpInvoke); got != 2 {
		t.Fatalf("self-recursive calls should stay (%d invokes left)", got)
	}
}

func TestTrivialPhiElimination(t *testing.T) {
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		m := a.Class("C", "").Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
		// Both arms store the same value; the phi is trivial.
		r := m.NewLocal(bc.KindInt)
		m.Load(0).If(bc.CondNE, "b")
		m.Load(0).Store(r).Goto("join")
		m.Label("b").Load(0).Store(r)
		m.Label("join").Load(r).ReturnValue()
		return m
	})
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	if got := countOps(g, ir.OpPhi); got != 0 {
		t.Fatalf("trivial phi kept:\n%s", ir.Dump(g))
	}
}

func TestRefEqFolding(t *testing.T) {
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		m := a.Class("C", "").Method("m", nil, bc.KindInt, true)
		// null == null -> true branch
		m.ConstNull().ConstNull().IfRef(bc.CondEQ, "eq")
		m.Const(0).ReturnValue()
		m.Label("eq").Const(1).ReturnValue()
		return m
	})
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	var ret *ir.Node
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpReturn {
			ret = n
		}
	})
	if countOps(g, ir.OpReturn) != 1 || ret.Inputs[0].AuxInt != 1 {
		t.Fatalf("null==null not folded:\n%s", ir.Dump(g))
	}
}

func TestPipelineNameAndValidation(t *testing.T) {
	names := []string{}
	for _, ph := range Standard().Phases {
		names = append(names, ph.Name())
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"canonicalize", "simplify-cfg", "gvn", "dce"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("standard pipeline missing %s: %s", want, joined)
		}
	}
}
