package opt

import (
	"pea/internal/bc"
	"pea/internal/interp"
	"pea/internal/ir"
)

// BranchPruner speculatively replaces never-taken branch targets with
// deoptimization points, as aggressive dynamic compilers do ("assumptions
// such as ... some branches never being taken", paper §2). This is what
// makes Partial Escape Analysis compose with speculation: an object whose
// only escape sits in a pruned branch becomes fully virtual, and if the
// assumption ever fails, the deoptimization runtime rebuilds it from the
// VirtualObjectState in the Deopt node's FrameState (§5.5).
type BranchPruner struct {
	// Profile provides branch execution counts from interpreted runs.
	Profile *interp.Profile
	// MinTotal is the minimum number of observed executions before a
	// branch may be pruned (default 50).
	MinTotal int64
}

// Name implements Phase.
func (*BranchPruner) Name() string { return "branch-prune" }

func (p *BranchPruner) minTotal() int64 {
	if p.MinTotal > 0 {
		return p.MinTotal
	}
	return 50
}

// Run implements Phase.
func (p *BranchPruner) Run(g *ir.Graph) (bool, error) {
	if p.Profile == nil {
		return false, nil
	}
	changed := false
	for _, b := range append([]*ir.Block(nil), g.Blocks...) {
		t := b.Term
		if t == nil || t.Op != ir.OpIf || t.FrameState == nil {
			continue
		}
		// The profile site is the branch bytecode in the innermost
		// (possibly inlined) method.
		m, pc := t.FrameState.Method, t.FrameState.BCI
		if pc != t.BCI {
			continue
		}
		notTaken, taken := p.Profile.BranchCounts(m, pc)
		total := notTaken + taken
		if total < p.minTotal() {
			continue
		}
		// IR true-successor corresponds to the bytecode branch being
		// taken.
		var deadIdx int
		switch {
		case taken == 0:
			deadIdx = 0
		case notTaken == 0:
			deadIdx = 1
		default:
			continue
		}
		dead := b.Succs[deadIdx]
		removePredEdge(dead, b)
		db := g.NewBlock()
		d := g.NewNode(ir.OpDeopt, bc.KindVoid)
		d.FrameState = t.FrameState
		d.BCI = t.BCI
		d.DeoptReason = "untaken branch at " + m.QualifiedName()
		d.Action = ir.DeoptActionInvalidateSpeculation
		d.Block = db
		db.Term = d
		db.Preds = []*ir.Block{b}
		b.Succs[deadIdx] = db
		changed = true
	}
	if changed {
		g.RemoveDeadBlocks()
	}
	return changed, nil
}
