package opt

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/ir"
	"pea/internal/summary"
)

// summaryOrderProg builds a caller with two eligible call sites:
//
//	noesc(b) { return 7 }        // never observes b  -> NoEscape
//	reads(b) { return b.v }      // loads from b      -> ArgEscape
//	f(b)     { return noesc(b) + reads(b) }
//
// Inlining reads is what can unlock scalar replacement in f; noesc is
// already harmless across the call boundary once summaries are consulted.
func summaryOrderProg(t *testing.T) (*bc.Program, *bc.Method) {
	t.Helper()
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	vField := box.Field("v", bc.KindInt)
	c := a.Class("C", "")

	noesc := c.Method("noesc", []bc.Kind{bc.KindRef}, bc.KindInt, true)
	noesc.Const(7).ReturnValue()

	reads := c.Method("reads", []bc.Kind{bc.KindRef}, bc.KindInt, true)
	reads.Load(0).GetField(vField).ReturnValue()

	f := c.Method("f", []bc.Kind{bc.KindRef}, bc.KindInt, true)
	f.Load(0).InvokeStatic(noesc.Ref()).
		Load(0).InvokeStatic(reads.Ref()).
		Add().ReturnValue()

	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p, f.Ref()
}

// calleeOf returns the qualified name of an invoke site's target.
func calleeOf(n *ir.Node) string {
	if n == nil || n.Method == nil {
		return "<none>"
	}
	return n.Method.QualifiedName()
}

func TestPickSitePrefersArgEscapeCallee(t *testing.T) {
	p, f := summaryOrderProg(t)
	g, err := build.Build(f)
	if err != nil {
		t.Fatal(err)
	}

	// Legacy behavior without summaries: first eligible site in block
	// order, which is the noesc call.
	legacy := &Inliner{BuildGraph: build.Build, Program: p}
	if got := calleeOf(legacy.pickSite(g)); got != "C.noesc" {
		t.Fatalf("nil-summaries pickSite = %s, want C.noesc (first in block order)", got)
	}

	// With summaries the ArgEscape callee outranks the NoEscape one even
	// though it appears later: inlining it is what exposes b.v to PEA.
	sums := summary.Compute(p, summary.Options{})
	in := &Inliner{BuildGraph: build.Build, Program: p, Summaries: sums}
	if got := calleeOf(in.pickSite(g)); got != "C.reads" {
		t.Fatalf("summary pickSite = %s, want C.reads (ArgEscape param)", got)
	}

	// The order change must not change what ultimately gets inlined.
	if _, err := in.Run(g); err != nil {
		t.Fatal(err)
	}
	if err := ir.Verify(g); err != nil {
		t.Fatalf("invalid graph after summary-ordered inlining: %v\n%s", err, ir.Dump(g))
	}
	left := 0
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpInvoke {
			left++
		}
	})
	if left != 0 {
		t.Fatalf("%d invokes left, want 0 (budget fits both)\n%s", left, ir.Dump(g))
	}
}

func TestInlinerScoreRanksFreshAboveGlobalEscape(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	box.Field("v", bc.KindInt)
	sinkF := box.Static("S", bc.KindRef)
	c := a.Class("C", "")

	mk := c.Method("mk", nil, bc.KindRef, true)
	mk.New(box.Ref()).ReturnValue()

	snk := c.Method("sink", []bc.Kind{bc.KindRef}, bc.KindVoid, true)
	snk.Load(0).PutStatic(sinkF).Return()

	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	sums := summary.Compute(p, summary.Options{})
	in := &Inliner{BuildGraph: build.Build, Program: p, Summaries: sums}
	mkScore := in.score(mk.Ref())
	snkScore := in.score(snk.Ref())
	if mkScore <= snkScore {
		t.Fatalf("score(mk)=%d <= score(sink)=%d; fresh-returning callee should rank higher",
			mkScore, snkScore)
	}
}
