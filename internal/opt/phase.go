// Package opt implements the optimization phases that Partial Escape
// Analysis depends on in the paper's system: canonicalization (constant
// folding and algebraic simplification), control-flow simplification,
// global value numbering, dead code elimination, inlining with
// devirtualization, and profile-guided speculative branch pruning (which
// introduces the deoptimization points that exercise the paper's
// FrameState machinery, §5.5).
package opt

import (
	"fmt"

	"pea/internal/budget"
	"pea/internal/check"
	"pea/internal/ir"
	"pea/internal/obs"
)

// Phase is one graph transformation.
type Phase interface {
	Name() string
	// Run transforms g in place and reports whether anything changed.
	Run(g *ir.Graph) (bool, error)
}

// Pipeline runs phases in order, iterating the whole sequence until a
// fixpoint or the iteration cap is reached.
type Pipeline struct {
	Phases []Phase
	// MaxRounds bounds full-pipeline iterations (default 4).
	MaxRounds int
	// Check selects the sanitizer level run after every phase. The
	// PEA_CHECK environment variable floors it, so an exported
	// PEA_CHECK=strict turns every pipeline in the process strict. At
	// check.Off (and no floor) the pipeline adds no checking work at all.
	Check check.Level
	// Validate is the historical switch for the structural verifier;
	// setting it is equivalent to Check = check.Basic. Deprecated: set
	// Check instead.
	Validate bool
	// Budget, when non-nil, is the per-compile resource bound. The
	// pipeline polls it at every phase boundary and unwinds with a
	// structured budget error (wrapping budget.ErrBudget) when the
	// compile deadline or the IR node bound is exceeded — the cooperative
	// cancellation points of a runaway compile. nil (the default) adds a
	// single pointer test per phase.
	Budget *budget.Budget
	// Sink, when non-nil, receives phase_start/phase_end events with
	// node/block counts, feeds per-phase wall-time and node-delta timers
	// into the sink's attached metrics registry, and delivers per-phase IR
	// snapshots to registered snapshot consumers. A nil sink adds no
	// allocations to the compile path.
	Sink *obs.Sink
}

// level returns the effective check level: the configured level, floored
// by the legacy Validate switch and the PEA_CHECK environment variable.
func (p *Pipeline) level() check.Level {
	l := p.Check
	if p.Validate {
		l = check.Max(l, check.Basic)
	}
	return check.Effective(l)
}

// Run executes the pipeline on g.
func (p *Pipeline) Run(g *ir.Graph) error {
	rounds := p.MaxRounds
	if rounds == 0 {
		rounds = 4
	}
	var method string
	if p.Sink != nil {
		method = g.Method.QualifiedName()
	}
	lvl := p.level()
	// Failure forensics: under strict checking, keep the previous
	// phase's dump so a violation can be pinpointed as a diff. The
	// capture only happens at strict level — dumping per phase is far
	// too expensive for production pipelines.
	var before string
	if lvl >= check.Strict {
		before = ir.Dump(g)
	}
	for r := 0; r < rounds; r++ {
		changed := false
		for _, ph := range p.Phases {
			var span obs.PhaseSpan
			if p.Sink != nil {
				span = obs.StartPhase(p.Sink, ph.Name(), method, g.NumNodes(), len(g.Blocks))
			}
			c, err := ph.Run(g)
			if err != nil {
				return fmt.Errorf("opt: phase %s: %w", ph.Name(), err)
			}
			if p.Budget != nil {
				if err := p.Budget.Check(ph.Name(), budgetMethod(g), g.NumNodes()); err != nil {
					return err
				}
			}
			if p.Sink != nil {
				span.End(g.NumNodes(), len(g.Blocks))
				if c && p.Sink.WantSnapshots() {
					p.Sink.Snapshot(ph.Name(), method, func() string { return ir.Dump(g) })
				}
			}
			if lvl != check.Off {
				if err := check.Graph(g, lvl); err != nil {
					return p.violation(g, ph.Name(), before, err)
				}
				if lvl >= check.Strict {
					before = ir.Dump(g)
				}
			}
			changed = changed || c
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// budgetMethod names g's method for budget errors. Only evaluated when a
// budget is enabled, so the disabled path allocates nothing.
func budgetMethod(g *ir.Graph) string {
	if g.Method == nil {
		return ""
	}
	return g.Method.QualifiedName()
}

// violation reports a checker failure after a phase: it emits an obs
// event and wraps the error with a before/after IR diff pinpointing what
// the phase changed (strict level only — basic has no before dump).
func (p *Pipeline) violation(g *ir.Graph, phase, before string, err error) error {
	var method string
	if g.Method != nil {
		method = g.Method.QualifiedName()
	}
	diff := ""
	if before != "" {
		diff = check.DiffDumps(before, ir.Dump(g))
	}
	p.Sink.CheckViolation(phase, method, err.Error(), diff)
	if diff != "" {
		return fmt.Errorf("opt: phase %s broke the graph: %w\nphase diff (- before, + after):\n%s",
			phase, err, diff)
	}
	return fmt.Errorf("opt: phase %s broke the graph: %w", phase, err)
}

// Standard returns the default non-speculative pipeline: canonicalize,
// simplify control flow, value-number, and eliminate dead code.
func Standard() *Pipeline {
	return &Pipeline{Phases: []Phase{
		Canonicalize{},
		SimplifyCFG{},
		GVN{},
		DCE{},
	}}
}
