// Package opt implements the optimization phases that Partial Escape
// Analysis depends on in the paper's system: canonicalization (constant
// folding and algebraic simplification), control-flow simplification,
// global value numbering, dead code elimination, inlining with
// devirtualization, and profile-guided speculative branch pruning (which
// introduces the deoptimization points that exercise the paper's
// FrameState machinery, §5.5).
package opt

import (
	"fmt"

	"pea/internal/ir"
	"pea/internal/obs"
)

// Phase is one graph transformation.
type Phase interface {
	Name() string
	// Run transforms g in place and reports whether anything changed.
	Run(g *ir.Graph) (bool, error)
}

// Pipeline runs phases in order, iterating the whole sequence until a
// fixpoint or the iteration cap is reached.
type Pipeline struct {
	Phases []Phase
	// MaxRounds bounds full-pipeline iterations (default 4).
	MaxRounds int
	// Validate runs the IR verifier after every phase when set.
	Validate bool
	// Sink, when non-nil, receives phase_start/phase_end events with
	// node/block counts, feeds per-phase wall-time and node-delta timers
	// into the sink's attached metrics registry, and delivers per-phase IR
	// snapshots to registered snapshot consumers. A nil sink adds no
	// allocations to the compile path.
	Sink *obs.Sink
}

// Run executes the pipeline on g.
func (p *Pipeline) Run(g *ir.Graph) error {
	rounds := p.MaxRounds
	if rounds == 0 {
		rounds = 4
	}
	var method string
	if p.Sink != nil {
		method = g.Method.QualifiedName()
	}
	for r := 0; r < rounds; r++ {
		changed := false
		for _, ph := range p.Phases {
			var span obs.PhaseSpan
			if p.Sink != nil {
				span = obs.StartPhase(p.Sink, ph.Name(), method, g.NumNodes(), len(g.Blocks))
			}
			c, err := ph.Run(g)
			if err != nil {
				return fmt.Errorf("opt: phase %s: %w", ph.Name(), err)
			}
			if p.Sink != nil {
				span.End(g.NumNodes(), len(g.Blocks))
				if c && p.Sink.WantSnapshots() {
					p.Sink.Snapshot(ph.Name(), method, func() string { return ir.Dump(g) })
				}
			}
			if p.Validate {
				if err := ir.Verify(g); err != nil {
					return fmt.Errorf("opt: phase %s broke the graph: %w", ph.Name(), err)
				}
			}
			changed = changed || c
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// Standard returns the default non-speculative pipeline: canonicalize,
// simplify control flow, value-number, and eliminate dead code.
func Standard() *Pipeline {
	return &Pipeline{Phases: []Phase{
		Canonicalize{},
		SimplifyCFG{},
		GVN{},
		DCE{},
	}}
}
