package opt

import (
	"errors"
	"testing"
	"time"

	"pea/internal/bc"
	"pea/internal/budget"
)

// TestPipelineBudgetBails: a pipeline with an IR-node budget unwinds at
// the first phase boundary that observes the graph over the bound, with a
// structured error naming the phase and method.
func TestPipelineBudgetBails(t *testing.T) {
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		c := a.Class("C", "")
		m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
		m.Load(0).Const(1).Add().Const(2).Mul().ReturnValue()
		return m
	})
	p := &Pipeline{
		Phases: []Phase{Canonicalize{}},
		Budget: &budget.Budget{MaxNodes: 1},
	}
	err := p.Run(g)
	if !budget.IsBudget(err) {
		t.Fatalf("Run error = %v, want a budget error", err)
	}
	var be *budget.Err
	if !errors.As(err, &be) || be.Kind != "nodes" || be.Phase != "canonicalize" || be.Limit != 1 {
		t.Fatalf("structured error = %+v", be)
	}
}

// TestPipelineDeadlineBails: an already-expired deadline unwinds at the
// first phase boundary.
func TestPipelineDeadlineBails(t *testing.T) {
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		c := a.Class("C", "")
		m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
		m.Load(0).ReturnValue()
		return m
	})
	p := &Pipeline{
		Phases: []Phase{Canonicalize{}, SimplifyCFG{}},
		Budget: &budget.Budget{Deadline: time.Now().Add(-time.Second)},
	}
	err := p.Run(g)
	var be *budget.Err
	if !errors.As(err, &be) || be.Kind != "deadline" {
		t.Fatalf("Run error = %v, want a deadline budget error", err)
	}
}

// TestPipelineNilBudgetUnchanged: the default nil budget adds no checks
// and the pipeline behaves exactly as before.
func TestPipelineNilBudgetUnchanged(t *testing.T) {
	_, g := buildSingle(t, func(a *bc.Assembler) *bc.MethodAsm {
		c := a.Class("C", "")
		m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
		m.Load(0).Const(1).Add().ReturnValue()
		return m
	})
	reads := budget.ClockReads()
	if err := Standard().Run(g); err != nil {
		t.Fatal(err)
	}
	if d := budget.ClockReads() - reads; d != 0 {
		t.Fatalf("nil budget read the clock %d times", d)
	}
}
