package opt

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/summary"
)

// Inliner replaces call sites with callee bodies. Static and direct calls
// inline immediately; virtual calls are first devirtualized via exact
// receiver types, class hierarchy analysis, or a monomorphic call-site
// profile. Frame states of inlined code are chained to the caller's state
// at the call site (paper §2: "a frame state thus contains a reference to
// an outer frame state, which is the caller's state").
type Inliner struct {
	// BuildGraph builds (or fetches a cached) IR graph for a callee.
	BuildGraph func(m *bc.Method) (*ir.Graph, error)
	// Program provides the class hierarchy for devirtualization.
	Program *bc.Program
	// Profile, if non-nil, devirtualizes monomorphic call sites.
	// Speculative devirtualization by profile alone is only sound with a
	// guard, so it is used only when CHA already proves the target.
	Profile *interp.Profile

	// MaxCalleeCode is the largest callee bytecode size inlined
	// (default 80).
	MaxCalleeCode int
	// MaxGraphNodes stops inlining when the caller graph grows beyond
	// this (default 2000).
	MaxGraphNodes int
	// MaxDepth bounds the inlining depth via frame-state chain length
	// (default 6).
	MaxDepth int
	// Sink, when non-nil, receives an inline event per inlined call site.
	Sink *obs.Sink

	// Summaries, when non-nil, turns site selection from first-eligible
	// into a priority order informed by inter-procedural escape
	// summaries: callees that locally observe their ref arguments
	// (ArgEscape) or return fresh allocations are inlined first —
	// splicing them in is what unlocks scalar replacement — while
	// callees whose ref parameters provably never escape are
	// deprioritized, because the summary already lets PEA keep those
	// arguments virtual across the un-inlined call. The order only
	// matters when budgets stop inlining early; with room for
	// everything, the same sites inline either way.
	Summaries *summary.Set
}

// Name implements Phase.
func (in *Inliner) Name() string { return "inline" }

func (in *Inliner) maxCalleeCode() int {
	if in.MaxCalleeCode > 0 {
		return in.MaxCalleeCode
	}
	return 80
}

func (in *Inliner) maxGraphNodes() int {
	if in.MaxGraphNodes > 0 {
		return in.MaxGraphNodes
	}
	return 2000
}

func (in *Inliner) maxDepth() int {
	if in.MaxDepth > 0 {
		return in.MaxDepth
	}
	return 6
}

// Run implements Phase. It repeatedly inlines eligible call sites until
// none remain or budgets are exhausted.
func (in *Inliner) Run(g *ir.Graph) (bool, error) {
	changed := false
	for rounds := 0; rounds < 10; rounds++ {
		site := in.pickSite(g)
		if site == nil {
			return changed, nil
		}
		if err := in.inlineSite(g, site); err != nil {
			return changed, err
		}
		changed = true
	}
	return changed, nil
}

// pickSite returns the next inlinable invoke, or nil. Without summaries it
// is the first eligible site in block order; with summaries, the highest
// scoring one (ties keep block order, so selection stays deterministic).
func (in *Inliner) pickSite(g *ir.Graph) *ir.Node {
	if g.NumNodes() > in.maxGraphNodes() {
		return nil
	}
	var best *ir.Node
	bestScore := 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Op != ir.OpInvoke {
				continue
			}
			// A guarded invoke's trap routes to the caller's dispatch
			// chain; splicing the callee body in would let its throws
			// bypass that chain. Such sites stay calls.
			if b.Term != nil && b.Term.Op == ir.OpOnException && b.Term.Inputs[0] == n {
				continue
			}
			callee := in.resolveTarget(n)
			if callee == nil {
				continue
			}
			if n.FrameState.Depth() > in.maxDepth() {
				continue
			}
			if in.Summaries == nil {
				return n
			}
			if sc := in.score(callee); best == nil || sc > bestScore {
				best, bestScore = n, sc
			}
		}
	}
	return best
}

// score ranks an inlinable callee by how much scalar replacement the
// splice is likely to unlock, minus a size penalty. Fresh-returning
// callees expose their allocation to the caller's PEA; callees observing
// ref arguments locally (ArgEscape) let PEA virtualize objects that the
// un-inlined call would force to exist. NoEscape parameters add nothing:
// the summary already keeps them virtual without inlining. Globally
// escaping parameters add almost nothing: the object escapes either way.
func (in *Inliner) score(callee *bc.Method) int {
	sc := -len(callee.Code)
	sum := in.Summaries.Of(callee)
	if sum == nil {
		return sc
	}
	if sum.ReturnsFresh {
		sc += 200
	}
	for i, l := range sum.ParamEscape {
		if calleeArgKind(callee, i) != bc.KindRef {
			continue
		}
		switch l {
		case summary.ArgEscape:
			sc += 100
		case summary.GlobalEscape:
			sc += 10
		}
	}
	return sc
}

// calleeArgKind returns the kind of argument position i (receiver = 0 of
// instance methods).
func calleeArgKind(m *bc.Method, i int) bc.Kind {
	if !m.Static {
		if i == 0 {
			return bc.KindRef
		}
		i--
	}
	if i < 0 || i >= len(m.Params) {
		return bc.KindVoid
	}
	return m.Params[i]
}

// resolveTarget returns the unique callee implementation for the invoke,
// or nil if the site cannot be inlined.
func (in *Inliner) resolveTarget(n *ir.Node) *bc.Method {
	callee := n.Method
	// oplint:ignore — n is an OpInvoke, so Aux2 is one of the three
	// invoke kinds by construction.
	switch n.Aux2 {
	case bc.OpInvokeStatic, bc.OpInvokeDirect:
		// Direct: the target is exact.
	case bc.OpInvokeVirtual:
		callee = in.devirtualize(n)
		if callee == nil {
			return nil
		}
	default:
		return nil
	}
	if len(callee.Code) > in.maxCalleeCode() {
		return nil
	}
	// Callees that raise or catch keep their own frame: an inlined throw
	// would need the caller's dispatch chains re-derived around the
	// spliced body, and an inlined handler would need its table scoped to
	// cloned blocks. Neither transformation exists yet, so such callees
	// stay calls (the invoke itself can still be guarded by the caller).
	if len(callee.ExceptionTable) > 0 {
		return nil
	}
	for i := range callee.Code {
		if callee.Code[i].Op == bc.OpThrow {
			return nil
		}
	}
	// No recursive inlining: the callee must not already be on the
	// frame-state chain.
	for fs := n.FrameState; fs != nil; fs = fs.Outer {
		if fs.Method == callee {
			return nil
		}
	}
	return callee
}

// devirtualize resolves a virtual call to a unique target using the exact
// receiver type when the receiver is an allocation, else class hierarchy
// analysis (all loaded classes implementing the slot agree).
func (in *Inliner) devirtualize(n *ir.Node) *bc.Method {
	decl := n.Method
	recv := n.Inputs[0]
	if recv.Op == ir.OpNew || (recv.Op == ir.OpMaterialize && recv.Class != nil) {
		return recv.Class.VTable[decl.VSlot]
	}
	if in.Program == nil {
		return nil
	}
	// CHA: every class in the declaring hierarchy must resolve the slot
	// to the same implementation. (Receivers from unrelated hierarchies
	// would be ill-typed bytecode; the MiniJava front end cannot produce
	// them.)
	root := implDeclaringRoot(decl)
	var target *bc.Method
	for _, c := range in.Program.Classes {
		if !c.IsSubclassOf(root) || decl.VSlot >= len(c.VTable) {
			continue
		}
		impl := c.VTable[decl.VSlot]
		if target == nil {
			target = impl
		} else if target != impl {
			return nil
		}
	}
	return target
}

// implDeclaringRoot finds the topmost class declaring m's vtable slot.
func implDeclaringRoot(m *bc.Method) *bc.Class {
	root := m.Class
	for root.Super != nil && m.VSlot < len(root.Super.VTable) {
		root = root.Super
	}
	return root
}

// inlineSite splices the callee's body in place of the invoke.
func (in *Inliner) inlineSite(g *ir.Graph, invoke *ir.Node) error {
	callee := in.resolveTarget(invoke)
	if callee == nil {
		return fmt.Errorf("inline: unresolvable site %s", invoke)
	}
	cg, err := in.BuildGraph(callee)
	if err != nil {
		return fmt.Errorf("inline: building %s: %w", callee.QualifiedName(), err)
	}
	if in.Sink != nil {
		in.Sink.Inline(g.Method.QualifiedName(), callee.QualifiedName(),
			fmt.Sprintf("v%d", invoke.ID))
	}

	// The caller's state during the call: the invoke's before-state with
	// the arguments popped. Inner frame states chain to it.
	during := invoke.FrameState.Copy()
	nargs := callee.NumArgs()
	if len(during.Stack) < nargs {
		return fmt.Errorf("inline: state at %s has %d stack entries for %d args",
			callee.QualifiedName(), len(during.Stack), nargs)
	}
	during.Stack = during.Stack[:len(during.Stack)-nargs]

	// Split the invoke's block: `head` keeps everything before the
	// invoke; `cont` receives everything after it plus the terminator.
	head := invoke.Block
	cont := g.NewBlock()
	idx := -1
	for i, x := range head.Nodes {
		if x == invoke {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("inline: invoke not found in its block")
	}
	after := append([]*ir.Node(nil), head.Nodes[idx+1:]...)
	head.Nodes = head.Nodes[:idx]
	for _, x := range after {
		x.Block = cont
	}
	cont.Nodes = after
	cont.Term = head.Term
	cont.Term.Block = cont
	cont.Succs = head.Succs
	for _, s := range cont.Succs {
		for i, p := range s.Preds {
			if p == head {
				s.Preds[i] = cont
			}
		}
	}
	head.Term = nil
	head.Succs = nil

	// Clone the callee graph into g.
	cl := &cloner{
		g:      g,
		callee: callee,
		args:   invoke.Inputs,
		outer:  during,
		nodes:  make(map[*ir.Node]*ir.Node),
		blocks: make(map[*ir.Block]*ir.Block),
		states: make(map[*ir.FrameState]*ir.FrameState),
	}
	for _, cb := range cg.Blocks {
		cl.blocks[cb] = g.NewBlock()
	}
	var returns []*ir.Node // cloned return terminators
	for _, cb := range cg.Blocks {
		nb := cl.blocks[cb]
		for _, p := range cb.Phis {
			np := cl.node(p)
			np.Block = nb
			nb.Phis = append(nb.Phis, np)
		}
		for _, x := range cb.Nodes {
			nx := cl.node(x)
			if nx.Block == nil { // params map to args and are not re-placed
				nx.Block = nb
				nb.Nodes = append(nb.Nodes, nx)
			}
		}
		nt := cl.node(cb.Term)
		nt.Block = nb
		nb.Term = nt
		nb.Preds = make([]*ir.Block, len(cb.Preds))
		for i, p := range cb.Preds {
			nb.Preds[i] = cl.blocks[p]
		}
		nb.Succs = make([]*ir.Block, len(cb.Succs))
		for i, s := range cb.Succs {
			nb.Succs[i] = cl.blocks[s]
		}
		if nt.Op == ir.OpReturn {
			returns = append(returns, nt)
		}
	}

	// head jumps into the cloned entry.
	entryGoto := g.NewNode(ir.OpGoto, bc.KindVoid)
	entryGoto.BCI = invoke.BCI
	g.SetTerm(head, entryGoto, cl.blocks[cg.Entry()])

	// Rewire returns to cont, merging return values with a phi.
	var result *ir.Node
	switch len(returns) {
	case 0:
		// The callee never returns (always throws/deopts): cont is
		// unreachable; give it a throw-free terminator and let dead
		// block removal drop it.
	default:
		var phi *ir.Node
		if callee.Ret != bc.KindVoid && len(returns) > 1 {
			phi = g.AddPhi(cont, callee.Ret)
		}
		for _, ret := range returns {
			rb := ret.Block
			gt := g.NewNode(ir.OpGoto, bc.KindVoid)
			gt.BCI = ret.BCI
			gt.Block = rb
			rb.Term = gt
			rb.Succs = []*ir.Block{cont}
			cont.Preds = append(cont.Preds, rb)
			if phi != nil {
				phi.Inputs = append(phi.Inputs, ret.Inputs[0])
			}
		}
		if callee.Ret != bc.KindVoid {
			if phi != nil {
				result = phi
			} else {
				result = returns[0].Inputs[0]
			}
		}
	}

	// Replace the invoke's value with the result and drop the invoke.
	if result != nil {
		g.ReplaceAllUsages(invoke, result)
	}
	g.RemoveNode(invoke)
	if len(returns) == 0 {
		g.RemoveDeadBlocks()
	}
	return nil
}

// cloner copies callee nodes/blocks/frame-states into the caller graph.
type cloner struct {
	g      *ir.Graph
	callee *bc.Method
	args   []*ir.Node
	outer  *ir.FrameState
	nodes  map[*ir.Node]*ir.Node
	blocks map[*ir.Block]*ir.Block
	states map[*ir.FrameState]*ir.FrameState
}

// node returns the caller-graph clone of a callee node.
func (cl *cloner) node(x *ir.Node) *ir.Node {
	if x == nil {
		return nil
	}
	if n, ok := cl.nodes[x]; ok {
		return n
	}
	if x.Op == ir.OpParam {
		a := cl.args[x.AuxInt]
		cl.nodes[x] = a
		return a
	}
	n := cl.g.NewNode(x.Op, x.Kind)
	cl.nodes[x] = n
	n.AuxInt = x.AuxInt
	n.AuxLen = x.AuxLen
	n.AuxLock = x.AuxLock
	n.Aux2 = x.Aux2
	n.Cond = x.Cond
	n.Class = x.Class
	n.Field = x.Field
	n.Method = x.Method
	n.ElemKind = x.ElemKind
	n.DeoptReason = x.DeoptReason
	n.BCI = x.BCI
	// Cloned nodes keep reporting trap identity against the method they
	// came from, not the graph they now live in.
	n.Origin = x.OriginMethod(cl.callee)
	n.Inputs = make([]*ir.Node, len(x.Inputs))
	for i, in := range x.Inputs {
		n.Inputs[i] = cl.node(in)
	}
	n.FrameState = cl.state(x.FrameState)
	return n
}

// state clones a frame state chain, attaching the caller's during-state at
// the end of the chain.
func (cl *cloner) state(fs *ir.FrameState) *ir.FrameState {
	if fs == nil {
		return nil
	}
	if s, ok := cl.states[fs]; ok {
		return s
	}
	s := &ir.FrameState{Method: fs.Method, BCI: fs.BCI}
	cl.states[fs] = s
	s.Locals = make([]*ir.Node, len(fs.Locals))
	for i, n := range fs.Locals {
		s.Locals[i] = cl.node(n)
	}
	s.Stack = make([]*ir.Node, len(fs.Stack))
	for i, n := range fs.Stack {
		s.Stack[i] = cl.node(n)
	}
	for _, vo := range fs.VirtualObjects {
		nvo := &ir.VirtualObjectState{Object: cl.node(vo.Object), LockDepth: vo.LockDepth}
		for _, v := range vo.Values {
			nvo.Values = append(nvo.Values, cl.node(v))
		}
		s.VirtualObjects = append(s.VirtualObjects, nvo)
	}
	if fs.Outer != nil {
		s.Outer = cl.state(fs.Outer)
	} else {
		s.Outer = cl.outer
	}
	return s
}
