package bench

import "encoding/json"

// SuiteResult is one suite's Table 1 block in machine-readable form.
type SuiteResult struct {
	Suite string `json:"suite"`
	Mode  string `json:"mode"`
	Rows  []Row  `json:"rows"`
	// Average percentage deltas over the rows (the paper's "average"
	// line).
	AvgMBDelta     float64 `json:"avg_mb_delta"`
	AvgAllocsDelta float64 `json:"avg_allocs_delta"`
	AvgSpeedup     float64 `json:"avg_speedup"`
}

// ReportConfig echoes the measurement configuration into the report.
type ReportConfig struct {
	Warmup     int  `json:"warmup"`
	Iters      int  `json:"iters"`
	Jobs       int  `json:"jobs"`
	Async      bool `json:"jit_async"`
	JITWorkers int  `json:"jit_workers,omitempty"`
	Speculate  bool `json:"speculate"`
}

// CacheSummary is the aggregate compiled-code cache outcome of a report.
type CacheSummary struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Report is the peabench JSON artifact: every measured suite plus the
// aggregate compiled-code-cache result of the shared artifact store.
type Report struct {
	Config    ReportConfig  `json:"config"`
	Suites    []SuiteResult `json:"suites"`
	CodeCache CacheSummary  `json:"code_cache"`
}

// NewSuiteResult assembles one suite block with its averages.
func NewSuiteResult(suite, mode string, rows []Row) SuiteResult {
	mb, allocs, speed := Averages(rows)
	return SuiteResult{
		Suite:          suite,
		Mode:           mode,
		Rows:           rows,
		AvgMBDelta:     mb,
		AvgAllocsDelta: allocs,
		AvgSpeedup:     speed,
	}
}

// JSON renders the report indented for committing next to experiment docs.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
