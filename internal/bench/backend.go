package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"pea/internal/mj"
	"pea/internal/rt"
	"pea/internal/vm"
)

// BackendCell is one executor's measurement of one workload.
type BackendCell struct {
	// WallNSPerOp is measured wall-clock nanoseconds per iteration.
	WallNSPerOp float64 `json:"wall_ns_per_op"`
	// AllocsPerOp is Go-heap allocations per iteration (executor
	// overhead, not guest allocations).
	AllocsPerOp float64 `json:"allocs_per_op"`
	// ItersPerMin is the modeled-cycle throughput (only the interpreter
	// and the oracle backend charge cycles; 0 for closure, which has no
	// cost model).
	ItersPerMin float64 `json:"modeled_iters_per_min,omitempty"`
	// GuestKAllocs is guest allocations per iteration in thousands —
	// the heap effect that must be identical across backends.
	GuestKAllocs float64 `json:"guest_kallocs_per_iter"`
}

// BackendRow compares the interpreter, the oracle backend, and the closure
// backend on one workload (all compiled configurations run EAPartial).
type BackendRow struct {
	Workload string      `json:"workload"`
	Suite    string      `json:"suite,omitempty"`
	Interp   BackendCell `json:"interp"`
	Oracle   BackendCell `json:"oracle"`
	Closure  BackendCell `json:"closure"`
	// ClosureVsOracle and ClosureVsInterp are wall-clock speedups (>1 =
	// closure faster).
	ClosureVsOracle float64 `json:"closure_vs_oracle"`
	ClosureVsInterp float64 `json:"closure_vs_interp"`
}

// BackendReport is the committed artifact of the backend experiment.
type BackendReport struct {
	Config ReportConfig `json:"config"`
	Rows   []BackendRow `json:"rows"`
	// OSR is the hot-loop row: one 100k-iteration invocation, compiled
	// code entered mid-loop via on-stack replacement.
	OSR BackendRow `json:"osr_hot_loop"`
}

// JSON renders the report with stable indentation for committing.
func (r BackendReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// cell converts a Measure result into the experiment's cell shape.
func cell(m Metrics) BackendCell {
	return BackendCell{
		WallNSPerOp:  m.WallNSPerOp,
		AllocsPerOp:  m.GoAllocsPerOp,
		ItersPerMin:  m.ItersPerMin,
		GuestKAllocs: m.KAllocsPerIter,
	}
}

// speedup returns base/new (how many times faster new is), 0 if undefined.
func speedup(base, new float64) float64 {
	if new <= 0 {
		return 0
	}
	return base / new
}

// RunBackendExperiment measures every Table-1 workload under three
// executors — the interpreter, the oracle backend, and the closure backend
// (compiled configurations at EAPartial) — and the OSR hot loop. Beyond
// timing, it is a differential check: the guest-visible heap effects of the
// two compiled backends must match exactly, or the experiment fails.
func RunBackendExperiment(rc RunConfig) (BackendReport, error) {
	report := BackendReport{Config: ReportConfig{
		Warmup: rc.Warmup, Iters: rc.Iters, Jobs: rc.Jobs,
		Async: rc.Async, JITWorkers: rc.JITWorkers,
	}}
	for _, w := range Suites() {
		row := BackendRow{Workload: w.Name, Suite: w.Suite}

		ic := rc
		ic.Mode = vm.EAOff
		ic.Interpret = true
		im, err := Measure(w, ic)
		if err != nil {
			return report, fmt.Errorf("interp %s: %w", w.Name, err)
		}
		row.Interp = cell(im)

		oc := rc
		oc.Mode = vm.EAPartial
		oc.Backend = vm.BackendOracle
		om, err := Measure(w, oc)
		if err != nil {
			return report, fmt.Errorf("oracle %s: %w", w.Name, err)
		}
		row.Oracle = cell(om)

		cc := rc
		cc.Mode = vm.EAPartial
		cc.Backend = vm.BackendClosure
		cm, err := Measure(w, cc)
		if err != nil {
			return report, fmt.Errorf("closure %s: %w", w.Name, err)
		}
		row.Closure = cell(cm)

		// Cross-backend heap-effect check: same graphs, same guest
		// behavior — any divergence is a lowering bug.
		if cm.KAllocsPerIter != om.KAllocsPerIter || cm.MBPerIter != om.MBPerIter ||
			cm.MonOpsPerIter != om.MonOpsPerIter {
			return report, fmt.Errorf(
				"%s: closure heap effects diverge from oracle (allocs %v vs %v, MB %v vs %v, monitors %v vs %v)",
				w.Name, cm.KAllocsPerIter, om.KAllocsPerIter,
				cm.MBPerIter, om.MBPerIter, cm.MonOpsPerIter, om.MonOpsPerIter)
		}

		row.ClosureVsOracle = speedup(row.Oracle.WallNSPerOp, row.Closure.WallNSPerOp)
		row.ClosureVsInterp = speedup(row.Interp.WallNSPerOp, row.Closure.WallNSPerOp)
		report.Rows = append(report.Rows, row)
	}

	osr, err := runOSRBackendRow()
	if err != nil {
		return report, err
	}
	report.OSR = osr
	return report, nil
}

// runOSRBackendRow measures the OSR hot loop (one long invocation; compiled
// code only reachable mid-loop) under the three executors.
func runOSRBackendRow() (BackendRow, error) {
	cfg := DefaultOSRConfig
	row := BackendRow{Workload: "osr-hot-loop"}

	run := func(opts vm.Options) (BackendCell, int64, error) {
		p, err := mj.Compile(osrLoopSrc, "Main.main")
		if err != nil {
			return BackendCell{}, 0, err
		}
		opts.MaxSteps = 2_000_000_000
		machine := vm.New(p, opts)
		defer machine.Close()
		hot := p.ClassByName("Main").MethodByName("hot")
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		v, err := machine.Call(hot, []rt.Value{rt.IntValue(int64(cfg.Iterations))})
		wall := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return BackendCell{}, 0, err
		}
		machine.DrainJIT()
		for m, cerr := range machine.FailedCompilations() {
			return BackendCell{}, 0, fmt.Errorf("compiling %s: %w", m.QualifiedName(), cerr)
		}
		return BackendCell{
			WallNSPerOp:  float64(wall.Nanoseconds()),
			AllocsPerOp:  float64(ms1.Mallocs - ms0.Mallocs),
			GuestKAllocs: float64(machine.Env.Stats.Allocations) / 1000,
		}, v.I, nil
	}

	im, ichk, err := run(vm.Options{Interpret: true})
	if err != nil {
		return row, fmt.Errorf("osr interp: %w", err)
	}
	om, ochk, err := run(vm.Options{
		EA: cfg.Mode, Backend: vm.BackendOracle,
		CompileThreshold: 1 << 30, OSRThreshold: cfg.Threshold,
	})
	if err != nil {
		return row, fmt.Errorf("osr oracle: %w", err)
	}
	cm, cchk, err := run(vm.Options{
		EA: cfg.Mode, Backend: vm.BackendClosure,
		CompileThreshold: 1 << 30, OSRThreshold: cfg.Threshold,
	})
	if err != nil {
		return row, fmt.Errorf("osr closure: %w", err)
	}
	if ichk != ochk || ichk != cchk {
		return row, fmt.Errorf("osr checksums diverge: interp %d, oracle %d, closure %d", ichk, ochk, cchk)
	}
	if om.GuestKAllocs != cm.GuestKAllocs {
		return row, fmt.Errorf("osr guest allocations diverge: oracle %v, closure %v",
			om.GuestKAllocs, cm.GuestKAllocs)
	}
	row.Interp, row.Oracle, row.Closure = im, om, cm
	row.ClosureVsOracle = speedup(om.WallNSPerOp, cm.WallNSPerOp)
	row.ClosureVsInterp = speedup(im.WallNSPerOp, cm.WallNSPerOp)
	return row, nil
}

// FormatBackendTable renders the experiment as a fixed-width table.
func FormatBackendTable(r BackendReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Execution backends (wall-clock per iteration, EAPartial; interp/oracle/closure)\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %14s %10s %10s\n",
		"benchmark", "interp ns", "oracle ns", "closure ns", "vs oracle", "vs interp")
	rows := append(append([]BackendRow(nil), r.Rows...), r.OSR)
	for _, row := range rows {
		fmt.Fprintf(&b, "%-14s %14.0f %14.0f %14.0f %9.2fx %9.2fx\n",
			row.Workload, row.Interp.WallNSPerOp, row.Oracle.WallNSPerOp,
			row.Closure.WallNSPerOp, row.ClosureVsOracle, row.ClosureVsInterp)
	}
	return b.String()
}
