package bench

import (
	"encoding/json"
	"fmt"

	"pea/internal/mj"
	"pea/internal/rt"
	"pea/internal/vm"
)

// osrLoopSrc is the hot-loop experiment: one invocation of Main.hot runs
// the whole workload, so without on-stack replacement the method can never
// tier up — invocation-counting JITs only compile at call boundaries. Each
// iteration allocates a Pair that never escapes (scalar-replaceable under
// PEA) and folds its fields into the running checksum.
const osrLoopSrc = `
class Pair {
	int a;
	int b;
	Pair(int a, int b) { this.a = a; this.b = b; }
	int mix() { return a * 31 + b; }
}
class Main {
	static int hot(int n) {
		int acc = 0;
		int i = 0;
		while (i < n) {
			Pair p = new Pair(i, acc);
			acc = p.mix() % 65536;
			i = i + 1;
		}
		return acc;
	}
	static void main() { print(hot(100000)); }
}
`

// OSRConfig parameterizes the hot-loop experiment.
type OSRConfig struct {
	// Iterations is the loop trip count inside the single invocation.
	Iterations int `json:"iterations"`
	// Threshold is the back-edge count that triggers OSR.
	Threshold int64 `json:"osr_threshold"`
	// Mode is the escape-analysis configuration of the OSR compile.
	Mode vm.EAMode `json:"-"`
}

// DefaultOSRConfig is the committed experiment configuration: a single
// 100k-iteration call with OSR firing after 1000 back edges.
var DefaultOSRConfig = OSRConfig{Iterations: 100_000, Threshold: 1000, Mode: vm.EAPartial}

// OSRRun is one execution mode's measurement within the experiment.
type OSRRun struct {
	Cycles      int64 `json:"cycles"`
	Allocations int64 `json:"allocations"`
	OSRRequests int64 `json:"osr_requests,omitempty"`
	OSREntries  int64 `json:"osr_entries,omitempty"`
	OSRCompiles int64 `json:"osr_compiles,omitempty"`
}

// OSRResult compares interpreter-only execution of the hot loop against the
// same run with on-stack replacement enabled.
type OSRResult struct {
	Config  OSRConfig `json:"config"`
	Mode    string    `json:"mode"`
	Interp  OSRRun    `json:"interp"`
	OSR     OSRRun    `json:"osr"`
	Speedup float64   `json:"speedup"`
	// Checksum is the loop result, identical across modes by the
	// differential oracle.
	Checksum int64 `json:"checksum"`
}

// JSON renders the result with stable indentation for committing.
func (r OSRResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// RunOSRExperiment measures the hot-loop workload twice — interpreter-only
// and with OSR enabled — and reports the modeled-cycle speedup. The
// compile threshold is set unreachably high in the OSR run, so every cycle
// saved is attributable to entering compiled code mid-invocation.
func RunOSRExperiment(cfg OSRConfig) (OSRResult, error) {
	if cfg.Iterations <= 0 {
		cfg = DefaultOSRConfig
	}
	iterations := int64(cfg.Iterations)

	run := func(opts vm.Options) (OSRRun, int64, error) {
		p, err := mj.Compile(osrLoopSrc, "Main.main")
		if err != nil {
			return OSRRun{}, 0, err
		}
		machine := vm.New(p, opts)
		defer machine.Close()
		hot := p.ClassByName("Main").MethodByName("hot")
		v, err := machine.Call(hot, []rt.Value{rt.IntValue(iterations)})
		if err != nil {
			return OSRRun{}, 0, err
		}
		machine.DrainJIT()
		for m, cerr := range machine.FailedCompilations() {
			return OSRRun{}, 0, fmt.Errorf("compiling %s: %w", m.QualifiedName(), cerr)
		}
		st := machine.Stats()
		return OSRRun{
			Cycles:      machine.Env.Cycles,
			Allocations: machine.Env.Stats.Allocations,
			OSRRequests: st.OSRRequests,
			OSREntries:  st.OSREntries,
			OSRCompiles: st.OSRCompilations,
		}, v.I, nil
	}

	interp, ichk, err := run(vm.Options{Interpret: true, MaxSteps: 2_000_000_000})
	if err != nil {
		return OSRResult{}, err
	}
	osr, ochk, err := run(vm.Options{
		EA:               cfg.Mode,
		CompileThreshold: 1 << 30, // never at call boundaries: OSR or nothing
		OSRThreshold:     cfg.Threshold,
		MaxSteps:         2_000_000_000,
	})
	if err != nil {
		return OSRResult{}, err
	}
	if ichk != ochk {
		return OSRResult{}, fmt.Errorf("osr checksum %d != interpreter checksum %d", ochk, ichk)
	}
	res := OSRResult{
		Config:   cfg,
		Mode:     cfg.Mode.String(),
		Interp:   interp,
		OSR:      osr,
		Checksum: ichk,
	}
	if osr.Cycles > 0 {
		res.Speedup = float64(interp.Cycles) / float64(osr.Cycles)
	}
	return res, nil
}
