// Package bench reproduces the paper's evaluation (§6): for every
// benchmark row of Table 1 — the DaCapo and ScalaDaCapo suites and
// SPECjbb2005 — it provides a synthetic MiniJava workload whose allocation
// and locking *structure* models the behaviour the paper reports for that
// benchmark, and a harness that runs each workload under the JIT with and
// without (Partial) Escape Analysis, measuring exactly what the paper
// measures: MB allocated per iteration, millions of allocations per
// iteration, monitor operations, and iterations per minute (from the
// deterministic cycle model).
//
// The real benchmarks are large proprietary Java programs that cannot run
// on this VM; what the paper's claims depend on is the *distribution* of
// object lifetimes — how many allocations are method-local temporaries,
// how many escape on rare paths only, how many truly escape, and how much
// of the heap is array data that escape analysis cannot touch. Those
// fractions are the knobs of WorkloadSpec, set per benchmark from the
// paper's own Table 1 characterization. The optimizations themselves are
// never simulated: the numbers come out of the actual compiler pipeline
// running the generated programs.
package bench

import (
	"fmt"
	"strings"
)

// WorkloadSpec parameterizes one synthetic benchmark.
type WorkloadSpec struct {
	// Name is the benchmark row name from Table 1.
	Name string
	// Suite is "dacapo", "scaladacapo", or "specjbb".
	Suite string

	// Ops is the number of inner operations per benchmark iteration.
	Ops int

	// TempPct is the percentage of operations that allocate method-local
	// temporaries (fully removable by any escape analysis once inlined).
	TempPct int
	// Depth is the number of chained temporaries per such operation —
	// the "additional levels of abstraction" (paper abstract) that make
	// Scala-compiled code so allocation-heavy.
	Depth int

	// PartialPct is the percentage of operations allocating an object
	// that escapes only on a slow path taken with EscapeProb/1000
	// probability (the paper's core pattern; invisible to
	// flow-insensitive EA, removed on the fast path by PEA).
	PartialPct int
	// EscapeProbPermille is the slow-path probability in 1/1000 units.
	EscapeProbPermille int
	// PartialSites spreads PartialPct over this many distinct code
	// sites (default 1); more sites mean more materialization paths and
	// larger compiled code after PEA.
	PartialSites int

	// GlobalPct is the percentage of operations allocating objects that
	// always escape into a global store (no analysis can remove them).
	GlobalPct int

	// ArrayLen, when non-zero, makes every global-escape operation also
	// allocate an int[ArrayLen] buffer that escapes. Arrays dominate
	// allocated bytes; this models the paper's observation that "the
	// relative decrease in the number of allocations is usually higher
	// than the decrease in the number of allocated bytes, since the
	// allocations not removed ... often contain large arrays".
	ArrayLen int

	// SyncTempPct is the percentage of operations that lock a
	// non-escaping object (elidable by EA/PEA).
	SyncTempPct int
	// SyncGlobalPct is the percentage of operations that lock a global
	// object (never elidable).
	SyncGlobalPct int

	// WorkLoops adds WorkLoops iterations of plain integer work per
	// operation, diluting the share of run time that allocation is
	// responsible for (benchmarks with low speedups spend their time
	// computing, not allocating).
	WorkLoops int

	// Polymorphic makes the temp-consuming call site dispatch over two
	// receiver classes, defeating inlining-based devirtualization and
	// therefore the escape analyses that need inlined bodies — used for
	// the benchmarks the paper lists as "no significant change".
	Polymorphic bool
}

// Source generates the MiniJava program for the spec. The program exposes
// Bench.iteration(), performing Ops operations per call, and Bench.setup()
// run once.
func (w *WorkloadSpec) Source() string {
	var b strings.Builder
	fmt.Fprintf(&b, `
// Synthetic workload %q (%s suite).
class Tmp {
	int v;
	Tmp next;
	Tmp(int v, Tmp next) { this.v = v; this.next = next; }
	int get() { return v; }
}
class Shape {
	int scale;
	int eval(Tmp t) { return t.v * scale; }
}
class Shape2 extends Shape {
	int eval(Tmp t) { return t.v + scale; }
}
class Store {
	static Tmp[] ring;
	static int[] buf;
	static int idx;
	static Tmp lock;
	static Shape s1;
	static Shape s2;
	static void setup() {
		ring = new Tmp[64];
		lock = new Tmp(0, null);
		s1 = new Shape();
		s1.scale = 3;
		s2 = new Shape2();
		s2.scale = 5;
	}
}
class Bench {
`, w.Name, w.Suite)

	// op: one operation; the bands below partition [0,100) by op index.
	b.WriteString("\tstatic int op(int i) {\n")
	b.WriteString("\t\tint acc = i;\n")
	b.WriteString("\t\tint band = i % 100;\n")

	lo := 0
	band := func(pct int, body func()) {
		if pct <= 0 {
			return
		}
		hi := lo + pct
		fmt.Fprintf(&b, "\t\tif (band >= %d && band < %d) {\n", lo, hi)
		body()
		b.WriteString("\t\t}\n")
		lo = hi
	}

	band(w.TempPct, func() {
		// A chain of Depth temporaries, each consumed immediately;
		// after inlining of get(), PEA (and EA) scalar-replace all of
		// them.
		b.WriteString("\t\t\tTmp t = new Tmp(i, null);\n")
		for d := 0; d < w.Depth; d++ {
			b.WriteString("\t\t\tt = new Tmp(t.get() + 1, null);\n")
		}
		b.WriteString("\t\t\tacc = acc + t.get();\n")
	})
	// The partial band is split into PartialSites distinct code copies:
	// the dynamic behaviour is unchanged, but each site carries its own
	// materialization path after PEA, modeling the code growth the paper
	// blames for the jython regression ("Partial Escape Analysis can in
	// rare cases increase the size of compiled methods").
	sites := w.PartialSites
	if sites <= 0 {
		sites = 1
	}
	per := w.PartialPct / sites
	rem := w.PartialPct - per*sites
	for sIdx := 0; sIdx < sites; sIdx++ {
		p := per
		if sIdx == 0 {
			p += rem
		}
		band(p, func() {
			fmt.Fprintf(&b, `			Tmp p = new Tmp(i * 3, null);
			if (rand(1000) < %d) {
				Store.ring[Store.idx %% 64] = p;
				Store.idx = Store.idx + 1;
				acc = acc + p.get() * 2;
			} else {
				acc = acc + p.get();
			}
`, w.EscapeProbPermille)
		})
	}
	band(w.GlobalPct, func() {
		b.WriteString("\t\t\tTmp g = new Tmp(i, null);\n")
		b.WriteString("\t\t\tStore.ring[Store.idx % 64] = g;\n")
		b.WriteString("\t\t\tStore.idx = Store.idx + 1;\n")
		if w.ArrayLen > 0 {
			fmt.Fprintf(&b, "\t\t\tStore.buf = new int[%d];\n", w.ArrayLen)
			b.WriteString("\t\t\tStore.buf[i % ")
			fmt.Fprintf(&b, "%d] = i;\n", w.ArrayLen)
			b.WriteString("\t\t\tacc = acc + Store.buf[0];\n")
		}
		b.WriteString("\t\t\tacc = acc + g.get();\n")
	})
	band(w.SyncTempPct, func() {
		// Lock a freshly allocated, non-escaping object: both the
		// allocation and the monitor pair disappear under EA/PEA.
		b.WriteString("\t\t\tTmp m = new Tmp(i, null);\n")
		b.WriteString("\t\t\tsynchronized (m) { acc = acc + m.get(); }\n")
	})
	band(w.SyncGlobalPct, func() {
		b.WriteString("\t\t\tsynchronized (Store.lock) { acc = acc + 1; }\n")
	})
	if w.Polymorphic {
		// Alternating receivers defeat CHA and profile-based
		// devirtualization; the temp passed to eval escapes as a call
		// argument, so no escape analysis can remove it.
		b.WriteString(`		Shape sh = Store.s1;
		if (i % 2 == 0) { sh = Store.s2; }
		Tmp arg = new Tmp(i, null);
		acc = acc + sh.eval(arg);
`)
	}
	if w.WorkLoops > 0 {
		fmt.Fprintf(&b, `		int wk = 0;
		for (int k = 0; k < %d; k++) { wk = wk * 31 + (k ^ acc); }
		acc = acc + (wk & 255);
`, w.WorkLoops)
	}
	b.WriteString("\t\treturn acc;\n\t}\n")

	fmt.Fprintf(&b, `
	static int iteration() {
		int acc = 0;
		for (int i = 0; i < %d; i++) {
			acc = acc + op(i);
		}
		return acc;
	}
}
class Main {
	static void main() {
		Store.setup();
		print(Bench.iteration());
	}
}
`, w.Ops)
	return b.String()
}
