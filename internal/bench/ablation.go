package bench

import (
	"fmt"
	"strings"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/cost"
	"pea/internal/ea"
	"pea/internal/exec"
	"pea/internal/ir"
	"pea/internal/mj"
	"pea/internal/opt"
	"pea/internal/pea"
	"pea/internal/rt"
	"pea/internal/summary"
)

// Ablation quantifies the design choices DESIGN.md calls out, on the
// paper's running example and representative workloads:
//
//   - full:        Partial Escape Analysis as in the paper;
//   - summaries:   PEA plus inter-procedural callee escape summaries
//     (arguments proven unobserved by non-inlined callees stay virtual);
//   - no-liveness: without the Figure 6a rule (objects never leave the
//     state at merges, so mixed merges always materialize);
//   - no-arrays:   without array virtualization;
//   - ea:          the flow-insensitive equi-escape-sets baseline;
//   - none:        no escape analysis.
type AblationVariant struct {
	Name      string
	Conf      pea.Config
	UseEA     bool // run the ea baseline instead of pea
	Disable   bool // run no analysis at all
	Summaries bool // consult whole-program callee summaries at call sites
}

// AblationVariants returns the standard variant set.
func AblationVariants() []AblationVariant {
	return []AblationVariant{
		{Name: "full"},
		{Name: "summaries", Summaries: true},
		{Name: "no-liveness", Conf: pea.Config{DisableAliasLiveness: true}},
		{Name: "no-arrays", Conf: pea.Config{DisableArrays: true}},
		{Name: "ea", UseEA: true},
		{Name: "none", Disable: true},
	}
}

// AblationResult is one (program, variant) measurement.
type AblationResult struct {
	Program string
	Variant string
	Allocs  int64
	Bytes   int64
	MonOps  int64
	Cycles  int64
}

// ablationProgram is one subject program for the ablation study.
type ablationProgram struct {
	name   string
	source string
	entry  string // Class.method, int-returning, one int parameter
	arg    int64
	calls  int
}

func ablationPrograms() []ablationProgram {
	return []ablationProgram{
		{
			// The paper's running example: the liveness rule is what
			// keeps the cache-hit path allocation-free once getValue is
			// inlined into a caller that merges the branches.
			name: "cachekey",
			source: `
class Key {
	int idx;
	Key(int idx) { this.idx = idx; }
	boolean equalsKey(Key other) {
		synchronized (this) { return other != null && idx == other.idx; }
	}
}
class Cache { static Key cacheKey; static int cacheValue; }
class Main {
	static int getValue(int idx) {
		Key key = new Key(idx);
		if (key.equalsKey(Cache.cacheKey)) { return Cache.cacheValue; }
		Cache.cacheKey = key;
		Cache.cacheValue = idx * 31;
		return Cache.cacheValue;
	}
	static int run(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) { s += getValue(i / 16); }
		return s;
	}
	static void main() { print(run(100)); }
}`,
			entry: "Main.run", arg: 400, calls: 3,
		},
		{
			// Constant-length array temporaries: the array-virtualization
			// switch is what removes them.
			name: "smallbuffers",
			source: `
class Main {
	static int run(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) {
			int[] b = new int[4];
			b[0] = i;
			b[1] = i * 2;
			b[2] = b[0] + b[1];
			b[3] = b[2] - i;
			s += b[3];
		}
		return s;
	}
	static void main() { print(run(10)); }
}`,
			entry: "Main.run", arg: 500, calls: 3,
		},
		{
			// A callee far past the inliner's code budget that never
			// observes its ref parameter: only the summaries variant can
			// keep the caller's Point virtual across the out-of-line call.
			name: "callheavy",
			source: `
class Point { int x; int y; Point(int x, int y) { this.x = x; this.y = y; } }
class Main {
	static int mix(Point p, int a) {
		int s = a;
		s = s + 1; s = s + 2; s = s + 3; s = s + 4; s = s + 5;
		s = s + 6; s = s + 7; s = s + 8; s = s + 9; s = s + 10;
		s = s * 3; s = s - 7; s = s + 11; s = s + 12; s = s + 13;
		s = s + 14; s = s + 15; s = s + 16; s = s + 17; s = s + 18;
		s = s + 19; s = s + 20; s = s + 21; s = s + 22; s = s + 23;
		s = s + 24; s = s + 25; s = s + 26; s = s + 27; s = s + 28;
		return s;
	}
	static int run(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) {
			Point p = new Point(i, i * 2);
			s += mix(p, i) + p.x + p.y;
		}
		return s;
	}
	static void main() { print(run(10)); }
}`,
			entry: "Main.run", arg: 400, calls: 3,
		},
		{
			// Deep temporary chains (the factorie pattern): every
			// variant with scalar replacement wins here; "none" shows
			// the full cost.
			name: "tempchain",
			source: `
class Box { int v; Box(int v) { this.v = v; } int get() { return v; } }
class Main {
	static int run(int n) {
		int s = 0;
		for (int i = 0; i < n; i++) {
			Box a = new Box(i);
			Box b = new Box(a.get() + 1);
			Box c = new Box(b.get() * 2);
			s += c.get();
		}
		return s;
	}
	static void main() { print(run(10)); }
}`,
			entry: "Main.run", arg: 500, calls: 3,
		},
	}
}

// RunAblation measures every (program, variant) pair. The compilation
// pipeline is identical across variants except for the analysis stage.
func RunAblation() ([]AblationResult, error) {
	var out []AblationResult
	for _, ap := range ablationPrograms() {
		prog, err := mj.Compile(ap.source, "Main.main")
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", ap.name, err)
		}
		dot := strings.LastIndex(ap.entry, ".")
		m := prog.ClassByName(ap.entry[:dot]).MethodByName(ap.entry[dot+1:])
		var sums *summary.Set // computed once per program, on demand
		for _, v := range AblationVariants() {
			g, err := build.Build(m)
			if err != nil {
				return nil, err
			}
			conf := v.Conf
			inl := &opt.Inliner{BuildGraph: build.Build, Program: prog}
			if v.Summaries {
				if sums == nil {
					sums = summary.Compute(prog, summary.Options{})
				}
				conf.CalleeNoEscape = sums.ArgSafe
				inl.Summaries = sums
			}
			pipe := &opt.Pipeline{Phases: []opt.Phase{
				inl,
				opt.Canonicalize{}, opt.SimplifyCFG{}, opt.GVN{}, opt.DCE{},
			}}
			if err := pipe.Run(g); err != nil {
				return nil, err
			}
			switch {
			case v.Disable:
			case v.UseEA:
				if _, err := ea.Run(g, conf); err != nil {
					return nil, err
				}
			default:
				if _, err := pea.Run(g, conf); err != nil {
					return nil, err
				}
			}
			if err := ir.Verify(g); err != nil {
				return nil, fmt.Errorf("ablation %s/%s: %w", ap.name, v.Name, err)
			}
			post := opt.Standard()
			if err := post.Run(g); err != nil {
				return nil, err
			}
			g.CodeCycles = int64(g.NumNodes()) / 3

			env := rt.NewEnv(prog, 7)
			eng := &exec.Engine{Env: env, MaxSteps: 200_000_000}
			eng.Invoke = func(callee *bc.Method, args []rt.Value) (rt.Value, error) {
				cg, err := build.Build(callee)
				if err != nil {
					return rt.Value{}, err
				}
				return eng.Run(cg, args)
			}
			for c := 0; c < ap.calls; c++ {
				if _, err := eng.Run(g, []rt.Value{rt.IntValue(ap.arg)}); err != nil {
					return nil, fmt.Errorf("ablation %s/%s: %w", ap.name, v.Name, err)
				}
			}
			out = append(out, AblationResult{
				Program: ap.name,
				Variant: v.Name,
				Allocs:  env.Stats.Allocations,
				Bytes:   env.Stats.AllocatedBytes,
				MonOps:  env.Stats.MonitorOps,
				Cycles:  env.Cycles,
			})
		}
	}
	return out, nil
}

// FormatAblation renders the study as a table, one block per program.
func FormatAblation(rs []AblationResult) string {
	var b strings.Builder
	b.WriteString("Ablation study: contribution of individual PEA design choices\n")
	cur := ""
	for _, r := range rs {
		if r.Program != cur {
			cur = r.Program
			fmt.Fprintf(&b, "\n%s\n%-14s %10s %10s %8s %12s %14s\n",
				cur, "variant", "allocs", "bytes", "monops", "cycles", "iters/min")
		}
		ipm := 0.0
		if r.Cycles > 0 {
			ipm = cost.CyclesPerMinute / float64(r.Cycles)
		}
		fmt.Fprintf(&b, "%-14s %10d %10d %8d %12d %14.0f\n",
			r.Variant, r.Allocs, r.Bytes, r.MonOps, r.Cycles, ipm)
	}
	return b.String()
}
