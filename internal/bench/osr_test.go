package bench

import "testing"

// TestOSRExperimentSpeedup is the PR's acceptance benchmark: a single
// 100k-iteration invocation must enter compiled code through OSR and run at
// least 2x faster (modeled cycles) than the interpreter, which never gets a
// call-boundary compile opportunity.
func TestOSRExperimentSpeedup(t *testing.T) {
	res, err := RunOSRExperiment(DefaultOSRConfig)
	if err != nil {
		t.Fatal(err)
	}
	if res.OSR.OSREntries < 1 {
		t.Fatalf("osr entries = %d, want >= 1", res.OSR.OSREntries)
	}
	if res.OSR.OSRCompiles < 1 {
		t.Fatalf("osr compiles = %d, want >= 1", res.OSR.OSRCompiles)
	}
	if res.Speedup < 2.0 {
		t.Fatalf("speedup = %.2fx (interp %d cycles, osr %d cycles), want >= 2x",
			res.Speedup, res.Interp.Cycles, res.OSR.Cycles)
	}
	// The per-iteration Pair never escapes: the compiled loop body must
	// scalar-replace it, so the OSR run allocates far less than one
	// object per iteration.
	if res.OSR.Allocations >= res.Interp.Allocations/2 {
		t.Fatalf("osr allocations = %d (interp %d): loop allocation survived",
			res.OSR.Allocations, res.Interp.Allocations)
	}
}
