package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// LoadSource is the default tenant workload for the peaserve load harness:
// enough allocation, partial escape, and call depth that the JIT has real
// work per method, small enough that one request is dominated by
// compile-or-replay cost — which is what the harness measures.
const LoadSource = `
class Vec {
	int x;
	int y;
	Vec(int x, int y) {
		this.x = x;
		this.y = y;
	}
	Vec plus(Vec o) {
		return new Vec(this.x + o.x, this.y + o.y);
	}
	int norm1() {
		int ax = this.x;
		if (ax < 0) { ax = 0 - ax; }
		int ay = this.y;
		if (ay < 0) { ay = 0 - ay; }
		return ax + ay;
	}
}
class Main {
	static Vec leak;
	static int step(int i) {
		Vec a = new Vec(i, 0 - i);
		Vec b = new Vec(1, 2);
		Vec c = a.plus(b);
		if (i % 31 == 0) {
			Main.leak = c;
		}
		return c.norm1();
	}
	static void main() {
		int acc = 0;
		int i = 0;
		while (i < 400) {
			acc = acc + Main.step(i);
			i = i + 1;
		}
		print(acc);
	}
}
`

// LoadOptions configures one load run against a live peaserve instance.
type LoadOptions struct {
	// URL is the server base URL (e.g. "http://127.0.0.1:8377").
	URL string
	// Tenants is the number of concurrent tenant goroutines (default 8).
	Tenants int
	// Requests is how many /run requests each tenant issues (default 4).
	Requests int
	// Runs is the per-request Main.main run count (default 3: first run
	// warms the JIT, later runs execute compiled code).
	Runs int
	// Source overrides the tenant program (default LoadSource).
	Source string
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
}

func (o LoadOptions) tenants() int {
	if o.Tenants > 0 {
		return o.Tenants
	}
	return 8
}

func (o LoadOptions) requests() int {
	if o.Requests > 0 {
		return o.Requests
	}
	return 4
}

func (o LoadOptions) runs() int {
	if o.Runs > 0 {
		return o.Runs
	}
	return 3
}

func (o LoadOptions) source() string {
	if o.Source != "" {
		return o.Source
	}
	return LoadSource
}

func (o LoadOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// LoadReport is the committed output format of the load harness.
type LoadReport struct {
	Tenants  int `json:"tenants"`
	Requests int `json:"requests"` // total across tenants
	Errors   int `json:"errors"`

	// Request latency percentiles, milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`

	WallMs float64 `json:"wall_ms"` // whole load run

	// Server-side cache effectiveness over both tiers, from /stats.
	HitRate          float64 `json:"hit_rate"`
	CacheHits        int64   `json:"cache_hits"`
	DiskHits         int64   `json:"disk_hits"`
	PipelineCompiles int64   `json:"pipeline_compiles"`
	StoreArtifacts   int     `json:"store_artifacts"`

	// FirstError preserves one failure for the report reader (counting
	// alone buries the reason).
	FirstError string `json:"first_error,omitempty"`
}

// serverStats mirrors the fields RunLoad consumes from GET /stats (kept
// local so internal/bench does not import internal/serve: the harness
// drives any live server, in-process or another process entirely).
type serverStats struct {
	Broker struct {
		CacheHits int64 `json:"CacheHits"`
		DiskHits  int64 `json:"DiskHits"`
		Compiled  int64 `json:"Compiled"`
	} `json:"broker"`
	HitRate        float64 `json:"hit_rate"`
	StoreArtifacts int     `json:"store_artifacts"`
}

// RunLoad drives a live peaserve with N concurrent tenants and reports
// request latency percentiles plus the server's cache effectiveness. It is
// the measurement half of the warm-restart story: run it once against a
// fresh store (compiles happen), restart the server, run it again — the
// second report's PipelineCompiles should be ~0 and its HitRate ~1.
func RunLoad(o LoadOptions) (LoadReport, error) {
	body, err := json.Marshal(map[string]any{"source": o.source(), "runs": o.runs()})
	if err != nil {
		return LoadReport{}, err
	}
	client := o.client()
	nTenants, nReq := o.tenants(), o.requests()

	type result struct {
		latency time.Duration
		err     error
	}
	results := make([]result, nTenants*nReq)
	var wg sync.WaitGroup
	start := time.Now()
	for tnt := 0; tnt < nTenants; tnt++ {
		tnt := tnt
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < nReq; r++ {
				t0 := time.Now()
				err := postRun(client, o.URL, body)
				results[tnt*nReq+r] = result{latency: time.Since(t0), err: err}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep := LoadReport{
		Tenants:  nTenants,
		Requests: nTenants * nReq,
		WallMs:   float64(wall.Nanoseconds()) / 1e6,
	}
	lat := make([]time.Duration, 0, len(results))
	for _, r := range results {
		if r.err != nil {
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = r.err.Error()
			}
			continue
		}
		lat = append(lat, r.latency)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.P50Ms = percentileMs(lat, 50)
	rep.P90Ms = percentileMs(lat, 90)
	rep.P99Ms = percentileMs(lat, 99)

	st, err := fetchStats(client, o.URL)
	if err != nil {
		return rep, fmt.Errorf("bench: reading /stats: %w", err)
	}
	rep.HitRate = st.HitRate
	rep.CacheHits = st.Broker.CacheHits
	rep.DiskHits = st.Broker.DiskHits
	rep.PipelineCompiles = st.Broker.Compiled
	rep.StoreArtifacts = st.StoreArtifacts
	return rep, nil
}

func postRun(client *http.Client, baseURL string, body []byte) error {
	resp, err := client.Post(baseURL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/run: %s: %s", resp.Status, bytes.TrimSpace(payload))
	}
	var rr struct {
		Output         []int64 `json:"output"`
		FailedCompiles int     `json:"failed_compiles"`
	}
	if err := json.Unmarshal(payload, &rr); err != nil {
		return fmt.Errorf("/run: undecodable response: %w", err)
	}
	if len(rr.Output) == 0 {
		return fmt.Errorf("/run: tenant program printed nothing")
	}
	if rr.FailedCompiles > 0 {
		return fmt.Errorf("/run: %d compiles failed server-side", rr.FailedCompiles)
	}
	return nil
}

func fetchStats(client *http.Client, baseURL string) (serverStats, error) {
	var st serverStats
	resp, err := client.Get(baseURL + "/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/stats: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// percentileMs returns the p-th percentile of sorted latencies, in
// milliseconds (nearest-rank method; 0 for an empty slice).
func percentileMs(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(sorted[idx].Nanoseconds()) / 1e6
}
