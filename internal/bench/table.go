package bench

import (
	"fmt"
	"strings"
)

// FormatTable1 renders rows in the layout of the paper's Table 1: size and
// number of allocations and performance, without and with the analysis.
// onlyShown hides the DaCapo rows the paper omits (they still enter the
// average).
func FormatTable1(title string, rows []Row, onlyShown bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %28s  %28s  %28s\n", "", "MB / Iteration", "KAllocs / Iteration", "Iterations / Minute")
	fmt.Fprintf(&b, "%-14s %9s %9s %8s  %9s %9s %8s  %9s %9s %8s\n",
		"benchmark", "without", "with", "delta", "without", "with", "delta", "without", "with", "speedup")
	for _, r := range rows {
		if onlyShown && !ShownInTable1(r.Spec.Name) {
			continue
		}
		fmt.Fprintf(&b, "%-14s %9.3f %9.3f %+7.1f%%  %9.2f %9.2f %+7.1f%%  %9.0f %9.0f %+7.1f%%\n",
			r.Spec.Name,
			r.Without.MBPerIter, r.With.MBPerIter, r.MBDelta,
			r.Without.KAllocsPerIter, r.With.KAllocsPerIter, r.AllocsD,
			r.Without.ItersPerMin, r.With.ItersPerMin, r.SpeedupD)
	}
	mb, allocs, speed := Averages(rows)
	fmt.Fprintf(&b, "%-14s %9s %9s %+7.1f%%  %9s %9s %+7.1f%%  %9s %9s %+7.1f%%\n",
		"average", "", "", mb, "", "", allocs, "", "", speed)
	return b.String()
}

// FormatCompilerTable renders the per-benchmark compiler decision
// counters of the measured ("with") configuration — how many methods the
// JIT compiled, how many allocations it virtualized, how many
// materialization sites and elided lock operations it emitted, and how
// long the escape-analysis phase ran — followed by the full metric set as
// one compact JSON object per row (machine-readable column of Table 1).
func FormatCompilerTable(title string, rows []Row, onlyShown bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %8s %6s %6s %6s %6s %8s  %s\n",
		"benchmark", "compiles", "virt", "mat", "locks", "deopts", "ea-ms", "metrics-json")
	for _, r := range rows {
		if onlyShown && !ShownInTable1(r.Spec.Name) {
			continue
		}
		c := r.With.Compiler
		fmt.Fprintf(&b, "%-14s %8d %6d %6d %6d %6d %8.2f  %s\n",
			r.Spec.Name, c.Compiles, c.Virtualized, c.Materialized,
			c.LocksElided, c.Deopts, c.EAMillis(), c.JSON())
	}
	return b.String()
}

// FormatLockTable renders the monitor-operation changes (paper §6.1,
// "Number of Locks": tomcat -4%, SPECjbb2005 -3.8%).
func FormatLockTable(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %12s %8s\n", "benchmark", "mon-ops w/o", "mon-ops w/", "delta")
	for _, r := range rows {
		if r.Without.MonOpsPerIter == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-14s %12.0f %12.0f %+7.1f%%\n",
			r.Spec.Name, r.Without.MonOpsPerIter, r.With.MonOpsPerIter, r.MonOpsD)
	}
	return b.String()
}

// FormatComparison renders the §6.2 experiment.
func FormatComparison(cs []Comparison) string {
	var b strings.Builder
	b.WriteString("Flow-insensitive EA vs Partial Escape Analysis (average speedup, paper section 6.2)\n")
	fmt.Fprintf(&b, "%-14s %14s %14s\n", "suite", "EA speedup", "PEA speedup")
	for _, c := range cs {
		fmt.Fprintf(&b, "%-14s %+13.1f%% %+13.1f%%\n", c.Suite, c.EASpeedup, c.PEASpeedup)
	}
	return b.String()
}
