package bench

import (
	"strings"
	"testing"

	"pea/internal/vm"
)

// runAll measures every suite once under PEA and caches the rows for all
// shape assertions.
var cachedRows map[string][]Row

func allRows(t *testing.T) map[string][]Row {
	t.Helper()
	if cachedRows != nil {
		return cachedRows
	}
	cachedRows = make(map[string][]Row)
	for _, suite := range SuiteNames() {
		rows, err := RunSuite(suite, vm.EAPartial, DefaultRuns)
		if err != nil {
			t.Fatalf("suite %s: %v", suite, err)
		}
		cachedRows[suite] = rows
	}
	return cachedRows
}

func row(t *testing.T, rows map[string][]Row, name string) Row {
	t.Helper()
	for _, rs := range rows {
		for _, r := range rs {
			if r.Spec.Name == name {
				return r
			}
		}
	}
	t.Fatalf("no row %q", name)
	return Row{}
}

// TestTable1Shape asserts the qualitative structure of the paper's Table 1:
// every benchmark's allocation metrics move in the paper's direction, the
// extremes sit on the right benchmarks, and the one regression (jython)
// reproduces.
func TestTable1Shape(t *testing.T) {
	rows := allRows(t)

	for suite, rs := range rows {
		for _, r := range rs {
			p := PaperTable1[r.Spec.Name]
			// Allocation metrics never increase, and decrease
			// wherever the paper reports a decrease.
			if r.AllocsD > 0.01 || r.MBDelta > 0.01 {
				t.Errorf("%s/%s: allocation metrics increased: MB %+0.1f%%, allocs %+0.1f%%",
					suite, r.Spec.Name, r.MBDelta, r.AllocsD)
			}
			if p.AllocsD < -2 && r.AllocsD > p.AllocsD/3 {
				t.Errorf("%s: allocs %+0.1f%%, paper %+0.1f%% — reduction too weak",
					r.Spec.Name, r.AllocsD, p.AllocsD)
			}
			// The alloc-count reduction is at least the byte
			// reduction (escaped arrays keep bytes high), the
			// paper's general observation.
			if r.AllocsD > r.MBDelta+1 {
				t.Errorf("%s: alloc reduction (%+0.1f%%) weaker than byte reduction (%+0.1f%%)",
					r.Spec.Name, r.AllocsD, r.MBDelta)
			}
		}
	}

	// factorie has the largest byte reduction and the largest speedup.
	fact := row(t, rows, "factorie")
	if fact.MBDelta > -45 || fact.SpeedupD < 20 {
		t.Errorf("factorie: MB %+0.1f%% speed %+0.1f%%, paper -58.5%%/+33%%", fact.MBDelta, fact.SpeedupD)
	}
	for _, r := range rows["scaladacapo"] {
		if r.Spec.Name != "factorie" && r.SpeedupD >= fact.SpeedupD {
			t.Errorf("%s speedup %+0.1f%% exceeds factorie's %+0.1f%%", r.Spec.Name, r.SpeedupD, fact.SpeedupD)
		}
	}

	// specs has the largest allocation-count reduction (paper: -72%).
	specs := row(t, rows, "specs")
	if specs.AllocsD > -55 {
		t.Errorf("specs allocs %+0.1f%%, paper -72%%", specs.AllocsD)
	}

	// jython is the paper's one regression.
	jy := row(t, rows, "jython")
	if jy.SpeedupD >= 0 {
		t.Errorf("jython should regress slightly (paper -2.1%%), got %+0.1f%%", jy.SpeedupD)
	}
	if jy.SpeedupD < -8 {
		t.Errorf("jython regression too large: %+0.1f%%", jy.SpeedupD)
	}

	// Suite ordering: ScalaDaCapo benefits more than DaCapo (paper:
	// +10.4%% vs +2.2%% average speedup, -22.7%% vs -8.0%% allocations).
	_, dAllocs, dSpeed := Averages(rows["dacapo"])
	_, sAllocs, sSpeed := Averages(rows["scaladacapo"])
	if sSpeed <= dSpeed {
		t.Errorf("ScalaDaCapo average speedup (%+0.1f%%) should exceed DaCapo's (%+0.1f%%)", sSpeed, dSpeed)
	}
	if sAllocs >= dAllocs {
		t.Errorf("ScalaDaCapo average alloc reduction (%+0.1f%%) should exceed DaCapo's (%+0.1f%%)", sAllocs, dAllocs)
	}
	_, jbbAllocs, jbbSpeed := Averages(rows["specjbb"])
	if jbbSpeed < 4 || jbbAllocs > -25 {
		t.Errorf("SPECjbb2005: speed %+0.1f%% allocs %+0.1f%%, paper +8.7%%/-38.1%%", jbbSpeed, jbbAllocs)
	}
}

// TestLockReductions reproduces the §6.1 lock observation: tomcat and
// SPECjbb2005 show a few-percent monitor-operation reduction; benchmarks
// without elidable locks show none.
func TestLockReductions(t *testing.T) {
	rows := allRows(t)
	tom := row(t, rows, "tomcat")
	if tom.MonOpsD >= 0 || tom.MonOpsD < -15 {
		t.Errorf("tomcat monitor ops %+0.1f%%, paper -4%%", tom.MonOpsD)
	}
	jbb := row(t, rows, "specjbb2005")
	if jbb.MonOpsD >= 0 || jbb.MonOpsD < -15 {
		t.Errorf("SPECjbb2005 monitor ops %+0.1f%%, paper -3.8%%", jbb.MonOpsD)
	}
	h2 := row(t, rows, "h2")
	if h2.MonOpsD != 0 {
		t.Errorf("h2 monitor ops should not change, got %+0.1f%%", h2.MonOpsD)
	}
}

// TestComparisonEAvsPEA reproduces §6.2: the flow-insensitive baseline
// gains less than Partial Escape Analysis on every suite (paper: 0.9 vs
// 2.2 on DaCapo, 7.4 vs 10.4 on ScalaDaCapo, 5.4 vs 8.7 on SPECjbb2005).
func TestComparisonEAvsPEA(t *testing.T) {
	cs, err := RunComparison(DefaultRuns)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("comparisons: %v", cs)
	}
	for _, c := range cs {
		if c.EASpeedup >= c.PEASpeedup {
			t.Errorf("%s: EA speedup %+0.1f%% should be below PEA's %+0.1f%%",
				c.Suite, c.EASpeedup, c.PEASpeedup)
		}
		if c.EASpeedup < -0.5 {
			t.Errorf("%s: EA slowed down: %+0.1f%%", c.Suite, c.EASpeedup)
		}
	}
	text := FormatComparison(cs)
	if !strings.Contains(text, "dacapo") || !strings.Contains(text, "PEA speedup") {
		t.Errorf("comparison formatting broken:\n%s", text)
	}
}

// TestWorkloadsProduceIdenticalOutput: every workload must behave
// identically under all configurations (the measurements above are only
// meaningful for semantics-preserving compilation).
func TestWorkloadsProduceIdenticalOutput(t *testing.T) {
	for _, w := range Suites() {
		m1, err := Measure(w, RunConfig{Mode: vm.EAOff, Warmup: 4, Iters: 2})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		m2, err := Measure(w, RunConfig{Mode: vm.EAPartial, Warmup: 4, Iters: 2})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		_ = m1
		_ = m2
	}
}

// TestTableFormatting checks the Table 1 renderer.
func TestTableFormatting(t *testing.T) {
	rows := allRows(t)
	text := FormatTable1("DaCapo", rows["dacapo"], true)
	for _, want := range []string{"fop", "jython", "average", "MB / Iteration", "Iterations / Minute"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "avrora") {
		t.Error("table should hide rows the paper omits")
	}
	full := FormatTable1("DaCapo (all)", rows["dacapo"], false)
	if !strings.Contains(full, "avrora") {
		t.Error("full table should include omitted rows")
	}
	locks := FormatLockTable(rows["dacapo"])
	if !strings.Contains(locks, "tomcat") {
		t.Errorf("lock table missing tomcat:\n%s", locks)
	}
}
