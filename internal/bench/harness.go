package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"time"

	"pea/internal/bc"
	"pea/internal/broker"
	"pea/internal/cost"
	"pea/internal/mj"
	"pea/internal/obs"
	"pea/internal/vm"
)

// Metrics are the per-iteration measurements of one configuration,
// mirroring the columns of the paper's Table 1.
type Metrics struct {
	// MBPerIter is allocated megabytes per benchmark iteration.
	MBPerIter float64
	// KAllocsPerIter is thousands of allocations per iteration (the
	// paper reports millions; our iterations are proportionally
	// smaller).
	KAllocsPerIter float64
	// MonOpsPerIter is monitor operations per iteration.
	MonOpsPerIter float64
	// ItersPerMin derives from the deterministic cycle model at the
	// paper's 2.9 GHz clock.
	ItersPerMin float64
	// WallNSPerOp is measured wall-clock nanoseconds per iteration — the
	// honest number next to the modeled ItersPerMin, and the one the
	// closure backend actually improves.
	WallNSPerOp float64
	// GoAllocsPerOp is Go-heap allocations per iteration (runtime
	// mallocs, not the guest program's rt allocations), measuring
	// executor overhead: the closure backend's steady state should pin
	// this near zero for call-free workloads.
	GoAllocsPerOp float64
	// Compiler summarizes the JIT's decision counters and per-phase
	// compile time for the whole run (warmup included: compilation
	// happens during warmup).
	Compiler CompilerStats
}

// CompilerStats condenses the obs.Metrics registry of one measurement run
// into the columns reported next to Table 1: how many methods were
// compiled, what the escape analysis decided, and where compile time went.
type CompilerStats struct {
	Compiles     int64 `json:"compiles"`
	Recompiles   int64 `json:"recompiles,omitempty"`
	Inlines      int64 `json:"inlines,omitempty"`
	Virtualized  int64 `json:"virt"`
	Materialized int64 `json:"mat"`
	LocksElided  int64 `json:"locks"`
	Deopts       int64 `json:"deopts,omitempty"`
	// CacheHits/CacheMisses are compiled-code cache outcomes: a hit means
	// the broker replayed a cached artifact instead of re-running the
	// pipeline (possible when runs share a cache via RunConfig.Share).
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// OSR and fault-containment counters from the VM: loop transfers into
	// compiled code, and compilations that failed transiently (budget
	// overruns, queue rejections) plus the hotness-trigger re-arms they
	// caused.
	OSRRequests       int64 `json:"osr_requests,omitempty"`
	OSRCompilations   int64 `json:"osr_compiles,omitempty"`
	OSREntries        int64 `json:"osr_entries,omitempty"`
	TransientFailures int64 `json:"transient_failures,omitempty"`
	Rearms            int64 `json:"rearms,omitempty"`
	// PhaseMS maps compiler phase name to total wall time in
	// milliseconds across all compiles of the run.
	PhaseMS map[string]float64 `json:"phase_ms,omitempty"`
	// Escape is the per-allocation-site attribution table of the run:
	// which sites the analysis scalar-replaced and which it materialized,
	// with the dominant reason. Sites are stable method@bci identifiers,
	// so rows are comparable across configurations.
	Escape []obs.SiteStats `json:"escape,omitempty"`
}

// JSON renders the stats as one compact JSON object.
func (cs CompilerStats) JSON() string {
	b, err := json.Marshal(cs)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// EAMillis returns the total time spent in the escape-analysis phase
// proper (either the "ea" or the "pea" timer, whichever ran).
func (cs CompilerStats) EAMillis() float64 {
	return cs.PhaseMS["ea"] + cs.PhaseMS["pea"]
}

// compilerStats extracts the well-known counters from a registry snapshot.
func compilerStats(s obs.Snapshot) CompilerStats {
	cs := CompilerStats{
		Compiles:     s.Counters[obs.MetricVMCompiles],
		Recompiles:   s.Counters[obs.MetricVMRecompiles],
		Inlines:      s.Counters[obs.MetricInlines],
		Virtualized:  s.Counters[obs.MetricVirtualized],
		Materialized: s.Counters[obs.MetricMaterialized],
		LocksElided:  s.Counters[obs.MetricLocksElided],
		Deopts:       s.Counters[obs.MetricVMDeopts],
		CacheHits:    s.Counters[obs.MetricBrokerCacheHits],
		CacheMisses:  s.Counters[obs.MetricBrokerCacheMisses],
	}
	if len(s.Phases) > 0 {
		cs.PhaseMS = make(map[string]float64, len(s.Phases))
		for name, st := range s.Phases {
			cs.PhaseMS[name] = float64(st.Total) / float64(time.Millisecond)
		}
	}
	return cs
}

// Row is one benchmark's result under two configurations.
type Row struct {
	Spec     WorkloadSpec
	Without  Metrics // baseline configuration
	With     Metrics // measured configuration (EA or PEA)
	MBDelta  float64 // percent change in MB/iter
	AllocsD  float64 // percent change in allocations/iter
	MonOpsD  float64 // percent change in monitor ops/iter
	SpeedupD float64 // percent change in iterations/min
}

func pct(without, with float64) float64 {
	if without == 0 {
		return 0
	}
	return (with - without) / without * 100
}

// RunConfig describes one measurement run.
type RunConfig struct {
	Mode vm.EAMode
	// Backend selects the execution backend compiled code runs on
	// (vm.BackendOracle by default).
	Backend vm.Backend
	// Interpret disables the JIT entirely (the interpreter row of the
	// backend experiment).
	Interpret bool
	// Warmup iterations before measurement (JIT threshold is 10).
	Warmup int
	// Iters measured iterations.
	Iters int
	// Speculate enables branch pruning.
	Speculate bool

	// Jobs is the number of workloads measured concurrently by RunSuite
	// (<=1 is sequential). Each workload still runs its warmup and
	// measured iterations on one goroutine; only distinct workloads (and
	// the two configurations of a row) overlap, so per-workload numbers
	// are unaffected.
	Jobs int
	// Async routes JIT compilation through background broker workers
	// instead of compiling synchronously on the execution thread.
	Async bool
	// JITWorkers is the per-VM background worker count when Async is set
	// (<=0 selects GOMAXPROCS).
	JITWorkers int
	// Share, when non-nil, shares compiled programs and per-workload
	// compiled-code caches across measurement runs: the repeated
	// configurations of a comparison (the EAOff baseline is measured once
	// per row) replay cached JIT artifacts instead of re-running the
	// pipeline. RunSuite and RunComparison create one automatically when
	// nil.
	Share *Shared
}

// DefaultRuns is the standard measurement configuration.
var DefaultRuns = RunConfig{Warmup: 16, Iters: 8}

// Shared holds measurement-run artifacts reusable across VMs: the compiled
// bytecode program of each workload and one compiled-code cache per
// workload. Cache keys incorporate the EA mode, speculation, and the
// profile fingerprint, so runs under different configurations never collide
// while identical reruns (e.g. the twice-measured baseline column of a
// comparison) replay earlier compiles. Safe for concurrent use.
type Shared struct {
	mu     sync.Mutex
	progs  map[string]*bc.Program
	caches map[string]*broker.Cache
}

// NewShared creates an empty artifact store.
func NewShared() *Shared {
	return &Shared{
		progs:  make(map[string]*bc.Program),
		caches: make(map[string]*broker.Cache),
	}
}

// program returns the workload's compiled program, compiling it once.
func (s *Shared) program(w WorkloadSpec) (*bc.Program, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.progs[w.Name]; ok {
		return p, nil
	}
	p, err := mj.Compile(w.Source(), "Main.main")
	if err != nil {
		return nil, err
	}
	s.progs[w.Name] = p
	return p, nil
}

// cache returns the workload's compiled-code cache, creating it once.
// Keys are content fingerprints, so one shared cache would be sound; the
// caches stay per-workload so hit/miss counts can be attributed per suite
// entry and one workload's artifacts can't evict another's under a bound.
func (s *Shared) cache(name string) *broker.Cache {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.caches[name]
	if !ok {
		c = broker.NewCache()
		s.caches[name] = c
	}
	return c
}

// CacheStats sums hit/miss counts over all workload caches.
func (s *Shared) CacheStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.caches {
		h, m := c.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// Measure runs one workload under one EA mode and returns per-iteration
// metrics from the post-warmup steady state.
func Measure(w WorkloadSpec, rc RunConfig) (Metrics, error) {
	var (
		prog  *bc.Program
		cache *broker.Cache
		err   error
	)
	if rc.Share != nil {
		prog, err = rc.Share.program(w)
		cache = rc.Share.cache(w.Name)
	} else {
		prog, err = mj.Compile(w.Source(), "Main.main")
	}
	if err != nil {
		return Metrics{}, fmt.Errorf("bench %s: %w", w.Name, err)
	}
	met := obs.NewMetrics()
	esc := obs.NewEscapeTable()
	machine := vm.New(prog, vm.Options{
		EA:               rc.Mode,
		Backend:          rc.Backend,
		Interpret:        rc.Interpret,
		CompileThreshold: 10,
		Speculate:        rc.Speculate,
		Seed:             uint64(len(w.Name))*2654435761 + 7,
		MaxSteps:         2_000_000_000,
		Metrics:          met,
		Sink:             obs.NewSink(esc),
		Async:            rc.Async,
		JITWorkers:       rc.JITWorkers,
		Cache:            cache,
	})
	defer machine.Close()
	setup := prog.ClassByName("Store").MethodByName("setup")
	iter := prog.ClassByName("Bench").MethodByName("iteration")
	if _, err := machine.Call(setup, nil); err != nil {
		return Metrics{}, fmt.Errorf("bench %s setup: %w", w.Name, err)
	}
	for i := 0; i < rc.Warmup; i++ {
		if _, err := machine.Call(iter, nil); err != nil {
			return Metrics{}, fmt.Errorf("bench %s warmup: %w", w.Name, err)
		}
	}
	// In async mode make sure every submitted compilation has resolved so
	// the measured iterations run the same steady state as sync mode.
	machine.DrainJIT()
	for m, cerr := range machine.FailedCompilations() {
		return Metrics{}, fmt.Errorf("bench %s: compiling %s: %w", w.Name, m.QualifiedName(), cerr)
	}
	startStats := machine.Env.Stats
	startCycles := machine.Env.Cycles
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	wallStart := time.Now()
	for i := 0; i < rc.Iters; i++ {
		if _, err := machine.Call(iter, nil); err != nil {
			return Metrics{}, fmt.Errorf("bench %s measure: %w", w.Name, err)
		}
	}
	wall := time.Since(wallStart)
	runtime.ReadMemStats(&ms1)
	d := machine.Env.Stats.Sub(startStats)
	cycles := machine.Env.Cycles - startCycles
	n := float64(rc.Iters)
	m := Metrics{
		MBPerIter:      float64(d.AllocatedBytes) / n / (1 << 20),
		KAllocsPerIter: float64(d.Allocations) / n / 1000,
		MonOpsPerIter:  float64(d.MonitorOps) / n,
		WallNSPerOp:    float64(wall.Nanoseconds()) / n,
		GoAllocsPerOp:  float64(ms1.Mallocs-ms0.Mallocs) / n,
	}
	if cycles > 0 {
		m.ItersPerMin = cost.CyclesPerMinute / (float64(cycles) / n)
	}
	m.Compiler = compilerStats(met.Snapshot())
	vs := machine.Stats()
	m.Compiler.OSRRequests = vs.OSRRequests
	m.Compiler.OSRCompilations = vs.OSRCompilations
	m.Compiler.OSREntries = vs.OSREntries
	m.Compiler.TransientFailures = vs.TransientFailures
	m.Compiler.Rearms = vs.Rearms
	m.Compiler.Escape = esc.Snapshot()
	return m, nil
}

// RunRow measures one workload without EA and with the given mode.
func RunRow(w WorkloadSpec, mode vm.EAMode, rc RunConfig) (Row, error) {
	rcBase := rc
	rcBase.Mode = vm.EAOff
	without, err := Measure(w, rcBase)
	if err != nil {
		return Row{}, err
	}
	rcWith := rc
	rcWith.Mode = mode
	with, err := Measure(w, rcWith)
	if err != nil {
		return Row{}, err
	}
	return Row{
		Spec:     w,
		Without:  without,
		With:     with,
		MBDelta:  pct(without.MBPerIter, with.MBPerIter),
		AllocsD:  pct(without.KAllocsPerIter, with.KAllocsPerIter),
		MonOpsD:  pct(without.MonOpsPerIter, with.MonOpsPerIter),
		SpeedupD: pct(without.ItersPerMin, with.ItersPerMin),
	}, nil
}

// RunSuite measures every workload of a suite against the given mode.
// With rc.Jobs > 1 workloads are measured concurrently; results keep the
// suite's deterministic workload order either way.
func RunSuite(suite string, mode vm.EAMode, rc RunConfig) ([]Row, error) {
	if rc.Share == nil {
		rc.Share = NewShared()
	}
	specs := BySuite(suite)
	rows := make([]Row, len(specs))
	errs := make([]error, len(specs))
	jobs := rc.Jobs
	if jobs <= 1 {
		jobs = 1
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(specs) {
					return
				}
				rows[i], errs[i] = RunRow(specs[i], mode, rc)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Averages computes the arithmetic-mean percentage changes over rows (the
// paper's "average" line, which includes benchmarks omitted from the
// table).
func Averages(rows []Row) (mb, allocs, speed float64) {
	if len(rows) == 0 {
		return 0, 0, 0
	}
	for _, r := range rows {
		mb += r.MBDelta
		allocs += r.AllocsD
		speed += r.SpeedupD
	}
	n := float64(len(rows))
	return mb / n, allocs / n, speed / n
}

// Comparison is the §6.2 experiment: average speedup of flow-insensitive
// EA vs Partial Escape Analysis per suite.
type Comparison struct {
	Suite      string
	EASpeedup  float64
	PEASpeedup float64
}

// RunComparison reproduces §6.2 for every suite. The runs share one
// artifact store, so the EAOff baseline — measured once for the EA row and
// once for the PEA row of each workload — replays its compiled code from
// the broker cache on the second measurement.
func RunComparison(rc RunConfig) ([]Comparison, error) {
	if rc.Share == nil {
		rc.Share = NewShared()
	}
	var out []Comparison
	for _, suite := range SuiteNames() {
		eaRows, err := RunSuite(suite, vm.EAFlowInsensitive, rc)
		if err != nil {
			return nil, err
		}
		peaRows, err := RunSuite(suite, vm.EAPartial, rc)
		if err != nil {
			return nil, err
		}
		_, _, eaSpeed := Averages(eaRows)
		_, _, peaSpeed := Averages(peaRows)
		out = append(out, Comparison{Suite: suite, EASpeedup: eaSpeed, PEASpeedup: peaSpeed})
	}
	return out, nil
}
