package bench

import (
	"strings"
	"testing"
)

// TestAblation asserts each design choice earns its keep.
func TestAblation(t *testing.T) {
	rs, err := RunAblation()
	if err != nil {
		t.Fatal(err)
	}
	get := func(prog, variant string) AblationResult {
		for _, r := range rs {
			if r.Program == prog && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("missing %s/%s", prog, variant)
		return AblationResult{}
	}

	// cachekey: full PEA allocates only on misses; disabling the
	// Figure 6a alias-liveness rule materializes at the loop-body merge
	// and loses most of the benefit; EA and none do not help at all.
	full := get("cachekey", "full")
	nolive := get("cachekey", "no-liveness")
	eaRes := get("cachekey", "ea")
	none := get("cachekey", "none")
	if full.Allocs >= none.Allocs/4 {
		t.Fatalf("cachekey full PEA too weak: %d vs %d", full.Allocs, none.Allocs)
	}
	if nolive.Allocs <= full.Allocs {
		t.Fatalf("alias-liveness rule has no effect: %d vs %d", nolive.Allocs, full.Allocs)
	}
	if eaRes.Allocs != none.Allocs {
		t.Fatalf("EA should not optimize the partial escape: %d vs %d", eaRes.Allocs, none.Allocs)
	}
	if full.MonOps != 0 || none.MonOps == 0 {
		t.Fatalf("lock elision wrong: full=%d none=%d", full.MonOps, none.MonOps)
	}

	// smallbuffers: array virtualization is the whole story.
	fullA := get("smallbuffers", "full")
	noArr := get("smallbuffers", "no-arrays")
	noneA := get("smallbuffers", "none")
	if fullA.Allocs != 0 {
		t.Fatalf("small constant arrays not virtualized: %d", fullA.Allocs)
	}
	if noArr.Allocs != noneA.Allocs {
		t.Fatalf("no-arrays variant should match baseline: %d vs %d", noArr.Allocs, noneA.Allocs)
	}

	// callheavy: the callee is past the inline budget and never observes
	// its ref argument, so only the summaries variant keeps the caller's
	// allocation virtual — intra-procedural PEA must materialize at the
	// call, and the variants must agree on results elsewhere.
	fullC := get("callheavy", "full")
	sumC := get("callheavy", "summaries")
	if sumC.Allocs != 0 {
		t.Fatalf("callheavy summaries left %d allocations", sumC.Allocs)
	}
	if fullC.Allocs == 0 {
		t.Fatal("callheavy full PEA should materialize at the out-of-line call")
	}
	if sumC.Cycles >= fullC.Cycles {
		t.Fatalf("callheavy summaries not faster: %d vs %d cycles", sumC.Cycles, fullC.Cycles)
	}
	// On programs with no summary-shaped call sites the variant is a
	// no-op, not a regression.
	for _, prog := range []string{"cachekey", "smallbuffers", "tempchain"} {
		s, f := get(prog, "summaries"), get(prog, "full")
		if s.Allocs != f.Allocs {
			t.Fatalf("%s: summaries changed allocations %d vs %d", prog, s.Allocs, f.Allocs)
		}
	}

	// tempchain: every scalar-replacing variant removes all allocations.
	for _, v := range []string{"full", "no-liveness", "no-arrays", "ea"} {
		if r := get("tempchain", v); r.Allocs != 0 {
			t.Fatalf("tempchain %s: %d allocations left", v, r.Allocs)
		}
	}
	if get("tempchain", "none").Allocs == 0 {
		t.Fatal("baseline should allocate")
	}

	text := FormatAblation(rs)
	for _, want := range []string{"cachekey", "no-liveness", "iters/min"} {
		if !strings.Contains(text, want) {
			t.Fatalf("format missing %q:\n%s", want, text)
		}
	}
}
