package bench

// PaperRow records the numbers the paper's Table 1 reports for one
// benchmark: percent change in allocated MB, in allocation count, and in
// iterations per minute (positive = faster). Used by EXPERIMENTS.md and by
// the calibration tests that assert the reproduction preserves the shape.
type PaperRow struct {
	MBDelta  float64
	AllocsD  float64
	SpeedupD float64
}

// PaperTable1 is the paper's Table 1 (plus zero rows for the DaCapo
// benchmarks the paper omits as insignificant).
var PaperTable1 = map[string]PaperRow{
	"fop":        {-3.5, -5.6, 14.4},
	"h2":         {-5.2, -5.9, 2.9},
	"jython":     {-8.3, -15.2, -2.1},
	"sunflow":    {-25.7, -30.6, 1.6},
	"tomcat":     {-0.8, -2.4, 4.4},
	"tradebeans": {-7.8, -11.1, 6.4},
	"xalan":      {-1.4, -2.2, 1.9},
	"avrora":     {0, 0, 0},
	"batik":      {0, 0, 0},
	"eclipse":    {0, 0, 0},
	"luindex":    {0, 0, 0},
	"lusearch":   {0, 0, 0},
	"pmd":        {0, 0, 0},
	"tradesoap":  {0, 0, 0},

	"actors":      {-17.0, -18.5, 10.0},
	"apparat":     {-3.3, -5.5, 13.7},
	"factorie":    {-58.5, -60.9, 33.0},
	"kiama":       {-6.6, -11.2, 16.5},
	"scalac":      {-14.5, -22.6, 4.4},
	"scaladoc":    {-12.0, -24.0, 3.0},
	"scalap":      {-8.8, -12.5, 17.6},
	"scalariform": {-13.3, -16.5, 7.8},
	"scalatest":   {-1.0, -2.4, 7.1},
	"scalaxb":     {-5.9, -13.8, 4.7},
	"specs":       {-38.4, -72.0, 4.0},
	"tmt":         {-3.6, -12.2, 3.3},

	"specjbb2005": {-16.1, -38.1, 8.7},
}

// Suites returns the full set of workload specs, one per benchmark row the
// paper evaluates (Table 1). The knob values are derived from the paper's
// per-benchmark characterization: benchmarks with large reported allocation
// reductions get large temporary/partial-escape fractions, benchmarks whose
// byte reduction trails their allocation reduction get escaping array
// buffers, benchmarks with lock-operation reductions (tomcat, SPECjbb2005)
// get elidable synchronized regions, and benchmarks with small speedups get
// heavy non-allocating work. jython models the paper's one regression:
// partially-escaping allocations spread over many code sites with a high
// escape probability, so PEA grows the compiled code while saving little.
func Suites() []WorkloadSpec {
	return []WorkloadSpec{
		// ---- DaCapo (the seven rows shown in Table 1) ----
		{Name: "fop", Suite: "dacapo", Ops: 600,
			TempPct: 2, Depth: 1, PartialPct: 2, EscapeProbPermille: 100,
			GlobalPct: 60, ArrayLen: 6, SyncTempPct: 4, SyncGlobalPct: 10, WorkLoops: 1},
		{Name: "h2", Suite: "dacapo", Ops: 600,
			TempPct: 2, Depth: 1, PartialPct: 3, EscapeProbPermille: 150,
			GlobalPct: 55, ArrayLen: 8, SyncGlobalPct: 8, WorkLoops: 12},
		{Name: "jython", Suite: "dacapo", Ops: 600,
			PartialPct: 24, EscapeProbPermille: 300, PartialSites: 16,
			GlobalPct: 45, ArrayLen: 6, WorkLoops: 4},
		{Name: "sunflow", Suite: "dacapo", Ops: 600,
			TempPct: 12, Depth: 1, PartialPct: 8, EscapeProbPermille: 50,
			GlobalPct: 40, ArrayLen: 6, WorkLoops: 30},
		{Name: "tomcat", Suite: "dacapo", Ops: 600,
			TempPct: 1, Depth: 1, PartialPct: 1, EscapeProbPermille: 100,
			GlobalPct: 58, ArrayLen: 8, SyncTempPct: 2, SyncGlobalPct: 30, WorkLoops: 5},
		{Name: "tradebeans", Suite: "dacapo", Ops: 600,
			TempPct: 4, Depth: 1, PartialPct: 4, EscapeProbPermille: 100,
			GlobalPct: 45, ArrayLen: 8, SyncGlobalPct: 5, WorkLoops: 8},
		{Name: "xalan", Suite: "dacapo", Ops: 600,
			TempPct: 1, Depth: 1, PartialPct: 1, EscapeProbPermille: 150,
			GlobalPct: 55, ArrayLen: 8, WorkLoops: 8},
		// The seven DaCapo benchmarks the paper omits from the table
		// ("without significant changes in performance"); they still
		// enter the suite average. Their allocations either truly
		// escape or sit behind polymorphic calls the JIT cannot
		// devirtualize.
		{Name: "avrora", Suite: "dacapo", Ops: 400,
			GlobalPct: 40, ArrayLen: 8, Polymorphic: true, WorkLoops: 20},
		{Name: "batik", Suite: "dacapo", Ops: 400,
			GlobalPct: 45, ArrayLen: 12, Polymorphic: true, WorkLoops: 12},
		{Name: "eclipse", Suite: "dacapo", Ops: 400,
			GlobalPct: 50, ArrayLen: 8, Polymorphic: true, WorkLoops: 16},
		{Name: "luindex", Suite: "dacapo", Ops: 400,
			GlobalPct: 40, ArrayLen: 16, WorkLoops: 24},
		{Name: "lusearch", Suite: "dacapo", Ops: 400,
			GlobalPct: 55, ArrayLen: 16, WorkLoops: 8},
		{Name: "pmd", Suite: "dacapo", Ops: 400,
			GlobalPct: 45, ArrayLen: 8, Polymorphic: true, WorkLoops: 14},
		{Name: "tradesoap", Suite: "dacapo", Ops: 400,
			GlobalPct: 50, ArrayLen: 10, SyncGlobalPct: 10, WorkLoops: 12},

		// ---- ScalaDaCapo ----
		{Name: "actors", Suite: "scaladacapo", Ops: 600,
			TempPct: 7, Depth: 1, PartialPct: 5, EscapeProbPermille: 60,
			GlobalPct: 40, ArrayLen: 6, SyncGlobalPct: 6, WorkLoops: 5},
		{Name: "apparat", Suite: "scaladacapo", Ops: 600,
			TempPct: 2, Depth: 1, PartialPct: 2, EscapeProbPermille: 60,
			GlobalPct: 45, ArrayLen: 8, WorkLoops: 2},
		{Name: "factorie", Suite: "scaladacapo", Ops: 600,
			TempPct: 25, Depth: 2, PartialPct: 10, EscapeProbPermille: 30,
			GlobalPct: 28, ArrayLen: 4, WorkLoops: 2},
		{Name: "kiama", Suite: "scaladacapo", Ops: 600,
			TempPct: 4, Depth: 1, PartialPct: 4, EscapeProbPermille: 60,
			GlobalPct: 40, ArrayLen: 6, WorkLoops: 3},
		{Name: "scalac", Suite: "scaladacapo", Ops: 600,
			TempPct: 8, Depth: 1, PartialPct: 8, EscapeProbPermille: 120,
			GlobalPct: 38, ArrayLen: 6, WorkLoops: 10},
		{Name: "scaladoc", Suite: "scaladacapo", Ops: 600,
			TempPct: 9, Depth: 1, PartialPct: 8, EscapeProbPermille: 130,
			GlobalPct: 38, ArrayLen: 8, WorkLoops: 16},
		{Name: "scalap", Suite: "scaladacapo", Ops: 600,
			TempPct: 4, Depth: 1, PartialPct: 4, EscapeProbPermille: 50,
			GlobalPct: 40, ArrayLen: 6, WorkLoops: 2},
		{Name: "scalariform", Suite: "scaladacapo", Ops: 600,
			TempPct: 6, Depth: 1, PartialPct: 5, EscapeProbPermille: 70,
			GlobalPct: 40, ArrayLen: 7, WorkLoops: 6},
		{Name: "scalatest", Suite: "scaladacapo", Ops: 600,
			TempPct: 1, Depth: 1, PartialPct: 1, EscapeProbPermille: 100,
			GlobalPct: 45, ArrayLen: 7, SyncGlobalPct: 10, WorkLoops: 6},
		{Name: "scalaxb", Suite: "scaladacapo", Ops: 600,
			TempPct: 4, Depth: 1, PartialPct: 6, EscapeProbPermille: 120,
			GlobalPct: 42, ArrayLen: 10, WorkLoops: 9},
		{Name: "specs", Suite: "scaladacapo", Ops: 600,
			TempPct: 28, Depth: 2, PartialPct: 10, EscapeProbPermille: 50,
			GlobalPct: 20, ArrayLen: 30, WorkLoops: 42},
		{Name: "tmt", Suite: "scaladacapo", Ops: 600,
			TempPct: 4, Depth: 1, PartialPct: 5, EscapeProbPermille: 120,
			GlobalPct: 50, ArrayLen: 14, WorkLoops: 9},

		// ---- SPECjbb2005 ----
		{Name: "specjbb2005", Suite: "specjbb", Ops: 800,
			TempPct: 15, Depth: 1, PartialPct: 10, EscapeProbPermille: 60,
			GlobalPct: 35, ArrayLen: 16, SyncTempPct: 1, SyncGlobalPct: 24, WorkLoops: 5},
	}
}

// SuiteNames lists the suite identifiers in evaluation order.
func SuiteNames() []string { return []string{"dacapo", "scaladacapo", "specjbb"} }

// BySuite returns the workloads of one suite.
func BySuite(suite string) []WorkloadSpec {
	var out []WorkloadSpec
	for _, w := range Suites() {
		if w.Suite == suite {
			out = append(out, w)
		}
	}
	return out
}

// ShownInTable1 reports whether the paper's Table 1 prints this DaCapo row
// (the others enter only the average).
func ShownInTable1(name string) bool {
	switch name {
	case "avrora", "batik", "eclipse", "luindex", "lusearch", "pmd", "tradesoap":
		return false
	}
	return true
}
