package sched

import (
	"testing"

	"pea/internal/build"
	"pea/internal/ir"
	"pea/internal/testprog"
)

func graphFor(t *testing.T, name string) (*ir.Graph, *CFG) {
	t.Helper()
	for _, p := range testprog.Corpus() {
		if p.Name == name {
			g, err := build.Build(p.Entry)
			if err != nil {
				t.Fatal(err)
			}
			c, err := Compute(g)
			if err != nil {
				t.Fatal(err)
			}
			return g, c
		}
	}
	t.Fatalf("no corpus program %q", name)
	return nil, nil
}

func TestRPOStartsAtEntryAndCoversAll(t *testing.T) {
	for _, p := range testprog.Corpus() {
		g, err := build.Build(p.Entry)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Compute(g)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if c.RPO[0] != g.Entry() {
			t.Fatalf("%s: RPO[0] is not entry", p.Name)
		}
		if len(c.RPO) != len(g.Blocks) {
			t.Fatalf("%s: RPO covers %d of %d blocks", p.Name, len(c.RPO), len(g.Blocks))
		}
		// RPO property: every non-back-edge predecessor precedes the block.
		for _, b := range c.RPO {
			for _, pr := range b.Preds {
				if c.IsBackEdge(pr, b) {
					continue
				}
				if c.Index[pr] >= c.Index[b] {
					t.Fatalf("%s: forward pred %s of %s comes later in RPO", p.Name, pr, b)
				}
			}
		}
	}
}

func TestDominatorsBasics(t *testing.T) {
	g, c := graphFor(t, "diamond")
	entry := g.Entry()
	if c.IDom[entry] != nil {
		t.Fatal("entry has an idom")
	}
	for _, b := range c.RPO[1:] {
		if c.IDom[b] == nil {
			t.Fatalf("%s has no idom", b)
		}
		if !c.Dominates(entry, b) {
			t.Fatalf("entry does not dominate %s", b)
		}
		if !c.Dominates(b, b) {
			t.Fatalf("%s does not dominate itself", b)
		}
	}
	// The join block (multi-pred) must be dominated by the branch block,
	// not by either arm.
	for _, b := range c.RPO {
		if len(b.Preds) >= 2 {
			id := c.IDom[b]
			if id == nil || id.Term == nil || id.Term.Op != ir.OpIf {
				t.Fatalf("join %s idom = %v, want the branching block", b, id)
			}
		}
	}
}

func TestLoopDetectionSimple(t *testing.T) {
	_, c := graphFor(t, "loopSum")
	if len(c.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(c.Loops))
	}
	l := c.Loops[0]
	if l.Depth != 1 {
		t.Fatalf("depth = %d", l.Depth)
	}
	if len(l.BackEdges) != 1 {
		t.Fatalf("back edges = %d, want 1", len(l.BackEdges))
	}
	if !c.LoopHeader(l.Header) {
		t.Fatal("header not recognized")
	}
	if len(l.Exits) == 0 {
		t.Fatal("loop has no exits")
	}
	for _, e := range l.Exits {
		if l.Blocks[e] {
			t.Fatalf("exit %s is inside the loop", e)
		}
	}
	// The header must have exactly one non-back-edge pred.
	fwd := 0
	for _, p := range l.Header.Preds {
		if !c.IsBackEdge(p, l.Header) {
			fwd++
		}
	}
	if fwd != 1 {
		t.Fatalf("header has %d forward preds", fwd)
	}
}

func TestLoopNesting(t *testing.T) {
	_, c := graphFor(t, "nestedLoops")
	if len(c.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(c.Loops))
	}
	var outer, inner *Loop
	for _, l := range c.Loops {
		switch l.Depth {
		case 1:
			outer = l
		case 2:
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatalf("depths wrong: %+v", c.Loops)
	}
	if inner.Parent != outer {
		t.Fatal("inner loop not nested in outer")
	}
	if !outer.Blocks[inner.Header] {
		t.Fatal("outer loop does not contain inner header")
	}
	if c.Freq[inner.Header] <= c.Freq[outer.Header] {
		t.Fatal("inner loop frequency should exceed outer")
	}
}

func TestLoopTwoBackEdges(t *testing.T) {
	_, c := graphFor(t, "loopTwoBackEdges")
	if len(c.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(c.Loops))
	}
	l := c.Loops[0]
	if len(l.BackEdges) != 2 {
		t.Fatalf("back edges = %d, want 2 (paper Figure 7 shape)", len(l.BackEdges))
	}
	for _, u := range l.BackEdges {
		if !c.IsBackEdge(u, l.Header) {
			t.Fatalf("IsBackEdge(%s, %s) = false", u, l.Header)
		}
	}
}

func TestDominanceAntisymmetry(t *testing.T) {
	for _, name := range []string{"diamond", "nestedLoops", "cacheKey", "loopTwoBackEdges"} {
		_, c := graphFor(t, name)
		for _, a := range c.RPO {
			for _, b := range c.RPO {
				if a != b && c.Dominates(a, b) && c.Dominates(b, a) {
					t.Fatalf("%s: %s and %s dominate each other", name, a, b)
				}
			}
		}
	}
}

func TestNoLoopsInStraightLine(t *testing.T) {
	_, c := graphFor(t, "straightLine")
	if len(c.Loops) != 0 {
		t.Fatalf("loops = %d, want 0", len(c.Loops))
	}
}
