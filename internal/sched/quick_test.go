package sched

import (
	"testing"
	"testing/quick"

	"pea/internal/build"
	"pea/internal/testprog"
)

// TestQuickDominatorProperties checks dominator-tree and loop-forest
// invariants on generated control-flow graphs:
//
//   - the entry dominates every block and has no idom;
//   - idom(b) strictly dominates b;
//   - every predecessor of a non-header block is dominated-after it in
//     RPO terms (forward edges only);
//   - loop headers dominate all blocks of their loop, including the back
//     edges; nested loops are fully contained in their parents.
func TestQuickDominatorProperties(t *testing.T) {
	check := func(seed uint16) bool {
		p := testprog.Generate(int64(seed) + 200_000)
		for _, m := range p.Prog.Methods {
			g, err := build.Build(m)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			cfg, err := Compute(g)
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			entry := g.Entry()
			if cfg.IDom[entry] != nil {
				t.Logf("seed %d: entry has idom", seed)
				return false
			}
			for _, b := range cfg.RPO {
				if !cfg.Dominates(entry, b) {
					t.Logf("seed %d: entry !dom %s", seed, b)
					return false
				}
				if b != entry {
					id := cfg.IDom[b]
					if id == nil || !cfg.Dominates(id, b) || id == b {
						t.Logf("seed %d: bad idom of %s", seed, b)
						return false
					}
				}
			}
			for _, l := range cfg.Loops {
				for blk := range l.Blocks {
					if !cfg.Dominates(l.Header, blk) {
						t.Logf("seed %d: header %s !dom member %s", seed, l.Header, blk)
						return false
					}
				}
				for _, be := range l.BackEdges {
					if !l.Blocks[be] {
						t.Logf("seed %d: back edge source outside loop", seed)
						return false
					}
				}
				if l.Parent != nil {
					for blk := range l.Blocks {
						if !l.Parent.Blocks[blk] {
							t.Logf("seed %d: nested loop escapes parent", seed)
							return false
						}
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 80}
	if testing.Short() {
		cfg.MaxCount = 15
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
