// Package sched computes control-flow analyses over an IR graph: reverse
// postorder, dominator tree (Cooper–Harvey–Kennedy), the natural loop
// forest, and a static block frequency estimate. Graal's Partial Escape
// Analysis runs over exactly this structure ("the analysis relies on the
// scheduler to order the nodes", paper §7): blocks are visited in reverse
// postorder, merges are processed when all forward predecessors are done,
// and loops are iterated over their back edges.
package sched

import (
	"fmt"
	"math"

	"pea/internal/ir"
)

// CFG bundles the analyses for one graph.
type CFG struct {
	G *ir.Graph
	// RPO is the reverse postorder over reachable blocks; RPO[0] is the
	// entry.
	RPO []*ir.Block
	// Index maps a block to its RPO position.
	Index map[*ir.Block]int
	// IDom maps each block to its immediate dominator (entry -> nil).
	IDom map[*ir.Block]*ir.Block
	// Loops lists all natural loops, outermost first.
	Loops []*Loop
	// LoopOf maps a block to its innermost containing loop (nil if
	// none).
	LoopOf map[*ir.Block]*Loop
	// Freq estimates each block's relative execution frequency.
	Freq map[*ir.Block]float64
}

// Loop is one natural loop.
type Loop struct {
	Header *ir.Block
	// Blocks contains all blocks of the loop, including the header.
	Blocks map[*ir.Block]bool
	// BackEdges lists the in-loop predecessors of the header.
	BackEdges []*ir.Block
	// Exits lists blocks outside the loop that have a predecessor
	// inside it.
	Exits []*ir.Block
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Depth is 1 for outermost loops.
	Depth int
}

// Compute runs all analyses. The graph must have no unreachable blocks
// (call g.RemoveDeadBlocks first if in doubt).
func Compute(g *ir.Graph) (*CFG, error) {
	dom := ir.NewDomTree(g)
	if len(dom.RPO) != len(g.Blocks) {
		return nil, fmt.Errorf("sched: %d of %d blocks unreachable",
			len(g.Blocks)-len(dom.RPO), len(g.Blocks))
	}
	c := &CFG{G: g, RPO: dom.RPO, Index: dom.Index, IDom: dom.IDom}
	if err := c.computeLoops(); err != nil {
		return nil, err
	}
	c.computeFrequencies()
	return c, nil
}

// Dominates reports whether a dominates b (reflexive).
func (c *CFG) Dominates(a, b *ir.Block) bool {
	for x := b; x != nil; x = c.IDom[x] {
		if x == a {
			return true
		}
	}
	return false
}

// computeLoops finds back edges (u -> h with h dominating u), builds
// natural loops, merges loops sharing a header, and nests them.
func (c *CFG) computeLoops() error {
	byHeader := make(map[*ir.Block]*Loop)
	for _, u := range c.RPO {
		for _, h := range u.Succs {
			if !c.Dominates(h, u) {
				continue
			}
			// u -> h is a back edge.
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, Blocks: map[*ir.Block]bool{h: true}}
				byHeader[h] = l
			}
			l.BackEdges = append(l.BackEdges, u)
			// Natural loop body: walk predecessors from u until h.
			work := []*ir.Block{u}
			for len(work) > 0 {
				b := work[len(work)-1]
				work = work[:len(work)-1]
				if l.Blocks[b] {
					continue
				}
				l.Blocks[b] = true
				for _, p := range b.Preds {
					work = append(work, p)
				}
			}
		}
	}
	// Order loops outermost-first by containment (bigger first) and nest.
	for _, b := range c.RPO { // deterministic header order
		if l, ok := byHeader[b]; ok {
			c.Loops = append(c.Loops, l)
		}
	}
	// Nest: parent is the smallest other loop strictly containing the
	// header (and all blocks).
	for _, l := range c.Loops {
		for _, m := range c.Loops {
			if m == l || !m.Blocks[l.Header] {
				continue
			}
			if len(m.Blocks) <= len(l.Blocks) {
				continue
			}
			if l.Parent == nil || len(m.Blocks) < len(l.Parent.Blocks) {
				l.Parent = m
			}
		}
	}
	for _, l := range c.Loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	// Exits.
	for _, l := range c.Loops {
		seen := make(map[*ir.Block]bool)
		for b := range l.Blocks {
			for _, s := range b.Succs {
				if !l.Blocks[s] && !seen[s] {
					seen[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
	}
	// Innermost loop per block.
	c.LoopOf = make(map[*ir.Block]*Loop)
	for _, l := range c.Loops {
		for b := range l.Blocks {
			if cur := c.LoopOf[b]; cur == nil || l.Depth > cur.Depth {
				c.LoopOf[b] = l
			}
		}
	}
	// Sort loops outermost first for deterministic consumers.
	for i := 0; i < len(c.Loops); i++ {
		for j := i + 1; j < len(c.Loops); j++ {
			if c.Loops[j].Depth < c.Loops[i].Depth {
				c.Loops[i], c.Loops[j] = c.Loops[j], c.Loops[i]
			}
		}
	}
	return nil
}

// IsBackEdge reports whether the edge from pred into header is a loop back
// edge.
func (c *CFG) IsBackEdge(pred, header *ir.Block) bool {
	l := c.loopWithHeader(header)
	if l == nil {
		return false
	}
	for _, u := range l.BackEdges {
		if u == pred {
			return true
		}
	}
	return false
}

// loopWithHeader returns the loop headed by h, or nil.
func (c *CFG) loopWithHeader(h *ir.Block) *Loop {
	for _, l := range c.Loops {
		if l.Header == h {
			return l
		}
	}
	return nil
}

// LoopHeader reports whether b is a loop header.
func (c *CFG) LoopHeader(b *ir.Block) bool { return c.loopWithHeader(b) != nil }

// computeFrequencies assigns each block a static frequency: 10^loopDepth,
// halved at each side of unbiased branches. This is only used for
// reporting and inlining heuristics, never for correctness.
func (c *CFG) computeFrequencies() {
	c.Freq = make(map[*ir.Block]float64, len(c.RPO))
	for _, b := range c.RPO {
		depth := 0
		if l := c.LoopOf[b]; l != nil {
			depth = l.Depth
		}
		c.Freq[b] = math.Pow(10, float64(depth))
	}
}
