// Package obs is the unified observability layer for the compiler and VM:
// a typed structured-event sink (JSONL and human-readable text backends)
// plus a metrics registry (counters, gauges, timers) published via expvar.
//
// Design constraints:
//
//   - A nil *Sink and a nil *Metrics are valid, fully inert receivers. Every
//     emit helper takes only scalar arguments and returns immediately on a
//     nil receiver, so the disabled path performs no allocations and no
//     interface conversions. This is load-bearing: the sink is threaded
//     through the hot compile path (build → opt → PEA → VM) and the
//     no-alloc guarantee is enforced by BenchmarkCompileNilSink.
//
//   - Events are strongly typed by Kind. Each pipeline layer has its own
//     family: phase timing (phase_start/phase_end), inlining decisions,
//     PEA decisions (virtualize, materialize, merge_materialize,
//     lock_elide, pea_round, pea_fixpoint, pea_bailout), EA baseline
//     verdicts, and VM lifecycle (compile, deopt, rematerialize,
//     invalidate, recompile).
//
//   - Time is observed through a settable clock so golden-file tests can
//     pin timestamps and durations to deterministic values.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sync"
	"time"
)

// Kind names the type of a structured event. Values are stable strings that
// appear verbatim in the JSONL output; tests golden-match them.
type Kind string

// Event kinds, grouped by pipeline layer.
const (
	// Phase timing (front end and optimizer).
	KindPhaseStart Kind = "phase_start"
	KindPhaseEnd   Kind = "phase_end"

	// Inlining decisions.
	KindInline Kind = "inline"

	// PEA decisions (paper §4–§5).
	KindVirtualize       Kind = "virtualize"
	KindMaterialize      Kind = "materialize"
	KindMergeMaterialize Kind = "merge_materialize"
	KindLockElide        Kind = "lock_elide"
	KindPEARound         Kind = "pea_round"
	KindPEAFixpoint      Kind = "pea_fixpoint"
	KindPEABailout       Kind = "pea_bailout"
	KindPEAState         Kind = "pea_state"

	// EA baseline verdicts (whole-method escape analysis).
	KindEAVerdict Kind = "ea_verdict"

	// Inter-procedural escape summaries: a summary set becomes available
	// (computed or loaded from a cache tier), and a PEA decision kept a
	// virtual object virtual across a non-inlined call because every
	// possible callee's summary proves the argument position unobserved.
	KindSummary            Kind = "summary"
	KindSummaryKeptVirtual Kind = "summary_kept_virtual"

	// VM lifecycle.
	KindVMCompile       Kind = "vm_compile"
	KindVMDeopt         Kind = "vm_deopt"
	KindVMRematerialize Kind = "vm_rematerialize"
	KindVMInvalidate    Kind = "vm_invalidate"
	KindVMRecompile     Kind = "vm_recompile"
	// On-stack replacement: a hot loop header requests compilation of an
	// alternate entry point, and an interpreter frame is transferred into
	// the installed OSR code mid-loop.
	KindVMOSRRequest Kind = "vm_osr_request"
	KindVMOSREnter   Kind = "vm_osr_enter"

	// Compile-broker lifecycle: a hot method enters the queue, compiled
	// code is installed (freshly compiled or replayed from the code
	// cache), a duplicate submission is coalesced, or a submission is
	// rejected because the bounded queue is full.
	KindBrokerSubmit  Kind = "broker_submit"
	KindBrokerInstall Kind = "broker_install"
	KindBrokerDedup   Kind = "broker_dedup"
	KindBrokerReject  Kind = "broker_reject"
	// Fault containment: a compile pipeline run panicked and the broker
	// converted the panic into a structured per-method failure (the VM
	// keeps running; the method degrades to the interpreter).
	KindBrokerPanic Kind = "broker_panic"

	// Compile retry/backoff: a transiently failed or queue-rejected
	// submission was re-armed — the method becomes submit-eligible again
	// once its hotness counter passes the backed-off threshold.
	KindVMRearm Kind = "vm_rearm"
	// Crash forensics: a minimized reproducer for a compiler panic was
	// written to the crash directory (HotSpot replay-file analogue).
	KindVMCrashRepro Kind = "vm_crash_repro"

	// IR snapshot hook (used by irdump): the event carries the phase name
	// whose output the snapshot represents; the rendered IR is delivered
	// to registered SnapshotFunc callbacks, not serialized into the event.
	KindIRSnapshot Kind = "ir_snapshot"

	// Checker violation: the leveled IR sanitizer found a broken
	// invariant after a phase. Reason carries the violation, Detail the
	// phase (and, when available, a before/after IR diff summary).
	KindCheckViolation Kind = "check_violation"
)

// Event is one structured observability record. Fields are omitted from the
// JSON encoding when empty so each line stays readable and schema-stable.
type Event struct {
	// Seq is a monotonically increasing sequence number per sink.
	Seq int64 `json:"seq"`
	// TNS is nanoseconds since the sink was created (deterministic under a
	// test clock).
	TNS int64 `json:"t_ns"`
	// Kind discriminates the event family.
	Kind Kind `json:"kind"`
	// Phase is the compiler phase or VM stage that emitted the event.
	Phase string `json:"phase,omitempty"`
	// Method is the qualified method name the event concerns.
	Method string `json:"method,omitempty"`
	// Site is the allocation-site identity ("Class.method@bci") a PEA/EA
	// decision or rematerialization is attributed to. Allocation sites are
	// stable under inlining: the site names the method that contains the
	// `new` in its bytecode, not the method being compiled.
	Site string `json:"site,omitempty"`
	// Detail is a free-form human hint (callee name, class name, …).
	Detail string `json:"detail,omitempty"`
	// Obj is a PEA virtual-object id ("o3") or VM vobj index.
	Obj string `json:"obj,omitempty"`
	// Node is the IR node ("v12") or position the event is anchored at.
	Node string `json:"node,omitempty"`
	// Block is the IR block ("b2") the event is anchored at.
	Block string `json:"block,omitempty"`
	// Reason explains a decision (materialization cause, deopt reason…).
	Reason string `json:"reason,omitempty"`
	// Round is the PEA fixpoint round, when applicable.
	Round int `json:"round,omitempty"`
	// NodesBefore/NodesAfter and BlocksBefore/BlocksAfter bracket phase
	// events with graph sizes.
	NodesBefore  int `json:"nodes_before,omitempty"`
	NodesAfter   int `json:"nodes_after,omitempty"`
	BlocksBefore int `json:"blocks_before,omitempty"`
	BlocksAfter  int `json:"blocks_after,omitempty"`
	// DurationNS is the wall time of the phase, on phase_end events.
	DurationNS int64 `json:"duration_ns,omitempty"`
}

// Backend consumes events from a Sink. Implementations must be safe for the
// Sink's locking discipline: the sink serializes Write calls.
type Backend interface {
	Write(e *Event)
}

// SnapshotFunc receives per-phase IR snapshots (see Sink.Snapshot). The
// renderer is only invoked if at least one snapshot func is registered.
type SnapshotFunc func(phase, method string, render func() string)

// Sink fans events out to backends. A nil *Sink is valid and inert: all
// emit helpers return immediately without allocating.
type Sink struct {
	mu       sync.Mutex
	seq      int64
	start    time.Time
	now      func() time.Time
	backends []Backend
	snaps    []SnapshotFunc
	metrics  *Metrics
}

// NewSink creates a sink writing to the given backends. Attach a metrics
// registry with SetMetrics to have decision events bump counters
// automatically.
func NewSink(backends ...Backend) *Sink {
	s := &Sink{now: time.Now, backends: backends}
	s.start = s.now()
	return s
}

// SetClock replaces the sink's time source (for deterministic tests). The
// sink's zero point is reset to the clock's current value.
func (s *Sink) SetClock(now func() time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.now = now
	s.start = now()
	s.mu.Unlock()
}

// SetMetrics attaches a metrics registry; decision events will also bump
// the corresponding counters so event streams and metric snapshots agree.
func (s *Sink) SetMetrics(m *Metrics) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.metrics = m
	s.mu.Unlock()
}

// Metrics returns the attached registry (nil-safe).
func (s *Sink) Metrics() *Metrics {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics
}

// AddBackend appends a backend to the fan-out list.
func (s *Sink) AddBackend(b Backend) {
	if s == nil || b == nil {
		return
	}
	s.mu.Lock()
	s.backends = append(s.backends, b)
	s.mu.Unlock()
}

// RemoveBackend detaches a backend previously added with AddBackend (or
// passed to NewSink). Used by transient attachments such as the pea legacy
// trace shim. Identity is decided by sameBackend, which is safe for
// uncomparable backend types (such as FuncBackend).
func (s *Sink) RemoveBackend(b Backend) {
	if s == nil || b == nil {
		return
	}
	s.mu.Lock()
	for i, x := range s.backends {
		if sameBackend(x, b) {
			s.backends = append(s.backends[:i], s.backends[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

// sameBackend reports whether two backends are the same attachment.
// Dynamic types that Go cannot compare (functions, slices) are matched by
// reflect identity of their data pointer instead of panicking.
func sameBackend(a, b Backend) bool {
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) {
		return false
	}
	if ta.Comparable() {
		return a == b
	}
	switch ta.Kind() {
	case reflect.Func, reflect.Slice, reflect.Map, reflect.Chan:
		return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
	default:
		return false
	}
}

// OnSnapshot registers a callback for per-phase IR snapshots.
func (s *Sink) OnSnapshot(f SnapshotFunc) {
	if s == nil || f == nil {
		return
	}
	s.mu.Lock()
	s.snaps = append(s.snaps, f)
	s.mu.Unlock()
}

// WantSnapshots reports whether any snapshot consumer is registered, so
// callers can skip rendering IR text when nobody is listening.
func (s *Sink) WantSnapshots() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snaps) > 0
}

// Snapshot delivers a lazily rendered IR snapshot for the given phase to
// all registered snapshot consumers and records an ir_snapshot event.
func (s *Sink) Snapshot(phase, method string, render func() string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	snaps := s.snaps
	s.mu.Unlock()
	if len(snaps) == 0 {
		return
	}
	s.emit(&Event{Kind: KindIRSnapshot, Phase: phase, Method: method})
	for _, f := range snaps {
		f(phase, method, render)
	}
}

// emit stamps and writes an event. The caller must not retain e.
func (s *Sink) emit(e *Event) {
	s.mu.Lock()
	s.seq++
	e.Seq = s.seq
	e.TNS = s.now().Sub(s.start).Nanoseconds()
	for _, b := range s.backends {
		b.Write(e)
	}
	s.mu.Unlock()
}

// --- Typed emit helpers -------------------------------------------------
//
// Each helper takes only scalars and early-returns on a nil receiver so the
// disabled path is allocation-free (the Event literal is only constructed
// after the nil check, and never escapes the enabled path's emit call).

// PhaseStart records the beginning of a compiler phase.
func (s *Sink) PhaseStart(phase, method string, nodes, blocks int) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindPhaseStart, Phase: phase, Method: method,
		NodesBefore: nodes, BlocksBefore: blocks})
}

// PhaseEnd records the end of a compiler phase with size deltas and wall
// time, and feeds the attached metrics registry's per-phase timers.
func (s *Sink) PhaseEnd(phase, method string, nodesBefore, blocksBefore, nodesAfter, blocksAfter int, d time.Duration) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindPhaseEnd, Phase: phase, Method: method,
		NodesBefore: nodesBefore, BlocksBefore: blocksBefore,
		NodesAfter: nodesAfter, BlocksAfter: blocksAfter,
		DurationNS: d.Nanoseconds()})
	s.Metrics().ObservePhase(phase, d, nodesAfter-nodesBefore)
}

// CheckViolation records an IR sanitizer violation found after a phase.
// The reason is the checker's error; detail typically names what the
// forensic dump diff revealed (or is empty).
func (s *Sink) CheckViolation(phase, method, reason, detail string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindCheckViolation, Phase: phase, Method: method,
		Reason: reason, Detail: detail})
	s.Metrics().Add(MetricCheckViolations, 1)
}

// SummaryReady records that an inter-procedural summary set is available:
// methods summarized, ref parameters proven no-escape, predicate edges,
// and where the set came from ("computed", "memory", "store").
func (s *Sink) SummaryReady(methods, noEscape, preds int, source string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindSummary, Phase: "summary", Reason: source,
		Detail: fmt.Sprintf("methods=%d no_escape_params=%d preds=%d", methods, noEscape, preds)})
	s.Metrics().Add(MetricSummarySets, 1)
}

// SummaryKeptVirtual records that PEA kept a virtual object virtual across
// a non-inlined call at node because the callee summary proves the
// argument unobserved, attributed to the object's allocation site.
func (s *Sink) SummaryKeptVirtual(method, obj, node, block, callee, site string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindSummaryKeptVirtual, Phase: "pea", Method: method,
		Obj: obj, Node: node, Block: block, Detail: callee, Site: site})
	s.Metrics().Add(MetricSummaryKept, 1)
}

// Inline records an inlining decision: callee inlined into method at node.
func (s *Sink) Inline(method, callee, node string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindInline, Phase: "inline", Method: method,
		Detail: callee, Node: node})
	s.Metrics().Add(MetricInlines, 1)
}

// Virtualize records a PEA allocation-virtualization decision. site is the
// allocation-site identity ("Class.method@bci") for escape attribution.
func (s *Sink) Virtualize(method, obj, class, node, site string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVirtualize, Phase: "pea", Method: method,
		Obj: obj, Detail: class, Node: node, Site: site})
	s.Metrics().Add(MetricVirtualized, 1)
}

// Materialize records a PEA materialization with its cause and position,
// attributed to the allocation site.
func (s *Sink) Materialize(method, obj, node, block, reason, site string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindMaterialize, Phase: "pea", Method: method,
		Obj: obj, Node: node, Block: block, Reason: reason, Site: site})
	s.Metrics().Add(MetricMaterialized, 1)
}

// MergeMaterialize records a materialization forced by a control-flow merge
// (paper §4.3, Figure 6), attributed to the allocation site.
func (s *Sink) MergeMaterialize(method, obj, block, reason, site string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindMergeMaterialize, Phase: "pea", Method: method,
		Obj: obj, Block: block, Reason: reason, Site: site})
	s.Metrics().Add(MetricMergeMaterialized, 1)
	s.Metrics().Add(MetricMaterialized, 1)
}

// LockElide records an elided monitor operation on a virtual object,
// attributed to the object's allocation site.
func (s *Sink) LockElide(method, obj, node, op, site string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindLockElide, Phase: "pea", Method: method,
		Obj: obj, Node: node, Detail: op, Site: site})
	s.Metrics().Add(MetricLocksElided, 1)
}

// PEARound records the start of a PEA fixpoint iteration round.
func (s *Sink) PEARound(method string, round int) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindPEARound, Phase: "pea", Method: method, Round: round})
}

// PEAFixpoint records loop-state convergence after the given round count.
func (s *Sink) PEAFixpoint(method string, rounds int) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindPEAFixpoint, Phase: "pea", Method: method, Round: rounds})
}

// PEABailout records PEA giving up on a method, with the reason.
func (s *Sink) PEABailout(method, reason string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindPEABailout, Phase: "pea", Method: method, Reason: reason})
	s.Metrics().Add(MetricPEABailouts, 1)
}

// PEAState records a formatted PEA abstract-state line (block entry change
// during the fixpoint). Detail carries the rendered state.
func (s *Sink) PEAState(method, block, state string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindPEAState, Phase: "pea", Method: method,
		Block: block, Detail: state})
}

// EAVerdict records the whole-method escape-analysis baseline verdict for
// an allocation: verdict is "captured" or "escapes", reason the cause,
// site the allocation-site identity.
func (s *Sink) EAVerdict(method, node, verdict, reason, site string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindEAVerdict, Phase: "ea", Method: method,
		Node: node, Detail: verdict, Reason: reason, Site: site})
	if verdict == "captured" {
		s.Metrics().Add(MetricEACaptured, 1)
	} else {
		s.Metrics().Add(MetricEAEscaped, 1)
	}
}

// VMCompile records a tier-up compilation of a method.
func (s *Sink) VMCompile(method string, invocations int) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVMCompile, Phase: "vm", Method: method, Round: invocations})
	s.Metrics().Add(MetricVMCompiles, 1)
}

// VMDeopt records a deoptimization with its reason at the given node.
func (s *Sink) VMDeopt(method, node, reason string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVMDeopt, Phase: "vm", Method: method,
		Node: node, Reason: reason})
	s.Metrics().Add(MetricVMDeopts, 1)
}

// VMRematerialize records one virtual object rematerialized during deopt,
// attributed to its original allocation site.
func (s *Sink) VMRematerialize(method, obj, class, site string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVMRematerialize, Phase: "vm", Method: method,
		Obj: obj, Detail: class, Site: site})
	s.Metrics().Add(MetricVMRemats, 1)
}

// VMInvalidate records invalidation of a compiled method.
func (s *Sink) VMInvalidate(method, reason string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVMInvalidate, Phase: "vm", Method: method, Reason: reason})
	s.Metrics().Add(MetricVMInvalidations, 1)
}

// VMOSRRequest records a hot loop header (bci) requesting an on-stack-
// replacement compile after count back edges.
func (s *Sink) VMOSRRequest(method string, bci int, count int) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVMOSRRequest, Phase: "vm", Method: method,
		Node: fmt.Sprintf("bci%d", bci), Round: count})
	s.Metrics().Add(MetricVMOSRRequests, 1)
}

// VMOSREnter records an interpreter frame transferring into compiled OSR
// code at the loop header bci.
func (s *Sink) VMOSREnter(method string, bci int) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVMOSREnter, Phase: "vm", Method: method,
		Node: fmt.Sprintf("bci%d", bci)})
	s.Metrics().Add(MetricVMOSREntries, 1)
}

// VMRecompile records a method being compiled again after invalidation.
func (s *Sink) VMRecompile(method string, generation int) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVMRecompile, Phase: "vm", Method: method, Round: generation})
	s.Metrics().Add(MetricVMRecompiles, 1)
}

// BrokerSubmit records a hot method entering the compile queue. hotness is
// the invocation count that triggered tier-up, depth the queue depth after
// the submission.
func (s *Sink) BrokerSubmit(method string, hotness, depth int) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindBrokerSubmit, Phase: "broker", Method: method,
		Round: hotness, NodesAfter: depth})
	s.Metrics().Add(MetricBrokerSubmits, 1)
}

// BrokerInstall records compiled code being published for a method. source
// is "compiled" for a fresh pipeline run, "cache" for an in-memory
// code-cache replay, or "disk" for an artifact reloaded and re-verified
// from the persistent store; the cache counters are bumped accordingly.
func (s *Sink) BrokerInstall(method, source string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindBrokerInstall, Phase: "broker", Method: method, Detail: source})
	switch source {
	case "cache":
		s.Metrics().Add(MetricBrokerCacheHits, 1)
	case "disk":
		s.Metrics().Add(MetricBrokerDiskHits, 1)
	default:
		s.Metrics().Add(MetricBrokerCacheMisses, 1)
		s.Metrics().Add(MetricBrokerCompiles, 1)
	}
}

// BrokerDedup records a submission coalesced with an in-flight compile of
// the same method.
func (s *Sink) BrokerDedup(method string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindBrokerDedup, Phase: "broker", Method: method})
	s.Metrics().Add(MetricBrokerDedups, 1)
}

// BrokerReject records a submission dropped because the bounded queue was
// full.
func (s *Sink) BrokerReject(method, reason string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindBrokerReject, Phase: "broker", Method: method, Reason: reason})
	s.Metrics().Add(MetricBrokerRejects, 1)
}

// BrokerPanic records a compile pipeline panic contained by the broker:
// the panic value is carried in Reason; the method degrades to the
// interpreter instead of the process dying.
func (s *Sink) BrokerPanic(method, reason string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindBrokerPanic, Phase: "broker", Method: method, Reason: reason})
	s.Metrics().Add(MetricBrokerPanics, 1)
}

// VMRearm records a transiently failed (or queue-rejected) compilation
// being re-armed with backoff: attempt is the retry ordinal, nextHotness
// the hotness-counter value at which the method becomes submit-eligible
// again.
func (s *Sink) VMRearm(method, reason string, attempt int, nextHotness int64) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVMRearm, Phase: "vm", Method: method, Reason: reason,
		Round: attempt, NodesAfter: int(nextHotness)})
	s.Metrics().Add(MetricVMRearms, 1)
}

// VMCrashRepro records a minimized compiler-crash reproducer being written
// to the crash directory; detail is the file path.
func (s *Sink) VMCrashRepro(method, path string) {
	if s == nil {
		return
	}
	s.emit(&Event{Kind: KindVMCrashRepro, Phase: "vm", Method: method, Detail: path})
	s.Metrics().Add(MetricVMCrashRepros, 1)
}

// --- PhaseSpan ----------------------------------------------------------

// PhaseSpan brackets a phase: StartPhase emits phase_start and captures the
// clock; End emits phase_end with deltas. The zero PhaseSpan (from a nil
// sink) is inert.
type PhaseSpan struct {
	sink         *Sink
	phase        string
	method       string
	nodesBefore  int
	blocksBefore int
	t0           time.Time
}

// StartPhase begins a phase span on s (which may be nil).
func StartPhase(s *Sink, phase, method string, nodes, blocks int) PhaseSpan {
	if s == nil {
		return PhaseSpan{}
	}
	s.PhaseStart(phase, method, nodes, blocks)
	s.mu.Lock()
	t0 := s.now()
	s.mu.Unlock()
	return PhaseSpan{sink: s, phase: phase, method: method,
		nodesBefore: nodes, blocksBefore: blocks, t0: t0}
}

// End completes the span with the post-phase graph sizes.
func (p PhaseSpan) End(nodes, blocks int) {
	if p.sink == nil {
		return
	}
	p.sink.mu.Lock()
	d := p.sink.now().Sub(p.t0)
	p.sink.mu.Unlock()
	p.sink.PhaseEnd(p.phase, p.method, p.nodesBefore, p.blocksBefore, nodes, blocks, d)
}

// --- Backends -----------------------------------------------------------

// JSONBackend writes one JSON object per line (JSONL).
type JSONBackend struct {
	w   io.Writer
	enc *json.Encoder
}

// NewJSONBackend creates a JSONL backend over w.
func NewJSONBackend(w io.Writer) *JSONBackend {
	return &JSONBackend{w: w, enc: json.NewEncoder(w)}
}

// Write implements Backend.
func (b *JSONBackend) Write(e *Event) {
	_ = b.enc.Encode(e) // Encoder appends '\n' after each value.
}

// TextBackend writes one human-readable line per event.
type TextBackend struct {
	w io.Writer
}

// NewTextBackend creates a text backend over w.
func NewTextBackend(w io.Writer) *TextBackend {
	return &TextBackend{w: w}
}

// Write implements Backend.
func (b *TextBackend) Write(e *Event) {
	fmt.Fprintf(b.w, "%s", e.Kind)
	if e.Phase != "" && e.Phase != string(e.Kind) {
		fmt.Fprintf(b.w, " phase=%s", e.Phase)
	}
	if e.Method != "" {
		fmt.Fprintf(b.w, " method=%s", e.Method)
	}
	if e.Site != "" {
		fmt.Fprintf(b.w, " site=%s", e.Site)
	}
	if e.Obj != "" {
		fmt.Fprintf(b.w, " obj=%s", e.Obj)
	}
	if e.Node != "" {
		fmt.Fprintf(b.w, " node=%s", e.Node)
	}
	if e.Block != "" {
		fmt.Fprintf(b.w, " block=%s", e.Block)
	}
	if e.Detail != "" {
		fmt.Fprintf(b.w, " detail=%q", e.Detail)
	}
	if e.Reason != "" {
		fmt.Fprintf(b.w, " reason=%s", e.Reason)
	}
	if e.Round != 0 {
		fmt.Fprintf(b.w, " round=%d", e.Round)
	}
	if e.Kind == KindPhaseEnd {
		fmt.Fprintf(b.w, " nodes=%d→%d blocks=%d→%d dur=%s",
			e.NodesBefore, e.NodesAfter, e.BlocksBefore, e.BlocksAfter,
			time.Duration(e.DurationNS))
	}
	fmt.Fprintln(b.w)
}

// FuncBackend adapts a function to the Backend interface.
type FuncBackend func(e *Event)

// Write implements Backend.
func (f FuncBackend) Write(e *Event) { f(e) }
