package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// TraceWriter is a Backend that renders events in the Chrome trace_event
// JSON-array format, loadable in Perfetto / chrome://tracing. Compiler
// phases become duration slices ("B"/"E" pairs), VM and broker lifecycle
// events become instant markers, and each method gets its own thread lane
// (named via "M" metadata events) so concurrent broker workers' compiles
// stack visually per method instead of interleaving.
//
// The writer emits incrementally; call Close to terminate the JSON array.
// Trace-viewer parsers accept an unterminated array too, so a trace cut off
// by a crash still loads.
type TraceWriter struct {
	mu     sync.Mutex
	w      io.Writer
	tids   map[string]int
	opened bool
	closed bool
	err    error
}

// NewTraceWriter creates a trace writer over w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w, tids: make(map[string]int)}
}

// traceEvent is one chrome trace_event record.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Cat  string            `json:"cat,omitempty"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

// instantKinds maps lifecycle event kinds to a trace category.
var instantKinds = map[Kind]string{
	KindVMCompile:       "vm",
	KindVMDeopt:         "vm",
	KindVMRematerialize: "vm",
	KindVMInvalidate:    "vm",
	KindVMRecompile:     "vm",
	KindVMOSRRequest:    "vm",
	KindVMOSREnter:      "vm",
	KindVMRearm:         "vm",
	KindVMCrashRepro:    "vm",
	KindBrokerSubmit:    "broker",
	KindBrokerInstall:   "broker",
	KindBrokerDedup:     "broker",
	KindBrokerReject:    "broker",
	KindBrokerPanic:     "broker",
	KindPEABailout:      "pea",
	KindCheckViolation:  "check",
}

// Write implements Backend.
func (t *TraceWriter) Write(e *Event) {
	var te traceEvent
	switch {
	case e.Kind == KindPhaseStart:
		te = traceEvent{Name: e.Phase, Ph: "B", Cat: "compile"}
	case e.Kind == KindPhaseEnd:
		te = traceEvent{Name: e.Phase, Ph: "E", Cat: "compile"}
	default:
		cat, ok := instantKinds[e.Kind]
		if !ok {
			return
		}
		te = traceEvent{Name: string(e.Kind), Ph: "i", Cat: cat, S: "t"}
		args := make(map[string]string, 2)
		if e.Reason != "" {
			args["reason"] = e.Reason
		}
		if e.Detail != "" {
			args["detail"] = e.Detail
		}
		if e.Site != "" {
			args["site"] = e.Site
		}
		if len(args) > 0 {
			te.Args = args
		}
	}
	te.TS = e.TNS / 1000
	te.PID = 1

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || t.err != nil {
		return
	}
	tid, ok := t.tids[e.Method]
	if !ok {
		// First event for this method: allocate a lane (first-seen order)
		// and emit its thread_name metadata record.
		tid = len(t.tids) + 1
		t.tids[e.Method] = tid
		name := e.Method
		if name == "" {
			name = "(vm)"
		}
		t.emit(traceEvent{Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]string{"name": name}})
	}
	te.TID = tid
	t.emit(te)
}

// emit writes one record with the array framing (caller holds t.mu).
func (t *TraceWriter) emit(te traceEvent) {
	b, err := json.Marshal(te)
	if err != nil {
		t.err = err
		return
	}
	sep := ",\n"
	if !t.opened {
		sep = "[\n"
		t.opened = true
	}
	if _, err := io.WriteString(t.w, sep); err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// Close terminates the JSON array. Further writes are dropped.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if t.err != nil {
		return t.err
	}
	end := "]\n"
	if !t.opened {
		end = "[]\n"
	}
	if _, err := io.WriteString(t.w, end); err != nil {
		t.err = err
	}
	return t.err
}
