package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// EscapeTable is a Backend that aggregates PEA/EA decision events by
// allocation site into a Table-1-style escape-attribution report: for every
// site ("Class.method@bci") it counts virtualizations, compile-time
// materializations (with their cause), deopt-time rematerializations, lock
// elisions, and the EA baseline's captured/escapes verdicts. Attach it to
// the VM's sink and render with Table after the run:
//
//	et := obs.NewEscapeTable()
//	sink.AddBackend(et)
//	...
//	fmt.Print(et.Table())
//
// The totals row always equals the metrics registry's MetricVirtualized /
// MetricMaterialized counters: both are fed by the same events.
type EscapeTable struct {
	mu    sync.Mutex
	sites map[string]*SiteStats
}

// SiteStats is the aggregated escape behavior of one allocation site.
type SiteStats struct {
	// Site is the allocation-site identity ("Class.method@bci"). Sites are
	// stable under inlining: the site names the method whose bytecode
	// contains the `new`, not the methods it was inlined into.
	Site string `json:"site"`
	// Class is the allocated class name (or "kind[len]" for arrays).
	Class string `json:"class,omitempty"`
	// Virtualized counts scalar-replacement decisions (the allocation was
	// removed from some compiled graph).
	Virtualized int64 `json:"virtualized"`
	// Materialized counts compile-time materializations: PEA re-inserted
	// the allocation on some path (merge, escape op, non-inlined call).
	Materialized int64 `json:"materialized"`
	// Remats counts deopt-time rematerializations by the VM runtime.
	Remats int64 `json:"remats,omitempty"`
	// KeptVirtual counts call arguments where the site's object stayed
	// virtual across a non-inlined call under a callee escape summary
	// (inter-procedural analysis, internal/summary).
	KeptVirtual int64 `json:"kept_virtual,omitempty"`
	// LocksElided counts elided monitor operations on the site's objects.
	LocksElided int64 `json:"locks_elided,omitempty"`
	// Captured/Escaped count the flow-insensitive EA baseline's verdicts.
	Captured int64 `json:"captured,omitempty"`
	Escaped  int64 `json:"escaped,omitempty"`
	// Reasons histograms materialization causes by coarse bucket: "merge"
	// (control-flow merges, Figure 6), "non-inlined-call" (the object
	// escaped into a call that was not inlined), "escape-op" (stores to
	// escaped state, returns, throws), and "deopt-remat" (rematerialized
	// while deoptimizing).
	Reasons map[string]int64 `json:"reasons,omitempty"`
	// DominantReason is the most frequent Reasons bucket with the most
	// frequent raw cause in parentheses, e.g. "escape-op (StoreStatic)".
	DominantReason string `json:"dominant_reason,omitempty"`

	// rawReasons histograms the uncoarsened reason strings for the
	// parenthesized detail of DominantReason.
	rawReasons map[string]int64
}

// NewEscapeTable creates an empty escape-attribution aggregator.
func NewEscapeTable() *EscapeTable {
	return &EscapeTable{sites: make(map[string]*SiteStats)}
}

// bucketReason coarsens a materialization cause into the paper's attribution
// buckets.
func bucketReason(kind Kind, reason string) string {
	if kind == KindVMRematerialize {
		return "deopt-remat"
	}
	switch {
	case strings.HasPrefix(reason, "merge-"):
		return "merge"
	case reason == "Invoke":
		return "non-inlined-call"
	case reason == "MonitorEnter" || reason == "MonitorExit":
		// Synchronization forced the object to exist (un-elidable
		// monitor) — distinct from call escapes so summary ablations
		// attribute wins to the right sites.
		return "monitor-sink"
	case reason == "Print":
		// Native output sink (currently unreachable for refs — print
		// takes ints — but the bucket keeps attribution exhaustive).
		return "print-sink"
	default:
		// StoreStatic, StoreField, Return, Throw, store-cycle,
		// non-const-index, ...: the object reached an operation that
		// forces it to exist.
		return "escape-op"
	}
}

// Write implements Backend. Events without attribution (no Site) fall back
// to the emitting method's name so hand-built graphs still aggregate.
func (t *EscapeTable) Write(e *Event) {
	switch e.Kind {
	case KindVirtualize, KindMaterialize, KindMergeMaterialize,
		KindLockElide, KindEAVerdict, KindVMRematerialize,
		KindSummaryKeptVirtual:
	default:
		return
	}
	site := e.Site
	if site == "" {
		site = e.Method
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.sites[site]
	if st == nil {
		st = &SiteStats{Site: site,
			Reasons:    make(map[string]int64),
			rawReasons: make(map[string]int64)}
		t.sites[site] = st
	}
	switch e.Kind {
	case KindVirtualize:
		st.Virtualized++
		st.Class = e.Detail
	case KindMaterialize, KindMergeMaterialize:
		st.Materialized++
		st.Reasons[bucketReason(e.Kind, e.Reason)]++
		st.rawReasons[e.Reason]++
	case KindVMRematerialize:
		st.Remats++
		st.Reasons["deopt-remat"]++
		st.rawReasons["deopt-remat"]++
		if st.Class == "" {
			st.Class = e.Detail
		}
	case KindLockElide:
		st.LocksElided++
	case KindSummaryKeptVirtual:
		st.KeptVirtual++
	case KindEAVerdict:
		if e.Detail == "captured" {
			st.Captured++
		} else {
			st.Escaped++
		}
	}
}

// dominant returns the highest-count key of h (ties break alphabetically,
// for determinism) or "" when h is empty.
func dominant(h map[string]int64) string {
	best, bestN := "", int64(-1)
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if h[k] > bestN {
			best, bestN = k, h[k]
		}
	}
	return best
}

// Snapshot returns the per-site statistics sorted by site, with
// DominantReason resolved. The returned slice is a deep-enough copy:
// mutating it does not affect the aggregator.
func (t *EscapeTable) Snapshot() []SiteStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SiteStats, 0, len(t.sites))
	for _, st := range t.sites {
		c := *st
		c.Reasons = make(map[string]int64, len(st.Reasons))
		for k, v := range st.Reasons {
			c.Reasons[k] = v
		}
		c.rawReasons = nil
		if b := dominant(st.Reasons); b != "" {
			raw := dominant(st.rawReasons)
			if raw != "" && raw != b {
				c.DominantReason = fmt.Sprintf("%s (%s)", b, raw)
			} else {
				c.DominantReason = b
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Table renders the aggregation as a fixed-width text table (the paper's
// Table 1 shape) with a totals row. Totals agree with the metrics registry:
// sum(virt) == MetricVirtualized, sum(mat) == MetricMaterialized,
// sum(remat) == MetricVMRemats, sum(locks) == MetricLocksElided.
func (t *EscapeTable) Table() string {
	snap := t.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %-10s %6s %6s %6s %6s %6s  %s\n",
		"SITE", "CLASS", "VIRT", "MAT", "REMAT", "LOCKS", "KEPT", "DOMINANT REASON")
	var virt, mat, remat, locks, kept int64
	for _, s := range snap {
		fmt.Fprintf(&b, "%-32s %-10s %6d %6d %6d %6d %6d  %s\n",
			s.Site, s.Class, s.Virtualized, s.Materialized, s.Remats,
			s.LocksElided, s.KeptVirtual, s.DominantReason)
		virt += s.Virtualized
		mat += s.Materialized
		remat += s.Remats
		locks += s.LocksElided
		kept += s.KeptVirtual
	}
	fmt.Fprintf(&b, "%-32s %-10s %6d %6d %6d %6d %6d\n",
		"TOTAL", "", virt, mat, remat, locks, kept)
	return b.String()
}
