package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pea/internal/obs/flight"
)

// TestTraceWriterChromeFormat checks that the emitted stream is one valid
// JSON array of trace_event records: phase B/E pairs, lifecycle instants,
// and one named thread lane per method.
func TestTraceWriterChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	s := NewSink(tw)
	s.SetClock(func() func() time.Time {
		t0 := time.Unix(0, 0)
		n := 0
		return func() time.Time { n++; return t0.Add(time.Duration(n) * time.Millisecond) }
	}())

	s.PhaseStart("build", "Main.getValue", 10, 2)
	s.PhaseEnd("build", "Main.getValue", 10, 2, 12, 2, time.Millisecond)
	s.PhaseStart("pea", "Main.getValue", 12, 2)
	s.Virtualize("Main.getValue", "o0", "Key", "v1", "Main.getValue@0") // no trace output
	s.PhaseEnd("pea", "Main.getValue", 12, 2, 8, 2, time.Millisecond)
	s.VMCompile("Main.main", 20)
	s.VMDeopt("Main.main", "v7", "speculation-failed")
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not a valid JSON array: %v\n%s", err, buf.String())
	}

	var phases []string
	lanes := make(map[string]float64) // thread_name -> tid
	instants := 0
	for _, e := range events {
		switch e["ph"] {
		case "B", "E":
			phases = append(phases, e["ph"].(string)+":"+e["name"].(string))
		case "M":
			args := e["args"].(map[string]any)
			lanes[args["name"].(string)] = e["tid"].(float64)
		case "i":
			instants++
			if e["s"] != "t" {
				t.Errorf("instant without thread scope: %v", e)
			}
		}
	}
	want := []string{"B:build", "E:build", "B:pea", "E:pea"}
	if strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Errorf("phase slices = %v, want %v", phases, want)
	}
	if instants != 2 {
		t.Errorf("instants = %d, want 2 (vm_compile, vm_deopt)", instants)
	}
	if len(lanes) != 2 || lanes["Main.getValue"] == lanes["Main.main"] {
		t.Errorf("thread lanes = %v, want distinct lanes for 2 methods", lanes)
	}
	// Deopt instant carries its reason in args.
	found := false
	for _, e := range events {
		if e["name"] == "vm_deopt" {
			args := e["args"].(map[string]any)
			found = args["reason"] == "speculation-failed"
		}
	}
	if !found {
		t.Error("vm_deopt instant missing reason arg")
	}
}

// TestTraceWriterEmptyClose checks the empty-stream framing.
func TestTraceWriterEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty trace = %q, want []", buf.String())
	}
}

// TestHandlerEndpoints checks the introspection mux end to end against an
// httptest server: flight JSONL, escape table (text and JSON), metrics, and
// pprof index.
func TestHandlerEndpoints(t *testing.T) {
	fl := flight.New(64)
	fl.SetMethodNames([]string{"Main.main"})
	fl.Record(flight.KindCompileStart, 0, -1, 20, 0, 0)
	fl.Record(flight.KindCompileFinish, 0, -1, 1234, 0, 0)

	et := NewEscapeTable()
	m := NewMetrics()
	s := NewSink(et)
	s.SetMetrics(m)
	s.Virtualize("Main.getValue", "o0", "Key", "v1", "Main.getValue@0")

	srv := httptest.NewServer(Handler(fl, et, m))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/pea/flight"); code != 200 ||
		!strings.Contains(body, `"kind":"compile_start"`) ||
		!strings.Contains(body, `"method":"Main.main"`) {
		t.Errorf("/debug/pea/flight = %d:\n%s", code, body)
	}
	if code, body := get("/debug/pea/escape"); code != 200 ||
		!strings.Contains(body, "Main.getValue@0") || !strings.Contains(body, "TOTAL") {
		t.Errorf("/debug/pea/escape = %d:\n%s", code, body)
	}
	code, body := get("/debug/pea/escape?format=json")
	var sites []SiteStats
	if code != 200 || json.Unmarshal([]byte(body), &sites) != nil ||
		len(sites) != 1 || sites[0].Virtualized != 1 {
		t.Errorf("/debug/pea/escape?format=json = %d:\n%s", code, body)
	}
	if code, body := get("/debug/pea/metrics"); code != 200 ||
		!strings.Contains(body, MetricVirtualized) {
		t.Errorf("/debug/pea/metrics = %d:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Errorf("/debug/vars = %d", code)
	}
	// nil receivers 404 instead of panicking.
	srv2 := httptest.NewServer(Handler(nil, nil, nil))
	defer srv2.Close()
	resp, err := srv2.Client().Get(srv2.URL + "/debug/pea/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("nil flight endpoint = %d, want 404", resp.StatusCode)
	}
}
