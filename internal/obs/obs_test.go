package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fixedClock returns a clock frozen at the unix epoch, so sequence numbers
// are the only thing distinguishing events.
func fixedClock() func() time.Time {
	t0 := time.Unix(0, 0)
	return func() time.Time { return t0 }
}

// TestNilSinkNoAllocs enforces the package's core contract: with
// observability disabled (nil sink, nil metrics) every emit helper is
// allocation-free. The compile hot path relies on this.
func TestNilSinkNoAllocs(t *testing.T) {
	var s *Sink
	var m *Metrics
	allocs := testing.AllocsPerRun(200, func() {
		s.PhaseStart("pea", "M.m", 10, 2)
		s.PhaseEnd("pea", "M.m", 10, 2, 8, 2, time.Millisecond)
		s.Inline("M.m", "M.callee", "v3")
		s.Virtualize("M.m", "o0", "Key", "v1", "M.m@0")
		s.Materialize("M.m", "o0", "v9", "b2", "StoreStatic", "M.m@0")
		s.MergeMaterialize("M.m", "o0", "b4", "merge-mixed", "M.m@0")
		s.LockElide("M.m", "o0", "v5", "monitorenter", "M.m@0")
		s.PEARound("M.m", 1)
		s.PEAFixpoint("M.m", 2)
		s.PEABailout("M.m", "no fixpoint")
		s.PEAState("M.m", "b1", "state")
		s.EAVerdict("M.m", "v1", "captured", "", "M.m@0")
		s.VMCompile("M.m", 20)
		s.VMDeopt("M.m", "v7", "branch-mispredict")
		s.VMRematerialize("M.m", "vobj0", "Key", "M.m@0")
		s.VMInvalidate("M.m", "deopt")
		s.VMRecompile("M.m", 1)
		s.Snapshot("pea", "M.m", nil)
		if s.WantSnapshots() {
			t.Fatal("nil sink wants snapshots")
		}
		span := StartPhase(s, "pea", "M.m", 10, 2)
		span.End(8, 2)
		m.Add(MetricVirtualized, 1)
		m.SetGauge("g", 3)
		m.ObservePhase("pea", time.Millisecond, -2)
		_ = m.Counter(MetricVirtualized)
		_ = m.Gauge("g")
		_ = m.Phase("pea")
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f times per run, want 0", allocs)
	}
}

// TestJSONBackendJSONL checks the JSONL backend: one valid JSON object per
// line, monotonically increasing sequence numbers, deterministic
// timestamps under a test clock, and stable kind strings.
func TestJSONBackendJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(NewJSONBackend(&buf))
	s.SetClock(fixedClock())

	s.PhaseStart("pea", "Main.getValue", 40, 8)
	s.Virtualize("Main.getValue", "o0", "Key", "v1", "Main.getValue@0")
	s.LockElide("Main.getValue", "o0", "v5", "monitorenter", "Main.getValue@0")
	s.Materialize("Main.getValue", "o0", "v10", "b2", "StoreStatic", "Main.getValue@0")
	s.PhaseEnd("pea", "Main.getValue", 40, 8, 36, 8, 0)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), buf.String())
	}
	wantKinds := []Kind{KindPhaseStart, KindVirtualize, KindLockElide, KindMaterialize, KindPhaseEnd}
	for i, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, ln)
		}
		if e.Seq != int64(i+1) {
			t.Errorf("line %d: seq = %d, want %d", i+1, e.Seq, i+1)
		}
		if e.TNS != 0 {
			t.Errorf("line %d: t_ns = %d, want 0 under fixed clock", i+1, e.TNS)
		}
		if e.Kind != wantKinds[i] {
			t.Errorf("line %d: kind = %q, want %q", i+1, e.Kind, wantKinds[i])
		}
	}
}

// TestSinkMetricsAgreement checks that decision events bump the attached
// registry exactly once each, and that merge materializations count as
// materializations too.
func TestSinkMetricsAgreement(t *testing.T) {
	m := NewMetrics()
	s := NewSink()
	s.SetMetrics(m)

	s.Inline("M.m", "M.c", "v1")
	s.Virtualize("M.m", "o0", "Key", "v1", "M.m@0")
	s.Materialize("M.m", "o0", "v9", "b2", "StoreStatic", "M.m@0")
	s.Materialize("M.m", "o1", "v11", "b3", "Invoke", "M.m@4")
	s.MergeMaterialize("M.m", "o0", "b4", "merge-mixed", "M.m@0")
	s.LockElide("M.m", "o0", "v5", "monitorenter", "M.m@0")
	s.LockElide("M.m", "o0", "v6", "monitorexit", "M.m@0")
	s.PEABailout("M.m", "no fixpoint")
	s.EAVerdict("M.m", "v1", "captured", "", "M.m@0")
	s.EAVerdict("M.m", "v2", "escapes", "returned", "M.m@4")
	s.VMCompile("M.m", 20)
	s.VMDeopt("M.m", "v7", "speculation-failed")
	s.VMRematerialize("M.m", "vobj0", "Key", "M.m@0")
	s.VMInvalidate("M.m", "deopt")
	s.VMRecompile("M.m", 1)

	want := map[string]int64{
		MetricInlines:           1,
		MetricVirtualized:       1,
		MetricMaterialized:      3, // 2 in-block + 1 merge
		MetricMergeMaterialized: 1,
		MetricLocksElided:       2,
		MetricPEABailouts:       1,
		MetricEACaptured:        1,
		MetricEAEscaped:         1,
		MetricVMCompiles:        1,
		MetricVMDeopts:          1,
		MetricVMRemats:          1,
		MetricVMInvalidations:   1,
		MetricVMRecompiles:      1,
	}
	for name, v := range want {
		if got := m.Counter(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

// TestPhaseTimers checks ObservePhase aggregation via PhaseEnd and the
// table rendering.
func TestPhaseTimers(t *testing.T) {
	m := NewMetrics()
	s := NewSink()
	s.SetMetrics(m)

	s.PhaseEnd("gvn", "M.m", 40, 8, 36, 8, 2*time.Millisecond)
	s.PhaseEnd("gvn", "M.n", 10, 2, 10, 2, time.Millisecond)

	st := m.Phase("gvn")
	if st.Count != 2 {
		t.Errorf("gvn count = %d, want 2", st.Count)
	}
	if st.Total != 3*time.Millisecond {
		t.Errorf("gvn total = %v, want 3ms", st.Total)
	}
	if st.NodeDelta != -4 {
		t.Errorf("gvn node delta = %d, want -4", st.NodeDelta)
	}
	table := m.Snapshot().Table()
	if !strings.Contains(table, "gvn") {
		t.Errorf("table does not mention the gvn phase:\n%s", table)
	}
}

// TestSnapshotLazyRender checks that the IR renderer only runs when a
// consumer is registered.
func TestSnapshotLazyRender(t *testing.T) {
	s := NewSink()
	rendered := 0
	render := func() string { rendered++; return "IR" }

	s.Snapshot("pea", "M.m", render)
	if rendered != 0 {
		t.Fatalf("render ran with no consumer registered")
	}
	if s.WantSnapshots() {
		t.Fatalf("WantSnapshots true with no consumer")
	}

	var got []string
	s.OnSnapshot(func(phase, method string, render func() string) {
		got = append(got, phase+"/"+method+"/"+render())
	})
	if !s.WantSnapshots() {
		t.Fatalf("WantSnapshots false with a consumer registered")
	}
	s.Snapshot("pea", "M.m", render)
	if rendered != 1 || len(got) != 1 || got[0] != "pea/M.m/IR" {
		t.Fatalf("snapshot delivery wrong: rendered=%d got=%v", rendered, got)
	}
}

// TestBackendAddRemove checks the dynamic backend list used by the legacy
// trace compatibility shim.
func TestBackendAddRemove(t *testing.T) {
	var events []Kind
	fb := FuncBackend(func(e *Event) { events = append(events, e.Kind) })
	s := NewSink()
	s.AddBackend(fb)
	s.PEARound("M.m", 1)
	s.RemoveBackend(fb)
	s.PEARound("M.m", 2)
	if len(events) != 1 || events[0] != KindPEARound {
		t.Fatalf("events = %v, want one pea_round", events)
	}
}
