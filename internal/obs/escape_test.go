package obs

import (
	"strings"
	"testing"
)

// TestEscapeTableAggregation drives the aggregator with a representative
// event mix and checks per-site counts, reason bucketing, and the
// metrics-agreement invariant on the totals row.
func TestEscapeTableAggregation(t *testing.T) {
	et := NewEscapeTable()
	m := NewMetrics()
	s := NewSink(et)
	s.SetMetrics(m)

	// Site A: virtualized twice (two compiles), materialized once for an
	// escape op, once at a merge, rematerialized at deopt, locks elided.
	s.Virtualize("Main.getValue", "o0", "Key", "v1", "Main.getValue@0")
	s.Virtualize("Main.getValue", "o0", "Key", "v1", "Main.getValue@0")
	s.Materialize("Main.getValue", "o0", "v9", "b2", "StoreStatic", "Main.getValue@0")
	s.MergeMaterialize("Main.getValue", "o0", "b4", "merge-mixed", "Main.getValue@0")
	s.VMRematerialize("Main.getValue", "vobj0", "Key", "Main.getValue@0")
	s.LockElide("Main.getValue", "o0", "v5", "monitorenter", "Main.getValue@0")
	s.LockElide("Main.getValue", "o0", "v6", "monitorexit", "Main.getValue@0")
	// Site B (inlined allocation: site method differs from compiled
	// method): escapes into a non-inlined call.
	s.Materialize("Main.main", "o1", "v20", "b1", "Invoke", "Helper.make@3")
	s.EAVerdict("Main.main", "v2", "escapes", "call-argument", "Helper.make@3")
	// Site-less event (hand-built graph): attributed to the method.
	s.Virtualize("M.m", "o0", "T", "v1", "")

	snap := et.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d sites, want 3: %+v", len(snap), snap)
	}
	bySite := make(map[string]SiteStats)
	for _, s := range snap {
		bySite[s.Site] = s
	}

	a := bySite["Main.getValue@0"]
	if a.Virtualized != 2 || a.Materialized != 2 || a.Remats != 1 || a.LocksElided != 2 {
		t.Errorf("site A counts = %+v", a)
	}
	if a.Class != "Key" {
		t.Errorf("site A class = %q, want Key", a.Class)
	}
	if a.Reasons["escape-op"] != 1 || a.Reasons["merge"] != 1 || a.Reasons["deopt-remat"] != 1 {
		t.Errorf("site A reasons = %v", a.Reasons)
	}
	// Three buckets tie at 1; the dominant bucket breaks ties
	// alphabetically for determinism.
	if !strings.HasPrefix(a.DominantReason, "deopt-remat") {
		t.Errorf("site A dominant = %q", a.DominantReason)
	}

	b := bySite["Helper.make@3"]
	if b.Materialized != 1 || b.Escaped != 1 || b.Reasons["non-inlined-call"] != 1 {
		t.Errorf("site B = %+v", b)
	}
	if b.DominantReason != "non-inlined-call (Invoke)" {
		t.Errorf("site B dominant = %q", b.DominantReason)
	}

	if c := bySite["M.m"]; c.Virtualized != 1 {
		t.Errorf("site-less fallback = %+v", c)
	}

	// The totals row agrees with the metrics registry (same events feed
	// both).
	var virt, mat, remat, locks int64
	for _, s := range snap {
		virt += s.Virtualized
		mat += s.Materialized
		remat += s.Remats
		locks += s.LocksElided
	}
	if virt != m.Counter(MetricVirtualized) {
		t.Errorf("virt total %d != metric %d", virt, m.Counter(MetricVirtualized))
	}
	if mat != m.Counter(MetricMaterialized) {
		t.Errorf("mat total %d != metric %d", mat, m.Counter(MetricMaterialized))
	}
	if remat != m.Counter(MetricVMRemats) {
		t.Errorf("remat total %d != metric %d", remat, m.Counter(MetricVMRemats))
	}
	if locks != m.Counter(MetricLocksElided) {
		t.Errorf("locks total %d != metric %d", locks, m.Counter(MetricLocksElided))
	}

	table := et.Table()
	if !strings.Contains(table, "Main.getValue@0") || !strings.Contains(table, "TOTAL") {
		t.Errorf("table missing site or totals row:\n%s", table)
	}
	// Snapshot copies: mutating the snapshot must not leak back.
	snap[0].Reasons["poison"] = 99
	if _, ok := et.Snapshot()[0].Reasons["poison"]; ok {
		t.Error("Snapshot aliases internal reason maps")
	}
}
