package obs

import (
	"expvar"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Well-known counter names. Decision events emitted through a Sink with an
// attached Metrics registry bump these automatically, so event streams and
// metric snapshots always agree.
const (
	MetricInlines           = "opt.inlines"
	MetricVirtualized       = "pea.virtualized"
	MetricMaterialized      = "pea.materialized"
	MetricMergeMaterialized = "pea.merge_materialized"
	MetricLocksElided       = "pea.locks_elided"
	MetricPEABailouts       = "pea.bailouts"
	MetricEACaptured        = "ea.captured"
	MetricEAEscaped         = "ea.escaped"
	MetricSummarySets       = "summary.sets"
	MetricSummaryKept       = "summary.kept_virtual"
	MetricVMCompiles        = "vm.compiles"
	MetricVMDeopts          = "vm.deopts"
	MetricVMRemats          = "vm.rematerializations"
	MetricVMInvalidations   = "vm.invalidations"
	MetricVMRecompiles      = "vm.recompiles"
	MetricVMOSRRequests     = "vm.osr_requests"
	MetricVMOSREntries      = "vm.osr_entries"

	// Compile-broker counters (bumped by the broker event helpers).
	MetricBrokerSubmits     = "broker.submits"
	MetricBrokerCompiles    = "broker.compiles"
	MetricBrokerCacheHits   = "broker.cache_hits"
	MetricBrokerCacheMisses = "broker.cache_misses"
	MetricBrokerDiskHits    = "broker.disk_hits"
	MetricBrokerDedups      = "broker.dedups"
	MetricBrokerRejects     = "broker.rejects"
	MetricBrokerPanics      = "broker.panics"

	// Fault containment counters: retry/backoff re-arms and captured
	// crash reproducers.
	MetricVMRearms      = "vm.rearms"
	MetricVMCrashRepros = "vm.crash_repros"

	// Checker counter: IR sanitizer violations (any level).
	MetricCheckViolations = "check.violations"
)

// Well-known gauge names. The compile broker keeps these current while it
// runs; snapshots expose them next to the counters.
const (
	GaugeBrokerQueueDepth  = "broker.queue_depth"
	GaugeBrokerWorkersBusy = "broker.workers_busy"
	GaugeBrokerCacheSize   = "broker.cache_size"
	// GaugeBrokerQueueHighWater tracks the deepest the pending compile
	// queue has ever been (monotone; updated on submissions).
	GaugeBrokerQueueHighWater = "broker.queue_highwater"
)

// PhaseStat aggregates one compiler phase's timer: invocation count, total
// wall time, and cumulative node delta (nodes added minus removed).
type PhaseStat struct {
	Count     int64         `json:"count"`
	Total     time.Duration `json:"total_ns"`
	NodeDelta int64         `json:"node_delta"`
}

// Metrics is a registry of counters, gauges, and per-phase timers. A nil
// *Metrics is valid and inert (all methods early-return), so the registry
// can be threaded through hot paths unconditionally.
type Metrics struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	phases   map[string]*PhaseStat
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]int64),
		phases:   make(map[string]*PhaseStat),
	}
}

// Add increments a counter by delta.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters[name] += delta
	m.mu.Unlock()
}

// Counter returns the current value of a counter.
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// SetGauge sets a gauge to an absolute value.
func (m *Metrics) SetGauge(name string, v int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Gauge returns the current value of a gauge.
func (m *Metrics) Gauge(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// ObservePhase records one run of a compiler phase: wall time and the node
// count delta across the phase.
func (m *Metrics) ObservePhase(phase string, d time.Duration, nodeDelta int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	st := m.phases[phase]
	if st == nil {
		st = &PhaseStat{}
		m.phases[phase] = st
	}
	st.Count++
	st.Total += d
	st.NodeDelta += int64(nodeDelta)
	m.mu.Unlock()
}

// Phase returns a copy of the named phase's stats.
func (m *Metrics) Phase(phase string) PhaseStat {
	if m == nil {
		return PhaseStat{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if st := m.phases[phase]; st != nil {
		return *st
	}
	return PhaseStat{}
}

// Snapshot is a point-in-time copy of the registry, suitable for JSON
// encoding or table rendering.
type Snapshot struct {
	Counters map[string]int64     `json:"counters,omitempty"`
	Gauges   map[string]int64     `json:"gauges,omitempty"`
	Phases   map[string]PhaseStat `json:"phases,omitempty"`
}

// Snapshot copies the registry's current state.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(m.counters)),
		Gauges:   make(map[string]int64, len(m.gauges)),
		Phases:   make(map[string]PhaseStat, len(m.phases)),
	}
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	for k, v := range m.phases {
		s.Phases[k] = *v
	}
	return s
}

// Reset zeroes all counters, gauges, and phase timers.
func (m *Metrics) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.counters = make(map[string]int64)
	m.gauges = make(map[string]int64)
	m.phases = make(map[string]*PhaseStat)
	m.mu.Unlock()
}

// Table renders the snapshot as an aligned human-readable table.
func (s Snapshot) Table() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("counters:\n")
		for _, k := range names {
			fmt.Fprintf(&b, "  %-28s %d\n", k, s.Counters[k])
		}
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("gauges:\n")
		for _, k := range names {
			fmt.Fprintf(&b, "  %-28s %d\n", k, s.Gauges[k])
		}
	}
	names = names[:0]
	for k := range s.Phases {
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("phases:\n")
		fmt.Fprintf(&b, "  %-16s %8s %14s %12s\n", "phase", "runs", "total", "node-delta")
		for _, k := range names {
			st := s.Phases[k]
			fmt.Fprintf(&b, "  %-16s %8d %14s %+12d\n", k, st.Count, st.Total, st.NodeDelta)
		}
	}
	return b.String()
}

var expvarOnce sync.Once

// PublishExpvar publishes the registry under the expvar name
// "compiler_metrics" (first call wins; later calls on other registries are
// no-ops, matching expvar's single-namespace model).
func (m *Metrics) PublishExpvar() {
	if m == nil {
		return
	}
	expvarOnce.Do(func() {
		expvar.Publish("compiler_metrics", expvar.Func(func() any {
			return m.Snapshot()
		}))
	})
}
