package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"

	"pea/internal/obs/flight"
)

// Handler returns the VM's live-introspection mux:
//
//	/debug/pea/flight   — flight-recorder snapshot as JSONL (same format as
//	                      the dump-on-panic files; peastat reads it)
//	/debug/pea/escape   — escape-attribution table (text; ?format=json for
//	                      the per-site records)
//	/debug/pea/metrics  — metrics registry (text table; ?format=json)
//	/debug/vars         — expvar (includes compiler_metrics after
//	                      Metrics.PublishExpvar)
//	/debug/pprof/*      — standard Go profiling endpoints
//
// Any of fl, et, m may be nil; their endpoints then report 404.
func Handler(fl *flight.Recorder, et *EscapeTable, m *Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pea/flight", func(w http.ResponseWriter, r *http.Request) {
		if fl == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/jsonl")
		_ = fl.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pea/escape", func(w http.ResponseWriter, r *http.Request) {
		if et == nil {
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(et.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(et.Table()))
	})
	mux.HandleFunc("/debug/pea/metrics", func(w http.ResponseWriter, r *http.Request) {
		if m == nil {
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(m.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(m.Snapshot().Table()))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the introspection endpoint on addr (e.g. "localhost:6060";
// ":0" picks a free port — read it back from the returned listener). The
// server runs on a background goroutine for the life of the process; the
// caller may close the listener to stop it.
func Serve(addr string, fl *flight.Recorder, et *EscapeTable, m *Metrics) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, Handler(fl, et, m)) }()
	return ln, nil
}
