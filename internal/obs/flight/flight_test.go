package flight

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestRecordZeroAlloc is the CI guard for the always-on contract: recording
// an event must not allocate, ever — the recorder stays attached to
// production VMs.
func TestRecordZeroAlloc(t *testing.T) {
	r := New(64)
	reason := r.Reason("merge-mixed")
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(KindMaterialize, 3, 17, 1, 0, reason)
	})
	if allocs != 0 {
		t.Fatalf("Record allocated %.1f times per call, want 0", allocs)
	}
	// Interning an already-known reason is also allocation-free (the fast
	// path of dynamic deopt-reason recording).
	allocs = testing.AllocsPerRun(1000, func() {
		r.Record(KindDeopt, 1, 4, 0, 0, r.Reason("merge-mixed"))
	})
	if allocs != 0 {
		t.Fatalf("Record+known Reason allocated %.1f times per call, want 0", allocs)
	}
}

func TestNilRecorderInert(t *testing.T) {
	var r *Recorder
	r.Record(KindCompileStart, 0, -1, 0, 0, 0)
	if r.Reason("x") != 0 || r.MethodName(0) != "" || r.Len() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder must be inert")
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotOrderAndWrap(t *testing.T) {
	r := New(shardCount * 4) // 4 slots per shard
	total := shardCount * 16 // write 4x capacity
	for i := 0; i < total; i++ {
		r.Record(KindQueueDepth, -1, -1, int64(i), 0, 0)
	}
	recs := r.Snapshot()
	if len(recs) != shardCount*4 {
		t.Fatalf("retained %d records, want %d (capacity)", len(recs), shardCount*4)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("snapshot not ordered by seq: %d after %d", recs[i].Seq, recs[i-1].Seq)
		}
	}
	// The ring keeps the newest events: the last record is the last write.
	if got := recs[len(recs)-1].A; got != int64(total-1) {
		t.Fatalf("newest record A = %d, want %d", got, total-1)
	}
}

func TestReasonInterningBounded(t *testing.T) {
	r := New(8)
	if r.Reason("") != 0 {
		t.Fatal("empty reason must intern to 0")
	}
	a := r.Reason("alpha")
	if b := r.Reason("alpha"); b != a {
		t.Fatalf("re-interning returned %d, want %d", b, a)
	}
	if got := r.ReasonString(a); got != "alpha" {
		t.Fatalf("ReasonString = %q, want alpha", got)
	}
	// Flood the table past its bound; later strings collapse to "<other>".
	var last uint16
	for i := 0; i < maxReasons+10; i++ {
		last = r.Reason(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(make([]byte, 0)) + itoa(i))
	}
	if last != 1 || r.ReasonString(1) != "<other>" {
		t.Fatalf("overflow reason code = %d (%q), want 1 (<other>)", last, r.ReasonString(last))
	}
}

func itoa(i int) string {
	var b [8]byte
	n := len(b)
	for {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
		if i == 0 {
			return string(b[n:])
		}
	}
}

func TestWriteJSONResolvesNames(t *testing.T) {
	r := New(32)
	r.SetMethodNames([]string{"Main.main", "Main.getValue"})
	r.Record(KindCompileStart, 1, -1, 20, 0, 0)
	r.Record(KindCompileFinish, 1, -1, 48211, 0, 0)
	r.Record(KindDeopt, 1, 9, 0, 0, r.Reason("speculation-failed"))
	r.Record(KindMaterialize, -1, -1, 0, 0, r.Reason("StoreStatic"))

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	type line struct {
		Seq    uint64 `json:"seq"`
		TNS    int64  `json:"t_ns"`
		Kind   string `json:"kind"`
		Method string `json:"method"`
		BCI    int32  `json:"bci"`
		A, B   int64
		Reason string `json:"reason"`
	}
	var lines []line
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("invalid JSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 4 {
		t.Fatalf("dumped %d lines, want 4", len(lines))
	}
	if lines[0].Kind != "compile_start" || lines[0].Method != "Main.getValue" {
		t.Fatalf("line 0 = %+v, want compile_start of Main.getValue", lines[0])
	}
	if lines[2].Kind != "deopt" || lines[2].Reason != "speculation-failed" || lines[2].BCI != 9 {
		t.Fatalf("line 2 = %+v, want deopt@9 with reason", lines[2])
	}
	if lines[3].Method != "" {
		t.Fatalf("unknown method resolved to %q, want omitted", lines[3].Method)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i].Seq <= lines[i-1].Seq {
			t.Fatal("dump not seq-ordered")
		}
	}
}

// TestConcurrentRecording exercises the sharded rings under the race
// detector: many goroutines recording while another snapshots.
func TestConcurrentRecording(t *testing.T) {
	r := New(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reason := r.Reason("w")
			for i := 0; i < 1000; i++ {
				r.Record(KindCompileFinish, int32(g), -1, int64(i), 0, reason)
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if r.Len() != 256 {
		t.Fatalf("retained %d records after overflow, want full capacity 256", r.Len())
	}
	// Sequence numbers are unique across shards.
	seen := make(map[uint64]bool)
	for _, rec := range r.Snapshot() {
		if seen[rec.Seq] {
			t.Fatalf("duplicate seq %d", rec.Seq)
		}
		seen[rec.Seq] = true
	}
}

// BenchmarkRecord is the overhead benchmark backing the <2% claim: one
// recorded event costs tens of nanoseconds and zero allocations, and the
// VM only records at compile/deopt/OSR boundaries — never per bytecode or
// per compiled step — so steady-state hot loops pay nothing at all.
func BenchmarkRecord(b *testing.B) {
	r := New(DefaultCapacity)
	reason := r.Reason("merge-mixed")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(KindMaterialize, 7, 12, int64(i), 0, reason)
	}
}

// BenchmarkRecordParallel measures contention across broker workers.
func BenchmarkRecordParallel(b *testing.B) {
	r := New(DefaultCapacity)
	reason := r.Reason("merge-mixed")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Record(KindCompileFinish, 3, -1, 1, 0, reason)
		}
	})
}
