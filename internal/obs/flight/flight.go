// Package flight is the VM's always-on flight recorder: a fixed-size,
// sharded ring buffer of compact typed events covering the JIT's runtime
// behavior — compile start/finish, queue depth, OSR requests and entries,
// deoptimizations with reasons, materializations attributed to their
// allocation site, contained compiler panics, and budget bailouts. It is
// the JFR-style "black box" a production VM keeps running at all times:
// when something goes wrong, the last few thousand events are already in
// memory, ready to dump next to the crash artifact.
//
// Design constraints:
//
//   - Recording must be allocation-free and cheap enough to stay on with
//     production workloads (<2% of peabench hot paths; in practice the
//     recorder only fires at compile/deopt/OSR boundaries, never per
//     interpreted or compiled step). Record takes only scalars, the slot
//     structs contain no pointers, and strings cross the boundary as
//     interned codes obtained by the caller on its slow path.
//
//   - A nil *Recorder is valid and inert, mirroring the obs.Sink contract,
//     so the recorder can be threaded unconditionally.
//
//   - Writers must be race-free under `go test -race` with many broker
//     workers recording concurrently. Slots are guarded by per-shard
//     mutexes; a global atomic sequence counter distributes consecutive
//     records round-robin over the shards, so two concurrent recorders
//     collide on a lock only 1/shardCount of the time, and the dump can
//     re-merge a totally ordered stream by sequence number.
package flight

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the typed flight events.
type Kind uint8

const (
	// KindNone is the zero Kind of an unwritten slot.
	KindNone Kind = iota
	// KindCompileStart: a compilation unit leaves the queue and enters the
	// pipeline. A = hotness at submission.
	KindCompileStart
	// KindCompileFinish: the unit resolved. A = wall time in nanoseconds,
	// B = 0 success / 1 failure; Reason classifies the outcome ("cache",
	// "transient", "error", empty for a fresh successful compile).
	KindCompileFinish
	// KindQueueDepth: the broker queue depth changed on a submission.
	// A = depth after the submission, B = high-water mark.
	KindQueueDepth
	// KindOSRRequest: a hot loop header asked for an on-stack-replacement
	// compile. BCI is the loop header, A the back-edge count.
	KindOSRRequest
	// KindOSREnter: an interpreter frame transferred into OSR code at BCI.
	KindOSREnter
	// KindDeopt: compiled code deoptimized back into the interpreter.
	// BCI is the frame-state resume point; Reason carries the deopt reason.
	KindDeopt
	// KindMaterialize: an allocation was materialized — at compile time by
	// PEA (Reason = merge-mixed, StoreStatic, Invoke, …) or at deopt time
	// by the rematerialization runtime (Reason = deopt-remat). Method/BCI
	// identify the original allocation site; A is the analyzer's object id
	// (or the virtual-object index for rematerializations).
	KindMaterialize
	// KindPanic: a compile pipeline run panicked and the broker contained
	// it. Reason carries the panic value.
	KindPanic
	// KindBudgetBailout: a compile blew its deadline/IR budget and was
	// re-armed. Reason summarizes the structured budget error.
	KindBudgetBailout
	// KindSummaryKept: PEA kept a virtual object virtual across a
	// non-inlined call because the callee's inter-procedural summary
	// proved the argument position unobserved. Method/BCI identify the
	// allocation site; A is the analyzer's object id; Reason names the
	// callee.
	KindSummaryKept
)

// String names the kind as it appears in dumps (stable; peastat and tests
// match on these).
func (k Kind) String() string {
	switch k {
	case KindCompileStart:
		return "compile_start"
	case KindCompileFinish:
		return "compile_finish"
	case KindQueueDepth:
		return "queue_depth"
	case KindOSRRequest:
		return "osr_request"
	case KindOSREnter:
		return "osr_enter"
	case KindDeopt:
		return "deopt"
	case KindMaterialize:
		return "materialize"
	case KindPanic:
		return "panic"
	case KindBudgetBailout:
		return "budget_bailout"
	case KindSummaryKept:
		return "summary_kept"
	default:
		return "unknown"
	}
}

// Record is one fixed-size flight event. It carries no pointers: recording
// copies scalars into a preallocated slot, and dumps copy slots wholesale.
// Method is a dense bc.Method ID (-1 unknown) resolved to a name at dump
// time; Reason is an interned string code (see Recorder.Reason).
type Record struct {
	Seq    uint64
	TNS    int64 // nanoseconds since the recorder was created
	Kind   Kind
	Reason uint16
	Method int32
	BCI    int32
	A, B   int64
}

// shardCount is the number of independently locked rings (power of two).
const shardCount = 8

// DefaultCapacity is the total slot count New gives a VM's always-on
// recorder: enough for the recent compile/deopt history of a large run at
// ~48 bytes per slot (~200 KiB), small enough to never matter.
const DefaultCapacity = 4096

// maxReasons bounds the intern table; code 1 ("<other>") absorbs overflow
// so a pathological stream of distinct reason strings cannot grow memory.
const maxReasons = 1024

type shard struct {
	mu   sync.Mutex
	buf  []Record
	next uint64 // total records ever written to this shard
}

// Recorder is the sharded ring buffer. The zero value is not usable; call
// New. A nil *Recorder is inert.
type Recorder struct {
	start  time.Time
	seq    atomic.Uint64
	shards [shardCount]shard

	mu      sync.RWMutex
	names   []string          // dense method ID → qualified name
	reasons []string          // reason code → string; [0]="", [1]="<other>"
	codeOf  map[string]uint16 // reverse intern map
}

// New creates a recorder with the given total slot capacity (<=0 selects
// DefaultCapacity). Capacity is split evenly across the shards.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := capacity / shardCount
	if per < 1 {
		per = 1
	}
	r := &Recorder{
		start:   time.Now(),
		reasons: []string{"", "<other>"},
		codeOf:  make(map[string]uint16),
	}
	for i := range r.shards {
		r.shards[i].buf = make([]Record, per)
	}
	return r
}

// Record appends one event. It is the always-on fast path: safe for
// concurrent use, zero allocations, no interface conversions, a single
// uncontended-in-expectation mutex. method is a dense bc.Method ID (-1
// unknown), bci a bytecode index (-1 when not applicable), reason an
// interned code from Reason (0 for none).
func (r *Recorder) Record(k Kind, method, bci int32, a, b int64, reason uint16) {
	if r == nil {
		return
	}
	seq := r.seq.Add(1)
	t := time.Since(r.start).Nanoseconds()
	sh := &r.shards[seq&(shardCount-1)]
	sh.mu.Lock()
	slot := &sh.buf[sh.next%uint64(len(sh.buf))]
	slot.Seq = seq
	slot.TNS = t
	slot.Kind = k
	slot.Reason = reason
	slot.Method = method
	slot.BCI = bci
	slot.A = a
	slot.B = b
	sh.next++
	sh.mu.Unlock()
}

// Reason interns s and returns its code. The table is bounded: once
// maxReasons distinct strings have been seen, further new strings map to
// the shared "<other>" code. Callers on recording paths should intern once
// and cache the code when the string is static; dynamic strings (deopt
// reasons, panic values) pay one read-locked map lookup after the first
// occurrence.
func (r *Recorder) Reason(s string) uint16 {
	if r == nil || s == "" {
		return 0
	}
	r.mu.RLock()
	c, ok := r.codeOf[s]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.codeOf[s]; ok {
		return c
	}
	if len(r.reasons) >= maxReasons {
		return 1 // "<other>"
	}
	c = uint16(len(r.reasons))
	r.reasons = append(r.reasons, s)
	r.codeOf[s] = c
	return c
}

// SetMethodNames installs the dense-method-ID → qualified-name table used
// to resolve Record.Method at dump time. The VM calls it once at startup.
func (r *Recorder) SetMethodNames(names []string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.names = append([]string(nil), names...)
	r.mu.Unlock()
}

// MethodName resolves a dense method ID ("" if unknown).
func (r *Recorder) MethodName(id int32) string {
	if r == nil || id < 0 {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(id) < len(r.names) {
		return r.names[id]
	}
	return ""
}

// ReasonString resolves an interned reason code ("" for 0).
func (r *Recorder) ReasonString(c uint16) string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if int(c) < len(r.reasons) {
		return r.reasons[c]
	}
	return ""
}

// Len reports how many records are currently retained (≤ capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if sh.next < uint64(len(sh.buf)) {
			n += int(sh.next)
		} else {
			n += len(sh.buf)
		}
		sh.mu.Unlock()
	}
	return n
}

// Snapshot copies the retained records out of the rings and merges them
// into one stream ordered by sequence number. Recording may continue
// concurrently; each shard is consistent, the merge is best-effort
// point-in-time (the JFR dump model).
func (r *Recorder) Snapshot() []Record {
	if r == nil {
		return nil
	}
	var out []Record
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n := uint64(len(sh.buf))
		if sh.next < n {
			n = sh.next
		}
		out = append(out, sh.buf[:n]...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteJSON dumps the snapshot as JSON lines, one record per line, with
// method IDs and reason codes resolved to strings:
//
//	{"seq":12,"t_ns":51034,"kind":"compile_finish","method":"Main.getValue","bci":-1,"a":48211,"b":0}
//
// The format is hand-rolled (the fields are scalars and pre-escaped
// identifiers) so dumping never depends on reflection; peastat parses it
// with the ordinary JSON decoder.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, rec := range r.Snapshot() {
		bw.WriteString(`{"seq":`)
		bw.WriteString(strconv.FormatUint(rec.Seq, 10))
		bw.WriteString(`,"t_ns":`)
		bw.WriteString(strconv.FormatInt(rec.TNS, 10))
		bw.WriteString(`,"kind":"`)
		bw.WriteString(rec.Kind.String())
		bw.WriteString(`"`)
		if name := r.MethodName(rec.Method); name != "" {
			bw.WriteString(`,"method":`)
			bw.WriteString(strconv.Quote(name))
		}
		bw.WriteString(`,"bci":`)
		bw.WriteString(strconv.FormatInt(int64(rec.BCI), 10))
		bw.WriteString(`,"a":`)
		bw.WriteString(strconv.FormatInt(rec.A, 10))
		bw.WriteString(`,"b":`)
		bw.WriteString(strconv.FormatInt(rec.B, 10))
		if reason := r.ReasonString(rec.Reason); reason != "" {
			bw.WriteString(`,"reason":`)
			bw.WriteString(strconv.Quote(reason))
		}
		bw.WriteString("}\n")
	}
	return bw.Flush()
}

// WriteFile dumps the snapshot to path (0644, truncating).
func (r *Recorder) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	werr := r.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
