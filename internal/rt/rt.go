// Package rt provides the runtime data model shared by the bytecode
// interpreter and the compiled-code executor: tagged values, heap objects
// and arrays, static fields, monitors, the deterministic PRNG, and the
// allocation/lock counters that the evaluation harness reports (the paper's
// "MB / iteration", "MAllocs / iteration" and lock-operation metrics).
package rt

import (
	"fmt"

	"pea/internal/bc"
)

// Value is a bytecode-level value: either an integer or a reference.
// The zero Value is the integer 0.
type Value struct {
	I   int64
	Ref *Object
	// isRef distinguishes the null reference from the integer 0.
	isRef bool
}

// IntValue returns an integer value.
func IntValue(i int64) Value { return Value{I: i} }

// BoolValue returns 1 for true and 0 for false as an integer value.
func BoolValue(b bool) Value {
	if b {
		return Value{I: 1}
	}
	return Value{I: 0}
}

// RefValue returns a reference value (obj may be nil for null).
func RefValue(obj *Object) Value { return Value{Ref: obj, isRef: true} }

// Null is the null reference.
var Null = Value{isRef: true}

// IsRef reports whether the value is a reference (possibly null).
func (v Value) IsRef() bool { return v.isRef }

// IsNull reports whether the value is the null reference.
func (v Value) IsNull() bool { return v.isRef && v.Ref == nil }

// Kind returns the bytecode kind of the value.
func (v Value) Kind() bc.Kind {
	if v.isRef {
		return bc.KindRef
	}
	return bc.KindInt
}

// Equal reports bit-level equality (used by differential tests).
func (v Value) Equal(o Value) bool {
	if v.isRef != o.isRef {
		return false
	}
	if v.isRef {
		return v.Ref == o.Ref
	}
	return v.I == o.I
}

// String renders the value for diagnostics.
func (v Value) String() string {
	if !v.isRef {
		return fmt.Sprintf("%d", v.I)
	}
	if v.Ref == nil {
		return "null"
	}
	return v.Ref.String()
}

// Object is a heap object or array. Class is nil for arrays, in which case
// ElemKind and the Fields slice (reused as element storage) describe the
// array.
type Object struct {
	Class    *bc.Class
	ElemKind bc.Kind // element kind if this is an array
	Fields   []Value // instance fields by offset, or array elements
	// Serial is a unique allocation number, for deterministic diagnostics.
	Serial int64
	// LockDepth is the recursive monitor hold count. The VM is
	// single-threaded, so a monitor is a counter: the paper's lock
	// elision removes the counter updates, which we count as the
	// "monitor operations" metric.
	LockDepth int
}

// IsArray reports whether the object is an array.
func (o *Object) IsArray() bool { return o.Class == nil }

// Len returns the array length (panics for non-arrays).
func (o *Object) Len() int {
	if !o.IsArray() {
		panic("rt: Len on non-array")
	}
	return len(o.Fields)
}

// String renders the object's identity for diagnostics.
func (o *Object) String() string {
	if o.IsArray() {
		return fmt.Sprintf("%s[%d]#%d", o.ElemKind, len(o.Fields), o.Serial)
	}
	return fmt.Sprintf("%s#%d", o.Class.Name, o.Serial)
}

// Stats aggregates the dynamic counters the paper's Table 1 reports.
type Stats struct {
	// Allocations is the number of dynamic allocations performed.
	Allocations int64
	// AllocatedBytes is the total heap bytes charged for allocations
	// (JVM-like layout: 16-byte object header + 8 bytes/field,
	// 24-byte array header + 8 bytes/element).
	AllocatedBytes int64
	// MonitorOps counts monitor enter and exit operations executed.
	MonitorOps int64
	// FieldLoads / FieldStores count instance field accesses executed.
	FieldLoads  int64
	FieldStores int64
	// Deopts counts deoptimizations taken from compiled code.
	Deopts int64
	// Materializations counts virtual objects allocated lazily by
	// compiled code (PEA materialization sites executed).
	Materializations int64
}

// Sub returns s - o, counter-wise.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Allocations:      s.Allocations - o.Allocations,
		AllocatedBytes:   s.AllocatedBytes - o.AllocatedBytes,
		MonitorOps:       s.MonitorOps - o.MonitorOps,
		FieldLoads:       s.FieldLoads - o.FieldLoads,
		FieldStores:      s.FieldStores - o.FieldStores,
		Deopts:           s.Deopts - o.Deopts,
		Materializations: s.Materializations - o.Materializations,
	}
}

// Env is the mutable machine state shared by interpreted and compiled code:
// the heap counters, static fields, PRNG, and program output. A single Env
// is threaded through one program execution.
type Env struct {
	Program *bc.Program
	Stats   Stats

	// statics[classID][offset] holds static field values.
	statics [][]Value

	// Output collects values printed by OpPrint.
	Output []int64

	// rngState is the xorshift64* PRNG state; deterministic so that all
	// compiler configurations see identical program behaviour.
	rngState uint64

	serial int64

	// Cycles is the simulated execution time in cost-model cycles,
	// advanced by whoever executes code (interpreter or executor).
	Cycles int64
}

// NewEnv creates an execution environment for the program with the given
// PRNG seed (0 is replaced by 1, as xorshift has no zero state).
func NewEnv(p *bc.Program, seed uint64) *Env {
	if seed == 0 {
		seed = 1
	}
	e := &Env{Program: p, rngState: seed}
	e.statics = make([][]Value, len(p.Classes))
	for _, c := range p.Classes {
		slots := make([]Value, len(c.Statics))
		for _, f := range c.Statics {
			if f.Kind == bc.KindRef {
				slots[f.Offset] = Null
			}
		}
		e.statics[c.ID] = slots
	}
	return e
}

// Rand returns the next deterministic pseudo-random value; if mod > 0 the
// result is reduced to [0, mod).
func (e *Env) Rand(mod int64) int64 {
	// xorshift64* (Vigna): good enough distribution, fully deterministic.
	x := e.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	e.rngState = x
	r := int64((x * 2685821657736338717) >> 1)
	if mod > 0 {
		return r % mod
	}
	return r
}

// GetStatic reads a static field.
func (e *Env) GetStatic(f *bc.Field) Value { return e.statics[f.Class.ID][f.Offset] }

// SetStatic writes a static field.
func (e *Env) SetStatic(f *bc.Field, v Value) { e.statics[f.Class.ID][f.Offset] = v }

// AllocObject allocates a class instance with zeroed fields and charges the
// allocation counters.
func (e *Env) AllocObject(c *bc.Class) *Object {
	e.serial++
	o := &Object{Class: c, Fields: make([]Value, c.NumFields()), Serial: e.serial}
	for _, f := range c.Fields {
		if f.Kind == bc.KindRef {
			o.Fields[f.Offset] = Null
		}
	}
	e.Stats.Allocations++
	e.Stats.AllocatedBytes += c.InstanceSize()
	return o
}

// AllocArray allocates an array of n elements and charges the counters.
// n must be non-negative (callers raise a trap otherwise).
func (e *Env) AllocArray(kind bc.Kind, n int64) *Object {
	e.serial++
	o := &Object{ElemKind: kind, Fields: make([]Value, n), Serial: e.serial}
	if kind == bc.KindRef {
		for i := range o.Fields {
			o.Fields[i] = Null
		}
	}
	e.Stats.Allocations++
	e.Stats.AllocatedBytes += bc.ArraySize(n)
	return o
}

// MonitorEnter acquires obj's monitor (recursive) and counts the operation.
func (e *Env) MonitorEnter(obj *Object) {
	obj.LockDepth++
	e.Stats.MonitorOps++
}

// MonitorExit releases obj's monitor and counts the operation. It returns
// an error if the monitor is not held (structural bug in generated code).
func (e *Env) MonitorExit(obj *Object) error {
	if obj.LockDepth <= 0 {
		return fmt.Errorf("rt: monitor exit on unlocked %s", obj)
	}
	obj.LockDepth--
	e.Stats.MonitorOps++
	return nil
}

// Print appends v to the program output.
func (e *Env) Print(v int64) { e.Output = append(e.Output, v) }

// Trap is a runtime exception raised by executing code: an intrinsic trap
// (null dereference, division by zero, array bounds, negative array size,
// null throw) or a guest `throw`. A trap unwinds until an exception-table
// entry matches it; without one it aborts execution as an error.
//
// Reason, Method and PC are the trap's canonical identity — the reason
// string, the bytecode method the trapping instruction belongs to (the
// innermost method when the trap happens in inlined code), and its pc
// there. Every engine (interpreter, oracle, closure JIT) reports the same
// triple for the same guest fault, so differential harnesses compare traps
// exactly instead of just their reasons.
type Trap struct {
	Reason string
	Method *bc.Method
	PC     int
	// Value is the thrown object for guest `throw` (never nil there:
	// throwing null raises an intrinsic "null throw" trap instead).
	// Intrinsic traps carry a nil Value; typed handlers never match them
	// and catch-all handlers bind null.
	Value *Object
}

// Error implements the error interface.
func (t *Trap) Error() string {
	if t.Method != nil {
		return fmt.Sprintf("trap: %s at %s pc=%d", t.Reason, t.Method.QualifiedName(), t.PC)
	}
	return "trap: " + t.Reason
}

// NewTrap builds an intrinsic trap error.
func NewTrap(reason string, m *bc.Method, pc int) *Trap {
	return &Trap{Reason: reason, Method: m, PC: pc}
}

// NewThrow builds the trap for a guest `throw` of obj (non-nil). The
// reason is derived from the class name only — never the allocation serial
// — so an uncaught exception reads identically whether the object was heap
// allocated or rematerialized from a scalar-replaced frame state.
func NewThrow(obj *Object, m *bc.Method, pc int) *Trap {
	return &Trap{Reason: "uncaught exception " + obj.Class.Name, Method: m, PC: pc, Value: obj}
}

// MatchHandler returns the first exception-table entry of m that covers pc
// and matches t — typed entries match guest exceptions of a matching
// class, catch-all entries (nil Class) match everything including
// intrinsic traps — or nil when the trap keeps unwinding. Every engine
// dispatches through this one function so handler selection can never
// diverge between them.
func MatchHandler(m *bc.Method, pc int, t *Trap) *bc.ExceptionHandler {
	for i := range m.ExceptionTable {
		h := &m.ExceptionTable[i]
		if !h.Covers(pc) {
			continue
		}
		if h.Class == nil || (t.Value != nil && t.Value.Class.IsSubclassOf(h.Class)) {
			return h
		}
	}
	return nil
}

// HandlerValue returns the value a handler binds for t: the thrown object,
// or null for intrinsic traps reaching a catch-all entry.
func HandlerValue(t *Trap) Value {
	if t.Value != nil {
		return RefValue(t.Value)
	}
	return Null
}
