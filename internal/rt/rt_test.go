package rt

import (
	"testing"
	"testing/quick"

	"pea/internal/bc"
)

func prog(t *testing.T) *bc.Program {
	t.Helper()
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	box.Field("v", bc.KindInt)
	box.Field("r", bc.KindRef)
	box.Static("g", bc.KindRef)
	box.Static("n", bc.KindInt)
	c := a.Class("C", "")
	c.Method("m", nil, bc.KindVoid, true).Return()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestValueBasics(t *testing.T) {
	i := IntValue(42)
	if i.IsRef() || i.IsNull() || i.Kind() != bc.KindInt || i.I != 42 {
		t.Fatalf("int value wrong: %+v", i)
	}
	if !Null.IsRef() || !Null.IsNull() || Null.Kind() != bc.KindRef {
		t.Fatalf("null wrong: %+v", Null)
	}
	if !BoolValue(true).Equal(IntValue(1)) || !BoolValue(false).Equal(IntValue(0)) {
		t.Fatal("bool encoding wrong")
	}
	if IntValue(0).Equal(Null) {
		t.Fatal("int 0 must differ from null")
	}
	if IntValue(5).String() != "5" || Null.String() != "null" {
		t.Fatal("String() wrong")
	}
}

func TestAllocationAccounting(t *testing.T) {
	p := prog(t)
	env := NewEnv(p, 1)
	box := p.ClassByName("Box")
	o := env.AllocObject(box)
	if o.IsArray() || len(o.Fields) != 2 {
		t.Fatalf("object wrong: %+v", o)
	}
	if !o.Fields[1].IsNull() || !o.Fields[0].Equal(IntValue(0)) {
		t.Fatal("fields not default-initialized")
	}
	arr := env.AllocArray(bc.KindRef, 5)
	if !arr.IsArray() || arr.Len() != 5 || !arr.Fields[3].IsNull() {
		t.Fatalf("array wrong: %+v", arr)
	}
	if env.Stats.Allocations != 2 {
		t.Fatalf("allocations = %d", env.Stats.Allocations)
	}
	wantBytes := box.InstanceSize() + bc.ArraySize(5)
	if env.Stats.AllocatedBytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", env.Stats.AllocatedBytes, wantBytes)
	}
	if o.Serial == arr.Serial {
		t.Fatal("serials must be unique")
	}
}

func TestMonitorSemantics(t *testing.T) {
	p := prog(t)
	env := NewEnv(p, 1)
	o := env.AllocObject(p.ClassByName("Box"))
	env.MonitorEnter(o)
	env.MonitorEnter(o)
	if o.LockDepth != 2 {
		t.Fatalf("lock depth = %d", o.LockDepth)
	}
	if err := env.MonitorExit(o); err != nil {
		t.Fatal(err)
	}
	if err := env.MonitorExit(o); err != nil {
		t.Fatal(err)
	}
	if err := env.MonitorExit(o); err == nil {
		t.Fatal("unbalanced exit must fail")
	}
	if env.Stats.MonitorOps != 4 {
		t.Fatalf("monitor ops = %d (failed exit must not count)", env.Stats.MonitorOps)
	}
}

func TestStatics(t *testing.T) {
	p := prog(t)
	env := NewEnv(p, 1)
	g := p.ClassByName("Box").StaticByName("g")
	n := p.ClassByName("Box").StaticByName("n")
	if !env.GetStatic(g).IsNull() {
		t.Fatal("ref static must start null")
	}
	if env.GetStatic(n).I != 0 {
		t.Fatal("int static must start 0")
	}
	o := env.AllocObject(p.ClassByName("Box"))
	env.SetStatic(g, RefValue(o))
	if env.GetStatic(g).Ref != o {
		t.Fatal("static write lost")
	}
}

func TestRandProperties(t *testing.T) {
	p := prog(t)
	if err := quick.Check(func(seed uint64, mod uint16) bool {
		m := int64(mod%1000) + 1
		e1 := NewEnv(p, seed)
		e2 := NewEnv(p, seed)
		for i := 0; i < 20; i++ {
			r1, r2 := e1.Rand(m), e2.Rand(m)
			if r1 != r2 || r1 < 0 || r1 >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Seed 0 must still work (xorshift has no zero state).
	e := NewEnv(p, 0)
	if r := e.Rand(100); r < 0 || r >= 100 {
		t.Fatalf("seed-0 rand = %d", r)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Allocations: 10, AllocatedBytes: 100, MonitorOps: 5, Deopts: 2, Materializations: 1}
	b := Stats{Allocations: 4, AllocatedBytes: 40, MonitorOps: 1}
	d := a.Sub(b)
	if d.Allocations != 6 || d.AllocatedBytes != 60 || d.MonitorOps != 4 || d.Deopts != 2 {
		t.Fatalf("Sub wrong: %+v", d)
	}
}

func TestTrapError(t *testing.T) {
	p := prog(t)
	m := p.ClassByName("C").MethodByName("m")
	err := NewTrap("boom", m, 3)
	if got := err.Error(); got != "trap: boom at C.m pc=3" {
		t.Fatalf("trap format: %q", got)
	}
	if got := NewTrap("x", nil, 0).Error(); got != "trap: x" {
		t.Fatalf("trap format: %q", got)
	}
}

// TestMatchHandler pins the one shared handler-selection function: first
// covering entry wins, typed entries match subclasses but never intrinsic
// traps, catch-all entries match everything and bind null for intrinsics.
func TestMatchHandler(t *testing.T) {
	a := bc.NewAssembler()
	base := a.Class("Base", "")
	sub := a.Class("Sub", "Base")
	other := a.Class("Other", "")
	c := a.Class("C", "")
	ma := c.Method("m", nil, bc.KindInt, true)
	r := ma.NewLocal(bc.KindRef)
	ma.Label("s0")
	ma.Const(1).Pop()
	ma.Label("s1")
	ma.Const(2).Pop().Const(0).ReturnValue()
	ma.Label("h1").Store(r).Const(1).ReturnValue()
	ma.Label("h2").Store(r).Const(2).ReturnValue()
	ma.Label("h3").Store(r).Const(3).ReturnValue()
	ma.Exception("s0", "s1", "h1", sub.Ref())  // covers pc 0..1, typed Sub
	ma.Exception("s0", "s2", "h2", base.Ref()) // covers pc 0..3, typed Base
	ma.Label("s2")
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	m := p.ClassByName("C").MethodByName("m")
	bcls := p.ClassByName("Base")
	scls := p.ClassByName("Sub")
	ocls := p.ClassByName("Other")
	_ = base
	_ = other

	throw := func(cls *bc.Class) *Trap {
		return NewThrow(&Object{Class: cls}, m, 0)
	}
	// Subclass object at a pc both entries cover: first entry wins.
	if h := MatchHandler(m, 0, throw(scls)); h == nil || h.Handler != m.ExceptionTable[0].Handler {
		t.Fatalf("Sub at pc 0: got %+v", h)
	}
	// Base object does not match the Sub entry; falls to the Base entry.
	if h := MatchHandler(m, 0, throw(bcls)); h == nil || h.Handler != m.ExceptionTable[1].Handler {
		t.Fatalf("Base at pc 0: got %+v", h)
	}
	// Past the first entry's range only the second covers.
	if h := MatchHandler(m, 2, throw(scls)); h == nil || h.Handler != m.ExceptionTable[1].Handler {
		t.Fatalf("Sub at pc 2: got %+v", h)
	}
	// Unrelated class: no typed entry matches.
	if h := MatchHandler(m, 0, throw(ocls)); h != nil {
		t.Fatalf("Other matched %+v", h)
	}
	// Intrinsic trap (nil Value): typed entries never match.
	if h := MatchHandler(m, 0, NewTrap("division by zero", m, 0)); h != nil {
		t.Fatalf("intrinsic matched typed entry %+v", h)
	}
	// Catch-all matches intrinsics and binds null.
	m.ExceptionTable = append(m.ExceptionTable, bc.ExceptionHandler{Start: 0, End: 4, Handler: m.ExceptionTable[1].Handler})
	tr := NewTrap("division by zero", m, 0)
	h := MatchHandler(m, 0, tr)
	if h == nil || h.Class != nil {
		t.Fatalf("catch-all did not match intrinsic: %+v", h)
	}
	if v := HandlerValue(tr); !v.IsNull() {
		t.Fatalf("intrinsic handler value = %+v, want null", v)
	}
	if v := HandlerValue(throw(scls)); v.IsNull() || v.Ref.Class != scls {
		t.Fatalf("guest handler value = %+v", v)
	}
	// Out-of-range pc: nothing covers.
	if h := MatchHandler(m, 99, throw(scls)); h != nil {
		t.Fatalf("uncovered pc matched %+v", h)
	}
}
