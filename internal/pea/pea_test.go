package pea

import (
	"strings"
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/exec"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/opt"
	"pea/internal/rt"
	"pea/internal/testprog"
)

// compileWithPEA builds, inlines, optimizes and PEA-transforms every
// method of the program.
func compileWithPEA(t *testing.T, prog *bc.Program) map[*bc.Method]*ir.Graph {
	t.Helper()
	graphs := make(map[*bc.Method]*ir.Graph, len(prog.Methods))
	for _, m := range prog.Methods {
		graphs[m] = compileOne(t, prog, m)
	}
	return graphs
}

func compileOne(t *testing.T, prog *bc.Program, m *bc.Method) *ir.Graph {
	t.Helper()
	g, err := build.Build(m)
	if err != nil {
		t.Fatalf("build %s: %v", m.QualifiedName(), err)
	}
	pre := &opt.Pipeline{
		Phases: []opt.Phase{
			&opt.Inliner{BuildGraph: build.Build, Program: prog},
			opt.Canonicalize{},
			opt.SimplifyCFG{},
			opt.GVN{},
			opt.DCE{},
		},
		Validate: true,
	}
	if err := pre.Run(g); err != nil {
		t.Fatalf("pre-opt %s: %v", m.QualifiedName(), err)
	}
	res, err := Run(g, Config{})
	if err != nil {
		t.Fatalf("pea %s: %v\n%s", m.QualifiedName(), err, ir.Dump(g))
	}
	if res.BailedOut {
		t.Fatalf("pea bailed out on %s", m.QualifiedName())
	}
	if err := ir.Verify(g); err != nil {
		t.Fatalf("pea %s produced invalid graph: %v\n%s", m.QualifiedName(), err, ir.Dump(g))
	}
	post := opt.Standard()
	post.Validate = true
	if err := post.Run(g); err != nil {
		t.Fatalf("post-opt %s: %v", m.QualifiedName(), err)
	}
	return g
}

func runPEA(t *testing.T, p testprog.Program, graphs map[*bc.Method]*ir.Graph, args []int64) (rt.Value, *rt.Env, error) {
	t.Helper()
	env := rt.NewEnv(p.Prog, 42)
	eng := &exec.Engine{Env: env, MaxSteps: 5_000_000}
	eng.Invoke = func(callee *bc.Method, vals []rt.Value) (rt.Value, error) {
		return eng.Run(graphs[callee], vals)
	}
	vals := make([]rt.Value, len(args))
	for i, a := range args {
		vals[i] = rt.IntValue(a)
	}
	v, err := eng.Run(graphs[p.Entry], vals)
	return v, env, err
}

func runRef(t *testing.T, p testprog.Program, args []int64) (rt.Value, *rt.Env, error) {
	t.Helper()
	env := rt.NewEnv(p.Prog, 42)
	it := interp.New(env)
	it.MaxSteps = 5_000_000
	vals := make([]rt.Value, len(args))
	for i, a := range args {
		vals[i] = rt.IntValue(a)
	}
	v, err := it.Call(p.Entry, vals)
	return v, env, err
}

// TestPEAMatchesInterpreter: correctness — results and output identical to
// the interpreter; and the paper's guarantee that PEA never increases the
// dynamic number of allocations or monitor operations.
func TestPEAMatchesInterpreter(t *testing.T) {
	for _, p := range testprog.Corpus() {
		t.Run(p.Name, func(t *testing.T) {
			graphs := compileWithPEA(t, p.Prog)
			for _, args := range p.ArgSets {
				v1, env1, err1 := runRef(t, p, args)
				v2, env2, err2 := runPEA(t, p, graphs, args)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%v: interp err=%v, pea err=%v", args, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if !v1.Equal(v2) {
					t.Fatalf("%v: interp=%v pea=%v", args, v1, v2)
				}
				if len(env1.Output) != len(env2.Output) {
					t.Fatalf("%v: outputs differ", args)
				}
				for i := range env1.Output {
					if env1.Output[i] != env2.Output[i] {
						t.Fatalf("%v: output[%d] %d vs %d", args, i, env1.Output[i], env2.Output[i])
					}
				}
				if env2.Stats.Allocations > env1.Stats.Allocations {
					t.Fatalf("%v: PEA increased allocations %d -> %d",
						args, env1.Stats.Allocations, env2.Stats.Allocations)
				}
				if env2.Stats.MonitorOps > env1.Stats.MonitorOps {
					t.Fatalf("%v: PEA increased monitor ops %d -> %d",
						args, env1.Stats.MonitorOps, env2.Stats.MonitorOps)
				}
			}
		})
	}
}

// expectation describes the allocation behaviour PEA must achieve on a
// corpus program for specific arguments.
type expectation struct {
	prog   string
	args   []int64
	allocs int64 // expected allocation count under PEA
	mons   int64 // expected monitor ops under PEA (-1 = don't check)
}

// TestPEABehaviour checks the paper's core claims pattern by pattern.
func TestPEABehaviour(t *testing.T) {
	cases := []expectation{
		// Fully scalar-replaced: no allocation remains.
		{prog: "nonEscaping", args: []int64{14}, allocs: 0, mons: -1},
		// Partial escape (paper Listing 4): no allocation on the
		// non-escaping branch, one on the escaping branch.
		{prog: "partialEscape", args: []int64{0}, allocs: 0, mons: -1},
		{prog: "partialEscape", args: []int64{99}, allocs: 0, mons: -1},
		{prog: "partialEscape", args: []int64{100}, allocs: 1, mons: -1},
		// Escapes on both branches: allocation must remain.
		{prog: "escapeBothBranches", args: []int64{0}, allocs: 1, mons: -1},
		{prog: "escapeBothBranches", args: []int64{1}, allocs: 1, mons: -1},
		// Per-iteration temporary: all n allocations removed.
		{prog: "allocInLoop", args: []int64{25}, allocs: 0, mons: -1},
		// Lock elision on a non-escaping object: no monitor ops, no
		// allocation.
		{prog: "syncNonEscaping", args: []int64{21}, allocs: 0, mons: 0},
		// Locked object escaping on one branch: lock stays elided on
		// the virtual path (monitors only happen via materialization
		// re-locking, which is zero here because the lock is released
		// before the escape).
		{prog: "syncPartialEscape", args: []int64{5}, allocs: 0, mons: 0},
		{prog: "syncPartialEscape", args: []int64{-5}, allocs: 1, mons: 0},
		// Object graph: both virtual when not escaping.
		{prog: "objectGraph", args: []int64{3}, allocs: 0, mons: -1},
		{prog: "objectGraph", args: []int64{-3}, allocs: 2, mons: -1},
		// Aliased locals on one virtual object.
		{prog: "aliasedStores", args: []int64{37}, allocs: 0, mons: -1},
		// Constant-length array, partial escape.
		{prog: "arrayEscape", args: []int64{1}, allocs: 0, mons: -1},
		{prog: "arrayEscape", args: []int64{120}, allocs: 1, mons: -1},
		// Reference array holding a virtual object: both virtual on the
		// non-escaping path; the Box and the array materialize on escape.
		{prog: "refArray", args: []int64{5}, allocs: 0, mons: -1},
		{prog: "refArray", args: []int64{-5}, allocs: 1, mons: -1},
		// Nested synchronized regions on two virtual objects: all four
		// monitor ops elided on the hot path.
		{prog: "nestedSync", args: []int64{1}, allocs: 0, mons: 0},
		{prog: "nestedSync", args: []int64{50}, allocs: 1, mons: 0},
		// Self-referential object (cycle): kept as a real allocation.
		{prog: "selfReference", args: []int64{11}, allocs: 1, mons: -1},
		// Escape hidden behind a callee: removed once inlining exposes it.
		{prog: "partialViaCallee", args: []int64{9}, allocs: 0, mons: -1},
		{prog: "partialViaCallee", args: []int64{42}, allocs: 1, mons: -1},
	}
	byName := make(map[string]testprog.Program)
	for _, p := range testprog.Corpus() {
		byName[p.Name] = p
	}
	for _, tc := range cases {
		p := byName[tc.prog]
		t.Run(tc.prog, func(t *testing.T) {
			graphs := compileWithPEA(t, p.Prog)
			vref, envRef, errRef := runRef(t, p, tc.args)
			v, env, err := runPEA(t, p, graphs, tc.args)
			if err != nil || errRef != nil {
				t.Fatalf("args %v: err=%v refErr=%v", tc.args, err, errRef)
			}
			if !v.Equal(vref) {
				t.Fatalf("args %v: wrong result %v, want %v", tc.args, v, vref)
			}
			if env.Stats.Allocations != tc.allocs {
				t.Fatalf("args %v: allocations = %d, want %d (baseline %d)",
					tc.args, env.Stats.Allocations, tc.allocs, envRef.Stats.Allocations)
			}
			if tc.mons >= 0 && env.Stats.MonitorOps != tc.mons {
				t.Fatalf("args %v: monitor ops = %d, want %d (baseline %d)",
					tc.args, env.Stats.MonitorOps, tc.mons, envRef.Stats.MonitorOps)
			}
		})
	}
}

// TestCacheKeyListing4to6 reproduces the paper's running example: the
// hand-inlined cacheKey method (Listing 5) must, after PEA, allocate only
// on the cache-miss path (Listing 6) and never lock.
func TestCacheKeyListing4to6(t *testing.T) {
	var p testprog.Program
	for _, c := range testprog.Corpus() {
		if c.Name == "cacheKey" {
			p = c
		}
	}
	graphs := compileWithPEA(t, p.Prog)
	run := p.Prog.ClassByName("P").MethodByName("run")
	g := graphs[run]
	// The monitor pair must be gone entirely (the key never escapes
	// while locked).
	mons := 0
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpMonitorEnter || n.Op == ir.OpMonitorExit {
			mons++
		}
	})
	if mons != 0 {
		t.Fatalf("monitors not elided:\n%s", ir.Dump(g))
	}
	// Exactly one materialization site (the miss branch), no original
	// allocation.
	news, mats := 0, 0
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		// oplint:ignore — counts two ops of interest.
		switch n.Op {
		case ir.OpNew:
			news++
		case ir.OpMaterialize:
			mats++
		}
	})
	if news != 0 || mats != 1 {
		t.Fatalf("allocation not moved into the miss branch (new=%d mat=%d):\n%s",
			news, mats, ir.Dump(g))
	}

	// Dynamically: driver(50) performs 50 calls with key pattern
	// i/4, so a miss happens only when i/4 changes (13 distinct keys),
	// the rest are hits with zero allocation.
	v1, env1, err1 := runRef(t, p, []int64{50})
	v2, env2, err2 := runPEA(t, p, graphs, []int64{50})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !v1.Equal(v2) {
		t.Fatalf("results differ: %v vs %v", v1, v2)
	}
	if env1.Stats.Allocations != 50 {
		t.Fatalf("baseline should allocate every call, got %d", env1.Stats.Allocations)
	}
	if env2.Stats.Allocations != 13 {
		t.Fatalf("PEA should allocate only on misses: got %d, want 13", env2.Stats.Allocations)
	}
	if env2.Stats.MonitorOps != 0 {
		t.Fatalf("PEA monitor ops = %d, want 0", env2.Stats.MonitorOps)
	}
}

// TestResultCounters sanity-checks the Result statistics.
func TestResultCounters(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	v := box.Field("v", bc.KindInt)
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := m.NewLocal(bc.KindRef)
	m.New(box.Ref()).Store(l)
	m.Load(l).MonitorEnter()
	m.Load(l).Load(0).PutField(v)
	m.Load(l).MonitorExit()
	m.Load(l).GetField(v).ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(prog.ClassByName("C").MethodByName("m"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Changed {
		t.Fatal("PEA reported no change")
	}
	if res.VirtualizedAllocs != 1 {
		t.Fatalf("VirtualizedAllocs = %d", res.VirtualizedAllocs)
	}
	if res.ElidedMonitors != 2 {
		t.Fatalf("ElidedMonitors = %d", res.ElidedMonitors)
	}
	if res.ScalarizedLoads != 1 {
		t.Fatalf("ScalarizedLoads = %d", res.ScalarizedLoads)
	}
	if res.MaterializeSites != 0 {
		t.Fatalf("MaterializeSites = %d", res.MaterializeSites)
	}
	if err := ir.Verify(g); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
}

// TestTraceOutput checks the analysis trace facility.
func TestTraceOutput(t *testing.T) {
	var p testprog.Program
	for _, c := range testprog.Corpus() {
		if c.Name == "partialEscape" {
			p = c
		}
	}
	g, err := build.Build(p.Entry)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if _, err := Run(g, Config{Trace: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pea[analyze] round 1", "virtualize o0", "materialize o0", "fixpoint after"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "pea[emit]") {
		t.Fatalf("no emit-phase events:\n%s", out)
	}
}
