package pea

import (
	"fmt"
	"io"

	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/obs/flight"
)

// This file connects the analysis to the observability layer. All PEA
// decisions — virtualizations, materializations with their cause and
// position, merge materializations, lock elisions, fixpoint rounds,
// bailouts — are emitted as typed obs events; the legacy Config.Trace
// io.Writer is served by LegacyTraceBackend, which renders those events in
// the historical "pea[phase] ..." line format.
//
// Decision events (virtualize/materialize/lock_elide) are emitted only
// during the emit phase, exactly once per transformation, so that the
// obs metrics counters always equal the Result counters. Fixpoint progress
// events (rounds, state changes, convergence) are emitted during analysis.

// Materialization reason strings carried in obs events.
const (
	// reasonMergeMixed: the object is virtual on some predecessors of a
	// merge and escaped on others (Figure 6b).
	reasonMergeMixed = "merge-mixed"
	// reasonMergePhi: a pre-existing reference phi merges aliases of
	// different objects, so the virtual inputs must exist (Figure 6c).
	reasonMergePhi = "merge-phi"
	// reasonMergeField: field values of an all-virtual object differ
	// between predecessors and the phi's virtual inputs must exist
	// (paper §5.3).
	reasonMergeField = "merge-field-phi"
	// reasonStoreCycle: the store would create a cycle among virtual
	// objects, which a Materialize node cannot express (Figure 5).
	reasonStoreCycle = "store-cycle"
	// reasonNonConstIndex: an array access with a non-constant index
	// forces the array to exist.
	reasonNonConstIndex = "non-const-index"
)

// method returns the analyzed method's qualified name for events. It is
// only called on paths already guarded by a.sink != nil.
func (a *analyzer) methodName() string { return a.method }

// siteOf returns the allocation-site identity of id: the method whose
// bytecode contains the allocation (which survives inlining — the builder
// tags OpNew/OpNewArray with their defining method) at its bytecode index.
// Hand-built graphs without site tags fall back to the analyzed method.
func (a *analyzer) siteOf(id objID) string {
	n := a.objs[id].allocSite
	if n == nil {
		return a.method
	}
	if n.Method != nil {
		return fmt.Sprintf("%s@%d", n.Method.QualifiedName(), n.BCI)
	}
	return fmt.Sprintf("%s@%d", a.method, n.BCI)
}

// flightSite returns the site as flight-recorder scalars: the dense method
// ID (-1 when untagged) and bytecode index of the allocation.
func (a *analyzer) flightSite(id objID) (method, bci int32) {
	method, bci = -1, -1
	if n := a.objs[id].allocSite; n != nil {
		bci = int32(n.BCI)
		if n.Method != nil {
			method = int32(n.Method.ID)
		}
	}
	return method, bci
}

// eventVirtualize emits the scalar-replacement decision for one allocation
// (emit phase only; called exactly when Result.VirtualizedAllocs counts it).
func (a *analyzer) eventVirtualize(id objID, nodeID int) {
	if a.sink == nil {
		return
	}
	a.sink.Virtualize(a.methodName(), fmt.Sprintf("o%d", id),
		a.allocDesc(id), fmt.Sprintf("v%d", nodeID), a.siteOf(id))
}

// eventMaterialize emits a materialization with reason and position (emit
// phase only; called exactly when Result.MaterializeSites counts it).
// before == nil marks an edge materialization at the end of b, which is
// always merge-induced and reported as merge_materialize. The decision is
// also recorded in the always-on flight recorder (independent of the sink).
func (a *analyzer) eventMaterialize(id objID, b fmt.Stringer, beforeID int, reason string) {
	if fl := a.conf.Flight; fl != nil {
		method, bci := a.flightSite(id)
		fl.Record(flight.KindMaterialize, method, bci, int64(id), 0, fl.Reason(reason))
	}
	if a.sink == nil {
		return
	}
	if beforeID >= 0 {
		a.sink.Materialize(a.methodName(), fmt.Sprintf("o%d", id),
			fmt.Sprintf("v%d", beforeID), b.String(), reason, a.siteOf(id))
		return
	}
	a.sink.MergeMaterialize(a.methodName(), fmt.Sprintf("o%d", id), b.String(), reason, a.siteOf(id))
}

// eventSummaryKept emits one call argument kept virtual under a callee
// summary (emit phase only; called exactly when Result.SummaryKeptVirtual
// counts it). Recorded in the flight recorder independently of the sink.
func (a *analyzer) eventSummaryKept(id objID, call *ir.Node, b fmt.Stringer) {
	callee := ""
	if call.Method != nil {
		callee = call.Method.QualifiedName()
	}
	if fl := a.conf.Flight; fl != nil {
		method, bci := a.flightSite(id)
		fl.Record(flight.KindSummaryKept, method, bci, int64(id), 0, fl.Reason(callee))
	}
	if a.sink == nil {
		return
	}
	a.sink.SummaryKeptVirtual(a.methodName(), fmt.Sprintf("o%d", id),
		fmt.Sprintf("v%d", call.ID), b.String(), callee, a.siteOf(id))
}

// eventLockElide emits one elided monitor operation (emit phase only).
func (a *analyzer) eventLockElide(id objID, nodeID int, op string) {
	if a.sink == nil {
		return
	}
	a.sink.LockElide(a.methodName(), fmt.Sprintf("o%d", id),
		fmt.Sprintf("v%d", nodeID), op, a.siteOf(id))
}

// allocDesc names the allocated type: class name, or "kind[len]" for arrays.
func (a *analyzer) allocDesc(id objID) string {
	oi := a.objs[id]
	if oi.class != nil {
		return oi.class.Name
	}
	return fmt.Sprintf("%s[%d]", oi.elemKind, oi.length)
}

// LegacyTraceBackend renders pea obs events in the historical line format
// that Config.Trace consumers (and TestTraceOutput) expect:
//
//	pea[analyze] round 1
//	pea[analyze]   b3 entry changed: {o0=virt(locks=0, fields=[v4])}
//	pea[analyze] fixpoint after 2 rounds
//	pea[emit]   virtualize o0 (Key) at v5
//	pea[emit]   materialize o0 before v9 in b2
//	pea[emit]   materialize o1 at the end of b4 (edge)
//
// Fixpoint progress is an analysis-phase concern and decision events fire
// during emit, so the phase tag is derived from the event kind.
type LegacyTraceBackend struct {
	W io.Writer
}

// Write implements obs.Backend.
func (l *LegacyTraceBackend) Write(e *obs.Event) {
	switch e.Kind {
	case obs.KindPEARound:
		fmt.Fprintf(l.W, "pea[analyze] round %d\n", e.Round)
	case obs.KindPEAState:
		fmt.Fprintf(l.W, "pea[analyze]   %s entry changed: %s\n", e.Block, e.Detail)
	case obs.KindPEAFixpoint:
		fmt.Fprintf(l.W, "pea[analyze] fixpoint after %d rounds\n", e.Round)
	case obs.KindPEABailout:
		fmt.Fprintf(l.W, "pea[analyze] bailout: %s\n", e.Reason)
	case obs.KindVirtualize:
		fmt.Fprintf(l.W, "pea[emit]   virtualize %s (%s) at %s\n", e.Obj, e.Detail, e.Node)
	case obs.KindMaterialize:
		fmt.Fprintf(l.W, "pea[emit]   materialize %s before %s in %s (%s)\n", e.Obj, e.Node, e.Block, e.Reason)
	case obs.KindMergeMaterialize:
		fmt.Fprintf(l.W, "pea[emit]   materialize %s at the end of %s (edge, %s)\n", e.Obj, e.Block, e.Reason)
	case obs.KindLockElide:
		fmt.Fprintf(l.W, "pea[emit]   elide %s on %s at %s\n", e.Detail, e.Obj, e.Node)
	}
}
