package pea

import (
	"sort"

	"pea/internal/bc"
	"pea/internal/ir"
)

// merge implements the paper's MergeProcessor (§5.3, Figure 6). It merges
// the exit states of b's predecessors into b's entry state:
//
//   - only ids live in every available predecessor survive (Figure 6a);
//   - ids escaped everywhere merge their materialized values, with a phi
//     when they differ (Figure 6b);
//   - mixed virtual/escaped ids are materialized at the virtual
//     predecessors' edges and handled as escaped;
//   - all-virtual ids merge field-wise, creating phis for differing
//     values; phi inputs that are virtual are materialized first;
//   - pre-existing phis at the merge become aliases of an id when all
//     their inputs alias that id (Figure 6c), otherwise aliased inputs
//     are replaced with materialized values.
//
// The process iterates until no additional materializations occur. During
// loop analysis, predecessors whose exit state is not yet known (back
// edges on the first round) are skipped, which makes the first-round entry
// exactly the paper's "speculative state" (§5.4).
//
// In emit mode the same decisions are replayed, and the effects —
// materializations in predecessor blocks, new phis, substituted phi
// inputs — are applied to the graph.
func (a *analyzer) merge(b *ir.Block) *peaState {
	// Available predecessors (parallel slices). Edge materializations
	// mutate the working state copies; predecessors of a merge have a
	// single successor (critical edges are split), so the mutation
	// scope is exactly the edge.
	var (
		pIdx []int
		pBlk []*ir.Block
		pSt  []*peaState
	)
	for i, p := range b.Preds {
		if ex := a.exits[p]; ex != nil {
			pIdx = append(pIdx, i)
			pBlk = append(pBlk, p)
			pSt = append(pSt, ex.clone())
		}
	}
	merged := newPeaState()
	if len(pSt) == 0 {
		return merged
	}

	for iter := 0; ; iter++ {
		merged = newPeaState()
		materializedSomething := false

		// Figure 6a: intersection of live ids.
		alive := make(map[objID]int)
		for _, st := range pSt {
			for id := range st.objs {
				alive[id]++
			}
		}
		var ids []objID
		surviving := make(map[objID]bool)
		for id, c := range alive {
			if c == len(pSt) && a.hasFutureRef(b, id) {
				ids = append(ids, id)
				surviving[id] = true
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		// Survival is closed under field reachability: a virtual object
		// held in a surviving object's field must survive too, even if
		// no direct alias of it is live anymore.
		for w := 0; w < len(ids); w++ {
			id := ids[w]
			for _, st := range pSt {
				os := st.objs[id]
				if !os.virtual {
					continue
				}
				for _, f := range os.fields {
					fid, ok := a.aliasIn(st, a.resolveScalar(f))
					if ok && alive[fid] == len(pSt) && !surviving[fid] {
						surviving[fid] = true
						ids = append(ids, fid)
					}
				}
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

		for _, id := range ids {
			allVirtual, anyVirtual := true, false
			for _, st := range pSt {
				if st.objs[id].virtual {
					anyVirtual = true
				} else {
					allVirtual = false
				}
			}
			if allVirtual && a.lockDepthsAgree(pSt, id) {
				ns, mat := a.mergeVirtual(b, pBlk, pSt, id)
				if mat {
					materializedSomething = true
				}
				merged.set(id, ns)
				continue
			}
			if anyVirtual {
				// Mixed (or lock-depth conflict): materialize
				// at the virtual predecessors' edges.
				for k, st := range pSt {
					if st.objs[id].virtual {
						a.materializeAt(st, id, pBlk[k], nil, reasonMergeMixed)
						materializedSomething = true
					}
				}
			}
			// All escaped now: merge materialized values
			// (Figure 6b).
			vals := make([]*ir.Node, len(pSt))
			same := true
			for k, st := range pSt {
				vals[k] = st.objs[id].materialized
				if vals[k] != vals[0] {
					same = false
				}
			}
			if same {
				merged.set(id, &objState{materialized: vals[0]})
			} else {
				phi := a.mergePhi(b, id, -1, bc.KindRef)
				a.setPhiInputs(b, phi, pIdx, vals)
				merged.set(id, &objState{materialized: phi})
			}
		}

		// Figure 6c: pre-existing phis. During loop analysis the back
		// edges may be unavailable (paper §5.4: the first pass runs on
		// the speculative state); aliasing is then decided
		// optimistically from the available inputs — a loop-carried
		// object whose back-edge input is the phi itself resolves
		// through the alias established here in the next round, and a
		// wrong speculation is corrected when the back-edge states
		// arrive.
		for _, phi := range b.Phis {
			if phi.Kind != bc.KindRef || a.ourPhis[phi] {
				continue
			}
			sameID := objID(-1)
			allSame := true
			for k := range pSt {
				in := a.resolveScalar(phi.Inputs[pIdx[k]])
				id, ok := a.aliasIn(pSt[k], in)
				if !ok {
					allSame = false
					break
				}
				if sameID == -1 {
					sameID = id
				} else if sameID != id {
					allSame = false
					break
				}
			}
			if allSame && sameID >= 0 {
				if ms, ok := merged.objs[sameID]; ok && ms.virtual {
					a.aliases[phi] = sameID
					continue
				}
			}
			delete(a.aliases, phi)
			for k := range pSt {
				in := a.resolveScalar(phi.Inputs[pIdx[k]])
				if id, ok := a.aliasIn(pSt[k], in); ok {
					if pSt[k].objs[id].virtual {
						a.materializeAt(pSt[k], id, pBlk[k], nil, reasonMergePhi)
						materializedSomething = true
					}
					in = pSt[k].objs[id].materialized
				}
				if a.emit && in != phi.Inputs[pIdx[k]] {
					phi.Inputs[pIdx[k]] = in
				}
			}
		}

		if !materializedSomething || iter > 2*len(a.objs)+4 {
			break
		}
	}

	if a.emit {
		// Drop phis that became pure aliases of virtual objects:
		// every use has been (or will be) rewritten through the
		// alias, and the phi's own inputs reference deleted
		// allocations.
		for _, phi := range append([]*ir.Node(nil), b.Phis...) {
			if a.ourPhis[phi] {
				continue
			}
			if id, ok := a.aliases[phi]; ok {
				if ms, live := merged.objs[id]; live && ms.virtual {
					a.g.RemovePhi(phi)
				}
			}
		}
	}
	return merged
}

// lockDepthsAgree reports whether the virtual lock depth of id is the same
// in every state.
func (a *analyzer) lockDepthsAgree(states []*peaState, id objID) bool {
	d := -1
	for _, st := range states {
		os := st.objs[id]
		if !os.virtual {
			continue
		}
		if d == -1 {
			d = os.lockDepth
		} else if d != os.lockDepth {
			return false
		}
	}
	return true
}

// mergeVirtual merges an all-virtual id field-wise. It returns the merged
// state and whether any field-value materialization was requested (which
// forces the caller to re-run the merge).
func (a *analyzer) mergeVirtual(b *ir.Block, pBlk []*ir.Block, pSt []*peaState, id objID) (*objState, bool) {
	oi := a.objs[id]
	n := oi.numFields()
	ns := &objState{virtual: true, fields: make([]*ir.Node, n), lockDepth: pSt[0].objs[id].lockDepth}
	materialized := false
	for f := 0; f < n; f++ {
		vals := make([]*ir.Node, len(pSt))
		same := true
		for k, st := range pSt {
			vals[k] = a.resolveScalar(st.objs[id].fields[f])
			if vals[k] != vals[0] {
				same = false
			}
		}
		if same {
			ns.fields[f] = vals[0]
			continue
		}
		// All values aliasing the same virtual object also merge
		// ("this applies to Ids as well").
		sameID := objID(-1)
		allAlias := true
		for k, st := range pSt {
			vid, ok := a.aliasIn(st, vals[k])
			if !ok || !st.objs[vid].virtual {
				allAlias = false
				break
			}
			if sameID == -1 {
				sameID = vid
			} else if sameID != vid {
				allAlias = false
				break
			}
		}
		if allAlias && sameID >= 0 {
			ns.fields[f] = a.objs[sameID].allocSite
			continue
		}
		// Differing values need a phi; virtual inputs must be
		// materialized first (paper §5.3).
		inputs := make([]*ir.Node, len(pSt))
		for k, st := range pSt {
			v := vals[k]
			if vid, ok := a.aliasIn(st, v); ok {
				if st.objs[vid].virtual {
					a.materializeAt(st, vid, pBlk[k], nil, reasonMergeField)
					materialized = true
				}
				v = st.objs[vid].materialized
			}
			inputs[k] = v
		}
		phi := a.mergePhi(b, id, f, oi.fieldKind(f))
		a.setPhiInputsDense(b, phi, inputs)
		ns.fields[f] = phi
	}
	return ns, materialized
}

// mergePhi returns the memoized phi node for (block, id, field).
func (a *analyzer) mergePhi(b *ir.Block, id objID, field int, kind bc.Kind) *ir.Node {
	key := phiKey{block: b, id: id, field: field}
	if phi, ok := a.phiMemo[key]; ok {
		return phi
	}
	phi := a.g.NewNode(ir.OpPhi, kind)
	a.phiMemo[key] = phi
	a.ourPhis[phi] = true
	return phi
}

// setPhiInputs assigns phi inputs for the available predecessor indices,
// filling unavailable slots with the first value (they are recomputed once
// the back-edge states arrive), and attaches the phi in emit mode.
func (a *analyzer) setPhiInputs(b *ir.Block, phi *ir.Node, idxs []int, vals []*ir.Node) {
	if len(phi.Inputs) != len(b.Preds) {
		phi.Inputs = make([]*ir.Node, len(b.Preds))
	}
	for i := range phi.Inputs {
		phi.Inputs[i] = nil
	}
	for k, idx := range idxs {
		phi.Inputs[idx] = vals[k]
	}
	for i := range phi.Inputs {
		if phi.Inputs[i] == nil {
			phi.Inputs[i] = vals[0]
		}
	}
	a.attachPhi(b, phi)
}

// setPhiInputsDense is setPhiInputs with dense values over available preds.
func (a *analyzer) setPhiInputsDense(b *ir.Block, phi *ir.Node, vals []*ir.Node) {
	idxs := make([]int, 0, len(vals))
	for i, p := range b.Preds {
		if a.exits[p] != nil {
			idxs = append(idxs, i)
		}
	}
	a.setPhiInputs(b, phi, idxs, vals)
}

func (a *analyzer) attachPhi(b *ir.Block, phi *ir.Node) {
	if !a.emit || phi.Block != nil {
		return
	}
	phi.Block = b
	b.Phis = append(b.Phis, phi)
}
