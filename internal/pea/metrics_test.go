package pea

import (
	"testing"

	"pea/internal/build"
	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/opt"
	"pea/internal/testprog"
)

// TestMetricsMatchResult runs PEA over every method of the whole test
// corpus with a metrics-attached sink and demands that the decision
// counters in the registry agree exactly with the Result the transformation
// reports: events are emitted at precisely the program points where the
// counters increment, never more, never less.
func TestMetricsMatchResult(t *testing.T) {
	for _, p := range testprog.Corpus() {
		t.Run(p.Name, func(t *testing.T) {
			for _, m := range p.Prog.Methods {
				g, err := build.Build(m)
				if err != nil {
					t.Fatalf("build %s: %v", m.QualifiedName(), err)
				}
				pre := &opt.Pipeline{
					Phases: []opt.Phase{
						&opt.Inliner{BuildGraph: build.Build, Program: p.Prog},
						opt.Canonicalize{},
						opt.SimplifyCFG{},
						opt.GVN{},
						opt.DCE{},
					},
					Validate: true,
				}
				if err := pre.Run(g); err != nil {
					t.Fatalf("pre-opt %s: %v", m.QualifiedName(), err)
				}

				met := obs.NewMetrics()
				sink := obs.NewSink()
				sink.SetMetrics(met)
				res, err := Run(g, Config{Sink: sink})
				if err != nil {
					t.Fatalf("pea %s: %v\n%s", m.QualifiedName(), err, ir.Dump(g))
				}

				check := func(name string, counter string, want int) {
					if got := met.Counter(counter); got != int64(want) {
						t.Errorf("%s: metric %s = %d, but Result reports %d",
							m.QualifiedName(), counter, got, want)
					}
				}
				check("virtualized", obs.MetricVirtualized, res.VirtualizedAllocs)
				check("materialized", obs.MetricMaterialized, res.MaterializeSites)
				check("locks elided", obs.MetricLocksElided, res.ElidedMonitors)
				wantBail := 0
				if res.BailedOut {
					wantBail = 1
				}
				check("bailouts", obs.MetricPEABailouts, wantBail)
			}
		})
	}
}
