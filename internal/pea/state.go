// Package pea implements the paper's contribution: control-flow-sensitive
// Partial Escape Analysis with Scalar Replacement and Lock Elision on the
// SSA IR (Stadler, Würthinger, Mössenböck — CGO 2014).
//
// The analysis walks the control flow in reverse postorder, maintaining for
// every allocation an ObjectState that is either *virtual* — the field
// values and lock depth are compile-time knowledge — or *escaped* — the
// object was materialized and is represented by the node that (re)creates
// it (paper §5.1, Listing 7). Node transfer functions implement Figure 4/5;
// a MergeProcessor implements Figure 6; loops are iterated to a fixpoint as
// in §5.4 (Figure 7); FrameStates are rewritten to reference virtual object
// descriptors as in §5.5 (Figure 8).
package pea

import (
	"fmt"
	"sort"
	"strings"

	"pea/internal/bc"
	"pea/internal/ir"
)

// objID identifies one analyzed allocation (the paper's "Id").
type objID int

// objInfo is the flow-invariant description of an allocation.
type objInfo struct {
	id        objID
	class     *bc.Class // nil for arrays
	elemKind  bc.Kind   // for arrays
	length    int64     // for arrays
	allocSite *ir.Node  // the original OpNew / OpNewArray
}

func (oi *objInfo) numFields() int {
	if oi.class != nil {
		return oi.class.NumFields()
	}
	return int(oi.length)
}

func (oi *objInfo) fieldKind(i int) bc.Kind {
	if oi.class != nil {
		return oi.class.Fields[i].Kind
	}
	return oi.elemKind
}

// objState is the flow-dependent state of one allocation: the paper's
// VirtualState (fields + lockCount) or EscapedState (materializedValue).
type objState struct {
	virtual bool
	// fields holds the current field (or array element) values while
	// virtual. Entries may be nodes that alias other virtual objects.
	fields []*ir.Node
	// lockDepth is the number of elided monitor acquisitions held.
	lockDepth int
	// materialized is the node producing the object once escaped.
	materialized *ir.Node
}

func (os *objState) clone() *objState {
	c := *os
	c.fields = append([]*ir.Node(nil), os.fields...)
	return &c
}

func (os *objState) equal(o *objState) bool {
	if os.virtual != o.virtual {
		return false
	}
	if os.virtual {
		if os.lockDepth != o.lockDepth || len(os.fields) != len(o.fields) {
			return false
		}
		for i := range os.fields {
			if os.fields[i] != o.fields[i] {
				return false
			}
		}
		return true
	}
	return os.materialized == o.materialized
}

// peaState is the per-program-point map from live object ids to their
// states (the paper's `states` map; the alias map is kept globally on the
// analyzer since SSA values bind to at most one object over their
// lifetime).
//
// States are copy-on-write: clone is O(1) and shares the map (and the
// objStates in it) with the original, deferring the deep copy until either
// side mutates. The analysis clones at every block entry and merge edge but
// mutates only where objects are allocated, stored to, locked, or
// materialized, so straight-line code through allocation-free blocks pays
// nothing. All mutations must go through set/mutable, which un-share first.
type peaState struct {
	objs map[objID]*objState
	// shared marks objs (and every objState in it) as potentially
	// referenced by another peaState; mutating methods copy first.
	shared bool
}

func newPeaState() *peaState { return &peaState{objs: make(map[objID]*objState)} }

// clone returns a state equivalent to s. Both s and the clone become
// shared; the first mutation on either side copies.
func (s *peaState) clone() *peaState {
	s.shared = true
	return &peaState{objs: s.objs, shared: true}
}

// own makes s's map private, deep-copying it if it is still shared.
func (s *peaState) own() {
	if !s.shared {
		return
	}
	objs := make(map[objID]*objState, len(s.objs))
	for id, os := range s.objs {
		objs[id] = os.clone()
	}
	s.objs = objs
	s.shared = false
}

// set binds id to os, un-sharing first.
func (s *peaState) set(id objID, os *objState) {
	s.own()
	s.objs[id] = os
}

// mutable returns id's state for in-place mutation, un-sharing first. The
// id must be live in s.
func (s *peaState) mutable(id objID) *objState {
	s.own()
	return s.objs[id]
}

func (s *peaState) equal(o *peaState) bool {
	if len(s.objs) != len(o.objs) {
		return false
	}
	for id, os := range s.objs {
		oo, ok := o.objs[id]
		if !ok || !os.equal(oo) {
			return false
		}
	}
	return true
}

// ids returns the live object ids in ascending order (deterministic
// iteration).
func (s *peaState) ids() []objID {
	out := make([]objID, 0, len(s.objs))
	for id := range s.objs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the state for debugging.
func (s *peaState) String() string {
	var b strings.Builder
	b.WriteString("{")
	for i, id := range s.ids() {
		if i > 0 {
			b.WriteString(", ")
		}
		os := s.objs[id]
		if os.virtual {
			fmt.Fprintf(&b, "o%d=virt(locks=%d, fields=%s)", id, os.lockDepth, fmtNodes(os.fields))
		} else {
			fmt.Fprintf(&b, "o%d=esc(%s)", id, nodeName(os.materialized))
		}
	}
	b.WriteString("}")
	return b.String()
}

func fmtNodes(ns []*ir.Node) string {
	var b strings.Builder
	b.WriteString("[")
	for i, n := range ns {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(nodeName(n))
	}
	b.WriteString("]")
	return b.String()
}

func nodeName(n *ir.Node) string {
	if n == nil {
		return "_"
	}
	return fmt.Sprintf("v%d", n.ID)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
