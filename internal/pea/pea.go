package pea

import (
	"fmt"
	"io"

	"pea/internal/bc"
	"pea/internal/budget"
	"pea/internal/check"
	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/obs/flight"
	"pea/internal/sched"
)

// Config tunes the analysis.
type Config struct {
	// MaxVirtualArrayLength bounds the constant array lengths that are
	// scalar-replaced (default 32).
	MaxVirtualArrayLength int64
	// MaxRounds bounds whole-graph fixpoint rounds; if the analysis has
	// not converged it bails out without transforming (default 16).
	MaxRounds int
	// AllowAlloc, when non-nil, restricts which allocation sites may be
	// virtualized. The flow-insensitive baseline (package ea) uses it
	// to limit scalar replacement to provably never-escaping objects.
	AllowAlloc func(n *ir.Node) bool
	// DisableAliasLiveness is an ablation switch: it turns off the
	// Figure 6a rule that lets dead objects leave the state at merges,
	// so mixed merges always materialize. Used to quantify how much of
	// PEA's benefit depends on that rule.
	DisableAliasLiveness bool
	// DisableArrays is an ablation switch: constant-length arrays are
	// never virtualized.
	DisableArrays bool
	// CalleeNoEscape, when non-nil, consults inter-procedural escape
	// summaries (internal/summary) at OpInvoke nodes: it returns, per
	// argument position, whether every possible callee provably never
	// observes that argument — not a load, store, comparison, monitor,
	// return, or further escaping call on any path. A true position
	// licenses the transfer to keep a virtual object virtual across the
	// call and pass null in the argument slot: the callee executes
	// identically because it never looks at the value, and the call's
	// FrameState still carries the virtual object, so deoptimization
	// rematerializes it exactly as for any other node. nil (or a nil
	// result for a particular call) falls back to the conservative
	// default: every argument escapes (paper §5.2).
	CalleeNoEscape func(call *ir.Node) []bool
	// Budget, when non-nil, is the per-compile resource bound. The
	// analysis polls it at the start of every fixpoint round and before
	// the emit phase — its cooperative cancellation points — and unwinds
	// with a structured budget error (wrapping budget.ErrBudget) when the
	// compile deadline or IR node bound is exceeded, after emitting a
	// pea_bailout event. This is the same graceful-degradation shape as
	// the paper's bounded fixpoint (§3): the method simply stays
	// interpreted. nil (the default) adds a single pointer test per round.
	Budget *budget.Budget
	// Check selects the sanitizer level (floored by the PEA_CHECK
	// environment variable). At check.Strict the analyzer validates its
	// own state invariants at every block boundary of both the fixpoint
	// and the emit phase; lower levels add no work here (the graph-level
	// checks run in the caller's pipeline).
	Check check.Level
	// Sink, when non-nil, receives structured analysis events:
	// virtualizations, materializations with reason and position, merge
	// materializations, lock elisions, fixpoint rounds, and bailouts.
	Sink *obs.Sink
	// Flight, when non-nil, is the VM's always-on flight recorder.
	// Materialization decisions are recorded there with their allocation
	// site regardless of whether a Sink is attached — the recorder is the
	// black box that stays on when event tracing is off.
	Flight *flight.Recorder
	// Trace, when non-nil, receives the same events rendered as a
	// line-oriented log (compatibility shim over the event sink; see
	// LegacyTraceBackend).
	Trace io.Writer
}

func (c Config) maxArrayLen() int64 {
	if c.MaxVirtualArrayLength > 0 {
		return c.MaxVirtualArrayLength
	}
	return 32
}

func (c Config) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 16
}

// Result reports what the analysis did.
type Result struct {
	// Changed is true if the graph was transformed.
	Changed bool
	// BailedOut is true if the fixpoint did not converge and the graph
	// was left untouched.
	BailedOut bool
	// Rounds is the number of fixpoint rounds used.
	Rounds int
	// VirtualizedAllocs counts allocation sites removed (scalar
	// replacement).
	VirtualizedAllocs int
	// MaterializeSites counts OpMaterialize nodes inserted.
	MaterializeSites int
	// ElidedMonitors counts MonitorEnter/Exit nodes removed (lock
	// elision).
	ElidedMonitors int
	// ScalarizedLoads counts loads replaced by known field values.
	ScalarizedLoads int
	// FoldedChecks counts reference equalities and type checks resolved
	// at compile time.
	FoldedChecks int
	// SummaryKeptVirtual counts call arguments where a virtual object
	// stayed virtual across a non-inlined call because the callee
	// summary proved the position unobserved (Config.CalleeNoEscape).
	SummaryKeptVirtual int
}

// Run performs Partial Escape Analysis with scalar replacement and lock
// elision on g, transforming it in place. The graph must be verified; the
// result is verified by the caller's pipeline (tests always do).
func Run(g *ir.Graph, conf Config) (Result, error) {
	sink := conf.Sink
	if conf.Trace != nil {
		lb := &LegacyTraceBackend{W: conf.Trace}
		if sink == nil {
			sink = obs.NewSink(lb)
		} else {
			sink.AddBackend(lb)
			defer sink.RemoveBackend(lb)
		}
	}
	if conf.Budget != nil {
		// Check before the first graph mutation (splitCriticalEdges), so
		// an already-blown budget leaves the graph untouched.
		name := ""
		if g.Method != nil {
			name = g.Method.QualifiedName()
		}
		if err := conf.Budget.Check("pea-entry", name, g.NumNodes()); err != nil {
			sink.PEABailout(name, err.Error())
			return Result{BailedOut: true}, err
		}
	}
	splitCriticalEdges(g)
	a := &analyzer{
		g:         g,
		conf:      conf,
		sink:      sink,
		allocIDs:  make(map[*ir.Node]objID),
		aliases:   make(map[*ir.Node]objID),
		replaced:  make(map[*ir.Node]*ir.Node),
		entries:   make(map[*ir.Block]*peaState),
		exits:     make(map[*ir.Block]*peaState),
		phiMemo:   make(map[phiKey]*ir.Node),
		matMemo:   make(map[matKey]*ir.Node),
		virtMemo:  make(map[objID]*ir.Node),
		lenMemo:   make(map[objID]*ir.Node),
		foldMemo:  make(map[*ir.Node]*ir.Node),
		ourPhis:   make(map[*ir.Node]bool),
		futureRef: make(map[futKey]bool),
	}
	if sink != nil {
		a.method = g.Method.QualifiedName()
	}
	cfg, err := sched.Compute(g)
	if err != nil {
		return Result{}, fmt.Errorf("pea: %w", err)
	}
	a.cfg = cfg
	a.buildRefIndex()

	// Strict-mode self-checking: validate the analyzer's state at every
	// block boundary. The closure is nil at lower levels so the hot loop
	// pays a single pointer test per block.
	var checkAt func(b *ir.Block, st *peaState) error
	if conf.checkLevel() >= check.Strict {
		checkAt = a.checkState
	}

	// Phase A: whole-graph fixpoint over block entry states.
	converged := false
	for round := 1; round <= conf.maxRounds(); round++ {
		if conf.Budget != nil {
			if err := conf.Budget.Check("pea-fixpoint", a.method, g.NumNodes()); err != nil {
				a.sink.PEABailout(a.method, err.Error())
				return Result{BailedOut: true, Rounds: a.res.Rounds}, err
			}
		}
		a.res.Rounds = round
		a.sink.PEARound(a.method, round)
		changed := false
		for _, b := range cfg.RPO {
			entry := a.computeEntry(b)
			if old := a.entries[b]; old == nil || !old.equal(entry) {
				changed = true
				if a.sink != nil {
					a.sink.PEAState(a.method, b.String(), entry.String())
				}
			}
			a.entries[b] = entry
			a.exits[b] = a.transferBlock(b, entry.clone())
			if checkAt != nil {
				if err := checkAt(b, a.exits[b]); err != nil {
					a.sink.CheckViolation("pea", a.method, err.Error(), "")
					return Result{}, err
				}
			}
		}
		if !changed {
			converged = true
			a.sink.PEAFixpoint(a.method, round)
			break
		}
	}
	if !converged {
		if a.sink != nil {
			a.sink.PEABailout(a.method, fmt.Sprintf("no fixpoint after %d rounds", a.res.Rounds))
		}
		return Result{BailedOut: true, Rounds: a.res.Rounds}, nil
	}
	if len(a.allocIDs) == 0 {
		return a.res, nil // nothing to do
	}
	if conf.Budget != nil {
		if err := conf.Budget.Check("pea-emit", a.method, g.NumNodes()); err != nil {
			a.sink.PEABailout(a.method, err.Error())
			return Result{BailedOut: true, Rounds: a.res.Rounds}, err
		}
	}

	// Phase B: emit. First replay all merges (edge materializations, new
	// phis, existing-phi rewiring), then replay all transfers (node
	// removal, substitutions, frame-state virtualization).
	a.emit = true
	for _, b := range cfg.RPO {
		if len(b.Preds) >= 2 {
			merged := a.merge(b)
			if !merged.equal(a.entries[b]) {
				return Result{}, fmt.Errorf("pea: emit merge diverged at %s:\n fix=%s\n got=%s",
					b, a.entries[b], merged)
			}
		}
	}
	for _, b := range cfg.RPO {
		out := a.transferBlock(b, a.entries[b].clone())
		if checkAt != nil {
			if err := checkAt(b, out); err != nil {
				a.sink.CheckViolation("pea", a.method, err.Error(), "")
				return Result{}, err
			}
		}
	}
	if checkAt != nil {
		if err := a.checkRewrites(); err != nil {
			a.sink.CheckViolation("pea", a.method, err.Error(), "")
			return Result{}, err
		}
	}
	// Final sweep: phi inputs are not node inputs of any transferred
	// instruction, so scalar replacements (removed loads, folded checks)
	// must be substituted into them explicitly. Reference phis that
	// needed object handling were rewritten (or removed) by the merge
	// processing above; what remains is plain value substitution.
	for _, b := range cfg.RPO {
		for _, phi := range b.Phis {
			for i, in := range phi.Inputs {
				if in == nil {
					continue
				}
				if r := a.resolveScalar(in); r != in {
					phi.Inputs[i] = r
				}
			}
		}
	}
	// Guards whose trapping node was virtualized or scalar-replaced away
	// can no longer trap (a virtual object is never null, a virtualized
	// constant-length array never has a negative size): retire the
	// OnException terminator and let the dead dispatch chain fall off the
	// graph. RemoveDeadBlocks prunes the handler's matching predecessor
	// slots and phi inputs.
	retired := false
	for _, b := range g.Blocks {
		t := b.Term
		if t == nil || t.Op != ir.OpOnException {
			continue
		}
		if len(b.Nodes) > 0 && b.Nodes[len(b.Nodes)-1] == t.Inputs[0] {
			continue
		}
		gt := g.NewNode(ir.OpGoto, bc.KindVoid)
		gt.BCI = t.BCI
		gt.Block = b
		b.Term = gt
		b.Succs = b.Succs[:1]
		retired = true
	}
	if retired {
		g.RemoveDeadBlocks()
	}
	a.res.Changed = a.res.VirtualizedAllocs > 0 || a.res.ElidedMonitors > 0 ||
		a.res.ScalarizedLoads > 0 || a.res.FoldedChecks > 0
	return a.res, nil
}

type phiKey struct {
	block *ir.Block
	id    objID
	field int // -1 for the materialized-value phi
}

type futKey struct {
	block *ir.Block
	id    objID
}

type matKey struct {
	// site is the *ir.Node the materialization precedes, or the
	// predecessor *ir.Block for edge materializations.
	site any
	id   objID
}

type analyzer struct {
	g    *ir.Graph
	cfg  *sched.CFG
	conf Config

	// sink receives structured analysis events (nil-safe); method is the
	// analyzed method's qualified name, computed once when sink != nil.
	sink   *obs.Sink
	method string

	objs     []*objInfo
	allocIDs map[*ir.Node]objID // allocation site -> id (stable across rounds)
	aliases  map[*ir.Node]objID // value node -> id it refers to
	replaced map[*ir.Node]*ir.Node

	entries map[*ir.Block]*peaState
	exits   map[*ir.Block]*peaState

	phiMemo  map[phiKey]*ir.Node
	matMemo  map[matKey]*ir.Node
	virtMemo map[objID]*ir.Node    // OpVirtualObject per id
	lenMemo  map[objID]*ir.Node    // constant length node per virtual array
	foldMemo map[*ir.Node]*ir.Node // folded RefEq/InstanceOf -> const node
	ourPhis  map[*ir.Node]bool     // phis created by this analysis

	// liveIn[b] holds the reference-kind SSA values live at the entry
	// of b, computed once on the pre-analysis graph. It implements the
	// paper's Figure 6a condition: an object id survives a merge only
	// if one of its aliases is still live there — a use in the next
	// loop iteration refers to the next execution of the allocation,
	// not to this object, and must not keep it alive.
	liveIn map[*ir.Block]map[*ir.Node]bool
	// futureRef freezes hasFutureRef decisions from the analysis phase
	// for replay during emit.
	futureRef map[futKey]bool
	// kept logs call arguments where a virtual object stayed virtual
	// under a callee summary (emit phase), re-validated against the
	// summary license by checkRewrites under strict checking.
	kept []keptRec

	zeroInt *ir.Node
	nullRef *ir.Node

	emit bool
	res  Result
}

// splitCriticalEdges inserts an empty block on every edge from a
// multi-successor block to a multi-predecessor block, so that
// materializations required "at the corresponding predecessor" of a merge
// (paper §5.3) have a place to live that executes only on that edge.
func splitCriticalEdges(g *ir.Graph) {
	blocks := append([]*ir.Block(nil), g.Blocks...)
	for _, b := range blocks {
		if len(b.Succs) < 2 {
			continue
		}
		for i, s := range b.Succs {
			if len(s.Preds) < 2 {
				continue
			}
			e := g.NewBlock()
			gt := g.NewNode(ir.OpGoto, bc.KindVoid)
			gt.Block = e
			e.Term = gt
			e.Preds = []*ir.Block{b}
			e.Succs = []*ir.Block{s}
			b.Succs[i] = e
			// Replace the matching pred slot. With duplicate edges
			// (both If arms targeting s), successive splits take
			// successive occurrences, matching the phi-input order
			// established by the graph builder.
			for j, p := range s.Preds {
				if p == b {
					s.Preds[j] = e
					break
				}
			}
		}
	}
}

// computeEntry produces the entry state of b during analysis.
func (a *analyzer) computeEntry(b *ir.Block) *peaState {
	switch len(b.Preds) {
	case 0:
		return newPeaState()
	case 1:
		if ex := a.exits[b.Preds[0]]; ex != nil {
			return ex.clone()
		}
		return newPeaState()
	default:
		return a.merge(b)
	}
}

// idForAlloc assigns (or retrieves) the object id for an allocation site.
func (a *analyzer) idForAlloc(n *ir.Node) objID {
	if id, ok := a.allocIDs[n]; ok {
		return id
	}
	id := objID(len(a.objs))
	oi := &objInfo{id: id, allocSite: n}
	if n.Op == ir.OpNew {
		oi.class = n.Class
	} else {
		oi.elemKind = n.ElemKind
		oi.length = n.Inputs[0].AuxInt
	}
	a.objs = append(a.objs, oi)
	a.allocIDs[n] = id
	a.aliases[n] = id
	return id
}

// resolveScalar chases the scalar-replacement map.
func (a *analyzer) resolveScalar(v *ir.Node) *ir.Node {
	for {
		r, ok := a.replaced[v]
		if !ok {
			return v
		}
		v = r
	}
}

// aliasIn resolves v to a live object id in st.
func (a *analyzer) aliasIn(st *peaState, v *ir.Node) (objID, bool) {
	if v == nil {
		return 0, false
	}
	id, ok := a.aliases[a.resolveScalar(v)]
	if !ok {
		return 0, false
	}
	if _, live := st.objs[id]; !live {
		return 0, false
	}
	return id, true
}

// prependEntry places n at the very top of the entry block, so it
// dominates (and precedes in execution order) every possible use — the
// entry block may contain real code when earlier phases merged blocks.
func (a *analyzer) prependEntry(n *ir.Node) *ir.Node {
	entry := a.g.Entry()
	var first *ir.Node
	if len(entry.Nodes) > 0 {
		first = entry.Nodes[0]
	}
	a.g.InsertBefore(entry, n, first)
	return n
}

// defaultValue returns the canonical zero value node for a kind, creating
// it at the top of the entry block on first use.
func (a *analyzer) defaultValue(k bc.Kind) *ir.Node {
	if k == bc.KindRef {
		if a.nullRef == nil {
			a.nullRef = a.prependEntry(a.g.NewNode(ir.OpConstNull, bc.KindRef))
		}
		return a.nullRef
	}
	if a.zeroInt == nil {
		a.zeroInt = a.prependEntry(a.g.NewNode(ir.OpConst, bc.KindInt))
	}
	return a.zeroInt
}

// constFold returns (creating once) a constant node used to replace the
// folded check n.
func (a *analyzer) constFold(n *ir.Node, val int64) *ir.Node {
	if c, ok := a.foldMemo[n]; ok {
		c.AuxInt = val
		return c
	}
	c := a.g.NewNode(ir.OpConst, bc.KindInt)
	c.AuxInt = val
	c.BCI = n.BCI
	a.foldMemo[n] = c
	return c
}

// virtualNode returns the OpVirtualObject node standing for id inside
// frame states, placing it in the entry block on first use.
func (a *analyzer) virtualNode(id objID) *ir.Node {
	if v, ok := a.virtMemo[id]; ok {
		return v
	}
	oi := a.objs[id]
	v := a.g.NewNode(ir.OpVirtualObject, bc.KindRef)
	v.AuxInt = int64(id)
	v.Class = oi.class
	v.ElemKind = oi.elemKind
	v.AuxLen = oi.length
	// Carry the allocation site so deopt-time rematerialization can
	// attribute the materialized object back to the `new` it replaces.
	if site := oi.allocSite; site != nil {
		v.Method = site.Method
		v.BCI = site.BCI
	}
	a.prependEntry(v)
	a.virtMemo[id] = v
	return v
}

// arrayLenConst returns the constant node for a virtual array's length.
func (a *analyzer) arrayLenConst(id objID) *ir.Node {
	if c, ok := a.lenMemo[id]; ok {
		return c
	}
	c := a.g.NewNode(ir.OpConst, bc.KindInt)
	c.AuxInt = a.objs[id].length
	a.lenMemo[id] = c
	return c
}

// placeFold ensures a memoized replacement const is placed (emit mode).
func (a *analyzer) placeFold(b *ir.Block, c, before *ir.Node) {
	if c.Block == nil {
		a.g.InsertBefore(b, c, before)
	}
}

// buildRefIndex computes block-level SSA liveness for reference-kind
// values on the pre-analysis graph: liveIn[b] contains every ref value
// defined before b and possibly used at or after b (node inputs,
// frame-state slots, and phi inputs, the latter counting as uses at the
// end of the corresponding predecessor). The index is computed once and
// shared by all rounds and the emit phase so that their decisions agree.
func (a *analyzer) buildRefIndex() {
	isRef := func(n *ir.Node) bool { return n != nil && n.Kind == bc.KindRef }

	gen := make(map[*ir.Block]map[*ir.Node]bool, len(a.g.Blocks))
	defs := make(map[*ir.Block]map[*ir.Node]bool, len(a.g.Blocks))
	for _, b := range a.g.Blocks {
		gen[b] = make(map[*ir.Node]bool)
		defs[b] = make(map[*ir.Node]bool)
	}
	for _, b := range a.g.Blocks {
		use := func(n *ir.Node) {
			if isRef(n) && !defs[b][n] {
				gen[b][n] = true
			}
		}
		visit := func(n *ir.Node) {
			for _, in := range n.Inputs {
				use(in)
			}
			if n.FrameState != nil {
				n.FrameState.ForEachValue(use)
			}
			if isRef(n) {
				defs[b][n] = true
			}
		}
		for _, phi := range b.Phis {
			if isRef(phi) {
				defs[b][phi] = true
			}
		}
		for _, n := range b.Nodes {
			visit(n)
		}
		if b.Term != nil {
			visit(b.Term)
		}
		// Phi inputs at successors are uses at the end of this block.
		for _, s := range b.Succs {
			for i, p := range s.Preds {
				if p != b {
					continue
				}
				for _, phi := range s.Phis {
					use(phi.Inputs[i])
				}
			}
		}
	}

	a.liveIn = make(map[*ir.Block]map[*ir.Node]bool, len(a.g.Blocks))
	for _, b := range a.g.Blocks {
		set := make(map[*ir.Node]bool, len(gen[b]))
		for n := range gen[b] {
			set[n] = true
		}
		a.liveIn[b] = set
	}
	for changed := true; changed; {
		changed = false
		for i := len(a.cfg.RPO) - 1; i >= 0; i-- {
			b := a.cfg.RPO[i]
			in := a.liveIn[b]
			for _, s := range b.Succs {
				for n := range a.liveIn[s] {
					if !defs[b][n] && !in[n] {
						in[n] = true
						changed = true
					}
				}
			}
		}
	}
}

// hasFutureRef reports whether object id can still be referenced at or
// after block b: one of its aliases is live at b's entry, or a phi at b
// merges one of its aliases. Ids without such a reference are dead and
// leave the state (Figure 6a: "only Ids that ... have at least one common
// alias will survive the merge") — in particular, a mixed virtual/escaped
// merge of a dead object must not materialize it.
func (a *analyzer) hasFutureRef(b *ir.Block, id objID) bool {
	if a.conf.DisableAliasLiveness {
		return true
	}
	key := futKey{b, id}
	if a.emit {
		// The emit phase mutates phi inputs (materialized values are
		// substituted), so the liveness question must be answered
		// exactly as the converged analysis answered it.
		return a.futureRef[key]
	}
	r := a.computeFutureRef(b, id)
	a.futureRef[key] = r
	return r
}

func (a *analyzer) computeFutureRef(b *ir.Block, id objID) bool {
	live := a.liveIn[b]
	for n, nid := range a.aliases {
		if nid != id {
			continue
		}
		if live[n] {
			return true
		}
	}
	for _, phi := range b.Phis {
		if phi.Kind != bc.KindRef || a.ourPhis[phi] {
			continue
		}
		for _, in := range phi.Inputs {
			if in == nil {
				continue
			}
			if nid, ok := a.aliases[a.resolveScalar(in)]; ok && nid == id {
				return true
			}
		}
	}
	return false
}
