package pea

import (
	"sort"

	"pea/internal/ir"
)

// rewriteState virtualizes a frame state against the current allocation
// state (paper §5.5, Figure 8): scalar-replaced values are substituted;
// references to virtual objects are replaced with OpVirtualObject nodes and
// a VirtualObjectState describing the current field values (and elided
// lock depth) is attached, transitively for virtual objects reachable from
// other virtual objects' fields; references to escaped objects are
// replaced with their materialized values.
func (a *analyzer) rewriteState(fs *ir.FrameState, st *peaState) *ir.FrameState {
	c := fs.Copy()
	needed := make(map[objID]bool)

	resolveSlot := func(v *ir.Node) *ir.Node {
		if v == nil {
			return nil
		}
		r := a.resolveScalar(v)
		if id, ok := a.aliasIn(st, r); ok {
			if st.objs[id].virtual {
				a.markNeeded(st, id, needed)
				return a.virtualNode(id)
			}
			return st.objs[id].materialized
		}
		return r
	}

	for s := c; s != nil; s = s.Outer {
		for i, v := range s.Locals {
			s.Locals[i] = resolveSlot(v)
		}
		for i, v := range s.Stack {
			s.Stack[i] = resolveSlot(v)
		}
	}

	// Attach descriptors for every (transitively) referenced virtual
	// object to the innermost frame, in id order for determinism.
	ids := make([]objID, 0, len(needed))
	for id := range needed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		os := st.objs[id]
		vo := &ir.VirtualObjectState{Object: a.virtualNode(id), LockDepth: os.lockDepth}
		for _, f := range os.fields {
			r := a.resolveScalar(f)
			if fid, ok := a.aliasIn(st, r); ok {
				if st.objs[fid].virtual {
					r = a.virtualNode(fid)
				} else {
					r = st.objs[fid].materialized
				}
			}
			vo.Values = append(vo.Values, r)
		}
		c.VirtualObjects = append(c.VirtualObjects, vo)
	}
	return c
}

// markNeeded adds id and every virtual object reachable from its fields.
func (a *analyzer) markNeeded(st *peaState, id objID, needed map[objID]bool) {
	if needed[id] {
		return
	}
	needed[id] = true
	for _, f := range st.objs[id].fields {
		r := a.resolveScalar(f)
		if fid, ok := a.aliasIn(st, r); ok && st.objs[fid].virtual {
			a.markNeeded(st, fid, needed)
		}
	}
}
