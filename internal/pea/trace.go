package pea

import "fmt"

// tracef logs one analysis event when Config.Trace is set. The trace shows
// the decisions the paper's algorithm makes — virtualizations, state
// merges, materializations and their positions, fixpoint rounds — in the
// order they are (re)computed, which makes non-obvious outcomes (why did
// this object materialize here?) inspectable.
func (a *analyzer) tracef(format string, args ...any) {
	if a.conf.Trace == nil {
		return
	}
	phase := "analyze"
	if a.emit {
		phase = "emit"
	}
	fmt.Fprintf(a.conf.Trace, "pea[%s] %s\n", phase, fmt.Sprintf(format, args...))
}

// traceState renders an object id's state for the trace.
func (a *analyzer) traceState(st *peaState, id objID) string {
	os := st.objs[id]
	if os == nil {
		return fmt.Sprintf("o%d=dead", id)
	}
	if os.virtual {
		return fmt.Sprintf("o%d=virt(locks=%d fields=%s)", id, os.lockDepth, fmtNodes(os.fields))
	}
	return fmt.Sprintf("o%d=esc(%s)", id, nodeName(os.materialized))
}
