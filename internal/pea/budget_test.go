package pea

import (
	"errors"
	"testing"

	"pea/internal/bc"
	"pea/internal/budget"
	"pea/internal/build"
	"pea/internal/ir"
	"pea/internal/testprog"
)

// buildGraph builds and pre-optimizes m exactly like compileOne, but
// stops before PEA so budget tests control the PEA entry state.
func buildGraph(t *testing.T, prog *bc.Program, m *bc.Method) *ir.Graph {
	t.Helper()
	g, err := build.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestBudgetBailsBeforeMutation: a budget violation observed at a PEA
// fixpoint boundary unwinds as a bailout with the graph untouched — the
// cooperative cancellation contract the broker's transient-failure path
// depends on.
func TestBudgetBailsBeforeMutation(t *testing.T) {
	p := testprog.Generate(3)
	g := buildGraph(t, p.Prog, p.Entry)
	before := ir.Dump(g)

	res, err := Run(g, Config{Budget: &budget.Budget{MaxNodes: 1}})
	if !budget.IsBudget(err) {
		t.Fatalf("Run error = %v, want a budget error", err)
	}
	var be *budget.Err
	if !errors.As(err, &be) || be.Kind != "nodes" {
		t.Fatalf("structured error = %+v", be)
	}
	if !res.BailedOut {
		t.Fatal("budget overrun must report as a bailout")
	}
	if got := ir.Dump(g); got != before {
		t.Fatalf("budget bailout mutated the graph:\n--- before ---\n%s\n--- after ---\n%s", before, got)
	}
}

// TestNilBudgetRunsToCompletion: the default nil budget leaves PEA
// untouched and reads no clock.
func TestNilBudgetRunsToCompletion(t *testing.T) {
	p := testprog.Generate(3)
	g := buildGraph(t, p.Prog, p.Entry)
	reads := budget.ClockReads()
	res, err := Run(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BailedOut {
		t.Fatal("unexpected bailout")
	}
	if d := budget.ClockReads() - reads; d != 0 {
		t.Fatalf("nil budget read the clock %d times", d)
	}
}
