package pea

import (
	"fmt"

	"pea/internal/check"
	"pea/internal/ir"
)

// checkState validates one block-boundary analysis state under strict
// checking (Config.Check, floored by PEA_CHECK). Invariants:
//   - every live object id is in range and has an info record;
//   - virtual states hold exactly numFields non-nil field values and a
//     non-negative lock depth;
//   - escaped states carry the materialized value node;
//   - field values that are themselves aliases resolve to an analyzed
//     object.
//
// It runs after every transferBlock in both the fixpoint and the emit
// phase, so a transfer function that corrupts the state is caught at the
// block where it happened, not at a deopt days later.
func (a *analyzer) checkState(b *ir.Block, st *peaState) error {
	for _, id := range st.ids() {
		os := st.objs[id]
		if int(id) >= len(a.objs) || a.objs[id] == nil {
			return fmt.Errorf("pea: state at %s: object id %d has no info record", b, id)
		}
		oi := a.objs[id]
		if os.virtual {
			if os.lockDepth < 0 {
				return fmt.Errorf("pea: state at %s: o%d has negative lock depth %d", b, id, os.lockDepth)
			}
			if len(os.fields) != oi.numFields() {
				return fmt.Errorf("pea: state at %s: o%d has %d fields, layout has %d",
					b, id, len(os.fields), oi.numFields())
			}
			for i, f := range os.fields {
				if f == nil {
					return fmt.Errorf("pea: state at %s: o%d field %d is nil", b, id, i)
				}
				if fid, ok := a.aliases[f]; ok {
					if int(fid) >= len(a.objs) || a.objs[fid] == nil {
						return fmt.Errorf("pea: state at %s: o%d field %d aliases unknown object %d",
							b, id, i, fid)
					}
				}
			}
		} else if os.materialized == nil {
			return fmt.Errorf("pea: state at %s: escaped o%d has no materialized value", b, id)
		}
	}
	return nil
}

// checkRewrites validates the analyzer's global maps once per phase: the
// alias map resolves, and the replacement log is acyclic (resolveScalar
// walks it, so a cycle would hang the emit phase).
func (a *analyzer) checkRewrites() error {
	for n, id := range a.aliases {
		if int(id) >= len(a.objs) || a.objs[id] == nil {
			return fmt.Errorf("pea: alias v%d resolves to unknown object %d", n.ID, id)
		}
	}
	for start := range a.replaced {
		n := start
		for hops := 0; ; hops++ {
			r, ok := a.replaced[n]
			if !ok {
				break
			}
			if r == start || hops > len(a.replaced) {
				return fmt.Errorf("pea: replacement log cycles at v%d", start.ID)
			}
			n = r
		}
	}
	// Every virtual object kept across a call must still hold its
	// summary license: keeping one without it would hand the callee a
	// null it could observe.
	for _, k := range a.kept {
		if a.conf.CalleeNoEscape == nil {
			return fmt.Errorf("pea: kept o%d virtual across v%d without a summary provider", k.id, k.call.ID)
		}
		safe := a.conf.CalleeNoEscape(k.call)
		if k.arg >= len(safe) || !safe[k.arg] {
			return fmt.Errorf("pea: kept o%d virtual in arg %d of v%d but the callee summary does not license it",
				k.id, k.arg, k.call.ID)
		}
	}
	return nil
}

// checkLevel returns the effective sanitizer level for this run.
func (c Config) checkLevel() check.Level { return check.Effective(c.Check) }
