package pea

import (
	"testing"

	"pea/internal/ir"
)

// makeState builds a state of nObjs virtual objects with nFields fields.
func makeState(nObjs, nFields int) *peaState {
	st := newPeaState()
	next := 0
	for id := 0; id < nObjs; id++ {
		os := &objState{virtual: true, fields: make([]*ir.Node, nFields)}
		for f := range os.fields {
			next++
			os.fields[f] = &ir.Node{ID: next}
		}
		st.set(objID(id), os)
	}
	return st
}

// TestCloneIsCopyOnWrite: clones share storage until one side mutates, and
// mutations never leak across the sharing boundary.
func TestCloneIsCopyOnWrite(t *testing.T) {
	orig := makeState(4, 3)
	snap := orig.clone()
	if !orig.equal(snap) {
		t.Fatal("clone not equal to original")
	}

	// Mutating the original must not change the clone.
	v := &ir.Node{ID: 1000}
	orig.mutable(2).fields[1] = v
	if snap.objs[2].fields[1] == v {
		t.Fatal("mutation of the original leaked into the clone")
	}
	if orig.objs[2].fields[1] != v {
		t.Fatal("mutation lost")
	}
	if orig.equal(snap) {
		t.Fatal("states equal after divergence")
	}

	// Mutating a clone must not change the original or sibling clones.
	a, b := snap.clone(), snap.clone()
	a.mutable(0).lockDepth = 7
	if snap.objs[0].lockDepth == 7 || b.objs[0].lockDepth == 7 {
		t.Fatal("clone mutation leaked to siblings")
	}
	b.set(1, &objState{materialized: v})
	if snap.objs[1].materialized == v || a.objs[1].materialized == v {
		t.Fatal("set on clone leaked to siblings")
	}

	// Repeated mutation after the first copy stays on the private map.
	before := len(a.objs)
	a.mutable(3).lockDepth = 1
	a.mutable(3).lockDepth = 2
	if len(a.objs) != before || a.objs[3].lockDepth != 2 {
		t.Fatal("in-place mutation on owned state broken")
	}
}

// TestCloneIsAllocationFree guards the copy-on-write fast path: cloning a
// state — however large — must not copy the object map.
func TestCloneIsAllocationFree(t *testing.T) {
	st := makeState(64, 8)
	allocs := testing.AllocsPerRun(100, func() {
		_ = st.clone()
	})
	// One allocation: the peaState header itself.
	if allocs > 1 {
		t.Fatalf("clone allocates %v objects per run, want <= 1", allocs)
	}
}

// BenchmarkPeaStateClone measures the block-entry cloning cost the analysis
// pays for every block and merge edge, with and without a subsequent
// mutation (which triggers the deferred deep copy).
func BenchmarkPeaStateClone(b *testing.B) {
	for _, cfg := range []struct {
		name         string
		objs, fields int
		mutateAfter  bool
	}{
		{"8objs/share", 8, 4, false},
		{"8objs/mutate", 8, 4, true},
		{"64objs/share", 64, 8, false},
		{"64objs/mutate", 64, 8, true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			st := makeState(cfg.objs, cfg.fields)
			v := &ir.Node{ID: 9999}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := st.clone()
				if cfg.mutateAfter {
					c.mutable(0).fields[0] = v
				}
			}
		})
	}
}
