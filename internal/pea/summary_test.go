package pea

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/check"
	"pea/internal/exec"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/rt"
	"pea/internal/summary"
)

// summaryProg assembles the call-shaped corpus for the CalleeNoEscape
// transfer:
//
//	pad(b, x)    { return x + x }                  // never observes b
//	sink(b)      { S = b }                         // global escape
//	mix(a, b)    { S = a }                         // a escapes, b unobserved
//	keep(x)      { b = new Box; b.v = x; return pad(b, x) + b.v }
//	keepThenSink(x) { b = new Box; b.v = x; t = pad(b, x); sink(b); return t + b.v }
//	bothSlots(x) { b = new Box; b.v = x; mix(b, b); return b.v }
func summaryProg(t *testing.T) *bc.Program {
	t.Helper()
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	vField := box.Field("v", bc.KindInt)
	sinkF := box.Static("S", bc.KindRef)
	c := a.Class("C", "")

	pad := c.Method("pad", []bc.Kind{bc.KindRef, bc.KindInt}, bc.KindInt, true)
	pad.Load(1).Load(1).Add().ReturnValue()

	snk := c.Method("sink", []bc.Kind{bc.KindRef}, bc.KindVoid, true)
	snk.Load(0).PutStatic(sinkF).Return()

	mix := c.Method("mix", []bc.Kind{bc.KindRef, bc.KindRef}, bc.KindVoid, true)
	mix.Load(0).PutStatic(sinkF).Return()

	keep := c.Method("keep", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	bLoc := keep.NewLocal(bc.KindRef)
	keep.New(box.Ref()).Store(bLoc).
		Load(bLoc).Load(0).PutField(vField).
		Load(bLoc).Load(0).InvokeStatic(pad.Ref()).
		Load(bLoc).GetField(vField).Add().ReturnValue()

	kts := c.Method("keepThenSink", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	bLoc2 := kts.NewLocal(bc.KindRef)
	tLoc := kts.NewLocal(bc.KindInt)
	kts.New(box.Ref()).Store(bLoc2).
		Load(bLoc2).Load(0).PutField(vField).
		Load(bLoc2).Load(0).InvokeStatic(pad.Ref()).Store(tLoc).
		Load(bLoc2).InvokeStatic(snk.Ref()).
		Load(tLoc).Load(bLoc2).GetField(vField).Add().ReturnValue()

	both := c.Method("bothSlots", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	bLoc3 := both.NewLocal(bc.KindRef)
	both.New(box.Ref()).Store(bLoc3).
		Load(bLoc3).Load(0).PutField(vField).
		Load(bLoc3).Load(bLoc3).InvokeStatic(mix.Ref()).
		Load(bLoc3).GetField(vField).ReturnValue()

	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// peaWithSummaries builds entry's graph (no inlining — the calls must
// survive to exercise the invoke transfer) and runs PEA with the given
// summary provider under strict self-checking.
func peaWithSummaries(t *testing.T, p *bc.Program, entry string, safeFn func(*ir.Node) []bool) (*ir.Graph, Result) {
	t.Helper()
	m := p.ClassByName("C").MethodByName(entry)
	g, err := build.Build(m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{CalleeNoEscape: safeFn, Check: check.Strict})
	if err != nil {
		t.Fatalf("pea %s: %v\n%s", entry, err, ir.Dump(g))
	}
	if err := ir.Verify(g); err != nil {
		t.Fatalf("pea %s produced invalid graph: %v\n%s", entry, err, ir.Dump(g))
	}
	if err := check.Graph(g, check.Strict); err != nil {
		t.Fatalf("pea %s failed strict check: %v\n%s", entry, err, ir.Dump(g))
	}
	return g, res
}

// runSummaryGraph executes g with callees compiled plain (build only), so
// the callee really runs — a null substituted into an observed slot would
// crash or change the result.
func runSummaryGraph(t *testing.T, p *bc.Program, g *ir.Graph, arg int64) (rt.Value, *rt.Env) {
	t.Helper()
	env := rt.NewEnv(p, 42)
	eng := &exec.Engine{Env: env, MaxSteps: 1_000_000}
	plain := make(map[*bc.Method]*ir.Graph)
	eng.Invoke = func(callee *bc.Method, vals []rt.Value) (rt.Value, error) {
		cg := plain[callee]
		if cg == nil {
			var err error
			cg, err = build.Build(callee)
			if err != nil {
				t.Fatalf("build %s: %v", callee.QualifiedName(), err)
			}
			plain[callee] = cg
		}
		return eng.Run(cg, vals)
	}
	v, err := eng.Run(g, []rt.Value{rt.IntValue(arg)})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, ir.Dump(g))
	}
	return v, env
}

func interpResult(t *testing.T, p *bc.Program, entry string, arg int64) rt.Value {
	t.Helper()
	env := rt.NewEnv(p, 42)
	it := interp.New(env)
	it.MaxSteps = 1_000_000
	m := p.ClassByName("C").MethodByName(entry)
	v, err := it.Call(m, []rt.Value{rt.IntValue(arg)})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSummaryKeepsVirtualAcrossCall(t *testing.T) {
	p := summaryProg(t)
	sums := summary.Compute(p, summary.Options{})

	// Without summaries the call materializes the Box.
	_, base := peaWithSummaries(t, p, "keep", nil)
	if base.SummaryKeptVirtual != 0 || base.MaterializeSites == 0 {
		t.Fatalf("baseline: kept=%d mats=%d, want 0 kept and >0 materializations",
			base.SummaryKeptVirtual, base.MaterializeSites)
	}

	// With summaries the Box stays virtual: no materialization, the
	// field load is scalar-replaced, the call gets null.
	g, res := peaWithSummaries(t, p, "keep", sums.ArgSafe)
	if res.SummaryKeptVirtual != 1 {
		t.Errorf("SummaryKeptVirtual = %d, want 1", res.SummaryKeptVirtual)
	}
	if res.MaterializeSites != 0 {
		t.Errorf("MaterializeSites = %d, want 0\n%s", res.MaterializeSites, ir.Dump(g))
	}
	if res.VirtualizedAllocs != 1 {
		t.Errorf("VirtualizedAllocs = %d, want 1", res.VirtualizedAllocs)
	}

	// Semantics: same result as the interpreter, zero allocations.
	want := interpResult(t, p, "keep", 21)
	got, env := runSummaryGraph(t, p, g, 21)
	if !want.Equal(got) {
		t.Errorf("keep(21): interp=%v pea=%v", want, got)
	}
	if env.Stats.Allocations != 0 {
		t.Errorf("allocations = %d, want 0 (Box kept virtual)", env.Stats.Allocations)
	}
}

func TestSummaryKeepThenEscapeMaterializesLate(t *testing.T) {
	p := summaryProg(t)
	sums := summary.Compute(p, summary.Options{})
	g, res := peaWithSummaries(t, p, "keepThenSink", sums.ArgSafe)
	// pad's slot is safe (kept virtual), sink's is not (materializes).
	if res.SummaryKeptVirtual != 1 {
		t.Errorf("SummaryKeptVirtual = %d, want 1", res.SummaryKeptVirtual)
	}
	if res.MaterializeSites != 1 {
		t.Errorf("MaterializeSites = %d, want 1 (at sink)\n%s", res.MaterializeSites, ir.Dump(g))
	}
	want := interpResult(t, p, "keepThenSink", 7)
	got, env := runSummaryGraph(t, p, g, 7)
	if !want.Equal(got) {
		t.Errorf("keepThenSink(7): interp=%v pea=%v", want, got)
	}
	if env.Stats.Allocations != 1 {
		t.Errorf("allocations = %d, want 1 (materialized at sink)", env.Stats.Allocations)
	}
}

func TestSummarySameObjectInSafeAndUnsafeSlots(t *testing.T) {
	p := summaryProg(t)
	sums := summary.Compute(p, summary.Options{})
	g, res := peaWithSummaries(t, p, "bothSlots", sums.ArgSafe)
	// mix observes slot 0, so the object materializes in pass 1; pass 2
	// must then pass the real reference, not null, in the safe slot.
	if res.SummaryKeptVirtual != 0 {
		t.Errorf("SummaryKeptVirtual = %d, want 0 (object escaped via unsafe slot)", res.SummaryKeptVirtual)
	}
	want := interpResult(t, p, "bothSlots", 5)
	got, env := runSummaryGraph(t, p, g, 5)
	if !want.Equal(got) {
		t.Errorf("bothSlots(5): interp=%v pea=%v", want, got)
	}
	if env.Stats.Allocations != 1 {
		t.Errorf("allocations = %d, want 1", env.Stats.Allocations)
	}
}
