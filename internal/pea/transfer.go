package pea

import (
	"pea/internal/bc"
	"pea/internal/ir"
)

// transferBlock applies the node transfer functions (paper §5.2, Figures
// 4 and 5) to every node of b, starting from entry state st, and returns
// the exit state. In emit mode it additionally performs the rewrites:
// removing virtualized nodes, substituting scalar values, inserting
// materializations, and virtualizing frame states.
func (a *analyzer) transferBlock(b *ir.Block, st *peaState) *peaState {
	for _, n := range append([]*ir.Node(nil), b.Nodes...) {
		a.transferNode(b, n, st)
	}
	if t := b.Term; t != nil {
		a.transferNode(b, t, st)
	}
	return st
}

// virtualizableAlloc reports whether n is an allocation PEA can virtualize.
func (a *analyzer) virtualizableAlloc(n *ir.Node) bool {
	if a.conf.AllowAlloc != nil && !a.conf.AllowAlloc(n) {
		return false
	}
	// oplint:ignore — only allocation ops can be virtualized; everything
	// else answers false below.
	switch n.Op {
	case ir.OpNew:
		return true
	case ir.OpNewArray:
		if a.conf.DisableArrays {
			return false
		}
		ln := n.Inputs[0]
		return ln.IsConst() && ln.AuxInt >= 0 && ln.AuxInt <= a.conf.maxArrayLen()
	}
	return false
}

func (a *analyzer) transferNode(b *ir.Block, n *ir.Node, st *peaState) {
	// oplint:ignore — ops without a dedicated transfer rule fall through
	// to defaultTransfer, the conservative escape treatment (§3.2); a new
	// op is safe-by-default rather than silently wrong.
	switch n.Op {
	case ir.OpMaterialize, ir.OpVirtualObject, ir.OpPhi:
		// Nodes introduced by this analysis (or phis, handled at
		// merges) are transparent to the transfer.
		return

	case ir.OpOnException, ir.OpExceptionObject, ir.OpUnwind:
		// OnException's input names the node it guards, not a value use —
		// the default transfer would wrongly materialize the guarded
		// node's object. The exception object and Unwind reference no
		// virtual state either: virtual objects stay virtual across the
		// exceptional edge, which is the whole point — the handler path
		// materializes only what it actually observes escaping.
		return

	case ir.OpNew, ir.OpNewArray:
		if !a.virtualizableAlloc(n) {
			a.defaultTransfer(b, n, st)
			return
		}
		// Figure 4a: a new virtual object with default field values.
		id := a.idForAlloc(n)
		oi := a.objs[id]
		os := &objState{virtual: true, fields: make([]*ir.Node, oi.numFields())}
		for i := range os.fields {
			os.fields[i] = a.defaultValue(oi.fieldKind(i))
		}
		st.set(id, os)
		if a.emit {
			a.eventVirtualize(id, n.ID)
			a.g.RemoveNode(n)
			a.res.VirtualizedAllocs++
		}

	case ir.OpLoadField:
		obj := a.resolveScalar(n.Inputs[0])
		if id, ok := a.aliasIn(st, obj); ok && st.objs[id].virtual {
			// Figure 4b/4f: the load is replaced by the known
			// field value; if that value is itself a virtual
			// object, the load becomes one of its aliases.
			val := st.objs[id].fields[n.Field.Offset]
			a.replaced[n] = val
			if vid, vok := a.aliasIn(st, val); vok {
				a.aliases[n] = vid
			}
			if a.emit {
				a.g.RemoveNode(n)
				a.res.ScalarizedLoads++
			}
			return
		}
		// A previous round may have scalar-replaced this load under a
		// speculation that did not hold; retract the stale verdict.
		delete(a.replaced, n)
		delete(a.aliases, n)
		a.defaultTransfer(b, n, st)

	case ir.OpStoreField:
		obj := a.resolveScalar(n.Inputs[0])
		if id, ok := a.aliasIn(st, obj); ok && st.objs[id].virtual {
			val := a.resolveScalar(n.Inputs[1])
			if vid, vok := a.aliasIn(st, val); vok && st.objs[vid].virtual && a.reaches(st, vid, id) {
				// Storing val would create a cycle among virtual
				// objects (x.f = x, or mutual references), which
				// a single Materialize node cannot express;
				// materialize the target and fall through to a
				// real store (Figure 5).
				a.materializeAt(st, id, b, n, reasonStoreCycle)
			} else {
				// Figure 4b/4e: remember the store in the state.
				st.mutable(id).fields[n.Field.Offset] = val
				if a.emit {
					a.g.RemoveNode(n)
				}
				return
			}
		}
		a.defaultTransfer(b, n, st)

	case ir.OpLoadIndexed:
		arr := a.resolveScalar(n.Inputs[0])
		idx := a.resolveScalar(n.Inputs[1])
		if id, ok := a.aliasIn(st, arr); ok && st.objs[id].virtual {
			if idx.IsConst() && idx.AuxInt >= 0 && idx.AuxInt < a.objs[id].length {
				val := st.objs[id].fields[idx.AuxInt]
				a.replaced[n] = val
				if vid, vok := a.aliasIn(st, val); vok {
					a.aliases[n] = vid
				}
				if a.emit {
					a.g.RemoveNode(n)
					a.res.ScalarizedLoads++
				}
				return
			}
			// Unknown index: the array must exist.
			a.materializeAt(st, id, b, n, reasonNonConstIndex)
		}
		delete(a.replaced, n)
		delete(a.aliases, n)
		a.defaultTransfer(b, n, st)

	case ir.OpStoreIndexed:
		arr := a.resolveScalar(n.Inputs[0])
		idx := a.resolveScalar(n.Inputs[1])
		if id, ok := a.aliasIn(st, arr); ok && st.objs[id].virtual {
			if idx.IsConst() && idx.AuxInt >= 0 && idx.AuxInt < a.objs[id].length {
				val := a.resolveScalar(n.Inputs[2])
				if vid, vok := a.aliasIn(st, val); vok && st.objs[vid].virtual && a.reaches(st, vid, id) {
					a.materializeAt(st, id, b, n, reasonStoreCycle)
				} else {
					st.mutable(id).fields[idx.AuxInt] = val
					if a.emit {
						a.g.RemoveNode(n)
					}
					return
				}
			} else {
				a.materializeAt(st, id, b, n, reasonNonConstIndex)
			}
		}
		a.defaultTransfer(b, n, st)

	case ir.OpArrayLength:
		arr := a.resolveScalar(n.Inputs[0])
		if id, ok := a.aliasIn(st, arr); ok && st.objs[id].virtual {
			c := a.arrayLenConst(id)
			a.replaced[n] = c
			if a.emit {
				// The length constant is shared by every fold site of
				// this virtual array, which may sit in sibling branches;
				// place it in the entry block so it dominates all of
				// them (placing it at the first fold site would break
				// SSA dominance for later sites).
				if c.Block == nil {
					a.prependEntry(c)
				}
				a.g.RemoveNode(n)
			}
			return
		}
		delete(a.replaced, n)
		a.defaultTransfer(b, n, st)

	case ir.OpMonitorEnter:
		obj := a.resolveScalar(n.Inputs[0])
		if id, ok := a.aliasIn(st, obj); ok && st.objs[id].virtual {
			// Figure 4c: lock elision on a virtual object.
			st.mutable(id).lockDepth++
			if a.emit {
				a.eventLockElide(id, n.ID, "monitorenter")
				a.g.RemoveNode(n)
				a.res.ElidedMonitors++
			}
			return
		}
		a.defaultTransfer(b, n, st)

	case ir.OpMonitorExit:
		obj := a.resolveScalar(n.Inputs[0])
		if id, ok := a.aliasIn(st, obj); ok && st.objs[id].virtual && st.objs[id].lockDepth > 0 {
			// Figure 4d.
			st.mutable(id).lockDepth--
			if a.emit {
				a.eventLockElide(id, n.ID, "monitorexit")
				a.g.RemoveNode(n)
				a.res.ElidedMonitors++
			}
			return
		}
		a.defaultTransfer(b, n, st)

	case ir.OpRefEq:
		x := a.resolveScalar(n.Inputs[0])
		y := a.resolveScalar(n.Inputs[1])
		xid, xok := a.aliasIn(st, x)
		yid, yok := a.aliasIn(st, y)
		xvirt := xok && st.objs[xid].virtual
		yvirt := yok && st.objs[yid].virtual
		if xvirt || yvirt {
			// §5.2: always false when exactly one input is
			// virtual; identity of ids decides otherwise.
			eq := xvirt && yvirt && xid == yid
			// Same id is equality; different virtual ids or a
			// virtual vs anything else is inequality.
			val := b2i(eq != (n.Cond == bc.CondNE))
			c := a.constFold(n, val)
			a.replaced[n] = c
			if a.emit {
				a.placeFold(b, c, n)
				a.g.RemoveNode(n)
				a.res.FoldedChecks++
			}
			return
		}
		delete(a.replaced, n)
		a.defaultTransfer(b, n, st)

	case ir.OpInstanceOf:
		x := a.resolveScalar(n.Inputs[0])
		if id, ok := a.aliasIn(st, x); ok && st.objs[id].virtual {
			oi := a.objs[id]
			is := oi.class != nil && oi.class.IsSubclassOf(n.Class)
			c := a.constFold(n, b2i(is))
			a.replaced[n] = c
			if a.emit {
				a.placeFold(b, c, n)
				a.g.RemoveNode(n)
				a.res.FoldedChecks++
			}
			return
		}
		delete(a.replaced, n)
		a.defaultTransfer(b, n, st)

	case ir.OpInvoke:
		safe := a.calleeSafe(n)
		if safe == nil {
			a.defaultTransfer(b, n, st)
			return
		}
		// Pass 1: unsafe argument positions get the conservative
		// treatment — any virtual object referenced there is
		// materialized (paper §5.2). An object passed in both a safe
		// and an unsafe slot of the same call materializes here, and
		// pass 2 then sees it escaped and substitutes the real
		// reference.
		for i, in := range n.Inputs {
			if safe[i] {
				continue
			}
			r := a.resolveScalar(in)
			if id, ok := a.aliasIn(st, r); ok {
				if st.objs[id].virtual {
					a.materializeAt(st, id, b, n, n.Op.String())
				}
				r = st.objs[id].materialized
			}
			if a.emit && r != in {
				n.Inputs[i] = r
			}
		}
		// Pass 2: safe positions. A still-virtual object stays virtual
		// across the call — the summary proves no callee path observes
		// the slot, so null is passed in its place and the callee
		// executes identically. The call's FrameState keeps the
		// virtual object, so a deopt inside or after the call
		// rematerializes it like any other virtual value.
		for i, in := range n.Inputs {
			if !safe[i] {
				continue
			}
			r := a.resolveScalar(in)
			if id, ok := a.aliasIn(st, r); ok {
				if st.objs[id].virtual {
					if a.emit {
						a.eventSummaryKept(id, n, b)
						a.res.SummaryKeptVirtual++
						a.kept = append(a.kept, keptRec{call: n, arg: i, id: id})
						n.Inputs[i] = a.defaultValue(bc.KindRef)
					}
					continue
				}
				r = st.objs[id].materialized
			}
			if a.emit && r != in {
				n.Inputs[i] = r
			}
		}
		if a.emit && n.FrameState != nil {
			n.FrameState = a.rewriteState(n.FrameState, st)
		}

	default:
		a.defaultTransfer(b, n, st)
	}
}

// keptRec is one emit-phase record of a virtual object kept virtual in a
// call argument slot under a callee summary, for the strict-mode license
// re-check in checkRewrites.
type keptRec struct {
	call *ir.Node
	arg  int
	id   objID
}

// calleeSafe returns the per-argument no-escape licenses for a call from
// Config.CalleeNoEscape, or nil when no summary information applies (no
// provider, unknown callee, arity mismatch, or nothing safe — the
// conservative default transfer is equivalent then).
func (a *analyzer) calleeSafe(n *ir.Node) []bool {
	if a.conf.CalleeNoEscape == nil {
		return nil
	}
	safe := a.conf.CalleeNoEscape(n)
	if len(safe) != len(n.Inputs) {
		return nil
	}
	for _, s := range safe {
		if s {
			return safe
		}
	}
	return nil
}

// defaultTransfer handles every operation with no special rule: "any
// virtual object that is referenced from such an operation will be
// materialized, and the input ... is replaced with the materialized value"
// (paper §5.2). In emit mode it also substitutes scalar replacements into
// the inputs and virtualizes the node's frame state.
func (a *analyzer) defaultTransfer(b *ir.Block, n *ir.Node, st *peaState) {
	for i, in := range n.Inputs {
		r := a.resolveScalar(in)
		if id, ok := a.aliasIn(st, r); ok {
			if st.objs[id].virtual {
				// The reason is the consuming operation: the paper's
				// "any virtual object referenced from such an
				// operation will be materialized". Op.String returns
				// a static name, so this stays allocation-free.
				a.materializeAt(st, id, b, n, n.Op.String())
			}
			r = st.objs[id].materialized
		}
		if a.emit && r != in {
			n.Inputs[i] = r
		}
	}
	if a.emit && n.FrameState != nil {
		n.FrameState = a.rewriteState(n.FrameState, st)
	}
}

// reaches reports whether virtual object `from` (transitively) references
// virtual object `to` through virtual field values.
func (a *analyzer) reaches(st *peaState, from, to objID) bool {
	if from == to {
		return true
	}
	seen := make(map[objID]bool)
	var walk func(id objID) bool
	walk = func(id objID) bool {
		if id == to {
			return true
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		os := st.objs[id]
		if os == nil || !os.virtual {
			return false
		}
		for _, f := range os.fields {
			if fid, ok := a.aliasIn(st, f); ok && walk(fid) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// materializeAt turns a virtual object into an escaped one at the given
// position, inserting an OpMaterialize node (paper: "the object needs to
// be created and initialized with the current state of its fields at this
// point"). before == nil appends at the end of the block (edge
// materialization in a split predecessor). Referenced virtual objects are
// materialized first; the virtual reference graph is kept acyclic by the
// store transfer, so recursion terminates. reason names the cause for the
// observability event (see the reason* constants and defaultTransfer).
func (a *analyzer) materializeAt(st *peaState, id objID, b *ir.Block, before *ir.Node, reason string) *ir.Node {
	if os := st.objs[id]; !os.virtual {
		return os.materialized
	}
	os := st.mutable(id)
	key := matKey{site: siteKey(b, before), id: id}
	mat, ok := a.matMemo[key]
	if !ok {
		oi := a.objs[id]
		mat = a.g.NewNode(ir.OpMaterialize, bc.KindRef)
		mat.Class = oi.class
		mat.ElemKind = oi.elemKind
		mat.AuxInt = oi.length
		if before != nil {
			mat.BCI = before.BCI
		}
		a.matMemo[key] = mat
	}
	// Mark escaped before resolving fields; the reference graph is
	// acyclic so no field can (transitively) need this object again,
	// but self-checks stay cheap this way.
	os.virtual = false
	os.materialized = mat

	inputs := make([]*ir.Node, len(os.fields))
	for i, f := range os.fields {
		r := a.resolveScalar(f)
		if fid, ok := a.aliasIn(st, r); ok {
			if st.objs[fid].virtual {
				r = a.materializeAt(st, fid, b, before, reason)
			} else {
				r = st.objs[fid].materialized
			}
		}
		inputs[i] = r
	}
	mat.Inputs = inputs
	mat.AuxLock = os.lockDepth
	if a.emit && mat.Block == nil {
		beforeID := -1
		if before != nil {
			beforeID = before.ID
		}
		a.eventMaterialize(id, b, beforeID, reason)
		a.g.InsertBefore(b, mat, before)
		a.res.MaterializeSites++
	}
	return mat
}

// siteKey keys materialization memoization by position.
func siteKey(b *ir.Block, before *ir.Node) any {
	if before != nil {
		return before
	}
	return b
}
