package pea

import (
	"testing"
	"testing/quick"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/exec"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/opt"
	"pea/internal/rt"
	"pea/internal/testprog"
)

// TestQuickPEAInvariants drives the analysis with generated programs and
// checks the paper's core guarantees as properties:
//
//   - the transformed graph verifies;
//   - results equal the interpreter's;
//   - the dynamic number of allocations and monitor operations never
//     increases ("there will always be at most as many dynamic
//     allocations as in the original code", §4).
func TestQuickPEAInvariants(t *testing.T) {
	check := func(seed uint16) bool {
		p := testprog.Generate(int64(seed) + 100_000) // distinct from vm fuzz seeds
		graphs := make(map[*bc.Method]*ir.Graph)
		for _, m := range p.Prog.Methods {
			g, err := build.Build(m)
			if err != nil {
				t.Logf("seed %d: build: %v", seed, err)
				return false
			}
			pipe := &opt.Pipeline{Phases: []opt.Phase{
				&opt.Inliner{BuildGraph: build.Build, Program: p.Prog},
				opt.Canonicalize{}, opt.SimplifyCFG{}, opt.GVN{}, opt.DCE{},
			}}
			if err := pipe.Run(g); err != nil {
				t.Logf("seed %d: opt: %v", seed, err)
				return false
			}
			if _, err := Run(g, Config{}); err != nil {
				t.Logf("seed %d: pea: %v", seed, err)
				return false
			}
			if err := ir.Verify(g); err != nil {
				t.Logf("seed %d %s: verify: %v\n%s", seed, m.QualifiedName(), err, ir.Dump(g))
				return false
			}
			graphs[m] = g
		}
		for _, args := range p.ArgSets {
			vals := []rt.Value{rt.IntValue(args[0]), rt.IntValue(args[1])}

			envI := rt.NewEnv(p.Prog, 99)
			it := interp.New(envI)
			it.MaxSteps = 2_000_000
			vi, errI := it.Call(p.Entry, vals)

			envE := rt.NewEnv(p.Prog, 99)
			eng := &exec.Engine{Env: envE, MaxSteps: 2_000_000}
			eng.Invoke = func(callee *bc.Method, as []rt.Value) (rt.Value, error) {
				return eng.Run(graphs[callee], as)
			}
			ve, errE := eng.Run(graphs[p.Entry], vals)

			if (errI == nil) != (errE == nil) {
				t.Logf("seed %d args %v: trap divergence %v vs %v", seed, args, errI, errE)
				return false
			}
			if errI != nil {
				continue
			}
			if !vi.Equal(ve) {
				t.Logf("seed %d args %v: %v vs %v", seed, args, vi, ve)
				return false
			}
			if envE.Stats.Allocations > envI.Stats.Allocations {
				t.Logf("seed %d args %v: allocations %d > %d",
					seed, args, envE.Stats.Allocations, envI.Stats.Allocations)
				return false
			}
			if envE.Stats.MonitorOps > envI.Stats.MonitorOps {
				t.Logf("seed %d args %v: monitors %d > %d",
					seed, args, envE.Stats.MonitorOps, envI.Stats.MonitorOps)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
