package pea

import (
	"strings"
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/exec"
	"pea/internal/ir"
	"pea/internal/rt"
)

// figureProgram assembles a single static method C.m and returns its
// PEA-transformed graph together with the program. The body builder
// receives the method assembler and the Box class (fields v:int, ref:ref)
// with a static sink.
func figureProgram(t *testing.T, params []bc.Kind, ret bc.Kind,
	body func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field)) (*bc.Program, *ir.Graph, Result) {
	t.Helper()
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	v := box.Field("v", bc.KindInt)
	ref := box.Field("ref", bc.KindRef)
	sink := box.Static("sink", bc.KindRef)
	c := a.Class("C", "")
	m := c.Method("m", params, ret, true)
	body(m, box, v, ref, sink)
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	g, err := build.Build(prog.ClassByName("C").MethodByName("m"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Config{})
	if err != nil {
		t.Fatalf("pea: %v\n%s", err, ir.Dump(g))
	}
	if err := ir.Verify(g); err != nil {
		t.Fatalf("invalid graph: %v\n%s", err, ir.Dump(g))
	}
	return prog, g, res
}

func count(g *ir.Graph, op ir.Op) int {
	n := 0
	g.ForEachNode(func(_ *ir.Block, x *ir.Node) {
		if x.Op == op {
			n++
		}
	})
	return n
}

func execGraph(t *testing.T, prog *bc.Program, g *ir.Graph, args ...int64) (rt.Value, *rt.Env) {
	t.Helper()
	env := rt.NewEnv(prog, 1)
	eng := &exec.Engine{Env: env, MaxSteps: 1_000_000}
	vals := make([]rt.Value, len(args))
	for i, a := range args {
		vals[i] = rt.IntValue(a)
	}
	v, err := eng.Run(g, vals)
	if err != nil {
		t.Fatalf("exec: %v\n%s", err, ir.Dump(g))
	}
	return v, env
}

// TestFig4aNewAllocation: an allocation introduces a virtual object and
// disappears from the IR.
func TestFig4aNewAllocation(t *testing.T) {
	prog, g, res := figureProgram(t, nil, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			m.New(box.Ref()).Pop().Const(7).ReturnValue()
		})
	if res.VirtualizedAllocs != 1 || count(g, ir.OpNew) != 0 {
		t.Fatalf("allocation survived:\n%s", ir.Dump(g))
	}
	got, env := execGraph(t, prog, g)
	if got.I != 7 || env.Stats.Allocations != 0 {
		t.Fatalf("got %v, %d allocations", got, env.Stats.Allocations)
	}
}

// TestFig4bStoreLoad: stores update the virtual state; loads read it; the
// default field value is the type's zero.
func TestFig4bStoreLoad(t *testing.T) {
	prog, g, res := figureProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(l)
			// read default (0), then store x, then read back
			m.Load(l).GetField(v) // 0
			m.Load(l).Load(0).PutField(v)
			m.Load(l).GetField(v).Add().ReturnValue() // 0 + x
		})
	if count(g, ir.OpLoadField) != 0 || count(g, ir.OpStoreField) != 0 {
		t.Fatalf("field traffic survived:\n%s", ir.Dump(g))
	}
	if res.ScalarizedLoads != 2 {
		t.Fatalf("scalarized loads = %d", res.ScalarizedLoads)
	}
	got, env := execGraph(t, prog, g, 42)
	if got.I != 42 || env.Stats.Allocations != 0 {
		t.Fatalf("got %v, %d allocations", got, env.Stats.Allocations)
	}
}

// TestFig4cdMonitors: enter/exit on a virtual object adjust the lock count
// and vanish.
func TestFig4cdMonitors(t *testing.T) {
	prog, g, res := figureProgram(t, nil, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(l)
			m.Load(l).MonitorEnter()
			m.Load(l).MonitorEnter()
			m.Load(l).MonitorExit()
			m.Load(l).MonitorExit()
			m.Const(1).ReturnValue()
		})
	if res.ElidedMonitors != 4 || count(g, ir.OpMonitorEnter)+count(g, ir.OpMonitorExit) != 0 {
		t.Fatalf("monitors survived:\n%s", ir.Dump(g))
	}
	_, env := execGraph(t, prog, g)
	if env.Stats.MonitorOps != 0 {
		t.Fatalf("monitor ops = %d", env.Stats.MonitorOps)
	}
}

// TestFig4efVirtualIntoVirtual: storing a virtual object into another
// virtual object records the id in the field; loading it back recognizes
// the alias. Both allocations disappear.
func TestFig4efVirtualIntoVirtual(t *testing.T) {
	prog, g, _ := figureProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			outer := m.NewLocal(bc.KindRef)
			inner := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(inner)
			m.Load(inner).Load(0).PutField(v)
			m.New(box.Ref()).Store(outer)
			m.Load(outer).Load(inner).PutField(ref) // Figure 4e
			// Figure 4f: load the inner object back and read through it.
			m.Load(outer).GetField(ref).GetField(v).ReturnValue()
		})
	if count(g, ir.OpNew) != 0 {
		t.Fatalf("allocations survived:\n%s", ir.Dump(g))
	}
	got, env := execGraph(t, prog, g, 13)
	if got.I != 13 || env.Stats.Allocations != 0 {
		t.Fatalf("got %v, %d allocations", got, env.Stats.Allocations)
	}
}

// TestFig5StoreIntoEscaped: storing a virtual object into an escaped
// object materializes the stored value; the store itself remains.
func TestFig5StoreIntoEscaped(t *testing.T) {
	prog, g, res := figureProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			esc := m.NewLocal(bc.KindRef)
			tmp := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(esc)
			m.Load(esc).PutStatic(sink) // esc escapes (materialized here)
			m.New(box.Ref()).Store(tmp)
			m.Load(tmp).Load(0).PutField(v)
			m.Load(esc).Load(tmp).PutField(ref) // Figure 5: store virtual into escaped
			m.GetStatic(sink).GetField(ref).GetField(v).ReturnValue()
		})
	if res.MaterializeSites != 2 {
		t.Fatalf("materialize sites = %d:\n%s", res.MaterializeSites, ir.Dump(g))
	}
	if count(g, ir.OpStoreField) == 0 {
		t.Fatalf("the store into the escaped object must remain:\n%s", ir.Dump(g))
	}
	got, env := execGraph(t, prog, g, 5)
	if got.I != 5 {
		t.Fatalf("got %v", got)
	}
	if env.Stats.Allocations != 2 {
		t.Fatalf("allocations = %d, want 2 (both escape)", env.Stats.Allocations)
	}
}

// TestFig6aDeadObjectLeavesState: an object with no surviving alias does
// not outlive the merge — in particular a mixed virtual/escaped merge of a
// dead object must not materialize it on the virtual path.
func TestFig6aDeadObjectLeavesState(t *testing.T) {
	prog, g, _ := figureProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(l)
			m.Load(l).Load(0).PutField(v)
			m.Load(0).If(bc.CondNE, "esc")
			m.Const(1).Goto("join")
			m.Label("esc").Load(l).PutStatic(sink).Const(2)
			// After the join the object is dead: no materialization on
			// the non-escaping path.
			m.Label("join").ReturnValue()
		})
	_ = g
	_, env := execGraph(t, prog, g, 0) // non-escaping path
	if env.Stats.Allocations != 0 {
		t.Fatalf("dead object materialized at merge: %d allocations\n%s",
			env.Stats.Allocations, ir.Dump(g))
	}
	_, env = execGraph(t, prog, g, 1) // escaping path
	if env.Stats.Allocations != 1 {
		t.Fatalf("escaping path allocations = %d", env.Stats.Allocations)
	}
}

// TestFig6bEscapedMergePhi: an object escaped in both predecessors with
// different materialized values merges through a phi of the materialized
// values.
func TestFig6bEscapedMergePhi(t *testing.T) {
	prog, g, res := figureProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(l)
			m.Load(l).Load(0).PutField(v)
			m.Load(0).If(bc.CondNE, "b")
			m.Load(l).PutStatic(sink)
			m.Goto("join")
			m.Label("b").Load(l).PutStatic(sink)
			// The object is alive after the merge (read below), escaped
			// on both paths at distinct materialization sites.
			m.Label("join").Load(l).GetField(v).ReturnValue()
		})
	if res.MaterializeSites != 2 {
		t.Fatalf("materialize sites = %d:\n%s", res.MaterializeSites, ir.Dump(g))
	}
	// A ref phi merging the two materialized values must exist.
	foundPhi := false
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpPhi && n.Kind == bc.KindRef {
			mats := 0
			for _, in := range n.Inputs {
				if in.Op == ir.OpMaterialize {
					mats++
				}
			}
			if mats == len(n.Inputs) {
				foundPhi = true
			}
		}
	})
	if !foundPhi {
		t.Fatalf("no phi of materialized values:\n%s", ir.Dump(g))
	}
	got, env := execGraph(t, prog, g, 1)
	if got.I != 1 || env.Stats.Allocations != 1 {
		t.Fatalf("got %v, allocations %d", got, env.Stats.Allocations)
	}
}

// TestFig6cPhiAlias: a pre-existing phi whose inputs all alias the same
// virtual object becomes an alias itself; the object stays virtual through
// the merge.
func TestFig6cPhiAlias(t *testing.T) {
	prog, g, _ := figureProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			o := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(l)
			m.Load(l).Load(0).PutField(v)
			// Both branches copy the same object into o: the phi for o
			// aliases the virtual object.
			m.Load(0).If(bc.CondNE, "b")
			m.Load(l).Store(o).Goto("join")
			m.Label("b").Load(l).Store(o)
			m.Label("join").Load(o).GetField(v).ReturnValue()
		})
	if count(g, ir.OpNew)+count(g, ir.OpMaterialize) != 0 {
		t.Fatalf("object not virtual through the merge:\n%s", ir.Dump(g))
	}
	got, env := execGraph(t, prog, g, 9)
	if got.I != 9 || env.Stats.Allocations != 0 {
		t.Fatalf("got %v, allocations %d", got, env.Stats.Allocations)
	}
}

// TestFig7LoopFixpoint: the paper's Figure 7 — a loop with two back edges.
// An object allocated before the loop, mutated inside it, and read after
// it stays virtual; the analysis needs more than one round to reach the
// fixpoint.
func TestFig7LoopFixpoint(t *testing.T) {
	prog, g, res := figureProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			i := m.NewLocal(bc.KindInt)
			m.New(box.Ref()).Store(l)
			m.Load(l).Const(0).PutField(v)
			m.Const(0).Store(i)
			m.Label("head").Load(i).Load(0).IfCmp(bc.CondGE, "done")
			m.Load(i).Const(1).Add().Store(i)
			// First back edge: skip odd values.
			m.Load(i).Const(2).Rem().If(bc.CondNE, "head")
			m.Load(l).Load(l).GetField(v).Load(i).Add().PutField(v)
			// Second back edge.
			m.Goto("head")
			m.Label("done").Load(l).GetField(v).ReturnValue()
		})
	if res.Rounds < 2 {
		t.Fatalf("loop fixpoint took %d rounds, expected iteration", res.Rounds)
	}
	if count(g, ir.OpNew)+count(g, ir.OpMaterialize) != 0 {
		t.Fatalf("loop-carried object not virtualized:\n%s", ir.Dump(g))
	}
	got, env := execGraph(t, prog, g, 10)
	if got.I != 2+4+6+8+10 || env.Stats.Allocations != 0 {
		t.Fatalf("got %v, allocations %d", got, env.Stats.Allocations)
	}
}

// TestFig8FrameStateVirtualization: frame states of surviving effects
// reference the virtual object through an OpVirtualObject node plus a
// VirtualObjectState descriptor holding the current field values (and the
// elided lock depth).
func TestFig8FrameStateVirtualization(t *testing.T) {
	_, g, _ := figureProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			l := m.NewLocal(bc.KindRef)
			m.New(box.Ref()).Store(l)
			m.Load(l).MonitorEnter()
			m.Load(l).Load(0).PutField(v)
			// A surviving side effect whose frame state must describe
			// the virtual object (locked, field = x).
			m.Load(0).Print()
			m.Load(l).MonitorExit()
			m.Load(l).GetField(v).ReturnValue()
		})
	var printNode *ir.Node
	g.ForEachNode(func(_ *ir.Block, n *ir.Node) {
		if n.Op == ir.OpPrint {
			printNode = n
		}
	})
	if printNode == nil || printNode.FrameState == nil {
		t.Fatalf("print node or state missing:\n%s", ir.Dump(g))
	}
	fs := printNode.FrameState
	if len(fs.VirtualObjects) != 1 {
		t.Fatalf("frame state has %d virtual object descriptors:\n%s", len(fs.VirtualObjects), fs)
	}
	vo := fs.VirtualObjects[0]
	if vo.Object.Op != ir.OpVirtualObject || vo.Object.Class.Name != "Box" {
		t.Fatalf("descriptor object wrong: %s", vo.Object)
	}
	if vo.LockDepth != 1 {
		t.Fatalf("descriptor lock depth = %d, want 1 (elided monitor)", vo.LockDepth)
	}
	if len(vo.Values) != 2 || vo.Values[0].Op != ir.OpParam {
		t.Fatalf("descriptor values wrong: %v", vo.Values)
	}
	// The local slot holding the object now references the virtual node.
	refsVirtual := false
	for _, loc := range fs.Locals {
		if loc != nil && loc.Op == ir.OpVirtualObject {
			refsVirtual = true
		}
	}
	if !refsVirtual {
		t.Fatalf("no local references the virtual object: %s", fs)
	}
}

// TestFigure2IRShape: the inlined cacheKey example (built in the exec
// differential corpus as hand-inlined bytecode) contains, before PEA, the
// node kinds Figure 2 shows — New, field stores, monitor enter/exit, loads
// of the cache, a merge with a phi — and after PEA only the miss-branch
// materialization remains.
func TestFigure2IRShape(t *testing.T) {
	prog, g, _ := figureProgram(t, []bc.Kind{bc.KindInt}, bc.KindInt,
		func(m *bc.MethodAsm, box *bc.ClassAsm, v, ref, sink *bc.Field) {
			// Listing 5 shape: alloc, init, synchronized compare, branch.
			k := m.NewLocal(bc.KindRef)
			tmp2 := m.NewLocal(bc.KindInt)
			m.New(box.Ref()).Store(k)
			m.Load(k).Load(0).PutField(v)
			m.Load(k).MonitorEnter()
			m.GetStatic(sink).IfNull(bc.CondEQ, "ne")
			m.Load(k).GetField(v).GetStatic(sink).GetField(v).IfCmp(bc.CondNE, "ne")
			m.Const(1).Store(tmp2).Goto("x")
			m.Label("ne").Const(0).Store(tmp2)
			m.Label("x").Load(k).MonitorExit()
			m.Load(tmp2).If(bc.CondEQ, "miss")
			m.Load(0).ReturnValue()
			m.Label("miss").Load(k).PutStatic(sink)
			m.Load(0).Const(31).Mul().ReturnValue()
		})
	dump := ir.Dump(g)
	for _, want := range []string{"Materialize Box", "StoreStatic Box.sink"} {
		if !strings.Contains(dump, want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
	for _, gone := range []string{"MonitorEnter", "MonitorExit", "= New "} {
		if strings.Contains(dump, gone) {
			t.Fatalf("dump still contains %q:\n%s", gone, dump)
		}
	}
	// Hit path allocates nothing; miss path allocates once.
	_, env := execGraph(t, prog, g, 5)
	if env.Stats.Allocations != 1 { // first call always misses (cache empty)
		t.Fatalf("first call should miss once, allocations = %d", env.Stats.Allocations)
	}
}
