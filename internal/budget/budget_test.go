package budget

import (
	"errors"
	"testing"
	"time"
)

func TestNilBudgetIsFreeAndSilent(t *testing.T) {
	var b *Budget
	before := ClockReads()
	if allocs := testing.AllocsPerRun(100, func() {
		if err := b.Check("opt", "Main.main", 1<<20); err != nil {
			t.Fatalf("nil budget reported %v", err)
		}
	}); allocs != 0 {
		t.Fatalf("nil-budget Check allocates %v per run, want 0", allocs)
	}
	if got := ClockReads() - before; got != 0 {
		t.Fatalf("nil-budget Check read the clock %d times, want 0", got)
	}
}

func TestNewDisabledReturnsNil(t *testing.T) {
	if b := New(0, 0); b != nil {
		t.Fatalf("New(0,0) = %v, want nil", b)
	}
	if b := New(-time.Second, -3); b != nil {
		t.Fatalf("New(-1s,-3) = %v, want nil", b)
	}
}

func TestNodeBudget(t *testing.T) {
	b := New(0, 100)
	if err := b.Check("opt", "A.f", 100); err != nil {
		t.Fatalf("at the bound: %v", err)
	}
	err := b.Check("pea", "A.f", 101)
	if err == nil {
		t.Fatal("over the bound: no error")
	}
	if !IsBudget(err) || !errors.Is(err, ErrBudget) {
		t.Fatalf("budget error not classified: %v", err)
	}
	var be *Err
	if !errors.As(err, &be) || be.Kind != "nodes" || be.Phase != "pea" || be.Actual != 101 {
		t.Fatalf("structured fields wrong: %+v", be)
	}
}

func TestDeadlineBudget(t *testing.T) {
	base := time.Unix(1000, 0)
	cur := base
	restore := SetClockForTesting(func() time.Time { return cur })
	defer restore()

	b := New(time.Second, 0)
	if err := b.Check("opt", "A.f", 1); err != nil {
		t.Fatalf("inside deadline: %v", err)
	}
	cur = base.Add(2 * time.Second)
	err := b.Check("opt", "A.f", 1)
	if err == nil {
		t.Fatal("past deadline: no error")
	}
	var be *Err
	if !errors.As(err, &be) || be.Kind != "deadline" {
		t.Fatalf("want deadline Err, got %v", err)
	}
	if !IsBudget(err) {
		t.Fatalf("deadline error not classified as budget: %v", err)
	}
}

func TestClockReadsCountsOnlyDeadlineChecks(t *testing.T) {
	before := ClockReads()
	b := &Budget{MaxNodes: 10} // node-only budget: no clock involvement
	for i := 0; i < 5; i++ {
		_ = b.Check("opt", "A.f", 1)
	}
	if got := ClockReads() - before; got != 0 {
		t.Fatalf("node-only budget read the clock %d times, want 0", got)
	}
	b2 := New(time.Hour, 0)
	_ = b2.Check("opt", "A.f", 1)
	if got := ClockReads() - before; got == 0 {
		t.Fatal("deadline budget never read the clock (proof counter broken)")
	}
}
