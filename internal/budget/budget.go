// Package budget bounds the resources one JIT compilation may consume.
//
// A production VM must survive its own compiler: a pathological method (or
// a compiler bug that makes a phase loop or an inliner explode) must not
// stall the compile broker's workers or grow the IR without limit. HotSpot
// treats a runaway compile as a per-method event — the compile thread bails
// out and the method stays interpreted — and the paper's own analysis has
// the same shape: PEA gives up after a bounded number of fixpoint rounds
// (§3) rather than diverging. This package generalizes that discipline to
// the whole pipeline with two cooperative bounds:
//
//   - a wall-clock deadline, checked at phase boundaries and PEA fixpoint
//     rounds (the natural cancellation points of the pipeline);
//   - an IR node-count budget, which stops inlining-driven graph explosion
//     before it consumes the worker's memory.
//
// Both are cooperative: the pipeline polls Check at its boundaries and
// unwinds with a structured error (wrapping ErrBudget) when a bound is
// exceeded. The broker classifies that error as transient — the method
// degrades to the interpreter and is re-armed with backoff instead of
// being blacklisted.
//
// Zero-overhead guarantee: a nil *Budget is the disabled state. Check on a
// nil receiver is a single pointer test — no clock read, no allocation.
// The ClockReads counter (same proof style as ir.DomTreesBuilt for the
// strict checker) lets tests prove that a pipeline run without a budget
// never touches the clock.
package budget

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrBudget is the sentinel wrapped by every budget violation, so callers
// can classify with errors.Is(err, budget.ErrBudget) without knowing which
// bound tripped.
var ErrBudget = errors.New("compile budget exceeded")

// Err is a structured budget violation: which bound tripped, where, and by
// how much. It wraps ErrBudget.
type Err struct {
	// Kind is "deadline" or "nodes".
	Kind string
	// Phase is the pipeline boundary at which the violation was observed.
	Phase string
	// Method is the qualified name of the method being compiled (may be
	// empty when the caller did not thread it).
	Method string
	// Limit and Actual quantify the violation: nanoseconds over the
	// deadline, or the node count against the bound.
	Limit, Actual int64
}

// Error implements error.
func (e *Err) Error() string {
	switch e.Kind {
	case "deadline":
		return fmt.Sprintf("compile budget exceeded: deadline overrun by %s at %s in %s",
			time.Duration(e.Actual-e.Limit), e.Phase, e.Method)
	case "nodes":
		return fmt.Sprintf("compile budget exceeded: %d IR nodes > budget %d at %s in %s",
			e.Actual, e.Limit, e.Phase, e.Method)
	default:
		return fmt.Sprintf("compile budget exceeded: %s at %s in %s", e.Kind, e.Phase, e.Method)
	}
}

// Unwrap makes errors.Is(err, ErrBudget) true.
func (e *Err) Unwrap() error { return ErrBudget }

// IsBudget reports whether err is (or wraps) a budget violation.
func IsBudget(err error) bool { return errors.Is(err, ErrBudget) }

// clockReads counts deadline clock reads performed by Check. It exists so
// tests can prove the disabled path never touches the clock (the same
// proof style as ir.DomTreesBuilt for the strict checker's dominator
// trees).
var clockReads atomic.Int64

// ClockReads returns the cumulative number of clock reads Check has
// performed process-wide.
func ClockReads() int64 { return clockReads.Load() }

// now is the clock, replaceable by tests to force deterministic deadline
// overruns.
var now = time.Now

// SetClockForTesting replaces the budget clock and returns a restore
// function. Tests only.
func SetClockForTesting(clock func() time.Time) (restore func()) {
	prev := now
	now = clock
	return func() { now = prev }
}

// Budget is one compilation's resource bound. The zero value checks
// nothing; a nil *Budget is the canonical disabled state (one pointer test
// per boundary, nothing else).
type Budget struct {
	// Deadline is the wall-clock instant past which the compile must
	// unwind. The zero time disables the deadline.
	Deadline time.Time
	// MaxNodes bounds the IR node count at every checked boundary.
	// 0 disables the bound.
	MaxNodes int
}

// New builds a budget starting now: d is the per-compile wall-clock
// allowance (<=0 disables), maxNodes the IR bound (<=0 disables). It
// returns nil — the disabled state — when neither bound is set, so callers
// can thread the result unconditionally.
func New(d time.Duration, maxNodes int) *Budget {
	if d <= 0 && maxNodes <= 0 {
		return nil
	}
	b := &Budget{}
	if maxNodes > 0 {
		b.MaxNodes = maxNodes
	}
	if d > 0 {
		clockReads.Add(1)
		b.Deadline = now().Add(d)
	}
	return b
}

// Check polls the budget at a pipeline boundary: phase names the boundary,
// method the compilation, nodes the current IR size. It returns nil on a
// nil receiver without further work.
func (b *Budget) Check(phase, method string, nodes int) error {
	if b == nil {
		return nil
	}
	if b.MaxNodes > 0 && nodes > b.MaxNodes {
		return &Err{Kind: "nodes", Phase: phase, Method: method,
			Limit: int64(b.MaxNodes), Actual: int64(nodes)}
	}
	if !b.Deadline.IsZero() {
		clockReads.Add(1)
		if t := now(); t.After(b.Deadline) {
			return &Err{Kind: "deadline", Phase: phase, Method: method,
				Limit: b.Deadline.UnixNano(), Actual: t.UnixNano()}
		}
	}
	return nil
}
