// Package stat is the offline analyzer behind cmd/peastat. It consumes the
// two JSONL streams the system produces — structured obs events (from
// peavm/peabench event logs or /debug/pea/flight's sibling endpoints) and
// flight-recorder dumps (dump-on-panic files, /debug/pea/flight) — in any
// mix, and aggregates them into one report: compile-latency percentiles,
// code-cache hit rate, top deoptimization reasons, and the per-site escape
// attribution table.
//
// The two stream formats share field names (both emit {"seq","t_ns","kind",
// ...} lines) but are distinguished structurally: flight records always
// carry a "bci" field, obs events never do.
package stat

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"pea/internal/obs"
)

// flightLine mirrors one flight.Recorder JSONL record.
type flightLine struct {
	Seq    uint64 `json:"seq"`
	TNS    int64  `json:"t_ns"`
	Kind   string `json:"kind"`
	Method string `json:"method"`
	BCI    *int   `json:"bci"` // presence discriminates flight vs obs lines
	A      int64  `json:"a"`
	B      int64  `json:"b"`
	Reason string `json:"reason"`
}

// Report is the aggregated analysis of one or more JSONL streams.
type Report struct {
	Lines        int // non-empty input lines
	ObsEvents    int
	FlightEvents int

	// Compile latency. Preferred source: flight compile_finish records,
	// whose A value is the broker-measured wall time of one compilation
	// (pipeline or cache replay). Fallback when the input has no flight
	// stream: per-method sums of obs phase_end durations, split into
	// compiles at each "build"/"build-osr" phase_start.
	CompileCount int
	CompileP50   time.Duration
	CompileP99   time.Duration

	// Code-cache behavior, from flight compile_finish reasons when
	// present, else obs broker_install events.
	CacheHits   int64
	CacheMisses int64

	// DeoptReasons histograms vm_deopt events and flight deopt records.
	Deopts       int64
	DeoptReasons map[string]int64

	// Escape aggregates the per-site attribution from obs decision events
	// and flight materialize records.
	Escape *obs.EscapeTable

	// Events retains the parsed obs events in input order, for format
	// conversion (peastat -chrome replays them through obs.TraceWriter).
	Events []obs.Event

	// latencies in ns, sorted by Analyze before percentile extraction.
	latencies []int64
	// flightMats buffers escape events reconstructed from flight
	// materialize records; replayed only when the obs stream carried no
	// decision events, so overlapping dumps don't double-count sites.
	flightMats   []obs.Event
	obsDecisions int
}

// Analyze reads JSONL from r and aggregates it. Lines that are not valid
// JSON objects are an error (a truncated final line is tolerated only if it
// is the stream's last); empty lines are skipped.
func Analyze(r io.Reader) (*Report, error) {
	rep := &Report{
		DeoptReasons: make(map[string]int64),
		Escape:       obs.NewEscapeTable(),
	}

	// Fallback compile-latency accumulation from obs phase timing.
	obsAccum := make(map[string]int64)
	var obsLatencies []int64
	flushObs := func(method string) {
		if ns := obsAccum[method]; ns > 0 {
			obsLatencies = append(obsLatencies, ns)
			obsAccum[method] = 0
		}
	}
	var obsCacheHits, obsCacheMisses int64

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		text := strings.TrimSpace(sc.Text())
		lineNo++
		if text == "" {
			continue
		}
		rep.Lines++

		var fl flightLine
		if err := json.Unmarshal([]byte(text), &fl); err != nil {
			return nil, fmt.Errorf("stat: line %d: %w", lineNo, err)
		}
		if fl.BCI != nil {
			rep.FlightEvents++
			rep.ingestFlight(&fl)
			continue
		}

		var e obs.Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("stat: line %d: %w", lineNo, err)
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("stat: line %d: no event kind", lineNo)
		}
		rep.ObsEvents++
		rep.Events = append(rep.Events, e)
		rep.Escape.Write(&e)
		switch e.Kind {
		case obs.KindVirtualize, obs.KindMaterialize, obs.KindMergeMaterialize,
			obs.KindLockElide, obs.KindEAVerdict, obs.KindVMRematerialize:
			rep.obsDecisions++
		}
		switch e.Kind {
		case obs.KindPhaseStart:
			if e.Phase == "build" || e.Phase == "build-osr" {
				flushObs(e.Method)
			}
		case obs.KindPhaseEnd:
			obsAccum[e.Method] += e.DurationNS
		case obs.KindVMDeopt:
			rep.Deopts++
			rep.DeoptReasons[reasonOr(e.Reason)]++
		case obs.KindBrokerInstall:
			if e.Detail == "cache" {
				obsCacheHits++
			} else {
				obsCacheMisses++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stat: %w", err)
	}

	if len(rep.latencies) == 0 {
		// No flight compile_finish records: fall back to obs phase sums.
		for m := range obsAccum {
			flushObs(m)
		}
		rep.latencies = obsLatencies
	}
	if rep.CacheHits+rep.CacheMisses == 0 {
		rep.CacheHits, rep.CacheMisses = obsCacheHits, obsCacheMisses
	}
	if rep.obsDecisions == 0 {
		// No obs decision events: the flight ring is the only escape
		// attribution source, so replay its materialize records now.
		for i := range rep.flightMats {
			rep.Escape.Write(&rep.flightMats[i])
		}
	}
	sort.Slice(rep.latencies, func(i, j int) bool { return rep.latencies[i] < rep.latencies[j] })
	rep.CompileCount = len(rep.latencies)
	rep.CompileP50 = percentile(rep.latencies, 50)
	rep.CompileP99 = percentile(rep.latencies, 99)
	return rep, nil
}

// ingestFlight folds one flight record into the report.
func (rep *Report) ingestFlight(fl *flightLine) {
	switch fl.Kind {
	case "compile_finish":
		rep.latencies = append(rep.latencies, fl.A)
		switch {
		case fl.Reason == "cache":
			rep.CacheHits++
		case fl.B == 0:
			rep.CacheMisses++
		}
	case "deopt":
		rep.Deopts++
		rep.DeoptReasons[reasonOr(fl.Reason)]++
	case "materialize":
		// Reconstruct the site from the record's scalars, as a deopt-time
		// remat or a compile-time materialization depending on the
		// recorded cause. Buffered: replayed into the escape aggregator
		// only when the obs stream has no decision events of its own.
		site := fl.Method
		if site != "" && *fl.BCI >= 0 {
			site = fmt.Sprintf("%s@%d", site, *fl.BCI)
		}
		e := obs.Event{Method: fl.Method, Site: site, Reason: fl.Reason}
		if fl.Reason == "deopt-remat" {
			e.Kind = obs.KindVMRematerialize
		} else {
			e.Kind = obs.KindMaterialize
		}
		rep.flightMats = append(rep.flightMats, e)
	}
}

func reasonOr(r string) string {
	if r == "" {
		return "<none>"
	}
	return r
}

// percentile returns the p-th percentile (nearest-rank) of sorted ns values.
func percentile(sorted []int64, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return time.Duration(sorted[rank-1])
}

// Text renders the report for terminals.
func (rep *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d (%d obs, %d flight)\n",
		rep.Lines, rep.ObsEvents, rep.FlightEvents)
	if rep.CompileCount > 0 {
		fmt.Fprintf(&b, "compiles: %d  p50 %s  p99 %s\n",
			rep.CompileCount, rep.CompileP50, rep.CompileP99)
	}
	if tot := rep.CacheHits + rep.CacheMisses; tot > 0 {
		fmt.Fprintf(&b, "code cache: %d/%d hits (%.0f%%)\n",
			rep.CacheHits, tot, 100*float64(rep.CacheHits)/float64(tot))
	}
	if rep.Deopts > 0 {
		fmt.Fprintf(&b, "deopts: %d\n", rep.Deopts)
		type rc struct {
			reason string
			n      int64
		}
		rs := make([]rc, 0, len(rep.DeoptReasons))
		for r, n := range rep.DeoptReasons {
			rs = append(rs, rc{r, n})
		}
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].n != rs[j].n {
				return rs[i].n > rs[j].n
			}
			return rs[i].reason < rs[j].reason
		})
		for _, r := range rs {
			fmt.Fprintf(&b, "  %-28s %d\n", r.reason, r.n)
		}
	}
	if snap := rep.Escape.Snapshot(); len(snap) > 0 {
		fmt.Fprintf(&b, "escape attribution:\n%s", rep.Escape.Table())
	}
	return b.String()
}
