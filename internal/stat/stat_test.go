package stat

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pea/internal/obs"
	"pea/internal/obs/flight"
)

// TestAnalyzeFlightDump feeds a real flight.Recorder dump through Analyze.
func TestAnalyzeFlightDump(t *testing.T) {
	r := flight.New(64)
	r.SetMethodNames([]string{"Main.main", "Main.getValue"})
	r.Record(flight.KindCompileStart, 1, -1, 20, 0, 0)
	r.Record(flight.KindCompileFinish, 1, -1, int64(2*time.Millisecond), 0, 0)
	r.Record(flight.KindCompileStart, 0, -1, 20, 0, 0)
	r.Record(flight.KindCompileFinish, 0, -1, int64(4*time.Millisecond), 0, r.Reason("cache"))
	r.Record(flight.KindDeopt, 1, 9, 0, 0, r.Reason("speculation-failed"))
	r.Record(flight.KindDeopt, 1, 9, 0, 0, r.Reason("speculation-failed"))
	r.Record(flight.KindMaterialize, 1, 0, 0, 0, r.Reason("StoreStatic"))
	r.Record(flight.KindMaterialize, 1, 0, 0, 0, r.Reason("deopt-remat"))

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlightEvents != 8 || rep.ObsEvents != 0 {
		t.Fatalf("events = %d flight / %d obs, want 8/0", rep.FlightEvents, rep.ObsEvents)
	}
	if rep.CompileCount != 2 || rep.CompileP50 != 2*time.Millisecond || rep.CompileP99 != 4*time.Millisecond {
		t.Errorf("latency = n%d p50=%s p99=%s", rep.CompileCount, rep.CompileP50, rep.CompileP99)
	}
	if rep.CacheHits != 1 || rep.CacheMisses != 1 {
		t.Errorf("cache = %d/%d", rep.CacheHits, rep.CacheMisses)
	}
	if rep.Deopts != 2 || rep.DeoptReasons["speculation-failed"] != 2 {
		t.Errorf("deopts = %d %v", rep.Deopts, rep.DeoptReasons)
	}
	snap := rep.Escape.Snapshot()
	if len(snap) != 1 || snap[0].Site != "Main.getValue@0" ||
		snap[0].Materialized != 1 || snap[0].Remats != 1 {
		t.Errorf("escape = %+v", snap)
	}
	text := rep.Text()
	for _, want := range []string{"compiles: 2", "1/2 hits", "speculation-failed", "Main.getValue@0"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
}

// TestAnalyzeObsStream feeds an obs JSONL stream (the peavm -json format)
// through Analyze, exercising the phase-sum latency fallback and the
// broker_install cache-rate source.
func TestAnalyzeObsStream(t *testing.T) {
	var buf bytes.Buffer
	s := obs.NewSink(obs.NewJSONBackend(&buf))
	s.SetClock(func() time.Time { return time.Unix(0, 0) })

	// Two compiles of the same method: each starts with a "build" phase.
	s.PhaseStart("build", "Main.getValue", 0, 0)
	s.PhaseEnd("build", "Main.getValue", 0, 0, 10, 2, 1*time.Millisecond)
	s.PhaseEnd("pea", "Main.getValue", 10, 2, 8, 2, 2*time.Millisecond)
	s.Virtualize("Main.getValue", "o0", "Key", "v1", "Main.getValue@0")
	s.BrokerInstall("Main.getValue", "compiled")
	s.PhaseStart("build", "Main.getValue", 0, 0)
	s.PhaseEnd("build", "Main.getValue", 0, 0, 10, 2, 5*time.Millisecond)
	s.BrokerInstall("Main.getValue", "cache")
	s.VMDeopt("Main.getValue", "v7", "branch-mispredict")

	rep, err := Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObsEvents == 0 || rep.FlightEvents != 0 {
		t.Fatalf("events = %d obs / %d flight", rep.ObsEvents, rep.FlightEvents)
	}
	if rep.CompileCount != 2 {
		t.Fatalf("compiles = %d, want 2 (split at build phase_start)", rep.CompileCount)
	}
	if rep.CompileP50 != 3*time.Millisecond || rep.CompileP99 != 5*time.Millisecond {
		t.Errorf("p50=%s p99=%s, want 3ms/5ms", rep.CompileP50, rep.CompileP99)
	}
	if rep.CacheHits != 1 || rep.CacheMisses != 1 {
		t.Errorf("cache = %d/%d", rep.CacheHits, rep.CacheMisses)
	}
	if rep.DeoptReasons["branch-mispredict"] != 1 {
		t.Errorf("deopt reasons = %v", rep.DeoptReasons)
	}
	snap := rep.Escape.Snapshot()
	if len(snap) != 1 || snap[0].Virtualized != 1 {
		t.Errorf("escape = %+v", snap)
	}
	if len(rep.Events) != rep.ObsEvents {
		t.Errorf("retained %d events, want %d", len(rep.Events), rep.ObsEvents)
	}
}

// TestAnalyzeMixedAndErrors checks mixed streams and the parse-error path.
func TestAnalyzeMixedAndErrors(t *testing.T) {
	r := flight.New(8)
	r.Record(flight.KindCompileFinish, -1, -1, 1000, 0, 0)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := obs.NewSink(obs.NewJSONBackend(&buf))
	s.VMCompile("M.m", 20)

	rep, err := Analyze(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlightEvents != 1 || rep.ObsEvents != 1 {
		t.Errorf("mixed = %d flight / %d obs, want 1/1", rep.FlightEvents, rep.ObsEvents)
	}

	if _, err := Analyze(strings.NewReader("not json\n")); err == nil {
		t.Error("invalid line did not error")
	}
	if rep, err := Analyze(strings.NewReader("\n\n")); err != nil || rep.Lines != 0 {
		t.Errorf("blank stream: rep=%+v err=%v", rep, err)
	}
}
