package mj

import (
	"strings"
	"testing"

	"pea/internal/interp"
	"pea/internal/rt"
)

func TestForWithoutInitAndPost(t *testing.T) {
	wantOutput(t, `
		class Main {
			static void main() {
				int i = 0;
				for (; i < 5;) { i++; }
				print(i);
				int n = 0;
				for (int j = 10; ; j--) {
					if (j == 3) { break; }
					n++;
				}
				print(n);
			}
		}`,
		5, 7)
}

func TestShadowingInNestedScopes(t *testing.T) {
	wantOutput(t, `
		class Main {
			static void main() {
				int x = 1;
				{
					int y = x + 1;
					print(y);
				}
				if (x == 1) {
					int y = 100;
					print(y);
				}
				print(x);
			}
		}`,
		2, 100, 1)
}

func TestContinueInsideSynchronizedUnwinds(t *testing.T) {
	src := `
		class Box { int v; }
		class Main {
			static void main() {
				Box b = new Box();
				int s = 0;
				for (int i = 0; i < 4; i++) {
					synchronized (b) {
						if (i % 2 == 0) { continue; }
						s += i;
					}
				}
				print(s);
			}
		}`
	prog, err := Compile(src, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	out := runMain(t, src)
	if out[0] != 1+3 {
		t.Fatalf("output = %v", out)
	}
	// Balanced monitors despite continue: interpret and check no trap,
	// and the lock is fully released (depth checked via a second round).
	_ = prog
}

func TestInstanceOfInCondition(t *testing.T) {
	wantOutput(t, `
		class A { }
		class B extends A { }
		class Main {
			static void main() {
				A x = new B();
				if (x instanceof B && !(x instanceof Main)) { print(1); } else { print(0); }
			}
		}`,
		1)
}

func TestFieldShadowsNothingAcrossClasses(t *testing.T) {
	wantOutput(t, `
		class A { int v; int get() { return v; } }
		class B extends A { int w; int sum() { return get() + w; } }
		class Main {
			static void main() {
				B b = new B();
				b.v = 3;
				b.w = 4;
				print(b.sum());
				A a = b;
				print(a.v);
			}
		}`,
		7, 3)
}

func TestConstructorChainingViaExplicitCalls(t *testing.T) {
	wantOutput(t, `
		class P {
			int x;
			int y;
			P(int x, int y) { this.x = x; this.y = y; }
		}
		class Main {
			static P mk(int k) { return new P(k, k * 2); }
			static void main() {
				P p = mk(5);
				print(p.x + p.y);
			}
		}`,
		15)
}

func TestNestedArraysOfObjects(t *testing.T) {
	wantOutput(t, `
		class Box { int v; Box(int v) { this.v = v; } }
		class Main {
			static void main() {
				Box[] row = new Box[3];
				for (int i = 0; i < row.length; i++) { row[i] = new Box(i * i); }
				Box[][] grid = new Box[2][];
				grid[0] = row;
				grid[1] = row;
				print(grid[1][2].v);
				print(grid.length + grid[0].length);
			}
		}`,
		4, 5)
}

func TestWhileTrueWithBreakTypechecks(t *testing.T) {
	wantOutput(t, `
		class Main {
			static int f() {
				int i = 0;
				while (true) {
					i++;
					if (i > 9) { return i; }
				}
			}
			static void main() { print(f()); }
		}`,
		10)
}

func TestDivModByZeroTrapsAtRuntime(t *testing.T) {
	src := `
		class Main {
			static void main() {
				int z = 0;
				print(1 / z);
			}
		}`
	prog, err := Compile(src, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(prog, 1)
	it := interp.New(env)
	_, rerr := it.Run()
	if rerr == nil || !strings.Contains(rerr.Error(), "division by zero") {
		t.Fatalf("got %v, want division-by-zero trap", rerr)
	}
}
