package mj

import (
	"strings"
	"testing"

	"pea/internal/interp"
	"pea/internal/rt"
	"pea/internal/vm"
)

func TestTryCatchBasic(t *testing.T) {
	wantOutput(t, `
		class Err { int code; Err(int c) { code = c; } }
		class Main {
			static void main() {
				try {
					throw new Err(7);
				} catch (Err e) {
					print(e.code);
				}
				print(1);
			}
		}`,
		7, 1)
}

func TestCatchSubtypeAndOrder(t *testing.T) {
	wantOutput(t, `
		class Err { int code; Err(int c) { code = c; } }
		class Sub extends Err { Sub(int c) { code = c; } }
		class Main {
			static int classify(boolean sub) {
				try {
					if (sub) { throw new Sub(1); }
					throw new Err(2);
				} catch (Sub s) {
					return 10 + s.code;
				} catch (Err e) {
					return 20 + e.code;
				}
			}
			static void main() {
				print(classify(true));
				print(classify(false));
				// A subclass object matches a superclass clause.
				try { throw new Sub(5); } catch (Err e) { print(e.code); }
			}
		}`,
		11, 22, 5)
}

func TestUnmatchedThrowPropagates(t *testing.T) {
	src := `
		class Err { int code; }
		class Other { int x; }
		class Main {
			static void main() {
				try { throw new Err(); } catch (Other o) { print(0); }
			}
		}`
	prog, err := Compile(src, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(prog, 1)
	_, err = interp.New(env).Run()
	if err == nil || !strings.Contains(err.Error(), "uncaught exception Err") {
		t.Fatalf("got %v, want uncaught exception Err", err)
	}
	if len(env.Output) != 0 {
		t.Fatalf("catch body ran: output %v", env.Output)
	}
}

func TestFinallyNormalPath(t *testing.T) {
	wantOutput(t, `
		class Main {
			static void main() {
				try { print(1); } finally { print(2); }
				print(3);
			}
		}`,
		1, 2, 3)
}

func TestFinallyOnThrowThenOuterCatch(t *testing.T) {
	wantOutput(t, `
		class Err { int code; Err(int c) { code = c; } }
		class Main {
			static void main() {
				try {
					try { throw new Err(5); } finally { print(1); }
				} catch (Err e) {
					print(e.code);
				}
			}
		}`,
		1, 5)
}

func TestFinallyRunsForThrowInCatch(t *testing.T) {
	wantOutput(t, `
		class Err { int code; Err(int c) { code = c; } }
		class Main {
			static void main() {
				try {
					try {
						throw new Err(1);
					} catch (Err e) {
						throw new Err(2);
					} finally {
						print(7);
					}
				} catch (Err e) {
					print(e.code);
				}
			}
		}`,
		7, 2)
}

func TestFinallyOnReturnPath(t *testing.T) {
	wantOutput(t, `
		class Main {
			static int f() {
				try { return 1; } finally { print(9); }
			}
			static void main() { print(f()); }
		}`,
		9, 1)
}

func TestReturnInFinallyWins(t *testing.T) {
	wantOutput(t, `
		class Main {
			static int g() {
				try { return 1; } finally { return 2; }
			}
			static void main() { print(g()); }
		}`,
		2)
}

func TestBreakAndContinueCrossFinally(t *testing.T) {
	wantOutput(t, `
		class Main {
			static void main() {
				for (int i = 0; i < 5; i++) {
					try {
						if (i == 1) { continue; }
						if (i == 3) { break; }
						print(i);
					} finally {
						print(10 + i);
					}
				}
				print(99);
			}
		}`,
		0, 10, 11, 2, 12, 13, 99)
}

func TestNestedFinallyOnReturn(t *testing.T) {
	wantOutput(t, `
		class Main {
			static int h() {
				try {
					try { return 1; } finally { print(1); }
				} finally {
					print(2);
				}
			}
			static void main() { print(h()); }
		}`,
		1, 2, 1)
}

// TestIntrinsicTrapRunsFinally pins the documented approximation: a finally
// observes intrinsic traps (the catch-all handler binds null), and the
// rethrow after the finally surfaces as a fresh "null throw" rather than the
// original trap reason.
func TestIntrinsicTrapRunsFinally(t *testing.T) {
	src := `
		class Main {
			static int zero() { return 0; }
			static void main() {
				try { print(1 / zero()); } finally { print(2); }
			}
		}`
	prog, err := Compile(src, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(prog, 1)
	_, err = interp.New(env).Run()
	if err == nil || !strings.Contains(err.Error(), "null throw") {
		t.Fatalf("got %v, want null throw", err)
	}
	if len(env.Output) != 1 || env.Output[0] != 2 {
		t.Fatalf("finally did not run exactly once: output %v", env.Output)
	}
}

func TestSynchronizedInsideTry(t *testing.T) {
	wantOutput(t, `
		class Lock { int x; }
		class Main {
			static int f(Lock l) {
				try {
					synchronized (l) { return 1; }
				} finally {
					print(8);
				}
			}
			static void main() { print(f(new Lock())); }
		}`,
		8, 1)
}

// tryCatchAllocSrc allocates a Box before a try, mutates it inside, and
// only reads it (plus the caught exception) in the handler. The Box never
// escapes, so PEA keeps it virtual on the hot non-throwing path AND in the
// handler; only the thrown Err objects are ever heap-allocated.
const tryCatchAllocSrc = `
class Box { int v; Box(int v) { this.v = v; } }
class Err { int code; Err(int c) { code = c; } }
class Main {
	static int work(int i) {
		Box b = new Box(i);
		try {
			if (i % 100 == 99) { throw new Err(i); }
			b.v += 1;
		} catch (Err e) {
			return b.v + e.code;
		}
		return b.v;
	}
	static void main() {
		int s = 0;
		for (int i = 0; i < 200; i++) { s += work(i); }
		print(s);
	}
}
`

// TestTryCatchScalarReplacement runs the handler-aware PEA acceptance
// program through the full VM: outputs must agree between EA modes, and
// with partial escape analysis the per-iteration Box must vanish even
// though a catch handler reads it on the rare throwing path.
func TestTryCatchScalarReplacement(t *testing.T) {
	run := func(mode vm.EAMode) *vm.VM {
		prog, err := Compile(tryCatchAllocSrc, "Main.main")
		if err != nil {
			t.Fatal(err)
		}
		machine := vm.New(prog, vm.Options{EA: mode, CompileThreshold: 10, Validate: true, MaxSteps: 20_000_000})
		main := prog.Main
		for i := 0; i < 30; i++ {
			if _, err := machine.Call(main, nil); err != nil {
				t.Fatal(err)
			}
		}
		for m, cerr := range machine.FailedCompilations() {
			t.Fatalf("compile %s: %v", m.QualifiedName(), cerr)
		}
		base := machine.Env.Stats
		for i := 0; i < 10; i++ {
			if _, err := machine.Call(main, nil); err != nil {
				t.Fatal(err)
			}
		}
		machine.Env.Stats = machine.Env.Stats.Sub(base)
		return machine
	}

	noea := run(vm.EAOff)
	peavm := run(vm.EAPartial)

	if len(noea.Env.Output) != len(peavm.Env.Output) {
		t.Fatal("outputs diverge")
	}
	for i := range noea.Env.Output {
		if noea.Env.Output[i] != peavm.Env.Output[i] {
			t.Fatalf("output[%d]: %d vs %d", i, noea.Env.Output[i], peavm.Env.Output[i])
		}
	}
	// Baseline: 200 Boxes + 2 Errs per run. PEA: the Box stays virtual on
	// every path (the handler reads it scalar-replaced), so only the two
	// thrown Errs remain.
	if base := noea.Env.Stats.Allocations; base != 202*10 {
		t.Fatalf("baseline allocations = %d, want 2020", base)
	}
	if pea := peavm.Env.Stats.Allocations; pea != 2*10 {
		t.Fatalf("PEA allocations = %d, want 20 (thrown Errs only)", pea)
	}
}

func TestTryParseAndCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"bare try", `class Main { static void main() { try { } } }`,
			"at least one catch clause or a finally block"},
		{"unknown catch class", `class Main { static void main() { try { } catch (Nope e) { } } }`,
			"catch of unknown class Nope"},
		{"catch var scoped", `class Err { int c; }
			class Main { static void main() { try { } catch (Err e) { } print(e.c); } }`,
			"undefined: e"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, "Main.main")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want %q", err, tc.want)
			}
		})
	}
}
