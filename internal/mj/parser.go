package mj

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses MiniJava source into an AST.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.at(tokEOF, "") {
		cd, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		f.Classes = append(f.Classes, cd)
	}
	return f, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokenKind]string{tokIdent: "identifier", tokInt: "integer"}[kind]
		}
		return t, errf(t.line, t.col, "expected %q, found %s", want, t)
	}
	p.pos++
	return t, nil
}

func (p *parser) classDecl() (*ClassDecl, error) {
	kw, err := p.expect(tokKeyword, "class")
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	cd := &ClassDecl{Name: name.text, Line: kw.line}
	if p.accept(tokKeyword, "extends") {
		sup, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		cd.Extends = sup.text
	}
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(tokPunct, "}") {
		if err := p.member(cd); err != nil {
			return nil, err
		}
	}
	return cd, nil
}

// member parses one field, method, or constructor declaration.
func (p *parser) member(cd *ClassDecl) error {
	start := p.cur()
	static := p.accept(tokKeyword, "static")

	// Constructor: ClassName "(" ...
	if !static && p.at(tokIdent, cd.Name) && p.peek().kind == tokPunct && p.peek().text == "(" {
		p.pos++
		md := &MethodDecl{Name: "<init>", IsCtor: true, Line: start.line}
		if err := p.methodRest(md); err != nil {
			return err
		}
		cd.Methods = append(cd.Methods, md)
		return nil
	}

	var ret *Type
	if p.accept(tokKeyword, "void") {
		ret = typeVoid
	} else {
		t, err := p.parseType()
		if err != nil {
			return err
		}
		ret = t
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if p.at(tokPunct, "(") {
		md := &MethodDecl{Name: name.text, Ret: ret, Static: static, Line: start.line}
		if err := p.methodRest(md); err != nil {
			return err
		}
		cd.Methods = append(cd.Methods, md)
		return nil
	}
	if ret.Kind == TypeVoid {
		return errf(name.line, name.col, "field %s cannot have type void", name.text)
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return err
	}
	cd.Fields = append(cd.Fields, &FieldDecl{Name: name.text, Type: ret, Static: static, Line: start.line})
	return nil
}

func (p *parser) methodRest(md *MethodDecl) error {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return err
	}
	for !p.accept(tokPunct, ")") {
		if len(md.Params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return err
			}
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return err
		}
		md.Params = append(md.Params, Param{Name: name.text, Type: t})
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	md.Body = body
	return nil
}

// parseType parses int | boolean | Ident with trailing [].
func (p *parser) parseType() (*Type, error) {
	var t *Type
	switch {
	case p.accept(tokKeyword, "int"):
		t = typeInt
	case p.accept(tokKeyword, "boolean"):
		t = typeBool
	case p.cur().kind == tokIdent:
		t = &Type{Kind: TypeClass, Class: p.cur().text}
		p.pos++
	default:
		c := p.cur()
		return nil, errf(c.line, c.col, "expected a type, found %s", c)
	}
	for p.at(tokPunct, "[") && p.peek().text == "]" {
		p.pos += 2
		t = &Type{Kind: TypeArray, Elem: t}
	}
	return t, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept(tokPunct, "}") {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// startsVarDecl decides between a declaration and an expression statement.
func (p *parser) startsVarDecl() bool {
	t := p.cur()
	if t.kind == tokKeyword && (t.text == "int" || t.text == "boolean") {
		return true
	}
	if t.kind != tokIdent {
		return false
	}
	// Ident Ident  -> decl;  Ident "[" "]" -> array-typed decl.
	n := p.peek()
	if n.kind == tokIdent {
		return true
	}
	if n.kind == tokPunct && n.text == "[" {
		nn := p.toks[min(p.pos+2, len(p.toks)-1)]
		return nn.kind == tokPunct && nn.text == "]"
	}
	return false
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokPunct, "{"):
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &BlockStmt{Body: body, Line: t.line}, nil
	case p.at(tokKeyword, "if"):
		return p.ifStmt()
	case p.at(tokKeyword, "while"):
		return p.whileStmt()
	case p.at(tokKeyword, "for"):
		return p.forStmt()
	case p.accept(tokKeyword, "break"):
		_, err := p.expect(tokPunct, ";")
		return &BreakStmt{Line: t.line}, err
	case p.accept(tokKeyword, "continue"):
		_, err := p.expect(tokPunct, ";")
		return &ContinueStmt{Line: t.line}, err
	case p.accept(tokKeyword, "return"):
		if p.accept(tokPunct, ";") {
			return &ReturnStmt{Line: t.line}, nil
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: e, Line: t.line}, nil
	case p.accept(tokKeyword, "print"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &PrintStmt{X: e, Line: t.line}, nil
	case p.accept(tokKeyword, "synchronized"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		lock, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &SyncStmt{Lock: lock, Body: body, Line: t.line}, nil
	case p.accept(tokKeyword, "throw"):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ThrowStmt{X: e, Line: t.line}, nil
	case p.at(tokKeyword, "try"):
		return p.tryStmt()
	case p.startsVarDecl():
		s, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *parser) varDecl() (Stmt, error) {
	t := p.cur()
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &VarDeclStmt{Name: name.text, Type: typ, Init: init, Line: t.line}, nil
}

// simpleStmt parses an assignment, compound assignment, ++/--, or a bare
// expression statement (without the trailing semicolon).
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	cur := p.cur()
	if cur.kind == tokPunct {
		switch cur.text {
		case "=":
			p.pos++
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Target: lhs, Value: rhs, Line: t.line}, nil
		case "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>=":
			p.pos++
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			op := cur.text[:len(cur.text)-1]
			return &AssignStmt{
				Target: lhs,
				Value:  &BinaryExpr{Op: op, L: lhs, R: rhs, Line: cur.line},
				Line:   t.line,
			}, nil
		case "++", "--":
			p.pos++
			op := "+"
			if cur.text == "--" {
				op = "-"
			}
			one := &IntLit{Val: 1, Line: cur.line}
			return &AssignStmt{
				Target: lhs,
				Value:  &BinaryExpr{Op: op, L: lhs, R: one, Line: cur.line},
				Line:   t.line,
			}, nil
		}
	}
	return &ExprStmt{X: lhs, Line: t.line}, nil
}

func (p *parser) tryStmt() (Stmt, error) {
	t, _ := p.expect(tokKeyword, "try")
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	ts := &TryStmt{Body: body, Line: t.line}
	for p.at(tokKeyword, "catch") {
		ct := p.cur()
		p.pos++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cls, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		cbody, err := p.block()
		if err != nil {
			return nil, err
		}
		ts.Catches = append(ts.Catches, &CatchClause{
			Class: cls.text, Name: name.text, Body: cbody, Line: ct.line,
		})
	}
	if p.accept(tokKeyword, "finally") {
		fin, err := p.block()
		if err != nil {
			return nil, err
		}
		if fin == nil {
			fin = []Stmt{}
		}
		ts.Finally = fin
	}
	if len(ts.Catches) == 0 && ts.Finally == nil {
		return nil, errf(t.line, t.col, "try needs at least one catch clause or a finally block")
	}
	return ts, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	t, _ := p.expect(tokKeyword, "if")
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	thenB, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	var elseB []Stmt
	if p.accept(tokKeyword, "else") {
		elseB, err = p.stmtAsBlock()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Cond: cond, Then: thenB, Else: elseB, Line: t.line}, nil
}

func (p *parser) stmtAsBlock() ([]Stmt, error) {
	if p.at(tokPunct, "{") {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return []Stmt{s}, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	t, _ := p.expect(tokKeyword, "while")
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t, _ := p.expect(tokKeyword, "for")
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var init, post Stmt
	var cond Expr
	var err error
	if !p.at(tokPunct, ";") {
		if p.startsVarDecl() {
			init, err = p.varDecl()
		} else {
			init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ";") {
		cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		post, err = p.simpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.stmtAsBlock()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Line: t.line}, nil
}

// Expression parsing with Java-like precedence.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) binaryLevel(ops []string, sub func() (Expr, error)) (Expr, error) {
	l, err := sub()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.at(tokPunct, op) {
				line := p.cur().line
				p.pos++
				r, err := sub()
				if err != nil {
					return nil, err
				}
				l = &BinaryExpr{Op: op, L: l, R: r, Line: line}
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) orExpr() (Expr, error) {
	return p.binaryLevel([]string{"||"}, p.andExpr)
}

func (p *parser) andExpr() (Expr, error) {
	return p.binaryLevel([]string{"&&"}, p.bitOrExpr)
}

func (p *parser) bitOrExpr() (Expr, error) {
	return p.binaryLevel([]string{"|"}, p.bitXorExpr)
}

func (p *parser) bitXorExpr() (Expr, error) {
	return p.binaryLevel([]string{"^"}, p.bitAndExpr)
}

func (p *parser) bitAndExpr() (Expr, error) {
	return p.binaryLevel([]string{"&"}, p.eqExpr)
}

func (p *parser) eqExpr() (Expr, error) {
	return p.binaryLevel([]string{"==", "!="}, p.relExpr)
}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.binaryLevel([]string{"<=", ">=", "<", ">"}, p.shiftExpr)
	if err != nil {
		return nil, err
	}
	if p.at(tokKeyword, "instanceof") {
		line := p.cur().line
		p.pos++
		cls, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &InstanceOfExpr{X: l, Class: cls.text, Line: line}, nil
	}
	return l, nil
}

func (p *parser) shiftExpr() (Expr, error) {
	return p.binaryLevel([]string{">>>", "<<", ">>"}, p.addExpr)
}

func (p *parser) addExpr() (Expr, error) {
	return p.binaryLevel([]string{"+", "-"}, p.mulExpr)
}

func (p *parser) mulExpr() (Expr, error) {
	return p.binaryLevel([]string{"*", "/", "%"}, p.unaryExpr)
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!" || t.text == "~") {
		p.pos++
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokPunct, "."):
			p.pos++
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if p.at(tokPunct, "(") {
				args, err := p.args()
				if err != nil {
					return nil, err
				}
				e = &CallExpr{Obj: e, Name: name.text, Args: args, Line: name.line}
			} else if name.text == "length" {
				e = &LenExpr{Arr: e, Line: name.line}
			} else {
				e = &FieldExpr{Obj: e, Name: name.text, Line: name.line}
			}
		case p.at(tokPunct, "["):
			line := p.cur().line
			p.pos++
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			e = &IndexExpr{Arr: e, Idx: idx, Line: line}
		default:
			return e, nil
		}
	}
}

func (p *parser) args() ([]Expr, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var out []Expr
	for !p.accept(tokPunct, ")") {
		if len(out) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.pos++
		return &IntLit{Val: t.val, Line: t.line}, nil
	case p.accept(tokKeyword, "true"):
		return &BoolLit{Val: true, Line: t.line}, nil
	case p.accept(tokKeyword, "false"):
		return &BoolLit{Val: false, Line: t.line}, nil
	case p.accept(tokKeyword, "null"):
		return &NullLit{Line: t.line}, nil
	case p.accept(tokKeyword, "this"):
		return &ThisExpr{Line: t.line}, nil
	case p.accept(tokKeyword, "rand"):
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var mod Expr
		if !p.at(tokPunct, ")") {
			m, err := p.expr()
			if err != nil {
				return nil, err
			}
			mod = m
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &RandExpr{Mod: mod, Line: t.line}, nil
	case p.accept(tokKeyword, "new"):
		return p.newExpr(t)
	case p.accept(tokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokIdent:
		p.pos++
		// Ident "(" -> unqualified call; Ident "." handled by postfix
		// except for static access Class.member, which the checker
		// resolves from an IdentExpr base.
		if p.at(tokPunct, "(") {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Name: t.text, Args: args, Line: t.line}, nil
		}
		return &IdentExpr{Name: t.text, Line: t.line}, nil
	default:
		return nil, errf(t.line, t.col, "expected an expression, found %s", t)
	}
}

func (p *parser) newExpr(t token) (Expr, error) {
	elem, err := p.parseTypeNoArray()
	if err != nil {
		return nil, err
	}
	if p.at(tokPunct, "[") {
		p.pos++
		ln, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		// Java-style multi-dimensional allocation: new T[n][] allocates
		// an array of n references to T[] (initialized to null).
		for p.at(tokPunct, "[") && p.peek().text == "]" {
			p.pos += 2
			elem = &Type{Kind: TypeArray, Elem: elem}
		}
		return &NewArrayExpr{Elem: elem, Len: ln, Line: t.line}, nil
	}
	if elem.Kind != TypeClass {
		return nil, errf(t.line, t.col, "cannot instantiate %s", elem)
	}
	args, err := p.args()
	if err != nil {
		return nil, err
	}
	return &NewExpr{Class: elem.Class, Args: args, Line: t.line}, nil
}

func (p *parser) parseTypeNoArray() (*Type, error) {
	switch {
	case p.accept(tokKeyword, "int"):
		return typeInt, nil
	case p.accept(tokKeyword, "boolean"):
		return typeBool, nil
	case p.cur().kind == tokIdent:
		t := &Type{Kind: TypeClass, Class: p.cur().text}
		p.pos++
		return t, nil
	}
	c := p.cur()
	return nil, errf(c.line, c.col, "expected a type, found %s", c)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
