package mj

import "fmt"

// classInfo is the checker's view of a class.
type classInfo struct {
	decl    *ClassDecl
	super   *classInfo
	fields  map[string]*fieldInfo
	statics map[string]*fieldInfo
	methods map[string]*methodInfo
	ctor    *methodInfo
}

type fieldInfo struct {
	name   string
	typ    *Type
	static bool
	owner  *classInfo
}

type methodInfo struct {
	decl  *MethodDecl
	owner *classInfo
	// paramVars are the checker-created bindings for the parameters, in
	// declaration order; codegen assigns their slots.
	paramVars []*localVar
}

// ret returns the method's return type (void for constructors).
func (m *methodInfo) ret() *Type {
	if m.decl.Ret == nil {
		return typeVoid
	}
	return m.decl.Ret
}

// checker resolves names and types over a parsed file.
type checker struct {
	classes map[string]*classInfo
	order   []*classInfo

	// current method context
	cls    *classInfo
	method *methodInfo
	scopes []map[string]*localVar
	loops  int
}

// localVar is a resolved local variable or parameter.
type localVar struct {
	name string
	typ  *Type
	// slot is assigned by codegen.
	slot int
}

// Check resolves and type-checks the file, annotating the AST in place,
// and returns the resolved symbol tables for code generation.
func Check(f *File) (*checker, error) {
	c := &checker{classes: make(map[string]*classInfo)}
	// Pass 1: declare classes.
	for _, cd := range f.Classes {
		if _, dup := c.classes[cd.Name]; dup {
			return nil, errf(cd.Line, 1, "duplicate class %s", cd.Name)
		}
		ci := &classInfo{
			decl:    cd,
			fields:  make(map[string]*fieldInfo),
			statics: make(map[string]*fieldInfo),
			methods: make(map[string]*methodInfo),
		}
		c.classes[cd.Name] = ci
		c.order = append(c.order, ci)
	}
	// Pass 2: supers, members.
	for _, ci := range c.order {
		cd := ci.decl
		if cd.Extends != "" {
			sup := c.classes[cd.Extends]
			if sup == nil {
				return nil, errf(cd.Line, 1, "class %s extends unknown class %s", cd.Name, cd.Extends)
			}
			ci.super = sup
		}
		for _, fd := range cd.Fields {
			if err := c.checkType(fd.Type, fd.Line); err != nil {
				return nil, err
			}
			fi := &fieldInfo{name: fd.Name, typ: fd.Type, static: fd.Static, owner: ci}
			m := ci.fields
			if fd.Static {
				m = ci.statics
			}
			if _, dup := m[fd.Name]; dup {
				return nil, errf(fd.Line, 1, "class %s redeclares field %s", cd.Name, fd.Name)
			}
			m[fd.Name] = fi
		}
		for _, md := range cd.Methods {
			mi := &methodInfo{decl: md, owner: ci}
			if md.IsCtor {
				if ci.ctor != nil {
					return nil, errf(md.Line, 1, "class %s has multiple constructors", cd.Name)
				}
				ci.ctor = mi
				continue
			}
			if _, dup := ci.methods[md.Name]; dup {
				return nil, errf(md.Line, 1, "class %s redeclares method %s", cd.Name, md.Name)
			}
			ci.methods[md.Name] = mi
		}
	}
	// Check for inheritance cycles.
	for _, ci := range c.order {
		seen := map[*classInfo]bool{}
		for s := ci; s != nil; s = s.super {
			if seen[s] {
				return nil, errf(ci.decl.Line, 1, "inheritance cycle through %s", ci.decl.Name)
			}
			seen[s] = true
		}
	}
	// Pass 3: bodies.
	for _, ci := range c.order {
		for _, md := range ci.decl.Methods {
			mi := &methodInfo{decl: md, owner: ci}
			if md.IsCtor {
				mi = ci.ctor
			} else {
				mi = ci.methods[md.Name]
			}
			if err := c.checkMethod(ci, mi); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

func (c *checker) checkType(t *Type, line int) error {
	switch t.Kind {
	case TypeClass:
		if c.classes[t.Class] == nil {
			return errf(line, 1, "unknown type %s", t.Class)
		}
	case TypeArray:
		return c.checkType(t.Elem, line)
	}
	return nil
}

// lookupField searches the hierarchy for an instance field.
func (ci *classInfo) lookupField(name string) *fieldInfo {
	for s := ci; s != nil; s = s.super {
		if f := s.fields[name]; f != nil {
			return f
		}
	}
	return nil
}

// lookupStatic searches the hierarchy for a static field.
func (ci *classInfo) lookupStatic(name string) *fieldInfo {
	for s := ci; s != nil; s = s.super {
		if f := s.statics[name]; f != nil {
			return f
		}
	}
	return nil
}

// lookupMethod searches the hierarchy for a method.
func (ci *classInfo) lookupMethod(name string) *methodInfo {
	for s := ci; s != nil; s = s.super {
		if m := s.methods[name]; m != nil {
			return m
		}
	}
	return nil
}

// isSubclassOf reports whether ci is k or below it.
func (ci *classInfo) isSubclassOf(k *classInfo) bool {
	for s := ci; s != nil; s = s.super {
		if s == k {
			return true
		}
	}
	return false
}

func (c *checker) checkMethod(ci *classInfo, mi *methodInfo) error {
	md := mi.decl
	c.cls = ci
	c.method = mi
	c.scopes = []map[string]*localVar{{}}
	c.loops = 0
	mi.paramVars = mi.paramVars[:0]
	for _, p := range md.Params {
		if err := c.checkType(p.Type, md.Line); err != nil {
			return err
		}
		if err := c.declare(p.Name, p.Type, md.Line); err != nil {
			return err
		}
		mi.paramVars = append(mi.paramVars, c.lookupLocal(p.Name))
	}
	if md.Ret != nil {
		if err := c.checkType(md.Ret, md.Line); err != nil {
			return err
		}
	}
	if err := c.stmts(md.Body); err != nil {
		return err
	}
	if mi.ret().Kind != TypeVoid && !returnsAll(md.Body) {
		return errf(md.Line, 1, "method %s.%s: missing return statement",
			ci.decl.Name, md.Name)
	}
	return nil
}

func (c *checker) declare(name string, t *Type, line int) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(line, 1, "duplicate variable %s", name)
	}
	top[name] = &localVar{name: name, typ: t, slot: -1}
	return nil
}

func (c *checker) lookupLocal(name string) *localVar {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v := c.scopes[i][name]; v != nil {
			return v
		}
	}
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*localVar{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

// returnsAll conservatively reports whether every path through the
// statement list ends in return or throw.
func returnsAll(body []Stmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *ReturnStmt, *ThrowStmt:
			return true
		case *IfStmt:
			if len(s.Else) > 0 && returnsAll(s.Then) && returnsAll(s.Else) {
				return true
			}
		case *BlockStmt:
			if returnsAll(s.Body) {
				return true
			}
		case *SyncStmt:
			if returnsAll(s.Body) {
				return true
			}
		case *WhileStmt:
			if lit, ok := s.Cond.(*BoolLit); ok && lit.Val && !hasBreak(s.Body) {
				return true
			}
		case *TryStmt:
			// A finally that itself returns dominates every completion.
			if s.Finally != nil && returnsAll(s.Finally) {
				return true
			}
			all := returnsAll(s.Body)
			for _, cc := range s.Catches {
				all = all && returnsAll(cc.Body)
			}
			if all {
				return true
			}
		}
	}
	return false
}

// hasBreak reports whether the statement list contains a break at this loop
// level.
func hasBreak(body []Stmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *BreakStmt:
			return true
		case *IfStmt:
			if hasBreak(s.Then) || hasBreak(s.Else) {
				return true
			}
		case *BlockStmt:
			if hasBreak(s.Body) {
				return true
			}
		case *SyncStmt:
			if hasBreak(s.Body) {
				return true
			}
		case *TryStmt:
			if hasBreak(s.Body) || hasBreak(s.Finally) {
				return true
			}
			for _, cc := range s.Catches {
				if hasBreak(cc.Body) {
					return true
				}
			}
		}
	}
	return false
}

func (c *checker) stmts(body []Stmt) error {
	for _, s := range body {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarDeclStmt:
		if err := c.checkType(s.Type, s.Line); err != nil {
			return err
		}
		t, err := c.expr(s.Init)
		if err != nil {
			return err
		}
		if !c.assignable(s.Type, t) {
			return errf(s.Line, 1, "cannot initialize %s %s with %s", s.Type, s.Name, t)
		}
		if err := c.declare(s.Name, s.Type, s.Line); err != nil {
			return err
		}
		s.Binding = c.lookupLocal(s.Name)
		return nil
	case *AssignStmt:
		lt, err := c.expr(s.Target)
		if err != nil {
			return err
		}
		if !isLValue(s.Target) {
			return errf(s.Line, 1, "left-hand side is not assignable")
		}
		rt, err := c.expr(s.Value)
		if err != nil {
			return err
		}
		if !c.assignable(lt, rt) {
			return errf(s.Line, 1, "cannot assign %s to %s", rt, lt)
		}
		return nil
	case *IfStmt:
		if err := c.condExpr(s.Cond, s.Line); err != nil {
			return err
		}
		c.pushScope()
		err := c.stmts(s.Then)
		c.popScope()
		if err != nil {
			return err
		}
		c.pushScope()
		err = c.stmts(s.Else)
		c.popScope()
		return err
	case *WhileStmt:
		if err := c.condExpr(s.Cond, s.Line); err != nil {
			return err
		}
		c.loops++
		c.pushScope()
		err := c.stmts(s.Body)
		c.popScope()
		c.loops--
		return err
	case *ForStmt:
		c.pushScope()
		defer c.popScope()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.condExpr(s.Cond, s.Line); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.stmt(s.Post); err != nil {
				return err
			}
		}
		c.loops++
		c.pushScope()
		err := c.stmts(s.Body)
		c.popScope()
		c.loops--
		return err
	case *BreakStmt:
		if c.loops == 0 {
			return errf(s.Line, 1, "break outside a loop")
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return errf(s.Line, 1, "continue outside a loop")
		}
		return nil
	case *ReturnStmt:
		want := c.method.ret()
		if s.Value == nil {
			if want.Kind != TypeVoid {
				return errf(s.Line, 1, "missing return value (want %s)", want)
			}
			return nil
		}
		if want.Kind == TypeVoid {
			return errf(s.Line, 1, "void method returns a value")
		}
		t, err := c.expr(s.Value)
		if err != nil {
			return err
		}
		if !c.assignable(want, t) {
			return errf(s.Line, 1, "cannot return %s from a %s method", t, want)
		}
		return nil
	case *ExprStmt:
		_, err := c.expr(s.X)
		if err != nil {
			return err
		}
		if _, ok := s.X.(*CallExpr); !ok {
			return errf(s.Line, 1, "expression statement must be a call")
		}
		return nil
	case *PrintStmt:
		t, err := c.expr(s.X)
		if err != nil {
			return err
		}
		if t.Kind != TypeInt && t.Kind != TypeBool {
			return errf(s.Line, 1, "print expects int or boolean, got %s", t)
		}
		return nil
	case *SyncStmt:
		t, err := c.expr(s.Lock)
		if err != nil {
			return err
		}
		if !t.isRef() || t.Kind == TypeNull {
			return errf(s.Line, 1, "synchronized expects an object, got %s", t)
		}
		c.pushScope()
		err = c.stmts(s.Body)
		c.popScope()
		return err
	case *ThrowStmt:
		t, err := c.expr(s.X)
		if err != nil {
			return err
		}
		if t.Kind != TypeClass {
			return errf(s.Line, 1, "throw expects an object, got %s", t)
		}
		return nil
	case *TryStmt:
		c.pushScope()
		err := c.stmts(s.Body)
		c.popScope()
		if err != nil {
			return err
		}
		for _, cc := range s.Catches {
			if c.classes[cc.Class] == nil {
				return errf(cc.Line, 1, "catch of unknown class %s", cc.Class)
			}
			c.pushScope()
			if err := c.declare(cc.Name, &Type{Kind: TypeClass, Class: cc.Class}, cc.Line); err != nil {
				c.popScope()
				return err
			}
			cc.Binding = c.lookupLocal(cc.Name)
			err := c.stmts(cc.Body)
			c.popScope()
			if err != nil {
				return err
			}
		}
		if s.Finally != nil {
			c.pushScope()
			err := c.stmts(s.Finally)
			c.popScope()
			return err
		}
		return nil
	case *BlockStmt:
		c.pushScope()
		err := c.stmts(s.Body)
		c.popScope()
		return err
	default:
		return fmt.Errorf("mj: unknown statement %T", s)
	}
}

func (c *checker) condExpr(e Expr, line int) error {
	t, err := c.expr(e)
	if err != nil {
		return err
	}
	if t.Kind != TypeBool {
		return errf(line, 1, "condition must be boolean, got %s", t)
	}
	return nil
}

func isLValue(e Expr) bool {
	switch e := e.(type) {
	case *IdentExpr:
		_, isLocal := e.Binding.(*localVar)
		_, isField := e.Binding.(*fieldInfo)
		return isLocal || isField
	case *FieldExpr, *IndexExpr:
		return true
	}
	return false
}

// assignable reports whether a value of type src may be stored into dst.
func (c *checker) assignable(dst, src *Type) bool {
	if dst.Kind == src.Kind {
		switch dst.Kind {
		case TypeInt, TypeBool:
			return true
		case TypeClass:
			d, s := c.classes[dst.Class], c.classes[src.Class]
			return d != nil && s != nil && s.isSubclassOf(d)
		case TypeArray:
			return c.sameType(dst.Elem, src.Elem)
		}
	}
	if dst.isRef() && src.Kind == TypeNull {
		return true
	}
	return false
}

func (c *checker) sameType(a, b *Type) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TypeClass:
		return a.Class == b.Class
	case TypeArray:
		return c.sameType(a.Elem, b.Elem)
	}
	return true
}

// classNamed returns the classInfo when name names a class and is not
// shadowed by a local.
func (c *checker) classNamed(name string) *classInfo {
	if c.lookupLocal(name) != nil {
		return nil
	}
	return c.classes[name]
}

func (c *checker) expr(e Expr) (*Type, error) {
	switch e := e.(type) {
	case *IntLit:
		e.T = typeInt
	case *BoolLit:
		e.T = typeBool
	case *NullLit:
		e.T = typeNull
	case *ThisExpr:
		if c.method.decl.Static {
			return nil, errf(e.Line, 1, "this in a static method")
		}
		e.T = &Type{Kind: TypeClass, Class: c.cls.decl.Name}
	case *IdentExpr:
		if v := c.lookupLocal(e.Name); v != nil {
			e.Binding = v
			e.T = v.typ
			break
		}
		if !c.method.decl.Static && c.method.decl != nil {
			if f := c.cls.lookupField(e.Name); f != nil {
				e.Binding = f
				e.T = f.typ
				break
			}
		}
		if f := c.cls.lookupStatic(e.Name); f != nil {
			e.Binding = f
			e.T = f.typ
			break
		}
		return nil, errf(e.Line, 1, "undefined: %s", e.Name)
	case *FieldExpr:
		// Class-qualified static access?
		if id, ok := e.Obj.(*IdentExpr); ok {
			if ci := c.classNamed(id.Name); ci != nil {
				f := ci.lookupStatic(e.Name)
				if f == nil {
					return nil, errf(e.Line, 1, "class %s has no static field %s", id.Name, e.Name)
				}
				e.Obj = nil
				e.Cls = id.Name
				e.Ref = f
				e.T = f.typ
				break
			}
		}
		t, err := c.expr(e.Obj)
		if err != nil {
			return nil, err
		}
		if t.Kind != TypeClass {
			return nil, errf(e.Line, 1, "field access on non-object type %s", t)
		}
		f := c.classes[t.Class].lookupField(e.Name)
		if f == nil {
			return nil, errf(e.Line, 1, "class %s has no field %s", t.Class, e.Name)
		}
		e.Ref = f
		e.T = f.typ
	case *IndexExpr:
		at, err := c.expr(e.Arr)
		if err != nil {
			return nil, err
		}
		if at.Kind != TypeArray {
			return nil, errf(e.Line, 1, "indexing non-array type %s", at)
		}
		it, err := c.expr(e.Idx)
		if err != nil {
			return nil, err
		}
		if it.Kind != TypeInt {
			return nil, errf(e.Line, 1, "array index must be int, got %s", it)
		}
		e.T = at.Elem
	case *LenExpr:
		at, err := c.expr(e.Arr)
		if err != nil {
			return nil, err
		}
		if at.Kind != TypeArray {
			return nil, errf(e.Line, 1, ".length on non-array type %s", at)
		}
		e.T = typeInt
	case *CallExpr:
		return c.callExpr(e)
	case *NewExpr:
		ci := c.classes[e.Class]
		if ci == nil {
			return nil, errf(e.Line, 1, "unknown class %s", e.Class)
		}
		if ci.ctor == nil {
			if len(e.Args) != 0 {
				return nil, errf(e.Line, 1, "class %s has no constructor taking %d arguments",
					e.Class, len(e.Args))
			}
		} else {
			if err := c.checkArgs(ci.ctor, e.Args, e.Line); err != nil {
				return nil, err
			}
			e.Ref = ci.ctor
		}
		e.T = &Type{Kind: TypeClass, Class: e.Class}
	case *NewArrayExpr:
		if err := c.checkType(e.Elem, e.Line); err != nil {
			return nil, err
		}
		lt, err := c.expr(e.Len)
		if err != nil {
			return nil, err
		}
		if lt.Kind != TypeInt {
			return nil, errf(e.Line, 1, "array length must be int, got %s", lt)
		}
		if e.Elem.Kind == TypeBool {
			return nil, errf(e.Line, 1, "boolean arrays are not supported; use int[]")
		}
		e.T = &Type{Kind: TypeArray, Elem: e.Elem}
	case *UnaryExpr:
		t, err := c.expr(e.X)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-", "~":
			if t.Kind != TypeInt {
				return nil, errf(e.Line, 1, "unary %s expects int, got %s", e.Op, t)
			}
			e.T = typeInt
		case "!":
			if t.Kind != TypeBool {
				return nil, errf(e.Line, 1, "! expects boolean, got %s", t)
			}
			e.T = typeBool
		}
	case *BinaryExpr:
		return c.binaryExpr(e)
	case *InstanceOfExpr:
		t, err := c.expr(e.X)
		if err != nil {
			return nil, err
		}
		if !t.isRef() {
			return nil, errf(e.Line, 1, "instanceof on non-reference type %s", t)
		}
		if c.classes[e.Class] == nil {
			return nil, errf(e.Line, 1, "unknown class %s", e.Class)
		}
		e.T = typeBool
	case *RandExpr:
		if e.Mod != nil {
			if _, ok := e.Mod.(*IntLit); !ok {
				return nil, errf(e.Line, 1, "rand modulus must be an integer literal")
			}
			if _, err := c.expr(e.Mod); err != nil {
				return nil, err
			}
		}
		e.T = typeInt
	default:
		return nil, fmt.Errorf("mj: unknown expression %T", e)
	}
	return e.typ(), nil
}

func (c *checker) callExpr(e *CallExpr) (*Type, error) {
	// Class-qualified static call?
	if id, ok := e.Obj.(*IdentExpr); ok {
		if ci := c.classNamed(id.Name); ci != nil {
			mi := ci.lookupMethod(e.Name)
			if mi == nil {
				return nil, errf(e.Line, 1, "class %s has no method %s", id.Name, e.Name)
			}
			if !mi.decl.Static {
				return nil, errf(e.Line, 1, "%s.%s is not static", id.Name, e.Name)
			}
			e.Obj = nil
			e.Cls = id.Name
			e.Ref = mi
			if err := c.checkArgs(mi, e.Args, e.Line); err != nil {
				return nil, err
			}
			e.T = mi.ret()
			return e.T, nil
		}
	}
	var ci *classInfo
	if e.Obj != nil {
		t, err := c.expr(e.Obj)
		if err != nil {
			return nil, err
		}
		if t.Kind != TypeClass {
			return nil, errf(e.Line, 1, "method call on non-object type %s", t)
		}
		ci = c.classes[t.Class]
	} else {
		ci = c.cls
	}
	mi := ci.lookupMethod(e.Name)
	if mi == nil {
		return nil, errf(e.Line, 1, "class %s has no method %s", ci.decl.Name, e.Name)
	}
	if e.Obj == nil {
		if mi.decl.Static {
			e.Cls = mi.owner.decl.Name
		} else if c.method.decl.Static {
			return nil, errf(e.Line, 1, "cannot call instance method %s from a static context", e.Name)
		}
		// Instance call with implicit this: codegen loads this.
	} else if mi.decl.Static {
		return nil, errf(e.Line, 1, "static method %s called through an instance", e.Name)
	}
	e.Ref = mi
	if err := c.checkArgs(mi, e.Args, e.Line); err != nil {
		return nil, err
	}
	e.T = mi.ret()
	return e.T, nil
}

func (c *checker) checkArgs(mi *methodInfo, args []Expr, line int) error {
	if len(args) != len(mi.decl.Params) {
		return errf(line, 1, "%s.%s expects %d arguments, got %d",
			mi.owner.decl.Name, mi.decl.Name, len(mi.decl.Params), len(args))
	}
	for i, a := range args {
		t, err := c.expr(a)
		if err != nil {
			return err
		}
		if !c.assignable(mi.decl.Params[i].Type, t) {
			return errf(line, 1, "argument %d: cannot pass %s as %s",
				i+1, t, mi.decl.Params[i].Type)
		}
	}
	return nil
}

func (c *checker) binaryExpr(e *BinaryExpr) (*Type, error) {
	lt, err := c.expr(e.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.expr(e.R)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "&&", "||":
		if lt.Kind != TypeBool || rt.Kind != TypeBool {
			return nil, errf(e.Line, 1, "%s expects booleans, got %s and %s", e.Op, lt, rt)
		}
		e.T = typeBool
	case "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", ">>>":
		if lt.Kind != TypeInt || rt.Kind != TypeInt {
			return nil, errf(e.Line, 1, "%s expects ints, got %s and %s", e.Op, lt, rt)
		}
		e.T = typeInt
	case "<", "<=", ">", ">=":
		if lt.Kind != TypeInt || rt.Kind != TypeInt {
			return nil, errf(e.Line, 1, "%s expects ints, got %s and %s", e.Op, lt, rt)
		}
		e.T = typeBool
	case "==", "!=":
		ok := (lt.Kind == TypeInt && rt.Kind == TypeInt) ||
			(lt.Kind == TypeBool && rt.Kind == TypeBool) ||
			(lt.isRef() && rt.isRef() &&
				(c.assignable(lt, rt) || c.assignable(rt, lt)))
		if !ok {
			return nil, errf(e.Line, 1, "cannot compare %s and %s", lt, rt)
		}
		e.T = typeBool
	default:
		return nil, errf(e.Line, 1, "unknown operator %s", e.Op)
	}
	return e.T, nil
}
