package mj

// Type is a MiniJava static type.
type Type struct {
	// Kind discriminates the type.
	Kind TypeKind
	// Class is the class name for TypeClass.
	Class string
	// Elem is the element type for TypeArray.
	Elem *Type
}

// TypeKind enumerates MiniJava types.
type TypeKind uint8

// Type kinds.
const (
	TypeVoid TypeKind = iota
	TypeInt
	TypeBool
	TypeClass
	TypeArray
	TypeNull // the type of the null literal
)

// String renders the type in source syntax.
func (t *Type) String() string {
	switch t.Kind {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeBool:
		return "boolean"
	case TypeClass:
		return t.Class
	case TypeArray:
		return t.Elem.String() + "[]"
	case TypeNull:
		return "null"
	default:
		return "?"
	}
}

// isRef reports whether values of the type are references.
func (t *Type) isRef() bool {
	return t.Kind == TypeClass || t.Kind == TypeArray || t.Kind == TypeNull
}

var (
	typeVoid = &Type{Kind: TypeVoid}
	typeInt  = &Type{Kind: TypeInt}
	typeBool = &Type{Kind: TypeBool}
	typeNull = &Type{Kind: TypeNull}
)

// File is a parsed compilation unit.
type File struct {
	Classes []*ClassDecl
}

// ClassDecl declares a class.
type ClassDecl struct {
	Name    string
	Extends string // "" for none
	Fields  []*FieldDecl
	Methods []*MethodDecl
	Line    int
}

// FieldDecl declares an instance or static field.
type FieldDecl struct {
	Name   string
	Type   *Type
	Static bool
	Line   int
}

// MethodDecl declares a method or constructor (Name == class name,
// Ret == nil).
type MethodDecl struct {
	Name   string
	Ret    *Type // nil for constructors
	Params []Param
	Static bool
	Body   []Stmt
	Line   int
	IsCtor bool
}

// Param is a method parameter.
type Param struct {
	Name string
	Type *Type
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// VarDeclStmt declares a local variable with an initializer.
type VarDeclStmt struct {
	Name string
	Type *Type
	Init Expr
	Line int
	// Binding is the checker-resolved local variable.
	Binding any
}

// AssignStmt assigns to a variable, field, or array element.
type AssignStmt struct {
	Target Expr // IdentExpr, FieldExpr, or IndexExpr
	Value  Expr
	Line   int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil
	Body []Stmt
	Line int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Line int }

// ReturnStmt returns from the method.
type ReturnStmt struct {
	Value Expr // nil for void
	Line  int
}

// ExprStmt evaluates an expression for its effects (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

// PrintStmt is the print(e) intrinsic.
type PrintStmt struct {
	X    Expr
	Line int
}

// SyncStmt is synchronized (e) { body }.
type SyncStmt struct {
	Lock Expr
	Body []Stmt
	Line int
}

// ThrowStmt aborts execution with an exception object.
type ThrowStmt struct {
	X    Expr
	Line int
}

// TryStmt is try { } catch (C e) { } ... finally { }. At least one catch
// clause or a finally block is present.
type TryStmt struct {
	Body    []Stmt
	Catches []*CatchClause
	Finally []Stmt // nil when absent
	Line    int
}

// CatchClause handles exceptions of one class (and its subclasses),
// binding the caught object to a fresh local.
type CatchClause struct {
	Class   string
	Name    string
	Body    []Stmt
	Line    int
	Binding any // *localVar resolved by the checker
}

// BlockStmt is a nested { } scope.
type BlockStmt struct {
	Body []Stmt
	Line int
}

func (*VarDeclStmt) stmtNode()  {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*PrintStmt) stmtNode()    {}
func (*SyncStmt) stmtNode()     {}
func (*ThrowStmt) stmtNode()    {}
func (*TryStmt) stmtNode()      {}
func (*BlockStmt) stmtNode()    {}

// Expr is an expression node. The checker fills in T.
type Expr interface {
	exprNode()
	typ() *Type
}

type exprBase struct{ T *Type }

func (e *exprBase) typ() *Type { return e.T }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Val  int64
	Line int
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Val  bool
	Line int
}

// NullLit is null.
type NullLit struct {
	exprBase
	Line int
}

// ThisExpr is this.
type ThisExpr struct {
	exprBase
	Line int
}

// IdentExpr names a local, parameter, field of this, or static field of the
// enclosing class; the checker resolves Binding.
type IdentExpr struct {
	exprBase
	Name    string
	Line    int
	Binding any // *localVar, *fieldRef resolved by the checker
}

// FieldExpr is obj.f or ClassName.f (static); Static resolved by checker.
type FieldExpr struct {
	exprBase
	Obj  Expr   // nil when Obj was a class name (static access)
	Cls  string // class name for static access
	Name string
	Line int
	Ref  any // *fieldRef
}

// IndexExpr is a[i].
type IndexExpr struct {
	exprBase
	Arr  Expr
	Idx  Expr
	Line int
}

// LenExpr is a.length.
type LenExpr struct {
	exprBase
	Arr  Expr
	Line int
}

// CallExpr is obj.m(args), m(args) (implicit this/static), or
// ClassName.m(args).
type CallExpr struct {
	exprBase
	Obj  Expr   // nil for implicit receiver or static calls
	Cls  string // class name for qualified static calls
	Name string
	Args []Expr
	Line int
	Ref  any // *methodRef
}

// NewExpr is new C(args).
type NewExpr struct {
	exprBase
	Class string
	Args  []Expr
	Line  int
	Ref   any
}

// NewArrayExpr is new T[len].
type NewArrayExpr struct {
	exprBase
	Elem *Type
	Len  Expr
	Line int
}

// UnaryExpr is -x or !x or ~x.
type UnaryExpr struct {
	exprBase
	Op   string
	X    Expr
	Line int
}

// BinaryExpr is a binary operation, including short-circuit && and ||.
type BinaryExpr struct {
	exprBase
	Op   string
	L, R Expr
	Line int
}

// InstanceOfExpr is e instanceof C.
type InstanceOfExpr struct {
	exprBase
	X     Expr
	Class string
	Line  int
}

// RandExpr is rand(mod), the deterministic PRNG intrinsic.
type RandExpr struct {
	exprBase
	Mod  Expr // must be a constant expression; 0 disables reduction
	Line int
}

func (*IntLit) exprNode()         {}
func (*BoolLit) exprNode()        {}
func (*NullLit) exprNode()        {}
func (*ThisExpr) exprNode()       {}
func (*IdentExpr) exprNode()      {}
func (*FieldExpr) exprNode()      {}
func (*IndexExpr) exprNode()      {}
func (*LenExpr) exprNode()        {}
func (*CallExpr) exprNode()       {}
func (*NewExpr) exprNode()        {}
func (*NewArrayExpr) exprNode()   {}
func (*UnaryExpr) exprNode()      {}
func (*BinaryExpr) exprNode()     {}
func (*InstanceOfExpr) exprNode() {}
func (*RandExpr) exprNode()       {}
