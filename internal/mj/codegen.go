package mj

import (
	"fmt"

	"pea/internal/bc"
)

// Compile parses, checks and compiles MiniJava source to a linked bytecode
// program. mainName names the entry point ("Main.main" convention; pass ""
// for a library without an entry point).
func Compile(src, mainName string) (*bc.Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	ck, err := Check(f)
	if err != nil {
		return nil, err
	}
	g := &gen{
		ck:      ck,
		asm:     bc.NewAssembler(),
		classes: make(map[*classInfo]*bc.ClassAsm),
		fields:  make(map[*fieldInfo]*bc.Field),
		methods: make(map[*methodInfo]*bc.MethodAsm),
	}
	if err := g.declare(); err != nil {
		return nil, err
	}
	if err := g.bodies(); err != nil {
		return nil, err
	}
	return g.asm.Finish(mainName)
}

// MustCompile is Compile that panics on error; for tests and examples with
// static sources.
func MustCompile(src, mainName string) *bc.Program {
	p, err := Compile(src, mainName)
	if err != nil {
		panic(err)
	}
	return p
}

func kindOf(t *Type) bc.Kind {
	switch t.Kind {
	case TypeVoid:
		return bc.KindVoid
	case TypeInt, TypeBool:
		return bc.KindInt
	default:
		return bc.KindRef
	}
}

// gen translates the checked AST to bytecode.
type gen struct {
	ck      *checker
	asm     *bc.Assembler
	classes map[*classInfo]*bc.ClassAsm
	fields  map[*fieldInfo]*bc.Field
	methods map[*methodInfo]*bc.MethodAsm
}

// declare creates all classes, fields and method shells, so bodies can
// reference any symbol.
func (g *gen) declare() error {
	for _, ci := range g.ck.order {
		ca := g.asm.Class(ci.decl.Name, ci.decl.Extends)
		g.classes[ci] = ca
		for _, fd := range ci.decl.Fields {
			var fi *fieldInfo
			if fd.Static {
				fi = ci.statics[fd.Name]
				g.fields[fi] = ca.Static(fd.Name, kindOf(fd.Type))
			} else {
				fi = ci.fields[fd.Name]
				g.fields[fi] = ca.Field(fd.Name, kindOf(fd.Type))
			}
		}
	}
	for _, ci := range g.ck.order {
		ca := g.classes[ci]
		decl := func(mi *methodInfo) {
			md := mi.decl
			params := make([]bc.Kind, len(md.Params))
			for i, p := range md.Params {
				params[i] = kindOf(p.Type)
			}
			g.methods[mi] = ca.Method(md.Name, params, kindOf(mi.ret()), md.Static)
		}
		if ci.ctor != nil {
			decl(ci.ctor)
		}
		for _, md := range ci.decl.Methods {
			if !md.IsCtor {
				decl(ci.methods[md.Name])
			}
		}
	}
	return nil
}

func (g *gen) bodies() error {
	for _, ci := range g.ck.order {
		mis := make([]*methodInfo, 0, len(ci.decl.Methods))
		if ci.ctor != nil {
			mis = append(mis, ci.ctor)
		}
		for _, md := range ci.decl.Methods {
			if !md.IsCtor {
				mis = append(mis, ci.methods[md.Name])
			}
		}
		for _, mi := range mis {
			fg := &fngen{g: g, mi: mi, ma: g.methods[mi]}
			if err := fg.run(); err != nil {
				return err
			}
		}
	}
	return nil
}

// loopCtx tracks the labels and synchronized nesting of one loop.
type loopCtx struct {
	contLabel  string
	breakLabel string
	syncDepth  int
}

// fngen generates one method body.
type fngen struct {
	g  *gen
	mi *methodInfo
	ma *bc.MethodAsm

	labelSeq int
	// syncSlots holds the local slots of lock temporaries for all
	// currently entered synchronized blocks.
	syncSlots []int
	loops     []loopCtx
}

func (f *fngen) label() string {
	f.labelSeq++
	return fmt.Sprintf("L%d", f.labelSeq)
}

func (f *fngen) run() error {
	md := f.mi.decl
	// Parameter slots: receiver is slot 0 for instance methods.
	base := 0
	if !md.Static {
		base = 1
	}
	for i, v := range f.mi.paramVars {
		v.slot = base + i
	}
	if err := f.stmts(md.Body); err != nil {
		return err
	}
	// Implicit trailing return for void methods and constructors.
	if kindOf(f.mi.ret()) == bc.KindVoid && !returnsAll(md.Body) {
		f.ma.Return()
	}
	return nil
}

func (f *fngen) stmts(body []Stmt) error {
	for _, s := range body {
		if err := f.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (f *fngen) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarDeclStmt:
		f.ma.SetLine(s.Line)
		v := s.Binding.(*localVar)
		v.slot = f.ma.NewLocal(kindOf(v.typ))
		if err := f.expr(s.Init); err != nil {
			return err
		}
		f.ma.Store(v.slot)
		return nil
	case *AssignStmt:
		f.ma.SetLine(s.Line)
		return f.assign(s)
	case *IfStmt:
		f.ma.SetLine(s.Line)
		elseL, endL := f.label(), f.label()
		if err := f.condJump(s.Cond, elseL, false); err != nil {
			return err
		}
		if err := f.stmts(s.Then); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			f.ma.Goto(endL)
		}
		f.ma.Label(elseL)
		if len(s.Else) > 0 {
			if err := f.stmts(s.Else); err != nil {
				return err
			}
			f.ma.Label(endL)
		}
		return nil
	case *WhileStmt:
		f.ma.SetLine(s.Line)
		head, end := f.label(), f.label()
		f.ma.Label(head)
		if err := f.condJump(s.Cond, end, false); err != nil {
			return err
		}
		f.loops = append(f.loops, loopCtx{contLabel: head, breakLabel: end, syncDepth: len(f.syncSlots)})
		err := f.stmts(s.Body)
		f.loops = f.loops[:len(f.loops)-1]
		if err != nil {
			return err
		}
		f.ma.Goto(head)
		f.ma.Label(end)
		return nil
	case *ForStmt:
		f.ma.SetLine(s.Line)
		if s.Init != nil {
			if err := f.stmt(s.Init); err != nil {
				return err
			}
		}
		head, cont, end := f.label(), f.label(), f.label()
		f.ma.Label(head)
		if s.Cond != nil {
			if err := f.condJump(s.Cond, end, false); err != nil {
				return err
			}
		}
		f.loops = append(f.loops, loopCtx{contLabel: cont, breakLabel: end, syncDepth: len(f.syncSlots)})
		err := f.stmts(s.Body)
		f.loops = f.loops[:len(f.loops)-1]
		if err != nil {
			return err
		}
		f.ma.Label(cont)
		if s.Post != nil {
			if err := f.stmt(s.Post); err != nil {
				return err
			}
		}
		f.ma.Goto(head)
		f.ma.Label(end)
		return nil
	case *BreakStmt:
		l := f.loops[len(f.loops)-1]
		f.unwindSyncs(l.syncDepth)
		f.ma.Goto(l.breakLabel)
		return nil
	case *ContinueStmt:
		l := f.loops[len(f.loops)-1]
		f.unwindSyncs(l.syncDepth)
		f.ma.Goto(l.contLabel)
		return nil
	case *ReturnStmt:
		f.ma.SetLine(s.Line)
		if s.Value != nil {
			if err := f.expr(s.Value); err != nil {
				return err
			}
			f.unwindSyncs(0)
			f.ma.ReturnValue()
		} else {
			f.unwindSyncs(0)
			f.ma.Return()
		}
		return nil
	case *ExprStmt:
		f.ma.SetLine(s.Line)
		call := s.X.(*CallExpr)
		if err := f.expr(call); err != nil {
			return err
		}
		if kindOf(call.T) != bc.KindVoid {
			f.ma.Pop()
		}
		return nil
	case *PrintStmt:
		f.ma.SetLine(s.Line)
		if err := f.expr(s.X); err != nil {
			return err
		}
		f.ma.Print()
		return nil
	case *SyncStmt:
		f.ma.SetLine(s.Line)
		if err := f.expr(s.Lock); err != nil {
			return err
		}
		slot := f.ma.NewLocal(bc.KindRef)
		f.ma.Dup().Store(slot).MonitorEnter()
		f.syncSlots = append(f.syncSlots, slot)
		err := f.stmts(s.Body)
		f.syncSlots = f.syncSlots[:len(f.syncSlots)-1]
		if err != nil {
			return err
		}
		if !returnsAll(s.Body) {
			f.ma.Load(slot).MonitorExit()
		}
		return nil
	case *ThrowStmt:
		f.ma.SetLine(s.Line)
		if err := f.expr(s.X); err != nil {
			return err
		}
		f.ma.Throw()
		return nil
	case *BlockStmt:
		return f.stmts(s.Body)
	default:
		return fmt.Errorf("mj: codegen: unknown statement %T", s)
	}
}

// unwindSyncs releases monitors entered above the given depth (for return,
// break, and continue leaving synchronized regions).
func (f *fngen) unwindSyncs(depth int) {
	for i := len(f.syncSlots) - 1; i >= depth; i-- {
		f.ma.Load(f.syncSlots[i]).MonitorExit()
	}
}

func (f *fngen) assign(s *AssignStmt) error {
	switch t := s.Target.(type) {
	case *IdentExpr:
		switch b := t.Binding.(type) {
		case *localVar:
			if err := f.expr(s.Value); err != nil {
				return err
			}
			f.ma.Store(b.slot)
		case *fieldInfo:
			if b.static {
				if err := f.expr(s.Value); err != nil {
					return err
				}
				f.ma.PutStatic(f.g.fields[b])
			} else {
				f.ma.Load(0)
				if err := f.expr(s.Value); err != nil {
					return err
				}
				f.ma.PutField(f.g.fields[b])
			}
		default:
			return fmt.Errorf("mj: codegen: unresolved identifier %s", t.Name)
		}
		return nil
	case *FieldExpr:
		fi := t.Ref.(*fieldInfo)
		if fi.static {
			if err := f.expr(s.Value); err != nil {
				return err
			}
			f.ma.PutStatic(f.g.fields[fi])
			return nil
		}
		if err := f.expr(t.Obj); err != nil {
			return err
		}
		if err := f.expr(s.Value); err != nil {
			return err
		}
		f.ma.PutField(f.g.fields[fi])
		return nil
	case *IndexExpr:
		if err := f.expr(t.Arr); err != nil {
			return err
		}
		if err := f.expr(t.Idx); err != nil {
			return err
		}
		if err := f.expr(s.Value); err != nil {
			return err
		}
		f.ma.ArrayStore(kindOf(t.T))
		return nil
	default:
		return fmt.Errorf("mj: codegen: bad assignment target %T", t)
	}
}

var arithOps = map[string]bc.Op{
	"+": bc.OpAdd, "-": bc.OpSub, "*": bc.OpMul, "/": bc.OpDiv, "%": bc.OpRem,
	"&": bc.OpAnd, "|": bc.OpOr, "^": bc.OpXor,
	"<<": bc.OpShl, ">>": bc.OpShr, ">>>": bc.OpUShr,
}

var cmpOps = map[string]bc.Cond{
	"==": bc.CondEQ, "!=": bc.CondNE,
	"<": bc.CondLT, "<=": bc.CondLE, ">": bc.CondGT, ">=": bc.CondGE,
}

// expr generates code leaving the expression's value on the stack.
func (f *fngen) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		f.ma.Const(e.Val)
	case *BoolLit:
		if e.Val {
			f.ma.Const(1)
		} else {
			f.ma.Const(0)
		}
	case *NullLit:
		f.ma.ConstNull()
	case *ThisExpr:
		f.ma.Load(0)
	case *IdentExpr:
		switch b := e.Binding.(type) {
		case *localVar:
			f.ma.Load(b.slot)
		case *fieldInfo:
			if b.static {
				f.ma.GetStatic(f.g.fields[b])
			} else {
				f.ma.Load(0).GetField(f.g.fields[b])
			}
		default:
			return fmt.Errorf("mj: codegen: unresolved identifier %s", e.Name)
		}
	case *FieldExpr:
		fi := e.Ref.(*fieldInfo)
		if fi.static {
			f.ma.GetStatic(f.g.fields[fi])
			return nil
		}
		if err := f.expr(e.Obj); err != nil {
			return err
		}
		f.ma.GetField(f.g.fields[fi])
	case *IndexExpr:
		if err := f.expr(e.Arr); err != nil {
			return err
		}
		if err := f.expr(e.Idx); err != nil {
			return err
		}
		f.ma.ArrayLoad(kindOf(e.T))
	case *LenExpr:
		if err := f.expr(e.Arr); err != nil {
			return err
		}
		f.ma.ArrayLen()
	case *CallExpr:
		mi := e.Ref.(*methodInfo)
		if !mi.decl.Static {
			if e.Obj != nil {
				if err := f.expr(e.Obj); err != nil {
					return err
				}
			} else {
				f.ma.Load(0) // implicit this
			}
		}
		for _, a := range e.Args {
			if err := f.expr(a); err != nil {
				return err
			}
		}
		if mi.decl.Static {
			f.ma.InvokeStatic(f.g.methods[mi].Ref())
		} else {
			f.ma.InvokeVirtual(f.g.methods[mi].Ref())
		}
	case *NewExpr:
		ci := f.g.ck.classes[e.Class]
		f.ma.New(f.g.classes[ci].Ref())
		if ci.ctor != nil {
			f.ma.Dup()
			for _, a := range e.Args {
				if err := f.expr(a); err != nil {
					return err
				}
			}
			f.ma.InvokeDirect(f.g.methods[ci.ctor].Ref())
		}
	case *NewArrayExpr:
		if err := f.expr(e.Len); err != nil {
			return err
		}
		f.ma.NewArray(kindOf(e.Elem))
	case *UnaryExpr:
		switch e.Op {
		case "-":
			if err := f.expr(e.X); err != nil {
				return err
			}
			f.ma.Neg()
		case "~":
			if err := f.expr(e.X); err != nil {
				return err
			}
			f.ma.Const(-1).Arith(bc.OpXor)
		case "!":
			if err := f.expr(e.X); err != nil {
				return err
			}
			f.ma.Const(1).Arith(bc.OpXor)
		}
	case *BinaryExpr:
		switch e.Op {
		case "&&", "||":
			return f.boolViaBranches(e)
		case "==", "!=":
			if e.L.typ().isRef() {
				return f.boolViaBranches(e)
			}
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.Cmp(cmpOps[e.Op])
		case "<", "<=", ">", ">=":
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.Cmp(cmpOps[e.Op])
		default:
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.Arith(arithOps[e.Op])
		}
	case *InstanceOfExpr:
		if err := f.expr(e.X); err != nil {
			return err
		}
		f.ma.InstanceOf(f.g.classes[f.g.ck.classes[e.Class]].Ref())
	case *RandExpr:
		mod := int64(0)
		if e.Mod != nil {
			mod = e.Mod.(*IntLit).Val
		}
		f.ma.Rand(mod)
	default:
		return fmt.Errorf("mj: codegen: unknown expression %T", e)
	}
	return nil
}

// boolViaBranches materializes a boolean value for expressions that only
// have branching forms (short-circuit operators, reference comparisons).
func (f *fngen) boolViaBranches(e Expr) error {
	trueL, endL := f.label(), f.label()
	if err := f.condJump(e, trueL, true); err != nil {
		return err
	}
	f.ma.Const(0).Goto(endL)
	f.ma.Label(trueL).Const(1)
	f.ma.Label(endL)
	return nil
}

// condJump emits a jump to label when e evaluates to whenTrue, falling
// through otherwise.
func (f *fngen) condJump(e Expr, label string, whenTrue bool) error {
	switch e := e.(type) {
	case *BoolLit:
		if e.Val == whenTrue {
			f.ma.Goto(label)
		}
		return nil
	case *UnaryExpr:
		if e.Op == "!" {
			return f.condJump(e.X, label, !whenTrue)
		}
	case *BinaryExpr:
		switch e.Op {
		case "&&":
			if whenTrue {
				skip := f.label()
				if err := f.condJump(e.L, skip, false); err != nil {
					return err
				}
				if err := f.condJump(e.R, label, true); err != nil {
					return err
				}
				f.ma.Label(skip)
				return nil
			}
			if err := f.condJump(e.L, label, false); err != nil {
				return err
			}
			return f.condJump(e.R, label, false)
		case "||":
			if whenTrue {
				if err := f.condJump(e.L, label, true); err != nil {
					return err
				}
				return f.condJump(e.R, label, true)
			}
			skip := f.label()
			if err := f.condJump(e.L, skip, true); err != nil {
				return err
			}
			if err := f.condJump(e.R, label, false); err != nil {
				return err
			}
			f.ma.Label(skip)
			return nil
		case "==", "!=":
			cond := cmpOps[e.Op]
			if !whenTrue {
				cond = cond.Negate()
			}
			if e.L.typ().isRef() {
				// Prefer IfNull when one side is the null literal.
				if _, ok := e.R.(*NullLit); ok {
					if err := f.expr(e.L); err != nil {
						return err
					}
					f.ma.IfNull(cond, label)
					return nil
				}
				if _, ok := e.L.(*NullLit); ok {
					if err := f.expr(e.R); err != nil {
						return err
					}
					f.ma.IfNull(cond, label)
					return nil
				}
				if err := f.expr(e.L); err != nil {
					return err
				}
				if err := f.expr(e.R); err != nil {
					return err
				}
				f.ma.IfRef(cond, label)
				return nil
			}
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.IfCmp(cond, label)
			return nil
		case "<", "<=", ">", ">=":
			cond := cmpOps[e.Op]
			if !whenTrue {
				cond = cond.Negate()
			}
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.IfCmp(cond, label)
			return nil
		}
	}
	// Generic boolean value.
	if err := f.expr(e); err != nil {
		return err
	}
	if whenTrue {
		f.ma.If(bc.CondNE, label)
	} else {
		f.ma.If(bc.CondEQ, label)
	}
	return nil
}
