package mj

import (
	"fmt"

	"pea/internal/bc"
)

// Compile parses, checks and compiles MiniJava source to a linked bytecode
// program. mainName names the entry point ("Main.main" convention; pass ""
// for a library without an entry point).
func Compile(src, mainName string) (*bc.Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	ck, err := Check(f)
	if err != nil {
		return nil, err
	}
	g := &gen{
		ck:      ck,
		asm:     bc.NewAssembler(),
		classes: make(map[*classInfo]*bc.ClassAsm),
		fields:  make(map[*fieldInfo]*bc.Field),
		methods: make(map[*methodInfo]*bc.MethodAsm),
	}
	if err := g.declare(); err != nil {
		return nil, err
	}
	if err := g.bodies(); err != nil {
		return nil, err
	}
	return g.asm.Finish(mainName)
}

// MustCompile is Compile that panics on error; for tests and examples with
// static sources.
func MustCompile(src, mainName string) *bc.Program {
	p, err := Compile(src, mainName)
	if err != nil {
		panic(err)
	}
	return p
}

func kindOf(t *Type) bc.Kind {
	switch t.Kind {
	case TypeVoid:
		return bc.KindVoid
	case TypeInt, TypeBool:
		return bc.KindInt
	default:
		return bc.KindRef
	}
}

// gen translates the checked AST to bytecode.
type gen struct {
	ck      *checker
	asm     *bc.Assembler
	classes map[*classInfo]*bc.ClassAsm
	fields  map[*fieldInfo]*bc.Field
	methods map[*methodInfo]*bc.MethodAsm
}

// declare creates all classes, fields and method shells, so bodies can
// reference any symbol.
func (g *gen) declare() error {
	for _, ci := range g.ck.order {
		ca := g.asm.Class(ci.decl.Name, ci.decl.Extends)
		g.classes[ci] = ca
		for _, fd := range ci.decl.Fields {
			var fi *fieldInfo
			if fd.Static {
				fi = ci.statics[fd.Name]
				g.fields[fi] = ca.Static(fd.Name, kindOf(fd.Type))
			} else {
				fi = ci.fields[fd.Name]
				g.fields[fi] = ca.Field(fd.Name, kindOf(fd.Type))
			}
		}
	}
	for _, ci := range g.ck.order {
		ca := g.classes[ci]
		decl := func(mi *methodInfo) {
			md := mi.decl
			params := make([]bc.Kind, len(md.Params))
			for i, p := range md.Params {
				params[i] = kindOf(p.Type)
			}
			g.methods[mi] = ca.Method(md.Name, params, kindOf(mi.ret()), md.Static)
		}
		if ci.ctor != nil {
			decl(ci.ctor)
		}
		for _, md := range ci.decl.Methods {
			if !md.IsCtor {
				decl(ci.methods[md.Name])
			}
		}
	}
	return nil
}

func (g *gen) bodies() error {
	for _, ci := range g.ck.order {
		mis := make([]*methodInfo, 0, len(ci.decl.Methods))
		if ci.ctor != nil {
			mis = append(mis, ci.ctor)
		}
		for _, md := range ci.decl.Methods {
			if !md.IsCtor {
				mis = append(mis, ci.methods[md.Name])
			}
		}
		for _, mi := range mis {
			fg := &fngen{g: g, mi: mi, ma: g.methods[mi]}
			if err := fg.run(); err != nil {
				return err
			}
		}
	}
	return nil
}

// loopCtx tracks the labels and the synchronized/try nesting of one loop.
type loopCtx struct {
	contLabel  string
	breakLabel string
	syncDepth  int
	tryDepth   int
}

// tryCtx tracks one enclosing try statement during emission: its finally
// body (nil when absent), the synchronized nesting at entry, and the
// exception-coverage segments collected so far. Segments are split
// ("holes") around inline finally copies emitted for abrupt exits, so
// handler coverage matches Java scoping: a finally copy is never covered
// by its own try or by anything nested inside it, while outer tries —
// which the finally is lexically inside — keep covering it.
type tryCtx struct {
	fin       []Stmt
	syncDepth int
	segs      []excSeg
	openStart string // label opening the current segment; "" when closed
	inBody    bool   // emitting the try body: typed catches cover it
}

type excSeg struct {
	start, end string
	body       bool // opened during the try body (typed-catch coverage)
}

// close ends the currently open coverage segment at label `at`.
func (t *tryCtx) close(at string) {
	if t.openStart == "" {
		return
	}
	t.segs = append(t.segs, excSeg{start: t.openStart, end: at, body: t.inBody})
	t.openStart = ""
}

// fngen generates one method body.
type fngen struct {
	g  *gen
	mi *methodInfo
	ma *bc.MethodAsm

	labelSeq int
	// syncSlots holds the local slots of lock temporaries for all
	// currently entered synchronized blocks.
	syncSlots []int
	loops     []loopCtx
	tries     []*tryCtx
}

func (f *fngen) label() string {
	f.labelSeq++
	return fmt.Sprintf("L%d", f.labelSeq)
}

func (f *fngen) run() error {
	md := f.mi.decl
	// Parameter slots: receiver is slot 0 for instance methods.
	base := 0
	if !md.Static {
		base = 1
	}
	for i, v := range f.mi.paramVars {
		v.slot = base + i
	}
	if err := f.stmts(md.Body); err != nil {
		return err
	}
	// Implicit trailing return for void methods and constructors.
	if kindOf(f.mi.ret()) == bc.KindVoid && !returnsAll(md.Body) {
		f.ma.Return()
	}
	return nil
}

func (f *fngen) stmts(body []Stmt) error {
	for _, s := range body {
		if err := f.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (f *fngen) stmt(s Stmt) error {
	switch s := s.(type) {
	case *VarDeclStmt:
		f.ma.SetLine(s.Line)
		v := s.Binding.(*localVar)
		v.slot = f.ma.NewLocal(kindOf(v.typ))
		if err := f.expr(s.Init); err != nil {
			return err
		}
		f.ma.Store(v.slot)
		return nil
	case *AssignStmt:
		f.ma.SetLine(s.Line)
		return f.assign(s)
	case *IfStmt:
		f.ma.SetLine(s.Line)
		elseL, endL := f.label(), f.label()
		if err := f.condJump(s.Cond, elseL, false); err != nil {
			return err
		}
		if err := f.stmts(s.Then); err != nil {
			return err
		}
		if len(s.Else) > 0 {
			f.ma.Goto(endL)
		}
		f.ma.Label(elseL)
		if len(s.Else) > 0 {
			if err := f.stmts(s.Else); err != nil {
				return err
			}
			f.ma.Label(endL)
		}
		return nil
	case *WhileStmt:
		f.ma.SetLine(s.Line)
		head, end := f.label(), f.label()
		f.ma.Label(head)
		if err := f.condJump(s.Cond, end, false); err != nil {
			return err
		}
		f.loops = append(f.loops, loopCtx{contLabel: head, breakLabel: end,
			syncDepth: len(f.syncSlots), tryDepth: len(f.tries)})
		err := f.stmts(s.Body)
		f.loops = f.loops[:len(f.loops)-1]
		if err != nil {
			return err
		}
		f.ma.Goto(head)
		f.ma.Label(end)
		return nil
	case *ForStmt:
		f.ma.SetLine(s.Line)
		if s.Init != nil {
			if err := f.stmt(s.Init); err != nil {
				return err
			}
		}
		head, cont, end := f.label(), f.label(), f.label()
		f.ma.Label(head)
		if s.Cond != nil {
			if err := f.condJump(s.Cond, end, false); err != nil {
				return err
			}
		}
		f.loops = append(f.loops, loopCtx{contLabel: cont, breakLabel: end,
			syncDepth: len(f.syncSlots), tryDepth: len(f.tries)})
		err := f.stmts(s.Body)
		f.loops = f.loops[:len(f.loops)-1]
		if err != nil {
			return err
		}
		f.ma.Label(cont)
		if s.Post != nil {
			if err := f.stmt(s.Post); err != nil {
				return err
			}
		}
		f.ma.Goto(head)
		f.ma.Label(end)
		return nil
	case *BreakStmt:
		l := f.loops[len(f.loops)-1]
		return f.abruptExit(l.tryDepth, l.syncDepth, func() { f.ma.Goto(l.breakLabel) })
	case *ContinueStmt:
		l := f.loops[len(f.loops)-1]
		return f.abruptExit(l.tryDepth, l.syncDepth, func() { f.ma.Goto(l.contLabel) })
	case *ReturnStmt:
		f.ma.SetLine(s.Line)
		if s.Value != nil {
			if err := f.expr(s.Value); err != nil {
				return err
			}
			// Inline finally copies between here and the return run with
			// an empty stack; spill the return value to a slot and reload
			// it at the jump itself.
			for _, t := range f.tries {
				if t.fin != nil {
					tmp := f.ma.NewLocal(kindOf(s.Value.typ()))
					f.ma.Store(tmp)
					return f.abruptExit(0, 0, func() { f.ma.Load(tmp).ReturnValue() })
				}
			}
			return f.abruptExit(0, 0, func() { f.ma.ReturnValue() })
		}
		return f.abruptExit(0, 0, func() { f.ma.Return() })
	case *ExprStmt:
		f.ma.SetLine(s.Line)
		call := s.X.(*CallExpr)
		if err := f.expr(call); err != nil {
			return err
		}
		if kindOf(call.T) != bc.KindVoid {
			f.ma.Pop()
		}
		return nil
	case *PrintStmt:
		f.ma.SetLine(s.Line)
		if err := f.expr(s.X); err != nil {
			return err
		}
		f.ma.Print()
		return nil
	case *SyncStmt:
		f.ma.SetLine(s.Line)
		if err := f.expr(s.Lock); err != nil {
			return err
		}
		slot := f.ma.NewLocal(bc.KindRef)
		f.ma.Dup().Store(slot).MonitorEnter()
		f.syncSlots = append(f.syncSlots, slot)
		err := f.stmts(s.Body)
		f.syncSlots = f.syncSlots[:len(f.syncSlots)-1]
		if err != nil {
			return err
		}
		if !returnsAll(s.Body) {
			f.ma.Load(slot).MonitorExit()
		}
		return nil
	case *ThrowStmt:
		f.ma.SetLine(s.Line)
		if err := f.expr(s.X); err != nil {
			return err
		}
		f.ma.Throw()
		return nil
	case *TryStmt:
		return f.tryStmt(s)
	case *BlockStmt:
		return f.stmts(s.Body)
	default:
		return fmt.Errorf("mj: codegen: unknown statement %T", s)
	}
}

// releaseSyncs releases monitors entered between nesting depths to and
// from (from >= to), innermost first.
func (f *fngen) releaseSyncs(from, to int) {
	for i := from - 1; i >= to; i-- {
		f.ma.Load(f.syncSlots[i]).MonitorExit()
	}
}

// abruptExit emits the monitor releases and finally copies owed by a
// return, break, or continue crossing tries down to tryDepth and
// synchronized blocks down to syncDepth, then the jump itself via
// emitJump. Coverage segments of crossed tries are split around each
// inline finally copy (see tryCtx): the copy of try i's finally leaves
// the coverage of i and everything nested inside it, but stays inside
// outer tries' coverage.
func (f *fngen) abruptExit(tryDepth, syncDepth int, emitJump func()) error {
	anyFin := false
	for _, t := range f.tries[tryDepth:] {
		if t.fin != nil {
			anyFin = true
		}
	}
	if !anyFin {
		f.releaseSyncs(len(f.syncSlots), syncDepth)
		emitJump()
		return nil
	}
	saved := f.tries
	closedFrom := len(saved) // tries at index >= closedFrom are closed
	syncs := len(f.syncSlots)
	for i := len(saved) - 1; i >= tryDepth; i-- {
		t := saved[i]
		if t.fin == nil {
			continue
		}
		f.releaseSyncs(syncs, t.syncDepth)
		syncs = t.syncDepth
		if i < closedFrom {
			at := f.label()
			f.ma.Label(at)
			for j := closedFrom - 1; j >= i; j-- {
				saved[j].close(at)
			}
			closedFrom = i
		}
		// A return inside this finally copy re-runs only outer finallys.
		f.tries = saved[:i]
		err := f.stmts(t.fin)
		f.tries = saved
		if err != nil {
			return err
		}
	}
	f.releaseSyncs(syncs, syncDepth)
	emitJump()
	if closedFrom < len(saved) {
		at := f.label()
		f.ma.Label(at)
		for j := closedFrom; j < len(saved); j++ {
			saved[j].openStart = at
		}
	}
	return nil
}

// tryStmt lowers try/catch/finally onto the exception table. Layout:
//
//	Ls:  body                     ─ typed catches + catch-all cover this
//	Le:  goto norm
//	Hi:  store eᵢ; catch body;    ─ only the catch-all covers these
//	     goto norm                  (an exception in a catch runs finally)
//	Lce:
//	Hf:  store tmp; finally;      ─ uncovered: exceptions here propagate
//	     load tmp; throw            and finally never re-runs
//	norm: finally                 ─ normal-completion copy, uncovered
//
// Table order is typed entries first (declaration order, first match
// wins), then the finally's catch-all. Rethrow after finally restores the
// caught object; an intrinsic trap was bound as null, so its rethrow
// surfaces as a fresh "null throw" — a documented approximation.
func (f *fngen) tryStmt(s *TryStmt) error {
	f.ma.SetLine(s.Line)
	start := f.label()
	f.ma.Label(start)
	ctx := &tryCtx{fin: s.Finally, syncDepth: len(f.syncSlots), openStart: start, inBody: true}
	f.tries = append(f.tries, ctx)
	pop := func() { f.tries = f.tries[:len(f.tries)-1] }
	if err := f.stmts(s.Body); err != nil {
		pop()
		return err
	}
	bodyEnd := f.label()
	f.ma.Label(bodyEnd)
	ctx.close(bodyEnd)
	ctx.inBody = false
	norm := f.label()
	f.ma.Goto(norm)
	type handlerEntry struct {
		label string
		class *bc.Class
	}
	var handlers []handlerEntry
	for i, cc := range s.Catches {
		h := f.label()
		f.ma.Label(h)
		if i == 0 && s.Finally != nil {
			ctx.openStart = h
		}
		handlers = append(handlers, handlerEntry{
			label: h,
			class: f.g.classes[f.g.ck.classes[cc.Class]].Ref(),
		})
		v := cc.Binding.(*localVar)
		v.slot = f.ma.NewLocal(bc.KindRef)
		f.ma.Store(v.slot)
		if err := f.stmts(cc.Body); err != nil {
			pop()
			return err
		}
		f.ma.Goto(norm)
	}
	if s.Finally != nil && len(s.Catches) > 0 {
		catchEnd := f.label()
		f.ma.Label(catchEnd)
		ctx.close(catchEnd)
	}
	pop()
	var allHandler string
	if s.Finally != nil {
		allHandler = f.label()
		f.ma.Label(allHandler)
		tmp := f.ma.NewLocal(bc.KindRef)
		f.ma.Store(tmp)
		if err := f.stmts(s.Finally); err != nil {
			return err
		}
		if !returnsAll(s.Finally) {
			f.ma.Load(tmp).Throw()
		}
	}
	f.ma.Label(norm)
	if s.Finally != nil {
		if err := f.stmts(s.Finally); err != nil {
			return err
		}
	}
	for _, h := range handlers {
		for _, seg := range ctx.segs {
			if seg.body {
				f.ma.Exception(seg.start, seg.end, h.label, h.class)
			}
		}
	}
	if s.Finally != nil {
		for _, seg := range ctx.segs {
			f.ma.Exception(seg.start, seg.end, allHandler, nil)
		}
	}
	return nil
}

func (f *fngen) assign(s *AssignStmt) error {
	switch t := s.Target.(type) {
	case *IdentExpr:
		switch b := t.Binding.(type) {
		case *localVar:
			if err := f.expr(s.Value); err != nil {
				return err
			}
			f.ma.Store(b.slot)
		case *fieldInfo:
			if b.static {
				if err := f.expr(s.Value); err != nil {
					return err
				}
				f.ma.PutStatic(f.g.fields[b])
			} else {
				f.ma.Load(0)
				if err := f.expr(s.Value); err != nil {
					return err
				}
				f.ma.PutField(f.g.fields[b])
			}
		default:
			return fmt.Errorf("mj: codegen: unresolved identifier %s", t.Name)
		}
		return nil
	case *FieldExpr:
		fi := t.Ref.(*fieldInfo)
		if fi.static {
			if err := f.expr(s.Value); err != nil {
				return err
			}
			f.ma.PutStatic(f.g.fields[fi])
			return nil
		}
		if err := f.expr(t.Obj); err != nil {
			return err
		}
		if err := f.expr(s.Value); err != nil {
			return err
		}
		f.ma.PutField(f.g.fields[fi])
		return nil
	case *IndexExpr:
		if err := f.expr(t.Arr); err != nil {
			return err
		}
		if err := f.expr(t.Idx); err != nil {
			return err
		}
		if err := f.expr(s.Value); err != nil {
			return err
		}
		f.ma.ArrayStore(kindOf(t.T))
		return nil
	default:
		return fmt.Errorf("mj: codegen: bad assignment target %T", t)
	}
}

var arithOps = map[string]bc.Op{
	"+": bc.OpAdd, "-": bc.OpSub, "*": bc.OpMul, "/": bc.OpDiv, "%": bc.OpRem,
	"&": bc.OpAnd, "|": bc.OpOr, "^": bc.OpXor,
	"<<": bc.OpShl, ">>": bc.OpShr, ">>>": bc.OpUShr,
}

var cmpOps = map[string]bc.Cond{
	"==": bc.CondEQ, "!=": bc.CondNE,
	"<": bc.CondLT, "<=": bc.CondLE, ">": bc.CondGT, ">=": bc.CondGE,
}

// expr generates code leaving the expression's value on the stack.
func (f *fngen) expr(e Expr) error {
	switch e := e.(type) {
	case *IntLit:
		f.ma.Const(e.Val)
	case *BoolLit:
		if e.Val {
			f.ma.Const(1)
		} else {
			f.ma.Const(0)
		}
	case *NullLit:
		f.ma.ConstNull()
	case *ThisExpr:
		f.ma.Load(0)
	case *IdentExpr:
		switch b := e.Binding.(type) {
		case *localVar:
			f.ma.Load(b.slot)
		case *fieldInfo:
			if b.static {
				f.ma.GetStatic(f.g.fields[b])
			} else {
				f.ma.Load(0).GetField(f.g.fields[b])
			}
		default:
			return fmt.Errorf("mj: codegen: unresolved identifier %s", e.Name)
		}
	case *FieldExpr:
		fi := e.Ref.(*fieldInfo)
		if fi.static {
			f.ma.GetStatic(f.g.fields[fi])
			return nil
		}
		if err := f.expr(e.Obj); err != nil {
			return err
		}
		f.ma.GetField(f.g.fields[fi])
	case *IndexExpr:
		if err := f.expr(e.Arr); err != nil {
			return err
		}
		if err := f.expr(e.Idx); err != nil {
			return err
		}
		f.ma.ArrayLoad(kindOf(e.T))
	case *LenExpr:
		if err := f.expr(e.Arr); err != nil {
			return err
		}
		f.ma.ArrayLen()
	case *CallExpr:
		mi := e.Ref.(*methodInfo)
		if !mi.decl.Static {
			if e.Obj != nil {
				if err := f.expr(e.Obj); err != nil {
					return err
				}
			} else {
				f.ma.Load(0) // implicit this
			}
		}
		for _, a := range e.Args {
			if err := f.expr(a); err != nil {
				return err
			}
		}
		if mi.decl.Static {
			f.ma.InvokeStatic(f.g.methods[mi].Ref())
		} else {
			f.ma.InvokeVirtual(f.g.methods[mi].Ref())
		}
	case *NewExpr:
		ci := f.g.ck.classes[e.Class]
		f.ma.New(f.g.classes[ci].Ref())
		if ci.ctor != nil {
			f.ma.Dup()
			for _, a := range e.Args {
				if err := f.expr(a); err != nil {
					return err
				}
			}
			f.ma.InvokeDirect(f.g.methods[ci.ctor].Ref())
		}
	case *NewArrayExpr:
		if err := f.expr(e.Len); err != nil {
			return err
		}
		f.ma.NewArray(kindOf(e.Elem))
	case *UnaryExpr:
		switch e.Op {
		case "-":
			if err := f.expr(e.X); err != nil {
				return err
			}
			f.ma.Neg()
		case "~":
			if err := f.expr(e.X); err != nil {
				return err
			}
			f.ma.Const(-1).Arith(bc.OpXor)
		case "!":
			if err := f.expr(e.X); err != nil {
				return err
			}
			f.ma.Const(1).Arith(bc.OpXor)
		}
	case *BinaryExpr:
		switch e.Op {
		case "&&", "||":
			return f.boolViaBranches(e)
		case "==", "!=":
			if e.L.typ().isRef() {
				return f.boolViaBranches(e)
			}
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.Cmp(cmpOps[e.Op])
		case "<", "<=", ">", ">=":
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.Cmp(cmpOps[e.Op])
		default:
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.Arith(arithOps[e.Op])
		}
	case *InstanceOfExpr:
		if err := f.expr(e.X); err != nil {
			return err
		}
		f.ma.InstanceOf(f.g.classes[f.g.ck.classes[e.Class]].Ref())
	case *RandExpr:
		mod := int64(0)
		if e.Mod != nil {
			mod = e.Mod.(*IntLit).Val
		}
		f.ma.Rand(mod)
	default:
		return fmt.Errorf("mj: codegen: unknown expression %T", e)
	}
	return nil
}

// boolViaBranches materializes a boolean value for expressions that only
// have branching forms (short-circuit operators, reference comparisons).
func (f *fngen) boolViaBranches(e Expr) error {
	trueL, endL := f.label(), f.label()
	if err := f.condJump(e, trueL, true); err != nil {
		return err
	}
	f.ma.Const(0).Goto(endL)
	f.ma.Label(trueL).Const(1)
	f.ma.Label(endL)
	return nil
}

// condJump emits a jump to label when e evaluates to whenTrue, falling
// through otherwise.
func (f *fngen) condJump(e Expr, label string, whenTrue bool) error {
	switch e := e.(type) {
	case *BoolLit:
		if e.Val == whenTrue {
			f.ma.Goto(label)
		}
		return nil
	case *UnaryExpr:
		if e.Op == "!" {
			return f.condJump(e.X, label, !whenTrue)
		}
	case *BinaryExpr:
		switch e.Op {
		case "&&":
			if whenTrue {
				skip := f.label()
				if err := f.condJump(e.L, skip, false); err != nil {
					return err
				}
				if err := f.condJump(e.R, label, true); err != nil {
					return err
				}
				f.ma.Label(skip)
				return nil
			}
			if err := f.condJump(e.L, label, false); err != nil {
				return err
			}
			return f.condJump(e.R, label, false)
		case "||":
			if whenTrue {
				if err := f.condJump(e.L, label, true); err != nil {
					return err
				}
				return f.condJump(e.R, label, true)
			}
			skip := f.label()
			if err := f.condJump(e.L, skip, true); err != nil {
				return err
			}
			if err := f.condJump(e.R, label, false); err != nil {
				return err
			}
			f.ma.Label(skip)
			return nil
		case "==", "!=":
			cond := cmpOps[e.Op]
			if !whenTrue {
				cond = cond.Negate()
			}
			if e.L.typ().isRef() {
				// Prefer IfNull when one side is the null literal.
				if _, ok := e.R.(*NullLit); ok {
					if err := f.expr(e.L); err != nil {
						return err
					}
					f.ma.IfNull(cond, label)
					return nil
				}
				if _, ok := e.L.(*NullLit); ok {
					if err := f.expr(e.R); err != nil {
						return err
					}
					f.ma.IfNull(cond, label)
					return nil
				}
				if err := f.expr(e.L); err != nil {
					return err
				}
				if err := f.expr(e.R); err != nil {
					return err
				}
				f.ma.IfRef(cond, label)
				return nil
			}
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.IfCmp(cond, label)
			return nil
		case "<", "<=", ">", ">=":
			cond := cmpOps[e.Op]
			if !whenTrue {
				cond = cond.Negate()
			}
			if err := f.expr(e.L); err != nil {
				return err
			}
			if err := f.expr(e.R); err != nil {
				return err
			}
			f.ma.IfCmp(cond, label)
			return nil
		}
	}
	// Generic boolean value.
	if err := f.expr(e); err != nil {
		return err
	}
	if whenTrue {
		f.ma.If(bc.CondNE, label)
	} else {
		f.ma.If(bc.CondEQ, label)
	}
	return nil
}
