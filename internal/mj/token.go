// Package mj implements MiniJava, a small Java-like language that compiles
// to the bc bytecode: classes with single inheritance, instance and static
// fields, constructors, virtual methods, int/boolean/reference/array types,
// synchronized blocks, and the print/rand intrinsics. It exists so that
// the paper's examples (Listings 1–8) and the benchmark workloads can be
// written as source instead of hand-assembled bytecode.
package mj

import "fmt"

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokKeyword
	tokPunct
)

type token struct {
	kind tokenKind
	text string
	val  int64
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokInt:
		return fmt.Sprintf("%d", t.val)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

var keywords = map[string]bool{
	"class": true, "extends": true, "static": true, "int": true,
	"boolean": true, "void": true, "if": true, "else": true,
	"while": true, "return": true, "new": true, "null": true,
	"true": true, "false": true, "this": true, "synchronized": true,
	"instanceof": true, "throw": true, "print": true, "rand": true,
	"for": true, "break": true, "continue": true,
	"try": true, "catch": true, "finally": true,
}

// Error is a positioned front-end error.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("mj:%d:%d: %s", e.Line, e.Col, e.Msg) }

func errf(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token.
func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			line, col := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return token{}, errf(line, col, "unterminated block comment")
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: lx.line, col: lx.col}, nil

scan:
	line, col := lx.line, lx.col
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	case isDigit(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		var v int64
		for _, d := range text {
			v = v*10 + int64(d-'0')
		}
		return token{kind: tokInt, text: text, val: v, line: line, col: col}, nil
	default:
		// Multi-character operators, longest first.
		for _, op := range []string{
			">>>=", "<<=", ">>=", ">>>", "&&", "||", "==", "!=", "<=",
			">=", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
		} {
			if len(lx.src)-lx.pos >= len(op) && lx.src[lx.pos:lx.pos+len(op)] == op {
				for range op {
					lx.advance()
				}
				return token{kind: tokPunct, text: op, line: line, col: col}, nil
			}
		}
		switch c {
		case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^',
			'(', ')', '{', '}', '[', ']', ';', ',', '.', '~':
			lx.advance()
			return token{kind: tokPunct, text: string(c), line: line, col: col}, nil
		}
		return token{}, errf(line, col, "unexpected character %q", string(c))
	}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
