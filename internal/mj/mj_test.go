package mj

import (
	"strings"
	"testing"

	"pea/internal/interp"
	"pea/internal/rt"
	"pea/internal/vm"
)

// runMain compiles and interprets Main.main, returning the printed output.
func runMain(t *testing.T, src string) []int64 {
	t.Helper()
	prog, err := Compile(src, "Main.main")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	env := rt.NewEnv(prog, 1)
	it := interp.New(env)
	it.MaxSteps = 5_000_000
	if _, err := it.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return env.Output
}

func wantOutput(t *testing.T, src string, want ...int64) {
	t.Helper()
	got := runMain(t, src)
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestHelloArithmetic(t *testing.T) {
	wantOutput(t, `
		class Main {
			static void main() {
				print(6 * 7);
				print(10 - 3 * 2);
				print((10 - 3) * 2);
				print(17 / 5);
				print(17 % 5);
				print(-5 + 1);
				print(1 << 10);
				print(-16 >> 2);
				print(-1 >>> 62);
				print(12 & 10);
				print(12 | 10);
				print(12 ^ 10);
				print(~0);
			}
		}`,
		42, 4, 14, 3, 2, -4, 1024, -4, 3, 8, 14, 6, -1)
}

func TestControlFlow(t *testing.T) {
	wantOutput(t, `
		class Main {
			static void main() {
				int s = 0;
				for (int i = 0; i < 10; i++) {
					if (i % 2 == 0) { continue; }
					if (i == 9) { break; }
					s += i;
				}
				print(s);
				int j = 0;
				while (j < 5) { j = j + 2; }
				print(j);
			}
		}`,
		1+3+5+7, 6)
}

func TestBooleansAndShortCircuit(t *testing.T) {
	wantOutput(t, `
		class Main {
			static int calls;
			static boolean bump() { calls = calls + 1; return true; }
			static void main() {
				boolean a = true && false;
				print(a);
				print(!a);
				if (false && bump()) { print(99); }
				if (true || bump()) { print(1); }
				print(calls);
				print(3 < 4 && 4 <= 4 && 5 > 4 && 4 >= 4 && 1 == 1 && 1 != 2);
			}
		}`,
		0, 1, 1, 0, 1)
}

func TestObjectsAndConstructors(t *testing.T) {
	wantOutput(t, `
		class Point {
			int x;
			int y;
			Point(int x, int y) { this.x = x; this.y = y; }
			int dot(Point o) { return x * o.x + y * o.y; }
		}
		class Main {
			static void main() {
				Point a = new Point(3, 4);
				Point b = new Point(1, 2);
				print(a.dot(b));
				a.x = 10;
				print(a.dot(b));
			}
		}`,
		11, 18)
}

func TestInheritanceAndOverride(t *testing.T) {
	wantOutput(t, `
		class Animal {
			int legs;
			int noise() { return 0; }
			int describe() { return noise() * 100 + legs; }
		}
		class Dog extends Animal {
			int noise() { return 2; }
		}
		class Main {
			static void main() {
				Animal a = new Animal();
				a.legs = 4;
				Dog d = new Dog();
				d.legs = 4;
				print(a.describe());
				print(d.describe());
				Animal x = d;
				print(x.noise());
				print(x instanceof Dog);
				print(a instanceof Dog);
				print(x instanceof Animal);
			}
		}`,
		4, 204, 2, 1, 0, 1)
}

func TestArraysAndLength(t *testing.T) {
	wantOutput(t, `
		class Main {
			static void main() {
				int[] a = new int[5];
				for (int i = 0; i < a.length; i++) { a[i] = i * i; }
				int s = 0;
				for (int i = 0; i < a.length; i++) { s += a[i]; }
				print(s);
				int[][] m = new int[3][];
				m[0] = a;
				print(m[0][4]);
				print(m.length);
			}
		}`,
		30, 16, 3)
}

func TestStaticsAndQualifiedAccess(t *testing.T) {
	wantOutput(t, `
		class Counter {
			static int n;
			static int next() { n = n + 1; return n; }
		}
		class Main {
			static void main() {
				print(Counter.next());
				print(Counter.next());
				Counter.n = 10;
				print(Counter.next());
				print(Counter.n);
			}
		}`,
		1, 2, 11, 11)
}

func TestNullAndRefEquality(t *testing.T) {
	wantOutput(t, `
		class Box { int v; }
		class Main {
			static void main() {
				Box a = new Box();
				Box b = new Box();
				Box c = a;
				print(a == c);
				print(a == b);
				print(a != b);
				print(a == null);
				Box d = null;
				print(d == null);
			}
		}`,
		1, 0, 1, 0, 1)
}

func TestSynchronizedGeneratesMonitors(t *testing.T) {
	src := `
		class Main {
			static int main2(Main m) {
				synchronized (m) {
					return 42;
				}
			}
			static void main() {
				print(main2(new Main()));
			}
		}`
	prog, err := Compile(src, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(prog, 1)
	it := interp.New(env)
	if _, err := it.Run(); err != nil {
		t.Fatal(err)
	}
	// Return from inside synchronized must still release the monitor.
	if env.Stats.MonitorOps != 2 {
		t.Fatalf("monitor ops = %d, want 2", env.Stats.MonitorOps)
	}
	if env.Output[0] != 42 {
		t.Fatalf("output = %v", env.Output)
	}
}

func TestSyncBreakUnwinds(t *testing.T) {
	wantOutput(t, `
		class Box { int v; }
		class Main {
			static void main() {
				Box b = new Box();
				int i = 0;
				while (i < 3) {
					synchronized (b) {
						i = i + 1;
						if (i == 2) { break; }
					}
				}
				print(i);
			}
		}`,
		2)
}

func TestRecursionFib(t *testing.T) {
	wantOutput(t, `
		class Main {
			static int fib(int n) {
				if (n < 2) { return n; }
				return fib(n - 1) + fib(n - 2);
			}
			static void main() { print(fib(15)); }
		}`,
		610)
}

func TestRandDeterministic(t *testing.T) {
	src := `
		class Main {
			static void main() {
				int a = rand(100);
				int b = rand(100);
				print(a >= 0 && a < 100);
				print(b >= 0 && b < 100);
			}
		}`
	wantOutput(t, src, 1, 1)
}

func TestThrowAborts(t *testing.T) {
	src := `
		class Err { int code; }
		class Main {
			static void main() {
				print(1);
				throw new Err();
			}
		}`
	prog, err := Compile(src, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	env := rt.NewEnv(prog, 1)
	it := interp.New(env)
	_, err = it.Run()
	if err == nil || !strings.Contains(err.Error(), "uncaught exception") {
		t.Fatalf("got %v, want uncaught exception", err)
	}
}

func TestCompoundAssignAndIncrement(t *testing.T) {
	wantOutput(t, `
		class Main {
			static void main() {
				int x = 10;
				x += 5; print(x);
				x -= 3; print(x);
				x *= 2; print(x);
				x /= 4; print(x);
				x %= 4; print(x);
				x++; print(x);
				x--; x--; print(x);
				x <<= 4; print(x);
			}
		}`,
		15, 12, 24, 6, 2, 3, 1, 16)
}

func TestCheckerErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown type", `class Main { static void main() { Foo f = null; } }`, "unknown type Foo"},
		{"undefined var", `class Main { static void main() { print(x); } }`, "undefined: x"},
		{"type mismatch", `class Main { static void main() { int x = true; } }`, "cannot initialize"},
		{"bad condition", `class Main { static void main() { if (1) { } } }`, "must be boolean"},
		{"missing return", `class Main { static int f() { int x = 1; } static void main() { } }`, "missing return"},
		{"this in static", `class Main { static void main() { Main m = this; } }`, "this in a static method"},
		{"arg count", `class Main { static int f(int a) { return a; } static void main() { print(f()); } }`, "expects 1 arguments"},
		{"break outside loop", `class Main { static void main() { break; } }`, "break outside"},
		{"void field", `class Main { void x; static void main() { } }`, "cannot have type void"},
		{"dup class", `class A { } class A { } class Main { static void main() { } }`, "duplicate class"},
		{"bad compare", `class Box { } class Main { static void main() { print(new Box() == 1); } }`, "cannot compare"},
		{"instance from static", `class Main { int f() { return 1; } static void main() { print(f()); } }`, "static context"},
		{"assign to call", `class Main { static int f() { return 1; } static void main() { f() = 2; } }`, "not assignable"},
		{"expr stmt", `class Main { static void main() { 1 + 2; } }`, "must be a call"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, "Main.main")
			if err == nil {
				t.Fatalf("compiled successfully, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParserErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"missing brace", `class Main {`, "expected"},
		{"stray token", `class Main { static void main() { print(1) } }`, "expected"},
		{"bad char", `class Main { static void main() { print(@); } }`, "unexpected character"},
		{"unterminated comment", `class Main { /*`, "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile(tc.src, "Main.main")
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want %q", err, tc.want)
			}
		})
	}
}

// listing1 is the paper's Listing 1 in MiniJava, with a driver loop. The
// value cache pattern: getValue allocates a Key per call; on a hit the key
// is garbage, on a miss it escapes into the static cache.
const listing1 = `
class Key {
	int idx;
	Key(int idx) { this.idx = idx; }
	boolean equalsKey(Key other) {
		synchronized (this) {
			return other != null && idx == other.idx;
		}
	}
}
class Cache {
	static Key cacheKey;
	static int cacheValue;
}
class Main {
	static int createValue(int idx) { return idx * 31; }
	static int getValue(int idx) {
		Key key = new Key(idx);
		if (key.equalsKey(Cache.cacheKey)) {
			return Cache.cacheValue;
		} else {
			Cache.cacheKey = key;
			Cache.cacheValue = createValue(idx);
			return Cache.cacheValue;
		}
	}
	static void main() {
		int s = 0;
		for (int i = 0; i < 200; i++) {
			s += getValue(i / 8);
		}
		print(s);
	}
}
`

// TestPaperListing1EndToEnd compiles the paper's running example from
// MiniJava source and runs it through the full VM: with PEA the Key
// allocations on cache hits must disappear (paper Listings 1-6).
func TestPaperListing1EndToEnd(t *testing.T) {
	run := func(mode vm.EAMode) *vm.VM {
		prog, err := Compile(listing1, "Main.main")
		if err != nil {
			t.Fatal(err)
		}
		machine := vm.New(prog, vm.Options{EA: mode, CompileThreshold: 10, Validate: true, MaxSteps: 20_000_000})
		main := prog.Main
		// Warm up: interpret, compile, then measure steady state.
		for i := 0; i < 30; i++ {
			if _, err := machine.Call(main, nil); err != nil {
				t.Fatal(err)
			}
		}
		for m, cerr := range machine.FailedCompilations() {
			t.Fatalf("compile %s: %v", m.QualifiedName(), cerr)
		}
		base := machine.Env.Stats
		for i := 0; i < 10; i++ {
			if _, err := machine.Call(main, nil); err != nil {
				t.Fatal(err)
			}
		}
		machine.Env.Stats = machine.Env.Stats.Sub(base)
		return machine
	}

	noea := run(vm.EAOff)
	peavm := run(vm.EAPartial)

	// Each main() run calls getValue 200 times with 25 distinct keys
	// (one miss each); baseline allocates 200 Keys per run, PEA only 25.
	baseAllocs := noea.Env.Stats.Allocations
	peaAllocs := peavm.Env.Stats.Allocations
	if baseAllocs != 200*10 {
		t.Fatalf("baseline allocations = %d, want 2000", baseAllocs)
	}
	if peaAllocs != 25*10 {
		t.Fatalf("PEA allocations = %d, want 250 (misses only)", peaAllocs)
	}
	// The synchronized(this) in equalsKey is inlined and fully elided on
	// every path where the key stays virtual.
	if peavm.Env.Stats.MonitorOps >= noea.Env.Stats.MonitorOps {
		t.Fatalf("PEA monitor ops = %d, baseline %d", peavm.Env.Stats.MonitorOps, noea.Env.Stats.MonitorOps)
	}
	// Identical program behaviour.
	if len(noea.Env.Output) != len(peavm.Env.Output) {
		t.Fatal("outputs diverge")
	}
	for i := range noea.Env.Output {
		if noea.Env.Output[i] != peavm.Env.Output[i] {
			t.Fatalf("output[%d]: %d vs %d", i, noea.Env.Output[i], peavm.Env.Output[i])
		}
	}
}

// TestVMModesAgreeOnMJPrograms cross-checks a few MiniJava programs across
// all VM configurations.
func TestVMModesAgreeOnMJPrograms(t *testing.T) {
	srcs := map[string]string{
		"listing1": listing1,
		"builder": `
			class Node { int v; Node next; Node(int v, Node next) { this.v = v; this.next = next; } }
			class Main {
				static void main() {
					int total = 0;
					for (int r = 0; r < 50; r++) {
						Node head = null;
						for (int i = 0; i < 10; i++) { head = new Node(i, head); }
						int s = 0;
						while (head != null) { s += head.v; head = head.next; }
						total += s;
					}
					print(total);
				}
			}`,
		"tempsum": `
			class Pair { int a; int b; Pair(int a, int b) { this.a = a; this.b = b; } int sum() { return a + b; } }
			class Main {
				static void main() {
					int s = 0;
					for (int i = 0; i < 300; i++) {
						Pair p = new Pair(i, i * 2);
						s += p.sum();
					}
					print(s);
				}
			}`,
	}
	modes := []vm.Options{
		{Interpret: true},
		{EA: vm.EAOff},
		{EA: vm.EAFlowInsensitive},
		{EA: vm.EAPartial},
		{EA: vm.EAPartial, Speculate: true},
	}
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			var ref []int64
			for i, opts := range modes {
				prog, err := Compile(src, "Main.main")
				if err != nil {
					t.Fatal(err)
				}
				opts.MaxSteps = 50_000_000
				opts.Validate = true
				opts.CompileThreshold = 3
				machine := vm.New(prog, opts)
				for r := 0; r < 8; r++ {
					if _, err := machine.Run(); err != nil {
						t.Fatalf("mode %d: %v", i, err)
					}
				}
				for m, cerr := range machine.FailedCompilations() {
					t.Fatalf("mode %d: compile %s: %v", i, m.QualifiedName(), cerr)
				}
				if i == 0 {
					ref = machine.Env.Output
					continue
				}
				if len(machine.Env.Output) != len(ref) {
					t.Fatalf("mode %d: output length %d vs %d", i, len(machine.Env.Output), len(ref))
				}
				for j := range ref {
					if machine.Env.Output[j] != ref[j] {
						t.Fatalf("mode %d: output[%d] = %d, want %d", i, j, machine.Env.Output[j], ref[j])
					}
				}
			}
		})
	}
}
