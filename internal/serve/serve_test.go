package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pea/internal/bench"
	"pea/internal/check"
	"pea/internal/vm"
)

const tenantSrc = `
class Box {
	int v;
	Box(int v) {
		this.v = v;
	}
	int get() {
		return this.v;
	}
}
class Main {
	static Box kept;
	static int f(int i) {
		Box b = new Box(i * 2);
		if (i % 11 == 0) {
			Main.kept = b;
		}
		return b.get();
	}
	static void main() {
		int acc = 0;
		int i = 0;
		while (i < 120) {
			acc = acc + Main.f(i);
			i = i + 1;
		}
		print(acc);
	}
}
`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.CompileThreshold == 0 {
		opts.CompileThreshold = 5
	}
	if opts.CheckLevel == 0 {
		opts.CheckLevel = check.Basic
	}
	opts.EA = vm.EAPartial
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postRun(t *testing.T, url, source string, runs int) (*http.Response, RunResponse) {
	t.Helper()
	body, _ := json.Marshal(RunRequest{Source: source, Runs: runs})
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr RunResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, rr
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRunEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, rr := postRun(t, ts.URL, tenantSrc, 2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	if len(rr.Output) != 2 || rr.Output[0] != rr.Output[1] {
		t.Fatalf("output = %v, want two equal values", rr.Output)
	}
	if rr.CompiledMethods == 0 || rr.PipelineCompiles == 0 {
		t.Fatalf("hot methods never compiled: %+v", rr)
	}
	if rr.FailedCompiles != 0 {
		t.Fatalf("%d compiles failed", rr.FailedCompiles)
	}
}

func TestBadRequestsRejected(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxSourceBytes: 4096, MaxRuns: 4})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"syntax-error", `{"source": "class Main {", "runs": 1}`, http.StatusBadRequest},
		{"not-json", `this is not json`, http.StatusBadRequest},
		{"too-many-runs", fmt.Sprintf(`{"source": %q, "runs": 99}`, tenantSrc), http.StatusBadRequest},
		{"oversized", `{"source": "` + strings.Repeat("x", 8192) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %s, want %d", resp.Status, tc.status)
			}
		})
	}
	if got := s.badSource.Load(); got != int64(len(cases)) {
		t.Fatalf("rejected counter = %d, want %d", got, len(cases))
	}
	// The server is still healthy after the abuse.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after bad requests: %v %v", resp, err)
	}
	resp.Body.Close()
}

// TestTenantsShareCompiledArtifacts: concurrent tenants posting the same
// program share the broker's cache — the pipeline runs once per method, not
// once per tenant. Run under -race in CI.
func TestTenantsShareCompiledArtifacts(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	const tenants = 8
	var wg sync.WaitGroup
	errs := make(chan string, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(RunRequest{Source: tenantSrc, Runs: 2})
			resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- resp.Status
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	st := getStats(t, ts.URL)
	if st.Tenants != tenants {
		t.Fatalf("tenants = %d, want %d", st.Tenants, tenants)
	}
	// Every tenant shares one linked program, so each method compiled at
	// most once (dedup may make it exactly once; never once per tenant).
	if st.Broker.Compiled == 0 {
		t.Fatal("nothing compiled")
	}
	if st.Broker.Installed != st.Broker.Compiled+st.Broker.CacheHits+st.Broker.DiskHits ||
		st.Broker.CacheHits < int64(tenants-1) {
		t.Fatalf("no artifact sharing visible: compiled %d, cache hits %d, installed %d across %d tenants",
			st.Broker.Compiled, st.Broker.CacheHits, st.Broker.Installed, tenants)
	}
	if st.Programs != 1 {
		t.Fatalf("program memo holds %d entries, want 1", st.Programs)
	}
	if s.panicked.Load() != 0 {
		t.Fatalf("handler panics: %d", s.panicked.Load())
	}
}

// TestWarmRestartOverHTTP is the serving half of the tentpole: stop the
// server, start a fresh one on the same store directory, replay the same
// tenant traffic — zero pipeline compiles, everything from disk.
func TestWarmRestartOverHTTP(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, Options{StoreDir: dir})
	if resp, _ := postRun(t, ts1.URL, tenantSrc, 3); resp.StatusCode != http.StatusOK {
		t.Fatalf("cold run: %s", resp.Status)
	}
	cold := getStats(t, ts1.URL)
	if cold.Broker.Compiled == 0 || cold.StoreArtifacts == 0 {
		t.Fatalf("cold server persisted nothing: %+v", cold)
	}
	ts1.Close()

	_, ts2 := newTestServer(t, Options{StoreDir: dir})
	resp, rr := postRun(t, ts2.URL, tenantSrc, 3)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run: %s", resp.Status)
	}
	if rr.PipelineCompiles != 0 {
		t.Fatalf("warm restart ran the pipeline %d times", rr.PipelineCompiles)
	}
	if rr.CompiledMethods == 0 {
		t.Fatal("warm restart installed nothing (should replay from disk)")
	}
	warm := getStats(t, ts2.URL)
	if warm.Broker.DiskHits == 0 {
		t.Fatalf("no disk hits after restart: %+v", warm.Broker)
	}
	if warm.HitRate < 0.9 {
		t.Fatalf("warm hit rate %.2f, want >= 0.9", warm.HitRate)
	}
}

// TestLoadHarnessAgainstServer drives the real internal/bench harness at an
// in-process server — the same path cmd/peaload exercises in CI.
func TestLoadHarnessAgainstServer(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{StoreDir: dir})
	rep, err := bench.RunLoad(bench.LoadOptions{URL: ts.URL, Tenants: 8, Requests: 2, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors, first: %s", rep.Errors, rep.FirstError)
	}
	if rep.Requests != 16 || rep.Tenants != 8 {
		t.Fatalf("report shape: %+v", rep)
	}
	if rep.P50Ms <= 0 || rep.P99Ms < rep.P50Ms {
		t.Fatalf("nonsense latencies: p50=%v p99=%v", rep.P50Ms, rep.P99Ms)
	}
	if rep.PipelineCompiles == 0 || rep.HitRate == 0 {
		t.Fatalf("cache metrics missing: %+v", rep)
	}
	ts.Close()

	// Warm restart under the harness: fresh server, same store.
	_, ts2 := newTestServer(t, Options{StoreDir: dir})
	rep2, err := bench.RunLoad(bench.LoadOptions{URL: ts2.URL, Tenants: 8, Requests: 2, Runs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Errors != 0 {
		t.Fatalf("warm errors: %d (%s)", rep2.Errors, rep2.FirstError)
	}
	if rep2.PipelineCompiles != 0 {
		t.Fatalf("warm restart recompiled %d methods", rep2.PipelineCompiles)
	}
	if rep2.DiskHits == 0 || rep2.HitRate < 0.9 {
		t.Fatalf("warm restart cache metrics: %+v", rep2)
	}
}

// TestPanicContainedPerTenant: a compiler panic in one tenant's compile
// degrades that tenant's method to interpretation; the request still
// succeeds and the server keeps serving other tenants.
func TestPanicContainedPerTenant(t *testing.T) {
	_, ts := newTestServer(t, Options{
		InjectFault: func(point, method string) {
			if point == "pea" && strings.Contains(method, "Main.f") {
				panic("injected compiler bug")
			}
		},
	})
	resp, rr := postRun(t, ts.URL, tenantSrc, 2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant with poisoned compile got %s, want 200 (interpreted)", resp.Status)
	}
	if rr.FailedCompiles == 0 {
		t.Fatal("panic not recorded as a failed compile")
	}
	if len(rr.Output) != 2 || rr.Output[0] != rr.Output[1] {
		t.Fatalf("interpreted fallback broke the program: %v", rr.Output)
	}
}
