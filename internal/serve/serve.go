// Package serve is the multi-tenant VM server behind cmd/peaserve: a
// long-lived HTTP front end that accepts MiniJava programs, runs each
// tenant in its own VM — private code table, private profile, per-tenant
// compile budgets, the PR-5 fault containment — while every tenant shares
// one compile broker: one worker pool, one bounded in-memory code cache,
// and one content-addressed persistent artifact store. Because cache keys
// are content fingerprints, two tenants posting the same program share
// compiled artifacts, and a restarted server warm-starts from the store
// directory instead of recompiling its working set.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"pea/internal/bc"
	"pea/internal/broker"
	"pea/internal/check"
	"pea/internal/mj"
	"pea/internal/vm"
)

// Options configures a Server.
type Options struct {
	// EA selects the escape-analysis configuration tenants compile under.
	EA vm.EAMode
	// Backend selects the execution backend (default vm.BackendClosure is
	// NOT applied here; the zero value is the vm package default).
	Backend vm.Backend
	// CompileThreshold is the tenant VMs' hotness threshold (0 = vm default).
	CompileThreshold int64
	// CompileDeadline and MaxIRNodes are the per-tenant compile budgets: a
	// tenant whose program drives a compile past either bound degrades that
	// method to interpretation (transient failure, backoff) without
	// affecting other tenants sharing the worker pool.
	CompileDeadline time.Duration
	MaxIRNodes      int
	// CheckLevel is the sanitizer level for tenant compiles and for
	// re-verification of artifacts crossing the cache/store boundary.
	CheckLevel check.Level
	// Workers sizes the shared broker's background pool. 0 compiles
	// synchronously on request goroutines — still shared-cache, still
	// concurrent across tenants, and deterministic per tenant.
	Workers int
	// CacheEntries bounds the shared in-memory code cache
	// (0 = broker.DefaultCacheEntries).
	CacheEntries int
	// StoreDir, when non-empty, backs the shared cache with a persistent
	// artifact store rooted there. Restarting the server on the same
	// directory replays persisted artifacts instead of recompiling.
	StoreDir string
	// StoreMaxBytes bounds the store directory's total size; writes over
	// the bound expel the oldest-modified artifacts first (0 = unbounded).
	StoreMaxBytes int64
	// Summaries enables inter-procedural escape summaries for tenant
	// compiles (vm.Options.Summaries). The whole-program analysis is
	// amortized through the shared broker's memory tier and the store, so
	// tenants posting identical programs analyze once.
	Summaries bool
	// MaxSourceBytes bounds a request body (default 1 MiB).
	MaxSourceBytes int64
	// MaxRuns bounds the per-request run count (default 64).
	MaxRuns int
	// MaxPrograms bounds the linked-program memo (default 128). Tenants
	// posting byte-identical sources share one immutable *bc.Program.
	MaxPrograms int
	// InjectFault is threaded into tenant VMs (tests drive the containment
	// layer through it; see vm.Options.InjectFault).
	InjectFault func(point, method string)
}

func (o Options) maxSourceBytes() int64 {
	if o.MaxSourceBytes > 0 {
		return o.MaxSourceBytes
	}
	return 1 << 20
}

func (o Options) maxRuns() int {
	if o.MaxRuns > 0 {
		return o.MaxRuns
	}
	return 64
}

func (o Options) maxPrograms() int {
	if o.MaxPrograms > 0 {
		return o.MaxPrograms
	}
	return 128
}

// Server shares one broker across tenant VMs and serves the HTTP API:
//
//	POST /run     {"source": "...", "runs": N} → RunResponse
//	GET  /stats   → StatsResponse
//	GET  /healthz → 200 "ok"
type Server struct {
	opts  Options
	jit   *broker.Broker
	store *broker.Store
	mux   *http.ServeMux

	progMu sync.Mutex
	progs  map[uint64]*bc.Program

	tenants   atomic.Int64 // requests served (each is one tenant VM)
	active    atomic.Int64 // requests currently executing
	panicked  atomic.Int64 // handler panics contained (server stayed up)
	badSource atomic.Int64 // requests rejected at the front door
}

// New creates a Server. The store directory is opened (and created) up
// front so a misconfigured path fails at startup, not per request.
func New(opts Options) (*Server, error) {
	var store *broker.Store
	if opts.StoreDir != "" {
		var err error
		if store, err = broker.NewStore(opts.StoreDir); err != nil {
			return nil, err
		}
		store.SetMaxBytes(opts.StoreMaxBytes)
	}
	cacheMax := opts.CacheEntries
	if cacheMax == 0 {
		cacheMax = broker.DefaultCacheEntries
	}
	s := &Server{
		opts:  opts,
		store: store,
		jit: broker.New(broker.Options{
			Workers: opts.Workers,
			Cache:   broker.NewCacheSize(cacheMax),
			Store:   store,
			Check:   opts.CheckLevel,
		}),
		progs: make(map[uint64]*bc.Program),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

// ServeHTTP implements http.Handler with a panic boundary per request: a
// bug escaping the broker's per-compile containment kills the request, not
// the server (and not the other tenants).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.panicked.Add(1)
			http.Error(w, fmt.Sprintf("internal error: %v", rec), http.StatusInternalServerError)
			fmt.Fprintf(os.Stderr, "serve: contained handler panic: %v\n%s", rec, debug.Stack())
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Close shuts down the shared broker (drains background workers). In-flight
// HTTP requests are the http.Server's to drain.
func (s *Server) Close() { s.jit.Close() }

// Broker exposes the shared broker for tests and stats tooling.
func (s *Server) Broker() *broker.Broker { return s.jit }

// RunRequest is the POST /run payload.
type RunRequest struct {
	// Source is a MiniJava program with a static Main.main.
	Source string `json:"source"`
	// Runs is how many times to invoke Main.main (default 1). Later runs
	// execute whatever the JIT has installed.
	Runs int `json:"runs"`
}

// RunResponse reports one tenant's execution.
type RunResponse struct {
	// Output is everything the program printed, across all runs.
	Output []int64 `json:"output"`
	Runs   int     `json:"runs"`
	// CompiledMethods counts methods the tenant's VM installed (from the
	// pipeline or either cache tier); PipelineCompiles counts how many of
	// this request's submissions actually ran the pipeline (0 on a fully
	// warm cache).
	CompiledMethods  int64 `json:"compiled_methods"`
	PipelineCompiles int64 `json:"pipeline_compiles"`
	// FailedCompiles counts methods that permanently failed to compile and
	// degraded to interpretation (contained panics included).
	FailedCompiles int `json:"failed_compiles"`
	// WallNS is the server-side execution time of all runs.
	WallNS int64 `json:"wall_ns"`
}

// StatsResponse is the GET /stats payload.
type StatsResponse struct {
	Tenants  int64              `json:"tenants"`
	Active   int64              `json:"active"`
	Panicked int64              `json:"panicked"`
	Rejected int64              `json:"rejected_requests"`
	Programs int                `json:"programs"`
	Broker   broker.Stats       `json:"broker"`
	Store    *broker.StoreStats `json:"store,omitempty"`
	// HitRate is the fraction of submissions resolved without a pipeline
	// run, over both cache tiers: (CacheHits+DiskHits)/(CacheHits+CacheMisses).
	HitRate        float64 `json:"hit_rate"`
	CacheEntries   int     `json:"cache_entries"`
	CacheEvictions int64   `json:"cache_evictions"`
	StoreArtifacts int     `json:"store_artifacts,omitempty"`
}

// program links source, memoized by content hash so identical tenant
// programs share one immutable *bc.Program (and therefore hit the shared
// cache without rebinding). The memo is bounded; on overflow it is simply
// cleared — programs relink cheaply and artifacts live in the cache/store.
func (s *Server) program(source string) (*bc.Program, error) {
	h := fnv.New64a()
	h.Write([]byte(source))
	key := h.Sum64()
	s.progMu.Lock()
	if p, ok := s.progs[key]; ok {
		s.progMu.Unlock()
		return p, nil
	}
	s.progMu.Unlock()

	p, err := mj.Compile(source, "Main.main")
	if err != nil {
		return nil, err
	}
	s.progMu.Lock()
	if len(s.progs) >= s.opts.maxPrograms() {
		s.progs = make(map[uint64]*bc.Program)
	}
	s.progs[key] = p
	s.progMu.Unlock()
	return p, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RunRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.maxSourceBytes())
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.badSource.Add(1)
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, "source too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Runs <= 0 {
		req.Runs = 1
	}
	if req.Runs > s.opts.maxRuns() {
		s.badSource.Add(1)
		http.Error(w, fmt.Sprintf("runs capped at %d", s.opts.maxRuns()), http.StatusBadRequest)
		return
	}
	prog, err := s.program(req.Source)
	if err != nil {
		s.badSource.Add(1)
		http.Error(w, "compile error: "+err.Error(), http.StatusBadRequest)
		return
	}

	s.tenants.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)

	before := s.jit.Stats()
	machine := vm.New(prog, vm.Options{
		EA:               s.opts.EA,
		Backend:          s.opts.Backend,
		CompileThreshold: s.opts.CompileThreshold,
		CompileDeadline:  s.opts.CompileDeadline,
		MaxIRNodes:       s.opts.MaxIRNodes,
		CheckLevel:       s.opts.CheckLevel,
		Summaries:        s.opts.Summaries,
		InjectFault:      s.opts.InjectFault,
		JIT:              s.jit,
	})
	defer machine.Close()

	start := time.Now()
	for i := 0; i < req.Runs; i++ {
		if _, err := machine.Run(); err != nil {
			http.Error(w, fmt.Sprintf("run %d: %v", i, err), http.StatusUnprocessableEntity)
			return
		}
	}
	machine.DrainJIT()
	wall := time.Since(start)
	after := s.jit.Stats()

	resp := RunResponse{
		Output:           append([]int64(nil), machine.Env.Output...),
		Runs:             req.Runs,
		CompiledMethods:  machine.Stats().CompiledMethods,
		PipelineCompiles: after.Compiled - before.Compiled,
		FailedCompiles:   len(machine.FailedCompilations()),
		WallNS:           wall.Nanoseconds(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.statsLocked())
}

func (s *Server) statsLocked() StatsResponse {
	bs := s.jit.Stats()
	resp := StatsResponse{
		Tenants:        s.tenants.Load(),
		Active:         s.active.Load(),
		Panicked:       s.panicked.Load(),
		Rejected:       s.badSource.Load(),
		Broker:         bs,
		CacheEntries:   s.jit.Cache().Len(),
		CacheEvictions: s.jit.Cache().Evictions(),
	}
	s.progMu.Lock()
	resp.Programs = len(s.progs)
	s.progMu.Unlock()
	if lookups := bs.CacheHits + bs.CacheMisses; lookups > 0 {
		resp.HitRate = float64(bs.CacheHits+bs.DiskHits) / float64(lookups)
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
		resp.StoreArtifacts = s.store.Len()
	}
	return resp
}
