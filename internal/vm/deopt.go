package vm

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/obs/flight"
	"pea/internal/rt"
)

// deopt transfers execution from compiled code to the interpreter at the
// frame state recorded on the Deopt node n (paper §2, §5.5). It
// materializes every virtual object recorded in the state chain —
// allocating it, filling its fields (following references between virtual
// objects), and re-acquiring elided locks — then builds one interpreter
// frame per chained FrameState and resumes them innermost-first, completing
// each outer invoke with the inner frame's return value.
//
// Whether the compiled code is discarded depends on the deopt's recorded
// action: only DeoptActionInvalidateSpeculation (a failed speculative
// assumption, e.g. a pruned branch that was taken after all) invalidates
// the method's code and blacklists future speculation. Other deopts are
// point exits — the installed code stays valid and nothing is recompiled.
func (vm *VM) deopt(g *ir.Graph, n *ir.Node, eval func(x *ir.Node) (rt.Value, bool)) (rt.Value, error) {
	fs := n.FrameState
	if fs == nil {
		return rt.Value{}, fmt.Errorf("vm: deopt node %s has no frame state", n)
	}
	vm.flight.Record(flight.KindDeopt, int32(fs.Method.ID), int32(fs.BCI),
		0, 0, vm.flight.Reason(n.DeoptReason))
	// Collect virtual object descriptors from the whole chain.
	descs := make(map[*ir.Node]*ir.VirtualObjectState)
	for s := fs; s != nil; s = s.Outer {
		for _, vo := range s.VirtualObjects {
			descs[vo.Object] = vo
		}
	}

	if n.Action == ir.DeoptActionInvalidateSpeculation {
		// The speculative assumption failed: drop the code (standard
		// and OSR entries alike) and recompile without speculation next
		// time the method becomes hot.
		outermost := fs
		for outermost.Outer != nil {
			outermost = outermost.Outer
		}
		reason := n.DeoptReason
		if reason == "" {
			reason = "speculation-failed"
		}
		vm.Invalidate(outermost.Method, reason)
	}

	materialized := make(map[*ir.Node]*rt.Object)
	var valueOf func(n *ir.Node, kind bc.Kind) (rt.Value, error)
	var materializeVO func(n *ir.Node) (*rt.Object, error)

	materializeVO = func(n *ir.Node) (*rt.Object, error) {
		if obj, ok := materialized[n]; ok {
			return obj, nil
		}
		vo, ok := descs[n]
		if !ok {
			return nil, fmt.Errorf("vm: deopt: no descriptor for %s", n)
		}
		var obj *rt.Object
		if n.Class != nil {
			obj = vm.Env.AllocObject(n.Class)
		} else {
			obj = vm.Env.AllocArray(n.ElemKind, n.AuxLen)
		}
		// Register before filling fields: virtual object graphs are
		// acyclic by construction, but self-maps stay cheap this way.
		materialized[n] = obj
		for i, v := range vo.Values {
			kind := bc.KindInt
			if n.Class != nil {
				kind = n.Class.Fields[i].Kind
			} else {
				kind = n.ElemKind
			}
			fv, err := valueOf(v, kind)
			if err != nil {
				return nil, err
			}
			obj.Fields[i] = fv
		}
		for k := 0; k < vo.LockDepth; k++ {
			vm.Env.MonitorEnter(obj)
		}
		vm.Env.Stats.Materializations++
		// Attribute the rematerialization to the allocation site PEA
		// removed: virtual objects carry the (Method, BCI) of the original
		// OpNew, with the deopting frame's method as a fallback for
		// hand-built graphs.
		siteMethod, siteBCI := fs.Method, n.BCI
		if n.Method != nil {
			siteMethod = n.Method
		}
		vm.flight.Record(flight.KindMaterialize,
			int32(siteMethod.ID), int32(siteBCI), n.AuxInt, 0, vm.reasonRemat)
		if s := vm.Opts.Sink; s != nil {
			desc := ""
			if n.Class != nil {
				desc = n.Class.Name
			} else {
				desc = fmt.Sprintf("%s[%d]", n.ElemKind, n.AuxLen)
			}
			s.VMRematerialize(fs.Method.QualifiedName(),
				fmt.Sprintf("vobj%d", n.AuxInt), desc,
				fmt.Sprintf("%s@%d", siteMethod.QualifiedName(), siteBCI))
		}
		return obj, nil
	}

	valueOf = func(n *ir.Node, kind bc.Kind) (rt.Value, error) {
		if n == nil {
			// Dead slot: the interpreter never reads it; restore
			// the kind's default.
			if kind == bc.KindRef {
				return rt.Null, nil
			}
			return rt.IntValue(0), nil
		}
		if n.Op == ir.OpVirtualObject {
			obj, err := materializeVO(n)
			if err != nil {
				return rt.Value{}, err
			}
			return rt.RefValue(obj), nil
		}
		v, ok := eval(n)
		if !ok {
			return rt.Value{}, fmt.Errorf("vm: deopt: %s has no runtime value", n)
		}
		return v, nil
	}

	// Build and run frames innermost-first.
	buildFrame := func(s *ir.FrameState) (*interp.Frame, error) {
		f := &interp.Frame{
			Method: s.Method,
			PC:     s.BCI,
			Locals: make([]rt.Value, len(s.Locals)),
			Stack:  make([]rt.Value, 0, len(s.Stack)),
		}
		for i, n := range s.Locals {
			v, err := valueOf(n, s.Method.LocalKinds[i])
			if err != nil {
				return nil, err
			}
			f.Locals[i] = v
		}
		for _, n := range s.Stack {
			// Stack slots are never nil; their kind is recovered
			// from the node itself.
			kind := bc.KindInt
			if n != nil {
				kind = n.Kind
			}
			v, err := valueOf(n, kind)
			if err != nil {
				return nil, err
			}
			f.Stack = append(f.Stack, v)
		}
		return f, nil
	}

	inner, err := buildFrame(fs)
	if err != nil {
		return rt.Value{}, err
	}
	ret, err := vm.Interp.Resume(inner)
	retKind := fs.Method.Ret
	for s := fs.Outer; s != nil; s = s.Outer {
		if err != nil {
			// The resumed callee trapped instead of returning: unwind
			// into this frame exactly as the interpreter would, giving
			// its exception table a shot at the invoke's pc before
			// propagating further out.
			tr, ok := err.(*rt.Trap)
			if !ok {
				return rt.Value{}, err
			}
			h := rt.MatchHandler(s.Method, s.BCI, tr)
			if h == nil {
				continue
			}
			f, ferr := buildFrame(s)
			if ferr != nil {
				return rt.Value{}, ferr
			}
			f.Stack = append(f.Stack[:0], rt.HandlerValue(tr))
			f.PC = h.Handler
			ret, err = vm.Interp.Resume(f)
			retKind = s.Method.Ret
			continue
		}
		f, ferr := buildFrame(s)
		if ferr != nil {
			return rt.Value{}, ferr
		}
		// s.BCI is the invoke instruction whose callee just returned;
		// complete it: push the result and continue after the call.
		in := &s.Method.Code[s.BCI]
		if !in.Op.IsInvoke() {
			return rt.Value{}, fmt.Errorf("vm: deopt: outer state at %s:%d is not an invoke",
				s.Method.QualifiedName(), s.BCI)
		}
		if retKind != bc.KindVoid {
			f.Stack = append(f.Stack, ret)
		}
		f.PC = s.BCI + 1
		ret, err = vm.Interp.Resume(f)
		retKind = s.Method.Ret
	}
	if err != nil {
		return rt.Value{}, err
	}
	return ret, nil
}
