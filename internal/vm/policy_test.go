package vm

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/rt"
)

// buildCounter builds m(x) = x + 1 as a minimal compilable method.
func buildCounter(t *testing.T) (*bc.Program, *bc.Method) {
	t.Helper()
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("m", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	m.Load(0).Const(1).Add().ReturnValue()
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	return p, p.ClassByName("C").MethodByName("m")
}

func TestCompileThresholdRespected(t *testing.T) {
	prog, m := buildCounter(t)
	machine := New(prog, Options{EA: EAPartial, CompileThreshold: 10, Validate: true})
	// Compilation triggers on the first dispatch after the profile
	// reaches the threshold, i.e. on call threshold+1.
	for i := 0; i < 10; i++ {
		if _, err := machine.Call(m, []rt.Value{rt.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if machine.CompiledGraph(m) != nil {
		t.Fatal("compiled before the threshold was observed")
	}
	if _, err := machine.Call(m, []rt.Value{rt.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if machine.CompiledGraph(m) == nil {
		t.Fatal("not compiled once the profile reached the threshold")
	}
	if machine.VMStats.CompiledMethods != 1 {
		t.Fatalf("compiled methods = %d", machine.VMStats.CompiledMethods)
	}
}

func TestInterpretModeNeverCompiles(t *testing.T) {
	prog, m := buildCounter(t)
	machine := New(prog, Options{Interpret: true, CompileThreshold: 1})
	for i := 0; i < 50; i++ {
		if _, err := machine.Call(m, []rt.Value{rt.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if machine.VMStats.CompiledMethods != 0 {
		t.Fatal("interpret-only mode compiled something")
	}
}

func TestInvalidateForcesNonSpeculativeRecompile(t *testing.T) {
	prog, m := buildCounter(t)
	machine := New(prog, Options{EA: EAPartial, Speculate: true, CompileThreshold: 2, Validate: true})
	for i := 0; i < 5; i++ {
		if _, err := machine.Call(m, []rt.Value{rt.IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if machine.CompiledGraph(m) == nil {
		t.Fatal("not compiled")
	}
	machine.Invalidate(m, "deopt")
	if machine.CompiledGraph(m) != nil {
		t.Fatal("invalidation did not drop the graph")
	}
	if !machine.noSpec[m.ID].Load() {
		t.Fatal("invalidation must disable speculation for the method")
	}
	if machine.VMStats.InvalidatedMethods != 1 {
		t.Fatalf("invalidations = %d", machine.VMStats.InvalidatedMethods)
	}
	// Recompile on the next call (profile already hot).
	if _, err := machine.Call(m, []rt.Value{rt.IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if machine.CompiledGraph(m) == nil {
		t.Fatal("not recompiled after invalidation")
	}
	// Invalidating an uncompiled method is a no-op.
	machine.Invalidate(m, "deopt")
	machine.Invalidate(m, "deopt")
	if machine.VMStats.InvalidatedMethods != 2 {
		t.Fatalf("invalidations = %d, want 2", machine.VMStats.InvalidatedMethods)
	}
}

func TestEAModeString(t *testing.T) {
	if EAOff.String() != "no-ea" || EAFlowInsensitive.String() != "ea" || EAPartial.String() != "pea" {
		t.Fatal("mode names wrong")
	}
}

func TestRunWithoutMainFails(t *testing.T) {
	prog, _ := buildCounter(t)
	machine := New(prog, Options{})
	if _, err := machine.Run(); err == nil {
		t.Fatal("Run without an entry point must fail")
	}
}
