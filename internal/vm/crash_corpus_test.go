package vm

import (
	"os"
	"path/filepath"
	"testing"

	"pea/internal/check"
	"pea/internal/rt"
	"pea/internal/testprog"
)

// TestRegenerateCrashCorpus regenerates the committed crash-reproducer
// corpus under internal/vm/testdata/. It is gated behind PEA_REGEN_CRASH
// because it overwrites committed files: it injects a deterministic
// compiler panic into the PEA phase of a generated program, lets the
// containment layer minimize and save the repro, and leaves the JSON in
// testdata for TestCommittedCrashReprosCompile to replay forever after.
//
//	PEA_REGEN_CRASH=1 go test ./internal/vm -run TestRegenerateCrashCorpus
func TestRegenerateCrashCorpus(t *testing.T) {
	if os.Getenv("PEA_REGEN_CRASH") == "" {
		t.Skip("set PEA_REGEN_CRASH=1 to regenerate the committed crash corpus")
	}
	const seed = 42
	p := testprog.Generate(seed)
	machine := New(p.Prog, Options{
		EA: EAPartial, CompileThreshold: 2, Seed: seed,
		CrashDir:    "testdata",
		InjectFault: panicAt("pea", p.Entry.QualifiedName()),
	})
	for i := 0; i < 5; i++ {
		args := p.ArgSets[i%len(p.ArgSets)]
		if _, err := machine.Call(p.Entry, []rt.Value{rt.IntValue(args[0]), rt.IntValue(args[1])}); err != nil {
			break // traps in the generated program are fine; hotness still accumulates
		}
	}
	if machine.Stats().CrashRepros != 1 {
		t.Fatalf("crash repros = %d, want 1", machine.Stats().CrashRepros)
	}
}

// TestCommittedCrashReprosCompile replays every committed crash repro:
// the JSON must load, apply onto the generator program identified by its
// recorded seed, verify as bytecode, and compile cleanly under the full
// strictest pipeline. The corpus entries are bodies that once crashed a
// (fault-injected) compiler — this test pins that the repro format stays
// loadable and that today's compiler handles the bodies without incident.
func TestCommittedCrashReprosCompile(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "crash-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed crash repros found (run TestRegenerateCrashCorpus with PEA_REGEN_CRASH=1)")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			r, err := check.LoadRepro(path)
			if err != nil {
				t.Fatal(err)
			}
			p := testprog.Generate(int64(r.Seed))
			m, err := r.Apply(p.Prog)
			if err != nil {
				t.Fatalf("repro no longer applies: %v", err)
			}
			machine := New(p.Prog, Options{EA: EAPartial, Speculate: false, CheckLevel: check.Strict, Seed: r.Seed})
			g, err := machine.Compile(m)
			if err != nil {
				t.Fatalf("repro body no longer compiles: %v", err)
			}
			if g == nil {
				t.Fatal("nil graph")
			}
		})
	}
}
