package vm

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/rt"
	"pea/internal/testprog"
)

// runVM executes the program entry under the given options, warming up
// enough to cross the compile threshold, and returns the last result.
func runVM(t *testing.T, p testprog.Program, opts Options, args []int64, warmup int) (rt.Value, *VM, error) {
	t.Helper()
	opts.MaxSteps = 20_000_000
	opts.Validate = true
	machine := New(p.Prog, opts)
	vals := make([]rt.Value, len(args))
	for i, a := range args {
		vals[i] = rt.IntValue(a)
	}
	var (
		v   rt.Value
		err error
	)
	for i := 0; i < warmup; i++ {
		v, err = machine.Call(p.Entry, vals)
		if err != nil {
			return v, machine, err
		}
	}
	for m, cerr := range machine.FailedCompilations() {
		t.Fatalf("compilation of %s failed: %v", m.QualifiedName(), cerr)
	}
	return v, machine, err
}

// TestAllModesAgree runs every corpus program under every VM configuration
// and demands identical results and outputs, with escape analysis modes
// never allocating more than the interpreter.
func TestAllModesAgree(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"interp", Options{Interpret: true}},
		{"jit", Options{EA: EAOff}},
		{"jit-ea", Options{EA: EAFlowInsensitive}},
		{"jit-pea", Options{EA: EAPartial}},
		{"jit-pea-spec", Options{EA: EAPartial, Speculate: true}},
		{"jit-pea-sum", Options{EA: EAPartial, Summaries: true}},
		{"jit-pea-sum-spec", Options{EA: EAPartial, Summaries: true, Speculate: true}},
	}
	const warmup = 30
	for _, p := range testprog.Corpus() {
		t.Run(p.Name, func(t *testing.T) {
			for _, args := range p.ArgSets {
				var ref rt.Value
				var refSet bool
				var refErr error
				for _, cfg := range configs {
					v, _, err := runVM(t, p, cfg.opts, args, warmup)
					if !refSet {
						ref, refErr, refSet = v, err, true
						continue
					}
					if (err == nil) != (refErr == nil) {
						t.Fatalf("%s args %v: err=%v, interp err=%v", cfg.name, args, err, refErr)
					}
					if err == nil && !v.Equal(ref) {
						t.Fatalf("%s args %v: got %v, interp %v", cfg.name, args, v, ref)
					}
				}
			}
		})
	}
}

// TestJITCompilesHotMethods checks the compile policy.
func TestJITCompilesHotMethods(t *testing.T) {
	p := corpusProg(t, "cacheKey")
	_, machine, err := runVM(t, p, Options{EA: EAPartial, CompileThreshold: 5}, []int64{20}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if machine.VMStats.CompiledMethods == 0 {
		t.Fatal("nothing was compiled")
	}
	if machine.CompiledGraph(p.Entry) == nil {
		t.Fatal("hot entry method not compiled")
	}
}

// TestPEADoesNotIncreaseAllocations compares long-run allocation counts.
func TestPEADoesNotIncreaseAllocations(t *testing.T) {
	for _, p := range testprog.Corpus() {
		args := p.ArgSets[len(p.ArgSets)-1]
		_, base, err1 := runVM(t, p, Options{EA: EAOff}, args, 40)
		_, peavm, err2 := runVM(t, p, Options{EA: EAPartial}, args, 40)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: error divergence %v vs %v", p.Name, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if peavm.Env.Stats.Allocations > base.Env.Stats.Allocations {
			t.Fatalf("%s: PEA allocated more: %d vs %d", p.Name,
				peavm.Env.Stats.Allocations, base.Env.Stats.Allocations)
		}
		if peavm.Env.Stats.MonitorOps > base.Env.Stats.MonitorOps {
			t.Fatalf("%s: PEA locked more: %d vs %d", p.Name,
				peavm.Env.Stats.MonitorOps, base.Env.Stats.MonitorOps)
		}
	}
}

// TestEAWeakerThanPEA: on the partial-escape pattern, flow-insensitive EA
// must keep the allocation (it escapes on one path) while PEA removes it
// on the hot path — the paper's central claim.
func TestEAWeakerThanPEA(t *testing.T) {
	p := corpusProg(t, "partialEscape")
	args := []int64{5} // non-escaping branch
	const warmup = 50

	_, base, err := runVM(t, p, Options{EA: EAOff, CompileThreshold: 5}, args, warmup)
	if err != nil {
		t.Fatal(err)
	}
	_, eavm, err := runVM(t, p, Options{EA: EAFlowInsensitive, CompileThreshold: 5}, args, warmup)
	if err != nil {
		t.Fatal(err)
	}
	_, peavm, err := runVM(t, p, Options{EA: EAPartial, CompileThreshold: 5}, args, warmup)
	if err != nil {
		t.Fatal(err)
	}
	if eavm.Env.Stats.Allocations != base.Env.Stats.Allocations {
		t.Fatalf("flow-insensitive EA should not optimize a partially escaping object: %d vs %d",
			eavm.Env.Stats.Allocations, base.Env.Stats.Allocations)
	}
	if peavm.Env.Stats.Allocations >= base.Env.Stats.Allocations {
		t.Fatalf("PEA should remove hot-path allocations: %d vs %d",
			peavm.Env.Stats.Allocations, base.Env.Stats.Allocations)
	}
}

// TestEARemovesFullyLocalObjects: the baseline still handles the classic
// non-escaping case.
func TestEARemovesFullyLocalObjects(t *testing.T) {
	p := corpusProg(t, "nonEscaping")
	_, base, err := runVM(t, p, Options{EA: EAOff, CompileThreshold: 5}, []int64{7}, 50)
	if err != nil {
		t.Fatal(err)
	}
	_, eavm, err := runVM(t, p, Options{EA: EAFlowInsensitive, CompileThreshold: 5}, []int64{7}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if eavm.Env.Stats.Allocations >= base.Env.Stats.Allocations {
		t.Fatalf("EA failed on a never-escaping object: %d vs %d",
			eavm.Env.Stats.Allocations, base.Env.Stats.Allocations)
	}
}

// TestSpeculativeDeopt forces a pruned branch to be taken and checks that
// execution deoptimizes, produces the right result, and materializes the
// virtual object.
func TestSpeculativeDeopt(t *testing.T) {
	p := corpusProg(t, "partialEscape")
	opts := Options{EA: EAPartial, Speculate: true, CompileThreshold: 5, MaxSteps: 20_000_000, Validate: true}
	machine := New(p.Prog, opts)

	// Warm up on the non-escaping branch only: the escaping branch is
	// never taken and gets pruned to a deopt.
	hot := []rt.Value{rt.IntValue(5)}
	for i := 0; i < 40; i++ {
		if _, err := machine.Call(p.Entry, hot); err != nil {
			t.Fatal(err)
		}
	}
	if machine.CompiledGraph(p.Entry) == nil {
		t.Fatal("entry not compiled")
	}
	if machine.Env.Stats.Deopts != 0 {
		t.Fatalf("premature deopts: %d", machine.Env.Stats.Deopts)
	}

	// Now take the escaping branch: compiled code hits the Deopt, the
	// interpreter finishes the call, and the Key object must exist (it
	// is stored into the static sink by the interpreted continuation).
	v, err := machine.Call(p.Entry, []rt.Value{rt.IntValue(200)})
	if err != nil {
		t.Fatalf("deopt path failed: %v", err)
	}
	if v.I != 201 {
		t.Fatalf("deopt result = %d, want 201", v.I)
	}
	if machine.Env.Stats.Deopts != 1 {
		t.Fatalf("deopts = %d, want 1", machine.Env.Stats.Deopts)
	}
	sink := p.Prog.ClassByName("Box").StaticByName("sink")
	obj := machine.Env.GetStatic(sink)
	if obj.Ref == nil {
		t.Fatal("escaped object missing after deopt")
	}
	if got := obj.Ref.Fields[0].I; got != 200 {
		t.Fatalf("materialized field = %d, want 200", got)
	}
	// The method was invalidated and recompiles without speculation.
	if machine.VMStats.InvalidatedMethods != 1 {
		t.Fatalf("invalidations = %d", machine.VMStats.InvalidatedMethods)
	}
	for i := 0; i < 40; i++ {
		v, err := machine.Call(p.Entry, []rt.Value{rt.IntValue(200)})
		if err != nil {
			t.Fatal(err)
		}
		if v.I != 201 {
			t.Fatalf("post-invalidate result = %d", v.I)
		}
	}
	if machine.Env.Stats.Deopts != 1 {
		t.Fatalf("recompiled code still deopts: %d", machine.Env.Stats.Deopts)
	}
}

// TestDeoptThroughInlinedFrames: deopt inside inlined code rebuilds the
// whole frame chain.
func TestDeoptThroughInlinedFrames(t *testing.T) {
	a := bc.NewAssembler()
	box := a.Class("Box", "")
	v := box.Field("v", bc.KindInt)
	sink := box.Static("sink", bc.KindRef)
	c := a.Class("C", "")
	// callee(x): b = new Box(v=x); if (x > 1000) { sink = b }; return b.v+1
	callee := c.Method("callee", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	l := callee.NewLocal(bc.KindRef)
	callee.New(box.Ref()).Store(l)
	callee.Load(l).Load(0).PutField(v)
	callee.Load(0).Const(1000).IfCmp(bc.CondLE, "ok")
	callee.Load(l).PutStatic(sink)
	callee.Label("ok").Load(l).GetField(v).Const(1).Add().ReturnValue()
	// caller(x): return callee(x) * 2
	caller := c.Method("caller", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	caller.Load(0).InvokeStatic(callee.Ref()).Const(2).Mul().ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	m := prog.ClassByName("C").MethodByName("caller")

	machine := New(prog, Options{EA: EAPartial, Speculate: true, CompileThreshold: 5, Validate: true, MaxSteps: 10_000_000})
	for i := 0; i < 40; i++ {
		got, err := machine.Call(m, []rt.Value{rt.IntValue(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if got.I != int64(i+1)*2 {
			t.Fatalf("warmup result = %d", got.I)
		}
	}
	if machine.CompiledGraph(m) == nil {
		t.Fatal("caller not compiled")
	}
	got, err := machine.Call(m, []rt.Value{rt.IntValue(5000)})
	if err != nil {
		t.Fatalf("deopt through inlined frames: %v", err)
	}
	if got.I != 5001*2 {
		t.Fatalf("result = %d, want %d", got.I, 5001*2)
	}
	if machine.Env.Stats.Deopts != 1 {
		t.Fatalf("deopts = %d, want 1", machine.Env.Stats.Deopts)
	}
	obj := machine.Env.GetStatic(sink)
	if obj.Ref == nil || obj.Ref.Fields[0].I != 5000 {
		t.Fatalf("escaped object wrong after inlined deopt: %v", obj)
	}
}

func corpusProg(t *testing.T, name string) testprog.Program {
	t.Helper()
	for _, p := range testprog.Corpus() {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("no corpus program %q", name)
	return testprog.Program{}
}
