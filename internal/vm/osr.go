package vm

import (
	"fmt"
	"sync/atomic"

	"pea/internal/bc"
	"pea/internal/exec"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/obs/flight"
	"pea/internal/rt"
)

// osrSite identifies one on-stack-replacement entry point: a loop header
// (by bytecode index) inside a method.
type osrSite struct {
	m   *bc.Method
	bci int
}

// osrHook is the interpreter's back-edge callback (interp.Interp.OSRHook).
// It fires after the interpreter has taken a backward branch, with f.PC at
// the loop header and count the header's cumulative back-edge count. When an
// OSR graph for (f.Method, f.PC) is installed, the hook transfers the live
// interpreter frame into it and finishes the invocation in compiled code;
// otherwise, once count crosses the threshold, it submits an OSR compile to
// the broker and lets the interpreter continue (async mode) or enters the
// freshly installed code immediately (sync mode).
func (vm *VM) osrHook(f *interp.Frame, count int64) (rt.Value, bool, error) {
	if count < vm.Opts.OSRThreshold {
		return rt.Value{}, false, nil
	}
	site := osrSite{f.Method, f.PC}
	if c := vm.osrInstalled(site); c != nil {
		return vm.enterOSR(f, c)
	}
	if vm.hasFailed[f.Method.ID].Load() || vm.osrHasFailed(site) {
		return rt.Value{}, false, nil
	}
	if vm.osrBackedOff(site, count) {
		return rt.Value{}, false, nil // transient failure/rejection backoff
	}
	if vm.jit.Pending(f.Method, f.PC) {
		return rt.Value{}, false, nil // compile in flight; keep looping interpreted
	}
	atomic.AddInt64(&vm.VMStats.OSRRequests, 1)
	vm.flight.Record(flight.KindOSRRequest, int32(f.Method.ID), int32(f.PC), count, 0, 0)
	if s := vm.Opts.Sink; s != nil {
		s.VMOSRRequest(f.Method.QualifiedName(), f.PC, int(count))
	}
	if !vm.jit.SubmitHooks(f.Method, count, vm.osrCacheKey(f.Method, f.PC), &vm.hooks) {
		// Rejected (queue full, closing, or a racing duplicate): re-arm
		// this entry point's trigger with backoff instead of resubmitting
		// on every back edge.
		vm.rearmOSR(f.Method, f.PC, "submit-rejected")
	}
	// A synchronous broker has installed (or failed) the artifact by now;
	// an asynchronous one publishes later and this lookup stays nil.
	if c := vm.osrInstalled(site); c != nil {
		return vm.enterOSR(f, c)
	}
	return rt.Value{}, false, nil
}

// osrInstalled returns the installed OSR code for site (nil if none).
func (vm *VM) osrInstalled(site osrSite) exec.Code {
	vm.osrMu.Lock()
	defer vm.osrMu.Unlock()
	return vm.osrCode[site]
}

// osrBackedOff reports whether site is inside a transient-failure backoff
// window: re-armed sites become submit-eligible again only once the loop
// header's back-edge count reaches the re-arm target.
func (vm *VM) osrBackedOff(site osrSite, count int64) bool {
	vm.osrMu.Lock()
	defer vm.osrMu.Unlock()
	return vm.osrRetryAt[site] > count
}

// osrHasFailed reports whether an OSR compile for site failed permanently.
func (vm *VM) osrHasFailed(site osrSite) bool {
	vm.osrMu.Lock()
	defer vm.osrMu.Unlock()
	return vm.osrFailed[site]
}

// enterOSR transfers the interpreter frame f into the OSR graph g and runs
// it to completion. The argument vector follows the OSR parameter
// convention (see build.BuildOSR): locals occupy slots [0, NumLocals) and
// operand-stack values follow at NumLocals+depth, so OpParam's AuxInt
// indexes it directly. The returned value is the whole invocation's result:
// the compiled code runs from the loop header through the method's return
// (or deoptimizes back into a fresh interpreter frame, which the deopt
// runtime resumes transparently).
func (vm *VM) enterOSR(f *interp.Frame, c exec.Code) (rt.Value, bool, error) {
	if bci := c.Graph().OSREntryBCI; bci != f.PC {
		return rt.Value{}, false, fmt.Errorf("vm: OSR graph for %s entered at bci %d, frame at %d",
			f.Method.QualifiedName(), bci, f.PC)
	}
	args := make([]rt.Value, f.Method.NumLocals()+len(f.Stack))
	copy(args, f.Locals)
	copy(args[f.Method.NumLocals():], f.Stack)
	atomic.AddInt64(&vm.VMStats.OSREntries, 1)
	vm.flight.Record(flight.KindOSREnter, int32(f.Method.ID), int32(f.PC), 0, 0, 0)
	if s := vm.Opts.Sink; s != nil {
		s.VMOSREnter(f.Method.QualifiedName(), f.PC)
	}
	ret, err := c.Run(vm.Engine, args)
	if err != nil {
		return rt.Value{}, false, err
	}
	return ret, true, nil
}

// OSRGraph returns the scheduled graph behind the installed OSR code for
// (m, entryBCI), or nil. Safe to call concurrently with compilation;
// exposed for tests and tools.
func (vm *VM) OSRGraph(m *bc.Method, entryBCI int) *ir.Graph {
	if vm.osrCode == nil {
		return nil
	}
	if c := vm.osrInstalled(osrSite{m, entryBCI}); c != nil {
		return c.Graph()
	}
	return nil
}
