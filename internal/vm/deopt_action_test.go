package vm

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pea/internal/bc"
	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/rt"
)

// deoptAtReturn compiles m(x)=x+1 and replaces the compiled return with an
// OpDeopt carrying the given action and reason, reusing the return's frame
// state so the interpreter can resume and complete the invocation.
func deoptAtReturn(t *testing.T, machine *VM, m *bc.Method, action ir.DeoptAction, reason string) {
	t.Helper()
	g, err := machine.Compile(m)
	if err != nil {
		t.Fatal(err)
	}
	var retBlock *ir.Block
	for _, b := range g.Blocks {
		if b.Term != nil && b.Term.Op == ir.OpReturn {
			retBlock = b
		}
	}
	if retBlock == nil {
		t.Fatal("no return block")
	}
	d := g.NewNode(ir.OpDeopt, bc.KindVoid)
	d.FrameState = retBlock.Term.FrameState
	d.BCI = retBlock.Term.BCI
	d.DeoptReason = reason
	d.Action = action
	retBlock.Succs = nil
	g.SetTerm(retBlock, d)
	if err := ir.Verify(g); err != nil {
		t.Fatal(err)
	}
	code, err := machine.lower(m, g)
	if err != nil {
		t.Fatal(err)
	}
	machine.code[m.ID].Store(&codeCell{code: code})
}

// TestNonSpeculativeDeoptKeepsCode is the regression test for the
// invalidate-on-every-deopt bug: a deopt whose action is not
// invalidate-speculation is a point exit. It must not drop the installed
// code, must not count an invalidation or recompilation, and must not
// blacklist future speculation for the method.
func TestNonSpeculativeDeoptKeepsCode(t *testing.T) {
	prog, m := buildCounter(t)
	machine := New(prog, Options{EA: EAPartial, Speculate: true, CompileThreshold: 1 << 30, Validate: true})
	deoptAtReturn(t, machine, m, ir.DeoptActionNone, "uncommon trap")

	for i := 0; i < 3; i++ {
		v, err := machine.Call(m, []rt.Value{rt.IntValue(41)})
		if err != nil {
			t.Fatal(err)
		}
		if v.I != 42 {
			t.Fatalf("deopt-resumed result = %d, want 42", v.I)
		}
	}
	if machine.Env.Stats.Deopts != 3 {
		t.Fatalf("deopts = %d, want 3", machine.Env.Stats.Deopts)
	}
	st := machine.Stats()
	if st.InvalidatedMethods != 0 {
		t.Fatalf("invalidations = %d, want 0 (non-speculative deopt)", st.InvalidatedMethods)
	}
	if st.Recompilations != 0 {
		t.Fatalf("recompilations = %d, want 0 (non-speculative deopt)", st.Recompilations)
	}
	if machine.CompiledGraph(m) == nil {
		t.Fatal("non-speculative deopt dropped the installed code")
	}
	if !machine.cacheKey(m).Spec {
		t.Fatal("non-speculative deopt blacklisted future speculation")
	}
}

// TestSpeculationDeoptInvalidatesWithReason checks the other half of the
// contract: a speculation-failure deopt invalidates the code, forbids
// speculation on the recompile, and the invalidation event reports the
// deopt's actual reason rather than a hardcoded "deopt".
func TestSpeculationDeoptInvalidatesWithReason(t *testing.T) {
	prog, m := buildCounter(t)
	var buf bytes.Buffer
	sink := obs.NewSink(obs.NewJSONBackend(&buf))
	machine := New(prog, Options{EA: EAPartial, Speculate: true, CompileThreshold: 1 << 30, Validate: true, Sink: sink})
	const reason = "untaken branch at C.m"
	deoptAtReturn(t, machine, m, ir.DeoptActionInvalidateSpeculation, reason)

	v, err := machine.Call(m, []rt.Value{rt.IntValue(41)})
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 42 {
		t.Fatalf("deopt-resumed result = %d, want 42", v.I)
	}
	st := machine.Stats()
	if st.InvalidatedMethods != 1 {
		t.Fatalf("invalidations = %d, want 1", st.InvalidatedMethods)
	}
	if machine.CompiledGraph(m) != nil {
		t.Fatal("speculation-failure deopt left the code installed")
	}
	if machine.cacheKey(m).Spec {
		t.Fatal("speculation still allowed after a speculation-failure deopt")
	}

	var invalidateReason string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if e.Kind == obs.KindVMInvalidate {
			invalidateReason = e.Reason
		}
	}
	if invalidateReason != reason {
		t.Fatalf("invalidate event reason = %q, want %q", invalidateReason, reason)
	}
}
