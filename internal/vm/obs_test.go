package vm

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pea/internal/mj"
	"pea/internal/obs"
	"pea/internal/rt"
	"pea/internal/testprog"
)

var update = flag.Bool("update", false, "rewrite golden files")

// listing1 is the paper's Listing 1: getValue allocates a Key, compares it
// against the cached key under the key's monitor (the synchronized
// equalsKey of Listing 2), and publishes it only on the cache-miss branch.
const listing1 = `
class Key {
	int idx;
	Key(int idx) { this.idx = idx; }
	boolean equalsKey(Key other) {
		synchronized (this) {
			return other != null && idx == other.idx;
		}
	}
}
class Cache {
	static Key cacheKey;
	static int cacheValue;
}
class Main {
	static int createValue(int idx) { return idx * 31; }
	static int getValue(int idx) {
		Key key = new Key(idx);
		if (key.equalsKey(Cache.cacheKey)) {
			return Cache.cacheValue;
		} else {
			Cache.cacheKey = key;
			Cache.cacheValue = createValue(idx);
			return Cache.cacheValue;
		}
	}
	static void main() { print(getValue(1)); }
}
`

// TestTraceEventsCachekey drives the VM over the paper's Listing 1 with
// the JSONL event backend attached and checks the whole stream: every
// line is valid JSON, sequence numbers are dense, timestamps are pinned
// by the test clock, phase spans balance, and the PEA decision log shows
// exactly what the paper promises for getValue — the Key allocation
// virtualized, both monitor operations of the inlined synchronized block
// elided, and one materialization on the cache-miss branch (at the
// StoreStatic that publishes the key). The decision subsequence is also
// golden-matched (go test ./internal/vm -run TraceEvents -update
// regenerates it).
func TestTraceEventsCachekey(t *testing.T) {
	prog, err := mj.Compile(listing1, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewSink(obs.NewJSONBackend(&buf))
	sink.SetClock(func() time.Time { return time.Unix(0, 0) })
	met := obs.NewMetrics()
	machine := New(prog, Options{
		EA:               EAPartial,
		CompileThreshold: 3,
		Sink:             sink,
		Metrics:          met,
		Validate:         true,
		MaxSteps:         1_000_000,
	})
	getValue := prog.ClassByName("Main").MethodByName("getValue")
	for i := 0; i < 6; i++ {
		if _, err := machine.Call(getValue, []rt.Value{rt.IntValue(1)}); err != nil {
			t.Fatal(err)
		}
	}
	for m, cerr := range machine.FailedCompilations() {
		t.Fatalf("compilation of %s failed: %v", m.QualifiedName(), cerr)
	}

	// The stream is valid JSONL: one object per line, dense sequence
	// numbers, zero timestamps under the fixed clock.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var events []obs.Event
	for i, ln := range lines {
		var e obs.Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, ln)
		}
		if e.Seq != int64(i+1) {
			t.Errorf("line %d: seq = %d, want %d", i+1, e.Seq, i+1)
		}
		if e.TNS != 0 {
			t.Errorf("line %d: t_ns = %d, want 0 under the fixed clock", i+1, e.TNS)
		}
		if e.Kind == "" {
			t.Errorf("line %d: missing kind", i+1)
		}
		events = append(events, e)
	}

	// Phase spans balance: every phase_start has its phase_end.
	starts, ends := map[string]int{}, map[string]int{}
	for _, e := range events {
		switch e.Kind {
		case obs.KindPhaseStart:
			starts[e.Phase]++
		case obs.KindPhaseEnd:
			ends[e.Phase]++
		}
	}
	for ph, n := range starts {
		if ends[ph] != n {
			t.Errorf("phase %q: %d starts but %d ends", ph, n, ends[ph])
		}
	}
	if starts["build"] == 0 || starts["pea"] == 0 {
		t.Errorf("missing build/pea phase spans; phases seen: %v", starts)
	}

	// The Listing 1 decision log for the compiled getValue.
	var virtualize, lockElide, materialize []obs.Event
	for _, e := range events {
		if e.Method != "Main.getValue" {
			continue
		}
		switch e.Kind {
		case obs.KindVirtualize:
			virtualize = append(virtualize, e)
		case obs.KindLockElide:
			lockElide = append(lockElide, e)
		case obs.KindMaterialize, obs.KindMergeMaterialize:
			materialize = append(materialize, e)
		}
	}
	if len(virtualize) != 1 || virtualize[0].Detail != "Key" {
		t.Errorf("virtualize events = %+v, want exactly one for class Key", virtualize)
	}
	if len(lockElide) != 2 {
		t.Errorf("lock_elide events = %+v, want exactly 2 (monitorenter+monitorexit)", lockElide)
	} else {
		ops := []string{lockElide[0].Detail, lockElide[1].Detail}
		if ops[0] != "monitorenter" || ops[1] != "monitorexit" {
			t.Errorf("lock_elide ops = %v, want [monitorenter monitorexit]", ops)
		}
	}
	if len(materialize) != 1 {
		t.Errorf("materialize events = %+v, want exactly one (cache-miss branch)", materialize)
	} else if m := materialize[0]; m.Reason != "StoreStatic" {
		t.Errorf("materialize reason = %q, want StoreStatic (publication on the miss branch)", m.Reason)
	}

	// Tier-up events cover the three hot methods.
	compiled := map[string]bool{}
	for _, e := range events {
		if e.Kind == obs.KindVMCompile {
			compiled[e.Method] = true
		}
	}
	if !compiled["Main.getValue"] {
		t.Errorf("no vm_compile event for Main.getValue; compiled: %v", compiled)
	}

	// Metrics agree with the event stream.
	countKind := func(k obs.Kind) int64 {
		var n int64
		for _, e := range events {
			if e.Kind == k {
				n++
			}
		}
		return n
	}
	if got, want := met.Counter(obs.MetricVMCompiles), countKind(obs.KindVMCompile); got != want {
		t.Errorf("vm.compiles metric = %d, want %d (event count)", got, want)
	}
	if got, want := met.Counter(obs.MetricLocksElided), countKind(obs.KindLockElide); got != want {
		t.Errorf("pea.locks_elided metric = %d, want %d (event count)", got, want)
	}

	// Golden-match the full decision subsequence (all methods), with
	// sequence numbers normalized out so unrelated event insertions
	// upstream do not churn the file.
	var decisions []string
	for _, e := range events {
		switch e.Kind {
		case obs.KindVirtualize, obs.KindMaterialize, obs.KindMergeMaterialize,
			obs.KindLockElide, obs.KindPEAFixpoint:
			e.Seq, e.TNS = 0, 0
			b, err := json.Marshal(e)
			if err != nil {
				t.Fatal(err)
			}
			decisions = append(decisions, string(b))
		}
	}
	got := strings.Join(decisions, "\n") + "\n"
	golden := filepath.Join("testdata", "cachekey_events.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("decision event stream diverged from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestEscapeTableListing1 runs the paper's Listing 1 with the escape
// attribution aggregator attached and golden-matches the rendered table —
// the per-site Table 1 analogue that peavm -escape-report prints. The
// single Key allocation site (Main.getValue@0) must show one virtualized
// object, one materialization on the cache-miss branch dominated by the
// StoreStatic publication, and both elided monitor operations; the table's
// totals must equal the metrics registry's counters. The always-on flight
// recorder must have captured the same materializations without any
// backend attached.
func TestEscapeTableListing1(t *testing.T) {
	prog, err := mj.Compile(listing1, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	esc := obs.NewEscapeTable()
	met := obs.NewMetrics()
	machine := New(prog, Options{
		EA:               EAPartial,
		CompileThreshold: 3,
		Sink:             obs.NewSink(esc),
		Metrics:          met,
		Validate:         true,
		MaxSteps:         1_000_000,
	})
	getValue := prog.ClassByName("Main").MethodByName("getValue")
	for i := 0; i < 6; i++ {
		if _, err := machine.Call(getValue, []rt.Value{rt.IntValue(1)}); err != nil {
			t.Fatal(err)
		}
	}
	for m, cerr := range machine.FailedCompilations() {
		t.Fatalf("compilation of %s failed: %v", m.QualifiedName(), cerr)
	}

	// Table totals equal the metrics registry counters (the acceptance
	// contract between the two accounting paths).
	var virt, mat, remat, locks int64
	for _, s := range esc.Snapshot() {
		virt += s.Virtualized
		mat += s.Materialized
		remat += s.Remats
		locks += s.LocksElided
	}
	if got := met.Counter(obs.MetricVirtualized); got != virt {
		t.Errorf("virtualized: table total %d, metric %d", virt, got)
	}
	if got := met.Counter(obs.MetricMaterialized); got != mat {
		t.Errorf("materialized: table total %d, metric %d", mat, got)
	}
	if got := met.Counter(obs.MetricVMRemats); got != remat {
		t.Errorf("remats: table total %d, metric %d", remat, got)
	}
	if got := met.Counter(obs.MetricLocksElided); got != locks {
		t.Errorf("locks elided: table total %d, metric %d", locks, got)
	}

	// The flight recorder is always on — no flag, no backend — and must
	// have seen every compile-time materialization the table counted.
	var flightBuf bytes.Buffer
	if err := machine.Flight().WriteJSON(&flightBuf); err != nil {
		t.Fatal(err)
	}
	var flightMats, flightCompiles int64
	for _, ln := range strings.Split(strings.TrimSpace(flightBuf.String()), "\n") {
		var rec struct {
			Kind   string `json:"kind"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal([]byte(ln), &rec); err != nil {
			t.Fatalf("flight line is not valid JSON: %v\n%s", err, ln)
		}
		switch rec.Kind {
		case "materialize":
			if rec.Reason != "deopt-remat" {
				flightMats++
			}
		case "compile_finish":
			flightCompiles++
		}
	}
	if flightMats != mat {
		t.Errorf("flight materialize records = %d, table total %d", flightMats, mat)
	}
	if flightCompiles == 0 {
		t.Error("flight recorder captured no compile_finish records")
	}

	// Golden-match the rendered table.
	got := esc.Table()
	golden := filepath.Join("testdata", "cachekey_escape.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("escape table diverged from golden file:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// benchmarkCompile measures one full JIT compilation of the paper's
// cacheKey workload under PEA. The nil-sink variant is the guard for the
// package's no-overhead-when-disabled contract: its allocation count must
// not exceed the seed compiler's (observability disabled adds zero
// allocations; compare with BenchmarkCompileEventSink for the enabled
// cost).
func benchmarkCompile(b *testing.B, sink *obs.Sink) {
	var p testprog.Program
	for _, c := range testprog.Corpus() {
		if c.Name == "cacheKey" {
			p = c
		}
	}
	if p.Prog == nil {
		b.Fatal("cacheKey workload not in corpus")
	}
	machine := New(p.Prog, Options{EA: EAPartial, Sink: sink})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := machine.Compile(p.Entry); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileNilSink(b *testing.B) { benchmarkCompile(b, nil) }

func BenchmarkCompileEventSink(b *testing.B) {
	benchmarkCompile(b, obs.NewSink(obs.NewJSONBackend(discard{})))
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
