package vm

import (
	"errors"
	"os"
	"testing"

	"pea/internal/broker"
	"pea/internal/rt"
	"pea/internal/testprog"
)

// fuzzOutcome captures everything observable about one configuration's run
// over the full argument sequence of a generated program.
type fuzzOutcome struct {
	results []rt.Value
	errs    []bool
	out     []int64
	allocs  int64
	monOps  int64
	sinkSet bool
	sinkV   int64
	acc     int64
}

// runFuzzConfig executes every argument set several times in one VM (so
// the JIT warms up and compiled code runs) and returns the observation.
func runFuzzConfig(t *testing.T, p testprog.Program, opts Options) fuzzOutcome {
	t.Helper()
	opts.MaxSteps = 50_000_000
	opts.CompileThreshold = 4
	machine := New(p.Prog, opts)
	var o fuzzOutcome
	for round := 0; round < 7; round++ {
		for _, args := range p.ArgSets {
			vals := []rt.Value{rt.IntValue(args[0]), rt.IntValue(args[1])}
			v, err := machine.Call(p.Entry, vals)
			if round == 6 {
				o.results = append(o.results, v)
				o.errs = append(o.errs, err != nil)
			}
			if err != nil {
				// Traps abort only this call; state may diverge
				// afterwards, so stop the sequence deterministically.
				break
			}
		}
	}
	for m, cerr := range machine.FailedCompilations() {
		// Under PEA_FAULT the fault-smoke job injects compiler panics on
		// purpose; the containment layer degrades the victim to the
		// interpreter, and the differential checks below still apply in
		// full. Any other failure kind remains fatal.
		var pe *broker.PanicError
		if os.Getenv("PEA_FAULT") != "" && errors.As(cerr, &pe) {
			continue
		}
		t.Fatalf("%s: compiling %s: %v", p.Name, m.QualifiedName(), cerr)
	}
	sink := p.Prog.ClassByName("Box").StaticByName("sink")
	acc := p.Prog.ClassByName("Box").StaticByName("acc")
	o.out = machine.Env.Output
	o.allocs = machine.Env.Stats.Allocations
	o.monOps = machine.Env.Stats.MonitorOps
	o.acc = machine.Env.GetStatic(acc).I
	if sv := machine.Env.GetStatic(sink); sv.Ref != nil {
		o.sinkSet = true
		o.sinkV = sv.Ref.Fields[0].I
	}
	return o
}

// TestFuzzedProgramsAgreeAcrossModes generates pseudo-random programs and
// runs each under every VM configuration: all must produce identical
// per-call results, outputs and final statics, and the escape-analysis
// modes must never allocate or lock more than the baseline. This is the
// system-level differential fuzzer; any miscompilation in the builder, the
// optimizer, EA, PEA, speculation, or the deoptimization runtime shows up
// here.
func TestFuzzedProgramsAgreeAcrossModes(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 30
	}
	configs := []struct {
		name string
		opts Options
	}{
		{"interp", Options{Interpret: true}},
		{"jit", Options{EA: EAOff, Validate: true}},
		{"jit-ea", Options{EA: EAFlowInsensitive, Validate: true}},
		{"jit-pea", Options{EA: EAPartial, Validate: true}},
		{"jit-pea-spec", Options{EA: EAPartial, Speculate: true, Validate: true}},
		{"jit-pea-osr", Options{EA: EAPartial, OSRThreshold: 8, Validate: true}},
		{"jit-pea-osr-spec", Options{EA: EAPartial, OSRThreshold: 8, Speculate: true, Validate: true}},
		{"jit-pea-sum", Options{EA: EAPartial, Summaries: true, Validate: true}},
		{"jit-pea-sum-spec", Options{EA: EAPartial, Summaries: true, Speculate: true, Validate: true}},
	}
	for seed := 0; seed < seeds; seed++ {
		p := testprog.Generate(int64(seed))
		ref := runFuzzConfig(t, p, configs[0].opts)
		for _, cfg := range configs[1:] {
			o := runFuzzConfig(t, p, cfg.opts)
			if len(o.results) != len(ref.results) {
				t.Fatalf("seed %d %s: %d final-round calls vs %d",
					seed, cfg.name, len(o.results), len(ref.results))
			}
			for i := range ref.results {
				if o.errs[i] != ref.errs[i] {
					t.Fatalf("seed %d %s call %d: trap divergence", seed, cfg.name, i)
				}
				if !o.errs[i] && !o.results[i].Equal(ref.results[i]) {
					t.Fatalf("seed %d %s call %d: result %v, interp %v",
						seed, cfg.name, i, o.results[i], ref.results[i])
				}
			}
			if o.acc != ref.acc {
				t.Fatalf("seed %d %s: acc %d, interp %d", seed, cfg.name, o.acc, ref.acc)
			}
			if o.sinkSet != ref.sinkSet || (o.sinkSet && o.sinkV != ref.sinkV) {
				t.Fatalf("seed %d %s: sink (%v,%d), interp (%v,%d)",
					seed, cfg.name, o.sinkSet, o.sinkV, ref.sinkSet, ref.sinkV)
			}
			if len(o.out) != len(ref.out) {
				t.Fatalf("seed %d %s: output length %d vs %d",
					seed, cfg.name, len(o.out), len(ref.out))
			}
			for i := range ref.out {
				if o.out[i] != ref.out[i] {
					t.Fatalf("seed %d %s: output[%d] %d vs %d",
						seed, cfg.name, i, o.out[i], ref.out[i])
				}
			}
			if o.allocs > ref.allocs {
				t.Fatalf("seed %d %s: %d allocations vs interp %d",
					seed, cfg.name, o.allocs, ref.allocs)
			}
			if o.monOps > ref.monOps {
				t.Fatalf("seed %d %s: %d monitor ops vs interp %d",
					seed, cfg.name, o.monOps, ref.monOps)
			}
		}
	}
}
