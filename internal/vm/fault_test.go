package vm

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pea/internal/bc"
	"pea/internal/broker"
	"pea/internal/budget"
	"pea/internal/check"
	"pea/internal/mj"
	"pea/internal/rt"
)

// panicAt builds a fault hook that panics at one named point, optionally
// only for methods whose qualified name contains filter.
func panicAt(point, filter string) func(string, string) {
	return func(p, method string) {
		if p == point && (filter == "" || strings.Contains(method, filter)) {
			panic(fmt.Sprintf("injected fault at %s compiling %s", p, method))
		}
	}
}

// TestSyncPanicContainedMethodDegrades: in the default synchronous mode a
// compiler panic surfaces exactly where HotSpot's would — as a contained,
// per-method failure. The triggering call completes interpreted with the
// right result, the panic is recorded as a permanent *PanicError, and the
// method never compiles (or resubmits) again.
func TestSyncPanicContainedMethodDegrades(t *testing.T) {
	prog, m := buildCounter(t)
	machine := New(prog, Options{
		EA: EAPartial, CompileThreshold: 2, Validate: true,
		InjectFault: panicAt(broker.FaultCompile, ""),
	})
	for i := 0; i < 10; i++ {
		v, err := machine.Call(m, []rt.Value{rt.IntValue(int64(i))})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if v.I != int64(i)+1 {
			t.Fatalf("call %d = %d, want %d (victim must stay interpreted-correct)", i, v.I, i+1)
		}
	}
	if machine.CompiledGraph(m) != nil {
		t.Fatal("panicked compile installed code")
	}
	cerr := machine.CompileError(m)
	var pe *broker.PanicError
	if !errors.As(cerr, &pe) {
		t.Fatalf("CompileError = %v (%T), want *PanicError", cerr, cerr)
	}
	bs := machine.Broker().Stats()
	if bs.Panics != 1 {
		t.Fatalf("broker panics = %d, want 1 (blacklist must stop resubmission)", bs.Panics)
	}
}

// TestAsyncPanicContainment: an injected panic on a background worker must
// not crash the VM or wedge the broker — Drain returns, the in-flight
// entry clears, and the victim stays interpreted while innocent methods
// still compile.
func TestAsyncPanicContainment(t *testing.T) {
	prog := loadExample(t, "../../examples/cachekey.mj")

	ref := New(prog, Options{Interpret: true})
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	// Panic on every compile of methods whose name contains "make" (the
	// allocation helpers in the example); everything else compiles.
	machine := New(prog, Options{
		EA: EAPartial, CompileThreshold: 4, Async: true, JITWorkers: 2, Validate: true,
		InjectFault: panicAt(broker.FaultCompile, "Main."),
	})
	defer machine.Close()
	for i := 0; i < 30; i++ {
		if _, err := machine.Run(); err != nil {
			t.Fatal(err)
		}
	}
	machine.DrainJIT() // must return despite the panics
	for i, v := range machine.Env.Output {
		if v != ref.Env.Output[0] {
			t.Fatalf("run %d printed %v, interpreter printed %v", i, v, ref.Env.Output[0])
		}
	}
	if machine.Broker().Stats().Panics == 0 {
		t.Fatal("fault hook never fired")
	}
	for m, cerr := range machine.FailedCompilations() {
		var pe *broker.PanicError
		if !errors.As(cerr, &pe) {
			t.Fatalf("%s: non-panic failure leaked in: %v", m.QualifiedName(), cerr)
		}
		if machine.Broker().Pending(m, broker.NoOSR) {
			t.Fatalf("%s still in flight after containment", m.QualifiedName())
		}
	}
}

// TestCrashReproCapturedAndReplayable: a contained panic with CrashDir set
// produces a minimized JSON reproducer whose recorded body still triggers
// the same panic when replayed through check.Repro.Apply — the system's
// answer to HotSpot replay files.
func TestCrashReproCapturedAndReplayable(t *testing.T) {
	dir := t.TempDir()
	hook := panicAt("opt", "C.m") // a VM pipeline point, so the minimizer reproduces it
	prog, m := buildCounter(t)
	machine := New(prog, Options{
		EA: EAPartial, CompileThreshold: 2, Seed: 7,
		CrashDir: dir, InjectFault: hook,
	})
	for i := 0; i < 5; i++ {
		if _, err := machine.Call(m, []rt.Value{rt.IntValue(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if machine.Stats().CrashRepros != 1 {
		t.Fatalf("crash repros = %d, want 1", machine.Stats().CrashRepros)
	}
	path := filepath.Join(dir, "crash-C_m.json")
	r, err := check.LoadRepro(path)
	if err != nil {
		t.Fatalf("repro not written: %v", err)
	}
	if r.Method != "C.m" || r.Seed != 7 {
		t.Fatalf("repro header = %+v", r)
	}
	if !strings.Contains(r.Note, "minimized") {
		t.Fatalf("repro note %q does not record minimization", r.Note)
	}
	if len(r.Code) == 0 || len(r.Code) > len(m.Code) {
		t.Fatalf("minimized body has %d instructions, original %d", len(r.Code), len(m.Code))
	}
	// The original method must be untouched by minimization (it ran on a
	// clone while the interpreter could still be executing it).
	if v, err := machine.Call(m, []rt.Value{rt.IntValue(41)}); err != nil || v.I != 42 {
		t.Fatalf("original method corrupted by minimization: %v, %v", v, err)
	}

	// Replay: patch a fresh program with the recorded body and recompile
	// under the same fault configuration — the panic must reproduce.
	prog2, _ := buildCounter(t)
	m2, err := r.Apply(prog2)
	if err != nil {
		t.Fatalf("repro does not apply: %v", err)
	}
	replay := New(prog2, Options{EA: EAPartial, InjectFault: hook})
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		_, _ = replay.Compile(m2)
		return false
	}()
	if !panicked {
		t.Fatal("replayed repro did not reproduce the panic")
	}
	// Without the fault, the minimized body is an ordinary valid method.
	clean := New(prog2, Options{EA: EAPartial, Validate: true})
	if _, err := clean.Compile(m2); err != nil {
		t.Fatalf("minimized repro body does not compile cleanly: %v", err)
	}
}

// TestOSRFailureDoesNotPoisonMethod is the regression test for the
// failure-bookkeeping bug where any OSR-entry failure was recorded against
// the whole method: a failed OSR compile must leave CompileError(m) nil
// and the method still eligible for (and capable of) standard tier-up.
func TestOSRFailureDoesNotPoisonMethod(t *testing.T) {
	prog, m := buildCounter(t)
	machine := New(prog, Options{EA: EAPartial, CompileThreshold: 2, OSRThreshold: 100, Validate: true})

	machine.recordFailure(m, broker.Key{Name: m.QualifiedName(), EntryBCI: 5}, errors.New("osr boom"))

	if err := machine.CompileError(m); err != nil {
		t.Fatalf("OSR-only failure poisoned the method: CompileError = %v", err)
	}
	if err := machine.OSRCompileError(m, 5); err == nil {
		t.Fatal("OSR failure not recorded per entry point")
	}
	failed := machine.FailedCompilations()
	if ferr, ok := failed[m]; !ok || !strings.Contains(ferr.Error(), "osr@5") {
		t.Fatalf("FailedCompilations = %v, want an osr@5-annotated entry", failed)
	}
	// The method itself must still tier up at call boundaries.
	for i := 0; i < 5; i++ {
		if _, err := machine.Call(m, []rt.Value{rt.IntValue(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if machine.CompiledGraph(m) == nil {
		t.Fatal("method with a failed OSR entry never compiled its standard entry")
	}
}

// TestOSRFaultEndToEnd drives the same regression through the real broker
// path: a panic injected only into OSR graph building blacklists the loop
// entry, while the enclosing method still compiles and the program output
// is unchanged.
func TestOSRFaultEndToEnd(t *testing.T) {
	ref := runMode(t, hotLoopSrc, Options{Interpret: true})

	prog, err := mjCompile(hotLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	machine := New(prog, Options{
		EA: EAPartial, CompileThreshold: 2, OSRThreshold: 100, Validate: true,
		InjectFault: panicAt("build-osr", ""),
	})
	defer machine.Close()
	for i := 0; i < 4; i++ {
		if _, err := machine.Run(); err != nil {
			t.Fatal(err)
		}
	}
	machine.DrainJIT()
	if !sameOutput(machine.Env.Output[:len(ref.output)], ref.output) {
		t.Fatal("output diverged under OSR fault injection")
	}
	if machine.Stats().OSRCompilations != 0 {
		t.Fatal("panicked OSR compile installed code")
	}
	if machine.Broker().Stats().Panics == 0 {
		t.Fatal("OSR fault never fired")
	}
	sum := prog.ClassByName("Main").MethodByName("sum")
	if err := machine.CompileError(sum); err != nil {
		t.Fatalf("OSR panic poisoned Main.sum: %v", err)
	}
	if machine.hasFailed[sum.ID].Load() {
		t.Fatal("OSR panic blacklisted Main.sum's standard entry")
	}
	// The standard entry must still compile cleanly (the enclosing method
	// itself tiers up through its caller, which inlines it, so assert
	// compilability directly rather than installation).
	if _, err := machine.Compile(sum); err != nil {
		t.Fatalf("standard-entry compile of Main.sum failed after OSR panic: %v", err)
	}
}

// buildMethods assembles n independent trivial methods in one program.
func buildMethods(t *testing.T, n int) (*bc.Program, []*bc.Method) {
	t.Helper()
	a := bc.NewAssembler()
	c := a.Class("C", "")
	for i := 0; i < n; i++ {
		mb := c.Method(fmt.Sprintf("m%d", i), []bc.Kind{bc.KindInt}, bc.KindInt, true)
		mb.Load(0).Const(int64(i + 1)).Add().ReturnValue()
	}
	p, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*bc.Method, n)
	for i := range ms {
		ms[i] = p.ClassByName("C").MethodByName(fmt.Sprintf("m%d", i))
	}
	return p, ms
}

// TestQueueFullRejectionRearms is the regression test for rejected
// submissions: a method bounced off a full compile queue must become
// submit-eligible again (with backoff) and eventually compile once the
// queue drains, instead of being dropped or hammering Submit on every
// call.
func TestQueueFullRejectionRearms(t *testing.T) {
	prog, ms := buildMethods(t, 3)
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	machine := New(prog, Options{
		EA: EAPartial, CompileThreshold: 2, Validate: true,
		Async: true, JITWorkers: 1, JITQueueCap: 1,
		InjectFault: func(point, method string) {
			if point == broker.FaultCompile {
				select {
				case started <- struct{}{}:
				default:
				}
				<-release
			}
		},
	})
	defer machine.Close()
	call := func(m *bc.Method) {
		t.Helper()
		if _, err := machine.Call(m, []rt.Value{rt.IntValue(1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		call(ms[0]) // third call submits; worker parks inside the compile
	}
	<-started
	for i := 0; i < 3; i++ {
		call(ms[1]) // fills the 1-slot queue
	}
	for i := 0; i < 3; i++ {
		call(ms[2]) // rejected: queue full → re-armed with backoff
	}
	if machine.Broker().Stats().Rejected == 0 {
		t.Fatal("queue bound never rejected — test did not exercise the path")
	}
	if machine.Stats().Rearms == 0 {
		t.Fatal("rejected method was not re-armed")
	}
	if err := machine.CompileError(ms[2]); err != nil {
		t.Fatalf("rejection must not be a permanent failure: %v", err)
	}
	close(release)
	machine.DrainJIT()
	// The re-armed method becomes eligible again once its invocation count
	// passes the backoff target; keep calling until the broker accepts and
	// installs it.
	for i := 0; i < 500 && machine.CompiledGraph(ms[2]) == nil; i++ {
		call(ms[2])
		machine.DrainJIT()
	}
	if machine.CompiledGraph(ms[2]) == nil {
		t.Fatal("rejected method never compiled after the queue drained")
	}
}

// TestCompileBudgetsAreTransient: deadline and IR-node budget overruns
// degrade the method to the interpreter with backoff — counted as
// transient, never recorded as permanent failures.
func TestCompileBudgetsAreTransient(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"deadline", Options{EA: EAPartial, CompileThreshold: 2, CompileDeadline: time.Nanosecond}},
		{"nodes", Options{EA: EAPartial, CompileThreshold: 2, MaxIRNodes: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, m := buildCounter(t)
			machine := New(prog, tc.opts)
			for i := 0; i < 12; i++ {
				v, err := machine.Call(m, []rt.Value{rt.IntValue(int64(i))})
				if err != nil {
					t.Fatal(err)
				}
				if v.I != int64(i)+1 {
					t.Fatalf("call %d = %d, want %d", i, v.I, i+1)
				}
			}
			if machine.CompiledGraph(m) != nil {
				t.Fatal("over-budget compile installed code")
			}
			st := machine.Stats()
			if st.TransientFailures == 0 || st.Rearms == 0 {
				t.Fatalf("stats = %+v, want transient failures and re-arms", st)
			}
			if err := machine.CompileError(m); err != nil {
				t.Fatalf("budget overrun recorded as permanent: %v", err)
			}
			if len(machine.FailedCompilations()) != 0 {
				t.Fatal("budget overrun leaked into FailedCompilations")
			}
			// Backoff: re-arms grow geometrically, so 12 calls see far
			// fewer compile attempts than the no-backoff worst case.
			if st.TransientFailures > 4 {
				t.Fatalf("%d compile attempts in 12 calls — backoff not applied", st.TransientFailures)
			}
		})
	}
}

// TestDirectCompileSurfacesBudgetError pins the structured error shape on
// the broker-bypassing Compile path.
func TestDirectCompileSurfacesBudgetError(t *testing.T) {
	prog, m := buildCounter(t)
	machine := New(prog, Options{EA: EAPartial, MaxIRNodes: 1})
	_, err := machine.Compile(m)
	if !budget.IsBudget(err) {
		t.Fatalf("Compile error = %v, want a budget error", err)
	}
	var be *budget.Err
	if !errors.As(err, &be) || be.Kind != "nodes" || be.Method != "C.m" || be.Limit != 1 {
		t.Fatalf("structured budget error = %+v", be)
	}
}

// TestDisabledBudgetNeverReadsClock is the zero-overhead guard for the
// default configuration: with no deadline configured, a full compile must
// not read the clock on behalf of budget checks (budget.ClockReads is the
// proof counter, in the same spirit as ir.DomTreesBuilt).
func TestDisabledBudgetNeverReadsClock(t *testing.T) {
	prog, m := buildCounter(t)
	machine := New(prog, Options{EA: EAPartial, Speculate: true, Validate: true})
	before := budget.ClockReads()
	if _, err := machine.Compile(m); err != nil {
		t.Fatal(err)
	}
	if got := budget.ClockReads() - before; got != 0 {
		t.Fatalf("disabled budget read the clock %d times during a compile", got)
	}
}

// TestFaultInjectionHammer exercises the whole containment stack under the
// race detector: several async VMs tier up the same program while an
// injected fault panics every other compile. Nothing may deadlock, every
// recorded failure must be a contained panic, and every VM's output must
// match the interpreter.
func TestFaultInjectionHammer(t *testing.T) {
	prog := loadExample(t, "../../examples/cachekey.mj")
	ref := New(prog, Options{Interpret: true})
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	var ctr atomic.Int64
	hook := func(point, method string) {
		if point == broker.FaultCompile && ctr.Add(1)%2 == 0 {
			panic("injected hammer fault compiling " + method)
		}
	}

	const vms = 3
	machines := make([]*VM, vms)
	for i := range machines {
		machines[i] = New(prog, Options{
			EA: EAPartial, CompileThreshold: 4, Async: true, JITWorkers: 2,
			Validate: true, InjectFault: hook,
		})
	}
	var wg sync.WaitGroup
	errs := make([]error, vms)
	for i := 0; i < vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 15; r++ {
				if _, err := machines[i].Run(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	totalPanics := int64(0)
	for i, m := range machines {
		if errs[i] != nil {
			t.Fatalf("vm %d: %v", i, errs[i])
		}
		m.DrainJIT() // must return: no wedged queue, no stuck in-flight entries
		m.Close()
		totalPanics += m.Broker().Stats().Panics
		for meth, cerr := range m.FailedCompilations() {
			var pe *broker.PanicError
			if !errors.As(cerr, &pe) {
				t.Fatalf("vm %d: %s failed with a non-injected error: %v", i, meth.QualifiedName(), cerr)
			}
		}
		for j, v := range m.Env.Output {
			if v != ref.Env.Output[0] {
				t.Fatalf("vm %d run %d printed %v, interpreter printed %v", i, j, v, ref.Env.Output[0])
			}
		}
	}
	if totalPanics == 0 {
		t.Fatal("hammer never tripped the fault hook")
	}
}

// mjCompile builds a program from source without the runMode harness
// (which fails the test on any recorded compile failure — here failures
// are the point).
func mjCompile(src string) (*bc.Program, error) {
	return mj.Compile(src, "Main.main")
}
