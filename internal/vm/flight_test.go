package vm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pea/internal/obs"
	"pea/internal/rt"
	"pea/internal/stat"
	"pea/internal/testprog"
)

// TestFlightDumpOnPanic: a contained compiler panic with CrashDir set must
// leave a flight-recorder dump next to the crash reproducer — the black box
// that says what the JIT was doing leading up to the crash — and the dump
// must replay cleanly through the offline analyzer.
func TestFlightDumpOnPanic(t *testing.T) {
	dir := t.TempDir()
	prog, m := buildCounter(t)
	machine := New(prog, Options{
		EA: EAPartial, CompileThreshold: 2, Seed: 7,
		CrashDir: dir, InjectFault: panicAt("opt", "C.m"),
	})
	for i := 0; i < 5; i++ {
		if _, err := machine.Call(m, []rt.Value{rt.IntValue(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if machine.Stats().CrashRepros != 1 {
		t.Fatalf("crash repros = %d, want 1", machine.Stats().CrashRepros)
	}
	if _, err := os.Stat(filepath.Join(dir, "crash-C_m.json")); err != nil {
		t.Fatalf("crash repro not written: %v", err)
	}

	dump := filepath.Join(dir, "flight-C_m.jsonl")
	data, err := os.ReadFile(dump)
	if err != nil {
		t.Fatalf("flight dump not written next to the crash repro: %v", err)
	}
	if !strings.Contains(string(data), `"kind":"panic"`) {
		t.Errorf("flight dump has no panic record:\n%s", data)
	}
	if !strings.Contains(string(data), `"kind":"compile_start"`) {
		t.Errorf("flight dump has no compile_start record:\n%s", data)
	}

	rep, err := stat.Analyze(strings.NewReader(string(data)))
	if err != nil {
		t.Fatalf("peastat cannot analyze the dump: %v", err)
	}
	if rep.FlightEvents == 0 || rep.ObsEvents != 0 {
		t.Errorf("analyzer saw %d flight / %d obs events, want >0/0",
			rep.FlightEvents, rep.ObsEvents)
	}
}

// TestEscapeAttributionSyncAsyncAgree: per-allocation-site escape decisions
// are a property of the method's code, not of when the broker got around to
// compiling it. For a spread of generated programs, the per-site
// virtualized/materialized/lock-elision counts must be identical between
// synchronous tier-up and background-worker compilation (speculation and
// OSR off, so each method compiles exactly once in both modes).
func TestEscapeAttributionSyncAsyncAgree(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	type siteKey struct {
		site  string
		class string
	}
	run := func(p testprog.Program, async bool) map[siteKey][3]int64 {
		t.Helper()
		esc := obs.NewEscapeTable()
		opts := Options{
			EA: EAPartial, Validate: true,
			MaxSteps: 50_000_000, CompileThreshold: 4,
			Sink:  obs.NewSink(esc),
			Async: async, JITWorkers: 2,
		}
		machine := New(p.Prog, opts)
		defer machine.Close()
		for round := 0; round < 7; round++ {
			for _, args := range p.ArgSets {
				vals := []rt.Value{rt.IntValue(args[0]), rt.IntValue(args[1])}
				if _, err := machine.Call(p.Entry, vals); err != nil {
					break
				}
			}
		}
		machine.DrainJIT()
		for m, cerr := range machine.FailedCompilations() {
			t.Fatalf("%s: compiling %s: %v", p.Name, m.QualifiedName(), cerr)
		}
		sites := make(map[siteKey][3]int64)
		for _, s := range esc.Snapshot() {
			sites[siteKey{s.Site, s.Class}] = [3]int64{s.Virtualized, s.Materialized, s.LocksElided}
		}
		return sites
	}
	for seed := 0; seed < seeds; seed++ {
		p := testprog.Generate(int64(seed))
		sync := run(p, false)
		async := run(p, true)
		if len(sync) != len(async) {
			t.Fatalf("seed %d: %d sites sync vs %d async\nsync: %v\nasync: %v",
				seed, len(sync), len(async), sync, async)
		}
		for k, sv := range sync {
			if av, ok := async[k]; !ok || av != sv {
				t.Fatalf("seed %d site %s (%s): sync virt/mat/locks %v, async %v",
					seed, k.site, k.class, sv, async[k])
			}
		}
	}
}
