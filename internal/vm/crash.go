package vm

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"pea/internal/bc"
	"pea/internal/broker"
	"pea/internal/check"
)

// captureCrashRepro turns a contained compiler panic into an offline
// artifact: a minimized, committed-format JSON reproducer in
// Options.CrashDir — the moral equivalent of HotSpot's replay files. It
// runs on the broker's failure path (possibly a worker goroutine), never
// on the execution thread.
//
// The method is cloned before anything else: check.Minimize mutates the
// candidate body in place while the interpreter may still be executing the
// original. Minimization re-runs the compile pipeline on the clone after
// every candidate reduction, keeping only reductions under which the
// compile still panics; when the panic does not reproduce standalone
// (e.g. it depended on a racing profile state or an every-N fault
// counter), the unminimized body is saved with a note saying so — a
// non-reproducible repro is still a better bug report than a log line.
func (vm *VM) captureCrashRepro(m *bc.Method, k broker.Key, pe *broker.PanicError) {
	if vm.Opts.CrashDir == "" {
		return
	}
	// One capture per method: a panicking compile resubmitted under
	// different keys (spec/no-spec, OSR entries) minimizes once.
	vm.crashMu.Lock()
	if vm.crashCaptured == nil {
		vm.crashCaptured = make(map[*bc.Method]bool)
	}
	if vm.crashCaptured[m] {
		vm.crashMu.Unlock()
		return
	}
	vm.crashCaptured[m] = true
	vm.crashMu.Unlock()

	clone := cloneForRepro(m)
	note := fmt.Sprintf("compiler panic: %v", pe.Value)
	if vm.compilePanics(clone, k) {
		removed := check.Minimize(clone, func() bool { return vm.compilePanics(clone, k) })
		note += fmt.Sprintf(" (minimized: %d instructions eliminated)", removed)
	} else {
		note += " (panic did not reproduce standalone; body saved unminimized)"
	}

	if err := os.MkdirAll(vm.Opts.CrashDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "vm: cannot create crash dir %s: %v\n", vm.Opts.CrashDir, err)
		return
	}
	path := filepath.Join(vm.Opts.CrashDir, "crash-"+sanitizeName(m.QualifiedName())+".json")
	if err := check.NewRepro(clone, vm.Opts.Seed, note).Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "vm: cannot save crash repro %s: %v\n", path, err)
		return
	}
	atomic.AddInt64(&vm.VMStats.CrashRepros, 1)
	if s := vm.Opts.Sink; s != nil {
		s.VMCrashRepro(m.QualifiedName(), path)
	}

	// Dump the flight recorder next to the repro: the last few thousand
	// compile/deopt/OSR events leading up to the panic are exactly the
	// context a crash investigation needs (the JFR dump-on-exit model).
	fpath := filepath.Join(vm.Opts.CrashDir, "flight-"+sanitizeName(m.QualifiedName())+".jsonl")
	if err := vm.flight.WriteFile(fpath); err != nil {
		fmt.Fprintf(os.Stderr, "vm: cannot save flight dump %s: %v\n", fpath, err)
	}
}

// compilePanics reports whether compiling clone under k's configuration
// panics. Errors (including budget bailouts) do not count: the minimizer
// must not "simplify" a panic into an ordinary failure.
func (vm *VM) compilePanics(clone *bc.Method, k broker.Key) (panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	_, _ = vm.compileEntry(clone, k.Spec, k.EntryBCI)
	return false
}

// cloneForRepro copies m deeply enough that mutating the clone's body is
// invisible to concurrent execution of the original: the Method struct and
// its Code slice are copied; the Class pointer (and with it the qualified
// name the repro records) is shared read-only.
func cloneForRepro(m *bc.Method) *bc.Method {
	clone := *m
	clone.Code = append([]bc.Instr(nil), m.Code...)
	clone.LocalKinds = append([]bc.Kind(nil), m.LocalKinds...)
	return &clone
}

// sanitizeName maps a qualified method name onto a filesystem-safe file
// stem (Class.method → Class_method). Method names come from untrusted
// source programs (a hostile tenant can name a class "../../../../etc"),
// so the mapping is an allowlist: anything outside [A-Za-z0-9-] becomes
// '_', which removes separators, traversal dots, NULs, and shell
// metacharacters in one pass. Stems longer than maxNameStem — filenames
// hit filesystem limits around 255 bytes, and two prefixes land on top —
// are truncated and suffixed with a hash of the full name so distinct
// long names keep distinct files; an empty name gets the same treatment.
func sanitizeName(qname string) string {
	const maxNameStem = 120
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '_'
		}
	}, qname)
	if len(s) <= maxNameStem && s != "" {
		return s
	}
	h := fnv.New64a()
	h.Write([]byte(qname))
	if len(s) > maxNameStem {
		s = s[:maxNameStem]
	}
	return fmt.Sprintf("%s-%016x", s, h.Sum64())
}
