package vm

import (
	"strings"
	"testing"

	"pea/internal/broker"
)

// TestSummariesKeepCallArgsVirtual is the PR's acceptance check: on
// call-heavy programs whose callees are too big to inline and never
// observe their ref argument, the summaries-on VM must keep the caller's
// allocation virtual (fewer runtime allocations) while producing the same
// result as the summaries-off VM.
func TestSummariesKeepCallArgsVirtual(t *testing.T) {
	for _, name := range []string{"callBulkNoEscape", "callChainForwarding", "callGuardedPred"} {
		t.Run(name, func(t *testing.T) {
			p := corpusProg(t, name)
			args := p.ArgSets[len(p.ArgSets)-1]
			vOff, off, err := runVM(t, p, Options{EA: EAPartial}, args, 60)
			if err != nil {
				t.Fatal(err)
			}
			vOn, on, err := runVM(t, p, Options{EA: EAPartial, Summaries: true}, args, 60)
			if err != nil {
				t.Fatal(err)
			}
			if !vOn.Equal(vOff) {
				t.Fatalf("result divergence: summaries-on %v, summaries-off %v", vOn, vOff)
			}
			offAllocs := off.Env.Stats.Allocations
			onAllocs := on.Env.Stats.Allocations
			if onAllocs >= offAllocs {
				t.Fatalf("summaries kept nothing virtual: %d allocations with summaries, %d without",
					onAllocs, offAllocs)
			}
			s := on.Summaries()
			if s == nil {
				t.Fatal("summaries-on VM resolved no summary set")
			}
			if !strings.Contains(s.Table(), "P.") {
				t.Fatalf("summary table missing program methods:\n%s", s.Table())
			}
		})
	}
}

// TestSummariesOffVMHasNoSummarySet: the ablation control must not pay for
// or depend on the analysis.
func TestSummariesOffVMHasNoSummarySet(t *testing.T) {
	p := corpusProg(t, "callBulkNoEscape")
	_, machine, err := runVM(t, p, Options{EA: EAPartial}, p.ArgSets[0], 40)
	if err != nil {
		t.Fatal(err)
	}
	if machine.Summaries() != nil {
		t.Fatal("summaries-off VM has a summary set")
	}
}

// TestSummaryStoreWarmRestart: a second VM process (fresh broker, fresh
// Store handle) over the same store directory must load the persisted
// summary set instead of re-running the analysis, and behave identically.
func TestSummaryStoreWarmRestart(t *testing.T) {
	p := corpusProg(t, "callBulkNoEscape")
	dir := t.TempDir()
	args := p.ArgSets[len(p.ArgSets)-1]

	store1, err := broker.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1, cold, err := runVM(t, p, Options{EA: EAPartial, Summaries: true, Store: store1}, args, 60)
	if err != nil {
		t.Fatal(err)
	}
	if st := store1.Stats(); st.SummaryWrites == 0 {
		t.Fatalf("cold VM persisted no summaries: %+v", st)
	}

	store2, err := broker.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	v2, warm, err := runVM(t, p, Options{EA: EAPartial, Summaries: true, Store: store2}, args, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Equal(v1) {
		t.Fatalf("warm restart diverged: %v vs %v", v2, v1)
	}
	// The summaries-informed artifacts themselves replay from the store
	// (the cache key carries the Summaries bit), so the warm VM may never
	// need to compile at all.
	if st := store2.Stats(); st.Hits == 0 {
		t.Fatalf("warm VM reloaded no artifacts: %+v", st)
	}
	if warm.Env.Stats.Allocations != cold.Env.Stats.Allocations {
		t.Fatalf("warm restart changed allocation behavior: %d vs %d",
			warm.Env.Stats.Allocations, cold.Env.Stats.Allocations)
	}
	// Forcing summary resolution on the warm VM must load the persisted
	// set, not re-run the analysis from scratch.
	s1, s2 := cold.Summaries(), warm.Summaries()
	if s1 == nil || s2 == nil || s1.Table() != s2.Table() {
		t.Fatal("persisted summary set differs from the computed one")
	}
	if st := store2.Stats(); st.SummaryHits == 0 {
		t.Fatalf("warm VM did not hit the summary store: %+v", st)
	}
}
