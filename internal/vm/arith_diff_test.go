package vm

import (
	"fmt"
	"math"
	"testing"

	"pea/internal/bc"
	"pea/internal/interp"
	"pea/internal/rt"
)

// TestArithEdgeCasesAgreeAcrossTiers is the differential check for the JVM
// integer-arithmetic corner cases: for each case the interpreter, the
// compiled executor (operands flowing in as parameters, so no folding), and
// the canonicalizer's constant folder (operands as constants, folded at
// compile time) must produce the same value as interp.EvalArith.
func TestArithEdgeCasesAgreeAcrossTiers(t *testing.T) {
	min, max := int64(math.MinInt64), int64(math.MaxInt64)
	cases := []struct {
		op   bc.Op
		a, b int64
	}{
		{bc.OpDiv, min, -1},
		{bc.OpRem, min, -1},
		{bc.OpRem, -7, 3},
		{bc.OpRem, 7, -3},
		{bc.OpDiv, -7, 2},
		{bc.OpShl, 1, 64},
		{bc.OpShl, 1, -1},
		{bc.OpShr, -8, 65},
		{bc.OpUShr, -1, 1},
		{bc.OpAdd, max, 1},
		{bc.OpSub, min, 1},
		{bc.OpMul, max, 2},
	}

	a := bc.NewAssembler()
	c := a.Class("C", "")
	for i, cse := range cases {
		// paramOp(a, b) = a op b: reaches the executor as an OpArith.
		pm := c.Method(fmt.Sprintf("p%d", i), []bc.Kind{bc.KindInt, bc.KindInt}, bc.KindInt, true)
		pm.Load(0).Load(1).Arith(cse.op).ReturnValue()
		// constOp() = a op b: canonicalize folds it to a constant.
		cm := c.Method(fmt.Sprintf("c%d", i), nil, bc.KindInt, true)
		cm.Const(cse.a).Const(cse.b).Arith(cse.op).ReturnValue()
	}
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}

	machine := New(prog, Options{EA: EAPartial, Validate: true})
	for i, cse := range cases {
		want, err := interp.EvalArith(cse.op, cse.a, cse.b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		args := []rt.Value{rt.IntValue(cse.a), rt.IntValue(cse.b)}
		pm := prog.ClassByName("C").MethodByName(fmt.Sprintf("p%d", i))
		cm := prog.ClassByName("C").MethodByName(fmt.Sprintf("c%d", i))

		iv, err := machine.Interp.Call(pm, args)
		if err != nil {
			t.Fatalf("case %d interp: %v", i, err)
		}
		pg, err := machine.Compile(pm)
		if err != nil {
			t.Fatalf("case %d compile: %v", i, err)
		}
		ev, err := machine.Engine.Run(pg, args)
		if err != nil {
			t.Fatalf("case %d exec: %v", i, err)
		}
		cg, err := machine.Compile(cm)
		if err != nil {
			t.Fatalf("case %d const compile: %v", i, err)
		}
		cv, err := machine.Engine.Run(cg, nil)
		if err != nil {
			t.Fatalf("case %d const exec: %v", i, err)
		}
		if iv.I != want || ev.I != want || cv.I != want {
			t.Errorf("case %d (%v %d,%d): interp=%d exec=%d folded=%d want=%d",
				i, cse.op, cse.a, cse.b, iv.I, ev.I, cv.I, want)
		}
	}
}
