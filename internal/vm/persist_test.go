package vm

import (
	"path/filepath"
	"strings"
	"testing"

	"pea/internal/broker"
	"pea/internal/check"
	"pea/internal/mj"
)

// persistSrc exercises the interesting artifact shapes: allocation that
// scalar-replaces, a partial escape to a static, calls that inline, and a
// hot loop — so persisted graphs carry virtual object states, field
// references, and devirtualized call sites, not just arithmetic.
const persistSrc = `
class Point {
	int x;
	int y;
	Point(int x, int y) {
		this.x = x;
		this.y = y;
	}
	int dist2() {
		return this.x * this.x + this.y * this.y;
	}
}
class Main {
	static Point sink;
	static int work(int i) {
		Point p = new Point(i, i + 1);
		if (i % 13 == 0) {
			Main.sink = p;
		}
		return p.dist2();
	}
	static void main() {
		int acc = 0;
		int i = 0;
		while (i < 200) {
			acc = acc + Main.work(i);
			i = i + 1;
		}
		print(acc);
	}
}
`

// runPersist links persistSrc from scratch (a fresh *bc.Program, as a new
// process would have) and runs it to completion on a VM backed by the
// given store.
func runPersist(t *testing.T, opts Options) (output []int64, st broker.Stats) {
	t.Helper()
	prog, err := mj.Compile(persistSrc, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	machine := New(prog, opts)
	defer machine.Close()
	if _, err := machine.Run(); err != nil {
		t.Fatal(err)
	}
	machine.DrainJIT()
	for m, cerr := range machine.FailedCompilations() {
		t.Fatalf("compile of %s failed: %v", m.QualifiedName(), cerr)
	}
	return append([]int64(nil), machine.Env.Output...), machine.Broker().Stats()
}

// TestWarmRestartRecompilesNothing is the tentpole's end-to-end proof: a
// "restarted process" (fresh link, fresh VM, fresh memory cache, same
// store directory) replays every artifact from disk — zero pipeline runs —
// and computes the same answer.
func TestWarmRestartRecompilesNothing(t *testing.T) {
	for _, mode := range []EAMode{EAOff, EAPartial} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			store1, err := broker.NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			cold, coldStats := runPersist(t, Options{
				EA: mode, CompileThreshold: 5, Store: store1, Validate: true,
			})
			if coldStats.Compiled == 0 {
				t.Fatal("cold run compiled nothing; test is vacuous")
			}
			if ws := store1.Stats(); ws.Writes != coldStats.Compiled {
				t.Fatalf("wrote %d artifacts for %d compiles", ws.Writes, coldStats.Compiled)
			}

			store2, err := broker.NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			warm, warmStats := runPersist(t, Options{
				EA: mode, CompileThreshold: 5, Store: store2, Validate: true,
			})
			if warmStats.Compiled != 0 {
				t.Fatalf("warm restart ran the pipeline %d times, want 0", warmStats.Compiled)
			}
			if warmStats.DiskHits != coldStats.Compiled {
				t.Fatalf("disk hits = %d, want %d", warmStats.DiskHits, coldStats.Compiled)
			}
			if len(warm) != len(cold) {
				t.Fatalf("output length %d vs %d", len(warm), len(cold))
			}
			for i := range warm {
				if warm[i] != cold[i] {
					t.Fatalf("output[%d] = %d, cold run printed %d", i, warm[i], cold[i])
				}
			}
			if rej := store2.Stats().Rejected; rej != 0 {
				t.Fatalf("warm restart rejected %d artifacts", rej)
			}
		})
	}
}

// TestStaleStoreEntriesIgnoredAfterEdit: edit the program, restart — the
// old artifacts' keys no longer match (the content fingerprint moved), so
// the VM recompiles everything instead of replaying stale code.
func TestStaleStoreEntriesIgnoredAfterEdit(t *testing.T) {
	dir := t.TempDir()
	store1, err := broker.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, coldStats := runPersist(t, Options{
		EA: EAPartial, CompileThreshold: 5, Store: store1, Validate: true,
	})

	edited := strings.Replace(persistSrc, "i % 13", "i % 7", 1)
	prog, err := mj.Compile(edited, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	store2, err := broker.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	machine := New(prog, Options{
		EA: EAPartial, CompileThreshold: 5, Store: store2, Validate: true,
	})
	defer machine.Close()
	if _, err := machine.Run(); err != nil {
		t.Fatal(err)
	}
	st := machine.Broker().Stats()
	if st.DiskHits != 0 {
		t.Fatalf("edited program replayed %d stale artifacts", st.DiskHits)
	}
	if st.Compiled != coldStats.Compiled {
		t.Fatalf("edited program compiled %d methods, original %d", st.Compiled, coldStats.Compiled)
	}
}

// TestSharedCacheRebindsAcrossLinks: two VMs over independent links of the
// same source share one in-memory cache. Content-addressed keys make the
// second VM hit artifacts whose graphs are bound to the first VM's
// *bc.Method instances; the install path must rebind them onto its own
// program rather than run foreign pointers or recompile.
func TestSharedCacheRebindsAcrossLinks(t *testing.T) {
	cache := broker.NewCache()
	out1, st1 := runPersist(t, Options{
		EA: EAPartial, CompileThreshold: 5, Cache: cache, Validate: true,
	})
	if st1.Compiled == 0 {
		t.Fatal("first VM compiled nothing; test is vacuous")
	}
	out2, st2 := runPersist(t, Options{
		EA: EAPartial, CompileThreshold: 5, Cache: cache, Validate: true,
	})
	if st2.Compiled != 0 {
		t.Fatalf("second link recompiled %d methods despite shared cache", st2.Compiled)
	}
	if st2.CacheHits == 0 {
		t.Fatal("second link never hit the shared cache")
	}
	if len(out1) != len(out2) || out1[0] != out2[0] {
		t.Fatalf("rebound artifacts computed %v, original %v", out2, out1)
	}
}

// TestSharedBrokerServesTwoTenants: the multi-tenant shape peaserve uses —
// one broker (workers, cache, store) serving VMs with per-tenant hooks.
func TestSharedBrokerServesTwoTenants(t *testing.T) {
	store, err := broker.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shared := broker.New(broker.Options{
		Cache: broker.NewCache(),
		Store: store,
		Check: check.Basic,
	})
	defer shared.Close()

	var outs [][]int64
	for tenant := 0; tenant < 2; tenant++ {
		out, _ := runPersist(t, Options{
			EA: EAPartial, CompileThreshold: 5, JIT: shared, Validate: true,
		})
		outs = append(outs, out)
	}
	st := shared.Stats()
	// Tenant 1 compiled; tenant 2's fresh link resolved from the shared
	// tiers (memory via rebind, or disk) without one pipeline run.
	if st.Compiled == 0 {
		t.Fatal("shared broker never compiled")
	}
	if st.CacheHits+st.DiskHits == 0 {
		t.Fatal("second tenant reused nothing from the shared tiers")
	}
	if st.Compiled != st.Installed-st.CacheHits-st.DiskHits {
		t.Logf("broker stats: %+v", st) // informational; exact split depends on timing
	}
	if outs[0][0] != outs[1][0] {
		t.Fatalf("tenants disagree: %v vs %v", outs[0], outs[1])
	}
	// Close is per-tenant and must not tear down the shared broker: a
	// third tenant still gets service.
	out, st3 := runPersist(t, Options{
		EA: EAPartial, CompileThreshold: 5, JIT: shared, Validate: true,
	})
	if st3.Compiled != st.Compiled {
		t.Fatalf("third tenant recompiled: %d vs %d", st3.Compiled, st.Compiled)
	}
	if out[0] != outs[0][0] {
		t.Fatalf("third tenant output %v, want %v", out, outs[0])
	}
}

// TestSanitizeHostileNames: crash-repro and flight-dump filenames embed
// method names that hostile tenant programs choose; the sanitized stem
// must stay inside the crash directory whatever the input.
func TestSanitizeHostileNames(t *testing.T) {
	hostile := []string{
		"../../../../etc/passwd",
		"..\\..\\windows\\system32",
		"a/b/c.d",
		"name with spaces and $(rm -rf ~)",
		"nul\x00byte",
		".",
		"..",
		"",
		strings.Repeat("x", 500),
		strings.Repeat("x", 499) + "y", // differs only past the truncation point
	}
	seen := make(map[string]string)
	for _, name := range hostile {
		s := sanitizeName(name)
		if s == "" {
			t.Errorf("%q: sanitized to empty stem", name)
		}
		if len(s) > 200 {
			t.Errorf("%q: stem length %d exceeds filesystem headroom", name, len(s))
		}
		if strings.ContainsAny(s, "/\\\x00") || strings.Contains(s, "..") {
			t.Errorf("%q: unsafe stem %q", name, s)
		}
		if filepath.Base(filepath.Join("dir", s)) != s {
			t.Errorf("%q: stem %q escapes its directory", name, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("%q and %q collide on stem %q", name, prev, s)
		}
		seen[s] = name
	}
}
