package vm

import (
	"fmt"

	"pea/internal/exec"
	"pea/internal/exec/closure"
)

// Backend selects the execution backend installed code runs on.
type Backend int

const (
	// BackendOracle is the tree-walking engine with the deterministic
	// cycle cost model (the default): slow, auditable, and the
	// differential-testing oracle for every other backend.
	BackendOracle Backend = iota
	// BackendClosure is the template JIT: graphs are lowered once at
	// install time into flat per-block closure sequences with dense value
	// slots — real wall-clock speed, no cycle model.
	BackendClosure
)

// String names the backend as the -backend flag spells it.
func (b Backend) String() string {
	switch b {
	case BackendOracle:
		return "oracle"
	case BackendClosure:
		return "closure"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend parses a -backend flag value.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "oracle":
		return BackendOracle, nil
	case "closure":
		return BackendClosure, nil
	default:
		return 0, fmt.Errorf("unknown backend %q (want oracle or closure)", s)
	}
}

// impl returns the exec-level backend implementation.
func (b Backend) impl() exec.Backend {
	if b == BackendClosure {
		return closure.New()
	}
	return exec.Oracle()
}
