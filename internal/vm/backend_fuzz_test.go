package vm

import (
	"testing"

	"pea/internal/check"
	"pea/internal/obs"
	"pea/internal/rt"
	"pea/internal/testprog"
)

// backendOutcome is everything observable about one backend's run over a
// generated program: per-call semantics, final heap state, heap-effect
// counters, deopt behavior, and the escape-attribution table.
type backendOutcome struct {
	results []rt.Value
	errs    []bool
	out     []int64
	acc     int64
	sinkSet bool
	sinkV   int64

	allocs  int64
	monOps  int64
	deopts  int64
	remats  int64
	escapes string
}

// runBackendConfig executes every argument set several times in one VM (so
// the JIT warms up and both freshly compiled and cached code run) and
// returns the observation. The escape table aggregates the PEA pipeline's
// per-site decisions, so it checks that backend selection never leaks into
// compile-time analysis.
func runBackendConfig(t *testing.T, p testprog.Program, opts Options) backendOutcome {
	t.Helper()
	et := obs.NewEscapeTable()
	opts.Sink = obs.NewSink(et)
	opts.MaxSteps = 50_000_000
	opts.CompileThreshold = 4
	opts.CheckLevel = check.Strict
	machine := New(p.Prog, opts)
	defer machine.Close()
	var o backendOutcome
	for round := 0; round < 7; round++ {
		for _, args := range p.ArgSets {
			vals := []rt.Value{rt.IntValue(args[0]), rt.IntValue(args[1])}
			v, err := machine.Call(p.Entry, vals)
			if round == 6 {
				o.results = append(o.results, v)
				o.errs = append(o.errs, err != nil)
			}
			if err != nil {
				break
			}
		}
	}
	machine.DrainJIT()
	for m, cerr := range machine.FailedCompilations() {
		t.Fatalf("%s: compiling %s: %v", p.Name, m.QualifiedName(), cerr)
	}
	sink := p.Prog.ClassByName("Box").StaticByName("sink")
	acc := p.Prog.ClassByName("Box").StaticByName("acc")
	o.out = machine.Env.Output
	o.acc = machine.Env.GetStatic(acc).I
	if sv := machine.Env.GetStatic(sink); sv.Ref != nil {
		o.sinkSet = true
		o.sinkV = sv.Ref.Fields[0].I
	}
	o.allocs = machine.Env.Stats.Allocations
	o.monOps = machine.Env.Stats.MonitorOps
	o.deopts = machine.Env.Stats.Deopts
	o.remats = machine.Env.Stats.Materializations
	o.escapes = et.Table()
	return o
}

// TestFuzzBackendDifferential runs generated programs under the oracle and
// closure backends in the same JIT configurations and requires identical
// observable behavior. Synchronous configurations are deterministic, so the
// comparison is total: results, traps, output, final statics, allocation
// and monitor counts, deopt counts, materializations, and the per-site
// escape-attribution table must all match. Asynchronous configurations
// compile on background workers, so install timing (and hence how many
// calls run compiled vs interpreted) legitimately varies; there the
// comparison covers everything semantically visible to the program.
//
// The name contains "Fuzz" so CI's race-mode fuzz smoke job
// (-run Fuzz ./internal/vm) exercises both backends under the detector.
func TestFuzzBackendDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	configs := []struct {
		name   string
		strict bool // deterministic: compare heap effects + escape table too
		opts   Options
	}{
		{"sync", true, Options{EA: EAPartial, Speculate: true}},
		{"sync-osr", true, Options{EA: EAPartial, Speculate: true, OSRThreshold: 8}},
		{"async", false, Options{EA: EAPartial, Speculate: true, Async: true, JITWorkers: 2}},
		{"async-osr", false, Options{EA: EAPartial, Speculate: true, OSRThreshold: 8, Async: true, JITWorkers: 2}},
		{"sync-sum", true, Options{EA: EAPartial, Speculate: true, Summaries: true}},
	}
	for seed := 0; seed < seeds; seed++ {
		p := testprog.Generate(int64(seed))
		for _, cfg := range configs {
			oo := cfg.opts
			oo.Backend = BackendOracle
			co := cfg.opts
			co.Backend = BackendClosure
			ref := runBackendConfig(t, p, oo)
			got := runBackendConfig(t, p, co)

			if len(got.results) != len(ref.results) {
				t.Fatalf("seed %d %s: %d final-round calls vs oracle %d",
					seed, cfg.name, len(got.results), len(ref.results))
			}
			for i := range ref.results {
				if got.errs[i] != ref.errs[i] {
					t.Fatalf("seed %d %s call %d: trap divergence", seed, cfg.name, i)
				}
				if !got.errs[i] && !got.results[i].Equal(ref.results[i]) {
					t.Fatalf("seed %d %s call %d: closure %v, oracle %v",
						seed, cfg.name, i, got.results[i], ref.results[i])
				}
			}
			if got.acc != ref.acc {
				t.Fatalf("seed %d %s: acc %d, oracle %d", seed, cfg.name, got.acc, ref.acc)
			}
			if got.sinkSet != ref.sinkSet || (got.sinkSet && got.sinkV != ref.sinkV) {
				t.Fatalf("seed %d %s: sink (%v,%d), oracle (%v,%d)",
					seed, cfg.name, got.sinkSet, got.sinkV, ref.sinkSet, ref.sinkV)
			}
			if len(got.out) != len(ref.out) {
				t.Fatalf("seed %d %s: output length %d vs %d",
					seed, cfg.name, len(got.out), len(ref.out))
			}
			for i := range ref.out {
				if got.out[i] != ref.out[i] {
					t.Fatalf("seed %d %s: output[%d] %d vs %d",
						seed, cfg.name, i, got.out[i], ref.out[i])
				}
			}
			if !cfg.strict {
				continue
			}
			if got.allocs != ref.allocs {
				t.Fatalf("seed %d %s: %d allocations, oracle %d",
					seed, cfg.name, got.allocs, ref.allocs)
			}
			if got.monOps != ref.monOps {
				t.Fatalf("seed %d %s: %d monitor ops, oracle %d",
					seed, cfg.name, got.monOps, ref.monOps)
			}
			if got.deopts != ref.deopts {
				t.Fatalf("seed %d %s: %d deopts, oracle %d",
					seed, cfg.name, got.deopts, ref.deopts)
			}
			if got.remats != ref.remats {
				t.Fatalf("seed %d %s: %d materializations, oracle %d",
					seed, cfg.name, got.remats, ref.remats)
			}
			if got.escapes != ref.escapes {
				t.Fatalf("seed %d %s: escape tables diverge\nclosure:\n%s\noracle:\n%s",
					seed, cfg.name, got.escapes, ref.escapes)
			}
		}
	}
}
