// Package vm assembles the whole system the paper describes: a bytecode
// interpreter that profiles the running program, a just-in-time compiler
// policy that compiles hot methods through a configurable optimization
// pipeline (no escape analysis / flow-insensitive EA / Partial Escape
// Analysis, optionally with speculative branch pruning), a compiled-code
// executor, and the deoptimization runtime that transfers execution back
// to the interpreter — materializing scalar-replaced objects from the
// VirtualObjectStates recorded in FrameStates (paper §5.5).
package vm

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/ea"
	"pea/internal/exec"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/opt"
	"pea/internal/pea"
	"pea/internal/rt"
)

// EAMode selects the escape analysis configuration of the JIT.
type EAMode int

const (
	// EAOff performs no escape analysis (the paper's "without" column).
	EAOff EAMode = iota
	// EAFlowInsensitive runs the equi-escape-sets baseline (§6.2, the
	// HotSpot-server-compiler-style analysis).
	EAFlowInsensitive
	// EAPartial runs the paper's Partial Escape Analysis.
	EAPartial
)

// String names the mode.
func (m EAMode) String() string {
	switch m {
	case EAOff:
		return "no-ea"
	case EAFlowInsensitive:
		return "ea"
	case EAPartial:
		return "pea"
	default:
		return fmt.Sprintf("EAMode(%d)", int(m))
	}
}

// Options configures a VM.
type Options struct {
	EA EAMode
	// Interpret disables the JIT entirely.
	Interpret bool
	// CompileThreshold is the invocation count that triggers
	// compilation (default 20).
	CompileThreshold int64
	// Speculate enables profile-guided branch pruning with
	// deoptimization.
	Speculate bool
	// Seed seeds the deterministic PRNG (default 1).
	Seed uint64
	// MaxSteps bounds interpreted+compiled steps (0 = unbounded).
	MaxSteps int64
	// Validate verifies the IR after each phase (slower; used in tests).
	Validate bool
	// Sink, when non-nil, receives structured observability events from
	// the whole pipeline: per-phase compile timing, inlining and PEA/EA
	// decisions, tier-up compiles, deopts with reasons, virtual-object
	// rematerializations, invalidations, and recompiles. nil (the
	// default) adds no allocations to the compile or execution path.
	Sink *obs.Sink
	// Metrics, when non-nil, is attached to the sink (one is created if
	// Sink is nil) so decision events bump counters and per-phase timers.
	Metrics *obs.Metrics
}

func (o Options) threshold() int64 {
	if o.CompileThreshold > 0 {
		return o.CompileThreshold
	}
	return 20
}

// Stats reports VM-level counters on top of rt.Stats.
type Stats struct {
	CompiledMethods    int64
	Recompilations     int64
	InvalidatedMethods int64
}

// VM runs one program.
type VM struct {
	Prog *bc.Program
	Env  *rt.Env
	Opts Options

	Interp *interp.Interp
	Engine *exec.Engine

	graphs map[*bc.Method]*ir.Graph
	// noSpec marks methods whose speculative code deoptimized; they are
	// recompiled without speculation.
	noSpec map[*bc.Method]bool
	// failed marks methods whose compilation failed permanently (they
	// stay interpreted). Compilation failures are programming errors in
	// the compiler and surface in tests; in benchmarks they degrade to
	// interpretation.
	failed map[*bc.Method]error

	VMStats Stats
}

// New creates a VM for the program.
func New(prog *bc.Program, opts Options) *VM {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Metrics != nil {
		if opts.Sink == nil {
			opts.Sink = obs.NewSink()
		}
		opts.Sink.SetMetrics(opts.Metrics)
	}
	vm := &VM{
		Prog:   prog,
		Env:    rt.NewEnv(prog, opts.Seed),
		Opts:   opts,
		graphs: make(map[*bc.Method]*ir.Graph),
		noSpec: make(map[*bc.Method]bool),
		failed: make(map[*bc.Method]error),
	}
	vm.Interp = interp.New(vm.Env)
	vm.Interp.MaxSteps = opts.MaxSteps
	vm.Interp.CallHook = vm.interpCallHook
	vm.Engine = &exec.Engine{Env: vm.Env, MaxSteps: opts.MaxSteps, Sink: opts.Sink}
	vm.Engine.Invoke = vm.engineInvoke
	vm.Engine.Deopt = vm.deopt
	return vm
}

// Run executes the program's entry point.
func (vm *VM) Run() (rt.Value, error) {
	if vm.Prog.Main == nil {
		return rt.Value{}, fmt.Errorf("vm: program has no entry point")
	}
	return vm.Call(vm.Prog.Main, nil)
}

// Call invokes m with args under the VM's execution policy.
func (vm *VM) Call(m *bc.Method, args []rt.Value) (rt.Value, error) {
	if g := vm.maybeCompiled(m); g != nil {
		return vm.Engine.Run(g, args)
	}
	return vm.Interp.Call(m, args)
}

// interpCallHook diverts interpreted calls to compiled code when available.
func (vm *VM) interpCallHook(m *bc.Method, args []rt.Value) (rt.Value, bool, error) {
	if g := vm.maybeCompiled(m); g != nil {
		v, err := vm.Engine.Run(g, args)
		return v, true, err
	}
	return rt.Value{}, false, nil
}

// engineInvoke handles calls made from compiled code.
func (vm *VM) engineInvoke(m *bc.Method, args []rt.Value) (rt.Value, error) {
	if g := vm.maybeCompiled(m); g != nil {
		return vm.Engine.Run(g, args)
	}
	return vm.Interp.Call(m, args)
}

// maybeCompiled returns the compiled graph for m, compiling it if it just
// became hot.
func (vm *VM) maybeCompiled(m *bc.Method) *ir.Graph {
	if vm.Opts.Interpret {
		return nil
	}
	if g, ok := vm.graphs[m]; ok {
		return g
	}
	if _, bad := vm.failed[m]; bad {
		return nil
	}
	if vm.Interp.Profile.Invocations(m) < vm.Opts.threshold() {
		return nil
	}
	g, err := vm.Compile(m)
	if err != nil {
		vm.failed[m] = err
		return nil
	}
	vm.graphs[m] = g
	vm.VMStats.CompiledMethods++
	if s := vm.Opts.Sink; s != nil {
		s.VMCompile(m.QualifiedName(), int(vm.Interp.Profile.Invocations(m)))
	}
	if vm.noSpec[m] {
		vm.VMStats.Recompilations++
		if s := vm.Opts.Sink; s != nil {
			s.VMRecompile(m.QualifiedName(), int(vm.VMStats.Recompilations))
		}
	}
	return g
}

// Compile builds and optimizes the IR for m under the VM's configuration.
func (vm *VM) Compile(m *bc.Method) (*ir.Graph, error) {
	sink := vm.Opts.Sink
	g, err := build.BuildWith(m, sink)
	if err != nil {
		return nil, err
	}
	phases := []opt.Phase{
		&opt.Inliner{BuildGraph: build.Build, Program: vm.Prog, Profile: vm.Interp.Profile, Sink: sink},
		opt.Canonicalize{},
		opt.SimplifyCFG{},
		opt.GVN{},
		opt.DCE{},
	}
	pipe := &opt.Pipeline{Phases: phases, Validate: vm.Opts.Validate, Sink: sink}
	if err := pipe.Run(g); err != nil {
		return nil, err
	}
	if vm.Opts.Speculate && !vm.noSpec[m] {
		// A branch is prunable once it has been observed throughout
		// the interpreted warmup (threshold-1 invocations precede the
		// compilation).
		minTotal := vm.Opts.threshold() - 1
		if minTotal < 1 {
			minTotal = 1
		}
		pr := &opt.BranchPruner{Profile: vm.Interp.Profile, MinTotal: minTotal}
		var span obs.PhaseSpan
		if sink != nil {
			span = obs.StartPhase(sink, "prune", m.QualifiedName(), g.NumNodes(), len(g.Blocks))
		}
		changed, err := pr.Run(g)
		if err != nil {
			return nil, err
		}
		span.End(g.NumNodes(), len(g.Blocks))
		if vm.Opts.Validate {
			if err := ir.Verify(g); err != nil {
				return nil, fmt.Errorf("vm: branch pruning broke %s: %w", m.QualifiedName(), err)
			}
		}
		if changed {
			// Pruning leaves single-input phis and straight-line
			// chains behind; normalize before escape analysis.
			clean := opt.Standard()
			clean.Validate = vm.Opts.Validate
			clean.Sink = sink
			if err := clean.Run(g); err != nil {
				return nil, err
			}
		}
	}
	if vm.Opts.EA != EAOff {
		var span obs.PhaseSpan
		if sink != nil {
			span = obs.StartPhase(sink, vm.Opts.EA.String(), m.QualifiedName(),
				g.NumNodes(), len(g.Blocks))
		}
		var eaErr error
		switch vm.Opts.EA {
		case EAFlowInsensitive:
			_, eaErr = ea.Run(g, pea.Config{Sink: sink})
		case EAPartial:
			_, eaErr = pea.Run(g, pea.Config{Sink: sink})
		}
		if eaErr != nil {
			return nil, eaErr
		}
		span.End(g.NumNodes(), len(g.Blocks))
		if sink != nil && sink.WantSnapshots() {
			sink.Snapshot(vm.Opts.EA.String(), m.QualifiedName(),
				func() string { return ir.Dump(g) })
		}
	}
	if vm.Opts.Validate {
		if err := ir.Verify(g); err != nil {
			return nil, fmt.Errorf("vm: %s after %v: %w", m.QualifiedName(), vm.Opts.EA, err)
		}
	}
	post := opt.Standard()
	post.Validate = vm.Opts.Validate
	post.Sink = sink
	if err := post.Run(g); err != nil {
		return nil, err
	}
	// Per-invocation instruction-fetch charge proportional to compiled
	// code size (see ir.Graph.CodeCycles).
	g.CodeCycles = int64(g.NumNodes()) / 3
	return g, nil
}

// Invalidate drops m's compiled code; the next hot call recompiles it
// without speculation.
func (vm *VM) Invalidate(m *bc.Method) {
	if _, ok := vm.graphs[m]; ok {
		delete(vm.graphs, m)
		vm.noSpec[m] = true
		vm.VMStats.InvalidatedMethods++
		if s := vm.Opts.Sink; s != nil {
			s.VMInvalidate(m.QualifiedName(), "deopt")
		}
	}
}

// CompileError returns the recorded compilation failure for m, if any.
// Used by tests to assert that nothing failed silently.
func (vm *VM) CompileError(m *bc.Method) error { return vm.failed[m] }

// FailedCompilations returns all recorded compile failures.
func (vm *VM) FailedCompilations() map[*bc.Method]error { return vm.failed }
