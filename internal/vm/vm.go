// Package vm assembles the whole system the paper describes: a bytecode
// interpreter that profiles the running program, a just-in-time compiler
// policy that compiles hot methods through a configurable optimization
// pipeline (no escape analysis / flow-insensitive EA / Partial Escape
// Analysis, optionally with speculative branch pruning), a compiled-code
// executor, and the deoptimization runtime that transfers execution back
// to the interpreter — materializing scalar-replaced objects from the
// VirtualObjectStates recorded in FrameStates (paper §5.5).
//
// Compilation is mediated by a compile broker (internal/broker). In the
// default synchronous mode a hot method is compiled on the spot, exactly
// as before — deterministic, which the differential interpreter-vs-compiled
// oracles rely on. With Options.Async the broker compiles on background
// workers while the interpreter keeps executing the method (true tier-up);
// finished code is published by an atomic pointer store into the VM's code
// table, so the execution thread picks it up on the next call without
// locking. Either way, artifacts land in a compiled-code cache keyed by
// (method, EA mode, speculation, profile fingerprint) and recompiles after
// deoptimization or across VMs sharing the cache replay cached code
// instead of re-running the pipeline.
//
// With Options.OSRThreshold the VM also performs on-stack replacement:
// the interpreter counts loop back edges, and a loop that crosses the
// threshold triggers compilation of the method with an alternate entry at
// the loop header (build.BuildOSR). The live interpreter frame is
// transferred into the compiled code mid-invocation, so even a single
// long-running call tiers up; deoptimization transfers back out through
// the ordinary FrameState path.
package vm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pea/internal/bc"
	"pea/internal/broker"
	"pea/internal/budget"
	"pea/internal/build"
	"pea/internal/check"
	"pea/internal/ea"
	"pea/internal/exec"
	"pea/internal/interp"
	"pea/internal/ir"
	"pea/internal/obs"
	"pea/internal/obs/flight"
	"pea/internal/opt"
	"pea/internal/pea"
	"pea/internal/rt"
	"pea/internal/summary"
)

// EAMode selects the escape analysis configuration of the JIT.
type EAMode int

const (
	// EAOff performs no escape analysis (the paper's "without" column).
	EAOff EAMode = iota
	// EAFlowInsensitive runs the equi-escape-sets baseline (§6.2, the
	// HotSpot-server-compiler-style analysis).
	EAFlowInsensitive
	// EAPartial runs the paper's Partial Escape Analysis.
	EAPartial
)

// String names the mode.
func (m EAMode) String() string {
	switch m {
	case EAOff:
		return "no-ea"
	case EAFlowInsensitive:
		return "ea"
	case EAPartial:
		return "pea"
	default:
		return fmt.Sprintf("EAMode(%d)", int(m))
	}
}

// Options configures a VM.
type Options struct {
	EA EAMode
	// Backend selects the execution backend compiled graphs are lowered
	// for and run on: BackendOracle (default) is the tree-walking
	// cycle-model engine, BackendClosure the wall-clock template JIT.
	Backend Backend
	// Interpret disables the JIT entirely.
	Interpret bool
	// CompileThreshold is the invocation count that triggers
	// compilation (default 20).
	CompileThreshold int64
	// Speculate enables profile-guided branch pruning with
	// deoptimization.
	Speculate bool
	// Summaries enables inter-procedural escape summaries (internal/
	// summary): a whole-program bottom-up analysis computed once per
	// program — resolved through the broker's memory and disk tiers, so
	// warm restarts skip it — and consulted by the pipeline so that (a)
	// EA/PEA keep objects virtual across non-inlined calls whose callee
	// provably never observes the argument, and (b) the inliner
	// prioritizes call sites whose inlining can unlock scalar
	// replacement. Off by default: summaries change compiled code, so the
	// flag is part of the code-cache key.
	Summaries bool
	// OSRThreshold is the back-edge count at which a hot loop triggers an
	// on-stack-replacement compilation of its enclosing method, entered at
	// the loop header mid-invocation. <=0 (the default) disables OSR; the
	// method then tiers up only at call boundaries.
	OSRThreshold int64
	// Seed seeds the deterministic PRNG (default 1).
	Seed uint64
	// MaxSteps bounds interpreted+compiled steps (0 = unbounded).
	MaxSteps int64
	// Validate verifies the IR after each phase (slower; used in tests).
	// Equivalent to CheckLevel = check.Basic. Deprecated: set CheckLevel.
	Validate bool
	// CheckLevel selects the compiler sanitizer level run between phases
	// (off, basic, strict). The PEA_CHECK environment variable floors the
	// configured level for the whole process. check.Off (the default)
	// adds zero work to the compile path.
	CheckLevel check.Level

	// Async compiles hot methods on background broker workers while the
	// interpreter keeps executing them (tier-up). The default false
	// compiles synchronously on the execution thread, which keeps the
	// compile→install point deterministic for differential testing.
	Async bool
	// JITWorkers is the background worker count when Async is set
	// (<=0 selects GOMAXPROCS).
	JITWorkers int
	// Cache, when non-nil, is a shared compiled-code cache. VMs running
	// the same program can share one cache so repeated runs replay
	// compilation artifacts instead of re-running the pipeline — keys are
	// content-addressed, so even independently linked *bc.Program
	// instances of the same source share artifacts (the install path
	// rebinds foreign graphs onto this VM's program). nil gives the VM a
	// private cache.
	Cache *broker.Cache
	// Store, when non-nil, is a disk-backed artifact store behind the
	// cache: fresh compiles are written through to it, and cache misses
	// consult it before running the pipeline, so a restarted process (or
	// another process sharing the directory) replays persisted artifacts
	// instead of recompiling. Artifacts loaded from disk are re-verified
	// at the install boundary; corrupt or stale files are silent misses.
	// Ignored when JIT is set — a shared broker brings its own store.
	Store *broker.Store
	// JIT, when non-nil, is a shared compile broker: many VMs (the
	// tenants of a server) submit to one broker and share its worker
	// pool, memory cache, and persistent store. Per-VM callbacks travel
	// with each submission, so a shared broker still compiles with and
	// installs into the submitting VM. Close does not shut down a shared
	// broker — its owner does. nil (the default) gives the VM a private
	// broker configured from the options above.
	JIT *broker.Broker
	// JITQueueCap bounds the broker's pending compile queue (0 keeps the
	// broker default). Submissions over the bound are rejected and the
	// method's hotness trigger is re-armed with backoff, so a compilation
	// storm degrades to interpretation instead of growing memory.
	JITQueueCap int

	// CompileDeadline bounds each compilation's wall-clock time. A
	// compile that overruns unwinds cooperatively at the next pipeline
	// boundary with a structured budget error; the method stays
	// interpreted and is re-armed with backoff (transient failure). 0
	// (the default) disables the deadline and provably never reads the
	// clock (budget.ClockReads).
	CompileDeadline time.Duration
	// MaxIRNodes bounds the IR graph size observed at pipeline
	// boundaries, stopping inlining-driven graph explosion. 0 disables.
	MaxIRNodes int

	// CrashDir, when non-empty, is where the VM writes minimized crash
	// reproducers: when a compile panics (the broker contains it), the
	// offending method's bytecode is shrunk with check.Minimize while the
	// panic still reproduces and saved as a committed-format JSON repro —
	// the moral equivalent of HotSpot's replay files. Empty (the default)
	// captures nothing.
	CrashDir string

	// InjectFault, when non-nil, is the fault-injection hook invoked at
	// the broker's points (broker.FaultCompile, broker.FaultInstall) and
	// at the VM pipeline's named phase boundaries ("build", "build-osr",
	// "opt", "prune", "ea", "pea", "post") with the method's qualified
	// name. A hook that panics or sleeps drives the containment layer
	// deterministically in tests and CI. When nil, the PEA_FAULT
	// environment variable is consulted (see broker.FaultFromEnv).
	InjectFault func(point, method string)

	// Sink, when non-nil, receives structured observability events from
	// the whole pipeline: per-phase compile timing, inlining and PEA/EA
	// decisions, tier-up compiles, deopts with reasons, virtual-object
	// rematerializations, invalidations, recompiles, and broker traffic.
	// nil (the default) adds no allocations to the compile or execution
	// path.
	Sink *obs.Sink
	// Metrics, when non-nil, is attached to the sink (one is created if
	// Sink is nil) so decision events bump counters and per-phase timers.
	Metrics *obs.Metrics

	// Flight, when non-nil, is the always-on flight recorder shared by the
	// VM, the broker, and the PEA pipeline. nil (the default) makes New
	// create a private recorder with DefaultCapacity — the recorder is
	// meant to stay on, JFR-style, so every VM has one; pass a recorder
	// explicitly to share it across VMs or to pick a capacity.
	Flight *flight.Recorder
}

// checkLevel folds the legacy Validate switch and the PEA_CHECK
// environment floor into the effective sanitizer level.
func (o Options) checkLevel() check.Level {
	l := o.CheckLevel
	if o.Validate {
		l = check.Max(l, check.Basic)
	}
	return check.Effective(l)
}

func (o Options) threshold() int64 {
	if o.CompileThreshold > 0 {
		return o.CompileThreshold
	}
	return 20
}

// minPruneTotal is the branch-observation floor for speculative pruning: a
// branch is prunable once it has been observed throughout the interpreted
// warmup (threshold-1 invocations precede the compilation).
func (o Options) minPruneTotal() int64 {
	if t := o.threshold() - 1; t > 1 {
		return t
	}
	return 1
}

// Stats reports VM-level counters on top of rt.Stats. Fields are updated
// with atomic adds (installation may happen on broker workers); read them
// after DrainJIT, or via the Stats method, for a consistent snapshot.
type Stats struct {
	CompiledMethods    int64
	Recompilations     int64
	InvalidatedMethods int64
	// OSRCompilations counts installed on-stack-replacement graphs (kept
	// separate from CompiledMethods: an OSR artifact is an extra entry
	// point, not a method tier-up).
	OSRCompilations int64
	// OSRRequests counts OSR compilations submitted to the broker.
	OSRRequests int64
	// OSREntries counts transfers from an interpreter frame into compiled
	// OSR code at a loop-header back-edge.
	OSREntries int64
	// TransientFailures counts compilations that failed with a transient
	// error (compile deadline, IR budget) and were re-armed instead of
	// blacklisted.
	TransientFailures int64
	// Rearms counts hotness-trigger re-arms after transient failures and
	// queue-full rejections (retry with exponential backoff).
	Rearms int64
	// CrashRepros counts minimized compiler-crash reproducers written to
	// Options.CrashDir.
	CrashRepros int64
}

// VM runs one program.
type VM struct {
	Prog *bc.Program
	Env  *rt.Env
	Opts Options

	Interp *interp.Interp
	Engine *exec.Engine

	// backend lowers scheduled graphs into installable code (selected by
	// Options.Backend, resolved once at construction).
	backend exec.Backend

	// code is the installed-code table, indexed by bc.Method.ID. Entries
	// are published with atomic stores by the broker's install callback
	// and loaded without locks on the execution path (codeCell wraps the
	// exec.Code interface so atomic.Pointer has a concrete type).
	code []atomic.Pointer[codeCell]
	// noSpec marks methods whose speculative code deoptimized; they are
	// recompiled without speculation.
	noSpec []atomic.Bool

	// osrCode holds installed on-stack-replacement code keyed by
	// (method, loop-header BCI). OSR entries are consulted only on
	// interpreter back-edges (orders of magnitude rarer than calls), so a
	// mutex-guarded map suffices where the method code table needs atomics.
	osrMu     sync.Mutex
	osrCode   map[osrSite]exec.Code
	osrFailed map[osrSite]bool

	jit *broker.Broker
	// ownJIT marks the broker as private to this VM: Close shuts it down.
	// A shared broker (Options.JIT) outlives any one tenant.
	ownJIT bool
	// hooks carries this VM's compile/install/failure callbacks and its
	// program resolver with every submission, so a broker shared between
	// VMs dispatches back to the right tenant.
	hooks broker.Hooks

	// failed records permanent compilation failures per compilation unit
	// (broker key shape: method + entry point). A failed OSR entry
	// blacklists only that (method, loop header) pair; the method itself
	// stays eligible for standard tier-up, and vice versa. Failed units
	// stay interpreted: panics and pipeline errors are compiler bugs that
	// surface in tests, while in production they degrade to
	// interpretation. Transient failures (budget overruns, queue
	// rejections) are never recorded here — they re-arm instead.
	failedMu sync.Mutex
	failed   map[failKey]error
	// hasFailed mirrors the standard-entry failures for lock-free
	// hot-path checks.
	hasFailed []atomic.Bool

	// retryAt gates resubmission after a transient failure or a
	// queue-full rejection: the method becomes submit-eligible again only
	// once its invocation count reaches the stored value (exponential
	// backoff on the hotness counter). retryN counts consecutive re-arms;
	// a successful install resets both. Indexed by dense method ID.
	retryAt []atomic.Int64
	retryN  []atomic.Int32
	// osrRetryAt/osrRetryN is the same backoff state for OSR entry
	// points, gated on the loop header's back-edge count (guarded by
	// osrMu; back edges are orders of magnitude rarer than calls).
	osrRetryAt map[osrSite]int64
	osrRetryN  map[osrSite]int32

	// crashCaptured dedups crash-reproducer capture per method, so a
	// panicking compile resubmitted under different keys minimizes once.
	crashMu       sync.Mutex
	crashCaptured map[*bc.Method]bool

	// sums is the program's inter-procedural summary set, resolved
	// lazily through the broker's tiers on the first compile that wants
	// it (sumOnce); nil until then and forever when Options.Summaries is
	// off.
	sums    *summary.Set
	sumOnce sync.Once

	// flight is the always-on flight recorder (never nil after New);
	// reasonRemat is the pre-interned "deopt-remat" reason code so the
	// deopt path records without a map lookup.
	flight      *flight.Recorder
	reasonRemat uint16

	VMStats Stats
}

// failKey identifies one compilation unit for failure bookkeeping: a
// method-entry compile (entryBCI == broker.NoOSR) or one OSR entry point.
type failKey struct {
	m        *bc.Method
	entryBCI int
}

// codeCell wraps installed exec.Code so the lock-free code table can use
// atomic.Pointer (which needs a concrete element type, not an interface).
type codeCell struct {
	code exec.Code
}

// New creates a VM for the program.
func New(prog *bc.Program, opts Options) *VM {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Metrics != nil {
		if opts.Sink == nil {
			opts.Sink = obs.NewSink()
		}
		opts.Sink.SetMetrics(opts.Metrics)
	}
	if opts.InjectFault == nil {
		// One resolution point for PEA_FAULT: the same hook serves the
		// broker's fault points and the pipeline's phase boundaries.
		opts.InjectFault = broker.FaultFromEnv()
	}
	if opts.Flight == nil {
		opts.Flight = flight.New(0)
	}
	// The recorder resolves dense method IDs to names at dump time;
	// Program.Methods is indexed by Method.ID.
	names := make([]string, len(prog.Methods))
	for i, m := range prog.Methods {
		names[i] = m.QualifiedName()
	}
	opts.Flight.SetMethodNames(names)
	vm := &VM{
		Prog:        prog,
		Env:         rt.NewEnv(prog, opts.Seed),
		Opts:        opts,
		backend:     opts.Backend.impl(),
		code:        make([]atomic.Pointer[codeCell], len(prog.Methods)),
		noSpec:      make([]atomic.Bool, len(prog.Methods)),
		failed:      make(map[failKey]error),
		hasFailed:   make([]atomic.Bool, len(prog.Methods)),
		retryAt:     make([]atomic.Int64, len(prog.Methods)),
		retryN:      make([]atomic.Int32, len(prog.Methods)),
		flight:      opts.Flight,
		reasonRemat: opts.Flight.Reason("deopt-remat"),
	}
	vm.Interp = interp.New(vm.Env)
	vm.Interp.MaxSteps = opts.MaxSteps
	vm.Interp.CallHook = vm.interpCallHook
	if opts.OSRThreshold > 0 && !opts.Interpret {
		vm.osrCode = make(map[osrSite]exec.Code)
		vm.osrFailed = make(map[osrSite]bool)
		vm.Interp.OSRHook = vm.osrHook
	}
	vm.Engine = &exec.Engine{Env: vm.Env, MaxSteps: opts.MaxSteps, Sink: opts.Sink}
	vm.Engine.Invoke = vm.engineInvoke
	vm.Engine.Deopt = vm.deopt

	vm.hooks = broker.Hooks{
		Compile:  vm.compileForKey,
		Install:  vm.install,
		Fail:     vm.recordFailure,
		Resolver: prog,
	}
	if opts.JIT != nil {
		vm.jit = opts.JIT
		return vm
	}
	workers := 0
	if opts.Async {
		workers = opts.JITWorkers
		if workers <= 0 {
			workers = -1 // GOMAXPROCS
		}
	}
	vm.ownJIT = true
	vm.jit = broker.New(broker.Options{
		Workers:     workers,
		QueueCap:    opts.JITQueueCap,
		Cache:       opts.Cache,
		Store:       opts.Store,
		Resolver:    prog,
		Compile:     vm.compileForKey,
		Install:     vm.install,
		Fail:        vm.recordFailure,
		Check:       opts.checkLevel(),
		Sink:        opts.Sink,
		InjectFault: opts.InjectFault,
		Flight:      vm.flight,
	})
	return vm
}

// Run executes the program's entry point.
func (vm *VM) Run() (rt.Value, error) {
	if vm.Prog.Main == nil {
		return rt.Value{}, fmt.Errorf("vm: program has no entry point")
	}
	return vm.Call(vm.Prog.Main, nil)
}

// Call invokes m with args under the VM's execution policy.
func (vm *VM) Call(m *bc.Method, args []rt.Value) (rt.Value, error) {
	if c := vm.maybeCompiled(m); c != nil {
		return c.Run(vm.Engine, args)
	}
	return vm.Interp.Call(m, args)
}

// interpCallHook diverts interpreted calls to compiled code when available.
func (vm *VM) interpCallHook(m *bc.Method, args []rt.Value) (rt.Value, bool, error) {
	if c := vm.maybeCompiled(m); c != nil {
		v, err := c.Run(vm.Engine, args)
		return v, true, err
	}
	return rt.Value{}, false, nil
}

// engineInvoke handles calls made from compiled code.
func (vm *VM) engineInvoke(m *bc.Method, args []rt.Value) (rt.Value, error) {
	if c := vm.maybeCompiled(m); c != nil {
		return c.Run(vm.Engine, args)
	}
	return vm.Interp.Call(m, args)
}

// installed returns the currently published code for m (nil if none).
func (vm *VM) installed(m *bc.Method) exec.Code {
	if cell := vm.code[m.ID].Load(); cell != nil {
		return cell.code
	}
	return nil
}

// CompiledGraph returns the scheduled graph behind m's installed code, or
// nil if the method is interpreted. Safe to call concurrently with
// compilation.
func (vm *VM) CompiledGraph(m *bc.Method) *ir.Graph {
	if c := vm.installed(m); c != nil {
		return c.Graph()
	}
	return nil
}

// maybeCompiled returns the installed code for m, requesting compilation if
// it just became hot. In synchronous mode the request completes before this
// returns; in asynchronous mode the interpreter keeps executing m until the
// broker publishes code.
func (vm *VM) maybeCompiled(m *bc.Method) exec.Code {
	if vm.Opts.Interpret {
		return nil
	}
	if c := vm.installed(m); c != nil {
		return c
	}
	if vm.hasFailed[m.ID].Load() {
		return nil
	}
	inv := vm.Interp.Profile.Invocations(m)
	if inv < vm.Opts.threshold() {
		return nil
	}
	if vm.retryAt[m.ID].Load() > inv {
		return nil // backed off after a transient failure or rejection
	}
	if vm.jit.Pending(m, broker.NoOSR) {
		return nil // already queued or being compiled; keep interpreting
	}
	if !vm.jit.SubmitHooks(m, inv, vm.cacheKey(m), &vm.hooks) {
		// Rejected (queue full, closing, or a racing duplicate): re-arm
		// the hotness trigger with backoff so the method stays
		// submit-eligible instead of hammering — or silently losing —
		// the submission.
		vm.rearm(m, "submit-rejected", inv)
	}
	// Synchronous submissions installed (or failed) before returning;
	// asynchronous ones will publish later and this load stays nil.
	return vm.installed(m)
}

// maxRearmShift caps the exponential backoff: re-armed methods never stop
// retrying, the retries just become geometrically rarer until the gap
// plateaus at threshold<<maxRearmShift additional invocations.
const maxRearmShift = 5

// rearm schedules the next submission attempt for m after a transient
// failure or queue rejection: the method becomes submit-eligible again
// once its invocation count passes hotness + threshold<<attempt
// (exponential backoff on the hotness counter, HotSpot-style re-profiling
// instead of a terminal drop).
func (vm *VM) rearm(m *bc.Method, reason string, hotness int64) {
	n := vm.retryN[m.ID].Add(1)
	shift := int64(n - 1)
	if shift > maxRearmShift {
		shift = maxRearmShift
	}
	next := hotness + vm.Opts.threshold()<<shift
	vm.retryAt[m.ID].Store(next)
	atomic.AddInt64(&vm.VMStats.Rearms, 1)
	if s := vm.Opts.Sink; s != nil {
		s.VMRearm(m.QualifiedName(), reason, int(n), next)
	}
}

// rearmOSR is rearm for one OSR entry point, gated on the loop header's
// back-edge count.
func (vm *VM) rearmOSR(m *bc.Method, entryBCI int, reason string) {
	count := vm.Interp.Profile.BackEdges(m, entryBCI)
	site := osrSite{m, entryBCI}
	vm.osrMu.Lock()
	if vm.osrRetryN == nil {
		vm.osrRetryN = make(map[osrSite]int32)
		vm.osrRetryAt = make(map[osrSite]int64)
	}
	n := vm.osrRetryN[site] + 1
	vm.osrRetryN[site] = n
	shift := int64(n - 1)
	if shift > maxRearmShift {
		shift = maxRearmShift
	}
	next := count + vm.Opts.OSRThreshold<<shift
	vm.osrRetryAt[site] = next
	vm.osrMu.Unlock()
	atomic.AddInt64(&vm.VMStats.Rearms, 1)
	if s := vm.Opts.Sink; s != nil {
		s.VMRearm(fmt.Sprintf("%s@osr%d", m.QualifiedName(), entryBCI), reason, int(n), next)
	}
}

// cacheKey builds the compiled-code cache key for m under the VM's current
// configuration and profile: EA mode, whether speculation applies (globally
// enabled and not invalidated for m), and the fingerprint of the profile
// decisions the pipeline would consume.
func (vm *VM) cacheKey(m *bc.Method) broker.Key {
	spec := vm.Opts.Speculate && !vm.noSpec[m.ID].Load()
	return broker.Key{
		MethodFP:    vm.Prog.MethodFingerprint(m),
		Name:        m.QualifiedName(),
		Mode:        int(vm.Opts.EA),
		Spec:        spec,
		Fingerprint: vm.Interp.Profile.Fingerprint(spec, vm.Opts.minPruneTotal(), 0),
		EntryBCI:    broker.NoOSR,
		Backend:     vm.backend.Name(),
		Summaries:   vm.Opts.Summaries,
	}
}

// osrCacheKey is cacheKey for an on-stack-replacement compilation entered
// at the loop header entryBCI. The fingerprint additionally mixes which
// loop headers crossed the OSR threshold, so profiles that would drive
// different OSR decisions never replay each other's artifacts.
func (vm *VM) osrCacheKey(m *bc.Method, entryBCI int) broker.Key {
	spec := vm.Opts.Speculate && !vm.noSpec[m.ID].Load()
	return broker.Key{
		MethodFP:    vm.Prog.MethodFingerprint(m),
		Name:        m.QualifiedName(),
		Mode:        int(vm.Opts.EA),
		Spec:        spec,
		Fingerprint: vm.Interp.Profile.Fingerprint(spec, vm.Opts.minPruneTotal(), vm.Opts.OSRThreshold),
		EntryBCI:    entryBCI,
		Backend:     vm.backend.Name(),
		Summaries:   vm.Opts.Summaries,
	}
}

// summarySet resolves the program's inter-procedural summary set, computing
// it on first use through the broker's cache tiers (memory, then disk, then
// analysis). Returns nil when Options.Summaries is off.
func (vm *VM) summarySet() *summary.Set {
	if !vm.Opts.Summaries {
		return nil
	}
	vm.sumOnce.Do(func() {
		vm.sums = vm.jit.Summaries(vm.Prog, func() *summary.Set {
			return summary.Compute(vm.Prog, summary.Options{Sink: vm.Opts.Sink})
		})
	})
	return vm.sums
}

// Summaries exposes the VM's inter-procedural summary set (computing it on
// first call), or nil when Options.Summaries is off. Used by tools that
// render the summary table.
func (vm *VM) Summaries() *summary.Set { return vm.summarySet() }

// compileForKey is the broker's compile callback: the full pipeline
// followed by backend lowering, so the broker caches the lowered artifact
// and warm hits skip both.
func (vm *VM) compileForKey(m *bc.Method, k broker.Key) (broker.Artifact, error) {
	g, err := vm.compileEntry(m, k.Spec, k.EntryBCI)
	if err != nil {
		return nil, err
	}
	return vm.lower(m, g)
}

// lower compiles a scheduled graph into the selected backend's executable
// form. It runs inside the broker's fault boundary, with its own phase span
// and fault point, so lowering bugs are contained like any pipeline phase.
func (vm *VM) lower(m *bc.Method, g *ir.Graph) (exec.Code, error) {
	sink := vm.Opts.Sink
	var span obs.PhaseSpan
	if sink != nil {
		span = obs.StartPhase(sink, "lower", m.QualifiedName(), g.NumNodes(), len(g.Blocks))
	}
	code, err := vm.backend.Compile(g)
	vm.fault("lower", m)
	if err != nil {
		return nil, fmt.Errorf("vm: lowering %s for %s: %w", m.QualifiedName(), vm.backend.Name(), err)
	}
	span.End(g.NumNodes(), len(g.Blocks))
	return code, nil
}

// rebind re-homes a graph compiled against a different link of the same
// program content onto this VM's program: the graph round-trips through
// its serialized form so every class/field/method reference re-resolves
// by name against vm.Prog, then re-verifies at the install boundary.
// Content-addressed keys guarantee the two links agree on bytecode, so
// resolution can only fail if an artifact reached the wrong cache.
func (vm *VM) rebind(g *ir.Graph) (*ir.Graph, error) {
	name := g.Method.QualifiedName()
	payload, err := ir.EncodeJSON(g)
	if err != nil {
		return nil, fmt.Errorf("vm: rebinding %s: %w", name, err)
	}
	ng, err := ir.DecodeJSON(payload, vm.Prog)
	if err != nil {
		return nil, fmt.Errorf("vm: rebinding %s: %w", name, err)
	}
	if err := check.Graph(ng, check.Max(vm.Opts.checkLevel(), check.Basic)); err != nil {
		return nil, fmt.Errorf("vm: rebinding %s: %w", name, err)
	}
	return ng, nil
}

// fault invokes the fault-injection hook at a named pipeline point. A nil
// hook (the default) costs one pointer test.
func (vm *VM) fault(point string, m *bc.Method) {
	if f := vm.Opts.InjectFault; f != nil {
		f(point, m.QualifiedName())
	}
}

// install is the broker's installation callback. It publishes the lowered
// code atomically into the code table; it may run on a broker worker
// goroutine.
func (vm *VM) install(m *bc.Method, k broker.Key, a broker.Artifact, fromCache bool) {
	code, ok := a.(exec.Code)
	if !ok || code.Graph().Method != m {
		// Two ways to land here: the artifact is a bare graph (a disk
		// load, or a shared cache pre-populated by graph-level tools), or
		// it is lowered code from another VM running a different link of
		// the same program content (equal content-addressed keys, distinct
		// *bc.Method instances). Either way, rebind the graph onto this
		// VM's program if needed and lower it here, so installation always
		// publishes code wired to this VM's own bytecode entities.
		g := a.Graph()
		if g.Method != m {
			var err error
			if g, err = vm.rebind(g); err != nil {
				// Rebinding failure is environmental (an incompatible
				// artifact reached us through a shared cache), not a
				// property of the method: drop the artifact and re-arm
				// the trigger instead of blacklisting.
				if k.IsOSR() {
					vm.rearmOSR(m, k.EntryBCI, "rebind: "+err.Error())
				} else {
					vm.rearm(m, "rebind: "+err.Error(), vm.Interp.Profile.Invocations(m))
				}
				return
			}
		}
		var err error
		code, err = vm.lower(m, g)
		if err != nil {
			vm.recordFailure(m, k, err)
			return
		}
	}
	if k.Spec && vm.noSpec[m.ID].Load() {
		// The method deoptimized while this speculative compile was in
		// flight; installing it would immediately deoptimize again.
		// Drop the artifact — the next hot call resubmits with
		// Spec=false.
		return
	}
	if k.IsOSR() {
		site := osrSite{m, k.EntryBCI}
		vm.osrMu.Lock()
		vm.osrCode[site] = code
		// A successful install clears the site's transient-failure backoff.
		delete(vm.osrRetryAt, site)
		delete(vm.osrRetryN, site)
		vm.osrMu.Unlock()
		atomic.AddInt64(&vm.VMStats.OSRCompilations, 1)
		if s := vm.Opts.Sink; s != nil {
			s.VMCompile(fmt.Sprintf("%s@osr%d", m.QualifiedName(), k.EntryBCI),
				int(vm.Interp.Profile.BackEdges(m, k.EntryBCI)))
		}
		return
	}
	vm.code[m.ID].Store(&codeCell{code: code})
	// A successful install clears the transient-failure backoff, so a later
	// invalidation re-enters the retry ladder from the bottom.
	vm.retryN[m.ID].Store(0)
	vm.retryAt[m.ID].Store(0)
	atomic.AddInt64(&vm.VMStats.CompiledMethods, 1)
	if s := vm.Opts.Sink; s != nil {
		s.VMCompile(m.QualifiedName(), int(vm.Interp.Profile.Invocations(m)))
	}
	if vm.noSpec[m.ID].Load() && !fromCache {
		// Only pipeline re-runs count as recompilations; cache replays
		// after an invalidation reuse earlier work.
		n := atomic.AddInt64(&vm.VMStats.Recompilations, 1)
		if s := vm.Opts.Sink; s != nil {
			s.VMRecompile(m.QualifiedName(), int(n))
		}
	}
}

// recordFailure is the broker's failure callback. It classifies the
// failure before recording anything:
//
//   - A contained compiler panic (broker.PanicError) first captures a
//     minimized crash reproducer into Options.CrashDir, then falls through
//     to permanent blacklisting.
//   - A transient failure (compile budget overrun — broker.Transient)
//     re-arms the unit's hotness trigger with backoff and records nothing:
//     the same compile may succeed later.
//   - Everything else is a permanent property of the method under this
//     compiler and is recorded per compilation unit: a failed OSR entry
//     blacklists only that (method, loop header) pair; the method itself
//     stays eligible for standard tier-up, and vice versa.
func (vm *VM) recordFailure(m *bc.Method, k broker.Key, err error) {
	var pe *broker.PanicError
	if errors.As(err, &pe) {
		vm.captureCrashRepro(m, k, pe)
	}
	if broker.Transient(err) {
		atomic.AddInt64(&vm.VMStats.TransientFailures, 1)
		// Record the bailout with a compact classification
		// ("deadline@pea-fixpoint") rather than the full error text, so a
		// storm of bailouts cannot flood the bounded reason table.
		reason := "transient"
		var be *budget.Err
		if errors.As(err, &be) {
			reason = be.Kind + "@" + be.Phase
		}
		vm.flight.Record(flight.KindBudgetBailout, int32(m.ID), int32(k.EntryBCI),
			0, 0, vm.flight.Reason(reason))
		if k.IsOSR() {
			vm.rearmOSR(m, k.EntryBCI, "transient: "+err.Error())
		} else {
			vm.rearm(m, "transient: "+err.Error(), vm.Interp.Profile.Invocations(m))
		}
		return
	}
	vm.failedMu.Lock()
	vm.failed[failKey{m, k.EntryBCI}] = err
	vm.failedMu.Unlock()
	if k.IsOSR() {
		vm.osrMu.Lock()
		if vm.osrFailed != nil {
			vm.osrFailed[osrSite{m, k.EntryBCI}] = true
		}
		vm.osrMu.Unlock()
		return
	}
	vm.hasFailed[m.ID].Store(true)
}

// Compile builds and optimizes the IR for m under the VM's configuration,
// bypassing the broker and cache. Exposed for tests and tools that need a
// fresh pipeline run.
func (vm *VM) Compile(m *bc.Method) (*ir.Graph, error) {
	return vm.compileEntry(m, vm.Opts.Speculate && !vm.noSpec[m.ID].Load(), broker.NoOSR)
}

// CompileOSR builds and optimizes an on-stack-replacement graph for m
// entered at the loop header entryBCI, bypassing the broker and cache.
func (vm *VM) CompileOSR(m *bc.Method, entryBCI int) (*ir.Graph, error) {
	return vm.compileEntry(m, vm.Opts.Speculate && !vm.noSpec[m.ID].Load(), entryBCI)
}

// compileEntry runs the full pipeline for m; spec selects speculative
// branch pruning, and entryBCI selects the entry point (broker.NoOSR for a
// standard method-entry compile, a loop-header bytecode index for an OSR
// compile). It is safe for concurrent use: every run builds a private graph
// and private phase instances, and the shared inputs (bytecode, profile,
// sink/metrics) are immutable or internally locked.
//
// The compile runs under a per-compile budget built from
// Options.CompileDeadline / Options.MaxIRNodes (nil when both are zero —
// then no budget checks and no clock reads happen at all), polled
// cooperatively at every pipeline phase boundary and PEA fixpoint round. A
// budget overrun unwinds with a structured transient error and the method
// stays interpreted.
func (vm *VM) compileEntry(m *bc.Method, spec bool, entryBCI int) (*ir.Graph, error) {
	bud := budget.New(vm.Opts.CompileDeadline, vm.Opts.MaxIRNodes)
	sink := vm.Opts.Sink
	lvl := vm.Opts.checkLevel()
	var g *ir.Graph
	var err error
	if entryBCI == broker.NoOSR {
		g, err = build.BuildWith(m, sink)
		vm.fault("build", m)
	} else {
		g, err = build.BuildOSRWith(m, entryBCI, sink)
		vm.fault("build-osr", m)
	}
	if err != nil {
		return nil, err
	}
	if bud != nil {
		if err := bud.Check("build", m.QualifiedName(), g.NumNodes()); err != nil {
			return nil, err
		}
	}
	sums := vm.summarySet() // nil unless Options.Summaries
	var calleeSafe func(*ir.Node) []bool
	if sums != nil {
		calleeSafe = sums.ArgSafe
	}
	phases := []opt.Phase{
		&opt.Inliner{BuildGraph: build.Build, Program: vm.Prog, Profile: vm.Interp.Profile, Sink: sink, Summaries: sums},
		opt.Canonicalize{},
		opt.SimplifyCFG{},
		opt.GVN{},
		opt.DCE{},
	}
	pipe := &opt.Pipeline{Phases: phases, Check: lvl, Sink: sink, Budget: bud}
	if err := pipe.Run(g); err != nil {
		return nil, err
	}
	vm.fault("opt", m)
	if spec {
		pr := &opt.BranchPruner{Profile: vm.Interp.Profile, MinTotal: vm.Opts.minPruneTotal()}
		var span obs.PhaseSpan
		if sink != nil {
			span = obs.StartPhase(sink, "prune", m.QualifiedName(), g.NumNodes(), len(g.Blocks))
		}
		changed, err := pr.Run(g)
		if err != nil {
			return nil, err
		}
		span.End(g.NumNodes(), len(g.Blocks))
		vm.fault("prune", m)
		if err := check.Graph(g, lvl); err != nil {
			sink.CheckViolation("prune", m.QualifiedName(), err.Error(), "")
			return nil, fmt.Errorf("vm: branch pruning broke %s: %w", m.QualifiedName(), err)
		}
		if changed {
			// Pruning leaves single-input phis and straight-line
			// chains behind; normalize before escape analysis.
			clean := opt.Standard()
			clean.Check = lvl
			clean.Sink = sink
			clean.Budget = bud
			if err := clean.Run(g); err != nil {
				return nil, err
			}
		}
	}
	if vm.Opts.EA != EAOff {
		var span obs.PhaseSpan
		if sink != nil {
			span = obs.StartPhase(sink, vm.Opts.EA.String(), m.QualifiedName(),
				g.NumNodes(), len(g.Blocks))
		}
		var eaErr error
		conf := pea.Config{Sink: sink, Check: lvl, Budget: bud, Flight: vm.flight,
			CalleeNoEscape: calleeSafe}
		switch vm.Opts.EA {
		case EAFlowInsensitive:
			_, eaErr = ea.Run(g, conf)
		case EAPartial:
			_, eaErr = pea.Run(g, conf)
		}
		vm.fault(vm.Opts.EA.String(), m)
		if eaErr != nil {
			return nil, eaErr
		}
		span.End(g.NumNodes(), len(g.Blocks))
		if sink != nil && sink.WantSnapshots() {
			sink.Snapshot(vm.Opts.EA.String(), m.QualifiedName(),
				func() string { return ir.Dump(g) })
		}
	}
	if err := check.Graph(g, lvl); err != nil {
		sink.CheckViolation(vm.Opts.EA.String(), m.QualifiedName(), err.Error(), "")
		return nil, fmt.Errorf("vm: %s after %v: %w", m.QualifiedName(), vm.Opts.EA, err)
	}
	post := opt.Standard()
	post.Check = lvl
	post.Sink = sink
	post.Budget = bud
	if err := post.Run(g); err != nil {
		return nil, err
	}
	vm.fault("post", m)
	// Per-invocation instruction-fetch charge proportional to compiled
	// code size (see ir.Graph.CodeCycles).
	g.CodeCycles = int64(g.NumNodes()) / 3
	return g, nil
}

// Invalidate drops m's compiled code — the standard entry and every OSR
// entry — recording reason in the invalidation event; the next hot call
// recompiles without speculation (replaying the non-speculative cache entry
// when one exists).
func (vm *VM) Invalidate(m *bc.Method, reason string) {
	invalidated := vm.code[m.ID].Swap(nil) != nil
	if vm.osrCode != nil {
		vm.osrMu.Lock()
		for site := range vm.osrCode {
			if site.m == m {
				delete(vm.osrCode, site)
				invalidated = true
			}
		}
		vm.osrMu.Unlock()
	}
	if invalidated {
		vm.noSpec[m.ID].Store(true)
		atomic.AddInt64(&vm.VMStats.InvalidatedMethods, 1)
		if s := vm.Opts.Sink; s != nil {
			s.VMInvalidate(m.QualifiedName(), reason)
		}
	}
}

// DrainJIT blocks until every submitted compilation has been resolved
// (installed, replayed from cache, or failed). It is a no-op in
// synchronous mode.
func (vm *VM) DrainJIT() { vm.jit.Drain() }

// Close shuts down the VM's background compile workers (no-op in
// synchronous mode). The VM keeps executing with whatever code is
// installed; further hot methods stay interpreted. A shared broker
// (Options.JIT) is left running — its owner closes it.
func (vm *VM) Close() {
	if vm.ownJIT {
		vm.jit.Close()
	}
}

// Broker exposes the VM's compile broker (stats, cache) to tools and tests.
func (vm *VM) Broker() *broker.Broker { return vm.jit }

// Flight exposes the VM's always-on flight recorder (never nil).
func (vm *VM) Flight() *flight.Recorder { return vm.flight }

// Stats returns a consistent snapshot of the VM counters.
func (vm *VM) Stats() Stats {
	return Stats{
		CompiledMethods:    atomic.LoadInt64(&vm.VMStats.CompiledMethods),
		Recompilations:     atomic.LoadInt64(&vm.VMStats.Recompilations),
		InvalidatedMethods: atomic.LoadInt64(&vm.VMStats.InvalidatedMethods),
		OSRCompilations:    atomic.LoadInt64(&vm.VMStats.OSRCompilations),
		OSRRequests:        atomic.LoadInt64(&vm.VMStats.OSRRequests),
		OSREntries:         atomic.LoadInt64(&vm.VMStats.OSREntries),
		TransientFailures:  atomic.LoadInt64(&vm.VMStats.TransientFailures),
		Rearms:             atomic.LoadInt64(&vm.VMStats.Rearms),
		CrashRepros:        atomic.LoadInt64(&vm.VMStats.CrashRepros),
	}
}

// CompileError returns the recorded permanent compilation failure for m's
// standard entry point, if any. A failed OSR entry does not poison the
// method here — use OSRCompileError for per-loop-header failures. Used by
// tests to assert that nothing failed silently.
func (vm *VM) CompileError(m *bc.Method) error {
	vm.failedMu.Lock()
	defer vm.failedMu.Unlock()
	return vm.failed[failKey{m, broker.NoOSR}]
}

// OSRCompileError returns the recorded permanent compilation failure for
// m's OSR entry at the loop header entryBCI, if any.
func (vm *VM) OSRCompileError(m *bc.Method, entryBCI int) error {
	vm.failedMu.Lock()
	defer vm.failedMu.Unlock()
	return vm.failed[failKey{m, entryBCI}]
}

// FailedCompilations returns a snapshot of all recorded permanent compile
// failures, one entry per method. A method whose standard-entry compile
// failed reports that error; a method with only OSR-entry failures reports
// the first of those, wrapped with the entry point ("osr@<bci>: ...") so
// harnesses surface it without mistaking it for a method-entry failure.
func (vm *VM) FailedCompilations() map[*bc.Method]error {
	vm.failedMu.Lock()
	defer vm.failedMu.Unlock()
	out := make(map[*bc.Method]error, len(vm.failed))
	for k, err := range vm.failed {
		if k.entryBCI == broker.NoOSR {
			out[k.m] = err // standard-entry failures always win
			continue
		}
		if _, ok := out[k.m]; !ok {
			out[k.m] = fmt.Errorf("osr@%d: %w", k.entryBCI, err)
		}
	}
	return out
}
