package vm

import (
	"testing"

	"pea/internal/bc"
	"pea/internal/mj"
	"pea/internal/rt"
)

// hotLoopSrc is a single-invocation hot loop: main calls sum once, and sum
// iterates far past any OSR threshold inside that one call. Each iteration
// allocates a Box that escapes through the static cell and is locked after
// publication, so allocation and monitor counts are identical across
// execution modes (PEA cannot elide an unconditionally escaping object or
// its post-publication locks). The printed checkpoints pin Env.Output.
const hotLoopSrc = `
class Box {
	int v;
	Box(int v) { this.v = v; }
}
class Cell {
	static Box last;
}
class Main {
	static int sum(int n) {
		int acc = 0;
		int i = 0;
		while (i < n) {
			Box b = new Box(i);
			Cell.last = b;
			synchronized (b) {
				acc = acc + b.v;
			}
			if (i % 1000 == 0) { print(acc); }
			i = i + 1;
		}
		return acc;
	}
	static void main() { print(sum(4000)); }
}
`

// scalarLoopSrc is a hot loop whose per-iteration allocation never escapes:
// below the OSR entry, PEA must still scalar-replace it.
const scalarLoopSrc = `
class Pair {
	int a;
	int b;
	Pair(int a, int b) { this.a = a; this.b = b; }
	int sum() { return a + b; }
}
class Main {
	static int run(int n) {
		int acc = 0;
		int i = 0;
		while (i < n) {
			Pair p = new Pair(i, acc);
			acc = p.sum();
			i = i + 1;
		}
		return acc;
	}
	static void main() { print(run(3000)); }
}
`

type runResult struct {
	output  []int64
	stats   rt.Stats
	vmStats Stats
}

func runMode(t *testing.T, src string, opts Options) runResult {
	t.Helper()
	prog, err := mj.Compile(src, "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	machine := New(prog, opts)
	defer machine.Close()
	if _, err := machine.Run(); err != nil {
		t.Fatal(err)
	}
	machine.DrainJIT()
	for m, cerr := range machine.FailedCompilations() {
		t.Fatalf("compile of %s failed: %v", m.QualifiedName(), cerr)
	}
	return runResult{
		output:  append([]int64(nil), machine.Env.Output...),
		stats:   machine.Env.Stats,
		vmStats: machine.Stats(),
	}
}

func sameOutput(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOSREntersHotLoop is the tentpole end-to-end check: a single
// invocation containing a hot loop tiers up mid-invocation through OSR.
func TestOSREntersHotLoop(t *testing.T) {
	res := runMode(t, hotLoopSrc, Options{
		EA:               EAPartial,
		CompileThreshold: 1 << 30, // never tier up at call boundaries
		OSRThreshold:     200,
		Validate:         true,
	})
	if res.vmStats.OSRRequests < 1 {
		t.Fatalf("OSR requests = %d, want >= 1", res.vmStats.OSRRequests)
	}
	if res.vmStats.OSRCompilations < 1 {
		t.Fatalf("OSR compilations = %d, want >= 1", res.vmStats.OSRCompilations)
	}
	if res.vmStats.OSREntries < 1 {
		t.Fatalf("OSR entries = %d, want >= 1", res.vmStats.OSREntries)
	}
	if res.vmStats.CompiledMethods != 0 {
		t.Fatalf("standard compiles = %d, want 0 (threshold unreachable)", res.vmStats.CompiledMethods)
	}
	want := runMode(t, hotLoopSrc, Options{Interpret: true})
	if !sameOutput(res.output, want.output) {
		t.Fatalf("OSR output diverged:\n osr    = %v\n interp = %v", res.output, want.output)
	}
}

// TestOSRDifferentialAgreement is the golden differential: interpreter-only,
// standard tier-up, synchronous OSR, and asynchronous OSR must produce
// identical results, output streams, and allocation/monitor counts.
func TestOSRDifferentialAgreement(t *testing.T) {
	for _, src := range []string{hotLoopSrc, scalarLoopSrc} {
		base := runMode(t, src, Options{Interpret: true})
		modes := []struct {
			name string
			opts Options
		}{
			{"tierup", Options{EA: EAPartial, CompileThreshold: 2, Validate: true}},
			{"osr-sync", Options{EA: EAPartial, CompileThreshold: 1 << 30, OSRThreshold: 100, Validate: true}},
			{"osr-async", Options{EA: EAPartial, CompileThreshold: 1 << 30, OSRThreshold: 100, Async: true, JITWorkers: 2, Validate: true}},
			{"osr-spec", Options{EA: EAPartial, CompileThreshold: 1 << 30, OSRThreshold: 100, Speculate: true, Validate: true}},
		}
		for _, mode := range modes {
			got := runMode(t, src, mode.opts)
			if !sameOutput(got.output, base.output) {
				t.Errorf("%s: output diverged from interpreter", mode.name)
				continue
			}
			if src == hotLoopSrc {
				// Every allocation escapes and every lock follows
				// publication, so the runtime counts must agree
				// exactly with the interpreter.
				if got.stats.Allocations != base.stats.Allocations {
					t.Errorf("%s: allocations = %d, want %d",
						mode.name, got.stats.Allocations, base.stats.Allocations)
				}
				if got.stats.MonitorOps != base.stats.MonitorOps {
					t.Errorf("%s: monitor ops = %d, want %d",
						mode.name, got.stats.MonitorOps, base.stats.MonitorOps)
				}
			}
		}
	}
}

// TestOSRScalarReplacesLoopAllocation checks the PEA interaction: objects
// allocated below the OSR entry are still scalar-replaced, so the OSR run
// of scalarLoopSrc performs (far) fewer allocations than the interpreter.
func TestOSRScalarReplacesLoopAllocation(t *testing.T) {
	base := runMode(t, scalarLoopSrc, Options{Interpret: true})
	osr := runMode(t, scalarLoopSrc, Options{
		EA:               EAPartial,
		CompileThreshold: 1 << 30,
		OSRThreshold:     100,
		Validate:         true,
	})
	if osr.vmStats.OSREntries < 1 {
		t.Fatalf("OSR entries = %d, want >= 1", osr.vmStats.OSREntries)
	}
	if !sameOutput(osr.output, base.output) {
		t.Fatalf("output diverged:\n osr    = %v\n interp = %v", osr.output, base.output)
	}
	// The interpreter allocates one Pair per iteration; the compiled OSR
	// body allocates none. Only the interpreted warmup iterations remain.
	if osr.stats.Allocations >= base.stats.Allocations/2 {
		t.Fatalf("allocations = %d (interpreter %d): loop allocation not scalar-replaced below OSR entry",
			osr.stats.Allocations, base.stats.Allocations)
	}
}

// TestOSRGraphTreatsEntryRefsAsEscaped checks that a reference flowing into
// the compiled code through the OSR entry (it existed before the transfer)
// is never virtualized: field stores to it must remain real stores.
func TestOSRGraphTreatsEntryRefsAsEscaped(t *testing.T) {
	const src = `
class Acc {
	int total;
}
class Main {
	static int run(int n) {
		Acc a = new Acc();
		int i = 0;
		while (i < n) {
			a.total = a.total + i;
			i = i + 1;
		}
		return a.total;
	}
	static void main() { print(run(3000)); }
}
`
	base := runMode(t, src, Options{Interpret: true})
	osr := runMode(t, src, Options{
		EA:               EAPartial,
		CompileThreshold: 1 << 30,
		OSRThreshold:     100,
		Validate:         true,
	})
	if osr.vmStats.OSREntries < 1 {
		t.Fatalf("OSR entries = %d, want >= 1", osr.vmStats.OSREntries)
	}
	if !sameOutput(osr.output, base.output) {
		t.Fatalf("output diverged:\n osr    = %v\n interp = %v", osr.output, base.output)
	}
}

// TestOSRWithOperandStackAtHeader exercises frame transfer with a non-empty
// expression stack at the loop header (a value computed before the loop and
// consumed after it, kept on the stack across every back edge).
func TestOSRWithOperandStackAtHeader(t *testing.T) {
	// Hand-assemble: push 7, loop summing i in local 1, then add the
	// stashed 7 after the loop. The 7 rides the operand stack across the
	// back edge, so the OSR entry must materialize a stack param.
	a := bc.NewAssembler()
	c := a.Class("C", "")
	m := c.Method("stacky", []bc.Kind{bc.KindInt}, bc.KindInt, true)
	iLoc := m.NewLocal(bc.KindInt)
	accLoc := m.NewLocal(bc.KindInt)
	m.Const(7). // stays on the stack for the whole loop
			Const(0).Store(iLoc).
			Const(0).Store(accLoc).
			Label("head").
			Load(iLoc).Load(0).IfCmp(bc.CondGE, "done").
			Load(accLoc).Load(iLoc).Add().Store(accLoc).
			Load(iLoc).Const(1).Add().Store(iLoc).
			Goto("head").
			Label("done").
			Load(accLoc).Add(). // 7 + acc
			ReturnValue()
	prog, err := a.Finish("")
	if err != nil {
		t.Fatal(err)
	}
	meth := prog.ClassByName("C").MethodByName("stacky")

	run := func(opts Options) (rt.Value, Stats) {
		machine := New(prog, opts)
		defer machine.Close()
		v, err := machine.Call(meth, []rt.Value{rt.IntValue(2000)})
		if err != nil {
			t.Fatal(err)
		}
		for m, cerr := range machine.FailedCompilations() {
			t.Fatalf("compile of %s failed: %v", m.QualifiedName(), cerr)
		}
		return v, machine.Stats()
	}

	want, _ := run(Options{Interpret: true})
	got, st := run(Options{EA: EAPartial, CompileThreshold: 1 << 30, OSRThreshold: 100, Validate: true})
	if st.OSREntries < 1 {
		t.Fatalf("OSR entries = %d, want >= 1", st.OSREntries)
	}
	if got.I != want.I {
		t.Fatalf("OSR result = %d, want %d", got.I, want.I)
	}
	if want.I != 7+1999*2000/2 {
		t.Fatalf("interpreter result = %d, want %d", want.I, 7+1999*2000/2)
	}
}

// TestOSRDisabledByDefault pins the compatibility contract: without an
// explicit threshold no OSR machinery runs, keeping pre-OSR behavior (and
// cache-key fingerprints) bit-identical.
func TestOSRDisabledByDefault(t *testing.T) {
	res := runMode(t, hotLoopSrc, Options{EA: EAPartial, CompileThreshold: 1 << 30, Validate: true})
	if res.vmStats.OSRRequests != 0 || res.vmStats.OSREntries != 0 || res.vmStats.OSRCompilations != 0 {
		t.Fatalf("OSR activity without a threshold: %+v", res.vmStats)
	}
}
