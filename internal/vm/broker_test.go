package vm

import (
	"os"
	"sync"
	"testing"

	"pea/internal/bc"
	"pea/internal/broker"
	"pea/internal/ir"
	"pea/internal/mj"
	"pea/internal/rt"
)

// loadExample compiles one of the repo's example programs.
func loadExample(t testing.TB, path string) *bc.Program {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := mj.Compile(string(src), "Main.main")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestAsyncTierUpMatchesInterpreter runs the cache-key example with
// background compilation and checks the printed output against a pure
// interpreter — the async install point must not change program behavior.
func TestAsyncTierUpMatchesInterpreter(t *testing.T) {
	prog := loadExample(t, "../../examples/cachekey.mj")

	ref := New(prog, Options{Interpret: true})
	if _, err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	machine := New(prog, Options{
		EA: EAPartial, CompileThreshold: 4, Async: true, JITWorkers: 4, Validate: true,
	})
	defer machine.Close()
	for i := 0; i < 30; i++ {
		if _, err := machine.Run(); err != nil {
			t.Fatal(err)
		}
	}
	machine.DrainJIT()
	for m, cerr := range machine.FailedCompilations() {
		t.Fatalf("compiling %s: %v", m.QualifiedName(), cerr)
	}
	if machine.Stats().CompiledMethods == 0 {
		t.Fatal("async tier-up never installed code")
	}
	// Each run prints one value; every run must agree with the reference.
	for i, v := range machine.Env.Output {
		if v != ref.Env.Output[0] {
			t.Fatalf("run %d printed %v, interpreter printed %v", i, v, ref.Env.Output[0])
		}
	}
}

// TestConcurrentTierUpRace hammers tier-up under the race detector: several
// VMs over the same immutable program share one compiled-code cache and run
// concurrently, each with its own background compile workers. This
// exercises concurrent profile reads, concurrent pipeline runs, concurrent
// cache Get/Put, and atomic code installation while execution threads keep
// calling into the code table.
func TestConcurrentTierUpRace(t *testing.T) {
	prog := loadExample(t, "../../examples/cachekey.mj")
	cache := broker.NewCache()

	// Populate the cache deterministically first so the concurrent phase
	// is guaranteed to exercise the replay path as well.
	warm := New(prog, Options{
		EA: EAPartial, CompileThreshold: 4, Cache: cache,
	})
	for i := 0; i < 20; i++ {
		if _, err := warm.Run(); err != nil {
			t.Fatal(err)
		}
	}

	const vms = 4
	var wg sync.WaitGroup
	errs := make([]error, vms)
	machines := make([]*VM, vms)
	for i := 0; i < vms; i++ {
		machines[i] = New(prog, Options{
			EA: EAPartial, CompileThreshold: 4, Cache: cache,
			Async: true, JITWorkers: 2,
		})
	}
	for i := 0; i < vms; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				if _, err := machines[i].Run(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("vm %d: %v", i, err)
		}
	}
	totalHits := int64(0)
	for i, m := range machines {
		m.DrainJIT()
		m.Close()
		for meth, cerr := range m.FailedCompilations() {
			t.Fatalf("vm %d: compiling %s: %v", i, meth.QualifiedName(), cerr)
		}
		totalHits += m.Broker().Stats().CacheHits
	}
	if totalHits == 0 {
		t.Fatal("no VM replayed from the shared pre-populated cache")
	}
	// All VMs observe identical output (deterministic program).
	for i := 1; i < vms; i++ {
		if len(machines[i].Env.Output) != len(machines[0].Env.Output) {
			t.Fatalf("vm %d output length diverged", i)
		}
		for j := range machines[i].Env.Output {
			if machines[i].Env.Output[j] != machines[0].Env.Output[j] {
				t.Fatalf("vm %d output[%d] = %v, vm 0 printed %v",
					i, j, machines[i].Env.Output[j], machines[0].Env.Output[j])
			}
		}
	}
}

// TestRecompileAfterInvalidationReplaysCache is the deopt→recompile fast
// path: once a method's speculative code is invalidated, the
// non-speculative artifact is compiled once and every later invalidation
// replays it from the cache. Stats.Recompilations counts cache misses only.
func TestRecompileAfterInvalidationReplaysCache(t *testing.T) {
	prog, m := buildCounter(t)
	machine := New(prog, Options{EA: EAPartial, Speculate: true, CompileThreshold: 2, Validate: true})
	call := func() {
		t.Helper()
		if _, err := machine.Call(m, []rt.Value{rt.IntValue(1)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		call()
	}
	if machine.CompiledGraph(m) == nil {
		t.Fatal("not compiled")
	}

	// First invalidation: the next call recompiles without speculation —
	// a cache miss, so it counts as a recompilation.
	machine.Invalidate(m, "deopt")
	call()
	if machine.CompiledGraph(m) == nil {
		t.Fatal("not recompiled after first invalidation")
	}
	if got := machine.Stats().Recompilations; got != 1 {
		t.Fatalf("recompilations = %d, want 1", got)
	}
	bs := machine.Broker().Stats()
	if bs.CacheHits != 0 {
		t.Fatalf("unexpected cache hit before the replay cycle: %+v", bs)
	}

	// Second invalidation: the non-speculative artifact is cached and the
	// profile's decision fingerprint is unchanged, so the reinstall is a
	// cache replay — no new recompilation.
	machine.Invalidate(m, "deopt")
	call()
	if machine.CompiledGraph(m) == nil {
		t.Fatal("not reinstalled after second invalidation")
	}
	if got := machine.Stats().Recompilations; got != 1 {
		t.Fatalf("recompilations = %d after cache replay, want 1 (cache misses only)", got)
	}
	bs = machine.Broker().Stats()
	if bs.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1 (the reinstall)", bs.CacheHits)
	}
	if got := machine.Stats().InvalidatedMethods; got != 2 {
		t.Fatalf("invalidations = %d, want 2", got)
	}
}

// TestAsyncAndSyncProduceIdenticalCode is the golden determinism check: the
// asynchronous broker must install byte-identical code (ir.Dump) to the
// synchronous default for every method both modes compiled.
func TestAsyncAndSyncProduceIdenticalCode(t *testing.T) {
	prog := loadExample(t, "../../examples/cachekey.mj")
	run := func(async bool) *VM {
		machine := New(prog, Options{
			EA: EAPartial, CompileThreshold: 4, Async: async, JITWorkers: 2, Validate: true,
		})
		for i := 0; i < 30; i++ {
			if _, err := machine.Run(); err != nil {
				t.Fatal(err)
			}
		}
		machine.DrainJIT()
		machine.Close()
		for m, cerr := range machine.FailedCompilations() {
			t.Fatalf("compiling %s: %v", m.QualifiedName(), cerr)
		}
		return machine
	}
	syncVM := run(false)
	asyncVM := run(true)

	compared := 0
	for _, m := range prog.Methods {
		sg, ag := syncVM.CompiledGraph(m), asyncVM.CompiledGraph(m)
		if sg == nil || ag == nil {
			// A method only one mode tiered up in time is a
			// scheduling difference, not a codegen difference.
			continue
		}
		if ir.Dump(sg) != ir.Dump(ag) {
			t.Fatalf("method %s: async and sync compiled code differ\n--- sync ---\n%s\n--- async ---\n%s",
				m.QualifiedName(), ir.Dump(sg), ir.Dump(ag))
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no method was compiled by both modes")
	}
}
