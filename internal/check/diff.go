package check

import (
	"fmt"
	"strings"
)

// DiffDumps renders a compact line diff between two ir.Dump outputs,
// used by the pipeline's failure forensics to pinpoint what a phase
// changed before a check violation. Common prefix and suffix lines are
// elided down to a few lines of context; the differing middle is shown
// with -/+ markers.
func DiffDumps(before, after string) string {
	const context = 3
	a := strings.Split(strings.TrimRight(before, "\n"), "\n")
	b := strings.Split(strings.TrimRight(after, "\n"), "\n")
	// Common prefix.
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	// Common suffix (not overlapping the prefix).
	s := 0
	for s < len(a)-p && s < len(b)-p && a[len(a)-1-s] == b[len(b)-1-s] {
		s++
	}
	if p == len(a) && p == len(b) {
		return "(dumps identical)"
	}
	var out strings.Builder
	start := p - context
	if start < 0 {
		start = 0
	}
	if start > 0 {
		fmt.Fprintf(&out, "  ... %d unchanged lines ...\n", start)
	}
	for i := start; i < p; i++ {
		fmt.Fprintf(&out, "  %s\n", a[i])
	}
	for i := p; i < len(a)-s; i++ {
		fmt.Fprintf(&out, "- %s\n", a[i])
	}
	for i := p; i < len(b)-s; i++ {
		fmt.Fprintf(&out, "+ %s\n", b[i])
	}
	end := s - context
	if end < 0 {
		end = 0
	}
	for i := len(b) - s; i < len(b)-end; i++ {
		fmt.Fprintf(&out, "  %s\n", b[i])
	}
	if end > 0 {
		fmt.Fprintf(&out, "  ... %d unchanged lines ...\n", end)
	}
	return out.String()
}
