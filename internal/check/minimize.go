package check

import "pea/internal/bc"

// Minimize shrinks the bytecode of m with delta debugging while a
// failure predicate keeps holding. It mutates m.Code (and
// m.ExceptionTable) in place and reports how many instructions were
// eliminated (removed or reduced to nops).
//
// reproduces is called with m already holding the candidate body; it
// must re-run whatever tripped (a strict check, a differential
// divergence, a compiler crash) and report whether the candidate still
// fails. Candidates are pre-gated by bc.Verify, so the predicate only
// sees structurally valid programs; panics inside the predicate count as
// "still fails" (the crash being minimized may itself be a panic).
//
// Three reduction passes alternate until a fixpoint:
//   - range deletion (classic ddmin): drop a chunk of instructions,
//     retargeting branches across the gap (branches into the deleted
//     range land on its former start) and shifting exception-table
//     ranges and handler pcs the same way — entries whose covered range
//     empties out are dropped;
//   - nop substitution: replace single instructions with OpNop, which
//     survives where deletion cannot (keeps pcs stable for the rest of
//     the body);
//   - exception-table reduction: drop whole entries, then shave covered
//     ranges one pc at a time from either end, taking coverage that
//     merely masks the failure.
func Minimize(m *bc.Method, reproduces func() bool) int {
	eliminated := 0
	try := func(cand []bc.Instr, table []bc.ExceptionHandler) bool {
		orig, origTable, origMax := m.Code, m.ExceptionTable, m.MaxStack
		m.Code, m.ExceptionTable = cand, table
		if bc.Verify(m) == nil && holds(reproduces) {
			return true
		}
		m.Code, m.ExceptionTable, m.MaxStack = orig, origTable, origMax
		return false
	}

	for {
		before := len(m.Code) + countNops(m.Code) + tableSpan(m.ExceptionTable)
		// Pass 1: ddmin range deletion over power-of-two chunk sizes
		// (largest ≤ len/2 down to 1), so every size down to single
		// instructions — crucially including 2, which halving len/2
		// skips for many lengths — gets a try.
		chunk := 1
		for chunk*2 <= len(m.Code)/2 {
			chunk *= 2
		}
		for ; chunk >= 1; chunk /= 2 {
			for start := 0; start+chunk <= len(m.Code); {
				if cand, table := deleteRange(m.Code, m.ExceptionTable, start, chunk); cand != nil && try(cand, table) {
					eliminated += chunk
					continue // same start now holds the next chunk
				}
				start++
			}
		}
		// Pass 2: nop substitution for instructions deletion couldn't
		// take (e.g. branch targets that must keep their pc).
		for pc := range m.Code {
			if m.Code[pc].Op == bc.OpNop {
				continue
			}
			cand := append([]bc.Instr(nil), m.Code...)
			cand[pc] = bc.Instr{Op: bc.OpNop}
			if try(cand, m.ExceptionTable) {
				eliminated++
			}
		}
		// Pass 3: exception-table reduction. Entry deletion counts
		// toward eliminated (a whole handler edge is gone); range
		// shaving only narrows coverage, so it contributes to the
		// fixpoint measure via tableSpan instead.
		for i := 0; i < len(m.ExceptionTable); {
			cand := append([]bc.ExceptionHandler(nil), m.ExceptionTable[:i]...)
			cand = append(cand, m.ExceptionTable[i+1:]...)
			if try(m.Code, cand) {
				eliminated++
				continue
			}
			i++
		}
		for i := range m.ExceptionTable {
			for m.ExceptionTable[i].End-m.ExceptionTable[i].Start > 1 {
				cand := append([]bc.ExceptionHandler(nil), m.ExceptionTable...)
				cand[i].Start++
				if try(m.Code, cand) {
					continue
				}
				cand = append([]bc.ExceptionHandler(nil), m.ExceptionTable...)
				cand[i].End--
				if !try(m.Code, cand) {
					break
				}
			}
		}
		if len(m.Code)+countNops(m.Code)+tableSpan(m.ExceptionTable) == before {
			return eliminated
		}
	}
}

// holds runs the predicate, converting a panic into true: the failure
// being minimized may itself be a compiler panic.
func holds(pred func() bool) (failed bool) {
	defer func() {
		if recover() != nil {
			failed = true
		}
	}()
	return pred()
}

func countNops(code []bc.Instr) int {
	n := 0
	for i := range code {
		if code[i].Op == bc.OpNop {
			n++
		}
	}
	return n
}

// tableSpan measures the exception table for the fixpoint test: entry
// count plus total covered pcs, so both entry deletion and range shaving
// register as progress.
func tableSpan(t []bc.ExceptionHandler) int {
	s := len(t)
	for i := range t {
		s += t[i].End - t[i].Start
	}
	return s
}

// deleteRange returns a copy of code with [start, start+size) removed
// and all branch targets fixed up: targets past the range shift down,
// targets into the range land on its former start. Exception-table
// entries shift the same way (End, being exclusive, clamps to start
// rather than shifting when it points into the range); entries whose
// covered range empties, or whose handler pc falls off the shortened
// end, are dropped. Returns nil when the result would leave a branch
// pointing past the end.
func deleteRange(code []bc.Instr, table []bc.ExceptionHandler, start, size int) ([]bc.Instr, []bc.ExceptionHandler) {
	out := make([]bc.Instr, 0, len(code)-size)
	for pc := range code {
		if pc >= start && pc < start+size {
			continue
		}
		in := code[pc]
		if in.Op == bc.OpGoto || in.Op.IsBranch() {
			t := in.Target()
			switch {
			case t >= start+size:
				t -= size
			case t >= start:
				t = start
			}
			if t >= len(code)-size {
				return nil, nil // branch would fall off the end
			}
			in.A = int64(t)
		}
		out = append(out, in)
	}
	shift := func(t int) int {
		switch {
		case t >= start+size:
			return t - size
		case t >= start:
			return start
		}
		return t
	}
	var outTable []bc.ExceptionHandler
	for _, h := range table {
		h.Start, h.Handler = shift(h.Start), shift(h.Handler)
		switch {
		case h.End >= start+size:
			h.End -= size
		case h.End > start:
			h.End = start
		}
		if h.Start >= h.End || h.Handler >= len(code)-size {
			continue
		}
		outTable = append(outTable, h)
	}
	return out, outTable
}
