package check

import "pea/internal/bc"

// Minimize shrinks the bytecode of m with delta debugging while a
// failure predicate keeps holding. It mutates m.Code in place and
// reports how many instructions were eliminated (removed or reduced to
// nops).
//
// reproduces is called with m already holding the candidate body; it
// must re-run whatever tripped (a strict check, a differential
// divergence, a compiler crash) and report whether the candidate still
// fails. Candidates are pre-gated by bc.Verify, so the predicate only
// sees structurally valid programs; panics inside the predicate count as
// "still fails" (the crash being minimized may itself be a panic).
//
// Two reduction passes alternate until a fixpoint:
//   - range deletion (classic ddmin): drop a chunk of instructions,
//     retargeting branches across the gap (branches into the deleted
//     range land on its former start);
//   - nop substitution: replace single instructions with OpNop, which
//     survives where deletion cannot (keeps pcs stable for the rest of
//     the body).
func Minimize(m *bc.Method, reproduces func() bool) int {
	eliminated := 0
	try := func(cand []bc.Instr) bool {
		orig := m.Code
		origMax := m.MaxStack
		m.Code = cand
		if bc.Verify(m) == nil && holds(reproduces) {
			return true
		}
		m.Code = orig
		m.MaxStack = origMax
		return false
	}

	for {
		before := len(m.Code) + countNops(m.Code)
		// Pass 1: ddmin range deletion over power-of-two chunk sizes
		// (largest ≤ len/2 down to 1), so every size down to single
		// instructions — crucially including 2, which halving len/2
		// skips for many lengths — gets a try.
		chunk := 1
		for chunk*2 <= len(m.Code)/2 {
			chunk *= 2
		}
		for ; chunk >= 1; chunk /= 2 {
			for start := 0; start+chunk <= len(m.Code); {
				if cand := deleteRange(m.Code, start, chunk); cand != nil && try(cand) {
					eliminated += chunk
					continue // same start now holds the next chunk
				}
				start++
			}
		}
		// Pass 2: nop substitution for instructions deletion couldn't
		// take (e.g. branch targets that must keep their pc).
		for pc := range m.Code {
			if m.Code[pc].Op == bc.OpNop {
				continue
			}
			cand := append([]bc.Instr(nil), m.Code...)
			cand[pc] = bc.Instr{Op: bc.OpNop}
			if try(cand) {
				eliminated++
			}
		}
		if len(m.Code)+countNops(m.Code) == before {
			return eliminated
		}
	}
}

// holds runs the predicate, converting a panic into true: the failure
// being minimized may itself be a compiler panic.
func holds(pred func() bool) (failed bool) {
	defer func() {
		if recover() != nil {
			failed = true
		}
	}()
	return pred()
}

func countNops(code []bc.Instr) int {
	n := 0
	for i := range code {
		if code[i].Op == bc.OpNop {
			n++
		}
	}
	return n
}

// deleteRange returns a copy of code with [start, start+size) removed
// and all branch targets fixed up: targets past the range shift down,
// targets into the range land on its former start. Returns nil when the
// result would leave a branch pointing past the end.
func deleteRange(code []bc.Instr, start, size int) []bc.Instr {
	out := make([]bc.Instr, 0, len(code)-size)
	for pc := range code {
		if pc >= start && pc < start+size {
			continue
		}
		in := code[pc]
		if in.Op == bc.OpGoto || in.Op.IsBranch() {
			t := in.Target()
			switch {
			case t >= start+size:
				t -= size
			case t >= start:
				t = start
			}
			if t >= len(code)-size {
				return nil // branch would fall off the end
			}
			in.A = int64(t)
		}
		out = append(out, in)
	}
	return out
}
