package check

import (
	"fmt"

	"pea/internal/bc"
	"pea/internal/ir"
)

// Graph validates g at the given level and returns the first violation
// found. Off is a guaranteed no-op. Basic runs ir.Verify. Strict runs
// ir.Verify and then the dominance-aware SSA and metadata checks below.
//
// Strict invariants (on top of Basic):
//   - every value use is dominated by its definition: same-block uses
//     come after the definition, cross-block uses are strictly
//     dominated, and phi input i is defined on a path dominating the
//     terminator of predecessor i;
//   - FrameState slots and virtual-object values obey the same
//     dominance rule relative to the node carrying the state;
//   - every FrameState BCI is reachable bytecode; the innermost frame's
//     stack matches the bytecode verifier's entry shape at that BCI
//     (depth and kinds), outer frames sit at an invoke with the callee
//     arguments popped, and non-nil locals match the slot kinds;
//   - virtual-object entries have the field count of their class (or
//     array length), resolve within the frame-state chain, and form no
//     reference cycle other than direct self-reference;
//   - OSR graphs parameterize on `locals ++ stack` at the entry BCI with
//     matching kinds; regular graphs parameterize on the method
//     arguments.
func Graph(g *ir.Graph, lvl Level) error {
	if lvl == Off {
		return nil
	}
	if err := ir.Verify(g); err != nil {
		return err
	}
	if lvl < Strict {
		return nil
	}
	return strictGraph(g)
}

func strictGraph(g *ir.Graph) error {
	c := &checker{
		g:      g,
		dom:    ir.NewDomTree(g),
		pos:    make(map[*ir.Node]int),
		shapes: make(map[*bc.Method]*methodShapes),
	}
	return c.run()
}

// methodShapes caches one verifier dataflow per method.
type methodShapes struct {
	shapes  [][]bc.Kind
	reached []bool
}

type checker struct {
	g      *ir.Graph
	dom    *ir.DomTree
	pos    map[*ir.Node]int // schedule position within its block
	shapes map[*bc.Method]*methodShapes
}

func (c *checker) run() error {
	// Schedule positions: phis all at 0 (they evaluate simultaneously on
	// block entry), body nodes 1..n, terminator n+1.
	for _, b := range c.g.Blocks {
		for _, p := range b.Phis {
			c.pos[p] = 0
		}
		for i, n := range b.Nodes {
			c.pos[n] = i + 1
		}
		c.pos[b.Term] = len(b.Nodes) + 2
	}
	for _, b := range c.g.Blocks {
		for _, p := range b.Phis {
			if err := c.checkPhi(b, p); err != nil {
				return err
			}
		}
		for _, n := range b.Nodes {
			if err := c.checkNode(b, n); err != nil {
				return err
			}
		}
		if err := c.checkNode(b, b.Term); err != nil {
			return err
		}
	}
	if err := c.checkExceptional(); err != nil {
		return err
	}
	return c.checkParams()
}

// checkExceptional validates exceptional-edge structure beyond what
// ir.Verify enforces: an OpExceptionObject reads the engine's pending-trap
// register, which is only populated on entry through an exceptional edge.
// Every predecessor of its block must therefore be a trap source — an
// OnException terminator routing here as its exceptional successor, or a
// covered Throw.
func (c *checker) checkExceptional() error {
	for _, b := range c.g.Blocks {
		for _, n := range b.Nodes {
			if n.Op != ir.OpExceptionObject {
				continue
			}
			for _, p := range b.Preds {
				t := p.Term
				switch {
				case t == nil:
					return fmt.Errorf("check: exception object v%d in %s: predecessor %s has no terminator",
						n.ID, b, p)
				case t.Op == ir.OpOnException && len(p.Succs) == 2 && p.Succs[1] == b:
				case t.Op == ir.OpThrow && len(p.Succs) == 1:
				default:
					return fmt.Errorf("check: exception object v%d in %s: predecessor %s enters without raising (terminator %s)",
						n.ID, b, p, t.Op)
				}
			}
		}
	}
	return nil
}

// defDominatesUse checks that def is available when user executes.
func (c *checker) defDominatesUse(def, user *ir.Node, useBlock *ir.Block, what string) error {
	db := def.Block
	if db == useBlock {
		if c.pos[def] >= c.pos[user] {
			return fmt.Errorf("check: %s of v%d (%s) by v%d (%s) in %s precedes its definition",
				what, def.ID, def.Op, user.ID, user.Op, useBlock)
		}
		return nil
	}
	if !c.dom.Dominates(db, useBlock) {
		return fmt.Errorf("check: %s of v%d (%s, in %s) by v%d (%s, in %s): definition does not dominate use",
			what, def.ID, def.Op, db, user.ID, user.Op, useBlock)
	}
	return nil
}

// checkPhi verifies that phi input i is defined on a path dominating the
// terminator of predecessor i.
func (c *checker) checkPhi(b *ir.Block, p *ir.Node) error {
	for i, in := range p.Inputs {
		pred := b.Preds[i]
		if in.Block != pred && !c.dom.Dominates(in.Block, pred) {
			return fmt.Errorf("check: phi v%d in %s: input %d (v%d %s, in %s) does not dominate predecessor %s",
				p.ID, b, i, in.ID, in.Op, in.Block, pred)
		}
	}
	if p.FrameState != nil {
		return fmt.Errorf("check: phi v%d in %s carries a FrameState", p.ID, b)
	}
	return nil
}

func (c *checker) checkNode(b *ir.Block, n *ir.Node) error {
	for _, in := range n.Inputs {
		if err := c.defDominatesUse(in, n, b, "use"); err != nil {
			return err
		}
		// Virtual objects are deopt metadata: they may only be
		// referenced from FrameStates. A VO flowing into a real input
		// means an emitted graph computes with an object the analysis
		// says does not exist — e.g. a summary-licensed virtual call
		// argument that was never substituted.
		if in.Op == ir.OpVirtualObject {
			return fmt.Errorf("check: v%d (%s) in %s uses virtual object v%d as a value input",
				n.ID, n.Op, b, in.ID)
		}
	}
	if n.FrameState != nil {
		if err := c.checkFrameState(b, n, n.FrameState); err != nil {
			return fmt.Errorf("check: v%d (%s) in %s: %w", n.ID, n.Op, b, err)
		}
	}
	return nil
}

// checkFrameState validates the whole chain hanging off one node: slot
// dominance, bytecode shape agreement, and virtual-object metadata.
func (c *checker) checkFrameState(b *ir.Block, n *ir.Node, fs *ir.FrameState) error {
	// Dominance of every referenced value relative to the carrying node.
	ref := func(v *ir.Node, what string) error {
		if v == nil {
			return nil
		}
		return c.defDominatesUse(v, n, b, what)
	}
	descs := make(map[*ir.Node]*ir.VirtualObjectState)
	depth := 0
	for s := fs; s != nil; s = s.Outer {
		for i, v := range s.Locals {
			if err := ref(v, fmt.Sprintf("frame-state local %d", i)); err != nil {
				return err
			}
		}
		for i, v := range s.Stack {
			if v == nil {
				return fmt.Errorf("frame %d at %s:%d: nil stack slot %d",
					depth, s.Method.QualifiedName(), s.BCI, i)
			}
			if err := ref(v, fmt.Sprintf("frame-state stack slot %d", i)); err != nil {
				return err
			}
		}
		for _, vo := range s.VirtualObjects {
			if err := ref(vo.Object, "virtual object"); err != nil {
				return err
			}
			for i, v := range vo.Values {
				if v == nil {
					return fmt.Errorf("virtual object v%d: nil field value %d", vo.Object.ID, i)
				}
				if err := ref(v, fmt.Sprintf("virtual object field %d", i)); err != nil {
					return err
				}
			}
			if prev, dup := descs[vo.Object]; dup && prev != vo {
				return fmt.Errorf("virtual object v%d has two descriptors in one chain", vo.Object.ID)
			}
			descs[vo.Object] = vo
		}
		if err := c.checkFrameShape(s, depth); err != nil {
			return err
		}
		depth++
	}
	return c.checkVirtualObjects(descs)
}

// checkFrameShape cross-checks one frame against the bytecode verifier's
// dataflow for its method. depth 0 is the innermost frame.
func (c *checker) checkFrameShape(s *ir.FrameState, depth int) error {
	ms, err := c.shapesFor(s.Method)
	if err != nil {
		return err
	}
	if !ms.reached[s.BCI] {
		return fmt.Errorf("frame %d: bci %d of %s is unreachable bytecode",
			depth, s.BCI, s.Method.QualifiedName())
	}
	shape := ms.shapes[s.BCI]
	want := len(shape)
	if depth > 0 {
		// Outer frames sit at the invoke whose callee is inlined below
		// them: the callee arguments have been popped.
		in := &s.Method.Code[s.BCI]
		if !in.Op.IsInvoke() {
			return fmt.Errorf("frame %d: outer state at %s:%d is %s, not an invoke",
				depth, s.Method.QualifiedName(), s.BCI, in.Op)
		}
		want -= in.Method.NumArgs()
		if want < 0 {
			return fmt.Errorf("frame %d: invoke at %s:%d pops %d args from a stack of %d",
				depth, s.Method.QualifiedName(), s.BCI, in.Method.NumArgs(), len(shape))
		}
	}
	if len(s.Stack) != want {
		return fmt.Errorf("frame %d at %s:%d: stack depth %d, verifier shape wants %d",
			depth, s.Method.QualifiedName(), s.BCI, len(s.Stack), want)
	}
	for i, v := range s.Stack {
		if v != nil && v.Kind != shape[i] {
			return fmt.Errorf("frame %d at %s:%d: stack slot %d is %s, verifier shape wants %s",
				depth, s.Method.QualifiedName(), s.BCI, i, v.Kind, shape[i])
		}
	}
	for i, v := range s.Locals {
		if v != nil && v.Kind != s.Method.LocalKinds[i] {
			return fmt.Errorf("frame %d at %s:%d: local %d is %s, slot kind is %s",
				depth, s.Method.QualifiedName(), s.BCI, i, v.Kind, s.Method.LocalKinds[i])
		}
	}
	return nil
}

// checkVirtualObjects validates the descriptor set collected over one
// frame-state chain: field counts match the class layout (or array
// length), every virtual-object reference inside a value list resolves
// to a descriptor in the same chain, and the reference graph has no
// cycle other than a direct self-reference (deoptimization materializes
// along these edges; see vm.deopt).
func (c *checker) checkVirtualObjects(descs map[*ir.Node]*ir.VirtualObjectState) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*ir.Node]int, len(descs))
	var visit func(n *ir.Node) error
	visit = func(n *ir.Node) error {
		switch color[n] {
		case grey:
			return fmt.Errorf("virtual object v%d participates in a reference cycle", n.ID)
		case black:
			return nil
		}
		color[n] = grey
		vo := descs[n]
		if n.Class != nil {
			if len(vo.Values) != n.Class.NumFields() {
				return fmt.Errorf("virtual object v%d has %d values for class %s with %d fields",
					n.ID, len(vo.Values), n.Class.Name, n.Class.NumFields())
			}
		} else {
			if int64(len(vo.Values)) != n.AuxLen {
				return fmt.Errorf("virtual array v%d has %d values for length %d",
					n.ID, len(vo.Values), n.AuxLen)
			}
		}
		if vo.LockDepth < 0 {
			return fmt.Errorf("virtual object v%d has negative lock depth %d", n.ID, vo.LockDepth)
		}
		for _, v := range vo.Values {
			if v == nil || v.Op != ir.OpVirtualObject {
				continue
			}
			if v == n {
				continue // direct self-reference: materialization registers before filling
			}
			if _, ok := descs[v]; !ok {
				return fmt.Errorf("virtual object v%d references v%d, which has no descriptor in the chain",
					n.ID, v.ID)
			}
			if err := visit(v); err != nil {
				return err
			}
		}
		color[n] = black
		return nil
	}
	// Deterministic enough for error reporting: any root order finds the
	// same class of violation.
	for n := range descs {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// checkParams verifies the parameter convention of the graph: OSR graphs
// take `locals ++ stack` at the entry BCI, regular graphs take the
// method arguments.
func (c *checker) checkParams() error {
	m := c.g.Method
	if m == nil {
		return nil
	}
	var stackShape []bc.Kind
	if c.g.IsOSR {
		ms, err := c.shapesFor(m)
		if err != nil {
			return err
		}
		bci := c.g.OSREntryBCI
		if bci < 0 || bci >= len(m.Code) || !ms.reached[bci] {
			return fmt.Errorf("check: OSR entry bci %d of %s is not reachable bytecode",
				bci, m.QualifiedName())
		}
		stackShape = ms.shapes[bci]
	}
	seenParam := make(map[int64]bool)
	for _, b := range c.g.Blocks {
		for _, n := range b.Nodes {
			if n.Op != ir.OpParam {
				continue
			}
			if b != c.g.Entry() {
				return fmt.Errorf("check: param v%d placed in %s, not the entry block", n.ID, b)
			}
			if c.g.IsOSR {
				limit := int64(m.NumLocals() + len(stackShape))
				if n.AuxInt < 0 || n.AuxInt >= limit {
					return fmt.Errorf("check: OSR param v%d slot %d outside locals++stack range [0,%d)",
						n.ID, n.AuxInt, limit)
				}
				var want bc.Kind
				if n.AuxInt < int64(m.NumLocals()) {
					want = m.LocalKinds[n.AuxInt]
				} else {
					want = stackShape[n.AuxInt-int64(m.NumLocals())]
				}
				if n.Kind != want {
					return fmt.Errorf("check: OSR param v%d slot %d is %s, frame slot is %s",
						n.ID, n.AuxInt, n.Kind, want)
				}
			} else {
				if n.AuxInt < 0 || n.AuxInt >= int64(m.NumArgs()) {
					return fmt.Errorf("check: param v%d index %d outside argument range [0,%d)",
						n.ID, n.AuxInt, m.NumArgs())
				}
				if n.Kind != m.LocalKinds[n.AuxInt] {
					return fmt.Errorf("check: param v%d index %d is %s, argument kind is %s",
						n.ID, n.AuxInt, n.Kind, m.LocalKinds[n.AuxInt])
				}
			}
			if seenParam[n.AuxInt] {
				return fmt.Errorf("check: duplicate param for slot %d", n.AuxInt)
			}
			seenParam[n.AuxInt] = true
		}
	}
	return nil
}

func (c *checker) shapesFor(m *bc.Method) (*methodShapes, error) {
	if ms, ok := c.shapes[m]; ok {
		return ms, nil
	}
	shapes, reached, err := bc.StackShapes(m)
	if err != nil {
		return nil, fmt.Errorf("stack shapes for %s: %w", m.QualifiedName(), err)
	}
	ms := &methodShapes{shapes: shapes, reached: reached}
	c.shapes[m] = ms
	return ms, nil
}
