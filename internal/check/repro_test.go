package check_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pea/internal/bc"
	"pea/internal/build"
	"pea/internal/check"
	"pea/internal/opt"
	"pea/internal/pea"
	"pea/internal/testprog"
)

// materializes reports whether compiling m end to end (build → inline →
// canonicalize → GVN → DCE → PEA) inserts at least one materialization —
// the predicate the committed repro under testdata/ was minimized against.
func materializes(p *bc.Program, m *bc.Method) bool {
	if bc.Verify(m) != nil {
		return false
	}
	g, err := build.Build(m)
	if err != nil {
		return false
	}
	pipe := &opt.Pipeline{Phases: []opt.Phase{
		&opt.Inliner{BuildGraph: build.Build, Program: p},
		opt.Canonicalize{}, opt.SimplifyCFG{}, opt.GVN{}, opt.DCE{},
	}, Check: check.Strict}
	if err := pipe.Run(g); err != nil {
		return false
	}
	res, err := pea.Run(g, pea.Config{Check: check.Strict})
	if err != nil {
		return false
	}
	if err := check.Graph(g, check.Strict); err != nil {
		return false
	}
	return res.MaterializeSites > 0
}

func TestReproRoundTrip(t *testing.T) {
	const seed = 7
	p := testprog.Generate(seed)
	m := p.Entry
	r := check.NewRepro(m, seed, "round trip")

	path := filepath.Join(t.TempDir(), "repro.json")
	if err := r.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := check.LoadRepro(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Method != m.QualifiedName() || loaded.Seed != seed {
		t.Fatalf("header changed: %+v", loaded)
	}

	// Apply onto a fresh instance of the same generated program.
	fresh := testprog.Generate(seed)
	fm, err := loaded.Apply(fresh.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(fm.Code) != len(m.Code) {
		t.Fatalf("code length changed: %d -> %d", len(m.Code), len(fm.Code))
	}
	for i := range m.Code {
		a, b := m.Code[i], fm.Code[i]
		if a.Op != b.Op || a.A != b.A || a.Cond != b.Cond || a.Kind != b.Kind {
			t.Fatalf("pc %d: %v -> %v", i, a, b)
		}
		if qual(a.Class)+qual2(a.Field)+qual3(a.Method) != qual(b.Class)+qual2(b.Field)+qual3(b.Method) {
			t.Fatalf("pc %d operands diverge: %v -> %v", i, a, b)
		}
	}
}

func qual(c *bc.Class) string {
	if c == nil {
		return ""
	}
	return c.Name
}
func qual2(f *bc.Field) string {
	if f == nil {
		return ""
	}
	return f.QualifiedName()
}
func qual3(m *bc.Method) string {
	if m == nil {
		return ""
	}
	return m.QualifiedName()
}

// TestCommittedReprosReplay replays every minimized repro committed under
// testdata/: the recorded body must still apply cleanly to the generated
// program it came from, verify, and still trip its predicate.
func TestCommittedReprosReplay(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed repros under testdata/")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			r, err := check.LoadRepro(path)
			if err != nil {
				t.Fatal(err)
			}
			p := testprog.Generate(int64(r.Seed))
			m, err := r.Apply(p.Prog)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(r.Note, "materialize") {
				t.Fatalf("unknown repro predicate in note %q", r.Note)
			}
			if !materializes(p.Prog, m) {
				t.Fatalf("repro %s no longer reproduces: PEA materializes nothing", path)
			}
		})
	}
}

// TestRegenRepro regenerates testdata/materialize-min.json when
// PEA_REGEN_REPRO=1: it hunts for a generated program whose entry method
// makes PEA materialize, delta-debugs the body down while the predicate
// holds, and writes the result. Committed output keeps the replay test
// honest across pipeline changes.
func TestRegenRepro(t *testing.T) {
	if os.Getenv("PEA_REGEN_REPRO") == "" {
		t.Skip("set PEA_REGEN_REPRO=1 to regenerate testdata repros")
	}
	for seed := int64(1); seed < 500; seed++ {
		p := testprog.Generate(seed)
		m := p.Entry
		if !materializes(p.Prog, m) {
			continue
		}
		orig := len(m.Code)
		n := check.Minimize(m, func() bool { return materializes(p.Prog, m) })
		t.Logf("seed %d: %d -> %d instructions (%d eliminated)", seed, orig, len(m.Code), n)
		r := check.NewRepro(m, uint64(seed),
			"minimized: PEA must materialize at least once compiling this body")
		if err := r.Save(filepath.Join("testdata", "materialize-min.json")); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no materializing seed found")
}
