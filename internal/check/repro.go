package check

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"pea/internal/bc"
)

// Repro is a serialized minimized failure: the body of one method of a
// reproducible program, stored as mnemonic instructions so the file is
// diffable and survives opcode renumbering. The surrounding program is
// reconstructed by the harness that owns the repro (typically from a
// testprog generator seed recorded in Seed); Apply then patches the named
// method with the recorded body and re-verifies it.
type Repro struct {
	// Note says what failed, for humans reading testdata/.
	Note string `json:"note,omitempty"`
	// Seed identifies the generated program the body belongs to.
	Seed uint64 `json:"seed"`
	// Method is the qualified name ("Class.method") of the patched method.
	Method string `json:"method"`
	// Code is the minimized body.
	Code []ReproInstr `json:"code"`
}

// ReproInstr mirrors bc.Instr with operands by name instead of pointer.
type ReproInstr struct {
	Op     string `json:"op"`
	A      int64  `json:"a,omitempty"`
	Cond   string `json:"cond,omitempty"`
	Kind   string `json:"kind,omitempty"`
	Class  string `json:"class,omitempty"`
	Field  string `json:"field,omitempty"`
	Method string `json:"method,omitempty"`
}

// NewRepro captures m's current body (typically after Minimize) as a repro.
func NewRepro(m *bc.Method, seed uint64, note string) *Repro {
	r := &Repro{Note: note, Seed: seed, Method: m.QualifiedName()}
	for i := range m.Code {
		in := &m.Code[i]
		ri := ReproInstr{Op: in.Op.String(), A: in.A}
		if in.Op == bc.OpCmp || in.Op == bc.OpIfCmp || in.Op == bc.OpIf ||
			in.Op == bc.OpIfRef || in.Op == bc.OpIfNull {
			ri.Cond = in.Cond.String()
		}
		if in.Kind != bc.KindVoid {
			ri.Kind = in.Kind.String()
		}
		if in.Class != nil {
			ri.Class = in.Class.Name
		}
		if in.Field != nil {
			ri.Field = in.Field.QualifiedName()
		}
		if in.Method != nil {
			ri.Method = in.Method.QualifiedName()
		}
		r.Code = append(r.Code, ri)
	}
	return r
}

// Save writes the repro as indented JSON.
func (r *Repro) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro reads a repro written by Save.
func LoadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r := new(Repro)
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("check: %s: %w", path, err)
	}
	return r, nil
}

// Apply patches r's method inside p with the recorded body, resolving
// operand names against p, and re-verifies the result. It returns the
// patched method.
func (r *Repro) Apply(p *bc.Program) (*bc.Method, error) {
	m, err := findMethod(p, r.Method)
	if err != nil {
		return nil, err
	}
	code := make([]bc.Instr, len(r.Code))
	for i, ri := range r.Code {
		in, err := ri.decode(p)
		if err != nil {
			return nil, fmt.Errorf("check: repro %s pc %d: %w", r.Method, i, err)
		}
		code[i] = in
	}
	m.Code = code
	if err := bc.Verify(m); err != nil {
		return nil, fmt.Errorf("check: repro %s does not verify: %w", r.Method, err)
	}
	return m, nil
}

func (ri ReproInstr) decode(p *bc.Program) (bc.Instr, error) {
	in := bc.Instr{A: ri.A}
	op, ok := opByName[ri.Op]
	if !ok {
		return in, fmt.Errorf("unknown opcode %q", ri.Op)
	}
	in.Op = op
	if ri.Cond != "" {
		c, ok := condByName[ri.Cond]
		if !ok {
			return in, fmt.Errorf("unknown condition %q", ri.Cond)
		}
		in.Cond = c
	}
	if ri.Kind != "" {
		k, ok := kindByName[ri.Kind]
		if !ok {
			return in, fmt.Errorf("unknown kind %q", ri.Kind)
		}
		in.Kind = k
	}
	if ri.Class != "" {
		if in.Class = p.ClassByName(ri.Class); in.Class == nil {
			return in, fmt.Errorf("unknown class %q", ri.Class)
		}
	}
	if ri.Field != "" {
		f, err := findField(p, ri.Field)
		if err != nil {
			return in, err
		}
		in.Field = f
	}
	if ri.Method != "" {
		m, err := findMethod(p, ri.Method)
		if err != nil {
			return in, err
		}
		in.Method = m
	}
	return in, nil
}

func splitQualified(name string) (cls, member string, err error) {
	i := strings.LastIndexByte(name, '.')
	if i <= 0 || i == len(name)-1 {
		return "", "", fmt.Errorf("malformed qualified name %q", name)
	}
	return name[:i], name[i+1:], nil
}

func findMethod(p *bc.Program, qname string) (*bc.Method, error) {
	cls, name, err := splitQualified(qname)
	if err != nil {
		return nil, err
	}
	c := p.ClassByName(cls)
	if c == nil {
		return nil, fmt.Errorf("unknown class %q", cls)
	}
	m := c.MethodByName(name)
	if m == nil {
		return nil, fmt.Errorf("unknown method %q", qname)
	}
	return m, nil
}

func findField(p *bc.Program, qname string) (*bc.Field, error) {
	cls, name, err := splitQualified(qname)
	if err != nil {
		return nil, err
	}
	c := p.ClassByName(cls)
	if c == nil {
		return nil, fmt.Errorf("unknown class %q", cls)
	}
	if f := c.FieldByName(name); f != nil {
		return f, nil
	}
	if f := c.StaticByName(name); f != nil {
		return f, nil
	}
	return nil, fmt.Errorf("unknown field %q", qname)
}

// Name→value tables for deserialization, derived from the String methods
// so the repro format tracks the canonical mnemonics.
var (
	opByName   = make(map[string]bc.Op)
	condByName = make(map[string]bc.Cond)
	kindByName = make(map[string]bc.Kind)
)

func init() {
	for o := bc.Op(0); o < 64; o++ {
		if s := o.String(); !strings.HasPrefix(s, "Op(") {
			opByName[s] = o
		}
	}
	for c := bc.Cond(0); c < 8; c++ {
		if s := c.String(); !strings.HasPrefix(s, "Cond(") {
			condByName[s] = c
		}
	}
	for k := bc.Kind(0); k < 8; k++ {
		if s := k.String(); !strings.HasPrefix(s, "Kind(") {
			kindByName[s] = k
		}
	}
}
